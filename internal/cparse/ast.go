package cparse

import (
	"gocured/internal/ctypes"
	"gocured/internal/diag"
)

// This file defines the abstract syntax tree produced by the parser. Types
// are resolved during parsing (the parser maintains typedef and struct-tag
// scopes, as any C parser must to disambiguate declarations), so AST nodes
// refer to *ctypes.Type directly.

// Node is the interface of all AST nodes.
type Node interface {
	Pos() diag.Pos
}

// ---- Expressions ----

// Expr is the interface of expression nodes. Ty is filled in by sema.
type Expr interface {
	Node
	Type() *ctypes.Type
	SetType(*ctypes.Type)
}

type exprBase struct {
	P  diag.Pos
	Ty *ctypes.Type
}

func (e *exprBase) Pos() diag.Pos          { return e.P }
func (e *exprBase) Type() *ctypes.Type     { return e.Ty }
func (e *exprBase) SetType(t *ctypes.Type) { e.Ty = t }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StrLit is a string literal (value without the terminating NUL; the NUL is
// materialized when the literal is laid out in memory).
type StrLit struct {
	exprBase
	Val string
}

// Ident is a name reference; sema resolves Sym.
type Ident struct {
	exprBase
	Name string
	Sym  *Symbol
}

// UnaryOp enumerates unary operators.
type UnaryOp int

const (
	Neg    UnaryOp = iota // -
	Not                   // !
	BitNot                // ~
	Deref                 // *
	AddrOf                // &
	PreInc
	PreDec
	PostInc
	PostDec
)

var unaryNames = [...]string{"-", "!", "~", "*", "&", "++pre", "--pre", "++post", "--post"}

func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a unary operation.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// BinaryOp enumerates binary operators.
type BinaryOp int

const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
	Rem
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	Eq
	Ne
	BitAnd
	BitOr
	BitXor
	LogAnd
	LogOr
)

var binaryNames = [...]string{"+", "-", "*", "/", "%", "<<", ">>", "<", ">",
	"<=", ">=", "==", "!=", "&", "|", "^", "&&", "||"}

func (op BinaryOp) String() string { return binaryNames[op] }

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   BinaryOp
	X, Y Expr
}

// Assign is an assignment; Op is the compound operator (Add for +=) or -1
// for plain '='.
type Assign struct {
	exprBase
	Op   BinaryOp // -1 for plain assignment
	L, R Expr
}

// Cond is the ?: operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Cast is an explicit or implicit conversion. Implicit casts are inserted
// by sema so that the pointer-kind inference sees every conversion.
// Trusted marks __trusted_cast sites (controlled loss of soundness).
type Cast struct {
	exprBase
	To       *ctypes.Type
	X        Expr
	Implicit bool
	Trusted  bool
}

// Call is a function call; Fn is an expression of function-pointer type
// (direct calls are idents of function type, decayed by sema).
type Call struct {
	exprBase
	Fn   Expr
	Args []Expr
}

// Index is array subscripting e1[e2].
type Index struct {
	exprBase
	X, I Expr
}

// Member is a field access: X.Name or X->Name when Arrow is set.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *ctypes.Field // resolved by sema
}

// SizeofExpr is sizeof(expr) or sizeof(type); exactly one of X, OfType set.
type SizeofExpr struct {
	exprBase
	X      Expr
	OfType *ctypes.Type
}

// Comma is the comma operator.
type Comma struct {
	exprBase
	X, Y Expr
}

// ---- Statements ----

// Stmt is the interface of statement nodes.
type Stmt interface{ Node }

type stmtBase struct{ P diag.Pos }

func (s *stmtBase) Pos() diag.Pos { return s.P }

// Block is a { ... } compound statement with its own scope.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// If is a conditional.
type If struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhile is a do-while loop.
type DoWhile struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// For is a for loop; any of Init/Cond/Post may be nil. Init may be a
// DeclStmt (C99-style declarations in for).
type For struct {
	stmtBase
	Init Stmt // ExprStmt, DeclStmt, or nil
	Cond Expr
	Post Expr
	Body Stmt
}

// Return returns from a function; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Break exits the innermost loop or switch.
type Break struct{ stmtBase }

// Continue continues the innermost loop.
type Continue struct{ stmtBase }

// SwitchCase is one case (or default when IsDefault) of a switch.
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Stmts     []Stmt
}

// Switch is a switch statement; cases do not fall through implicitly in the
// lowered form, but the parser preserves C fallthrough by leaving the case
// bodies as parsed (lowering handles it).
type Switch struct {
	stmtBase
	X     Expr
	Cases []*SwitchCase
}

// Empty is the empty statement ';'.
type Empty struct{ stmtBase }

// ---- Declarations and top level ----

// StorageClass of a declaration.
type StorageClass int

const (
	SCNone StorageClass = iota
	SCExtern
	SCStatic
	SCTypedef
)

// Initializer is either a single expression or a brace list.
type Initializer struct {
	P      diag.Pos
	Expr   Expr           // scalar initializer
	List   []*Initializer // brace list
	IsList bool
}

// Pos returns the initializer's source position.
func (in *Initializer) Pos() diag.Pos { return in.P }

// VarDecl declares one variable (global or local).
type VarDecl struct {
	P       diag.Pos
	Name    string
	Type    *ctypes.Type
	Storage StorageClass
	Init    *Initializer // may be nil
	Sym     *Symbol      // filled by sema
}

// Pos returns the declaration's position.
func (d *VarDecl) Pos() diag.Pos { return d.P }

// FuncDef is a function definition (or prototype when Body is nil).
type FuncDef struct {
	P       diag.Pos
	Name    string
	Type    *ctypes.Type // Func kind
	Storage StorageClass
	Body    *Block // nil for prototypes
	Sym     *Symbol
}

// Pos returns the definition's position.
func (d *FuncDef) Pos() diag.Pos { return d.P }

// WrapperPragma records #pragma ccuredWrapperOf("wrapper", "wrapped").
type WrapperPragma struct {
	P       diag.Pos
	Wrapper string
	Wrapped string
}

// File is one parsed translation unit.
type File struct {
	Name     string
	Funcs    []*FuncDef
	Globals  []*VarDecl
	Wrappers []*WrapperPragma
	// Structs lists every struct/union defined in the file, in definition
	// order (the RTTI hierarchy is built from these).
	Structs []*ctypes.StructInfo
}

// SymbolKind classifies symbols.
type SymbolKind int

const (
	SymVar SymbolKind = iota
	SymFunc
	SymEnumConst
)

// Symbol is a named program entity. Globals and functions are shared across
// the unit; locals are per-function.
type Symbol struct {
	Name    string
	Kind    SymbolKind
	Type    *ctypes.Type
	Global  bool
	Param   bool
	EnumVal int64
	// AddrType is the shared pointer-type occurrence for &sym, so every
	// address-of expression on this symbol shares one qualifier node
	// (CCured associates one qualifier with the address of each variable).
	// Created on demand by sema.
	AddrType *ctypes.Type
	// AddrTaken is set by sema when &sym occurs.
	AddrTaken bool
	// Def points at the defining FuncDef for SymFunc.
	Def *FuncDef
	// VDecl points at the defining VarDecl for SymVar globals.
	VDecl *VarDecl
}
