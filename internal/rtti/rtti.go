// Package rtti implements the global run-time type hierarchy of §3.2:
// a registry of the pointer base types occurring in a program, the
// compile-time function rttiOf mapping a type to its hierarchy node, and the
// run-time predicate isSubtype over nodes (physical subtyping). RTTI
// pointers carry a node alongside the pointer value; checked downcasts call
// IsSubtype at run time.
package rtti

import (
	"fmt"
	"strings"

	"gocured/internal/ctypes"
)

// Node is one type in the hierarchy.
type Node struct {
	ID   int
	Ty   *ctypes.Type
	Name string
}

func (n *Node) String() string { return n.Name }

// Hierarchy is the program-wide physical subtyping hierarchy.
type Hierarchy struct {
	nodes    []*Node
	byKey    map[string]*Node
	subCache map[[2]int]int8 // -1 unknown, 0 false, 1 true
	// VoidNode is the top of the hierarchy (every type ≤ void).
	VoidNode *Node
}

// NewHierarchy returns a hierarchy containing only void.
func NewHierarchy() *Hierarchy {
	h := &Hierarchy{
		byKey:    make(map[string]*Node),
		subCache: make(map[[2]int]int8),
	}
	h.VoidNode = h.Of(ctypes.VoidType())
	return h
}

// key canonicalizes a type for hierarchy identity: struct types by
// definition, everything else structurally.
func key(t *ctypes.Type) string {
	switch t.Kind {
	case ctypes.Void:
		return "void"
	case ctypes.Int:
		sign := "u"
		if t.Signed {
			sign = "i"
		}
		return fmt.Sprintf("%s%d", sign, t.Size*8)
	case ctypes.Float:
		return fmt.Sprintf("f%d", t.Size*8)
	case ctypes.Ptr:
		return "*" + key(t.Elem)
	case ctypes.Array:
		return fmt.Sprintf("[%d]%s", t.Len, key(t.Elem))
	case ctypes.Struct:
		return fmt.Sprintf("su%d", t.SU.ID)
	case ctypes.Func:
		var b strings.Builder
		b.WriteString("fn(")
		for i, p := range t.Fn.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(key(p))
		}
		if t.Fn.Variadic {
			b.WriteString(",...")
		}
		b.WriteString(")")
		b.WriteString(key(t.Fn.Ret))
		return b.String()
	}
	return "?"
}

// Of registers (if needed) and returns the hierarchy node for t. This is
// the compile-time rttiOf function.
func (h *Hierarchy) Of(t *ctypes.Type) *Node {
	k := key(t)
	if n, ok := h.byKey[k]; ok {
		return n
	}
	n := &Node{ID: len(h.nodes) + 1, Ty: t, Name: t.String()}
	h.nodes = append(h.nodes, n)
	h.byKey[k] = n
	return n
}

// Lookup returns the node for t if registered, else nil.
func (h *Hierarchy) Lookup(t *ctypes.Type) *Node {
	return h.byKey[key(t)]
}

// IsSubtype reports whether a ≤ b (a is a physical subtype of b), i.e. a
// pointer to an a may be used where a pointer to a b is expected after a
// checked downcast from b to a succeeds in reverse. It is the run-time
// subtype test of §3.2.
func (h *Hierarchy) IsSubtype(a, b *Node) bool {
	if a == b {
		return true
	}
	ck := [2]int{a.ID, b.ID}
	if v, ok := h.subCache[ck]; ok {
		return v == 1
	}
	// a ≤ b iff b's layout is a prefix of a's layout.
	ok, _ := ctypes.Prefix(a.Ty, b.Ty)
	v := int8(0)
	if ok {
		v = 1
	}
	h.subCache[ck] = v
	return ok
}

// HasStrictSubtypes reports whether any registered aggregate type is a
// strict physical subtype of n's type. The inference uses this to avoid
// propagating the RTTI kind to pointers whose static type has no subtypes
// in the program (§3.2: such pointers stay SAFE).
func (h *Hierarchy) HasStrictSubtypes(n *Node) bool {
	if n == h.VoidNode {
		// Everything is a subtype of void; void has strict subtypes as
		// soon as the program has any other registered type.
		return len(h.nodes) > 1
	}
	// Only aggregates participate (a scalar's "subtypes" — structs that
	// start with it — do not make programs use it polymorphically).
	if n.Ty.Kind != ctypes.Struct {
		return false
	}
	for _, m := range h.nodes {
		if m == n || m.Ty.Kind != ctypes.Struct {
			continue
		}
		if h.IsSubtype(m, n) {
			return true
		}
	}
	return false
}

// Nodes returns all registered nodes.
func (h *Hierarchy) Nodes() []*Node { return h.nodes }

// Len returns the number of registered types.
func (h *Hierarchy) Len() int { return len(h.nodes) }
