package corpus

// Additional Olden/Ptrdist/Spec-like workloads, extending the E5 suite
// breadth: mst (hash-table adjacency), health (linked patient queues),
// yacr2-like channel routing (dense index arithmetic), and a go-like
// influence map computation.

var _ = register(&Program{
	Name:     "olden-mst",
	Category: "olden",
	Desc:     "mst-like: minimum spanning tree over hashed adjacency lists",
	Source: Prelude + `
enum { SCALE = 2, MVERT = 40, MHASH = 64 };

struct hedge {
    int to;
    int w;
    struct hedge *next;
};

struct vert {
    struct hedge *buckets[MHASH / 8];
    int mindist;
    int intree;
};

struct vert verts[MVERT];

int eh(int a, int b) {
    int h = a * 31 + b * 7;
    if (h < 0) h = -h;
    return h % (MHASH / 8);
}

void add_edge(int a, int b, int w) {
    struct hedge *e = (struct hedge *)malloc(sizeof(struct hedge));
    e->to = b;
    e->w = w;
    e->next = verts[a].buckets[eh(a, b)];
    verts[a].buckets[eh(a, b)] = e;
}

int edge_weight(int a, int b) {
    struct hedge *e = verts[a].buckets[eh(a, b)];
    while (e) {
        if (e->to == b) return e->w;
        e = e->next;
    }
    return 1 << 20;
}

void build(void) {
    unsigned int seed = 5;
    int i, j;
    for (i = 0; i < MVERT; i++) {
        for (j = 0; j < MVERT; j++) {
            if (i == j) continue;
            seed = seed * 1103515245 + 12345;
            if ((seed >> 16) % 4 == 0) {
                int w = 1 + (int)((seed >> 8) & 31);
                add_edge(i, j, w);
                add_edge(j, i, w);
            }
        }
    }
}

int mst_cost(void) {
    int total = 0, steps, i;
    for (i = 0; i < MVERT; i++) {
        verts[i].mindist = 1 << 20;
        verts[i].intree = 0;
    }
    verts[0].mindist = 0;
    for (steps = 0; steps < MVERT; steps++) {
        int best = -1;
        for (i = 0; i < MVERT; i++) {
            if (!verts[i].intree && (best < 0 || verts[i].mindist < verts[best].mindist)) {
                best = i;
            }
        }
        if (best < 0 || verts[best].mindist >= (1 << 20)) break;
        verts[best].intree = 1;
        total += verts[best].mindist;
        for (i = 0; i < MVERT; i++) {
            if (!verts[i].intree) {
                int w = edge_weight(best, i);
                if (w < verts[i].mindist) verts[i].mindist = w;
            }
        }
    }
    return total;
}

int main(void) {
    int iter, total = 0;
    build();
    for (iter = 0; iter < SCALE * 4; iter++) {
        total = (total + mst_cost()) % 1000000007;
    }
    printf("mst vertices=%d total=%d\n", MVERT, total);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "olden-health",
	Category: "olden",
	Desc:     "health-like: hierarchical hospital simulation with patient queues",
	Source: Prelude + `
enum { SCALE = 2, LEVELS = 3, STEPS = 40 };

struct patient {
    int id;
    int time;
    struct patient *next;
};

struct hospital {
    struct patient *waiting;
    struct patient *assess;
    int treated;
    struct hospital *children[4];
    int nchildren;
};

int next_patient_id;
unsigned int hseed = 11;

int hrand(int n) {
    hseed = hseed * 1103515245 + 12345;
    return (int)((hseed >> 16) % (unsigned int)n);
}

struct hospital *make_hospital(int level) {
    struct hospital *h = (struct hospital *)malloc(sizeof(struct hospital));
    int i;
    h->waiting = 0;
    h->assess = 0;
    h->treated = 0;
    h->nchildren = 0;
    if (level > 0) {
        for (i = 0; i < 4; i++) {
            h->children[i] = make_hospital(level - 1);
            h->nchildren++;
        }
    } else {
        for (i = 0; i < 4; i++) h->children[i] = 0;
    }
    return h;
}

void put_queue(struct patient **q, struct patient *p) {
    p->next = *q;
    *q = p;
}

struct patient *take_queue(struct patient **q) {
    struct patient *p = *q;
    if (p) *q = p->next;
    return p;
}

/* one simulation step: generate arrivals at leaves, move patients up */
int sim(struct hospital *h, int level) {
    int moved = 0, i;
    struct patient *p;
    if (h->nchildren == 0) {
        if (hrand(3) == 0) {
            p = (struct patient *)malloc(sizeof(struct patient));
            p->id = next_patient_id++;
            p->time = 0;
            put_queue(&h->waiting, p);
        }
    } else {
        for (i = 0; i < h->nchildren; i++) {
            moved += sim(h->children[i], level - 1);
            /* escalate one waiting patient from each child */
            p = take_queue(&h->children[i]->waiting);
            if (p) {
                p->time += 1;
                put_queue(&h->assess, p);
                moved++;
            }
        }
    }
    /* treat one assessed patient */
    p = take_queue(&h->assess);
    if (p) {
        h->treated++;
        free(p);
    }
    return moved;
}

int count_waiting(struct hospital *h) {
    int n = 0, i;
    struct patient *p;
    for (p = h->waiting; p; p = p->next) n++;
    for (p = h->assess; p; p = p->next) n++;
    for (i = 0; i < h->nchildren; i++) n += count_waiting(h->children[i]);
    return n;
}

int count_treated(struct hospital *h) {
    int n = h->treated, i;
    for (i = 0; i < h->nchildren; i++) n += count_treated(h->children[i]);
    return n;
}

int main(void) {
    struct hospital *root = make_hospital(LEVELS);
    int iter, s, moved = 0;
    for (iter = 0; iter < SCALE; iter++) {
        for (s = 0; s < STEPS; s++) moved += sim(root, LEVELS);
    }
    printf("health moved=%d waiting=%d treated=%d\n",
           moved, count_waiting(root), count_treated(root));
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "ptrdist-yacr",
	Category: "ptrdist",
	Desc:     "yacr2-like: channel routing with per-net constraint scans",
	Source: Prelude + `
enum { SCALE = 2, NETS = 24, COLS = 48, TRACKS = 16 };

struct net {
    int left;    /* leftmost column */
    int right;   /* rightmost column */
    int track;   /* assigned track (-1 = none) */
};

struct net nets[NETS];
int occupancy[TRACKS][COLS];

void make_nets(void) {
    unsigned int seed = 17;
    int i;
    for (i = 0; i < NETS; i++) {
        int a, b;
        seed = seed * 1103515245 + 12345;
        a = (int)((seed >> 16) % COLS);
        seed = seed * 1103515245 + 12345;
        b = (int)((seed >> 16) % COLS);
        if (a > b) { int t = a; a = b; b = t; }
        if (a == b) b = (b + 3) % COLS;
        if (a > b) { int t = a; a = b; b = t; }
        nets[i].left = a;
        nets[i].right = b;
        nets[i].track = -1;
    }
}

int track_free(int t, int l, int r) {
    int c;
    for (c = l; c <= r; c++) {
        if (occupancy[t][c]) return 0;
    }
    return 1;
}

void claim(int t, int l, int r, int id) {
    int c;
    for (c = l; c <= r; c++) occupancy[t][c] = id + 1;
}

int route_all(void) {
    int i, t, routed = 0;
    int order[NETS];
    /* route wider nets first (greedy left-edge style) */
    for (i = 0; i < NETS; i++) order[i] = i;
    for (i = 0; i < NETS; i++) {
        int j, best = i;
        for (j = i + 1; j < NETS; j++) {
            int wi = nets[order[j]].right - nets[order[j]].left;
            int wb = nets[order[best]].right - nets[order[best]].left;
            if (wi > wb) best = j;
        }
        { int tmp = order[i]; order[i] = order[best]; order[best] = tmp; }
    }
    for (i = 0; i < NETS; i++) {
        struct net *n = &nets[order[i]];
        for (t = 0; t < TRACKS; t++) {
            if (track_free(t, n->left, n->right)) {
                claim(t, n->left, n->right, order[i]);
                n->track = t;
                routed++;
                break;
            }
        }
    }
    return routed;
}

void reset(void) {
    int t, c, i;
    for (t = 0; t < TRACKS; t++)
        for (c = 0; c < COLS; c++)
            occupancy[t][c] = 0;
    for (i = 0; i < NETS; i++) nets[i].track = -1;
}

int main(void) {
    int iter, routed = 0, maxtrack = 0, i;
    make_nets();
    for (iter = 0; iter < SCALE * 5; iter++) {
        reset();
        routed = route_all();
    }
    for (i = 0; i < NETS; i++) {
        if (nets[i].track > maxtrack) maxtrack = nets[i].track;
    }
    printf("yacr routed=%d/%d tracks=%d\n", routed, NETS, maxtrack + 1);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "spec-go",
	Category: "spec",
	Desc:     "go-like: board influence maps and group liberty counting",
	Source: Prelude + `
enum { SCALE = 2, BOARD = 11, CELLS = BOARD * BOARD };

int board[CELLS];     /* 0 empty, 1 black, 2 white */
int influence[CELLS];
int visited[CELLS];

int at(int r, int c) {
    if (r < 0 || r >= BOARD || c < 0 || c >= BOARD) return -1;
    return r * BOARD + c;
}

void setup(void) {
    unsigned int seed = 23;
    int i;
    for (i = 0; i < CELLS; i++) {
        seed = seed * 1103515245 + 12345;
        int v = (int)((seed >> 16) % 10);
        board[i] = v < 3 ? 1 : (v < 6 ? 2 : 0);
    }
}

/* flood-fill liberties of the group containing idx */
int liberties(int idx) {
    int stack[CELLS];
    int sp = 0, libs = 0, color = board[idx];
    int i;
    if (color == 0) return 0;
    for (i = 0; i < CELLS; i++) visited[i] = 0;
    stack[sp] = idx;
    sp++;
    visited[idx] = 1;
    while (sp > 0) {
        int cur, r, c, d;
        int dr[4];
        int dc[4];
        dr[0] = 1; dr[1] = -1; dr[2] = 0; dr[3] = 0;
        dc[0] = 0; dc[1] = 0; dc[2] = 1; dc[3] = -1;
        sp--;
        cur = stack[sp];
        r = cur / BOARD;
        c = cur % BOARD;
        for (d = 0; d < 4; d++) {
            int n = at(r + dr[d], c + dc[d]);
            if (n < 0 || visited[n]) continue;
            visited[n] = 1;
            if (board[n] == 0) libs++;
            else if (board[n] == color && sp < CELLS) { stack[sp] = n; sp++; }
        }
    }
    return libs;
}

/* propagate influence from stones outward */
void compute_influence(void) {
    int i, pass;
    for (i = 0; i < CELLS; i++) {
        influence[i] = board[i] == 1 ? 64 : (board[i] == 2 ? -64 : 0);
    }
    for (pass = 0; pass < 4; pass++) {
        int next[CELLS];
        for (i = 0; i < CELLS; i++) {
            int r = i / BOARD, c = i % BOARD;
            int acc = influence[i] * 2;
            int n;
            n = at(r - 1, c); if (n >= 0) acc += influence[n];
            n = at(r + 1, c); if (n >= 0) acc += influence[n];
            n = at(r, c - 1); if (n >= 0) acc += influence[n];
            n = at(r, c + 1); if (n >= 0) acc += influence[n];
            next[i] = acc / 4;
        }
        for (i = 0; i < CELLS; i++) influence[i] = next[i];
    }
}

int main(void) {
    int iter, i, score = 0, libsum = 0;
    setup();
    for (iter = 0; iter < SCALE * 3; iter++) {
        compute_influence();
        for (i = 0; i < CELLS; i++) {
            if (influence[i] > 0) score++;
            else if (influence[i] < 0) score--;
        }
        for (i = 0; i < CELLS; i += 7) libsum += liberties(i);
        libsum = libsum % 1000000007;
    }
    printf("go score=%d libs=%d\n", score, libsum);
    return 0;
}
`,
})
