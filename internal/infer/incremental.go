package infer

import (
	"crypto/sha256"

	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// SummarySource supplies persisted per-function constraint summaries. A
// source is scoped to one (gocured version, Go version, inference options)
// configuration — the infer package keys loads by function name, body
// fingerprint, and declaration fingerprint only, and trusts the source to
// segregate everything else. Load returns (nil, false) on any miss,
// including corrupt or undecodable chunks; Save is best-effort.
type SummarySource interface {
	Load(fn string, body, decls [sha256.Size]byte) (*FuncSummary, bool)
	Save(sum *FuncSummary, fn string, body, decls [sha256.Size]byte)
}

// IncrStats reports how an incremental inference composed its result.
type IncrStats struct {
	// Funcs is the number of functions in the unit.
	Funcs int `json:"funcs"`
	// Recured counts functions whose constraints were re-collected (the
	// expensive body walk + structural cast classification).
	Recured int `json:"recured"`
	// Loaded counts functions whose constraints were replayed from a
	// stored summary.
	Loaded int `json:"loaded"`
	// Unstorable counts re-collected functions whose summary could not be
	// recorded (an operand occurrence had no symbolic name); they recure
	// on every compile.
	Unstorable int `json:"unstorable"`
}

// InferIncremental is Infer with a summary source: functions whose stored
// summaries still match the current body/declaration fingerprints are
// replayed instead of re-collected, then the global solve/split phases run
// as usual over the composed graph. The result is bit-identical to a
// whole-program Infer — same node IDs, kinds, cast sites, and provenance.
// A nil src degrades to plain Infer with every function counted as recured.
func InferIncremental(prog *cil.Program, opts Options, diags *diag.List, src SummarySource) (*Result, IncrStats) {
	st := IncrStats{Funcs: len(prog.Funcs)}
	if src == nil {
		st.Recured = st.Funcs
		return Infer(prog, opts, diags), st
	}
	in := newInferrer(prog, opts, diags)
	in.prologue()

	decls := FingerprintDecls(prog)
	bodies := make(map[string][sha256.Size]byte, len(prog.Funcs))
	for _, f := range prog.Funcs {
		bodies[f.Name] = FingerprintFunc(f)
	}
	tab := newOccTable(prog)

	for _, f := range prog.Funcs {
		casts := castsOf(f)
		if sum, ok := src.Load(f.Name, bodies[f.Name], decls); ok &&
			depsOK(sum, bodies) && in.applySummary(sum, tab, casts) {
			st.Loaded++
			continue
		}
		rec := newRecorder(tab, f, casts)
		in.rec = rec
		in.collectFunc(f)
		in.rec = nil
		st.Recured++
		if rec.bad {
			st.Unstorable++
			continue
		}
		src.Save(rec.finish(bodies), f.Name, bodies[f.Name], decls)
	}
	return in.result(), st
}

// depsOK verifies a summary's cross-function occurrence dependencies
// against the current body fingerprints.
func depsOK(sum *FuncSummary, bodies map[string][sha256.Size]byte) bool {
	for _, d := range sum.Deps {
		cur, ok := bodies[d.Fn]
		if !ok || cur != d.Body {
			return false
		}
	}
	return true
}

// applySummary replays one summary against the graph. It validates the
// whole op stream first (occurrence resolution, index bounds) without
// touching the graph, so a false return leaves the inferrer untouched and
// the caller falls back to a fresh collection.
func (in *inferrer) applySummary(sum *FuncSummary, tab *occTable, casts []*cil.Cast) bool {
	if sum.NCasts != int32(len(casts)) {
		return false
	}
	occs := make([]*ctypes.Type, len(sum.Occs))
	for i, o := range sum.Occs {
		if o.Owner < 0 || int(o.Owner) >= len(sum.Owners) {
			return false
		}
		t, ok := tab.byName[OccRef{Owner: sum.Owners[o.Owner], Idx: o.Idx}]
		if !ok {
			return false
		}
		occs[i] = t
	}
	nOccs, nStrs := int32(len(occs)), int32(len(sum.Strs))
	strOK := func(ix int32) bool { return ix >= -1 && ix < nStrs }
	argOK := func(ix int32, isReg bool, nreg int32) bool {
		if isReg {
			return ix >= 0 && ix < nreg
		}
		return ix >= 0 && ix < nOccs
	}
	var nreg, nsites int32
	for i := range sum.Ops {
		op := &sum.Ops[i]
		if !strOK(op.Rule) || !strOK(op.File) {
			return false
		}
		switch op.Code {
		case opReg, opBind:
			if !argOK(op.A, false, nreg) {
				return false
			}
			if op.Code == opBind {
				nreg++
			}
		case opUnify:
			if !argOK(op.A, false, nreg) || !argOK(op.B, false, nreg) {
				return false
			}
		case opFlow, opEdge:
			if !argOK(op.A, op.AReg, nreg) || !argOK(op.B, op.BReg, nreg) {
				return false
			}
			if op.Code == opEdge && (op.Site < -1 || op.Site >= nsites) {
				return false
			}
		case opArith, opIntCast, opRtti, opBad:
			if !argOK(op.A, op.AReg, nreg) {
				return false
			}
		case opCast:
			if !argOK(op.A, false, nreg) || !argOK(op.B, false, nreg) ||
				op.N < 0 || int(op.N) >= len(casts) || op.Class >= uint8(len(castClassNames)) {
				return false
			}
			nsites++
		default:
			return false
		}
	}
	if nsites != sum.NSites {
		return false
	}

	// Apply. Nothing below can fail; Lookup results that differ from
	// record time (impossible short of a fingerprint collision) degrade to
	// nil-safe no-ops.
	regs := make([]*qual.Node, 0, nreg)
	sites := make([]*CastSite, 0, nsites)
	pos := func(op *Op) diag.Pos {
		p := diag.Pos{Line: int(op.Line), Col: int(op.Col)}
		if op.File >= 0 {
			p.File = sum.Strs[op.File]
		}
		return p
	}
	str := func(ix int32) string {
		if ix < 0 {
			return ""
		}
		return sum.Strs[ix]
	}
	node := func(ix int32, isReg bool) *qual.Node {
		if isReg {
			return regs[ix]
		}
		return in.g.Lookup(occs[ix])
	}
	for i := range sum.Ops {
		op := &sum.Ops[i]
		switch op.Code {
		case opReg:
			in.regType(occs[op.A])
		case opBind:
			regs = append(regs, in.g.Lookup(occs[op.A]))
		case opUnify:
			a, b := in.g.Lookup(occs[op.A]), in.g.Lookup(occs[op.B])
			if a != nil && b != nil {
				in.g.UnionR(a, b, str(op.Rule), pos(op))
			}
		case opFlow:
			in.g.FlowR(node(op.A, op.AReg), node(op.B, op.BReg), str(op.Rule), pos(op))
		case opEdge:
			a, b := node(op.A, op.AReg), node(op.B, op.BReg)
			if a == nil || b == nil {
				continue
			}
			var site *CastSite
			if op.Site >= 0 {
				site = sites[op.Site]
			}
			in.edges = append(in.edges, &edge{src: a, dst: b, class: edgeClass(op.Class), site: site})
		case opArith:
			node(op.A, op.AReg).MarkArithAt(pos(op))
		case opIntCast:
			node(op.A, op.AReg).MarkIntCastAt(pos(op))
		case opRtti:
			node(op.A, op.AReg).MarkRttiAt(pos(op))
		case opBad:
			node(op.A, op.AReg).MarkBad(pos(op), str(op.Rule))
		case opCast:
			site := &CastSite{
				Pos:     pos(op),
				From:    occs[op.A],
				To:      occs[op.B],
				Class:   CastClass(op.Class),
				TileOK:  op.TileOK,
				Trusted: op.Trusted,
			}
			in.casts = append(in.casts, site)
			in.castOf[casts[op.N]] = site
			sites = append(sites, site)
		}
	}
	return true
}
