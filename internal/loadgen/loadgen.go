// Package loadgen drives synthetic cure/run traffic against a ccserve
// instance and reports latency distributions. It supports closed-loop
// generation (a fixed number of workers, each issuing its next request as
// soon as the previous completes — concurrency is the control variable)
// and open-loop generation (requests dispatched on a fixed arrival
// schedule regardless of completions — the harsher model, since queueing
// delay compounds instead of throttling the generator).
//
// Traffic is a weighted mix of request classes chosen to exercise the
// server's distinct cost paths:
//
//	hit   the same source every time: memory-cache hits
//	run   a fixed source with run:true: cache hit + interpreter execution
//	cure  a wholly fresh source every request: full compiles
//	edit  one function's body changes per request while the rest of the
//	      unit stays stable: incremental re-cure (store summary replay)
//
// Latencies aggregate into the same log-bucketed histograms the pipeline
// uses (internal/pipeline.LogHist), so quantiles here and server-side
// quantiles are directly comparable bucket-for-bucket.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gocured/internal/pipeline"
)

// Config tunes one load run.
type Config struct {
	// BaseURL is the ccserve root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration bounds the run.
	Duration time.Duration
	// Concurrency is the closed-loop worker count (ignored when
	// RatePerSec > 0 selects open-loop mode).
	Concurrency int
	// RatePerSec, when positive, switches to open-loop generation at this
	// arrival rate.
	RatePerSec float64
	// Mix maps class name -> weight. Nil means DefaultMix.
	Mix map[string]int
	// Seed makes the class sequence reproducible.
	Seed int64
	// Client is the HTTP client (nil = a default with sane timeouts).
	Client *http.Client
}

// DefaultMix approximates a warm service: mostly cache hits and runs, a
// steady trickle of fresh compiles and incremental edits.
func DefaultMix() map[string]int {
	return map[string]int{"hit": 45, "run": 25, "edit": 20, "cure": 10}
}

// ClassResult is the per-class slice of a Result.
type ClassResult struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	CacheHits int     `json:"cache_hits"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// Result is the outcome of one load run at one operating point.
type Result struct {
	Concurrency   int     `json:"concurrency"`
	RatePerSec    float64 `json:"rate_per_sec,omitempty"`
	DurationS     float64 `json:"duration_s"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`

	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`

	Classes map[string]ClassResult `json:"classes"`

	// SlowestMiss identifies the slowest non-cache-hit request of the run:
	// its trace covers every compile phase, which makes it the natural
	// candidate for the post-run trace check.
	SlowestMissTraceID string  `json:"slowest_miss_trace_id,omitempty"`
	SlowestMissMS      float64 `json:"slowest_miss_ms,omitempty"`
	SlowestMissClass   string  `json:"slowest_miss_class,omitempty"`

	// LastMiss is the most recently completed cache miss — a fallback
	// candidate for the trace check when the slowest miss has already been
	// evicted from the server's bounded trace buffer by later traffic.
	LastMissTraceID string  `json:"last_miss_trace_id,omitempty"`
	LastMissMS      float64 `json:"last_miss_ms,omitempty"`
}

// cureReply is the slice of ccserve's CureResponse the generator needs.
type cureReply struct {
	TraceID  string `json:"trace_id"`
	CacheHit bool   `json:"cache_hit"`
	Tier     string `json:"tier"`
}

// collector aggregates results across workers. One mutex for the counters;
// the histograms carry their own locks.
type collector struct {
	overall pipeline.LogHist
	classes map[string]*classCollector

	mu           sync.Mutex
	errors       int
	slowestMS    float64
	slowestID    string
	slowestClass string
	lastMissMS   float64
	lastMissID   string
}

type classCollector struct {
	hist             pipeline.LogHist
	requests, errors atomic.Int64
	hits             atomic.Int64
}

func (c *collector) record(class string, ms float64, reply *cureReply, err error) {
	cc := c.classes[class]
	cc.requests.Add(1)
	if err != nil {
		cc.errors.Add(1)
		c.mu.Lock()
		c.errors++
		c.mu.Unlock()
		return
	}
	traceID := ""
	if reply != nil {
		traceID = reply.TraceID
		if reply.CacheHit {
			cc.hits.Add(1)
		}
	}
	c.overall.Observe(time.Duration(ms*float64(time.Millisecond)), traceID)
	cc.hist.Observe(time.Duration(ms*float64(time.Millisecond)), traceID)
	if reply != nil && !reply.CacheHit && traceID != "" {
		c.mu.Lock()
		if ms > c.slowestMS {
			c.slowestMS, c.slowestID, c.slowestClass = ms, traceID, class
		}
		c.lastMissMS, c.lastMissID = ms, traceID
		c.mu.Unlock()
	}
}

// gen holds the shared request-generation state.
type gen struct {
	cfg     Config
	client  *http.Client
	classes []string // expanded by weight for O(1) picks
	cureSeq atomic.Uint64
	editSeq atomic.Uint64
}

// baseProg is the body template. stable_sum and main never change; the
// edit class varies only edited()'s constants, the cure class varies all
// three slots (a wholly new unit every request).
const baseProg = `extern int printf(char *fmt, ...);

int stable_sum(int n) {
  int i, t = 0;
  int a[8];
  for (i = 0; i < 8; i++) a[i] = i + %d;
  for (i = 0; i < n && i < 8; i++) t += a[i];
  return t;
}

int edited(int x) { return x * %d + %d; }

int main(void) {
  int r = stable_sum(6) + edited(%d);
  return r & 255;
}
`

func progSource(stableK, mulK, addK, argK int) string {
	return fmt.Sprintf(baseProg, stableK, mulK, addK, argK)
}

// body builds the POST /cure payload for one request of a class.
func (g *gen) body(class string) []byte {
	type reqBody struct {
		Name   string `json:"name"`
		Source string `json:"source"`
		Run    bool   `json:"run,omitempty"`
		Mode   string `json:"mode,omitempty"`
	}
	var b reqBody
	switch class {
	case "hit":
		b = reqBody{Name: "load-hit.c", Source: progSource(1, 3, 1, 2)}
	case "run":
		b = reqBody{Name: "load-run.c", Source: progSource(1, 3, 1, 2), Run: true, Mode: "cured"}
	case "cure":
		n := int(g.cureSeq.Add(1))
		b = reqBody{Name: "load-cure.c", Source: progSource(n%251, n%127+1, n%89, n%7)}
	case "edit":
		// Only edited()'s constants move: stable_sum and main keep their
		// fingerprints, so a store-backed server replays them (tier "disk").
		n := int(g.editSeq.Add(1))
		b = reqBody{Name: "load-edit.c", Source: progSource(1, n%127+1, n%89, 2)}
	default:
		panic("loadgen: unknown class " + class)
	}
	data, err := json.Marshal(b)
	if err != nil {
		panic(err)
	}
	return data
}

// issue sends one request and returns (latency ms, parsed reply, error).
func (g *gen) issue(ctx context.Context, class string) (float64, *cureReply, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.cfg.BaseURL+"/cure",
		bytes.NewReader(g.body(class)))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := g.client.Do(req)
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return ms, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return ms, nil, err
	}
	ms = float64(time.Since(start)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		return ms, nil, fmt.Errorf("%s: status %d: %.200s", class, resp.StatusCode, data)
	}
	var reply cureReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return ms, nil, fmt.Errorf("%s: bad reply: %w", class, err)
	}
	if reply.TraceID == "" {
		reply.TraceID = resp.Header.Get("X-Trace-Id")
	}
	return ms, &reply, nil
}

// Run executes one load run and aggregates the results. Closed-loop when
// cfg.RatePerSec <= 0, open-loop otherwise.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}

	g := &gen{cfg: cfg, client: client}
	// Expand weights into a pick table with a stable class order.
	names := make([]string, 0, len(mix))
	for name := range mix {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for i := 0; i < mix[name]; i++ {
			g.classes = append(g.classes, name)
		}
	}
	if len(g.classes) == 0 {
		return Result{}, fmt.Errorf("loadgen: empty mix")
	}

	col := &collector{classes: make(map[string]*classCollector, len(names))}
	for _, name := range names {
		col.classes[name] = &classCollector{}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup

	oneRequest := func(rng *rand.Rand) {
		class := g.classes[rng.Intn(len(g.classes))]
		ms, reply, err := g.issue(ctx, class) // ctx, not runCtx: in-flight requests finish
		col.record(class, ms, reply, err)
	}

	if cfg.RatePerSec > 0 {
		// Open loop: arrivals on a fixed schedule, one goroutine each.
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		if interval <= 0 {
			interval = time.Microsecond
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	arrivals:
		for {
			select {
			case <-runCtx.Done():
				break arrivals
			case <-ticker.C:
				wg.Add(1)
				class := g.classes[rng.Intn(len(g.classes))]
				go func() {
					defer wg.Done()
					ms, reply, err := g.issue(ctx, class)
					col.record(class, ms, reply, err)
				}()
			}
		}
	} else {
		// Closed loop: each worker issues back-to-back requests.
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
				for runCtx.Err() == nil {
					oneRequest(rng)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := col.overall.Snapshot()
	res := Result{
		Concurrency:   cfg.Concurrency,
		RatePerSec:    cfg.RatePerSec,
		DurationS:     float64(elapsed) / float64(time.Second),
		Requests:      int(snap.Count) + col.errors,
		Errors:        col.errors,
		ThroughputRPS: float64(snap.Count) / (float64(elapsed) / float64(time.Second)),
		MeanMS:        snap.MeanMS(),
		P50MS:         snap.Quantile(0.50),
		P90MS:         snap.Quantile(0.90),
		P99MS:         snap.Quantile(0.99),
		P999MS:        snap.Quantile(0.999),
		MaxMS:         snap.MaxMS,
		Classes:       make(map[string]ClassResult, len(names)),

		SlowestMissTraceID: col.slowestID,
		SlowestMissMS:      col.slowestMS,
		SlowestMissClass:   col.slowestClass,
		LastMissTraceID:    col.lastMissID,
		LastMissMS:         col.lastMissMS,
	}
	for _, name := range names {
		cc := col.classes[name]
		cs := cc.hist.Snapshot()
		res.Classes[name] = ClassResult{
			Requests:  int(cc.requests.Load()),
			Errors:    int(cc.errors.Load()),
			CacheHits: int(cc.hits.Load()),
			MeanMS:    cs.MeanMS(),
			P50MS:     cs.Quantile(0.50),
			P99MS:     cs.Quantile(0.99),
			MaxMS:     cs.MaxMS,
		}
	}
	return res, nil
}
