package corpus

// OpenSSL-like workloads (Figure 9 reports the whole library plus the
// "cast" cipher and "bn" bignum rows). openssl-cast runs a CAST-style
// Feistel cipher behind an EVP-like polymorphic cipher table (void*
// contexts and function pointers: the RTTI showcase); openssl-bn is the
// big-number package (arrays of limbs, carries, modexp).

var _ = register(&Program{
	Name:     "openssl-cast",
	Category: "daemon",
	Desc:     "CAST-style Feistel cipher behind an EVP-like polymorphic interface",
	Source: Prelude + `
enum { SCALE = 2, ROUNDS = 12, BLOCKS = 200 };

/* ---- EVP-like polymorphic cipher layer: void* contexts (RTTI) ---- */

struct evp_cipher {
    char *name;
    int block_size;
    void *(*ctx_new)(char *key);
    void (*encrypt)(void *ctx, unsigned int *block);
    void (*decrypt)(void *ctx, unsigned int *block);
};

/* ---- the CAST-like cipher ---- */

struct cast_ctx {
    unsigned int km[ROUNDS];
    int kr[ROUNDS];
};

unsigned int sbox[4][16] = {
    { 0x30fb40d4, 0x9fa0ff0b, 0x6beccd2f, 0x3f258c7a,
      0x1e213f2f, 0x9c004dd3, 0x6003e540, 0xcf9fc949,
      0xbfd4af27, 0x88bbbdb5, 0xe2034090, 0x98d09675,
      0x6e63a0e0, 0x15c361d2, 0xc2e7661d, 0x22d4ff8e },
    { 0x28683b6f, 0xc07fd059, 0xff2379c8, 0x775f50e2,
      0x43c340d3, 0xdf2f8656, 0x887ca41a, 0xa2d2bd2d,
      0xa1c9e0d6, 0x346c4819, 0x61b76d87, 0x22540f2f,
      0x2abe32e1, 0xaa54166b, 0x22568e3a, 0xa2d341d0 },
    { 0x66db40c8, 0xa784392f, 0x004dff2f, 0x2db9d2de,
      0x97943fac, 0x4a97c1d8, 0x527644b7, 0xb5f437a7,
      0xb82cbaef, 0xd751d159, 0x6ff7f0ed, 0x5a097a1f,
      0x827b68d0, 0x90ecf52e, 0x22b0c054, 0xbc8e5935 },
    { 0x4f5b9f80, 0x8cf65d5a, 0x2e2f2f88, 0x1d4f8f2e,
      0x78471d2a, 0x04f25e2e, 0x3f58d2b7, 0x10548b2f,
      0x1d1f3f2e, 0x3e5f1b22, 0x5e2f88a1, 0x77f02f88,
      0x5d28e0f0, 0x0f200f02, 0x2f8f1d4f, 0x3b6f2868 },
};

unsigned int cast_f(unsigned int half, unsigned int km, int kr) {
    unsigned int t = km + half;
    t = (t << kr) | (t >> (32 - kr));
    return sbox[0][(t >> 28) & 15] ^ sbox[1][(t >> 20) & 15]
         ^ sbox[2][(t >> 12) & 15] ^ sbox[3][(t >> 4) & 15];
}

void *cast_ctx_new(char *key) {
    struct cast_ctx *c = (struct cast_ctx *)malloc(sizeof(struct cast_ctx));
    unsigned int seed = 0x12345678;
    int i;
    for (i = 0; key[i]; i++) seed = seed * 31 + (key[i] & 255);
    for (i = 0; i < ROUNDS; i++) {
        seed = seed * 1103515245 + 12345;
        c->km[i] = seed;
        c->kr[i] = 1 + (int)((seed >> 27) % 31);
    }
    return (void *)c;
}

void cast_encrypt(void *vctx, unsigned int *block) {
    struct cast_ctx *c = (struct cast_ctx *)vctx;   /* checked downcast */
    unsigned int l = block[0], r = block[1], t;
    int i;
    for (i = 0; i < ROUNDS; i++) {
        t = r;
        r = l ^ cast_f(r, c->km[i], c->kr[i]);
        l = t;
    }
    block[0] = r;
    block[1] = l;
}

void cast_decrypt(void *vctx, unsigned int *block) {
    struct cast_ctx *c = (struct cast_ctx *)vctx;
    unsigned int l = block[0], r = block[1], t;
    int i;
    for (i = ROUNDS - 1; i >= 0; i--) {
        t = r;
        r = l ^ cast_f(r, c->km[i], c->kr[i]);
        l = t;
    }
    block[0] = r;
    block[1] = l;
}

/* ---- a second cipher so the dispatch is genuinely polymorphic ---- */

struct xtea_ctx {
    unsigned int k[4];
};

void *xtea_ctx_new(char *key) {
    struct xtea_ctx *c = (struct xtea_ctx *)malloc(sizeof(struct xtea_ctx));
    int i;
    for (i = 0; i < 4; i++) c->k[i] = (key[i % 8] & 255) * 0x9E3779B9 + i;
    return (void *)c;
}

void xtea_encrypt(void *vctx, unsigned int *block) {
    struct xtea_ctx *c = (struct xtea_ctx *)vctx;
    unsigned int v0 = block[0], v1 = block[1], sum = 0;
    int i;
    for (i = 0; i < 16; i++) {
        v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + c->k[sum & 3]);
        sum += 0x9E3779B9;
        v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + c->k[(sum >> 11) & 3]);
    }
    block[0] = v0;
    block[1] = v1;
}

void xtea_decrypt(void *vctx, unsigned int *block) {
    struct xtea_ctx *c = (struct xtea_ctx *)vctx;
    unsigned int v0 = block[0], v1 = block[1], sum = 0x9E3779B9 * 16;
    int i;
    for (i = 0; i < 16; i++) {
        v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + c->k[(sum >> 11) & 3]);
        sum -= 0x9E3779B9;
        v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + c->k[sum & 3]);
    }
    block[0] = v0;
    block[1] = v1;
}

struct evp_cipher ciphers[2] = {
    { "cast5", 8, cast_ctx_new, cast_encrypt, cast_decrypt },
    { "xtea",  8, xtea_ctx_new, xtea_encrypt, xtea_decrypt },
};

int evp_selftest(struct evp_cipher *evp, char *key) {
    unsigned int data[2 * BLOCKS];
    unsigned int orig[2 * BLOCKS];
    void *ctx = evp->ctx_new(key);
    int i, ok = 1;
    for (i = 0; i < 2 * BLOCKS; i++) {
        data[i] = (unsigned int)(i * 2654435761u);
        orig[i] = data[i];
    }
    for (i = 0; i < BLOCKS; i++) evp->encrypt(ctx, data + 2 * i);
    for (i = 0; i < BLOCKS; i++) {
        if (data[2 * i] == orig[2 * i]) ok = 0;  /* must have changed */
    }
    for (i = 0; i < BLOCKS; i++) evp->decrypt(ctx, data + 2 * i);
    for (i = 0; i < 2 * BLOCKS; i++) {
        if (data[i] != orig[i]) ok = 0;
    }
    free(ctx);
    return ok;
}

int main(void) {
    int iter, i, passed = 0, total = 0;
    for (iter = 0; iter < SCALE; iter++) {
        for (i = 0; i < 2; i++) {
            passed += evp_selftest(&ciphers[i], "benchmark-key");
            total++;
        }
    }
    printf("openssl-cast selftests %d/%d passed\n", passed, total);
    return passed == total ? 0 : 1;
}
`,
})

var _ = register(&Program{
	Name:     "openssl-bn",
	Category: "daemon",
	Desc:     "big-number package: limb arrays, add/sub/mul/mod, modexp",
	Source: Prelude + `
enum { SCALE = 2, MAXLIMB = 24 };

/* numbers are little-endian arrays of 16-bit limbs stored in ints */
struct bignum {
    int n;                 /* limbs used */
    unsigned int d[MAXLIMB];
};

void bn_zero(struct bignum *a) {
    int i;
    a->n = 1;
    for (i = 0; i < MAXLIMB; i++) a->d[i] = 0;
}

void bn_set(struct bignum *a, unsigned int v) {
    bn_zero(a);
    a->d[0] = v & 0xFFFF;
    a->d[1] = (v >> 16) & 0xFFFF;
    a->n = a->d[1] ? 2 : 1;
}

void bn_copy(struct bignum *dst, struct bignum *src) {
    int i;
    dst->n = src->n;
    for (i = 0; i < MAXLIMB; i++) dst->d[i] = src->d[i];
}

void bn_norm(struct bignum *a) {
    while (a->n > 1 && a->d[a->n - 1] == 0) a->n--;
}

int bn_cmp(struct bignum *a, struct bignum *b) {
    int i;
    if (a->n != b->n) return a->n - b->n;
    for (i = a->n - 1; i >= 0; i--) {
        if (a->d[i] != b->d[i]) return (int)a->d[i] - (int)b->d[i];
    }
    return 0;
}

void bn_add(struct bignum *r, struct bignum *a, struct bignum *b) {
    unsigned int carry = 0;
    int i, n = a->n > b->n ? a->n : b->n;
    for (i = 0; i < n; i++) {
        unsigned int s = a->d[i] + b->d[i] + carry;
        r->d[i] = s & 0xFFFF;
        carry = s >> 16;
    }
    if (carry && n < MAXLIMB) { r->d[n] = carry; n++; }
    r->n = n;
    for (i = n; i < MAXLIMB; i++) r->d[i] = 0;
}

/* r = a - b (requires a >= b) */
void bn_sub(struct bignum *r, struct bignum *a, struct bignum *b) {
    int borrow = 0, i;
    for (i = 0; i < a->n; i++) {
        int s = (int)a->d[i] - (int)b->d[i] - borrow;
        if (s < 0) { s += 0x10000; borrow = 1; } else borrow = 0;
        r->d[i] = (unsigned int)s;
    }
    r->n = a->n;
    for (i = a->n; i < MAXLIMB; i++) r->d[i] = 0;
    bn_norm(r);
}

void bn_mul(struct bignum *r, struct bignum *a, struct bignum *b) {
    unsigned int acc[2 * MAXLIMB];
    int i, j, n;
    for (i = 0; i < 2 * MAXLIMB; i++) acc[i] = 0;
    for (i = 0; i < a->n; i++) {
        for (j = 0; j < b->n && i + j < 2 * MAXLIMB; j++) {
            acc[i + j] += a->d[i] * b->d[j];
        }
        /* propagate carries eagerly so limbs stay below 2^32 */
        for (j = 0; j < 2 * MAXLIMB - 1; j++) {
            acc[j + 1] += acc[j] >> 16;
            acc[j] &= 0xFFFF;
        }
    }
    n = a->n + b->n;
    if (n > MAXLIMB) n = MAXLIMB;
    for (i = 0; i < n; i++) r->d[i] = acc[i];
    for (i = n; i < MAXLIMB; i++) r->d[i] = 0;
    r->n = n;
    bn_norm(r);
}

/* r = a mod m, by binary (doubling) reduction */
void bn_mod(struct bignum *r, struct bignum *a, struct bignum *m) {
    struct bignum cur;
    struct bignum s[64];
    int top = 0;
    bn_copy(&cur, a);
    bn_copy(&s[0], m);
    while (top < 63 && bn_cmp(&s[top], &cur) <= 0) {
        bn_add(&s[top + 1], &s[top], &s[top]);
        top++;
    }
    for (; top >= 0; top--) {
        if (bn_cmp(&cur, &s[top]) >= 0) bn_sub(&cur, &cur, &s[top]);
    }
    bn_copy(r, &cur);
}

/* r = base^exp mod m (square and multiply) */
void bn_modexp(struct bignum *r, struct bignum *base, unsigned int exp,
               struct bignum *m) {
    struct bignum acc, sq, t;
    bn_set(&acc, 1);
    bn_copy(&sq, base);
    while (exp) {
        if (exp & 1) {
            bn_mul(&t, &acc, &sq);
            bn_mod(&acc, &t, m);
        }
        bn_mul(&t, &sq, &sq);
        bn_mod(&sq, &t, m);
        exp >>= 1;
    }
    bn_copy(r, &acc);
}

unsigned int bn_low32(struct bignum *a) {
    return a->d[0] | (a->d[1] << 16);
}

int main(void) {
    struct bignum a, b, m, r, t;
    int iter, i;
    unsigned int check = 0;
    for (iter = 0; iter < SCALE; iter++) {
        /* Fermat-style checks: a^(p-1) mod p == 1 for prime p */
        bn_set(&m, 65537);
        for (i = 2; i < 12; i++) {
            bn_set(&a, (unsigned int)i);
            bn_modexp(&r, &a, 65536, &m);
            check += bn_low32(&r);
        }
        /* (a+b)^2 == a^2 + 2ab + b^2 */
        bn_set(&a, 123456789);
        bn_set(&b, 987654321);
        bn_add(&t, &a, &b);
        bn_mul(&r, &t, &t);
        check += bn_low32(&r);
        /* big multiply chain */
        bn_set(&t, 7);
        for (i = 0; i < 12; i++) {
            bn_mul(&r, &t, &t);
            bn_set(&b, 65521);
            bn_mod(&t, &r, &b);
            bn_add(&t, &t, &a);
        }
        check += bn_low32(&t);
        check = check % 1000000007;
    }
    printf("openssl-bn check=%u\n", check);
    return 0;
}
`,
})
