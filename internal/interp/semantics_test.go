package interp_test

import (
	"strings"
	"testing"

	"gocured/internal/interp"
)

// These tests pin down C semantics corners of the interpreter: integer
// widths and signedness, control-flow lowering, aggregate copies, argv,
// and libc behaviours. Everything runs both raw and cured via both().

func TestUnsignedArithmetic(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    unsigned int a = 10, b = 3;
    unsigned int big = 0x80000000;
    printf("%u %u %u\n", a / b, a % b, big / 2);
    printf("%u %u\n", big >> 1, (unsigned int)(-1) >> 28);
    int sa = -16;
    printf("%d %d\n", sa >> 2, sa / 4);
    return 0;
}
`)
	want := "3 1 1073741824\n1073741824 15\n-4 -4\n"
	if raw.Stdout != want {
		t.Errorf("stdout = %q, want %q", raw.Stdout, want)
	}
}

func TestCharAndShortTruncation(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    char c = (char)300;        /* 300 mod 256 = 44 */
    unsigned char u = (unsigned char)(-1);
    short s = (short)70000;    /* 70000 - 65536 = 4464 */
    printf("%d %d %d\n", c, u, s);
    return 0;
}
`)
	if raw.Stdout != "44 255 4464\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestFloatConversions(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    double d = 3.75;
    float f = (float)d;
    int i = (int)d;
    double back = i;
    printf("%g %g %d %g\n", d, f, i, back);
    printf("%d\n", (int)-2.9);
    return 0;
}
`)
	if raw.Stdout != "3.75 3.75 3 3\n-2\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestDoWhileContinueSemantics(t *testing.T) {
	// continue in do-while must jump to the condition, not loop forever.
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    int i = 0, evens = 0;
    do {
        i++;
        if (i % 2) continue;
        evens++;
    } while (i < 10);
    printf("%d %d\n", i, evens);
    return 0;
}
`)
	if raw.Stdout != "10 5\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestForContinueRunsPost(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    int i, skipped = 0;
    for (i = 0; i < 8; i++) {
        if (i % 3 == 0) { skipped++; continue; }
    }
    printf("%d %d\n", i, skipped);
    return 0;
}
`)
	if raw.Stdout != "8 3\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestCommaAndCompoundAssign(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int main(void) {
    int a = 1, b = 2;
    int c = (a += 3, b *= a, a + b);
    int arr[4];
    int *p = arr;
    arr[0] = 10; arr[1] = 20; arr[2] = 30; arr[3] = 40;
    p += 2;
    *p -= 5;
    printf("%d %d %d %d\n", a, b, c, arr[2]);
    return 0;
}
`)
	if raw.Stdout != "4 8 12 25\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestStructCopySemantics(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
struct P { int x; int y; char tag[4]; };
int main(void) {
    struct P a, b;
    a.x = 1; a.y = 2;
    a.tag[0] = 'A'; a.tag[1] = 0;
    b = a;           /* value copy */
    b.x = 99;
    printf("%d %d %s %d\n", a.x, b.x, b.tag, b.y);
    return 0;
}
`)
	if raw.Stdout != "1 99 A 2\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestNestedStructsAndArrays(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
struct Inner { int vals[3]; };
struct Outer { struct Inner rows[2]; int id; };
int main(void) {
    struct Outer o;
    int i, j, sum = 0;
    for (i = 0; i < 2; i++)
        for (j = 0; j < 3; j++)
            o.rows[i].vals[j] = i * 10 + j;
    o.id = 7;
    for (i = 0; i < 2; i++)
        for (j = 0; j < 3; j++)
            sum += o.rows[i].vals[j];
    printf("%d %d\n", sum, o.id);
    return 0;
}
`)
	if raw.Stdout != "36 7\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestRecursionDepth(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
int sumdown(int n) { return n == 0 ? 0 : n + sumdown(n - 1); }
int main(void) {
    printf("%d %d\n", fib(15), sumdown(200));
    return 0;
}
`)
	if raw.Stdout != "610 20100\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestMainArgv(t *testing.T) {
	u := build(t, `
int printf(char *fmt, ...);
int strcmp(char *a, char *b);
int main(int argc, char **argv) {
    int i;
    printf("argc=%d\n", argc);
    for (i = 0; i < argc; i++) printf("arg %d: %s\n", i, argv[i]);
    if (argc > 1 && strcmp(argv[1], "hello") == 0) return 42;
    return 0;
}
`)
	for _, mode := range []string{"raw", "cured"} {
		var out *interp.Outcome
		var err error
		cfg := interp.Config{Args: []string{"hello", "world"}}
		if mode == "cured" {
			out, err = u.RunCured(cfg)
		} else {
			out, err = u.RunRaw(interp.PolicyNone, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		if out.Trap != nil {
			t.Fatalf("%s trap: %v", mode, out.Trap)
		}
		if out.ExitCode != 42 {
			t.Errorf("%s exit = %d, want 42", mode, out.ExitCode)
		}
		if !strings.Contains(out.Stdout, "argc=3") ||
			!strings.Contains(out.Stdout, "arg 2: world") {
			t.Errorf("%s stdout = %q", mode, out.Stdout)
		}
	}
}

func TestArgvBoundsChecked(t *testing.T) {
	u := build(t, `
int printf(char *fmt, ...);
int main(int argc, char **argv) {
    printf("%s\n", argv[argc + 3]);   /* out of bounds */
    return 0;
}
`)
	out, err := u.RunCured(interp.Config{Args: []string{"x"}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap == nil {
		t.Fatal("walking past argv must trap when cured")
	}
}

func TestReallocPreservesPrefix(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
void *malloc(unsigned int n);
void *realloc(void *p, unsigned int n);
int main(void) {
    int *p = (int *)malloc(4 * sizeof(int));
    int i, sum = 0;
    for (i = 0; i < 4; i++) p[i] = i + 1;
    p = (int *)realloc(p, 8 * sizeof(int));
    for (i = 4; i < 8; i++) p[i] = 0;
    for (i = 0; i < 8; i++) sum += p[i];
    printf("%d\n", sum);
    return 0;
}
`)
	if raw.Stdout != "10\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestRandDeterministic(t *testing.T) {
	src := `
int printf(char *fmt, ...);
int rand(void);
void srand(unsigned int s);
int main(void) {
    int i;
    srand(7);
    for (i = 0; i < 4; i++) printf("%d ", rand() % 100);
    printf("\n");
    return 0;
}
`
	u := build(t, src)
	a := runRaw(t, u)
	b := runRaw(t, u)
	if a.Stdout != b.Stdout {
		t.Errorf("rand not deterministic: %q vs %q", a.Stdout, b.Stdout)
	}
}

func TestSprintfSnprintf(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int sprintf(char *buf, char *fmt, ...);
int snprintf(char *buf, unsigned int n, char *fmt, ...);
int main(void) {
    char buf[32];
    int n = sprintf(buf, "%s-%04d", "id", 42);
    printf("%s %d\n", buf, n);
    n = snprintf(buf, 6, "%s", "overflowing");
    printf("%s %d\n", buf, n);
    return 0;
}
`)
	want := "id-0042 7\noverf 11\n"
	if raw.Stdout != want {
		t.Errorf("stdout = %q, want %q", raw.Stdout, want)
	}
}

func TestStringFunctionsAgainstStdlib(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
char *strstr(char *h, char *n);
char *strrchr(char *s, int c);
int strncmp(char *a, char *b, unsigned int n);
char *strncpy(char *d, char *s, unsigned int n);
int main(void) {
    char buf[16];
    char *hay = "the cat sat on the mat";
    printf("%s\n", strstr(hay, "sat"));
    printf("%s\n", strrchr(hay, 't'));
    printf("%d %d\n", strncmp("abcd", "abcf", 3), strncmp("abcd", "abcf", 4) < 0);
    strncpy(buf, "tiny", 8);
    printf("%s\n", buf);
    return 0;
}
`)
	want := "sat on the mat\nt\n0 1\ntiny\n"
	if raw.Stdout != want {
		t.Errorf("stdout = %q, want %q", raw.Stdout, want)
	}
}

func TestSwitchFallthroughRuntime(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int classify(int x) {
    int r = 0;
    switch (x) {
    case 0:
    case 1: r += 1;        /* falls through */
    case 2: r += 10; break;
    case 3: r = 99; break;
    default: r = -1;
    }
    return r;
}
int main(void) {
    int i;
    for (i = 0; i < 5; i++) printf("%d ", classify(i));
    printf("\n");
    return 0;
}
`)
	if raw.Stdout != "11 11 10 99 -1 \n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestGlobalPointerTables(t *testing.T) {
	raw, _ := both(t, `
int printf(char *fmt, ...);
int one(void) { return 1; }
int two(void) { return 2; }
int (*table[2])(void) = { one, two };
char *names[2] = { "one", "two" };
int main(void) {
    int i, sum = 0;
    for (i = 0; i < 2; i++) {
        sum += table[i]();
        printf("%s ", names[i]);
    }
    printf("%d\n", sum);
    return 0;
}
`)
	if raw.Stdout != "one two 3\n" {
		t.Errorf("stdout = %q", raw.Stdout)
	}
}

func TestCostCountersMonotone(t *testing.T) {
	u := build(t, `
int main(void) {
    int i, t = 0;
    int a[64];
    for (i = 0; i < 64; i++) a[i] = i;
    for (i = 0; i < 64; i++) t += a[i];
    return t & 127;
}
`)
	raw := runRaw(t, u)
	cured := runCured(t, u)
	if cured.Counters.Cost <= raw.Counters.Cost {
		t.Errorf("cured cost %d must exceed raw cost %d", cured.Counters.Cost, raw.Counters.Cost)
	}
	rawAgain := runRaw(t, u)
	if raw.Counters.Cost != rawAgain.Counters.Cost {
		t.Errorf("cost must be deterministic: %d vs %d", raw.Counters.Cost, rawAgain.Counters.Cost)
	}
}
