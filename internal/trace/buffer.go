package trace

import (
	"sync"
	"time"
)

// ReqTrace is the finished span timeline of one request (one pipeline
// job): its trace ID, identity, wall-clock epoch, and the pre-order,
// depth-annotated span list assembled by the runner (queue wait, cache
// tier, compile phases, store I/O, run). It is the unit the trace buffer
// stores and GET /traces/{id} renders as a Chrome trace.
type ReqTrace struct {
	ID    string    `json:"trace_id"`
	Name  string    `json:"name"`
	Start time.Time `json:"start"`
	DurMS float64   `json:"dur_ms"`
	// Err is the job's error text ("" on success; traps are not errors).
	Err string `json:"err,omitempty"`
	// Spans is the request timeline in pre-order with Depth nesting
	// (Spans[0] is the root "request" span).
	Spans []Span `json:"spans"`
}

// BufferStats counts a Buffer's traffic. Evicted is normal operation (the
// buffer is a bounded ring over a busy service); Dropped counts traces the
// buffer refused — malformed entries that could never be queried (no ID,
// no spans) — and is expected to stay zero: the load-harness CI gate
// asserts it.
type BufferStats struct {
	Added   uint64 `json:"added"`
	Evicted uint64 `json:"evicted"`
	Dropped uint64 `json:"dropped"`
	Live    int    `json:"live"`
	Cap     int    `json:"cap"`
}

// DefaultBufferEntries bounds the trace buffer when no size is given.
// Traces are a few hundred bytes to a few KB each, so the default holds
// the last ~1024 requests in a couple of MB.
const DefaultBufferEntries = 1024

// Buffer is a bounded in-memory ring of finished request traces,
// queryable by trace ID. When full, adding evicts the oldest trace. It is
// safe for concurrent use.
type Buffer struct {
	mu      sync.Mutex
	cap     int
	ring    []ReqTrace // ring[head] is the oldest live entry
	head    int
	byID    map[string]int // trace ID -> ring index
	added   uint64
	evicted uint64
	dropped uint64
}

// NewBuffer returns a buffer bounded to capacity traces (<= 0 means
// DefaultBufferEntries).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultBufferEntries
	}
	return &Buffer{cap: capacity, byID: make(map[string]int, capacity)}
}

// Add stores a finished trace, evicting the oldest when full. A trace
// with no ID or no spans is counted as dropped — it could never be
// queried, so storing it would only mask the bug that produced it. A
// duplicate ID replaces the previous trace in place (a client retrying
// with its own trace ID sees the latest attempt).
func (b *Buffer) Add(t ReqTrace) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t.ID == "" || len(t.Spans) == 0 {
		b.dropped++
		return
	}
	if i, ok := b.byID[t.ID]; ok {
		b.ring[i] = t
		b.added++
		return
	}
	if len(b.ring) < b.cap {
		b.byID[t.ID] = len(b.ring)
		b.ring = append(b.ring, t)
		b.added++
		return
	}
	// Full: overwrite the oldest slot.
	old := b.ring[b.head]
	delete(b.byID, old.ID)
	b.ring[b.head] = t
	b.byID[t.ID] = b.head
	b.head = (b.head + 1) % b.cap
	b.added++
	b.evicted++
}

// Get returns the trace with the given ID.
func (b *Buffer) Get(id string) (ReqTrace, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i, ok := b.byID[id]; ok {
		return b.ring[i], true
	}
	return ReqTrace{}, false
}

// Recent returns up to n live traces, newest first (n <= 0 means all).
func (b *Buffer) Recent(n int) []ReqTrace {
	b.mu.Lock()
	defer b.mu.Unlock()
	live := len(b.ring)
	if n <= 0 || n > live {
		n = live
	}
	out := make([]ReqTrace, 0, n)
	// Newest entry is the one just before head once the ring has wrapped;
	// before wrapping it is the last appended element.
	for i := 0; i < n; i++ {
		var idx int
		if live < b.cap {
			idx = live - 1 - i
		} else {
			idx = ((b.head-1-i)%b.cap + b.cap) % b.cap
		}
		out = append(out, b.ring[idx])
	}
	return out
}

// Stats snapshots the buffer counters.
func (b *Buffer) Stats() BufferStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BufferStats{
		Added: b.added, Evicted: b.evicted, Dropped: b.dropped,
		Live: len(b.ring), Cap: b.cap,
	}
}
