package mem

import (
	"testing"
	"testing/quick"
)

func TestAllocAndBlockAt(t *testing.T) {
	m := New()
	a := m.Alloc(16, RegHeap, "a")
	b := m.Alloc(32, RegGlobal, "b")
	if a.Addr == 0 || b.Addr == 0 {
		t.Fatal("blocks must not start at the null page")
	}
	if a.End() > b.Addr {
		t.Fatal("blocks overlap")
	}
	if got := m.BlockAt(a.Addr + 7); got != a {
		t.Errorf("BlockAt inside a = %v", got)
	}
	if got := m.BlockAt(b.Addr); got != b {
		t.Errorf("BlockAt start of b = %v", got)
	}
	if got := m.BlockAt(3); got == nil || got.Region != RegNull {
		t.Errorf("BlockAt null page = %v", got)
	}
}

func TestNullPageTraps(t *testing.T) {
	m := New()
	if _, err := m.ReadInt(0, 4, true); err == nil {
		t.Error("read of address 0 must trap")
	}
	if err := m.WriteInt(8, 4, 1); err == nil {
		t.Error("write into the null page must trap")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	b := m.Alloc(64, RegHeap, "rt")
	cases := []struct {
		size   int
		signed bool
		v      int64
	}{
		{1, true, -5}, {1, false, 250}, {2, true, -30000}, {2, false, 60000},
		{4, true, -2000000000}, {4, false, 4000000000}, {8, true, -1 << 60},
	}
	for _, c := range cases {
		if err := m.WriteInt(b.Addr, c.size, c.v); err != nil {
			t.Fatal(err)
		}
		got, err := m.ReadInt(b.Addr, c.size, c.signed)
		if err != nil {
			t.Fatal(err)
		}
		want := c.v
		switch c.size {
		case 1:
			if c.signed {
				want = int64(int8(c.v))
			} else {
				want = int64(uint8(c.v))
			}
		case 2:
			if c.signed {
				want = int64(int16(c.v))
			} else {
				want = int64(uint16(c.v))
			}
		case 4:
			if c.signed {
				want = int64(int32(c.v))
			} else {
				want = int64(uint32(c.v))
			}
		}
		if got != want {
			t.Errorf("size %d signed %v: wrote %d, read %d, want %d", c.size, c.signed, c.v, got, want)
		}
	}
	if err := m.WriteFloat(b.Addr, 8, 3.25); err != nil {
		t.Fatal(err)
	}
	if f, _ := m.ReadFloat(b.Addr, 8); f != 3.25 {
		t.Errorf("double round trip = %g", f)
	}
	if err := m.WriteFloat(b.Addr, 4, 1.5); err != nil {
		t.Fatal(err)
	}
	if f, _ := m.ReadFloat(b.Addr, 4); f != 1.5 {
		t.Errorf("float round trip = %g", f)
	}
}

func TestFreeSemantics(t *testing.T) {
	m := New()
	b := m.Alloc(8, RegHeap, "f")
	g := m.Alloc(8, RegGlobal, "g")
	if err := m.Free(b.Addr); err != nil {
		t.Fatalf("first free: %v", err)
	}
	if err := m.Free(b.Addr); err == nil {
		t.Error("double free must trap")
	}
	if err := m.Free(g.Addr); err == nil {
		t.Error("free of a global must trap")
	}
	if err := m.Free(b.Addr + 4); err == nil {
		t.Error("free of an interior pointer must trap")
	}
}

func TestOverflowCorruptsSilently(t *testing.T) {
	m := New()
	a := m.Alloc(8, RegGlobal, "a")
	b := m.Alloc(8, RegGlobal, "b")
	if err := m.WriteInt(b.Addr, 4, 1234); err != nil {
		t.Fatal(err)
	}
	// Write past a's end far enough to hit b.
	off := b.Addr - a.Addr
	if err := m.WriteInt(a.Addr+off, 4, 9999); err != nil {
		t.Fatalf("in-arena overflow must not trap: %v", err)
	}
	v, _ := m.ReadInt(b.Addr, 4, true)
	if v != 9999 {
		t.Errorf("b = %d, want corruption to 9999", v)
	}
}

func TestStackPushPop(t *testing.T) {
	m := New()
	m.InitStack(4096)
	f1, err := m.PushFrame(64, "f1")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := m.PushFrame(64, "f2")
	if err != nil {
		t.Fatal(err)
	}
	if !m.InStack(f1.Addr) || !m.InStack(f2.Addr) {
		t.Error("frames must be in the stack region")
	}
	if got := m.BlockAt(f2.Addr + 8); got != f2 {
		t.Errorf("BlockAt inner frame = %v", got)
	}
	m.PopFrame()
	if got := m.BlockAt(f2.Addr + 8); got != nil {
		t.Errorf("popped frame still found: %v", got)
	}
	// Memory is reused by the next push.
	f3, err := m.PushFrame(32, "f3")
	if err != nil {
		t.Fatal(err)
	}
	if f3.Addr != f2.Addr {
		t.Errorf("frame not reused: f3 at 0x%x, f2 was 0x%x", f3.Addr, f2.Addr)
	}
}

func TestStackOverflow(t *testing.T) {
	m := New()
	m.InitStack(256)
	if _, err := m.PushFrame(128, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PushFrame(200, "b"); err == nil {
		t.Error("expected stack overflow")
	}
}

func TestWildTags(t *testing.T) {
	m := New()
	b := m.Alloc(32, RegHeap, "w")
	if b.TagAt(b.Addr) != 0 {
		t.Error("non-wild block has tags")
	}
	b.MakeWild()
	b.SetTag(b.Addr+8, 1)
	if b.TagAt(b.Addr+8) != 1 || b.TagAt(b.Addr+11) != 1 {
		t.Error("tag covers its whole word")
	}
	if b.TagAt(b.Addr+12) != 0 {
		t.Error("neighbouring word tagged")
	}
	b.SetTag(b.Addr+8, 0)
	if b.TagAt(b.Addr+8) != 0 {
		t.Error("tag not cleared")
	}
}

func TestCStringAndBytes(t *testing.T) {
	m := New()
	b := m.Alloc(16, RegGlobal, "s")
	for i, c := range []byte("hi!") {
		if err := m.WriteInt(b.Addr+uint32(i), 1, int64(c)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := m.CString(b.Addr, 16)
	if err != nil || s != "hi!" {
		t.Errorf("CString = %q, %v", s, err)
	}
	bs, err := m.Bytes(b.Addr, 3)
	if err != nil || string(bs) != "hi!" {
		t.Errorf("Bytes = %q, %v", bs, err)
	}
}

func TestCopyOverlap(t *testing.T) {
	m := New()
	b := m.Alloc(16, RegHeap, "c")
	for i := 0; i < 8; i++ {
		if err := m.WriteInt(b.Addr+uint32(i), 1, int64('a'+i)); err != nil {
			t.Fatal(err)
		}
	}
	// memmove semantics: overlapping copy forward.
	if err := m.Copy(b.Addr+2, b.Addr, 8); err != nil {
		t.Fatal(err)
	}
	s, _ := m.CString(b.Addr, 16)
	if s[2:10] != "abcdefgh" {
		t.Errorf("after overlap copy: %q", s)
	}
}

// Property: Alloc never produces overlapping live blocks, and BlockAt
// always maps interior addresses back to their block.
func TestAllocProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New()
		var blocks []*Block
		for _, s := range sizes {
			blocks = append(blocks, m.Alloc(uint32(s%100)+1, RegHeap, "p"))
		}
		for i, b := range blocks {
			for j, c := range blocks {
				if i != j && b.Addr < c.End() && c.Addr < b.End() {
					return false
				}
			}
			if m.BlockAt(b.Addr) != b || m.BlockAt(b.End()-1) != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
