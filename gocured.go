// Package gocured is a from-scratch Go reproduction of CCured, the memory-
// safety program transformation system of Necula et al., as extended by
// "CCured in the Real World" (Condit, Harren, McPeak, Necula, Weimer;
// PLDI 2003).
//
// The library compiles a C program (a substantial C subset with CCured's
// annotation extensions), infers a pointer kind — SAFE, SEQ, WILD, or RTTI —
// for every pointer occurrence using physical subtyping and run-time type
// information, instruments the program with CCured's run-time checks, and
// executes either the original or the cured program on a simulated ILP32
// machine. Uncured programs really corrupt memory on buffer overflows;
// cured programs trap.
//
// Quick start:
//
//	prog, err := gocured.Compile("demo.c", src, gocured.Options{})
//	raw, _   := prog.Run(gocured.ModeRaw, gocured.RunOptions{})
//	cured, _ := prog.Run(gocured.ModeCured, gocured.RunOptions{})
//	fmt.Println(prog.Stats().PctSafe, cured.Trapped)
package gocured

import (
	"bytes"
	"fmt"
	"io"
	"strings"

	"gocured/internal/cil"
	"gocured/internal/core"
	"gocured/internal/ctypes"
	"gocured/internal/flight"
	"gocured/internal/infer"
	"gocured/internal/interp"
	"gocured/internal/trace"
)

// Version identifies the compiler/analysis revision. The pipeline's
// content-addressed cache folds it into every key, so cached Programs are
// invalidated whenever the curing algorithm changes behaviour.
const Version = "gocured-1"

// Options configure compilation and inference.
type Options struct {
	// NoRTTI disables the RTTI pointer kind: checked downcasts become bad
	// casts and their pointers go WILD (the pre-PLDI03 system; used by the
	// ijpeg ablation experiment).
	NoRTTI bool
	// NoPhysicalSubtyping additionally disables upcast verification
	// (the original POPL02 CCured).
	NoPhysicalSubtyping bool
	// TrustBadCasts treats remaining bad casts as trusted rather than
	// making pointers WILD — the tradeoff used for bind in §5.
	TrustBadCasts bool
	// ForceSplitAll puts every type in the compatible (split)
	// representation — the §5 all-split overhead ablation.
	ForceSplitAll bool
	// NoOptimize disables the CFG-based check optimizer (-O0): every check
	// the curer inserted stays in the program. The default (optimizer on)
	// deletes checks proven redundant and hoists loop-invariant ones.
	NoOptimize bool
}

// Mode selects how Run executes the program.
type Mode int

// Execution modes.
const (
	// ModeRaw runs the original program with no instrumentation.
	ModeRaw Mode = iota
	// ModeCured runs the instrumented program with CCured's checks.
	ModeCured
	// ModePurify runs the original program under a Purify-style
	// shadow-memory policy (reports, does not trap).
	ModePurify
	// ModeValgrind runs the original program under a Valgrind-style
	// shadow-memory policy.
	ModeValgrind
)

var modeNames = [...]string{"raw", "cured", "purify", "valgrind"}

func (m Mode) String() string { return modeNames[m] }

// Modes lists every execution mode, in Mode order.
func Modes() []Mode {
	return []Mode{ModeRaw, ModeCured, ModePurify, ModeValgrind}
}

// ParseMode parses a mode name ("raw", "cured", "purify", "valgrind").
func ParseMode(s string) (Mode, error) {
	for i, n := range modeNames {
		if s == n {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("unknown mode %q (want raw, cured, purify, or valgrind)", s)
}

// RunOptions configure one execution.
type RunOptions struct {
	// StepLimit bounds executed instructions (0 = 1e9).
	StepLimit uint64
	// StackSize in bytes (0 = 1 MiB).
	StackSize uint32
	// Seed drives the deterministic rand().
	Seed uint64
	// Stdin supplies bytes for getchar().
	Stdin []byte
	// Args are program arguments for main(int argc, char **argv).
	Args []string
	// Trace enables the flight recorder: every check, trap, allocation,
	// fat-pointer conversion, wrapper call, and call/return is recorded into
	// a fixed-size ring, rendered into Result.TraceJSON (Chrome trace-event
	// format, loadable in Perfetto). On a trap, Result.BlackBox carries the
	// final ring window. Disabled (the default) the recorder costs one nil
	// comparison per event site.
	Trace bool
	// TraceBuf overrides the ring capacity in events (0 = 8192). The ring
	// keeps the most recent TraceBuf events; older ones are dropped and
	// counted.
	TraceBuf int
	// ProfilePeriod enables step-sampling profiling: every ProfilePeriod
	// interpreter steps the current source line is sampled into
	// Result.Profile. 0 disables; use flight.DefaultSamplePeriod (4096) for
	// the standard rate.
	ProfilePeriod int
	// Backend selects the interpreter backend: "vm" (the default; flat
	// bytecode compiled once per Program and shared by every run) or
	// "tree" (the reference tree walker). Both produce bit-identical
	// results; "tree" exists as the oracle and escape hatch.
	Backend string
}

// Result is the outcome of one execution.
type Result struct {
	ExitCode int
	Stdout   string
	// Trapped reports whether a memory-safety check (or the simulated
	// MMU) stopped the program; TrapKind/TrapMessage give details.
	Trapped     bool
	TrapKind    string
	TrapMessage string
	// TrapPos is the rendered source location of the trapping statement,
	// TrapStack the cured-program call stack at the trap (innermost frame
	// first), and TrapBlame the inference blame chain of the pointer whose
	// check fired — why the pointer had a checked kind at all.
	TrapPos   string
	TrapStack []string
	TrapBlame []string
	// Steps and Checks are dynamic counters; MemAccesses counts raw
	// loads+stores; SimCycles is the deterministic simulated-cycle count
	// used for slowdown ratios (see EXPERIMENTS.md).
	Steps, Checks, MemAccesses, SimCycles uint64
	// CheckSites lists every executed check site with its hit and trap
	// counts, hottest first (per-site attribution of the checking cost).
	CheckSites []CheckSiteCount
	// ToolReports carries Purify/Valgrind-style diagnostics.
	ToolReports []string
	// TraceJSON is the Chrome trace-event rendering of the run's flight
	// recording (RunOptions.Trace); nil when tracing was off. The file has
	// one track for the compile phases and one for the interpreter, and
	// loads directly into Perfetto or chrome://tracing.
	TraceJSON []byte
	// Profile lists the hottest cured-source lines by sampled interpreter
	// steps (RunOptions.ProfilePeriod), hottest first.
	Profile []ProfileLine
	// BlackBox is the crash snapshot: the last ring window up to the trap,
	// with the call stack and blame chain. Nil unless tracing was on and the
	// run trapped.
	BlackBox *flight.BlackBox
}

// ProfileLine is one line of the step-sampling profile.
type ProfileLine struct {
	Pos      string  `json:"pos"`
	Samples  uint64  `json:"samples"`
	Pct      float64 `json:"pct"`
	EstSteps uint64  `json:"est_steps"`
}

// CheckSiteCount is one check site's dynamic counters. Eliminated counts
// checks the optimizer deleted statically at the site, so the report stays
// truthful about what curing originally inserted there.
type CheckSiteCount struct {
	Pos        string `json:"pos"`
	Kind       string `json:"kind"`
	Hits       uint64 `json:"hits"`
	Traps      uint64 `json:"traps"`
	Eliminated uint64 `json:"eliminated,omitempty"`
}

// TopCheckSites returns the n hottest check sites of the run.
func (r *Result) TopCheckSites(n int) []CheckSiteCount {
	if n > len(r.CheckSites) {
		n = len(r.CheckSites)
	}
	return r.CheckSites[:n]
}

// Stats summarizes the static analysis of a compiled program: the pointer
// kind distribution (the sf/sq/w/rt columns of the paper's Figures 8 and 9),
// the cast classification of §3, and the split-representation statistics of
// §4.2.
type Stats struct {
	Pointers int
	Safe     int
	Seq      int
	Wild     int
	Rtti     int

	PctSafe, PctSeq, PctWild, PctRtti float64

	Casts     int // casts involving pointer types
	Identity  int // physically equal
	Upcasts   int
	Downcasts int
	SeqCasts  int // tiling-compatible SEQ casts
	BadCasts  int
	Trusted   int
	Alloc     int // allocator-result casts (polymorphic allocator typing)

	SplitPointers int // pointers using the compatible representation
	MetaPointers  int // split pointers that need a metadata pointer
	PctSplit      float64
	PctMeta       float64

	ChecksInserted int // static run-time checks added by curing
	// Optimizer statistics (all zero at -O0): checks deleted outright
	// (eliminated as available + coalesced into a widened neighbor), and
	// checks moved out of loops (hoisted invariant + widened induction).
	ChecksEliminated int
	ChecksCoalesced  int
	ChecksHoisted    int
	ChecksWidened    int
	Lines            int // source lines
}

// Program is a compiled and cured translation unit.
//
// A Program is safe for concurrent use: Run creates a fresh interpreter
// (machine state, simulated memory, stack) per call, and the shared
// analysis artifacts it consults — the solved qualifier graph, the split
// result, the struct-layout cache, and the RTTI hierarchy — are either
// frozen read-only after Compile or internally synchronized. Many
// goroutines may Run the same Program (in any mix of Modes) and read
// Stats, Casts, and Diagnostics at the same time; the pipeline Runner
// relies on this to execute cached Programs in parallel.
type Program struct {
	unit *core.Unit
	opts Options
}

// Compile parses, type checks, infers pointer kinds for, and instruments a
// C source file. The returned Program can run in any Mode.
func Compile(filename, src string, opts Options) (*Program, error) {
	return CompileStored(filename, src, opts, nil)
}

// SummarySource supplies persisted per-function inference summaries to
// CompileStored (see internal/store for the on-disk implementation).
type SummarySource = infer.SummarySource

// IncrStats reports how an incremental compilation composed its inference
// result: functions replayed from stored summaries vs. re-collected.
type IncrStats = infer.IncrStats

// CompileStored is Compile backed by a persistent artifact store: functions
// whose stored constraint summaries still match the current source are
// replayed instead of re-inferred, producing a bit-identical Program. A nil
// sums degrades to Compile.
func CompileStored(filename, src string, opts Options, sums SummarySource) (*Program, error) {
	u, err := core.BuildStored(filename, src, infer.Options{
		NoRTTI:              opts.NoRTTI,
		NoPhysicalSubtyping: opts.NoPhysicalSubtyping,
		TrustBadCasts:       opts.TrustBadCasts,
		SplitAll:            opts.ForceSplitAll,
		NoOptimize:          opts.NoOptimize,
	}, sums)
	if err != nil {
		return nil, err
	}
	return &Program{unit: u, opts: opts}, nil
}

// IncrStats reports how this Program's inference was composed (all-recured
// for a plain Compile).
func (p *Program) IncrStats() IncrStats { return p.unit.Incr }

// Run executes the program in the given mode.
func (p *Program) Run(mode Mode, opt RunOptions) (*Result, error) {
	backend, err := interp.ParseBackend(opt.Backend)
	if err != nil {
		return nil, err
	}
	cfg := interp.Config{
		StepLimit: opt.StepLimit,
		StackSize: opt.StackSize,
		Seed:      opt.Seed,
		Stdin:     opt.Stdin,
		Args:      opt.Args,
		Backend:   backend,
	}
	var ring *flight.Ring
	if opt.Trace {
		capacity := opt.TraceBuf
		if capacity <= 0 {
			capacity = flight.DefaultRingCap
		}
		ring = flight.NewRing(capacity, "interp "+mode.String())
		cfg.Flight = ring
	}
	var prof *flight.Profile
	if opt.ProfilePeriod > 0 {
		prof = flight.NewProfile(opt.ProfilePeriod)
		cfg.Profile = prof
	}
	var out *interp.Outcome
	switch mode {
	case ModeRaw:
		out, err = p.unit.RunRaw(interp.PolicyNone, cfg)
	case ModeCured:
		out, err = p.unit.RunCured(cfg)
	case ModePurify:
		out, err = p.unit.RunRaw(interp.PolicyPurify, cfg)
	case ModeValgrind:
		out, err = p.unit.RunRaw(interp.PolicyValgrind, cfg)
	default:
		return nil, fmt.Errorf("unknown mode %d", mode)
	}
	if err != nil {
		return nil, err
	}
	res := &Result{
		ExitCode:    out.ExitCode,
		Stdout:      out.Stdout,
		Steps:       out.Counters.Steps,
		Checks:      out.Counters.Checks,
		MemAccesses: out.MemLoads + out.MemStores,
		SimCycles:   out.Counters.Cost,
		ToolReports: out.ToolReports,
	}
	if out.Trap != nil {
		res.Trapped = true
		res.TrapKind = out.Trap.Kind
		res.TrapMessage = out.Trap.Msg
		res.TrapPos = out.Trap.Pos
		res.TrapStack = out.Trap.Stack
		if out.TrapProv != nil {
			res.TrapBlame = out.TrapProv.Blame
		}
	}
	for _, s := range out.Counters.TopSites(0) {
		res.CheckSites = append(res.CheckSites, CheckSiteCount{
			Pos: s.Pos, Kind: s.Kind.String(), Hits: s.Hits, Traps: s.Traps,
			Eliminated: s.Elided,
		})
	}
	if ring != nil {
		// Two tracks: the compile phases (wall ms rescaled to µs) give the
		// trace a build prologue; the interpreter track runs in simulated
		// cycles, so timestamps are deterministic across runs.
		var buf bytes.Buffer
		rings := []*flight.Ring{ring}
		if len(p.unit.Spans) > 0 {
			rings = append([]*flight.Ring{flight.RingFromSpans("compile", p.unit.Spans)}, rings...)
		}
		if werr := flight.WriteTrace(&buf, rings); werr == nil {
			res.TraceJSON = buf.Bytes()
		}
		res.BlackBox = out.BlackBox
	}
	if prof != nil {
		for _, l := range prof.Top(0) {
			res.Profile = append(res.Profile, ProfileLine{
				Pos: l.Pos, Samples: l.Samples, Pct: l.Pct, EstSteps: l.EstSteps,
			})
		}
	}
	return res, nil
}

// Spans returns the per-phase wall times of the compilation (parse, sema,
// lower, infer, instrument).
func (p *Program) Spans() []trace.Span { return p.unit.Spans }

// ExplainKind returns rendered blame chains explaining why pointers at a
// given cast site carry a checked (non-SAFE) kind: bad or demoted casts
// explain WILD, downcasts RTTI, tiling and integer casts SEQ. site is a
// prefix of the rendered source position ("file.c:12" matches every column
// on that line); "" explains every interesting site. Chains for pointers in
// the same equivalence class are reported once.
func (p *Program) ExplainKind(site string) []string {
	res := p.unit.Res
	seen := make(map[string]bool)
	var out []string
	explain := func(t *ctypes.Type) {
		n := res.Graph.Lookup(t)
		if n == nil {
			return
		}
		key := fmt.Sprintf("n%d/%s", n.ID, res.Graph.KindOf(t))
		if seen[key] {
			return
		}
		ch := res.Explain(t)
		if ch == nil {
			return
		}
		seen[key] = true
		out = append(out, ch.Render())
	}
	for _, c := range res.Casts {
		if site != "" && !strings.HasPrefix(c.Pos.String(), site) {
			continue
		}
		switch {
		case c.Class == infer.CastBad || c.WentWild:
			explain(c.From)
			explain(c.To)
		case c.Class == infer.CastDowncast:
			explain(c.From)
		case c.Class == infer.CastSeqTile, c.Class == infer.CastIntToPtr:
			explain(c.From)
			explain(c.To)
		case c.Class == infer.CastIdentity, c.Class == infer.CastUpcast:
			// An innocent-looking cast whose pointers were infected through
			// data flow: explain() is a no-op for SAFE pointers, so only the
			// infected ones produce chains.
			explain(c.From)
			explain(c.To)
		}
	}
	return out
}

// Stats returns the static analysis summary.
func (p *Program) Stats() Stats {
	s := p.unit.Stats()
	out := Stats{
		Pointers: s.Ptrs, Safe: s.Safe, Seq: s.Seq, Wild: s.Wild, Rtti: s.Rtti,
		PctSafe: s.PctSafe(), PctSeq: s.PctSeq(), PctWild: s.PctWild(), PctRtti: s.PctRtti(),
		Casts: s.Casts, Identity: s.Identity, Upcasts: s.Upcasts,
		Downcasts: s.Downcasts, SeqCasts: s.SeqCasts, BadCasts: s.Bad,
		Trusted: s.Trusted, Alloc: s.Alloc,
		Lines: CountLines(p.unit.Source),
	}
	if sp := p.unit.Res.Split; sp != nil {
		out.SplitPointers = sp.Stats.SplitPtrs
		out.MetaPointers = sp.Stats.MetaPtrs
		out.PctSplit = sp.Stats.PctSplit()
		out.PctMeta = sp.Stats.PctMeta()
	}
	for _, n := range p.unit.Cured.ChecksInserted {
		out.ChecksInserted += n
	}
	if o := p.unit.Cured.Opt; o != nil {
		out.ChecksEliminated = o.Eliminated
		out.ChecksCoalesced = o.Coalesced
		out.ChecksHoisted = o.Hoisted
		out.ChecksWidened = o.Widened
	}
	return out
}

// CastReport describes one classified cast site (for security review: the
// paper advises starting a review of bind at its trusted casts).
type CastReport struct {
	Pos     string
	From    string
	To      string
	Class   string
	Trusted bool
}

// Casts returns every pointer-cast site with its classification.
func (p *Program) Casts() []CastReport {
	var out []CastReport
	for _, c := range p.unit.Res.Casts {
		if c.Class == infer.CastNonPtr {
			continue
		}
		out = append(out, CastReport{
			Pos:     c.Pos.String(),
			From:    c.From.String(),
			To:      c.To.String(),
			Class:   c.Class.String(),
			Trusted: c.Trusted,
		})
	}
	return out
}

// Diagnostics returns the warnings and notes from all phases, rendered.
func (p *Program) Diagnostics() []string {
	var out []string
	for _, d := range p.unit.Diags.All() {
		out = append(out, d.String())
	}
	return out
}

// DumpCured writes a readable rendering of the instrumented program.
func (p *Program) DumpCured(w io.Writer) { cil.Print(w, p.unit.Cured.Prog) }

// DumpRaw writes a readable rendering of the uninstrumented program.
func (p *Program) DumpRaw(w io.Writer) { cil.Print(w, p.unit.Raw) }

// CountLines counts non-blank source lines (the paper's "lines of code").
func CountLines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}
