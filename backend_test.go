package gocured_test

// Golden equivalence of the two interpreter backends: for every corpus
// program (plus the examples' C sources and a trapping exploit run), the
// tree walker and the bytecode VM must produce byte-identical Results —
// stdout, exit code, every counter, the full per-site check table, and on
// trapping runs the trap kind/message/position/stack and the inference
// blame chain. reflect.DeepEqual over the whole Result struct enforces
// all of it at once; any intentional divergence would have to be carved
// out explicitly here.

import (
	"os"
	"reflect"
	"testing"

	"gocured"
	"gocured/internal/corpus"
)

// runBoth executes one compiled program on both backends and fails the
// test on any Result difference.
func runBoth(t *testing.T, prog *gocured.Program, opt gocured.RunOptions) {
	t.Helper()
	opt.Backend = "tree"
	tree, err := prog.Run(gocured.ModeCured, opt)
	if err != nil {
		t.Fatalf("tree run: %v", err)
	}
	opt.Backend = "vm"
	vm, err := prog.Run(gocured.ModeCured, opt)
	if err != nil {
		t.Fatalf("vm run: %v", err)
	}
	if !reflect.DeepEqual(tree, vm) {
		t.Errorf("backends disagree:\ntree: %+v\nvm:   %+v", tree, vm)
	}
}

func TestBackendsGoldenOnCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus backend comparison is not -short")
	}
	for _, p := range corpus.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := gocured.Compile(p.Name+".c", p.Source, gocured.Options{TrustBadCasts: p.TrustBadCasts})
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			runBoth(t, prog, gocured.RunOptions{})
		})
	}
}

// TestBackendsGoldenOnTrap drives the ftpd exploit session: both backends
// must trap at the same site with the same message, stack, and blame
// chain (the Result carries all of them).
func TestBackendsGoldenOnTrap(t *testing.T) {
	p := corpus.ByName("ftpd")
	prog, err := gocured.Compile("ftpd.c", p.Source, gocured.Options{TrustBadCasts: p.TrustBadCasts})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	opt := gocured.RunOptions{Stdin: []byte(corpus.FtpdExploitInput)}
	opt.Backend = "vm"
	vm, err := prog.Run(gocured.ModeCured, opt)
	if err != nil {
		t.Fatalf("vm run: %v", err)
	}
	if !vm.Trapped {
		t.Fatal("cured ftpd exploit did not trap on the vm backend")
	}
	runBoth(t, prog, opt)
}

// TestBackendsGoldenOnExamples covers the C sources under examples/.
func TestBackendsGoldenOnExamples(t *testing.T) {
	src, err := os.ReadFile("examples/explain/wild.c")
	if err != nil {
		t.Fatalf("read example: %v", err)
	}
	prog, err := gocured.Compile("wild.c", string(src), gocured.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	runBoth(t, prog, gocured.RunOptions{})
}
