package rtti

import (
	"testing"

	"gocured/internal/ctypes"
)

// mkHierarchy builds Figure <- Circle <- (ColoredCircle) plus Square.
func mkHierarchy() (h *Hierarchy, fig, cir, colored, square *ctypes.Type) {
	figSU := ctypes.NewStruct("Figure", false)
	area := func() *ctypes.Type {
		return ctypes.PointerTo(ctypes.FuncType(ctypes.FloatType(8),
			[]*ctypes.Type{ctypes.PointerTo(ctypes.StructType(figSU))}, nil, false))
	}
	figSU.Define([]*ctypes.Field{{Name: "area", Type: area()}})

	cirSU := ctypes.NewStruct("Circle", false)
	cirSU.Define([]*ctypes.Field{
		{Name: "area", Type: area()},
		{Name: "radius", Type: ctypes.IntT()},
	})
	colSU := ctypes.NewStruct("ColoredCircle", false)
	colSU.Define([]*ctypes.Field{
		{Name: "area", Type: area()},
		{Name: "radius", Type: ctypes.IntT()},
		{Name: "color", Type: ctypes.IntT()},
	})
	sqSU := ctypes.NewStruct("Square", false)
	sqSU.Define([]*ctypes.Field{
		{Name: "area", Type: area()},
		{Name: "side", Type: ctypes.FloatType(8)},
	})
	h = NewHierarchy()
	fig = ctypes.StructType(figSU)
	cir = ctypes.StructType(cirSU)
	colored = ctypes.StructType(colSU)
	square = ctypes.StructType(sqSU)
	for _, t := range []*ctypes.Type{fig, cir, colored, square} {
		h.Of(t)
	}
	return
}

func TestIsSubtypeChain(t *testing.T) {
	h, fig, cir, colored, square := mkHierarchy()
	nf, nc, ncc, ns := h.Of(fig), h.Of(cir), h.Of(colored), h.Of(square)

	cases := []struct {
		a, b *Node
		want bool
	}{
		{nc, nf, true},   // Circle <= Figure
		{ncc, nf, true},  // ColoredCircle <= Figure
		{ncc, nc, true},  // ColoredCircle <= Circle
		{ns, nf, true},   // Square <= Figure
		{nf, nc, false},  // Figure is not <= Circle
		{nc, ncc, false}, // Circle is not <= ColoredCircle
		{nc, ns, false},  // Circle vs Square unrelated (int vs double)
		{ns, nc, false},  // Square not <= Circle
		{nf, nf, true},   // reflexive
		{nc, nc, true},   // reflexive
	}
	for _, c := range cases {
		if got := h.IsSubtype(c.a, c.b); got != c.want {
			t.Errorf("IsSubtype(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestVoidIsTop(t *testing.T) {
	h, fig, cir, _, _ := mkHierarchy()
	for _, n := range []*Node{h.Of(fig), h.Of(cir), h.Of(ctypes.IntT())} {
		if !h.IsSubtype(n, h.VoidNode) {
			t.Errorf("%s must be a subtype of void", n)
		}
	}
	if h.IsSubtype(h.VoidNode, h.Of(fig)) {
		t.Error("void must not be a subtype of Figure")
	}
}

func TestHasStrictSubtypes(t *testing.T) {
	h, fig, cir, colored, square := mkHierarchy()
	if !h.HasStrictSubtypes(h.Of(fig)) {
		t.Error("Figure has subtypes (Circle, Square)")
	}
	if !h.HasStrictSubtypes(h.Of(cir)) {
		t.Error("Circle has a subtype (ColoredCircle)")
	}
	if h.HasStrictSubtypes(h.Of(colored)) {
		t.Error("ColoredCircle has no subtypes")
	}
	if h.HasStrictSubtypes(h.Of(square)) {
		t.Error("Square has no subtypes")
	}
	if !h.HasStrictSubtypes(h.VoidNode) {
		t.Error("void has strict subtypes once anything is registered")
	}
	// Scalars never count as having subtypes (§3.2 inference rule).
	if h.HasStrictSubtypes(h.Of(ctypes.IntT())) {
		t.Error("int must not report subtypes")
	}
}

func TestOfCanonicalizes(t *testing.T) {
	h := NewHierarchy()
	a := h.Of(ctypes.PointerTo(ctypes.CharType()))
	b := h.Of(ctypes.PointerTo(ctypes.CharType()))
	if a != b {
		t.Error("structurally equal types must share one node")
	}
	if h.Of(ctypes.IntT()) == h.Of(ctypes.UIntT()) {
		t.Error("int and unsigned int are distinct nodes")
	}
	if h.Lookup(ctypes.CharType()) != nil {
		t.Error("Lookup must not register")
	}
	h.Of(ctypes.CharType())
	if h.Lookup(ctypes.CharType()) == nil {
		t.Error("Lookup must find a registered type")
	}
}

func TestSubtypeCaching(t *testing.T) {
	h, fig, cir, _, _ := mkHierarchy()
	nf, nc := h.Of(fig), h.Of(cir)
	// Repeated queries must be consistent (exercise the cache).
	for i := 0; i < 3; i++ {
		if !h.IsSubtype(nc, nf) || h.IsSubtype(nf, nc) {
			t.Fatal("cache corrupted subtype relation")
		}
	}
}
