package flight

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"gocured/internal/trace"
)

func TestRingWraparound(t *testing.T) {
	r := NewRing(8, "t")
	for i := 0; i < 20; i++ {
		r.Record(Event{TS: uint64(i), Kind: EvMark, Name: fmt.Sprintf("e%d", i)})
	}
	if got := r.Len(); got != 8 {
		t.Fatalf("Len = %d, want 8", got)
	}
	if got := r.Dropped(); got != 12 {
		t.Fatalf("Dropped = %d, want 12", got)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("len(Events) = %d, want 8", len(evs))
	}
	for i, e := range evs {
		want := uint64(12 + i)
		if e.TS != want {
			t.Errorf("event %d: TS = %d, want %d (oldest-first order)", i, e.TS, want)
		}
	}
}

func TestRingNoWrap(t *testing.T) {
	r := NewRing(8, "t")
	r.Record(Event{TS: 1, Kind: EvMark, Name: "a"})
	r.Record(Event{TS: 2, Kind: EvMark, Name: "b"})
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", r.Dropped())
	}
	evs := r.Events()
	if len(evs) != 2 || evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("Events = %+v", evs)
	}
}

// A wrapped ring can retain an EvRet whose EvCall was overwritten, and an
// EvCall whose EvRet never happened. The exporter must still emit balanced
// B/E pairs that pass validation.
func TestExportBalancedAfterWraparound(t *testing.T) {
	r := NewRing(4, "interp")
	r.Record(Event{TS: 1, Kind: EvCall, Name: "main"})
	r.Record(Event{TS: 2, Kind: EvCall, Name: "f"})
	r.Record(Event{TS: 3, Kind: EvRet, Name: "f"})
	r.Record(Event{TS: 4, Kind: EvRet, Name: "main"})
	// Wrap: push the two Call events out, keep orphan Rets in view.
	r.Record(Event{TS: 5, Kind: EvCall, Name: "g"})
	r.Record(Event{TS: 6, Kind: EvMark, Name: "x"})
	// g never returns (simulates a step-limit kill mid-call).
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*Ring{r}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("no events exported")
	}
	out := buf.String()
	if !strings.Contains(out, `"name":"g","ph":"B"`) {
		t.Errorf("missing B for g: %s", out)
	}
	if !strings.Contains(out, `"name":"g","ph":"E"`) {
		t.Errorf("missing synthetic E for g: %s", out)
	}
}

func TestValidateRejectsBadTraces(t *testing.T) {
	cases := []struct {
		name string
		data string
		want string
	}{
		{"not json", `{`, "not valid JSON"},
		{"no events", `{}`, "no traceEvents"},
		{"backwards ts", `{"traceEvents":[
			{"name":"a","ph":"i","ts":5,"pid":1,"tid":1,"s":"t"},
			{"name":"b","ph":"i","ts":4,"pid":1,"tid":1,"s":"t"}]}`, "goes backwards"},
		{"orphan E", `{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}`, "no open B"},
		{"unclosed B", `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}`, "never closed"},
		{"mismatched E", `{"traceEvents":[
			{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
			{"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}`, "does not match"},
		{"bad phase", `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":1}]}`, "unknown phase"},
	}
	for _, tc := range cases {
		if _, err := ValidateTrace([]byte(tc.data)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	ok := `{"traceEvents":[
		{"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
		{"name":"a","ph":"E","ts":2,"pid":1,"tid":1},
		{"name":"a","ph":"B","ts":1,"pid":1,"tid":2}],"displayTimeUnit":"ms"}`
	// tid 2's unclosed B must be caught even though tid 1 balances.
	if _, err := ValidateTrace([]byte(ok)); err == nil {
		t.Error("per-track unclosed B not caught")
	}
}

func TestSnapshotEndsAtTrap(t *testing.T) {
	r := NewRing(128, "interp")
	r.SetSites([]Site{{Pos: "t.c:9:1", Kind: "seq"}})
	for i := 0; i < 40; i++ {
		r.Record(Event{TS: uint64(i), Kind: EvCheck, Site: 1})
	}
	r.Record(Event{TS: 40, Kind: EvTrap, Name: "bounds", Pos: "t.c:9:1"})
	// Unwinding noise after the trap must not enter the snapshot.
	r.Record(Event{TS: 41, Kind: EvRet, Name: "main"})
	bb := Snapshot(r, 36)
	if bb.TrapKind != "bounds" || bb.TrapPos != "t.c:9:1" {
		t.Fatalf("trap attribution = %q %q", bb.TrapKind, bb.TrapPos)
	}
	if len(bb.Events) != 36 {
		t.Fatalf("snapshot has %d events, want 36", len(bb.Events))
	}
	last := bb.Events[len(bb.Events)-1]
	if !strings.Contains(last, "trap bounds") {
		t.Fatalf("last snapshot line is %q, want the trap event", last)
	}
	for _, l := range bb.Events[:len(bb.Events)-1] {
		if !strings.Contains(l, "check seq at t.c:9:1") {
			t.Fatalf("preceding line %q not resolved through the site table", l)
		}
	}
}

func TestProfileTopDeterministicOnTies(t *testing.T) {
	p := NewProfile(64)
	// Same sample counts; numeric line order must win (lexical order would
	// put t.c:10 before t.c:9).
	p.Sample("t.c:10")
	p.Sample("t.c:9")
	p.Sample("t.c:100")
	top := p.Top(0)
	got := []string{top[0].Pos, top[1].Pos, top[2].Pos}
	want := []string{"t.c:9", "t.c:10", "t.c:100"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Top order = %v, want %v", got, want)
		}
	}
	if top[0].EstSteps != 64 {
		t.Errorf("EstSteps = %d, want 64 (samples x period)", top[0].EstSteps)
	}
}

func TestRingFromSpansNesting(t *testing.T) {
	spans := []trace.Span{
		{Name: "build", StartMS: 0, DurMS: 10, Depth: 0},
		{Name: "parse", StartMS: 0, DurMS: 4, Depth: 1},
		{Name: "sema", StartMS: 4, DurMS: 6, Depth: 1},
	}
	r := RingFromSpans("compile", spans)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*Ring{r}); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(buf.Bytes()); err != nil {
		t.Fatalf("span trace does not validate: %v\n%s", err, buf.String())
	}
}

func TestRecorderCheckoutRelease(t *testing.T) {
	rec := NewRecorder(16)
	a := rec.Checkout()
	b := rec.Checkout()
	if a == b {
		t.Fatal("two concurrent checkouts share a ring")
	}
	rec.Release(a)
	if c := rec.Checkout(); c != a {
		t.Fatal("released ring not reused")
	}
	if n := len(rec.Rings()); n != 2 {
		t.Fatalf("recorder registered %d rings, want 2", n)
	}
}

// TestTraceFileValidates validates an externally generated trace file (CI
// points GOCURED_TRACE_FILE at ccbench -trace-dir output); it is skipped
// in normal test runs.
func TestTraceFileValidates(t *testing.T) {
	path := os.Getenv("GOCURED_TRACE_FILE")
	if path == "" {
		t.Skip("GOCURED_TRACE_FILE not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(data)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	t.Logf("%s: %d events, valid", path, n)
}

// TestWriteSpanTraceSanitizes feeds the span exporter a deliberately nasty
// timeline — overlapping siblings, a child overrunning its parent, an
// unfinished span, out-of-order siblings — and checks the output still
// passes ValidateTrace with the trace ID on the root event.
func TestWriteSpanTraceSanitizes(t *testing.T) {
	spans := []trace.Span{
		{Name: "request", StartMS: 0, DurMS: 10},
		{Name: "queue-wait", StartMS: 0, DurMS: 1, Depth: 1},
		{Name: "compile", StartMS: 1, DurMS: 8, Depth: 1},
		{Name: "cache-compile", StartMS: 1, DurMS: 0, Depth: 2},
		{Name: "parse", StartMS: 1, DurMS: 3, Depth: 2},
		{Name: "infer", StartMS: 3.5, DurMS: 6, Depth: 2},    // overlaps parse, overruns compile
		{Name: "store-read", StartMS: 2, DurMS: 1, Depth: 2}, // out of order
		{Name: "run", StartMS: 9, DurMS: -1, Depth: 1},       // never finished
	}
	var b bytes.Buffer
	if err := WriteSpanTrace(&b, "req abc", spans, map[string]any{"trace_id": "0123456789abcdef"}); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateTrace(b.Bytes())
	if err != nil {
		t.Fatalf("ValidateTrace: %v\n%s", err, b.String())
	}
	// 1 metadata + 8 spans * B/E.
	if n != 17 {
		t.Errorf("event count = %d, want 17", n)
	}
	out := b.String()
	if !strings.Contains(out, `"trace_id":"0123456789abcdef"`) {
		t.Errorf("root args missing trace_id:\n%s", out)
	}
	for _, name := range []string{"request", "queue-wait", "compile", "parse", "infer", "store-read", "run"} {
		if !strings.Contains(out, `"name":"`+name+`"`) {
			t.Errorf("span %q missing from output", name)
		}
	}
}

// TestWriteSpanTraceEmpty checks the degenerate cases stay valid.
func TestWriteSpanTraceEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := WriteSpanTrace(&b, "empty", nil, nil); err != nil {
		t.Fatal(err)
	}
	if n, err := ValidateTrace(b.Bytes()); err != nil || n != 0 {
		t.Fatalf("empty trace: n=%d err=%v", n, err)
	}
	// A lone deep span (no root) still renders as its own tree.
	b.Reset()
	if err := WriteSpanTrace(&b, "deep", []trace.Span{{Name: "orphan", Depth: 3, DurMS: 1}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTrace(b.Bytes()); err != nil {
		t.Fatal(err)
	}
}
