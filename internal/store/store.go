// Package store implements gocured's persistent content-addressed artifact
// store: a dolt/noms-style on-disk chunk store in which per-function
// inference summaries (and any other compile artifacts) persist across
// processes, keyed by content hash.
//
// Layout is one file per chunk under <dir>/objects/<aa>/<hex>, where <hex>
// is the full key and <aa> its first byte (a fan-out directory, like git's
// loose objects). Each chunk file is
//
//	magic "GCSTCH1\n" (8 bytes) | SHA-256 of payload (32 bytes) | payload
//
// so every read re-verifies the payload hash: a truncated or bit-flipped
// chunk is detected, dropped from disk, counted, and reported as a miss —
// the caller recompiles and rewrites. Writes go through a temp file and an
// atomic rename, so concurrent writers (the pipeline compiles units on a
// worker pool) and crashed processes can never leave a partial chunk
// visible under its final name.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

var magic = [8]byte{'G', 'C', 'S', 'T', 'C', 'H', '1', '\n'}

const headerSize = len(magic) + sha256.Size

// Store is an on-disk chunk store. All methods are safe for concurrent use.
type Store struct {
	dir string

	hits    atomic.Int64
	misses  atomic.Int64
	writes  atomic.Int64
	corrupt atomic.Int64
	chunks  atomic.Int64
	bytes   atomic.Int64
}

// Stats is a point-in-time snapshot of a Store's counters. Hits, Misses,
// Writes, and CorruptDropped count this process's operations; Chunks and
// Bytes describe the on-disk store (including chunks written by earlier
// processes, scanned at Open).
type Stats struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Writes         int64 `json:"writes"`
	CorruptDropped int64 `json:"corrupt_dropped"`
	Chunks         int64 `json:"chunks"`
	Bytes          int64 `json:"bytes"`
}

// Open opens (creating if necessary) the chunk store rooted at dir and
// scans existing chunks so Stats reports the store's real size.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir}
	if err := os.MkdirAll(s.objectsDir(), 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	err := filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if info, err := d.Info(); err == nil {
			s.chunks.Add(1)
			s.bytes.Add(info.Size())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) objectsDir() string { return filepath.Join(s.dir, "objects") }

func (s *Store) path(key [sha256.Size]byte) string {
	h := hex.EncodeToString(key[:])
	return filepath.Join(s.objectsDir(), h[:2], h)
}

// Get returns the payload stored under key, or (nil, false) on a miss. A
// chunk that fails verification — wrong magic, short header, or a payload
// whose hash does not match the stored digest — is removed from disk,
// counted in CorruptDropped, and reported as a miss; Get never fails.
func (s *Store) Get(key [sha256.Size]byte) ([]byte, bool) {
	path := s.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if len(data) < headerSize || [8]byte(data[:8]) != magic ||
		sha256.Sum256(data[headerSize:]) != [sha256.Size]byte(data[8:headerSize]) {
		s.drop(path, int64(len(data)))
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return data[headerSize:], true
}

// drop removes a corrupt chunk file and adjusts the counters.
func (s *Store) drop(path string, size int64) {
	if os.Remove(path) == nil {
		s.chunks.Add(-1)
		s.bytes.Add(-size)
	}
	s.corrupt.Add(1)
}

// Put stores payload under key. Chunks are immutable and content-addressed:
// if the key already exists the write is skipped. The chunk becomes visible
// atomically (temp file + rename).
func (s *Store) Put(key [sha256.Size]byte, payload []byte) error {
	path := s.path(key)
	if _, err := os.Stat(path); err == nil {
		return nil
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(s.objectsDir(), "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(payload)
	_, err = tmp.Write(append(append(append(make([]byte, 0, headerSize+len(payload)),
		magic[:]...), sum[:]...), payload...))
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: %w", err)
	}
	s.writes.Add(1)
	s.chunks.Add(1)
	s.bytes.Add(int64(headerSize + len(payload)))
	return nil
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Writes:         s.writes.Load(),
		CorruptDropped: s.corrupt.Load(),
		Chunks:         s.chunks.Load(),
		Bytes:          s.bytes.Load(),
	}
}
