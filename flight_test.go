package gocured_test

import (
	"strings"
	"testing"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/flight"
)

// TestFlightRecorderFtpdExploit is the end-to-end flight-recorder check on
// the paper's E9 scenario: the cured ftpd exploit run must produce a valid
// Chrome trace-event file and a black-box snapshot whose window ends at the
// trap, carries the blame chain, and holds a meaningful pre-trap history.
func TestFlightRecorderFtpdExploit(t *testing.T) {
	p := corpus.ByName("ftpd")
	if p == nil {
		t.Fatal("corpus program ftpd missing")
	}
	prog, err := gocured.Compile("ftpd.c", p.Source, gocured.Options{TrustBadCasts: p.TrustBadCasts})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{
		Stdin: []byte(corpus.FtpdExploitInput),
		Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trapped {
		t.Fatal("cured ftpd exploit session did not trap")
	}

	// The trace must be well-formed: parseable, timestamps monotonic per
	// track, every duration Begin matched by an End.
	if len(res.TraceJSON) == 0 {
		t.Fatal("no TraceJSON on a traced run")
	}
	n, err := flight.ValidateTrace(res.TraceJSON)
	if err != nil {
		t.Fatalf("trace invalid: %v", err)
	}
	if n < 10 {
		t.Fatalf("trace has only %d events", n)
	}

	// The black box: last events up to and including the trap.
	bb := res.BlackBox
	if bb == nil {
		t.Fatal("no black box on a traced trapped run")
	}
	if bb.TrapKind != res.TrapKind {
		t.Errorf("black box trap kind %q, result %q", bb.TrapKind, res.TrapKind)
	}
	if len(bb.Events) < 33 {
		t.Fatalf("black box has %d events, want the trap plus >= 32 preceding", len(bb.Events))
	}
	last := bb.Events[len(bb.Events)-1]
	if !strings.Contains(last, "trap") {
		t.Errorf("last black-box event %q is not the trap", last)
	}
	if len(bb.Blame) == 0 {
		t.Error("black box is missing the blame chain")
	}
	if len(bb.Stack) == 0 {
		t.Error("black box is missing the call stack")
	}
}

// TestTraceDisabledByDefault pins the zero-cost contract: without
// RunOptions.Trace the result carries no recording artifacts.
func TestTraceDisabledByDefault(t *testing.T) {
	prog, err := gocured.Compile("demo.c", apiDemo, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceJSON != nil || res.BlackBox != nil || res.Profile != nil {
		t.Error("untraced run carries trace artifacts")
	}
}
