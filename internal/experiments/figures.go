package experiments

import (
	"fmt"

	"gocured"
	"gocured/internal/corpus"
)

// CastClassification reproduces §3's cast statistics: "around 63% of casts
// are between identical types. ... Of these bad casts, about 93% are safe
// upcasts and 6% are downcasts. Less than 1% of all casts fall outside of
// these categories."
func CastClassification(cfg Config) *Table {
	t := &Table{
		ID:    "E1",
		Title: "Cast classification over the corpus (§3)",
		Note: "paper: 63% of casts identical; of the remainder 93% upcasts,\n" +
			"6% downcasts, <1% genuinely bad",
		Header: []string{"program", "casts", "ident%", "up%", "down%", "alloc%", "tile%", "bad%", "trusted%"},
	}
	r := cfg.runner()
	progs := corpus.All()
	stats := make([]gocured.Stats, len(progs))
	eachRow(len(progs), func(i int) {
		stats[i] = mustBuild(r, progs[i], defaultOpts(progs[i]), cfg.Scale).stats
	})
	var tot gocured.Stats
	for i, p := range progs {
		s := stats[i]
		tot.Casts += s.Casts
		tot.Identity += s.Identity
		tot.Upcasts += s.Upcasts
		tot.Downcasts += s.Downcasts
		tot.SeqCasts += s.SeqCasts
		tot.BadCasts += s.BadCasts
		tot.Trusted += s.Trusted
		tot.Alloc += s.Alloc
		t.Rows = append(t.Rows, castRow(p.Name, s))
	}
	t.Rows = append(t.Rows, castRow("TOTAL", tot))
	return t
}

func castRow(name string, s gocured.Stats) []string {
	pc := func(n int) string {
		if s.Casts == 0 {
			return "0"
		}
		return fmt.Sprintf("%.1f", 100*float64(n)/float64(s.Casts))
	}
	return []string{name, fmt.Sprintf("%d", s.Casts), pc(s.Identity), pc(s.Upcasts),
		pc(s.Downcasts), pc(s.Alloc), pc(s.SeqCasts), pc(s.BadCasts), pc(s.Trusted)}
}

// paperFig8 holds the published Apache-module ratios (Figure 8).
var paperFig8 = map[string]string{
	"apache-asis": "0.96", "apache-expires": "1.00", "apache-gzip": "0.94",
	"apache-headers": "1.00", "apache-info": "1.00", "apache-layout": "1.01",
	"apache-random": "0.94", "apache-urlcount": "1.02", "apache-usertrack": "1.00",
	"apache-webstone": "1.04",
}

// Fig8Apache reproduces Figure 8: Apache module performance.
func Fig8Apache(cfg Config) *Table {
	t := &Table{
		ID:     "E2",
		Title:  "Figure 8: Apache module performance",
		Note:   "sf/sq/w/rt: % of static pointers inferred SAFE/SEQ/WILD/RTTI",
		Header: []string{"module", "lines", "sf/sq/w/rt", "cured-ratio", "paper-ratio"},
	}
	r := cfg.runner()
	progs := corpus.ByCategory("apache")
	t.Rows = make([][]string, len(progs))
	eachRow(len(progs), func(i int) {
		p := progs[i]
		b := mustBuild(r, p, defaultOpts(p), cfg.Scale)
		raw := b.cost(gocured.ModeRaw)
		cured := b.cost(gocured.ModeCured)
		t.Rows[i] = []string{
			p.Name, fmt.Sprintf("%d", b.lines), kindCols(b.stats),
			fmt.Sprintf("%.2f", ratio(cured, raw)), paperFig8[p.Name],
		}
	})
	return t
}

// paperFig9 holds the published system-software numbers (Figure 9):
// columns are kinds, CCured ratio, Valgrind ratio.
var paperFig9 = map[string][3]string{
	"pcnet32":      {"92/8/0/0", "0.99", "-"},
	"sbull":        {"85/15/0/0", "1.00", "-"},
	"ftpd":         {"79/12/9/0", "1.01", "9.42"},
	"openssl-cast": {"67/27/0/6", "1.87", "48.7"},
	"openssl-bn":   {"67/27/0/6", "1.01", "72.0"},
	"ssh-client":   {"70/28/0/3", "1.22", "22.1"},
	"ssh-server":   {"70/28/0/3", "1.15", "-"},
	"sendmail":     {"65/34/0/1", "1.46", "122"},
	"bind":         {"79/21/0/0", "1.11-1.81", "81-129"},
}

// Fig9System reproduces Figure 9: system software performance.
func Fig9System(cfg Config) *Table {
	t := &Table{
		ID:    "E3",
		Title: "Figure 9: system software performance",
		Note: "ratios are slowdowns versus the uninstrumented run; paper columns\n" +
			"give the published kinds and CCured/Valgrind ratios",
		Header: []string{"name", "lines", "sf/sq/w/rt", "cured", "valgrind",
			"paper-kinds", "paper-cured", "paper-valgrind"},
	}
	r := cfg.runner()
	names := []string{"pcnet32", "sbull", "ftpd", "openssl-cast", "openssl-bn",
		"ssh-client", "ssh-server", "sendmail", "bind"}
	t.Rows = make([][]string, len(names))
	eachRow(len(names), func(i int) {
		name := names[i]
		b := mustBuild(r, corpus.ByName(name), defaultOpts(corpus.ByName(name)), cfg.Scale)
		raw := b.cost(gocured.ModeRaw)
		cured := b.cost(gocured.ModeCured)
		valgrind := b.cost(gocured.ModeValgrind)
		pub := paperFig9[name]
		t.Rows[i] = []string{
			name, fmt.Sprintf("%d", b.lines), kindCols(b.stats),
			fmt.Sprintf("%.2f", ratio(cured, raw)),
			fmt.Sprintf("%.1f", ratio(valgrind, raw)),
			pub[0], pub[1], pub[2],
		}
	})
	return t
}

// IjpegRTTI reproduces the ijpeg ablation of §5: with the original CCured
// the OO style made ~60% of pointers WILD (115% slowdown); RTTI removed all
// bad casts with ~1% RTTI pointers (45% slowdown).
func IjpegRTTI(cfg Config) *Table {
	t := &Table{
		ID:    "E4",
		Title: "ijpeg with and without RTTI (§5)",
		Note: "paper: without RTTI 60% WILD, 2.15x; with RTTI 0% WILD, ~1% RTTI,\n" +
			"1.45x, zero bad casts",
		Header: []string{"config", "wild%", "rtti%", "bad-casts", "cured-ratio"},
	}
	r := cfg.runner()
	p := corpus.ByName("ijpeg")
	configs := []struct {
		name string
		opts gocured.Options
	}{
		{"original (no RTTI)", gocured.Options{NoRTTI: true}},
		{"with RTTI", gocured.Options{}},
	}
	t.Rows = make([][]string, len(configs))
	eachRow(len(configs), func(i int) {
		b := mustBuild(r, p, configs[i].opts, cfg.Scale)
		raw := b.cost(gocured.ModeRaw)
		cured := b.cost(gocured.ModeCured)
		t.Rows[i] = []string{
			configs[i].name,
			fmt.Sprintf("%.1f", b.stats.PctWild),
			fmt.Sprintf("%.1f", b.stats.PctRtti),
			fmt.Sprintf("%d", b.stats.BadCasts),
			fmt.Sprintf("%.2f", ratio(cured, raw)),
		}
	})
	return t
}

// MicroSuite reproduces the Spec95/Olden/Ptrdist comparison: CCured's
// checks cost 7-56% while Purify costs 25-100x and Valgrind 9-130x.
func MicroSuite(cfg Config) *Table {
	t := &Table{
		ID:    "E5",
		Title: "Spec95/Olden/Ptrdist-like suite: CCured vs Purify vs Valgrind",
		Note: "paper: CCured 1.07-1.56x; Purify 25-100x; Valgrind 9-130x\n" +
			"(shape to check: cured << purify < valgrind)",
		Header: []string{"program", "cured", "purify", "valgrind"},
	}
	r := cfg.runner()
	var progs []*corpus.Program
	for _, cat := range []string{"spec", "olden", "ptrdist"} {
		progs = append(progs, corpus.ByCategory(cat)...)
	}
	t.Rows = make([][]string, len(progs))
	eachRow(len(progs), func(i int) {
		p := progs[i]
		b := mustBuild(r, p, defaultOpts(p), cfg.Scale)
		raw := b.cost(gocured.ModeRaw)
		cured := b.cost(gocured.ModeCured)
		purify := b.cost(gocured.ModePurify)
		valgrind := b.cost(gocured.ModeValgrind)
		t.Rows[i] = []string{
			p.Name,
			fmt.Sprintf("%.2f", ratio(cured, raw)),
			fmt.Sprintf("%.1f", ratio(purify, raw)),
			fmt.Sprintf("%.1f", ratio(valgrind, raw)),
		}
	})
	return t
}

// SplitOverhead reproduces the all-split ablation: "In most cases, the
// overhead was negligible (less than 3% slowdown); ... em3d was slowed down
// by 58%, and anagram by 7%."
func SplitOverhead(cfg Config) *Table {
	t := &Table{
		ID:    "E6",
		Title: "Compatible (split) representation overhead, all types split (§5)",
		Note: "overhead of the all-split cured run versus the normally cured run;\n" +
			"paper: mostly <3%, em3d +58%, anagram +7%",
		Header: []string{"program", "cured", "all-split", "overhead%"},
	}
	r := cfg.runner()
	names := []string{"olden-treeadd", "olden-bisort", "olden-em3d", "olden-power",
		"ptrdist-anagram", "ptrdist-ks", "ptrdist-ft", "ijpeg"}
	t.Rows = make([][]string, len(names))
	eachRow(len(names), func(i int) {
		p := corpus.ByName(names[i])
		normal := mustBuild(r, p, defaultOpts(p), cfg.Scale)
		split := mustBuild(r, p, gocured.Options{TrustBadCasts: p.TrustBadCasts, ForceSplitAll: true}, cfg.Scale)
		curedN := normal.cost(gocured.ModeCured)
		curedS := split.cost(gocured.ModeCured)
		t.Rows[i] = []string{
			names[i],
			fmt.Sprintf("%.1fM cycles", float64(curedN)/1e6),
			fmt.Sprintf("%.1fM cycles", float64(curedS)/1e6),
			fmt.Sprintf("%+.0f", 100*(ratio(curedS, curedN)-1)),
		}
	})
	return t
}

// BindCasts reproduces the bind cast statistics of §5: 530 bad casts
// initially; enabling RTTI proves 28% of them (150) to be checked
// downcasts; the remaining 380 are trusted after review, leaving no WILD.
func BindCasts(cfg Config) *Table {
	t := &Table{
		ID:    "E7",
		Title: "bind: bad casts, RTTI recovery, trusted casts (§5)",
		Note: "paper: 82000 casts, 26500 upcasts; 530 bad without RTTI; RTTI\n" +
			"recovers 150 (28%) as downcasts; remaining 380 trusted; WILD -> 0",
		Header: []string{"config", "casts", "upcasts", "downcasts", "bad", "trusted", "wild%"},
	}
	r := cfg.runner()
	p := corpus.ByName("bind")
	configs := []struct {
		name string
		opts gocured.Options
	}{
		{"no RTTI, no trust", gocured.Options{NoRTTI: true}},
		{"RTTI, no trust", gocured.Options{}},
		{"RTTI + trusted casts", gocured.Options{TrustBadCasts: true}},
	}
	t.Rows = make([][]string, len(configs))
	eachRow(len(configs), func(i int) {
		s := mustBuild(r, p, configs[i].opts, cfg.Scale).stats
		t.Rows[i] = []string{
			configs[i].name,
			fmt.Sprintf("%d", s.Casts), fmt.Sprintf("%d", s.Upcasts),
			fmt.Sprintf("%d", s.Downcasts), fmt.Sprintf("%d", s.BadCasts),
			fmt.Sprintf("%d", s.Trusted), fmt.Sprintf("%.0f", s.PctWild),
		}
	})
	return t
}

// SplitStats reproduces the split-inference statistics of §5: bind needed
// 6% of pointers split with 31% of those needing a metadata pointer;
// OpenSSH needed <1%.
func SplitStats(cfg Config) *Table {
	t := &Table{
		ID:    "E8",
		Title: "Split inference statistics (§4.2/§5)",
		Note: "paper: bind 6% split, 31% of pointers need metadata pointers;\n" +
			"OpenSSH <1%; ssh-against-uncured-OpenSSL 3% split / 5% metadata",
		Header: []string{"program", "pointers", "split%", "meta%"},
	}
	r := cfg.runner()
	names := []string{"bind", "ssh-client", "ssh-server", "sendmail"}
	t.Rows = make([][]string, len(names))
	eachRow(len(names), func(i int) {
		p := corpus.ByName(names[i])
		s := mustBuild(r, p, defaultOpts(p), cfg.Scale).stats
		t.Rows[i] = []string{
			names[i], fmt.Sprintf("%d", s.Pointers),
			fmt.Sprintf("%.1f", s.PctSplit),
			fmt.Sprintf("%.1f", s.PctMeta),
		}
	})
	return t
}

// Exploits reproduces the security claims: the ftpd replydirname overflow
// is exploitable raw and trapped cured; benign sessions are unaffected.
func Exploits(cfg Config) *Table {
	t := &Table{
		ID:     "E9",
		Title:  "Exploit prevention: ftpd replydirname overflow (§5)",
		Note:   "paper: \"this version of ftpd has a known vulnerability ... we\nverified that CCured prevents this error\"",
		Header: []string{"scenario", "raw", "cured", "top trap site"},
	}
	r := cfg.runner()
	p := corpus.ByName("ftpd")
	b := mustBuild(r, p, defaultOpts(p), 1)
	run := func(mode gocured.Mode, stdin string) (string, *gocured.Result) {
		out, err := b.run(mode, gocured.RunOptions{Stdin: []byte(stdin)})
		if err != nil {
			return "error: " + err.Error(), nil
		}
		if out.Trapped {
			return "TRAPPED (" + out.TrapKind + ")", out
		}
		return fmt.Sprintf("ran to completion (exit %d)", out.ExitCode), out
	}
	cells := make([]string, 4)
	results := make([]*gocured.Result, 4)
	eachRow(4, func(i int) {
		mode := gocured.ModeRaw
		if i%2 == 1 {
			mode = gocured.ModeCured
		}
		stdin := corpus.FtpdBenignInput
		if i >= 2 {
			stdin = corpus.FtpdExploitInput
		}
		cells[i], results[i] = run(mode, stdin)
	})
	t.Rows = append(t.Rows,
		[]string{"benign session", cells[0], cells[1], topTrapSite(results[1])},
		[]string{"exploit session (CWD overflow)", cells[2], cells[3], topTrapSite(results[3])})
	return t
}

// topTrapSite names the check site of a cured run that trapped the most —
// where the attribution counters lay the blame. "-" when nothing trapped.
func topTrapSite(out *gocured.Result) string {
	if out == nil {
		return "-"
	}
	best := -1
	for i, s := range out.CheckSites {
		if s.Traps > 0 && (best < 0 || s.Traps > out.CheckSites[best].Traps) {
			best = i
		}
	}
	if best < 0 {
		return "-"
	}
	s := out.CheckSites[best]
	return fmt.Sprintf("%s %s x%d", s.Pos, s.Kind, s.Traps)
}
