package interp

import "fmt"

// shadowMem emulates the cost model and detection envelope of binary
// instrumentation tools:
//
//   - Purify keeps 2 status bits per byte of allocated storage and places
//     red zones around heap blocks. It detects heap overruns into
//     unallocated space and use-after-free, but misses overruns of
//     stack-allocated arrays and "pointer arithmetic between two separate
//     valid regions" (Jones & Kelly's observation, cited in §5).
//   - Valgrind keeps 9 status bits per byte and JIT-instruments every
//     access, costing roughly an order of magnitude more than Purify's
//     link-time approach per access in our calibration.
//
// Detection is reported (like the real tools print diagnostics), not
// trapped: the program keeps running.
type shadowMem struct {
	policy Policy
	// bits is the shadow state, lazily grown; value semantics are opaque
	// (the work done on them is what matters for the cost model).
	bits []uint8
	// workPerByte calibrates per-byte instrumentation cost.
	workPerByte int
	sink        uint64
	reports     []string
}

// Per-byte instrumentation work, calibrated so that whole-program slowdowns
// land in the published ranges relative to our interpreter's base cost
// (paper: Purify 25-100x, Valgrind 9-130x; Valgrind's JIT costs more per
// access than Purify's link-time instrumentation on these workloads).
const (
	purifyWorkPerByte   = 350
	valgrindWorkPerByte = 1000
)

func newShadowMem(p Policy) *shadowMem {
	s := &shadowMem{policy: p}
	if p == PolicyPurify {
		s.workPerByte = purifyWorkPerByte
	} else {
		s.workPerByte = valgrindWorkPerByte
	}
	return s
}

func (s *shadowMem) grow(n uint32) {
	for uint32(len(s.bits)) <= n {
		s.bits = append(s.bits, 0)
	}
}

func (s *shadowMem) report(format string, args ...any) {
	if len(s.reports) < 100 {
		s.reports = append(s.reports, fmt.Sprintf(format, args...))
	}
}

// churn performs the per-byte shadow bookkeeping work.
func (s *shadowMem) churn(addr, size uint32) {
	s.grow(addr + size)
	for i := uint32(0); i < size; i++ {
		v := uint64(s.bits[addr+i])
		for w := 0; w < s.workPerByte; w++ {
			v = v*2862933555777941757 + 3037000493
		}
		s.bits[addr+i] = uint8(v>>56) | 1
		s.sink += v
	}
}

// Simulated-cycle cost per shadowed byte (see Counters.Cost), calibrated
// against the published whole-program slowdowns.
func (s *shadowMem) cost(size uint32) uint64 {
	if s.policy == PolicyPurify {
		return 8 * uint64(size)
	}
	return 22 * uint64(size)
}

func (s *shadowMem) onLoad(m *Machine, addr, size uint32) {
	m.addCost(s.cost(size))
	s.churn(addr, size)
	s.checkAccess(m, addr, size, "read")
}

func (s *shadowMem) onStore(m *Machine, addr, size uint32) {
	m.addCost(s.cost(size))
	s.churn(addr, size)
	s.checkAccess(m, addr, size, "write")
}

// checkAccess reproduces the tools' detection envelope: an access that does
// not land in any block (heap red zone / unmapped) or lands in a freed
// block is reported. Accesses that stay inside some block — including a
// neighbouring one reached by overflow, or a stack frame — pass silently.
func (s *shadowMem) checkAccess(m *Machine, addr, size uint32, what string) {
	blk := m.mem.BlockAt(addr)
	if blk == nil {
		s.report("%s: invalid %s of %d bytes at 0x%x (red zone)", s.policy, what, size, addr)
		return
	}
	if blk.Dead {
		s.report("%s: %s of freed block %q at 0x%x", s.policy, what, blk.Name, addr)
	}
}
