package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"gocured"
	"gocured/internal/flight"
	"gocured/internal/pipeline"
	"gocured/internal/trace"
)

func testServer() *server {
	s := newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 2}), serverConfig{MaxBytes: 1 << 20})
	s.markReady() // main does this once the listener is up
	return s
}

func post(t *testing.T, s *server, body string) (*httptest.ResponseRecorder, CureResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp CureResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func TestCureEndpoint(t *testing.T) {
	s := testServer()
	body := `{"name":"hello.c","source":"extern int printf(char *fmt, ...);\nint main(void){ printf(\"hi\\n\"); return 0; }","run":true,"mode":"cured"}`

	rec, resp := post(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Run == nil || resp.Run.Stdout != "hi\n" || resp.Run.Trapped {
		t.Fatalf("run = %+v, want stdout %q", resp.Run, "hi\n")
	}
	if resp.Stats.Pointers == 0 || resp.Key == "" {
		t.Errorf("missing stats/key: %+v", resp)
	}
	if resp.CacheHit {
		t.Error("first request must miss the cache")
	}

	// The same source again is a cache hit.
	if _, resp2 := post(t, s, body); !resp2.CacheHit {
		t.Error("second request must hit the cache")
	}

	// A cured out-of-bounds program traps instead of erroring.
	oob := `{"source":"int main(void){ int a[2]; int i,t=0; for(i=0;i<=2;i++) t+=a[i]; return t; }","run":true}`
	rec, resp = post(t, s, oob)
	if rec.Code != http.StatusOK {
		t.Fatalf("oob status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Run == nil || !resp.Run.Trapped || resp.Run.TrapKind != "bounds" {
		t.Fatalf("oob run = %+v, want bounds trap", resp.Run)
	}
}

func TestCureErrors(t *testing.T) {
	s := testServer()
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"empty source", `{"source":""}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"bad mode", `{"source":"int main(void){return 0;}","mode":"quick"}`, http.StatusBadRequest},
		{"syntax error", `{"source":"int main( {"}`, http.StatusUnprocessableEntity},
	} {
		rec, _ := post(t, s, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/cure", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /cure status = %d, want 405", rec.Code)
	}
}

func TestRequestSizeLimit(t *testing.T) {
	s := newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1}), serverConfig{MaxBytes: 256})
	big := `{"source":"` + strings.Repeat("x", 1024) + `"}`
	rec, _ := post(t, s, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer()
	post(t, s, `{"source":"int main(void){return 0;}","run":true,"mode":"raw"}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var m pipeline.Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if m.JobsRun != 1 || m.RunsExecuted != 1 {
		t.Errorf("metrics = %+v, want one job/run", m)
	}
}

func TestCorpusEndpoints(t *testing.T) {
	s := testServer()

	req := httptest.NewRequest(http.MethodGet, "/corpus", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var list []corpusEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) == 0 {
		t.Fatalf("corpus list: err=%v n=%d", err, len(list))
	}

	req = httptest.NewRequest(http.MethodGet, "/corpus/"+list[0].Name, nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var prog struct {
		Name   string `json:"name"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &prog); err != nil || prog.Source == "" {
		t.Fatalf("corpus get: err=%v body=%s", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/corpus/no-such-program", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing program status = %d, want 404", rec.Code)
	}
}

func TestUnknownJSONFieldRejected(t *testing.T) {
	s := testServer()
	rec, _ := post(t, s, `{"source":"int main(void){return 0;}","bogus_field":1}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("error body not JSON: %v\n%s", err, rec.Body.String())
	}
	if e.Code != "bad_request" || !strings.Contains(e.Error, "bogus_field") {
		t.Errorf("error body = %+v, want code bad_request naming the field", e)
	}
}

// TestPrometheusEndpoint sanity-checks the text exposition format: every
// sample line must belong to a family declared by a preceding # TYPE line,
// histogram buckets must be cumulative and end at +Inf == _count.
func TestPrometheusEndpoint(t *testing.T) {
	s := testServer()
	post(t, s, `{"source":"int main(void){return 0;}","run":true}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	body := rec.Body.String()
	typed := map[string]string{} // family -> type
	var lastInf, lastCount string
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		fam := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] == "histogram" {
				fam = f
			}
		}
		if _, ok := typed[fam]; !ok {
			t.Errorf("sample %q has no # TYPE declaration", line)
		}
		if strings.Contains(line, `le="+Inf"`) {
			lastInf = strings.Fields(line)[1]
		}
		if strings.HasSuffix(name, "_count") && typed[fam] == "histogram" {
			lastCount = strings.Fields(line)[1]
			if lastInf != lastCount {
				t.Errorf("histogram %s: +Inf bucket %s != count %s", fam, lastInf, lastCount)
			}
		}
	}
	for _, want := range []string{"gocured_jobs_run_total 1", "gocured_runs_executed_total 1", "gocured_compile_wall_ms_bucket",
		// The store families are always declared, zero-valued without a
		// configured store, so scrapers and the CI smoke can rely on them.
		"gocured_store_hits_total 0", "gocured_store_misses_total 0",
		"gocured_store_bytes 0", "gocured_store_chunks 0"} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in:\n%s", want, body)
		}
	}
	// The classic 0.0.4 parser rejects anything after a sample value, so
	// the default exposition must never carry exemplar syntax even though
	// the job above recorded one for every histogram.
	if strings.Contains(body, "# {") {
		t.Errorf("0.0.4 exposition carries exemplar syntax:\n%s", body)
	}
}

// TestPrometheusOpenMetricsNegotiation checks the Accept-header switch: a
// scraper asking for application/openmetrics-text gets the OpenMetrics
// dialect with trace-ID exemplars and a terminating # EOF.
func TestPrometheusOpenMetricsNegotiation(t *testing.T) {
	s := testServer()
	post(t, s, `{"source":"int main(void){return 0;}","run":true}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("Content-Type = %q, want application/openmetrics-text", ct)
	}
	body := rec.Body.String()
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Errorf("OpenMetrics exposition does not end with # EOF")
	}
	if !strings.Contains(body, `# {trace_id="`) {
		t.Errorf("OpenMetrics exposition has no exemplars:\n%s", body)
	}
	// Counter families are declared without the _total sample suffix.
	if !strings.Contains(body, "# TYPE gocured_jobs_run counter") {
		t.Errorf("OpenMetrics TYPE line kept _total:\n%s", body)
	}
}

// TestPrometheusStoreMetrics boots two servers against one artifact-store
// directory: the first compile populates the store (misses + writes), a
// fresh server — fresh memory cache — then serves the same source from
// disk chunks, and both facts must be visible on /metrics/prometheus.
func TestPrometheusStoreMetrics(t *testing.T) {
	dir := t.TempDir()
	serve := func() *server {
		arts, err := pipeline.OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		return newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1, Store: arts}),
			serverConfig{MaxBytes: 1 << 20})
	}
	prom := func(s *server) string {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		return rec.Body.String()
	}
	body := `{"name":"hello.c","source":"int main(void){ int i; int a[3]; int t = 0; for (i = 0; i < 3; i++) t += a[i]; return 0; }","run":true}`

	cold := serve()
	if rec, _ := post(t, cold, body); rec.Code != http.StatusOK {
		t.Fatalf("cold cure status = %d: %s", rec.Code, rec.Body.String())
	}
	got := prom(cold)
	for _, want := range []string{"gocured_store_misses_total", "gocured_store_writes_total"} {
		if !promSamplePositive(got, want) {
			t.Errorf("cold server: %s not positive in:\n%s", want, got)
		}
	}

	warm := serve()
	if rec, resp := post(t, warm, body); rec.Code != http.StatusOK || resp.CacheHit {
		t.Fatalf("warm cure: status = %d, cache_hit = %v (memory cache is fresh)", rec.Code, resp.CacheHit)
	}
	got = prom(warm)
	for _, want := range []string{"gocured_store_hits_total", "gocured_store_chunks",
		"gocured_store_bytes", "gocured_funcs_loaded_total"} {
		if !promSamplePositive(got, want) {
			t.Errorf("warm server: %s not positive in:\n%s", want, got)
		}
	}
	if promSamplePositive(got, "gocured_funcs_recured_total") {
		t.Errorf("warm server re-cured functions:\n%s", got)
	}
}

// promSamplePositive reports whether the exposition contains a sample line
// `name value` with value > 0.
func promSamplePositive(body, name string) bool {
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name && fields[1] != "0" {
			return true
		}
	}
	return false
}

// TestCureTrapProvenance checks that a trapping run reports where it
// trapped, the call stack, the blame chain, and the hottest check sites.
func TestCureTrapProvenance(t *testing.T) {
	s := testServer()
	src := `int main(void){ int a[4]; int i, t = 0; for (i = 0; i <= 4; i++) t += a[i]; return t; }`
	rec, resp := post(t, s, `{"name":"oob.c","source":"`+src+`","run":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	run := resp.Run
	if run == nil || !run.Trapped {
		t.Fatalf("run = %+v, want a trap", run)
	}
	if !strings.Contains(run.TrapPos, "oob.c:") {
		t.Errorf("TrapPos = %q, want an oob.c position", run.TrapPos)
	}
	if len(run.TrapStack) == 0 || run.TrapStack[0] != "main" {
		t.Errorf("TrapStack = %v, want [main]", run.TrapStack)
	}
	if len(run.TrapBlame) == 0 {
		t.Errorf("TrapBlame is empty, want a blame chain")
	}
	if len(run.HotSites) == 0 || run.HotSites[0].Hits == 0 {
		t.Errorf("HotSites = %v, want at least one hot site", run.HotSites)
	}
	if len(resp.Phases) == 0 {
		t.Errorf("Phases is empty, want per-phase spans")
	}
}

func TestPprofGatedByFlag(t *testing.T) {
	off := testServer()
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", rec.Code)
	}

	on := newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1}), serverConfig{Pprof: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("pprof on: status = %d, want 200", rec.Code)
	}
}

// TestCureTraceOption requests a traced, profiled run of a trapping
// program and expects the trace, profile, and black box in the response.
func TestCureTraceOption(t *testing.T) {
	s := testServer()
	body := `{"source":"int main(void){ int a[2]; int i,t=0; for(i=0;i<=2;i++) t+=a[i]; return t; }","run":true,"trace":true,"profile_period":2}`
	rec, resp := post(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Run == nil || !resp.Run.Trapped {
		t.Fatalf("run = %+v, want a trap", resp.Run)
	}
	if len(resp.Run.Trace) == 0 {
		t.Fatal("no trace in response")
	}
	if _, err := flight.ValidateTrace(resp.Run.Trace); err != nil {
		t.Fatalf("response trace invalid: %v", err)
	}
	if resp.Run.BlackBox == nil || len(resp.Run.BlackBox.Events) == 0 {
		t.Error("no black box on a traced trapped run")
	}
	if len(resp.Run.Profile) == 0 {
		t.Error("no profile despite profile_period")
	}

	// no_optimize is accepted and changes the cache key (no hit).
	noOpt := `{"source":"int main(void){ int a[2]; int i,t=0; for(i=0;i<=2;i++) t+=a[i]; return t; }","run":true,"options":{"no_optimize":true}}`
	if rec, resp := post(t, s, noOpt); rec.Code != http.StatusOK || resp.CacheHit {
		t.Errorf("no_optimize request: status %d, cache_hit %v", rec.Code, resp.CacheHit)
	}
}

// TestEventsSSE tails GET /events over a real connection while a trapping
// job runs, and expects SSE-framed job_start/trap/job_done records.
func TestEventsSSE(t *testing.T) {
	s := testServer()
	srv := httptest.NewServer(s)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	go s.runner.Do(context.Background(), pipeline.Job{
		Name:   "oob.c",
		Source: "int main(void){ int a[2]; int i,t=0; for(i=0;i<=2;i++) t+=a[i]; return t; }",
		Run:    true,
		Mode:   gocured.ModeCured,
	})

	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	seen := map[string]bool{}
	deadline := time.After(30 * time.Second)
	for !seen["job_done"] {
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream closed early; saw %v", seen)
			}
			if ev, found := strings.CutPrefix(line, "event: "); found {
				seen[ev] = true
			}
			if data, found := strings.CutPrefix(line, "data: "); found {
				var ev pipeline.JobEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad SSE data %q: %v", data, err)
				}
			}
		case <-deadline:
			t.Fatalf("timed out; saw %v", seen)
		}
	}
	for _, want := range []string{"job_start", "trap", "job_done"} {
		if !seen[want] {
			t.Errorf("missing %q event; saw %v", want, seen)
		}
	}
}

// TestEventsSSEMethod rejects non-GET.
func TestEventsSSEMethod(t *testing.T) {
	s := testServer()
	req := httptest.NewRequest(http.MethodPost, "/events", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}

// TestHealthReadyEndpoints checks the liveness and readiness probes.
func TestHealthReadyEndpoints(t *testing.T) {
	s := testServer()
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/healthz status = %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/readyz status = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var rz struct {
		Ready  bool `json:"ready"`
		Checks []struct {
			Name string `json:"name"`
			OK   bool   `json:"ok"`
		} `json:"checks"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rz); err != nil || !rz.Ready {
		t.Fatalf("readyz body: err=%v ready=%v %s", err, rz.Ready, rec.Body.String())
	}
	names := map[string]bool{}
	for _, c := range rz.Checks {
		names[c.Name] = c.OK
	}
	for _, want := range []string{"started", "corpus_loaded", "pool_started", "store_opened"} {
		if !names[want] {
			t.Errorf("readyz check %q missing or failing: %s", want, rec.Body.String())
		}
	}

	// Not yet started -> 503.
	s.ready.Store(false)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("unstarted /readyz status = %d, want 503", rec.Code)
	}
	s.ready.Store(true)

	// A configured-but-unopened store fails readiness.
	broken := newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1}),
		serverConfig{StoreConfigured: true})
	rec = httptest.NewRecorder()
	broken.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("broken-store /readyz status = %d, want 503: %s", rec.Code, rec.Body.String())
	}
}

// TestStatusWriterDefaults pins the status accounting: implicit 200 on
// first Write or Flush (the SSE path never calls WriteHeader), explicit
// codes win, and a handler that writes nothing still logs 200 — never 0.
func TestStatusWriterDefaults(t *testing.T) {
	newSW := func() *statusWriter { return &statusWriter{ResponseWriter: httptest.NewRecorder()} }

	sw := newSW()
	if sw.Status() != http.StatusOK {
		t.Errorf("untouched writer Status = %d, want 200", sw.Status())
	}

	sw = newSW()
	sw.Write([]byte("x"))
	if sw.Status() != http.StatusOK {
		t.Errorf("after implicit Write, Status = %d, want 200", sw.Status())
	}

	sw = newSW()
	sw.Flush() // SSE path: headers flushed before any Write
	if sw.Status() != http.StatusOK {
		t.Errorf("after Flush, Status = %d, want 200", sw.Status())
	}

	sw = newSW()
	sw.WriteHeader(http.StatusNotFound)
	sw.Write([]byte("x"))
	if sw.Status() != http.StatusNotFound {
		t.Errorf("explicit WriteHeader, Status = %d, want 404", sw.Status())
	}
}

// TestCureTraceIDPropagation checks trace IDs flow end to end: assigned
// when absent, honored from the request body or X-Trace-Id header, echoed
// in the response body and header, rejected when malformed.
func TestCureTraceIDPropagation(t *testing.T) {
	s := testServer()
	rec, resp := post(t, s, `{"source":"int main(void){return 0;}"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !trace.ValidID(resp.TraceID) {
		t.Fatalf("assigned trace ID %q is not 16-hex", resp.TraceID)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != resp.TraceID {
		t.Errorf("X-Trace-Id header = %q, body trace_id = %q", got, resp.TraceID)
	}

	// Client-supplied ID in the body is honored.
	rec, resp = post(t, s, `{"source":"int main(void){return 1;}","trace_id":"00000000deadbeef"}`)
	if rec.Code != http.StatusOK || resp.TraceID != "00000000deadbeef" {
		t.Errorf("body trace_id: status=%d trace_id=%q", rec.Code, resp.TraceID)
	}

	// ... and via the X-Trace-Id header.
	req := httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(`{"source":"int main(void){return 2;}"}`))
	req.Header.Set("X-Trace-Id", "00000000cafef00d")
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK || hrec.Header().Get("X-Trace-Id") != "00000000cafef00d" {
		t.Errorf("header trace_id: status=%d X-Trace-Id=%q", hrec.Code, hrec.Header().Get("X-Trace-Id"))
	}

	// Malformed IDs are rejected up front.
	rec, _ = post(t, s, `{"source":"int main(void){return 0;}","trace_id":"NOT-HEX"}`)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed trace_id status = %d, want 400", rec.Code)
	}
}

// TestCureTraceparentPropagation covers the W3C trace-context path: a valid
// inbound traceparent's trace-id is adopted end to end (response headers,
// body, and the stored trace), a malformed one restarts the trace fresh and
// is counted, and an explicit X-Trace-Id wins over the traceparent.
func TestCureTraceparentPropagation(t *testing.T) {
	s := testServer()
	tid := trace.NewW3CTraceID()
	req := httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(`{"source":"int main(void){return 0;}"}`))
	req.Header.Set("Traceparent", trace.Traceparent(tid))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp CureResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != tid {
		t.Fatalf("trace_id = %q, want adopted %q", resp.TraceID, tid)
	}
	if got := rec.Header().Get("X-Trace-Id"); got != tid {
		t.Errorf("X-Trace-Id = %q, want %q", got, tid)
	}
	echo, ok := trace.ParseTraceparent(rec.Header().Get("Traceparent"))
	if !ok || echo != tid {
		t.Fatalf("response Traceparent %q does not round-trip %q", rec.Header().Get("Traceparent"), tid)
	}

	// The adopted ID resolves to a stored trace.
	treq := httptest.NewRequest(http.MethodGet, "/traces/"+tid, nil)
	trec := httptest.NewRecorder()
	s.ServeHTTP(trec, treq)
	if trec.Code != http.StatusOK {
		t.Fatalf("GET /traces/%s = %d: %s", tid, trec.Code, trec.Body.String())
	}
	if !strings.Contains(trec.Body.String(), tid) {
		t.Error("stored trace does not carry the adopted trace-id")
	}

	// Malformed traceparent: per spec not an error — the trace restarts
	// with a server-minted ID and the discard is counted.
	for i, bad := range []string{"garbage", "ff-" + tid + "-00f067aa0ba902b7-01", "00-00000000000000000000000000000000-00f067aa0ba902b7-01"} {
		req := httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(`{"source":"int main(void){return 3;}"}`))
		req.Header.Set("Traceparent", bad)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("malformed traceparent %q: status %d", bad, rec.Code)
		}
		var mresp CureResponse
		json.Unmarshal(rec.Body.Bytes(), &mresp)
		if mresp.TraceID == tid || !trace.ValidID(mresp.TraceID) {
			t.Fatalf("malformed traceparent %q adopted as %q", bad, mresp.TraceID)
		}
		m := s.metricsSnapshot()
		if m.TraceparentMalformed != uint64(i+1) {
			t.Fatalf("traceparent_malformed = %d after %d bad headers", m.TraceparentMalformed, i+1)
		}
	}

	// An explicit trace ID wins over the traceparent header.
	req = httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(`{"source":"int main(void){return 4;}"}`))
	req.Header.Set("X-Trace-Id", "00000000feedface")
	req.Header.Set("Traceparent", trace.Traceparent(trace.NewW3CTraceID()))
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Trace-Id") != "00000000feedface" {
		t.Errorf("explicit X-Trace-Id lost to traceparent: status=%d id=%q", rec.Code, rec.Header().Get("X-Trace-Id"))
	}
}

// historyServer builds a server with a metrics History attached (not
// started — tests drive Tick explicitly).
func historyServer() (*server, *pipeline.History) {
	runner := pipeline.NewRunner(pipeline.RunnerOptions{Workers: 2})
	hist := pipeline.NewHistory(pipeline.HistoryOptions{
		Source:   runner.Metrics,
		Interval: 100 * time.Millisecond,
		SLOs:     pipeline.DefaultSLOs(1000),
		Bus:      runner.Events(),
	})
	s := newServer(runner, serverConfig{MaxBytes: 1 << 20, History: hist})
	s.markReady()
	return s, hist
}

func TestMetricsHistoryEndpoint(t *testing.T) {
	s, hist := historyServer()
	if rec, _ := post(t, s, `{"source":"int main(void){return 0;}"}`); rec.Code != http.StatusOK {
		t.Fatalf("cure status = %d", rec.Code)
	}
	now := time.Now()
	hist.Tick(now.Add(-time.Second))
	hist.Tick(now)

	req := httptest.NewRequest(http.MethodGet, "/metrics/history?window=5m", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var dump pipeline.HistoryDump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Points) != 2 || dump.WindowMS != 300000 {
		t.Fatalf("dump = %d points window %d", len(dump.Points), dump.WindowMS)
	}
	if len(dump.SLOs) != 2 {
		t.Fatalf("dump SLOs = %+v, want availability+latency", dump.SLOs)
	}

	// The /metrics JSON snapshot carries the same SLO statuses.
	mreq := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	mrec := httptest.NewRecorder()
	s.ServeHTTP(mrec, mreq)
	var m pipeline.Metrics
	if err := json.Unmarshal(mrec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.SLOs) != 2 || m.SnapshotUnixMS == 0 {
		t.Fatalf("metrics SLOs = %d snapshot_unix_ms = %d", len(m.SLOs), m.SnapshotUnixMS)
	}

	// Bad window values are a 400.
	req = httptest.NewRequest(http.MethodGet, "/metrics/history?window=banana", nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad window status = %d, want 400", rec.Code)
	}

	// Without a configured history the endpoint is a 404.
	plain := testServer()
	req = httptest.NewRequest(http.MethodGet, "/metrics/history", nil)
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled history status = %d, want 404", rec.Code)
	}
}

func TestDebugDash(t *testing.T) {
	s, _ := historyServer()
	req := httptest.NewRequest(http.MethodGet, "/debug/dash", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{`<svg class="spark"`, "/metrics/history", "EventSource"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard HTML missing %q", want)
		}
	}

	// Without a history there is nothing to chart: 404.
	plain := testServer()
	rec = httptest.NewRecorder()
	plain.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/dash", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("disabled dash status = %d, want 404", rec.Code)
	}
}

// TestTracesEndpoint exercises GET /traces and GET /traces/{id}: the
// Chrome trace for a compiled request must validate and cover queue wait,
// the cache tier, and every compile phase, with the trace ID in the root
// span's args.
func TestTracesEndpoint(t *testing.T) {
	s := testServer()
	rec, resp := post(t, s, `{"name":"traced.c","source":"int main(void){ int a[3]; int i,t=0; for(i=0;i<3;i++) t+=a[i]; return 0; }","run":true}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("cure status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Tier != "compile" {
		t.Errorf("first request tier = %q, want compile", resp.Tier)
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/"+resp.TraceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces/{id} status = %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := flight.ValidateTrace(rec.Body.Bytes()); err != nil {
		t.Fatalf("trace invalid: %v\n%s", err, rec.Body.String())
	}
	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var rootTraceID string
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "B" {
			seen[ev.Name] = true
			if ev.Name == "request" && ev.Args != nil {
				rootTraceID, _ = ev.Args["trace_id"].(string)
			}
		}
	}
	for _, want := range []string{"request", "queue-wait", "compile", "cache-compile",
		"parse", "sema", "lower", "infer", "instrument", "run"} {
		if !seen[want] {
			t.Errorf("trace missing span %q; have %v", want, seen)
		}
	}
	if rootTraceID != resp.TraceID {
		t.Errorf("root span trace_id = %q, want %q", rootTraceID, resp.TraceID)
	}

	// The summary list includes the trace, newest first.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces?n=5", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces status = %d", rec.Code)
	}
	var list []struct {
		TraceID string `json:"trace_id"`
		Name    string `json:"name"`
		Spans   int    `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) == 0 {
		t.Fatalf("/traces list: err=%v body=%s", err, rec.Body.String())
	}
	if list[0].TraceID != resp.TraceID || list[0].Spans == 0 {
		t.Errorf("latest trace = %+v, want %s", list[0], resp.TraceID)
	}

	// Malformed and unknown IDs.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/not-an-id", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status = %d, want 400", rec.Code)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/ffffffffffffffff", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown id status = %d, want 404", rec.Code)
	}
}

// TestCacheHitTrace checks a second identical request reports the memory
// tier and its trace shows the cache span instead of compile phases.
func TestCacheHitTrace(t *testing.T) {
	s := testServer()
	body := `{"name":"hit.c","source":"int main(void){return 7;}"}`
	if rec, _ := post(t, s, body); rec.Code != http.StatusOK {
		t.Fatalf("first cure: %d", rec.Code)
	}
	rec, resp := post(t, s, body)
	if rec.Code != http.StatusOK || !resp.CacheHit || resp.Tier != "memory" {
		t.Fatalf("second cure: status=%d hit=%v tier=%q, want memory hit", rec.Code, resp.CacheHit, resp.Tier)
	}
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/traces/"+resp.TraceID, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/traces/{id} status = %d", rec.Code)
	}
	if _, err := flight.ValidateTrace(rec.Body.Bytes()); err != nil {
		t.Fatalf("hit trace invalid: %v", err)
	}
	bodyStr := rec.Body.String()
	if !strings.Contains(bodyStr, `"cache-memory"`) {
		t.Errorf("hit trace missing cache-memory span:\n%s", bodyStr)
	}
	if strings.Contains(bodyStr, `"parse"`) {
		t.Errorf("hit trace embeds stale compile phases:\n%s", bodyStr)
	}
}

// TestCureShedResponse pins the overload contract: when the queue is full
// the server answers 429 with a Retry-After header in whole seconds, a
// stable error code, and the trace ID — and the shed surfaces in the
// Prometheus families.
func TestCureShedResponse(t *testing.T) {
	gate := pipeline.NewStallGate()
	r := pipeline.NewRunner(pipeline.RunnerOptions{
		Workers:    1,
		QueueDepth: 1,
		Faults:     &pipeline.Faults{ExecGate: gate.Gate},
	})
	s := newServer(r, serverConfig{MaxBytes: 1 << 20})
	s.markReady()

	src := func(i int) string {
		return fmt.Sprintf(`{"name":"shed%d.c","source":"int main(void){ return %d; }"}`, i, i)
	}
	done := make(chan *httptest.ResponseRecorder, 2)
	postAsync := func(body string) {
		go func() {
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(body)))
			done <- rec
		}()
	}
	// One request wedged on the worker, one filling the queue.
	postAsync(src(0))
	if !gate.WaitArrived(1, 5*time.Second) {
		t.Fatal("first request never reached the worker")
	}
	postAsync(src(1))
	deadline := time.Now().Add(5 * time.Second)
	for r.Metrics().QueueDepthNow != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The third must shed.
	rec, _ := post(t, s, src(2))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", rec.Code, rec.Body.String())
	}
	secs, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", rec.Header().Get("Retry-After"))
	}
	if rec.Header().Get("X-Trace-Id") == "" {
		t.Error("shed response missing X-Trace-Id")
	}
	var eb struct {
		Error string `json:"error"`
		Code  string `json:"code"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("shed body not JSON: %v\n%s", err, rec.Body.String())
	}
	if eb.Code != "too_many_requests" || !strings.Contains(eb.Error, "queue_full") {
		t.Fatalf("shed body = %+v, want code too_many_requests / queue_full reason", eb)
	}

	// Drain: release the wedged request, wait for the queued one to reach
	// the worker, release it too. Both must succeed.
	gate.Release(1)
	if !gate.WaitArrived(2, 5*time.Second) {
		t.Fatal("queued request never dispatched")
	}
	gate.Release(1)
	for i := 0; i < 2; i++ {
		if rec := <-done; rec.Code != http.StatusOK {
			t.Fatalf("admitted request %d status = %d: %s", i, rec.Code, rec.Body.String())
		}
	}

	// The shed is visible in the exposition.
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics/prometheus", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics/prometheus status = %d", rec.Code)
	}
	for _, want := range []string{
		"gocured_shed_total 1",
		`gocured_shed_by_reason_total{reason="queue_full"} 1`,
		"gocured_admitted_total 2",
		"gocured_queue_limit 1",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestClientIDAttribution pins how requests map to fair-queue clients:
// the configured header wins, then the remote host without its port, then
// the raw remote address.
func TestClientIDAttribution(t *testing.T) {
	s := testServer()
	req := httptest.NewRequest(http.MethodPost, "/cure", nil)
	req.RemoteAddr = "198.51.100.7:4242"
	if got := s.clientID(req); got != "198.51.100.7" {
		t.Errorf("clientID = %q, want remote host", got)
	}
	req.Header.Set(DefaultClientHeader, "tenant-a")
	if got := s.clientID(req); got != "tenant-a" {
		t.Errorf("clientID = %q, want header value", got)
	}

	// A custom header config ignores the default header.
	s2 := newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1}),
		serverConfig{ClientHeader: "X-Team"})
	if got := s2.clientID(req); got != "198.51.100.7" {
		t.Errorf("custom-header clientID = %q, want remote host", got)
	}
	req.Header.Set("X-Team", "blue")
	if got := s2.clientID(req); got != "blue" {
		t.Errorf("custom-header clientID = %q, want configured header value", got)
	}

	// Un-parseable remote addresses attribute as-is.
	req2 := httptest.NewRequest(http.MethodPost, "/cure", nil)
	req2.RemoteAddr = "pipe"
	if got := s.clientID(req2); got != "pipe" {
		t.Errorf("clientID = %q, want raw remote addr", got)
	}
}

// TestRetryAfterSeconds pins the RFC 9110 rendering: whole seconds,
// rounded up, never below 1.
func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int64
	}{
		{0, 1},
		{50 * time.Millisecond, 1},
		{time.Second, 1},
		{1200 * time.Millisecond, 2},
		{5 * time.Second, 5},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
