// Package interp executes CIL programs over the simulated memory of
// internal/mem. It is the stand-in for "gcc + native execution" in this
// reproduction: uncured programs run with thin pointers and raw C layout
// (optionally under Purify- or Valgrind-style shadow-memory policies), and
// cured programs run with CCured's fat-pointer layouts and explicit check
// instructions, whose failures surface as traps.
package interp

import (
	"bytes"
	"fmt"
	"sort"

	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/flight"
	"gocured/internal/instrument"
	"gocured/internal/mem"
	"gocured/internal/qual"
	"gocured/internal/rtti"
	"gocured/internal/vm"
)

// Policy selects the execution/checking regime.
type Policy int

// Policies.
const (
	// PolicyNone runs the raw program with no checking (baseline "gcc").
	PolicyNone Policy = iota
	// PolicyCured runs an instrumented program, executing its checks.
	PolicyCured
	// PolicyPurify runs the raw program with Purify-style shadow memory
	// (2 status bits per byte, heap red zones; misses stack arrays).
	PolicyPurify
	// PolicyValgrind runs the raw program with Valgrind-style shadow
	// memory (9 bits per byte of program memory, JIT-cost emulation).
	PolicyValgrind
)

var policyNames = [...]string{"none", "cured", "purify", "valgrind"}

func (p Policy) String() string { return policyNames[p] }

// Backend selects the execution engine.
type Backend int

// Backends. The bytecode VM is the default (zero value); the tree walker
// remains as the semantic reference and escape hatch (-backend=tree).
const (
	BackendVM Backend = iota
	BackendTree
)

var backendNames = [...]string{"vm", "tree"}

func (b Backend) String() string { return backendNames[b] }

// ParseBackend parses a backend name ("vm" or "tree").
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "vm":
		return BackendVM, nil
	case "tree":
		return BackendTree, nil
	}
	return 0, fmt.Errorf("unknown backend %q (want vm or tree)", s)
}

// Config configures a Machine.
type Config struct {
	Policy Policy
	// Cured must be set when Policy is PolicyCured.
	Cured *instrument.Cured
	// StepLimit bounds executed instructions (0 = default 1e9).
	StepLimit uint64
	// StackSize in bytes (0 = default 1 MiB).
	StackSize uint32
	// Seed for the deterministic rand().
	Seed uint64
	// Stdin provides bytes for getchar()/sim input.
	Stdin []byte
	// Args are the program arguments; when main is declared as
	// main(int argc, char **argv) they are materialized in memory with
	// argv[0] set to the program name.
	Args []string
	// Flight, when non-nil, is the flight-recorder ring this run logs
	// into: checks, traps, allocations, fat-pointer conversions, wrapper
	// calls, and call frames. Nil keeps the recorder off; the only cost
	// on every hot path is a single nil comparison.
	Flight *flight.Ring
	// Profile, when non-nil, receives a source-line sample every
	// SamplePeriod interpreter steps.
	Profile *flight.Profile
	// SamplePeriod is the step-sampling period (0 = the profile's own
	// period, or flight.DefaultSamplePeriod).
	SamplePeriod uint64
	// Backend selects the execution engine: the bytecode VM (default) or
	// the tree walker. Both produce bit-identical observable results; the
	// differential fuzzer and the backend golden tests enforce it.
	Backend Backend
	// Code is an optional precompiled bytecode module for the program this
	// machine runs (it must have been compiled from the same *cil.Program
	// under the same layout). Nil makes New compile one when Backend is
	// BackendVM; callers that run the same program repeatedly (the
	// pipeline cache, benchmarks) pass a cached module to skip that.
	Code *vm.Module
}

// SiteKey identifies one static check site: rendered source position ×
// check kind.
type SiteKey struct {
	Pos  string
	Kind cil.CheckKind
}

// SiteCount tallies executions and traps of one check site.
type SiteCount struct {
	Hits  uint64
	Traps uint64
	// Elided counts checks the optimizer removed statically at this site —
	// pre-populated from the curing statistics so hot-site reporting stays
	// truthful about what would have executed at -O0.
	Elided uint64
}

// SiteStat is one check site with its counts, for top-N reporting.
type SiteStat struct {
	Pos    string
	Kind   cil.CheckKind
	Hits   uint64
	Traps  uint64
	Elided uint64
}

// Counters aggregates execution statistics.
type Counters struct {
	Steps  uint64
	Checks uint64
	// ChecksByKind tallies executed checks per kind. It is a fixed array
	// indexed by cil.CheckKind (a map here would hash on every dynamic
	// check); KindCounts.MarshalJSON keeps the external map-of-names shape.
	ChecksByKind KindCounts
	// Sites tallies per-site check executions and traps (file:line:col ×
	// check kind), the run-time attribution that lets the optimizer be
	// evaluated against real hit counts.
	Sites  map[SiteKey]*SiteCount
	Allocs uint64
	// Cost is the deterministic simulated-cycle count: every step, memory
	// access, check, split-metadata traversal, I/O call, and shadow-memory
	// operation adds a calibrated weight. Experiment tables use Cost
	// ratios, which are reproducible run to run (wall time over an
	// interpreter is too noisy for the paper's percent-level effects).
	Cost uint64
}

// TopSites returns the n hottest check sites by hit count (ties broken by
// position then kind, so the order is deterministic).
func (c *Counters) TopSites(n int) []SiteStat {
	out := make([]SiteStat, 0, len(c.Sites))
	for k, v := range c.Sites {
		out = append(out, SiteStat{Pos: k.Pos, Kind: k.Kind, Hits: v.Hits, Traps: v.Traps, Elided: v.Elided})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		// Count ties break on source position — numerically, so line 9
		// sorts before line 10 (lexical order would reverse them) — and
		// then on check kind. The order is pinned by TestTopSitesTieOrder.
		if c := diag.ComparePosStrings(out[i].Pos, out[j].Pos); c != 0 {
			return c < 0
		}
		return out[i].Kind < out[j].Kind
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// TrapProvenance explains one trap end to end: where it fired, the cured
// program's call stack at that moment, and the inference blame chain of the
// pointer whose check fired (why it had a checked kind at all).
type TrapProvenance struct {
	Pos       string   `json:"pos,omitempty"`
	CheckKind string   `json:"check_kind,omitempty"`
	Stack     []string `json:"stack,omitempty"`
	Blame     []string `json:"blame,omitempty"`
}

// Outcome is the result of a run.
type Outcome struct {
	ExitCode int
	Stdout   string
	// Trap is non-nil if the program died on a memory-safety violation.
	Trap *mem.Trap
	// TrapProv explains the trap (nil when the run did not trap).
	TrapProv *TrapProvenance
	// Flight is the run's flight-recorder ring (nil unless Config.Flight
	// was set) and BlackBox the trap-time snapshot cut from it (nil when
	// the run did not trap or the recorder was off).
	Flight   *flight.Ring
	BlackBox *flight.BlackBox
	Counters Counters
	// MemLoads/MemStores are raw memory accesses.
	MemLoads, MemStores uint64
	// ToolReports carries Purify/Valgrind-style diagnostics (those tools
	// report and continue rather than trap).
	ToolReports []string
}

type layoutOracle interface {
	Sizeof(*ctypes.Type) int
	Alignof(*ctypes.Type) int
	FieldOff(*ctypes.Field) int
	KindOf(*ctypes.Type) qual.Kind
	IsSplit(*ctypes.Type) bool
	PtrSize(*ctypes.Type) int
}

// Machine executes one program instance.
type Machine struct {
	prog   *cil.Program
	lay    layoutOracle
	cured  *instrument.Cured
	hier   *rtti.Hierarchy
	policy Policy

	mem     *mem.Memory
	globals map[*cil.Var]uint32
	strings map[string]uint32

	funcAddr   map[string]uint32
	funcByAddr map[uint32]*cil.Func
	builtins   map[string]builtinFn
	bltnByAddr map[uint32]string

	funcLayouts map[*cil.Func]*funcLayout

	// code is the bytecode module (nil on the tree backend); vmGlobals
	// resolves its global-index table to addresses once, at construction.
	code      *vm.Module
	vmGlobals []uint32

	// siteCounts is the dense per-site counter table, indexed by the
	// 1-based static site ID every check carries — the hit path touches no
	// map and renders no position string. extraSites holds the cold
	// leftovers: checks with no assigned ID and optimizer-elided sites
	// whose ID is unknown. finishSites folds both into Counters.Sites.
	siteCounts []SiteCount
	extraSites map[SiteKey]*SiteCount

	// framePool recycles activation records (and their register files)
	// across calls; deep call chains would otherwise allocate one frame
	// per call.
	framePool []*frame

	shadowMeta   map[uint32]metaEntry
	policyShadow *shadowMem

	stdout    bytes.Buffer
	stdin     []byte
	args      []string
	stdinPos  int
	cnt       Counters
	stepLimit uint64
	rngState  uint64
	timeTick  int64

	// rec/prof are the flight recorder hooks; both nil when tracing is
	// off, so the hot paths pay one branch each. sampleIn counts down
	// steps to the next profile sample.
	rec          *flight.Ring
	prof         *flight.Profile
	samplePeriod uint64
	sampleIn     uint64

	// frames mirrors the call stack for trap attribution; curPos tracks the
	// source position of the statement being executed and curCheck the check
	// instruction in flight. Trap records are decorated from these at trap
	// creation time — by the time Run's recover sees the panic, the deferred
	// frame pops have already unwound the stack.
	frames   []*frame
	curPos   diag.Pos
	curCheck *cil.Check
	trapProv *TrapProvenance

	libcState *libcState
}

type funcLayout struct {
	size    uint32
	offsets map[*cil.Var]uint32
}

// frame is one activation record. regs is the bytecode register file
// (empty under the tree backend). Frames are pooled on the Machine.
type frame struct {
	fn   *cil.Func
	base uint32
	lay  *funcLayout
	regs []Value
}

func (f *frame) slot(v *cil.Var, m *Machine) uint32 {
	off, ok := f.lay.offsets[v]
	if !ok {
		m.trapf("internal", "variable %q has no slot in %q", v.Name, f.fn.Name)
	}
	return f.base + off
}

// getFrame takes a pooled activation record (or allocates one) with room
// for nregs registers.
func (m *Machine) getFrame(fn *cil.Func, base uint32, lay *funcLayout, nregs int) *frame {
	var fr *frame
	if n := len(m.framePool); n > 0 {
		fr = m.framePool[n-1]
		m.framePool = m.framePool[:n-1]
	} else {
		fr = &frame{}
	}
	fr.fn, fr.base, fr.lay = fn, base, lay
	if nregs > 0 {
		if cap(fr.regs) < nregs {
			fr.regs = make([]Value, nregs)
		} else {
			fr.regs = fr.regs[:nregs]
		}
	} else {
		fr.regs = fr.regs[:0]
	}
	return fr
}

// putFrame returns an activation record to the pool. Registers may hold
// pointers into the RTTI hierarchy; clearing them is unnecessary (the
// next call overwrites written registers before reading them) and the
// hierarchy is program-lifetime anyway.
func (m *Machine) putFrame(fr *frame) {
	fr.fn, fr.lay = nil, nil
	m.framePool = append(m.framePool, fr)
}

// control-flow signals.
type signal int

const (
	sigNext signal = iota
	sigBreak
	sigContinue
	sigReturn
)

// trapPanic unwinds the interpreter on a memory trap.
type trapPanic struct{ t *mem.Trap }

// exitPanic unwinds on exit().
type exitPanic struct{ code int }

// New builds a machine for prog under cfg. For PolicyCured, cfg.Cured.Prog
// must be the (instrumented) program to run.
func New(prog *cil.Program, cfg Config) *Machine {
	m := &Machine{
		prog:        prog,
		policy:      cfg.Policy,
		mem:         mem.New(),
		globals:     make(map[*cil.Var]uint32),
		strings:     make(map[string]uint32),
		funcAddr:    make(map[string]uint32),
		funcByAddr:  make(map[uint32]*cil.Func),
		bltnByAddr:  make(map[uint32]string),
		funcLayouts: make(map[*cil.Func]*funcLayout),
		shadowMeta:  make(map[uint32]metaEntry),
		stdin:       cfg.Stdin,
		args:        cfg.Args,
		stepLimit:   cfg.StepLimit,
		rngState:    cfg.Seed*6364136223846793005 + 1442695040888963407,
		libcState:   &libcState{},
	}
	if m.stepLimit == 0 {
		m.stepLimit = 1_000_000_000
	}
	m.extraSites = make(map[SiteKey]*SiteCount)
	if cfg.Policy == PolicyCured {
		m.cured = cfg.Cured
		m.prog = cfg.Cured.Prog
		m.lay = cfg.Cured.Lay
		m.hier = cfg.Cured.Res.Hier
		m.siteCounts = make([]SiteCount, len(m.cured.Sites)+1)
		if m.cured.Opt != nil {
			// Seed site counters with the optimizer's deletions so a site
			// whose checks were all removed still shows up, attributed.
			// Sites that survived keep their dense slot; fully-elided ones
			// (no surviving check, hence no ID) go to the cold side table.
			for _, se := range m.cured.Opt.Sites {
				k := SiteKey{Pos: se.Pos.String(), Kind: se.Kind}
				if id, ok := m.cured.SiteIndex[instrument.SiteInfo{Pos: k.Pos, Kind: k.Kind}]; ok {
					m.siteCounts[id].Elided += uint64(se.N)
					continue
				}
				sc, ok := m.extraSites[k]
				if !ok {
					sc = &SiteCount{}
					m.extraSites[k] = sc
				}
				sc.Elided += uint64(se.N)
			}
		}
	} else {
		m.lay = instrument.RawLayout{}
	}
	if cfg.Policy == PolicyPurify || cfg.Policy == PolicyValgrind {
		m.policyShadow = newShadowMem(cfg.Policy)
	}
	if cfg.Flight != nil {
		m.rec = cfg.Flight
		if m.cured != nil {
			sites := make([]flight.Site, len(m.cured.Sites))
			for i, s := range m.cured.Sites {
				sites[i] = flight.Site{Pos: s.Pos, Kind: s.Kind.String()}
			}
			m.rec.SetSites(sites)
		}
	}
	if cfg.Profile != nil {
		m.prof = cfg.Profile
		m.samplePeriod = cfg.SamplePeriod
		if m.samplePeriod == 0 {
			m.samplePeriod = cfg.Profile.Period()
		}
		m.sampleIn = m.samplePeriod
	}
	m.builtins = builtinTable()

	if cfg.Backend == BackendVM {
		if cfg.Code != nil {
			m.code = cfg.Code
		} else {
			m.code = vm.Compile(m.prog, vmLayout(m.lay))
		}
	}
	m.layoutGlobals()
	if m.code != nil {
		// Bind the module's global-index table to this machine's layout
		// once; OpAddrGlobal is then a slice index.
		m.vmGlobals = make([]uint32, len(m.code.Globals))
		for i, v := range m.code.Globals {
			m.vmGlobals[i] = m.globals[v]
		}
	}
	stack := cfg.StackSize
	if stack == 0 {
		stack = 1 << 20
	}
	m.mem.InitStack(stack)
	return m
}

// vmLayout narrows the machine's layout oracle to the compiler's view.
func vmLayout(lay layoutOracle) vm.Layout { return lay }

// Stdout returns the output produced so far.
func (m *Machine) Stdout() string { return m.stdout.String() }

// Run executes main() and returns the outcome. Traps are reported in the
// outcome, not as Go errors; Go errors mean the program is malformed.
func (m *Machine) Run() (out *Outcome, err error) {
	mainFn := m.prog.Lookup("main")
	if mainFn == nil {
		return nil, fmt.Errorf("program has no main function")
	}
	out = &Outcome{}
	defer func() {
		if r := recover(); r != nil {
			switch p := r.(type) {
			case trapPanic:
				out.Trap = p.t
				out.TrapProv = m.trapProv
			case exitPanic:
				out.ExitCode = p.code
			default:
				panic(r)
			}
		}
		out.Stdout = m.stdout.String()
		m.finishSites()
		out.Counters = m.cnt
		out.MemLoads = m.mem.Loads
		out.MemStores = m.mem.Stores
		out.Counters.Cost += m.mem.Loads + m.mem.Stores
		if m.policyShadow != nil {
			out.ToolReports = m.policyShadow.reports
		}
		out.Flight = m.rec
		if m.rec != nil && out.Trap != nil {
			// The black box: the last events up to and including the trap,
			// with the trap's own attribution attached.
			out.BlackBox = flight.Snapshot(m.rec, 128)
			out.BlackBox.Stack = out.Trap.Stack
			if out.TrapProv != nil {
				out.BlackBox.Blame = out.TrapProv.Blame
			}
		}
		err = nil
	}()
	ret := m.call(mainFn, m.mainArgs(mainFn))
	out.ExitCode = int(ret.AsInt())
	return out, nil
}

// mainArgs materializes argc/argv for main(int, char**): the strings are
// interned, argv is an array of pointers in the layout main's parameter
// type demands, and both carry full bounds.
func (m *Machine) mainArgs(mainFn *cil.Func) []Value {
	if len(mainFn.Params) < 2 {
		return nil
	}
	argvTy := mainFn.Params[1].Type
	if !argvTy.IsPointer() || !argvTy.Elem.IsPointer() {
		return nil
	}
	args := append([]string{"a.out"}, m.args...)
	elemTy := argvTy.Elem
	esz := uint32(m.lay.PtrSize(elemTy))
	blk := m.mem.Alloc(esz*uint32(len(args)+1), mem.RegGlobal, "argv")
	for i, a := range args {
		m.store(blk.Addr+uint32(i)*esz, elemTy, m.internString(a))
	}
	return []Value{
		IntVal(int64(len(args))),
		SeqVal(blk.Addr, blk.Addr, blk.End()),
	}
}

func (m *Machine) trapf(kind, format string, args ...any) {
	t := mem.NewTrap(kind, format, args...)
	m.decorateTrap(t)
	panic(trapPanic{t})
}

// check converts a memory error into a trap.
func (m *Machine) check(err error) {
	if err == nil {
		return
	}
	if t, ok := err.(*mem.Trap); ok {
		m.decorateTrap(t)
		panic(trapPanic{t})
	}
	t := mem.NewTrap("error", "%v", err)
	m.decorateTrap(t)
	panic(trapPanic{t})
}

// decorateTrap attaches the trapping statement's source position and the
// live call stack to t, and records the run's trap provenance (including
// the inference blame chain when the trap fired inside a check). It must
// run at trap-creation time: panic unwinding pops the frames.
func (m *Machine) decorateTrap(t *mem.Trap) {
	pos := m.curPos
	if m.curCheck != nil && m.curCheck.Pos.IsValid() {
		pos = m.curCheck.Pos
	}
	if t.Pos == "" && pos.IsValid() {
		t.Pos = pos.String()
	}
	if t.Stack == nil {
		t.Stack = m.stackTrace()
	}
	if m.curCheck != nil {
		if sc := m.siteFor(m.curCheck); sc != nil {
			sc.Traps++
		}
	}
	if m.rec != nil {
		site := int32(0)
		if m.curCheck != nil {
			site = m.curCheck.Site
		}
		m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvTrap, Site: site, Name: t.Kind, Pos: t.Pos})
	}
	if m.trapProv == nil {
		tp := &TrapProvenance{Pos: t.Pos, Stack: t.Stack}
		if m.curCheck != nil {
			tp.CheckKind = m.curCheck.Kind.String()
			if m.cured != nil && m.curCheck.Ptr != nil {
				if ch := m.cured.Res.Explain(m.curCheck.Ptr.Type()); ch != nil {
					tp.Blame = ch.Lines()
				}
			}
		}
		m.trapProv = tp
	}
}

// stackTrace renders the live call stack, innermost frame first.
func (m *Machine) stackTrace() []string {
	out := make([]string, 0, len(m.frames))
	for i := len(m.frames) - 1; i >= 0; i-- {
		out = append(out, m.frames[i].fn.Name)
	}
	return out
}

// siteFor returns the per-site counter of c. The hot path — every check
// carries the 1-based site ID AssignSites stamped on it — is a single
// slice index with no allocation; checks without an ID (hand-built
// programs in tests) fall back to a cold keyed map.
func (m *Machine) siteFor(c *cil.Check) *SiteCount {
	if id := int(c.Site); id > 0 && id < len(m.siteCounts) {
		return &m.siteCounts[id]
	}
	if m.extraSites == nil {
		return nil
	}
	k := SiteKey{Pos: c.Pos.String(), Kind: c.Kind}
	sc, ok := m.extraSites[k]
	if !ok {
		sc = &SiteCount{}
		m.extraSites[k] = sc
	}
	return sc
}

// finishSites folds the dense site-counter table and the cold side table
// into the public Counters.Sites map (the shape TopSites and the Result
// API expose). It runs once, when the run ends.
func (m *Machine) finishSites() {
	m.cnt.Sites = make(map[SiteKey]*SiteCount, len(m.extraSites)+8)
	for id := 1; id < len(m.siteCounts); id++ {
		sc := m.siteCounts[id]
		if sc == (SiteCount{}) {
			continue // never hit, never trapped, nothing elided: not a row
		}
		info := m.cured.Sites[id-1]
		cp := sc
		m.cnt.Sites[SiteKey{Pos: info.Pos, Kind: info.Kind}] = &cp
	}
	for k, sc := range m.extraSites {
		if *sc == (SiteCount{}) {
			continue
		}
		if have, ok := m.cnt.Sites[k]; ok {
			have.Hits += sc.Hits
			have.Traps += sc.Traps
			have.Elided += sc.Elided
			continue
		}
		m.cnt.Sites[k] = sc
	}
}

// ---- Globals and layout ----

func (m *Machine) layoutGlobals() {
	// Function descriptors first (so function addresses are stable).
	for _, f := range m.prog.Funcs {
		b := m.mem.Alloc(4, mem.RegCode, "fn:"+f.Name)
		m.funcAddr[f.Name] = b.Addr
		m.funcByAddr[b.Addr] = f
	}
	for _, v := range m.prog.Externs {
		if _, dup := m.funcAddr[v.Name]; dup {
			continue
		}
		b := m.mem.Alloc(4, mem.RegCode, "ext:"+v.Name)
		m.funcAddr[v.Name] = b.Addr
		m.bltnByAddr[b.Addr] = v.Name
	}
	for _, g := range m.prog.Globals {
		size := m.lay.Sizeof(g.Var.Type)
		b := m.mem.Alloc(uint32(size), mem.RegGlobal, g.Var.Name)
		m.globals[g.Var] = b.Addr
	}
	for _, g := range m.prog.Globals {
		if g.Init != nil {
			m.applyInit(m.globals[g.Var], g.Var.Type, g.Init)
		}
	}
}

func (m *Machine) applyInit(addr uint32, ty *ctypes.Type, init *cil.Init) {
	switch {
	case init == nil || init.Zero:
	case init.IsList:
		switch ty.Kind {
		case ctypes.Array:
			esz := uint32(m.lay.Sizeof(ty.Elem))
			for i, e := range init.List {
				m.applyInit(addr+uint32(i)*esz, ty.Elem, e)
			}
		case ctypes.Struct:
			for i, e := range init.List {
				if i >= len(ty.SU.Fields) {
					break
				}
				f := ty.SU.Fields[i]
				m.applyInit(addr+uint32(m.lay.FieldOff(f)), f.Type, e)
			}
		default:
			if len(init.List) > 0 {
				m.applyInit(addr, ty, init.List[0])
			}
		}
	default:
		v := m.evalConstExpr(init.Expr)
		v = m.convert(v, init.Expr.Type(), ty)
		m.store(addr, ty, v)
	}
}

// evalConstExpr evaluates static-initializer expressions (no frame).
func (m *Machine) evalConstExpr(e cil.Expr) Value {
	switch x := e.(type) {
	case *cil.Const:
		return IntVal(x.I)
	case *cil.FConst:
		return FloatVal(x.F)
	case *cil.SizeOf:
		return IntVal(int64(m.lay.Sizeof(x.Of)))
	case *cil.StrConst:
		return m.internString(x.S)
	case *cil.FnConst:
		return PtrVal(m.funcAddrOf(x.Name))
	case *cil.AddrOf:
		if x.LV.Var != nil && x.LV.Var.Global {
			addr := m.globals[x.LV.Var]
			size := uint32(m.lay.Sizeof(x.LV.Var.Type))
			return SeqVal(addr, addr, addr+size)
		}
	case *cil.Cast:
		v := m.evalConstExpr(x.X)
		return m.convert(v, x.X.Type(), x.To)
	}
	m.trapf("init", "unsupported static initializer %T", e)
	return Value{}
}

func (m *Machine) internString(s string) Value {
	if addr, ok := m.strings[s]; ok {
		return SeqVal(addr, addr, addr+uint32(len(s))+1)
	}
	b := m.mem.Alloc(uint32(len(s))+1, mem.RegGlobal, "str")
	for i := 0; i < len(s); i++ {
		m.check(m.mem.WriteInt(b.Addr+uint32(i), 1, int64(s[i])))
	}
	m.check(m.mem.WriteInt(b.Addr+uint32(len(s)), 1, 0))
	m.strings[s] = b.Addr
	return SeqVal(b.Addr, b.Addr, b.End())
}

func (m *Machine) funcAddrOf(name string) uint32 {
	if a, ok := m.funcAddr[name]; ok {
		return a
	}
	// Unknown extern used only by address: allocate a descriptor lazily.
	b := m.mem.Alloc(4, mem.RegCode, "ext:"+name)
	m.funcAddr[name] = b.Addr
	m.bltnByAddr[b.Addr] = name
	return b.Addr
}

func (m *Machine) layoutOf(fn *cil.Func) *funcLayout {
	if fl, ok := m.funcLayouts[fn]; ok {
		return fl
	}
	// vm.FrameLayout is the single source of truth for frame layout: the
	// bytecode compiler resolves slots through it at compile time, so both
	// backends give a variable the same simulated address.
	size, offsets := vm.FrameLayout(fn, vmLayout(m.lay))
	fl := &funcLayout{size: size, offsets: offsets}
	m.funcLayouts[fn] = fl
	return fl
}

// ---- Calls ----

// call invokes a defined function with already-converted argument values,
// dispatching to the bytecode when the function compiled (direct bytecode
// call sites skip this and jump to vmCall with a linked *FuncCode; this
// path serves the tree backend, indirect calls, builtin callbacks, and
// the per-function fallback for code the vm compiler skipped).
func (m *Machine) call(fn *cil.Func, args []Value) Value {
	if m.code != nil {
		if fc := m.code.ByFunc[fn]; fc != nil {
			return m.vmCall(fc, args)
		}
	}
	fl := m.layoutOf(fn)
	blk, err := m.mem.PushFrame(fl.size, fn.Name)
	m.check(err)
	fr := m.getFrame(fn, blk.Addr, fl, 0)
	for i, p := range fn.Params {
		if i < len(args) {
			m.store(fr.slot(p, m), p.Type, args[i])
		}
	}
	if m.rec != nil {
		m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvCall, Name: fn.Name})
	}
	m.frames = append(m.frames, fr)
	defer func() {
		// Runs on trap unwinding too, so B/E frame pairs stay balanced in
		// the exported trace (the trap instant lands between them).
		if m.rec != nil {
			m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvRet, Name: fn.Name})
		}
		m.frames = m.frames[:len(m.frames)-1]
		m.mem.PopFrame()
		m.putFrame(fr)
	}()
	sig, ret := m.execBlock(fr, fn.Body)
	if sig == sigReturn {
		return ret
	}
	return IntVal(0)
}

// callPtr invokes a function through an address (function pointer or
// extern builtin).
func (m *Machine) callPtr(addr uint32, args []Value, argTypes []*ctypes.Type) Value {
	if fn, ok := m.funcByAddr[addr]; ok {
		// Convert args to the parameter occurrence types.
		conv := make([]Value, len(args))
		for i := range args {
			conv[i] = args[i]
			if i < len(fn.Params) && i < len(argTypes) {
				conv[i] = m.convert(args[i], argTypes[i], fn.Params[i].Type)
			}
		}
		return m.call(fn, conv)
	}
	if name, ok := m.bltnByAddr[addr]; ok {
		if bf, ok := m.builtins[name]; ok {
			m.recEvent(flight.EvWrapper, name, 0)
			return bf(m, args)
		}
		m.trapf("link", "call to unimplemented external function %q", name)
	}
	m.trapf("call", "call through invalid function pointer 0x%x", addr)
	return Value{}
}

// ---- Statements ----

func (m *Machine) execBlock(fr *frame, b *cil.Block) (signal, Value) {
	for _, s := range b.Stmts {
		if sig, v := m.execStmt(fr, s); sig != sigNext {
			return sig, v
		}
	}
	return sigNext, Value{}
}

func (m *Machine) addCost(n uint64) { m.cnt.Cost += n }

func (m *Machine) step() {
	m.cnt.Steps++
	m.cnt.Cost++
	if m.cnt.Steps > m.stepLimit {
		m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
	}
	if m.prof != nil {
		m.sampleStep()
	}
}

// sampleStep decrements the sampling countdown and, when it hits zero,
// records the current source line in the step profile (and an EvSample
// instant in the ring so samples are visible on the timeline too).
func (m *Machine) sampleStep() {
	m.sampleIn--
	if m.sampleIn > 0 {
		return
	}
	m.sampleIn = m.samplePeriod
	pos := "<generated>"
	if m.curPos.IsValid() {
		pos = fmt.Sprintf("%s:%d", m.curPos.File, m.curPos.Line)
	}
	m.prof.Sample(pos)
	if m.rec != nil {
		m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvSample, Pos: pos})
	}
}

// recEvent records one flight event stamped with the simulated-cycle
// clock. Callers on hot paths guard with `if m.rec != nil` themselves;
// recEvent re-checks so cold paths can call it unconditionally.
func (m *Machine) recEvent(kind flight.EvKind, name string, arg uint64) {
	if m.rec == nil {
		return
	}
	m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: kind, Name: name, Arg: arg})
}

// backEdge counts a loop back-edge against the step limit without charging
// simulated cost (the calibrated cost model charges per instruction, and
// both sides of every slowdown ratio would pay the back-edge equally).
// Without it a loop whose body executes no statements — `for (;;) {}` —
// would spin forever, immune to the step limit that the pipeline relies on
// as its hard backstop for runaway jobs.
func (m *Machine) backEdge() {
	m.cnt.Steps++
	if m.cnt.Steps > m.stepLimit {
		m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
	}
}

func (m *Machine) execStmt(fr *frame, s cil.Stmt) (signal, Value) {
	switch st := s.(type) {
	case *cil.Block:
		return m.execBlock(fr, st)
	case *cil.SInstr:
		m.step()
		if p := st.Ins.Position(); p.IsValid() {
			m.curPos = p
		}
		m.execInstr(fr, st.Ins)
		return sigNext, Value{}
	case *cil.If:
		m.step()
		if m.evalExpr(fr, st.Cond).Truthy() {
			return m.execBlock(fr, st.Then)
		}
		if st.Else != nil {
			return m.execBlock(fr, st.Else)
		}
		return sigNext, Value{}
	case *cil.Loop:
		for {
			m.backEdge()
			sig, v := m.execBlock(fr, st.Body)
			switch sig {
			case sigBreak:
				return sigNext, Value{}
			case sigReturn:
				return sig, v
			}
			if st.Post != nil {
				sig, v = m.execBlock(fr, st.Post)
				switch sig {
				case sigBreak:
					return sigNext, Value{}
				case sigReturn:
					return sig, v
				}
			}
		}
	case *cil.Break:
		return sigBreak, Value{}
	case *cil.Continue:
		return sigContinue, Value{}
	case *cil.Return:
		m.step()
		if st.Pos.IsValid() {
			m.curPos = st.Pos
		}
		if st.X == nil {
			return sigReturn, Value{}
		}
		v := m.evalExpr(fr, st.X)
		v = m.convert(v, st.X.Type(), fr.fn.Type.Fn.Ret)
		return sigReturn, v
	case *cil.Switch:
		m.step()
		x := m.evalExpr(fr, st.X).AsInt()
		start := -1
		dflt := -1
		for i, c := range st.Cases {
			if c.IsDefault {
				dflt = i
			} else if c.Val == x {
				start = i
				break
			}
		}
		if start < 0 {
			start = dflt
		}
		if start < 0 {
			return sigNext, Value{}
		}
		// C fallthrough: run case bodies from the match until a break.
		for i := start; i < len(st.Cases); i++ {
			for _, s2 := range st.Cases[i].Body {
				sig, v := m.execStmt(fr, s2)
				switch sig {
				case sigBreak:
					return sigNext, Value{}
				case sigContinue, sigReturn:
					return sig, v
				}
			}
		}
		return sigNext, Value{}
	}
	m.trapf("internal", "unknown statement %T", s)
	return sigNext, Value{}
}

func (m *Machine) execInstr(fr *frame, i cil.Instr) {
	switch in := i.(type) {
	case *cil.Set:
		// Aggregate assignment copies bytes; scalars go through values.
		if in.LV.Ty.Kind == ctypes.Struct || in.LV.Ty.Kind == ctypes.Array {
			m.execAggregateSet(fr, in)
			return
		}
		v := m.evalExpr(fr, in.RHS)
		v = m.convert(v, in.RHS.Type(), in.LV.Ty)
		addr, _, _ := m.evalLval(fr, in.LV)
		m.store(addr, in.LV.Ty, v)
	case *cil.Call:
		m.execCall(fr, in)
	case *cil.Check:
		m.execCheck(fr, in)
	default:
		m.trapf("internal", "unknown instruction %T", i)
	}
}

func (m *Machine) execAggregateSet(fr *frame, in *cil.Set) {
	lhsAddr, _, _ := m.evalLval(fr, in.LV)
	rhs, ok := in.RHS.(*cil.Lval)
	if !ok {
		m.trapf("internal", "aggregate assignment from non-lvalue %T", in.RHS)
	}
	rhsAddr, _, _ := m.evalLval(fr, rhs.LV)
	m.check(m.mem.Copy(lhsAddr, rhsAddr, uint32(m.lay.Sizeof(in.LV.Ty))))
}

func (m *Machine) execCall(fr *frame, in *cil.Call) {
	args := make([]Value, len(in.Args))
	argTypes := make([]*ctypes.Type, len(in.Args))
	for i, a := range in.Args {
		args[i] = m.evalExpr(fr, a)
		argTypes[i] = a.Type()
	}
	var ret Value
	if fc, ok := in.Fn.(*cil.FnConst); ok {
		if fn := m.prog.Lookup(fc.Name); fn != nil {
			conv := make([]Value, len(args))
			for i := range args {
				conv[i] = args[i]
				if i < len(fn.Params) {
					conv[i] = m.convert(args[i], argTypes[i], fn.Params[i].Type)
				}
			}
			ret = m.call(fn, conv)
		} else if bf, ok := m.builtins[fc.Name]; ok {
			m.recEvent(flight.EvWrapper, fc.Name, 0)
			ret = bf(m, args)
		} else {
			m.trapf("link", "call to undefined function %q", fc.Name)
		}
	} else {
		fnv := m.evalExpr(fr, in.Fn)
		ret = m.callPtr(fnv.P, args, argTypes)
	}
	if in.Result != nil {
		ft := in.Fn.Type()
		if ft.IsPointer() {
			ft = ft.Elem
		}
		if ft.Kind == ctypes.Func {
			ret = m.convert(ret, ft.Fn.Ret, in.Result.Ty)
		}
		addr, _, _ := m.evalLval(fr, in.Result)
		m.store(addr, in.Result.Ty, ret)
	}
}

// ---- Expressions ----

func (m *Machine) evalExpr(fr *frame, e cil.Expr) Value {
	switch x := e.(type) {
	case *cil.Const:
		return IntVal(x.I)
	case *cil.FConst:
		return FloatVal(x.F)
	case *cil.SizeOf:
		return IntVal(int64(m.lay.Sizeof(x.Of)))
	case *cil.StrConst:
		return m.internString(x.S)
	case *cil.FnConst:
		return PtrVal(m.funcAddrOf(x.Name))
	case *cil.Lval:
		addr, _, _ := m.evalLval(fr, x.LV)
		if m.policyShadow != nil {
			m.policyShadow.onLoad(m, addr, uint32(m.lay.Sizeof(x.LV.Ty)))
		}
		return m.load(addr, x.LV.Ty)
	case *cil.AddrOf:
		addr, b, e2 := m.evalLval(fr, x.LV)
		v := Value{K: VPtr, P: addr, B: b, E: e2}
		switch m.lay.KindOf(x.Ty) {
		case qual.Wild:
			if blk := m.mem.BlockAt(addr); blk != nil {
				blk.MakeWild()
				v.B = blk.Addr
			}
		case qual.Rtti:
			// The address of an object knows its exact static type.
			if m.hier != nil && x.Ty.Elem != nil {
				v.RT = m.hier.Of(x.Ty.Elem)
			}
		}
		return v
	case *cil.BinOp:
		return m.evalBinOp(fr, x)
	case *cil.UnOp:
		v := m.evalExpr(fr, x.X)
		switch x.Op {
		case cil.OpNeg:
			if v.K == VFloat {
				return FloatVal(-v.F)
			}
			t := x.Ty
			return IntVal(normInt(-v.AsInt(), t.Size, t.Signed))
		case cil.OpNot:
			if v.Truthy() {
				return IntVal(0)
			}
			return IntVal(1)
		case cil.OpBitNot:
			t := x.Ty
			return IntVal(normInt(^v.AsInt(), t.Size, t.Signed))
		}
	case *cil.Cast:
		v := m.evalExpr(fr, x.X)
		return m.convertChecked(v, x.X.Type(), x.To, x.Trusted)
	}
	m.trapf("internal", "unknown expression %T", e)
	return Value{}
}

func (m *Machine) evalBinOp(fr *frame, x *cil.BinOp) Value {
	a := m.evalExpr(fr, x.A)
	b := m.evalExpr(fr, x.B)
	switch x.Op {
	case cil.OpAddPI, cil.OpSubPI:
		elem := x.A.Type().Elem
		esz := int64(m.lay.Sizeof(elem))
		idx := b.AsInt()
		if x.Op == cil.OpSubPI {
			idx = -idx
		}
		out := a
		out.P = uint32(int64(a.P) + idx*esz)
		return out
	case cil.OpSubPP:
		elem := x.A.Type().Elem
		esz := int64(m.lay.Sizeof(elem))
		if esz == 0 {
			esz = 1
		}
		return IntVal((int64(a.P) - int64(b.P)) / esz)
	}

	if a.K == VFloat || b.K == VFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case cil.OpAdd:
			return m.fret(x, af+bf)
		case cil.OpSub:
			return m.fret(x, af-bf)
		case cil.OpMul:
			return m.fret(x, af*bf)
		case cil.OpDiv:
			return m.fret(x, af/bf)
		case cil.OpLt:
			return boolVal(af < bf)
		case cil.OpGt:
			return boolVal(af > bf)
		case cil.OpLe:
			return boolVal(af <= bf)
		case cil.OpGe:
			return boolVal(af >= bf)
		case cil.OpEq:
			return boolVal(af == bf)
		case cil.OpNe:
			return boolVal(af != bf)
		}
		m.trapf("arith", "bad float operator %s", x.Op)
	}

	ai, bi := a.AsInt(), b.AsInt()
	t := x.Ty
	signed := t.Kind != ctypes.Int || t.Signed
	norm := func(v int64) Value {
		if t.Kind == ctypes.Int {
			return IntVal(normInt(v, t.Size, t.Signed))
		}
		return IntVal(v)
	}
	switch x.Op {
	case cil.OpAdd:
		return norm(ai + bi)
	case cil.OpSub:
		return norm(ai - bi)
	case cil.OpMul:
		return norm(ai * bi)
	case cil.OpDiv:
		if bi == 0 {
			m.trapf("arith", "division by zero")
		}
		if !signed {
			return norm(int64(uint64(uint32(ai)) / uint64(uint32(bi))))
		}
		return norm(ai / bi)
	case cil.OpRem:
		if bi == 0 {
			m.trapf("arith", "modulo by zero")
		}
		if !signed {
			return norm(int64(uint64(uint32(ai)) % uint64(uint32(bi))))
		}
		return norm(ai % bi)
	case cil.OpShl:
		return norm(ai << uint(bi&63))
	case cil.OpShr:
		if !signed {
			return norm(int64(uint32(ai) >> uint(bi&31)))
		}
		return norm(ai >> uint(bi&63))
	case cil.OpBitAnd:
		return norm(ai & bi)
	case cil.OpBitOr:
		return norm(ai | bi)
	case cil.OpBitXor:
		return norm(ai ^ bi)
	case cil.OpLt:
		return boolVal(cmpInts(a, b, signed) < 0)
	case cil.OpGt:
		return boolVal(cmpInts(a, b, signed) > 0)
	case cil.OpLe:
		return boolVal(cmpInts(a, b, signed) <= 0)
	case cil.OpGe:
		return boolVal(cmpInts(a, b, signed) >= 0)
	case cil.OpEq:
		return boolVal(ai == bi)
	case cil.OpNe:
		return boolVal(ai != bi)
	}
	m.trapf("arith", "bad operator %s", x.Op)
	return Value{}
}

func (m *Machine) fret(x *cil.BinOp, f float64) Value {
	if x.Ty.Kind == ctypes.Float && x.Ty.Size == 4 {
		return FloatVal(float64(float32(f)))
	}
	return FloatVal(f)
}

func cmpInts(a, b Value, signed bool) int {
	// Pointer comparisons are unsigned address comparisons.
	if a.K == VPtr || b.K == VPtr || !signed {
		ua, ub := uint32(a.AsInt()), uint32(b.AsInt())
		switch {
		case ua < ub:
			return -1
		case ua > ub:
			return 1
		}
		return 0
	}
	ai, bi := a.AsInt(), b.AsInt()
	switch {
	case ai < bi:
		return -1
	case ai > bi:
		return 1
	}
	return 0
}

func boolVal(b bool) Value {
	if b {
		return IntVal(1)
	}
	return IntVal(0)
}

// evalLval computes the address of an lvalue along with its home-area
// bounds (used by AddrOf to give SEQ pointers their extent: field steps
// narrow the bounds to the field, index steps keep the whole array).
func (m *Machine) evalLval(fr *frame, lv *cil.Lvalue) (addr, homeB, homeE uint32) {
	var cur *ctypes.Type
	switch {
	case lv.Var != nil:
		v := lv.Var
		if v.Global {
			addr = m.globals[v]
			if addr == 0 {
				m.trapf("internal", "global %q has no storage", v.Name)
			}
		} else {
			addr = fr.slot(v, m)
		}
		cur = v.Type
		homeB = addr
		homeE = addr + uint32(m.lay.Sizeof(cur))
	default:
		pv := m.evalExpr(fr, lv.Mem)
		addr = pv.P
		cur = lv.Mem.Type().Elem
		if pv.B != 0 && pv.E != 0 {
			homeB, homeE = pv.B, pv.E
		} else {
			homeB = addr
			homeE = addr + uint32(m.lay.Sizeof(cur))
		}
	}
	for _, o := range lv.Offset {
		if o.Field != nil {
			addr += uint32(m.lay.FieldOff(o.Field))
			cur = o.Field.Type
			// Field step: the home area narrows to the field.
			homeB = addr
			homeE = addr + uint32(m.lay.Sizeof(cur))
			continue
		}
		idx := m.evalExpr(fr, o.Index).AsInt()
		if cur.Kind == ctypes.Array {
			esz := int64(m.lay.Sizeof(cur.Elem))
			addr = uint32(int64(addr) + idx*esz)
			cur = cur.Elem
			// Index step: keep the array as the home area.
			continue
		}
		m.trapf("internal", "index step on non-array type %s", cur)
	}
	return addr, homeB, homeE
}
