package core_test

import (
	"strings"
	"testing"

	"gocured/internal/core"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

func TestBuildProducesBothPrograms(t *testing.T) {
	u, err := core.Build("t.c", `
extern int printf(char *fmt, ...);
int main(void) {
    int a[4];
    int i, s = 0;
    for (i = 0; i < 4; i++) a[i] = i;
    for (i = 0; i < 4; i++) s += a[i];
    printf("%d\n", s);
    return 0;
}
`, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if u.Raw == nil || u.Cured == nil || u.Res == nil {
		t.Fatal("unit incomplete")
	}
	// Raw and cured are distinct program objects: curing must not mutate
	// the baseline.
	if u.Raw == u.Cured.Prog {
		t.Error("raw and cured must be independent lowerings")
	}
	rawChecks := 0
	for range u.Cured.ChecksInserted {
		rawChecks++
	}
	if rawChecks == 0 {
		t.Error("no check kinds recorded")
	}
	raw, err := u.RunRaw(interp.PolicyNone, interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cured, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Stdout != "6\n" || cured.Stdout != "6\n" {
		t.Errorf("stdout raw=%q cured=%q", raw.Stdout, cured.Stdout)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := core.Build("bad.c", "int f(void) { return missing; }", infer.Options{}); err == nil {
		t.Error("semantic errors must fail Build")
	} else if !strings.Contains(err.Error(), "undeclared") {
		t.Errorf("err = %v", err)
	}
	if _, err := core.Build("bad2.c", "int f( {", infer.Options{}); err == nil {
		t.Error("parse errors must fail Build")
	}
}

func TestStatsAccessor(t *testing.T) {
	u, err := core.Build("t.c", `
int *p;
int buf[4];
void f(void) { p = buf; p = p + 1; }
`, infer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := u.Stats()
	if s.Ptrs == 0 || s.Seq == 0 {
		t.Errorf("stats = %+v", s)
	}
}
