package infer

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// Split inference (§4.2). Values of SPLIT type use the compatible
// representation: data laid out exactly as C (type C(t)) plus a parallel
// metadata structure (type Meta(t)). Starting from user annotations, SPLIT
// flows down from a pointer to its base type and from a structure to its
// fields (a SPLIT pointer must never point to a NOSPLIT type), and casts or
// assignments between values force both sides to agree.

type snode struct {
	split   bool
	noSplit bool   // pinned NOSPLIT by annotation
	why     string // provenance: what made the class SPLIT
	parent  *snode
	rank    int
	// down lists nodes this one forces SPLIT onto (base types, fields).
	down []*snode
}

// find returns the representative without mutating the chain, so solved
// results can be queried from concurrent runs; inferSplit compresses every
// chain once the inference is done.
func (n *snode) find() *snode {
	for n.parent != n.parent.parent {
		n = n.parent
	}
	return n.parent
}

// SplitStats summarizes the split inference outcome.
type SplitStats struct {
	Ptrs      int // pointer occurrences considered
	SplitPtrs int // pointers with split (compatible) representation
	MetaPtrs  int // split pointers that need a metadata pointer (m field)
}

// PctSplit returns the percentage of pointers with split types.
func (s SplitStats) PctSplit() float64 { return pct(s.SplitPtrs, s.Ptrs) }

// PctMeta returns the percentage of split pointers needing an m field.
func (s SplitStats) PctMeta() float64 { return pct(s.MetaPtrs, s.Ptrs) }

// SplitResult carries per-occurrence split decisions.
type SplitResult struct {
	nodes map[*ctypes.Type]*snode
	g     *qual.Graph
	Stats SplitStats
	// metaMemo caches metaNonVoid per canonical pointee.
	metaMemo map[*ctypes.Type]int8
}

// IsSplit reports whether the occurrence t uses the compatible (split)
// representation.
func (r *SplitResult) IsSplit(t *ctypes.Type) bool {
	if n, ok := r.nodes[t]; ok {
		return n.find().split
	}
	return false
}

// SplitWhy returns the provenance of a SPLIT decision ("annotated __SPLIT",
// "split-all mode", "contained in a SPLIT type", ...), or "" when t is not
// split.
func (r *SplitResult) SplitWhy(t *ctypes.Type) string {
	if n, ok := r.nodes[t]; ok {
		if rn := n.find(); rn.split {
			if rn.why == "" {
				return "unified with a SPLIT type"
			}
			return rn.why
		}
	}
	return ""
}

type splitInf struct {
	prog     *cil.Program
	g        *qual.Graph
	diags    *diag.List
	splitAll bool
	res      *SplitResult
}

// inferSplit runs split inference after kind inference. With splitAll the
// inference seeds every node SPLIT (the §5 all-split ablation).
func inferSplit(prog *cil.Program, g *qual.Graph, splitAll bool, diags *diag.List) *SplitResult {
	si := &splitInf{
		prog:     prog,
		g:        g,
		diags:    diags,
		splitAll: splitAll,
		res: &SplitResult{
			nodes:    make(map[*ctypes.Type]*snode),
			g:        g,
			metaMemo: make(map[*ctypes.Type]int8),
		},
	}
	si.collect()
	si.propagate()
	si.res.computeStats(g)
	// Collapse the union-find chains: IsSplit is queried by the layout
	// oracle on the interpreter's hot path, possibly from many goroutines.
	for _, n := range si.res.nodes {
		n.parent = n.find()
	}
	return si.res
}

func (si *splitInf) node(t *ctypes.Type) *snode {
	if t == nil {
		return nil
	}
	if n, ok := si.res.nodes[t]; ok {
		return n.find()
	}
	n := &snode{}
	n.parent = n
	switch t.SplitAnnot {
	case ctypes.SAnnSplit:
		n.split = true
		n.why = "annotated __SPLIT"
	case ctypes.SAnnNoSplit:
		n.noSplit = true
	}
	if si.splitAll {
		n.split = true
		if n.why == "" {
			n.why = "split-all mode"
		}
	}
	si.res.nodes[t] = n
	return n
}

func (si *splitInf) union(a, b *snode) {
	if a == nil || b == nil {
		return
	}
	ra, rb := a.find(), b.find()
	if ra == rb {
		return
	}
	if ra.rank < rb.rank {
		ra, rb = rb, ra
	}
	if ra.rank == rb.rank {
		ra.rank++
	}
	rb.parent = ra
	if rb.split && !ra.split {
		ra.why = rb.why
	}
	ra.split = ra.split || rb.split
	ra.noSplit = ra.noSplit || rb.noSplit
	ra.down = append(ra.down, rb.down...)
}

// regSplitType builds split nodes and downward edges for every occurrence
// in t: pointer -> base, struct -> fields, array -> element.
func (si *splitInf) regSplitType(t *ctypes.Type) {
	if t == nil {
		return
	}
	ctypes.Walk(t, func(u *ctypes.Type) {
		n := si.node(u)
		switch u.Kind {
		case ctypes.Ptr, ctypes.Array:
			n.down = append(n.down, si.node(u.Elem))
		case ctypes.Struct:
			if u.SU.Complete {
				for _, f := range u.SU.Fields {
					n.down = append(n.down, si.node(f.Type))
				}
			}
		}
	})
}

func (si *splitInf) collect() {
	for _, g := range si.prog.Globals {
		si.regSplitType(g.Var.Type)
		si.regSplitType(g.Var.AddrType)
	}
	for _, v := range si.prog.Externs {
		si.regSplitType(v.Type)
	}
	for _, f := range si.prog.Funcs {
		si.regSplitType(f.Type)
		for _, p := range f.Params {
			si.regSplitType(p.Type)
			si.regSplitType(p.AddrType)
		}
		for _, l := range f.Locals {
			si.regSplitType(l.Type)
			si.regSplitType(l.AddrType)
		}
		si.collectFunc(f)
	}
}

// collectFunc unifies split-ness across assignments and casts: converting
// between representations mid-flow is unsound, so both sides agree.
func (si *splitInf) collectFunc(f *cil.Func) {
	unifyTypes := func(a, b *ctypes.Type) {
		if a == nil || b == nil {
			return
		}
		si.regSplitType(a)
		si.regSplitType(b)
		si.union(si.node(a), si.node(b))
		if a.IsPointer() && b.IsPointer() {
			si.union(si.node(a.Elem), si.node(b.Elem))
		}
	}
	cil.WalkFuncExprs(f, func(e cil.Expr) {
		if c, ok := e.(*cil.Cast); ok {
			if c.To.IsPointer() && c.X.Type().IsPointer() {
				unifyTypes(c.To, c.X.Type())
			}
		}
	})
	cil.WalkInstrs(f.Body.Stmts, func(i cil.Instr) {
		switch in := i.(type) {
		case *cil.Set:
			unifyTypes(in.RHS.Type(), in.LV.Ty)
		case *cil.Call:
			ft := in.Fn.Type()
			if ft.IsPointer() {
				ft = ft.Elem
			}
			if ft.Kind != ctypes.Func {
				return
			}
			for idx, a := range in.Args {
				if idx < len(ft.Fn.Params) {
					unifyTypes(a.Type(), ft.Fn.Params[idx])
				}
			}
			if in.Result != nil {
				unifyTypes(ft.Fn.Ret, in.Result.Ty)
			}
		}
	})
}

// propagate pushes SPLIT down through base types and fields to a fixpoint.
func (si *splitInf) propagate() {
	changed := true
	for changed {
		changed = false
		for _, n := range si.res.nodes {
			r := n.find()
			if !r.split {
				continue
			}
			for _, d := range r.down {
				rd := d.find()
				if !rd.split {
					rd.split = true
					rd.why = "contained in a SPLIT type"
					changed = true
				}
			}
		}
	}
	// Conflicts: pinned NOSPLIT or WILD occurrences cannot be split.
	for t, n := range si.res.nodes {
		r := n.find()
		if !r.split {
			continue
		}
		if r.noSplit {
			si.diags.Warnf(diag.Pos{}, "type %s is both __SPLIT (inferred) and __NOSPLIT (annotated); keeping SPLIT", t)
		}
		if t.Kind == ctypes.Ptr && si.g.KindOf(t) == qual.Wild {
			si.diags.Warnf(diag.Pos{}, "WILD pointer %s cannot use the compatible representation; ignoring SPLIT", t)
			r.split = false
		}
	}
}

// MetaNonVoid reports whether Meta(t) != void under the solved kinds: SEQ
// and RTTI pointers carry their own metadata; SAFE pointers need an m field
// exactly when their base type has metadata; aggregates aggregate.
func (r *SplitResult) MetaNonVoid(t *ctypes.Type) bool {
	return r.metaNonVoid(t, make(map[*ctypes.StructInfo]bool))
}

func (r *SplitResult) metaNonVoid(t *ctypes.Type, inProgress map[*ctypes.StructInfo]bool) bool {
	if t == nil {
		return false
	}
	if v, ok := r.metaMemo[t]; ok {
		return v == 1
	}
	res := false
	switch t.Kind {
	case ctypes.Ptr:
		switch r.g.KindOf(t) {
		case qual.Seq, qual.Rtti, qual.Wild:
			res = true
		default:
			res = r.metaNonVoid(t.Elem, inProgress)
		}
	case ctypes.Array:
		res = r.metaNonVoid(t.Elem, inProgress)
	case ctypes.Struct:
		if t.SU.Complete && !inProgress[t.SU] {
			inProgress[t.SU] = true
			for _, f := range t.SU.Fields {
				if r.metaNonVoid(f.Type, inProgress) {
					res = true
					break
				}
			}
			delete(inProgress, t.SU)
		}
	}
	if res {
		r.metaMemo[t] = 1
	} else {
		r.metaMemo[t] = 0
	}
	return res
}

func (r *SplitResult) computeStats(g *qual.Graph) {
	for t, n := range r.nodes {
		if t.Kind != ctypes.Ptr {
			continue
		}
		r.Stats.Ptrs++
		if n.find().split {
			r.Stats.SplitPtrs++
			if r.MetaNonVoid(t.Elem) {
				r.Stats.MetaPtrs++
			}
		}
	}
}
