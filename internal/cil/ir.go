// Package cil defines gocured's CIL-like intermediate representation and the
// lowering from the checked AST. As in the original CIL, expressions are
// side-effect free: assignments, calls, and the short-circuit operators are
// lowered to instructions with temporaries. Lvalues are a base (variable or
// memory) plus an offset chain of fields and indices.
package cil

import (
	"fmt"

	"gocured/internal/ctypes"
	"gocured/internal/diag"
)

// ---- Variables ----

// Var is a CIL variable: global, parameter, local, or compiler temporary.
type Var struct {
	Name   string
	Type   *ctypes.Type
	Global bool
	Param  bool
	Temp   bool
	ID     int // unique within the program (globals) or function (locals)

	// AddrType is the shared pointer occurrence for &v (carried over from
	// sema so every address-of site shares one qualifier node).
	AddrType *ctypes.Type
	// AddrTaken records whether the variable's address escapes.
	AddrTaken bool
}

func (v *Var) String() string { return v.Name }

// ---- Expressions ----

// Expr is a pure (side-effect free) expression.
type Expr interface {
	Type() *ctypes.Type
}

// Const is an integer constant.
type Const struct {
	I  int64
	Ty *ctypes.Type
}

// Type returns the constant's type.
func (e *Const) Type() *ctypes.Type { return e.Ty }

// FConst is a floating constant.
type FConst struct {
	F  float64
	Ty *ctypes.Type
}

// Type returns the constant's type.
func (e *FConst) Type() *ctypes.Type { return e.Ty }

// StrConst is the address of an interned string literal.
type StrConst struct {
	S  string
	Ty *ctypes.Type // char*
}

// Type returns the literal's pointer type.
func (e *StrConst) Type() *ctypes.Type { return e.Ty }

// FnConst is the address of a named function.
type FnConst struct {
	Name string
	Ty   *ctypes.Type // pointer to function
}

// Type returns the function pointer type.
func (e *FnConst) Type() *ctypes.Type { return e.Ty }

// SizeOf is a symbolic sizeof: its value depends on the layout (curing
// grows types containing fat pointers, so the instrumented program must
// evaluate sizeof against the cured layout — this is CCured's rewriting of
// sizeof expressions).
type SizeOf struct {
	Of *ctypes.Type
	Ty *ctypes.Type // result type (unsigned int)
}

// Type returns the result type.
func (e *SizeOf) Type() *ctypes.Type { return e.Ty }

// Lval reads an lvalue.
type Lval struct {
	LV *Lvalue
}

// Type returns the lvalue's type.
func (e *Lval) Type() *ctypes.Type { return e.LV.Ty }

// AddrOf takes the address of an lvalue.
type AddrOf struct {
	LV *Lvalue
	Ty *ctypes.Type
}

// Type returns the resulting pointer type.
func (e *AddrOf) Type() *ctypes.Type { return e.Ty }

// Op enumerates CIL operators. Pointer arithmetic is distinguished from
// integer arithmetic (as in CIL's PlusPI/MinusPI/MinusPP).
type Op int

// Operators.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpShl
	OpShr
	OpBitAnd
	OpBitOr
	OpBitXor
	OpLt
	OpGt
	OpLe
	OpGe
	OpEq
	OpNe
	OpAddPI // pointer + integer (element units)
	OpSubPI // pointer - integer
	OpSubPP // pointer - pointer (result: element count)
	OpNeg
	OpNot
	OpBitNot
)

var opNames = [...]string{"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^",
	"<", ">", "<=", ">=", "==", "!=", "+p", "-p", "-pp", "neg", "!", "~"}

func (o Op) String() string { return opNames[o] }

// BinOp is a binary operation.
type BinOp struct {
	Op   Op
	A, B Expr
	Ty   *ctypes.Type
}

// Type returns the result type.
func (e *BinOp) Type() *ctypes.Type { return e.Ty }

// UnOp is a unary operation (OpNeg, OpNot, OpBitNot).
type UnOp struct {
	Op Op
	X  Expr
	Ty *ctypes.Type
}

// Type returns the result type.
func (e *UnOp) Type() *ctypes.Type { return e.Ty }

// Cast converts X to type To. Every conversion in the program is explicit
// in the IR; the inference engine consumes these nodes.
type Cast struct {
	To       *ctypes.Type
	X        Expr
	Implicit bool
	Trusted  bool
	Pos      diag.Pos
}

// Type returns the destination type.
func (e *Cast) Type() *ctypes.Type { return e.To }

// ---- Lvalues ----

// OffElem is one step of an offset chain: exactly one of Field, Index set.
type OffElem struct {
	Field *ctypes.Field
	Index Expr // nil for field steps
}

// Lvalue designates an object: a base (variable or dereferenced pointer
// expression) plus an offset chain.
type Lvalue struct {
	Var *Var // base variable, or
	Mem Expr // dereferenced pointer expression (exactly one set)

	Offset []OffElem
	Ty     *ctypes.Type // type of the designated object
}

// VarLV makes an lvalue designating variable v.
func VarLV(v *Var) *Lvalue { return &Lvalue{Var: v, Ty: v.Type} }

// MemLV makes an lvalue designating *p.
func MemLV(p Expr) *Lvalue { return &Lvalue{Mem: p, Ty: p.Type().Elem} }

// WithField extends lv with a field step.
func (lv *Lvalue) WithField(f *ctypes.Field) *Lvalue {
	out := *lv
	out.Offset = append(append([]OffElem(nil), lv.Offset...), OffElem{Field: f})
	out.Ty = f.Type
	return &out
}

// WithIndex extends lv with an index step (for array-typed lvalues).
func (lv *Lvalue) WithIndex(i Expr) *Lvalue {
	out := *lv
	out.Offset = append(append([]OffElem(nil), lv.Offset...), OffElem{Index: i})
	out.Ty = lv.Ty.Elem
	return &out
}

// ---- Instructions ----

// Instr is a side-effecting instruction.
type Instr interface {
	instr()
	Position() diag.Pos
}

type instrBase struct{ Pos diag.Pos }

func (instrBase) instr()               {}
func (i instrBase) Position() diag.Pos { return i.Pos }

// Set stores RHS into LV.
type Set struct {
	instrBase
	LV  *Lvalue
	RHS Expr
}

// Call invokes Fn with Args, optionally storing the result in Result.
type Call struct {
	instrBase
	Result *Lvalue // may be nil
	Fn     Expr    // FnConst for direct calls, otherwise a function pointer
	Args   []Expr
}

// CheckKind enumerates the run-time checks CCured inserts (Appendix A).
type CheckKind int

// Check kinds.
const (
	// CheckNull: pointer (SAFE) must be non-null.
	CheckNull CheckKind = iota
	// CheckSeq: SEQ pointer read/write: non-null base, b <= p <= e-size.
	CheckSeq
	// CheckSeqArith is a no-op marker in CCured (arith needs no check until
	// dereference) retained for statistics.
	CheckSeqArith
	// CheckWild: WILD pointer access: bounds from the area header.
	CheckWild
	// CheckWildRead: tag check when reading a pointer via WILD.
	CheckWildRead
	// CheckWildWrite: tag update when writing via WILD.
	CheckWildWrite
	// CheckRtti: isSubtype(x.t, rttiOf(T)) for RTTI downcasts.
	CheckRtti
	// CheckStackEscape: a write must not store a stack pointer to the heap.
	CheckStackEscape
	// CheckSeqToSafe: converting SEQ to SAFE: null or fully in bounds.
	CheckSeqToSafe
	// CheckNotStackPtr is used for returns of pointers.
	CheckNotStackPtr
	// CheckVerifyNul: wrapper helper __verify_nul (string NUL-termination).
	CheckVerifyNul
	// CheckIndex: direct array indexing against the static array length.
	CheckIndex
)

// NumCheckKinds is the number of check kinds; dense per-kind counter
// arrays (interp.KindCounts, the check cost table) are indexed by CheckKind
// and sized by this.
const NumCheckKinds = int(CheckIndex) + 1

var checkNames = [...]string{"null", "seq", "seq-arith", "wild", "wild-read",
	"wild-write", "rtti", "stack-escape", "seq2safe", "not-stack", "verify-nul",
	"index"}

func (k CheckKind) String() string { return checkNames[k] }

// Check is a run-time check instruction inserted by the instrumenter. Args
// are check-kind specific (typically the pointer lvalue being checked).
type Check struct {
	instrBase
	Kind CheckKind
	// Ptr is the pointer value under check (for CheckIndex: the index).
	Ptr Expr
	// Size is the access size in bytes (bounds checks); for CheckIndex it
	// is the static array length.
	Size int
	// RttiTarget is the destination type for CheckRtti.
	RttiTarget *ctypes.Type
	// DstLV is the destination lvalue for CheckStackEscape.
	DstLV *Lvalue
	// Site is the 1-based static-site ID assigned after curing and
	// optimization (instrument.AssignSites): every check at the same
	// position × kind shares one ID. 0 means unassigned. The flight
	// recorder records events by site ID so the hot path never renders
	// position strings.
	Site int32
}

// ---- Statements ----

// Stmt is a structured control-flow statement.
type Stmt interface{ stmt() }

type stmtBase struct{}

func (stmtBase) stmt() {}

// Block is a statement sequence.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// SInstr wraps one instruction as a statement.
type SInstr struct {
	stmtBase
	Ins Instr
}

// If is a conditional.
type If struct {
	stmtBase
	Cond Expr
	Then *Block
	Else *Block // may be nil
}

// Loop is an infinite loop exited by Break; all C loops lower to this form.
// Post (possibly nil) runs after the body completes normally or via
// Continue, before control returns to the top — this realizes the `for`
// post expression and the do-while trailing test without goto.
type Loop struct {
	stmtBase
	Body *Block
	Post *Block
}

// Break exits the innermost Loop or Switch.
type Break struct{ stmtBase }

// Continue re-enters the innermost Loop.
type Continue struct{ stmtBase }

// Return exits the function; X may be nil.
type Return struct {
	stmtBase
	X   Expr
	Pos diag.Pos
}

// SwitchCase is one arm of a Switch. Execution falls through to the next
// case unless a Break intervenes (C semantics, preserved in the IR).
type SwitchCase struct {
	Val       int64
	IsDefault bool
	Body      []Stmt
}

// Switch dispatches on an integer.
type Switch struct {
	stmtBase
	X     Expr
	Cases []*SwitchCase
}

// ---- Initializers ----

// Init is a lowered static initializer for a global.
type Init struct {
	// Exactly one of the following forms:
	Zero   bool
	Expr   Expr    // constant scalar (Const/FConst/StrConst/FnConst/AddrOf global, possibly under Cast)
	List   []*Init // aggregate
	IsList bool
}

// ---- Program ----

// Global is a global variable with its initializer.
type Global struct {
	Var  *Var
	Init *Init // nil means zero-initialized
}

// Func is a lowered function.
type Func struct {
	Name   string
	Type   *ctypes.Type // Func kind
	Params []*Var
	Locals []*Var
	Body   *Block
	Pos    diag.Pos
}

// Wrapper records a ccuredWrapperOf pragma.
type Wrapper struct {
	Wrapper string
	Wrapped string
}

// Program is a whole lowered translation unit.
type Program struct {
	Globals  []*Global
	Funcs    []*Func
	FuncMap  map[string]*Func
	Externs  []*Var // declared, undefined functions (library boundary)
	Structs  []*ctypes.StructInfo
	Wrappers []*Wrapper
}

// Lookup returns the defined function with the given name, or nil.
func (p *Program) Lookup(name string) *Func { return p.FuncMap[name] }

// NewTemp creates a fresh temporary local in f.
func (f *Func) NewTemp(ty *ctypes.Type) *Var {
	v := &Var{
		Name: fmt.Sprintf("__t%d", len(f.Locals)),
		Type: ty,
		Temp: true,
		ID:   len(f.Locals) + len(f.Params),
	}
	f.Locals = append(f.Locals, v)
	return v
}
