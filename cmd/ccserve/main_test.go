package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gocured/internal/pipeline"
)

func testServer() *server {
	return newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 2}), 1<<20)
}

func post(t *testing.T, s *server, body string) (*httptest.ResponseRecorder, CureResponse) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/cure", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var resp CureResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad response JSON: %v\n%s", err, rec.Body.String())
		}
	}
	return rec, resp
}

func TestCureEndpoint(t *testing.T) {
	s := testServer()
	body := `{"name":"hello.c","source":"extern int printf(char *fmt, ...);\nint main(void){ printf(\"hi\\n\"); return 0; }","run":true,"mode":"cured"}`

	rec, resp := post(t, s, body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Run == nil || resp.Run.Stdout != "hi\n" || resp.Run.Trapped {
		t.Fatalf("run = %+v, want stdout %q", resp.Run, "hi\n")
	}
	if resp.Stats.Pointers == 0 || resp.Key == "" {
		t.Errorf("missing stats/key: %+v", resp)
	}
	if resp.CacheHit {
		t.Error("first request must miss the cache")
	}

	// The same source again is a cache hit.
	if _, resp2 := post(t, s, body); !resp2.CacheHit {
		t.Error("second request must hit the cache")
	}

	// A cured out-of-bounds program traps instead of erroring.
	oob := `{"source":"int main(void){ int a[2]; int i,t=0; for(i=0;i<=2;i++) t+=a[i]; return t; }","run":true}`
	rec, resp = post(t, s, oob)
	if rec.Code != http.StatusOK {
		t.Fatalf("oob status = %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Run == nil || !resp.Run.Trapped || resp.Run.TrapKind != "bounds" {
		t.Fatalf("oob run = %+v, want bounds trap", resp.Run)
	}
}

func TestCureErrors(t *testing.T) {
	s := testServer()
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"empty source", `{"source":""}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
		{"bad mode", `{"source":"int main(void){return 0;}","mode":"quick"}`, http.StatusBadRequest},
		{"syntax error", `{"source":"int main( {"}`, http.StatusUnprocessableEntity},
	} {
		rec, _ := post(t, s, tc.body)
		if rec.Code != tc.want {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body.String())
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/cure", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /cure status = %d, want 405", rec.Code)
	}
}

func TestRequestSizeLimit(t *testing.T) {
	s := newServer(pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1}), 256)
	big := `{"source":"` + strings.Repeat("x", 1024) + `"}`
	rec, _ := post(t, s, big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", rec.Code)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := testServer()
	post(t, s, `{"source":"int main(void){return 0;}","run":true,"mode":"raw"}`)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var m pipeline.Metrics
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics not JSON: %v", err)
	}
	if m.JobsRun != 1 || m.RunsExecuted != 1 {
		t.Errorf("metrics = %+v, want one job/run", m)
	}
}

func TestCorpusEndpoints(t *testing.T) {
	s := testServer()

	req := httptest.NewRequest(http.MethodGet, "/corpus", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var list []corpusEntry
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) == 0 {
		t.Fatalf("corpus list: err=%v n=%d", err, len(list))
	}

	req = httptest.NewRequest(http.MethodGet, "/corpus/"+list[0].Name, nil)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var prog struct {
		Name   string `json:"name"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &prog); err != nil || prog.Source == "" {
		t.Fatalf("corpus get: err=%v body=%s", err, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/corpus/no-such-program", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing program status = %d, want 404", rec.Code)
	}
}
