package corpus

// OpenSSH-like client and server (Figure 9). The heart of OpenSSH's pointer
// behaviour is its Buffer abstraction (a growable byte region with a read
// cursor) and the binary packet protocol on top; the key exchange is a
// small modular-exponentiation handshake and the transport "encrypts" with
// a stream xor. Client and server share the protocol code and differ in the
// driver (connect/exchange vs accept/serve).

const sshCommon = `
enum { SCALE = 2, BUFCAP = 2048, SESSIONS = 6, MSGS = 25 };

/* ---- buffer.c-like growable buffer with read offset ---- */

struct sshbuf {
    char *buf;
    int alloc;
    int off;   /* read cursor */
    int end;   /* write cursor */
};

/* buffers cross the library boundary (sim_send); the paper's OpenSSH port
   used split types at such call sites, so we annotate the allocator */
struct sshbuf __SPLIT *buf_new(void) {
    struct sshbuf *b = (struct sshbuf *)malloc(sizeof(struct sshbuf));
    b->alloc = 256;
    b->buf = (char *)malloc(b->alloc);
    b->off = 0;
    b->end = 0;
    return b;
}

void buf_clear(struct sshbuf *b) { b->off = 0; b->end = 0; }

void buf_grow(struct sshbuf *b, int need) {
    if (b->end + need <= b->alloc) return;
    while (b->alloc < b->end + need) b->alloc = b->alloc * 2;
    if (b->alloc > BUFCAP) b->alloc = BUFCAP;
    {
        char *nb = (char *)malloc(b->alloc);
        memcpy(nb, b->buf, b->end);
        free(b->buf);
        b->buf = nb;
    }
}

void buf_put_char(struct sshbuf *b, int c) {
    buf_grow(b, 1);
    b->buf[b->end] = (char)c;
    b->end++;
}

void buf_put_int(struct sshbuf *b, unsigned int v) {
    buf_put_char(b, (int)(v >> 24) & 255);
    buf_put_char(b, (int)(v >> 16) & 255);
    buf_put_char(b, (int)(v >> 8) & 255);
    buf_put_char(b, (int)v & 255);
}

void buf_put_bytes(struct sshbuf *b, char *p, int n) {
    int i;
    buf_grow(b, n);
    for (i = 0; i < n; i++) b->buf[b->end + i] = p[i];
    b->end += n;
}

void buf_put_cstring(struct sshbuf *b, char *s) {
    int n = strlen(s);
    buf_put_int(b, (unsigned int)n);
    buf_put_bytes(b, s, n);
}

int buf_get_char(struct sshbuf *b) {
    if (b->off >= b->end) return -1;
    {
        int c = b->buf[b->off] & 255;
        b->off++;
        return c;
    }
}

unsigned int buf_get_int(struct sshbuf *b) {
    unsigned int v = 0;
    int i;
    for (i = 0; i < 4; i++) v = (v << 8) | (unsigned int)buf_get_char(b);
    return v;
}

int buf_get_string(struct sshbuf *b, char *out, int max) {
    int n = (int)buf_get_int(b);
    int i;
    if (n >= max) n = max - 1;
    for (i = 0; i < n; i++) out[i] = (char)buf_get_char(b);
    out[n] = 0;
    return n;
}

int buf_len(struct sshbuf *b) { return b->end - b->off; }

/* ---- tiny Diffie-Hellman-flavoured handshake (word sized) ---- */

unsigned int modpow(unsigned int base, unsigned int e, unsigned int m) {
    unsigned int acc = 1;
    base = base % m;
    while (e) {
        if (e & 1) acc = (acc * base) % m;
        base = (base * base) % m;
        e >>= 1;
    }
    return acc;
}

enum { DH_P = 65521, DH_G = 17 };

/* ---- stream cipher keyed by the shared secret ---- */

struct stream_ctx {
    unsigned int state;
};

int stream_next(struct stream_ctx *s) {
    s->state = s->state * 1103515245 + 12345;
    return (int)(s->state >> 24) & 255;
}

void stream_xor(struct stream_ctx *s, char *p, int n) {
    int i;
    for (i = 0; i < n; i++) p[i] = (char)(p[i] ^ stream_next(s));
}

/* ---- packet layer ---- */

enum { MSG_KEXINIT = 20, MSG_NEWKEYS = 21, MSG_DATA = 94, MSG_CLOSE = 97 };

struct packet_state {
    struct sshbuf *out;
    struct stream_ctx send_ctx;
    struct stream_ctx recv_ctx;
    int secret;
    int seq;
};

void packet_start(struct packet_state *ps, int type) {
    buf_clear(ps->out);
    buf_put_char(ps->out, type);
}

int packet_send(struct packet_state *ps) {
    int n = ps->out->end;
    stream_xor(&ps->send_ctx, ps->out->buf, n);
    sim_send(ps->out->buf, (unsigned int)n);
    stream_xor(&ps->recv_ctx, ps->out->buf, n); /* loopback decrypt */
    ps->seq++;
    return n;
}
`

var _ = register(&Program{
	Name:     "ssh-server",
	Category: "daemon",
	Desc:     "sshd-like: buffers, packet protocol, handshake, channel echo",
	Source: Prelude + sshCommon + `
int serve_session(struct packet_state *ps, int session) {
    char payload[256];
    char got[256];
    int m, bytes = 0;
    unsigned int server_priv = 1234 + (unsigned int)session;
    unsigned int server_pub = modpow(DH_G, server_priv, DH_P);
    unsigned int client_pub = modpow(DH_G, 77 + (unsigned int)session, DH_P);
    unsigned int shared = modpow(client_pub, server_priv, DH_P);

    packet_start(ps, MSG_KEXINIT);
    buf_put_cstring(ps->out, "diffie-hellman-group1");
    buf_put_int(ps->out, server_pub);
    bytes += packet_send(ps);

    ps->send_ctx.state = shared;
    ps->recv_ctx.state = shared;
    packet_start(ps, MSG_NEWKEYS);
    bytes += packet_send(ps);

    for (m = 0; m < MSGS; m++) {
        int i, n = 32 + (m * 13) % 128;
        for (i = 0; i < n; i++) payload[i] = (char)('a' + (i + m) % 26);
        payload[n] = 0;
        packet_start(ps, MSG_DATA);
        buf_put_int(ps->out, (unsigned int)ps->seq);
        buf_put_cstring(ps->out, payload);
        bytes += packet_send(ps);

        /* parse our own frame back (exercises the get_* path) */
        ps->out->off = 0;
        if (buf_get_char(ps->out) != MSG_DATA) return -1;
        buf_get_int(ps->out);
        buf_get_string(ps->out, got, 256);
        if (strcmp(got, payload) != 0) return -1;
    }
    packet_start(ps, MSG_CLOSE);
    bytes += packet_send(ps);
    return bytes;
}

int main(void) {
    struct packet_state ps;
    int iter, s, total = 0;
    ps.out = buf_new();
    ps.seq = 0;
    for (iter = 0; iter < SCALE; iter++) {
        for (s = 0; s < SESSIONS; s++) {
            ps.send_ctx.state = 1;
            ps.recv_ctx.state = 1;
            int r = serve_session(&ps, s);
            if (r < 0) { printf("ssh-server FAILED session %d\n", s); return 1; }
            total += r;
        }
    }
    printf("ssh-server sessions=%d bytes=%d\n", SCALE * SESSIONS, total);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "ssh-client",
	Category: "daemon",
	Desc:     "ssh-like client: connect, authenticate, request exec, stream data",
	Source: Prelude + sshCommon + `
struct channel {
    int id;
    int window;
    int sent;
    char *cmd;
    struct channel *next;
};

struct channel *channels;
int next_chan_id = 1;

struct channel *channel_open(char *cmd) {
    struct channel *c = (struct channel *)malloc(sizeof(struct channel));
    c->id = next_chan_id++;
    c->window = 1024;
    c->sent = 0;
    c->cmd = strdup(cmd);
    c->next = channels;
    channels = c;
    return c;
}

void channel_close(struct channel *c) {
    struct channel **pp = &channels;
    while (*pp && *pp != c) pp = &(*pp)->next;
    if (*pp) *pp = c->next;
    free(c->cmd);
    free(c);
}

int run_command(struct packet_state *ps, char *cmd) {
    char chunk[128];
    struct channel *c = channel_open(cmd);
    int bytes = 0, m;
    packet_start(ps, MSG_DATA);
    buf_put_cstring(ps->out, "session");
    buf_put_cstring(ps->out, c->cmd);
    bytes += packet_send(ps);
    for (m = 0; m < MSGS; m++) {
        int n = 16 + (m * 7) % 96;
        if (c->window < n) break;
        sim_recv(chunk, (unsigned int)n);
        packet_start(ps, MSG_DATA);
        buf_put_int(ps->out, (unsigned int)c->id);
        buf_put_bytes(ps->out, chunk, n);
        bytes += packet_send(ps);
        c->window -= n;
        c->sent += n;
    }
    bytes += c->sent;
    channel_close(c);
    return bytes;
}

int main(void) {
    struct packet_state ps;
    char cmdbuf[64];
    int iter, s, total = 0;
    unsigned int client_priv = 77;
    ps.out = buf_new();
    ps.seq = 0;
    for (iter = 0; iter < SCALE; iter++) {
        for (s = 0; s < SESSIONS; s++) {
            unsigned int client_pub = modpow(DH_G, client_priv + (unsigned int)s, DH_P);
            unsigned int server_pub = modpow(DH_G, 1234u + (unsigned int)s, DH_P);
            unsigned int shared = modpow(server_pub, client_priv + (unsigned int)s, DH_P);
            packet_start(&ps, MSG_KEXINIT);
            buf_put_cstring(ps.out, "diffie-hellman-group1");
            buf_put_int(ps.out, client_pub);
            total += packet_send(&ps);
            ps.send_ctx.state = shared;
            ps.recv_ctx.state = shared;
            sprintf(cmdbuf, "uptime --session %d", s);
            total += run_command(&ps, cmdbuf);
        }
        total = total % 1000000007;
    }
    printf("ssh-client sessions=%d total=%d\n", SCALE * SESSIONS, total);
    return 0;
}
`,
})
