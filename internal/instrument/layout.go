// Package instrument implements CCured's curing transformation: it computes
// the kind-aware memory layout (fat pointers per Figure 1, compatible split
// layout per Figures 6-7) and inserts the run-time checks of Appendix A as
// explicit IR instructions. The instrumented program together with its
// layout oracle is executed by internal/interp.
package instrument

import (
	"sync"

	"gocured/internal/ctypes"
	"gocured/internal/infer"
	"gocured/internal/qual"
)

// Pointer representation sizes (Figure 1 and §3.2), in bytes:
//
//	SAFE  {p}        1 word
//	RTTI  {p,t}      2 words
//	WILD  {p,b}      2 words
//	SEQ   {p,b,e}    3 words
//
// SPLIT occurrences use the C representation (1 word) with metadata held in
// the parallel shadow structure.
func repWords(k qual.Kind) int {
	switch k {
	case qual.Seq:
		return 3
	case qual.Wild, qual.Rtti:
		return 2
	default:
		return 1
	}
}

// Layout is the kind-aware layout oracle for a cured program. It is safe
// for concurrent use: the struct-layout cache is guarded by a mutex, and
// everything else it consults (the solved qualifier graph and the split
// result) is frozen read-only after inference.
type Layout struct {
	res *infer.Result
	// mu guards structs; suLayoutOf takes it once per query and recurses
	// through the *Locked variants so nested struct layouts do not
	// re-enter the lock.
	mu sync.Mutex
	// structs caches cured (non-split) struct layouts.
	structs map[*ctypes.StructInfo]*suLayout
}

type suLayout struct {
	size, align int
	offsets     map[*ctypes.Field]int
}

func newLayout(res *infer.Result) *Layout {
	return &Layout{res: res, structs: make(map[*ctypes.StructInfo]*suLayout)}
}

// KindOf returns the inferred kind of a pointer occurrence.
func (l *Layout) KindOf(t *ctypes.Type) qual.Kind { return l.res.Graph.KindOf(t) }

// IsSplit reports whether the occurrence uses the compatible representation.
func (l *Layout) IsSplit(t *ctypes.Type) bool {
	return l.res.Split != nil && l.res.Split.IsSplit(t)
}

// PtrSize returns the in-memory size of a pointer occurrence.
func (l *Layout) PtrSize(t *ctypes.Type) int {
	if l.IsSplit(t) {
		return ctypes.Word
	}
	return repWords(l.KindOf(t)) * ctypes.Word
}

// Sizeof returns the cured size of an occurrence.
func (l *Layout) Sizeof(t *ctypes.Type) int {
	switch t.Kind {
	case ctypes.Ptr:
		return l.PtrSize(t)
	case ctypes.Array:
		if t.Len < 0 {
			return 0
		}
		return t.Len * l.Sizeof(t.Elem)
	case ctypes.Struct:
		if l.IsSplit(t) {
			return ctypes.Sizeof(t)
		}
		return l.suLayoutOf(t.SU).size
	default:
		return ctypes.Sizeof(t)
	}
}

// Alignof returns the cured alignment of an occurrence.
func (l *Layout) Alignof(t *ctypes.Type) int {
	switch t.Kind {
	case ctypes.Ptr:
		return ctypes.Word
	case ctypes.Array:
		return l.Alignof(t.Elem)
	case ctypes.Struct:
		if l.IsSplit(t) {
			return ctypes.Alignof(t)
		}
		return l.suLayoutOf(t.SU).align
	default:
		return ctypes.Alignof(t)
	}
}

// FieldOff returns the cured byte offset of a field. Split structs keep the
// C layout; split inference guarantees every field of a split struct is
// itself split, so the two layouts agree there.
func (l *Layout) FieldOff(f *ctypes.Field) int {
	if f.Parent == nil {
		return f.Offset
	}
	if l.IsSplit(f.Type) {
		return f.Offset
	}
	return l.suLayoutOf(f.Parent).offsets[f]
}

func align(off, a int) int {
	if a <= 1 {
		return off
	}
	return (off + a - 1) / a * a
}

func (l *Layout) suLayoutOf(su *ctypes.StructInfo) *suLayout {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.suLayoutLocked(su)
}

func (l *Layout) suLayoutLocked(su *ctypes.StructInfo) *suLayout {
	if s, ok := l.structs[su]; ok {
		return s
	}
	s := &suLayout{align: 1, offsets: make(map[*ctypes.Field]int)}
	l.structs[su] = s // memoize first (recursive structs via pointers)
	if su.Union {
		for _, f := range su.Fields {
			s.offsets[f] = 0
			if a := l.alignofLocked(f.Type); a > s.align {
				s.align = a
			}
			if sz := l.sizeofLocked(f.Type); sz > s.size {
				s.size = sz
			}
		}
	} else {
		off := 0
		for _, f := range su.Fields {
			a := l.alignofLocked(f.Type)
			if a > s.align {
				s.align = a
			}
			off = align(off, a)
			s.offsets[f] = off
			off += l.sizeofLocked(f.Type)
		}
		s.size = off
	}
	s.size = align(s.size, s.align)
	return s
}

// sizeofLocked mirrors Sizeof for recursion under the struct-cache lock.
func (l *Layout) sizeofLocked(t *ctypes.Type) int {
	switch t.Kind {
	case ctypes.Ptr:
		return l.PtrSize(t)
	case ctypes.Array:
		if t.Len < 0 {
			return 0
		}
		return t.Len * l.sizeofLocked(t.Elem)
	case ctypes.Struct:
		if l.IsSplit(t) {
			return ctypes.Sizeof(t)
		}
		return l.suLayoutLocked(t.SU).size
	default:
		return ctypes.Sizeof(t)
	}
}

// alignofLocked mirrors Alignof for recursion under the struct-cache lock.
func (l *Layout) alignofLocked(t *ctypes.Type) int {
	switch t.Kind {
	case ctypes.Ptr:
		return ctypes.Word
	case ctypes.Array:
		return l.alignofLocked(t.Elem)
	case ctypes.Struct:
		if l.IsSplit(t) {
			return ctypes.Alignof(t)
		}
		return l.suLayoutLocked(t.SU).align
	default:
		return ctypes.Alignof(t)
	}
}

// RawLayout is the uncured layout oracle: C layout, every pointer thin and
// effectively SAFE-shaped (no metadata). Used by the baseline, Purify, and
// Valgrind execution policies.
type RawLayout struct{}

// KindOf always reports Safe: raw pointers have no kinds.
func (RawLayout) KindOf(*ctypes.Type) qual.Kind { return qual.Safe }

// IsSplit always reports false.
func (RawLayout) IsSplit(*ctypes.Type) bool { return false }

// Sizeof returns the C size.
func (RawLayout) Sizeof(t *ctypes.Type) int { return ctypes.Sizeof(t) }

// Alignof returns the C alignment.
func (RawLayout) Alignof(t *ctypes.Type) int { return ctypes.Alignof(t) }

// FieldOff returns the C field offset.
func (RawLayout) FieldOff(f *ctypes.Field) int { return f.Offset }

// PtrSize returns the thin pointer size.
func (RawLayout) PtrSize(*ctypes.Type) int { return ctypes.Word }
