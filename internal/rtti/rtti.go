// Package rtti implements the global run-time type hierarchy of §3.2:
// a registry of the pointer base types occurring in a program, the
// compile-time function rttiOf mapping a type to its hierarchy node, and the
// run-time predicate isSubtype over nodes (physical subtyping). RTTI
// pointers carry a node alongside the pointer value; checked downcasts call
// IsSubtype at run time.
package rtti

import (
	"fmt"
	"strings"
	"sync"

	"gocured/internal/ctypes"
)

// Node is one type in the hierarchy.
type Node struct {
	ID   int
	Ty   *ctypes.Type
	Name string
}

func (n *Node) String() string { return n.Name }

// Hierarchy is the program-wide physical subtyping hierarchy. It is safe
// for concurrent use: the interpreter consults it (and may register nodes
// or cache subtype verdicts) while a compiled program runs, possibly from
// many goroutines at once.
type Hierarchy struct {
	mu       sync.RWMutex
	nodes    []*Node
	byKey    map[string]*Node
	subCache map[[2]int]int8 // -1 unknown, 0 false, 1 true
	// VoidNode is the top of the hierarchy (every type ≤ void).
	VoidNode *Node
}

// NewHierarchy returns a hierarchy containing only void.
func NewHierarchy() *Hierarchy {
	h := &Hierarchy{
		byKey:    make(map[string]*Node),
		subCache: make(map[[2]int]int8),
	}
	h.VoidNode = h.Of(ctypes.VoidType())
	return h
}

// key canonicalizes a type for hierarchy identity: struct types by
// definition, everything else structurally.
func key(t *ctypes.Type) string {
	switch t.Kind {
	case ctypes.Void:
		return "void"
	case ctypes.Int:
		sign := "u"
		if t.Signed {
			sign = "i"
		}
		return fmt.Sprintf("%s%d", sign, t.Size*8)
	case ctypes.Float:
		return fmt.Sprintf("f%d", t.Size*8)
	case ctypes.Ptr:
		return "*" + key(t.Elem)
	case ctypes.Array:
		return fmt.Sprintf("[%d]%s", t.Len, key(t.Elem))
	case ctypes.Struct:
		return fmt.Sprintf("su%d", t.SU.ID)
	case ctypes.Func:
		var b strings.Builder
		b.WriteString("fn(")
		for i, p := range t.Fn.Params {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(key(p))
		}
		if t.Fn.Variadic {
			b.WriteString(",...")
		}
		b.WriteString(")")
		b.WriteString(key(t.Fn.Ret))
		return b.String()
	}
	return "?"
}

// Of registers (if needed) and returns the hierarchy node for t. This is
// the compile-time rttiOf function; the interpreter also calls it at run
// time when a statically-typed pointer first records its type.
func (h *Hierarchy) Of(t *ctypes.Type) *Node {
	k := key(t)
	h.mu.RLock()
	n, ok := h.byKey[k]
	h.mu.RUnlock()
	if ok {
		return n
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if n, ok := h.byKey[k]; ok {
		return n
	}
	n = &Node{ID: len(h.nodes) + 1, Ty: t, Name: t.String()}
	h.nodes = append(h.nodes, n)
	h.byKey[k] = n
	return n
}

// Lookup returns the node for t if registered, else nil.
func (h *Hierarchy) Lookup(t *ctypes.Type) *Node {
	k := key(t)
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.byKey[k]
}

// IsSubtype reports whether a ≤ b (a is a physical subtype of b), i.e. a
// pointer to an a may be used where a pointer to a b is expected after a
// checked downcast from b to a succeeds in reverse. It is the run-time
// subtype test of §3.2.
func (h *Hierarchy) IsSubtype(a, b *Node) bool {
	if a == b {
		return true
	}
	ck := [2]int{a.ID, b.ID}
	h.mu.RLock()
	v, ok := h.subCache[ck]
	h.mu.RUnlock()
	if ok {
		return v == 1
	}
	// a ≤ b iff b's layout is a prefix of a's layout.
	sub, _ := ctypes.Prefix(a.Ty, b.Ty)
	v = 0
	if sub {
		v = 1
	}
	h.mu.Lock()
	h.subCache[ck] = v
	h.mu.Unlock()
	return sub
}

// HasStrictSubtypes reports whether any registered aggregate type is a
// strict physical subtype of n's type. The inference uses this to avoid
// propagating the RTTI kind to pointers whose static type has no subtypes
// in the program (§3.2: such pointers stay SAFE).
func (h *Hierarchy) HasStrictSubtypes(n *Node) bool {
	nodes := h.Nodes()
	if n == h.VoidNode {
		// Everything is a subtype of void; void has strict subtypes as
		// soon as the program has any other registered type.
		return len(nodes) > 1
	}
	// Only aggregates participate (a scalar's "subtypes" — structs that
	// start with it — do not make programs use it polymorphically).
	if n.Ty.Kind != ctypes.Struct {
		return false
	}
	for _, m := range nodes {
		if m == n || m.Ty.Kind != ctypes.Struct {
			continue
		}
		if h.IsSubtype(m, n) {
			return true
		}
	}
	return false
}

// Nodes returns a snapshot of all registered nodes. Node IDs are 1-based
// and dense, so nodes[id-1] recovers a node from its ID; elements already
// registered are never mutated, making the snapshot safe to read while
// other goroutines register new types.
func (h *Hierarchy) Nodes() []*Node {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.nodes[:len(h.nodes):len(h.nodes)]
}

// Len returns the number of registered types.
func (h *Hierarchy) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.nodes)
}
