package interp

import (
	"bytes"
	"encoding/json"
	"fmt"

	"gocured/internal/cil"
)

// KindCounts tallies executed checks per check kind. It is a fixed array
// indexed by cil.CheckKind so the per-check hot path is one add with no
// map hash; the JSON encoding keeps the external map shape
// ({"null": 3, "seq": 7, ...}, zero kinds omitted, kind order) so
// /metrics and JSON consumers see exactly what the old map produced.
type KindCounts [cil.NumCheckKinds]uint64

// Total sums all kinds.
func (k *KindCounts) Total() uint64 {
	var n uint64
	for _, v := range k {
		n += v
	}
	return n
}

// MarshalJSON renders the map-of-kind-names shape, omitting zero kinds,
// in CheckKind order (deterministic, unlike a Go map).
func (k KindCounts) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('{')
	first := true
	for kind, n := range k {
		if n == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%q:%d", cil.CheckKind(kind).String(), n)
	}
	b.WriteByte('}')
	return b.Bytes(), nil
}

// UnmarshalJSON accepts the map shape back.
func (k *KindCounts) UnmarshalJSON(data []byte) error {
	var m map[string]uint64
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	*k = KindCounts{}
	for name, n := range m {
		found := false
		for i := 0; i < cil.NumCheckKinds; i++ {
			if cil.CheckKind(i).String() == name {
				k[i] = n
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown check kind %q", name)
		}
	}
	return nil
}
