package instrument_test

import (
	"testing"

	"gocured/internal/cil"
	"gocured/internal/corpus"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

func checksIn(fn *cil.Func) int {
	n := 0
	cil.WalkInstrs(fn.Body.Stmts, func(i cil.Instr) {
		if _, ok := i.(*cil.Check); ok {
			n++
		}
	})
	return n
}

func TestOptimizerRemovesDuplicateChecks(t *testing.T) {
	// Reading *p twice in one expression emits two null checks; the
	// optimizer keeps one.
	u := build(t, corpus.Prelude+`
int twice(int *p) { return *p + *p; }
int main(void) {
    int x = 21;
    return twice(&x);
}
`, infer.Options{})
	if u.Cured.ChecksEliminated == 0 {
		t.Errorf("expected eliminated checks, got %d", u.Cured.ChecksEliminated)
	}
	fn := u.Cured.Prog.Lookup("twice")
	if got := checksIn(fn); got != 1 {
		t.Errorf("twice retains %d checks, want 1", got)
	}
}

func TestOptimizerKillsOnAssignment(t *testing.T) {
	// p changes between the two dereferences: both checks must stay.
	u := build(t, corpus.Prelude+`
int g1, g2;
int f(int *p) {
    int a = *p;
    p = &g2;
    return a + *p;
}
int main(void) { return f(&g1); }
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	if got := checksIn(fn); got < 2 {
		t.Errorf("f retains %d checks, want >= 2 (p is reassigned)", got)
	}
}

func TestOptimizerKillsAcrossCalls(t *testing.T) {
	// A call can change the heap cell pp points through; the second check
	// of **pp (memory-reading operand) must survive.
	u := build(t, corpus.Prelude+`
int **pp;
void mutate(void);
int f(void) {
    int a = **pp;
    mutate();
    return a + **pp;
}
int g;
int *inner;
void mutate(void) { inner = &g; }
int main(void) {
    inner = &g;
    pp = &inner;
    return f();
}
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	// Two deref chains, each needing checks on pp and *pp: at least the
	// memory-dependent ones must re-check after the call.
	got := checksIn(fn)
	if got < 3 {
		t.Errorf("f retains %d checks, want >= 3 (call invalidates memory facts)", got)
	}
	// And the program still runs correctly.
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("trap: %v", out.Trap)
	}
}

func TestOptimizerPreservesSemanticsOnCorpus(t *testing.T) {
	// The whole-corpus raw-vs-cured test already runs with the optimizer
	// on; here we just confirm it fires meaningfully on a large program.
	p := corpus.ByName("bind")
	u := build(t, p.Source, infer.Options{TrustBadCasts: true})
	if u.Cured.ChecksEliminated == 0 {
		t.Error("optimizer eliminated nothing on bind")
	}
	total := 0
	for _, n := range u.Cured.ChecksInserted {
		total += n
	}
	if u.Cured.ChecksEliminated >= total {
		t.Errorf("eliminated %d of %d checks: too aggressive", u.Cured.ChecksEliminated, total)
	}
}

func TestOptimizerIfJoinElimination(t *testing.T) {
	// Regression for the old straight-line pass, which dropped all facts at
	// every control-flow boundary: a check established before an if (and
	// not killed in either arm) must cover the code after the join.
	u := build(t, corpus.Prelude+`
int f(int *p, int c) {
    int a = *p;
    if (c) { a = a + 1; } else { a = a - 1; }
    return a + *p;
}
int main(void) {
    int x = 21;
    return f(&x, 1);
}
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	if got := checksIn(fn); got != 1 {
		t.Errorf("f retains %d checks, want 1 (join inherits the pre-if fact)", got)
	}
	if u.Cured.Opt == nil || u.Cured.Opt.PerFunc["f"].Eliminated == 0 {
		t.Errorf("per-function stats do not record the join elimination")
	}
}

func TestOptimizerBothArmsEstablish(t *testing.T) {
	// The fact is established separately in both arms: availability is the
	// intersection over predecessors, so the post-join check still goes.
	u := build(t, corpus.Prelude+`
int f(int *p, int c) {
    int a;
    if (c) { a = *p; } else { a = *p + 1; }
    return a + *p;
}
int main(void) {
    int x = 21;
    return f(&x, 0);
}
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	if got := checksIn(fn); got != 2 {
		t.Errorf("f retains %d checks, want 2 (one per arm, join check eliminated)", got)
	}
}

func TestOptimizerOneArmKills(t *testing.T) {
	// One arm reassigns p: the post-join check must survive.
	u := build(t, corpus.Prelude+`
int g;
int f(int *p, int c) {
    int a = *p;
    if (c) { p = &g; }
    return a + *p;
}
int main(void) {
    int x = 21;
    return f(&x, 0);
}
`, infer.Options{})
	fn := u.Cured.Prog.Lookup("f")
	if got := checksIn(fn); got != 2 {
		t.Errorf("f retains %d checks, want 2 (one arm kills the fact)", got)
	}
}

func TestOptimizerHoistsInvariantCheck(t *testing.T) {
	// *p inside the loop with p never modified: the check moves to a
	// preheader and the loop body runs check-free.
	u := build(t, corpus.Prelude+`
int f(int *p, int n) {
    int i, t;
    t = 0;
    for (i = 0; i < n; i++) t = t + *p;
    return t;
}
int main(void) {
    int x = 7;
    return f(&x, 3);
}
`, infer.Options{})
	if u.Cured.Opt.Hoisted == 0 {
		t.Fatalf("no checks hoisted: %+v", u.Cured.Opt)
	}
	// Dynamically the check must now execute at most once.
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("trap: %v", out.Trap)
	}
	if out.Counters.Checks > 1 {
		t.Errorf("executed %d checks, want <= 1 after hoisting", out.Counters.Checks)
	}
	if out.ExitCode != 21 {
		t.Errorf("exit code %d, want 21", out.ExitCode)
	}
}

func TestOptimizerWidensInductionCheck(t *testing.T) {
	// a[i] under i < 8: the per-iteration bounds check becomes an entry +
	// endpoint pair in the preheader.
	u := build(t, corpus.Prelude+`
int main(void) {
    int a[8];
    int i, t;
    t = 0;
    for (i = 0; i < 8; i++) a[i] = i;
    for (i = 0; i < 8; i++) t = t + a[i];
    return t;
}
`, infer.Options{})
	if u.Cured.Opt.Widened != 2 {
		t.Fatalf("widened %d checks, want 2: %+v", u.Cured.Opt.Widened, u.Cured.Opt)
	}
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("trap: %v", out.Trap)
	}
	if out.ExitCode != 28 {
		t.Errorf("exit code %d, want 28", out.ExitCode)
	}
	// 2 preheaders x 2 checks each = 4 executed checks instead of 16.
	if out.Counters.Checks > 4 {
		t.Errorf("executed %d checks, want <= 4 after widening", out.Counters.Checks)
	}
}

func TestOptimizerWideningStillTraps(t *testing.T) {
	// The classic off-by-one: i <= 8 over int[8]. The endpoint check must
	// trap with the same kind as the un-optimized program would.
	src := corpus.Prelude + `
int main(void) {
    int a[8];
    int i, t;
    t = 0;
    for (i = 0; i <= 8; i++) t = t + a[i];
    return t;
}
`
	for _, noOpt := range []bool{true, false} {
		u := build(t, src, infer.Options{NoOptimize: noOpt})
		out, err := u.RunCured(interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Trap == nil {
			t.Fatalf("NoOptimize=%v: overflow did not trap", noOpt)
		}
		if out.Trap.Kind != "bounds" {
			t.Errorf("NoOptimize=%v: trap kind %q, want bounds", noOpt, out.Trap.Kind)
		}
	}
}

func TestOptimizerNoWideningAcrossCalls(t *testing.T) {
	// A call in the loop makes early endpoint traps observable (the callee
	// could print); widening must not fire.
	u := build(t, corpus.Prelude+`
int main(void) {
    int a[8];
    int i;
    for (i = 0; i < 8; i++) { a[i] = i; printf("%d", a[i]); }
    return 0;
}
`, infer.Options{})
	if u.Cured.Opt.Widened != 0 {
		t.Errorf("widened %d checks in a loop containing a call, want 0", u.Cured.Opt.Widened)
	}
}

func TestOptimizerCoalescesAdjacentSeqChecks(t *testing.T) {
	// p[0]+p[1]+p[2] in one expression: three adjacent constant-offset SEQ
	// checks collapse into one widened check.
	u := build(t, corpus.Prelude+`
int sum3(int *p) { return p[0] + p[1] + p[2]; }
int main(void) {
    int a[3];
    a[0] = 1; a[1] = 2; a[2] = 3;
    return sum3(a);
}
`, infer.Options{})
	if u.Cured.Opt.Coalesced == 0 {
		t.Fatalf("no checks coalesced: %+v", u.Cured.Opt)
	}
	fn := u.Cured.Prog.Lookup("sum3")
	if got := checksIn(fn); got != 1 {
		t.Errorf("sum3 retains %d checks, want 1 widened check", got)
	}
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("trap: %v", out.Trap)
	}
	if out.ExitCode != 6 {
		t.Errorf("exit code %d, want 6", out.ExitCode)
	}
}

func TestOptimizerCoalescedCheckStillTraps(t *testing.T) {
	// The widened check covers the max offset: passing a 2-element buffer
	// to sum3 must trap even though p[2]'s own check was coalesced away.
	src := corpus.Prelude + `
int sum3(int *p) { return p[0] + p[1] + p[2]; }
int main(void) {
    int a[2];
    a[0] = 1; a[1] = 2;
    return sum3(a);
}
`
	for _, noOpt := range []bool{true, false} {
		u := build(t, src, infer.Options{NoOptimize: noOpt})
		out, err := u.RunCured(interp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Trap == nil {
			t.Fatalf("NoOptimize=%v: undersized buffer did not trap", noOpt)
		}
		if out.Trap.Kind != "bounds" {
			t.Errorf("NoOptimize=%v: trap kind %q, want bounds", noOpt, out.Trap.Kind)
		}
	}
}

func TestOptimizerNoOptimizeDisables(t *testing.T) {
	u := build(t, corpus.Prelude+`
int twice(int *p) { return *p + *p; }
int main(void) {
    int x = 21;
    return twice(&x);
}
`, infer.Options{NoOptimize: true})
	if u.Cured.Opt != nil {
		t.Errorf("Opt stats present at -O0")
	}
	if u.Cured.ChecksEliminated != 0 {
		t.Errorf("eliminated %d checks at -O0, want 0", u.Cured.ChecksEliminated)
	}
	fn := u.Cured.Prog.Lookup("twice")
	if got := checksIn(fn); got < 2 {
		t.Errorf("twice retains %d checks at -O0, want >= 2", got)
	}
}

func TestOptimizerLoopBreakPinsChecks(t *testing.T) {
	// An extra conditional break after the guard must disable widening:
	// the endpoint check could trap on a run that exits early at i == 1
	// and never touches a[7].
	u := build(t, corpus.Prelude+`
int g;
int main(void) {
    int a[8];
    int i;
    for (i = 0; i < 8; i++) {
        if (g) break;
        a[i] = i;
    }
    return a[0];
}
`, infer.Options{})
	if u.Cured.Opt.Widened != 0 {
		t.Errorf("widened %d checks in a loop with a second exit, want 0", u.Cured.Opt.Widened)
	}
}
