package gocured_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"gocured"
	"gocured/internal/corpus"
)

const apiDemo = `
extern int printf(char *fmt, ...);
extern void *malloc(unsigned int n);

struct Point { int x; int y; };

int manhattan(struct Point *p) { return p->x + p->y; }

int main(void) {
    struct Point *p = (struct Point *)malloc(sizeof(struct Point));
    int i, total = 0;
    int arr[5];
    p->x = 3;
    p->y = 4;
    for (i = 0; i < 5; i++) arr[i] = i * i;
    for (i = 0; i < 5; i++) total += arr[i];
    printf("dist=%d sum=%d\n", manhattan(p), total);
    return 0;
}
`

func TestCompileAndRunModes(t *testing.T) {
	prog, err := gocured.Compile("demo.c", apiDemo, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "dist=7 sum=30\n"
	for _, mode := range []gocured.Mode{gocured.ModeRaw, gocured.ModeCured,
		gocured.ModePurify, gocured.ModeValgrind} {
		res, err := prog.Run(mode, gocured.RunOptions{})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Trapped {
			t.Fatalf("%s trapped: %s", mode, res.TrapMessage)
		}
		if res.Stdout != want {
			t.Errorf("%s stdout = %q, want %q", mode, res.Stdout, want)
		}
	}
}

// TestConcurrentRuns is the -race regression for the documented guarantee
// that one compiled Program may be Run from many goroutines: 8 goroutines
// share a single Program, cycling through every execution mode (plus Stats
// and Diagnostics reads), and every run must produce the sequential result.
// Under the race detector this exercises the qualifier-graph, layout-cache,
// and RTTI-hierarchy synchronization.
func TestConcurrentRuns(t *testing.T) {
	prog, err := gocured.Compile("demo.c", apiDemo, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "dist=7 sum=30\n"
	const goroutines = 8
	const runsEach = 4
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*runsEach)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				mode := gocured.Modes()[(g+i)%len(gocured.Modes())]
				res, err := prog.Run(mode, gocured.RunOptions{})
				if err != nil {
					errs <- err
					continue
				}
				if res.Trapped {
					errs <- fmt.Errorf("%s trapped: %s", mode, res.TrapMessage)
					continue
				}
				if res.Stdout != want {
					errs <- fmt.Errorf("%s stdout = %q, want %q", mode, res.Stdout, want)
				}
				if s := prog.Stats(); s.Pointers == 0 {
					errs <- fmt.Errorf("concurrent Stats lost pointers")
				}
				_ = prog.Diagnostics()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestStatsSurface(t *testing.T) {
	prog, err := gocured.Compile("demo.c", apiDemo, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Stats()
	if s.Pointers == 0 {
		t.Error("no pointers counted")
	}
	if s.Lines == 0 {
		t.Error("no lines counted")
	}
	sum := s.PctSafe + s.PctSeq + s.PctWild + s.PctRtti
	if sum < 99.0 || sum > 101.0 {
		t.Errorf("kind percentages sum to %.1f, want ~100", sum)
	}
	if s.ChecksInserted == 0 {
		t.Error("curing inserted no checks")
	}
}

func TestCuredCatchesWhatRawMisses(t *testing.T) {
	src := `
int main(void) {
    int a[3];
    int i, t = 0;
    for (i = 0; i <= 3; i++) t += a[i];
    return t;
}
`
	prog, err := gocured.Compile("bug.c", src, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := prog.Run(gocured.ModeRaw, gocured.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Trapped {
		t.Fatalf("raw run should not trap: %s", raw.TrapMessage)
	}
	cured, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !cured.Trapped || cured.TrapKind != "bounds" {
		t.Fatalf("cured run must trap bounds, got trapped=%v kind=%s",
			cured.Trapped, cured.TrapKind)
	}
}

func TestOptionsChangeInference(t *testing.T) {
	src := `
struct Base { int (*fn)(struct Base*); };
struct Derived { int (*fn)(struct Base*); int extra; };
int handler(struct Base *b) {
    struct Derived *d = (struct Derived*)b;
    return d->extra;
}
`
	withRTTI, err := gocured.Compile("p.c", src, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := gocured.Compile("p.c", src, gocured.Options{NoRTTI: true})
	if err != nil {
		t.Fatal(err)
	}
	if withRTTI.Stats().BadCasts != 0 {
		t.Error("RTTI should verify the downcast")
	}
	if without.Stats().BadCasts == 0 {
		t.Error("NoRTTI should classify the downcast as bad")
	}
	if without.Stats().PctWild == 0 {
		t.Error("NoRTTI should produce WILD pointers")
	}
	trusted, err := gocured.Compile("p.c", src, gocured.Options{NoRTTI: true, TrustBadCasts: true})
	if err != nil {
		t.Fatal(err)
	}
	if trusted.Stats().PctWild != 0 {
		t.Error("TrustBadCasts should eliminate WILD")
	}
	if trusted.Stats().Trusted == 0 {
		t.Error("TrustBadCasts should record trusted casts")
	}
}

func TestDumpOutput(t *testing.T) {
	prog, err := gocured.Compile("demo.c", apiDemo, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var raw, cured strings.Builder
	prog.DumpRaw(&raw)
	prog.DumpCured(&cured)
	if !strings.Contains(raw.String(), "func main") {
		t.Error("raw dump missing main")
	}
	if !strings.Contains(cured.String(), "__check_") {
		t.Error("cured dump missing check instructions")
	}
	if len(cured.String()) <= len(raw.String()) {
		t.Error("cured program should be longer than raw (inserted checks)")
	}
}

func TestStdinReachesProgram(t *testing.T) {
	src := `
extern int getchar(void);
extern int putchar(int c);
int main(void) {
    int c;
    while ((c = getchar()) >= 0) {
        if (c >= 'a' && c <= 'z') c = c - 'a' + 'A';
        putchar(c);
    }
    return 0;
}
`
	prog, err := gocured.Compile("upper.c", src, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{Stdin: []byte("hello, CCured!\n")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "HELLO, CCURED!\n" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestCompileErrorsSurface(t *testing.T) {
	if _, err := gocured.Compile("bad.c", "int main(void) { return x; }", gocured.Options{}); err == nil {
		t.Error("undeclared identifier must fail compilation")
	}
	if _, err := gocured.Compile("bad2.c", "int f( { }", gocured.Options{}); err == nil {
		t.Error("syntax error must fail compilation")
	}
}

func TestCountLines(t *testing.T) {
	if n := gocured.CountLines("a\n\nb\n  \nc"); n != 3 {
		t.Errorf("CountLines = %d, want 3", n)
	}
}

func TestModeString(t *testing.T) {
	if gocured.ModeRaw.String() != "raw" || gocured.ModeCured.String() != "cured" {
		t.Error("mode names wrong")
	}
}

// TestHottestCheckSite pins the per-site check attribution on a corpus
// program: cured olden-treeadd spends most of its checks on the null test
// guarding the recursive child-pointer walk, and the counters must come
// back sorted hottest-first.
func TestHottestCheckSite(t *testing.T) {
	p := corpus.ByName("olden-treeadd")
	if p == nil {
		t.Fatal("corpus program olden-treeadd missing")
	}
	prog, err := gocured.Compile(p.Name+".c", p.Source, gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trapped {
		t.Fatalf("treeadd trapped: %s", res.TrapKind)
	}
	if len(res.CheckSites) == 0 {
		t.Fatal("no per-site check counters recorded")
	}
	for i := 1; i < len(res.CheckSites); i++ {
		if res.CheckSites[i].Hits > res.CheckSites[i-1].Hits {
			t.Fatalf("CheckSites not sorted by hits: %v before %v",
				res.CheckSites[i-1], res.CheckSites[i])
		}
	}
	hot := res.CheckSites[0]
	if hot.Pos != "olden-treeadd.c:55:28" || hot.Kind != "null" {
		t.Errorf("hottest site = %s %s (%d hits), want the null check at olden-treeadd.c:55:28",
			hot.Pos, hot.Kind, hot.Hits)
	}
	if hot.Traps != 0 {
		t.Errorf("treeadd must not trap, yet hottest site has %d traps", hot.Traps)
	}
	// TopCheckSites(n) truncates without re-sorting.
	top := res.TopCheckSites(3)
	if len(top) != 3 || top[0] != hot {
		t.Errorf("TopCheckSites(3) = %v, want prefix starting at %v", top, hot)
	}
}
