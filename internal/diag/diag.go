// Package diag provides source positions and diagnostic collection for the
// gocured C frontend and transformation pipeline.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a source position. Line and Col are 1-based; a zero Pos means
// "no position" (synthesized code).
type Pos struct {
	File string
	Line int
	Col  int
}

// IsValid reports whether p refers to an actual source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

func (p Pos) String() string {
	if !p.IsValid() {
		return "<generated>"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// ComparePosStrings orders two rendered positions ("file.c:12:3") by file,
// then numerically by line and column. Plain lexical comparison puts
// "f.c:10:1" before "f.c:9:1"; every surface that tie-breaks on position
// (TopSites, hot_sites, profile tables) uses this instead so orderings are
// stable and human-sensible. Strings that do not parse as positions fall
// back to lexical order after all parseable ones.
func ComparePosStrings(a, b string) int {
	pa, oka := parsePosString(a)
	pb, okb := parsePosString(b)
	switch {
	case oka && !okb:
		return -1
	case !oka && okb:
		return 1
	case !oka && !okb:
		return strings.Compare(a, b)
	}
	if c := strings.Compare(pa.File, pb.File); c != 0 {
		return c
	}
	if pa.Line != pb.Line {
		if pa.Line < pb.Line {
			return -1
		}
		return 1
	}
	if pa.Col != pb.Col {
		if pa.Col < pb.Col {
			return -1
		}
		return 1
	}
	return 0
}

// parsePosString parses "file:line:col", "file:line", or "line:col" back
// into a Pos. It accepts what Pos.String produces (plus the line-only form
// profiles use).
func parsePosString(s string) (Pos, bool) {
	// Split from the right: the file name may contain no colons in this
	// codebase, but parsing right-to-left is cheap insurance.
	parts := strings.Split(s, ":")
	atoi := func(x string) (int, bool) {
		n := 0
		if x == "" {
			return 0, false
		}
		for _, r := range x {
			if r < '0' || r > '9' {
				return 0, false
			}
			n = n*10 + int(r-'0')
		}
		return n, true
	}
	switch len(parts) {
	case 2:
		// "file:line" (profile keys) or "line:col" (file-less positions).
		if line, ok := atoi(parts[1]); ok {
			if l0, ok0 := atoi(parts[0]); ok0 {
				return Pos{Line: l0, Col: line}, true
			}
			return Pos{File: parts[0], Line: line}, true
		}
	case 3:
		line, okL := atoi(parts[1])
		col, okC := atoi(parts[2])
		if okL && okC {
			return Pos{File: parts[0], Line: line, Col: col}, true
		}
	}
	return Pos{}, false
}

// Severity classifies a diagnostic.
type Severity int

const (
	// Note is informational (e.g. inference decisions the user asked to see).
	Note Severity = iota
	// Warning does not stop the pipeline.
	Warning
	// Error stops the pipeline at the end of the current phase.
	Error
)

func (s Severity) String() string {
	switch s {
	case Note:
		return "note"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("severity(%d)", int(s))
	}
}

// Diagnostic is one reported condition.
type Diagnostic struct {
	Pos      Pos
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Severity, d.Message)
}

// List accumulates diagnostics. The zero value is ready to use.
type List struct {
	diags []Diagnostic
}

// Add appends a diagnostic.
func (l *List) Add(pos Pos, sev Severity, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{Pos: pos, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

// Errorf appends an error diagnostic.
func (l *List) Errorf(pos Pos, format string, args ...any) {
	l.Add(pos, Error, format, args...)
}

// Warnf appends a warning diagnostic.
func (l *List) Warnf(pos Pos, format string, args ...any) {
	l.Add(pos, Warning, format, args...)
}

// Notef appends a note diagnostic.
func (l *List) Notef(pos Pos, format string, args ...any) {
	l.Add(pos, Note, format, args...)
}

// HasErrors reports whether any diagnostic is an Error.
func (l *List) HasErrors() bool {
	for _, d := range l.diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// All returns the diagnostics in source order (stable sort by file, line,
// col; generated positions last in insertion order).
func (l *List) All() []Diagnostic {
	out := make([]Diagnostic, len(l.diags))
	copy(out, l.diags)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.IsValid() != b.IsValid() {
			return a.IsValid()
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return out
}

// Len returns the number of diagnostics.
func (l *List) Len() int { return len(l.diags) }

// Err returns an error summarizing all Error-severity diagnostics, or nil.
func (l *List) Err() error {
	if !l.HasErrors() {
		return nil
	}
	var b strings.Builder
	n := 0
	for _, d := range l.All() {
		if d.Severity != Error {
			continue
		}
		if n > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(d.String())
		n++
		if n == 20 {
			fmt.Fprintf(&b, "\n... and more errors")
			break
		}
	}
	return fmt.Errorf("%s", b.String())
}
