package infer

import (
	"testing"

	"gocured/internal/cil"
	"gocured/internal/cparse"
	"gocured/internal/diag"
	"gocured/internal/qual"
	"gocured/internal/sema"
)

// pipe runs parse -> check -> lower -> infer.
func pipe(t *testing.T, src string, opts Options) (*cil.Program, *Result) {
	t.Helper()
	var d diag.List
	file := cparse.Parse("test.c", src, &d)
	unit := sema.Check(file, &d)
	prog := cil.Lower(unit, &d)
	if d.HasErrors() {
		t.Fatalf("frontend errors:\n%v", d.Err())
	}
	res := Infer(prog, opts, &d)
	if d.HasErrors() {
		t.Fatalf("inference errors:\n%v", d.Err())
	}
	return prog, res
}

// kindOfGlobal returns the solved kind of a global pointer variable.
func kindOfGlobal(prog *cil.Program, res *Result, name string) qual.Kind {
	for _, g := range prog.Globals {
		if g.Var.Name == name {
			return res.Graph.KindOf(g.Var.Type)
		}
	}
	return qual.Unknown
}

func TestInferAllSafe(t *testing.T) {
	prog, res := pipe(t, `
int *p;
int x;
void f(void) { p = &x; *p = 3; }
`, Options{})
	if k := kindOfGlobal(prog, res, "p"); k != qual.Safe {
		t.Errorf("p inferred %s, want SAFE", k)
	}
}

func TestInferArithMakesSeq(t *testing.T) {
	prog, res := pipe(t, `
int buf[10];
int *p;
void f(void) { p = buf; p = p + 1; *p = 2; }
`, Options{})
	if k := kindOfGlobal(prog, res, "p"); k != qual.Seq {
		t.Errorf("p inferred %s, want SEQ", k)
	}
}

func TestInferSeqPropagatesBackwards(t *testing.T) {
	// q gets arithmetic; p flows into q, so p must carry bounds too.
	prog, res := pipe(t, `
int buf[10];
int *p;
int *q;
void f(void) { p = buf; q = p; q = q + 1; }
`, Options{})
	if k := kindOfGlobal(prog, res, "q"); k != qual.Seq {
		t.Errorf("q inferred %s, want SEQ", k)
	}
	if k := kindOfGlobal(prog, res, "p"); k != qual.Seq {
		t.Errorf("p inferred %s, want SEQ (bounds originate at the source)", k)
	}
}

func TestInferSeqToSafeAllowed(t *testing.T) {
	// buf's decayed pointer is SEQ (arithmetic); storing buf+1 into p uses
	// the checked SEQ->SAFE conversion, so p and s stay SAFE — the optimal
	// solution.
	prog, res := pipe(t, `
int buf[10];
int *p;
int *s;
void f(void) { p = buf + 1; s = p; *s = 1; }
`, Options{})
	if k := kindOfGlobal(prog, res, "p"); k != qual.Safe {
		t.Errorf("p inferred %s, want SAFE (checked SEQ->SAFE conversion)", k)
	}
	if k := kindOfGlobal(prog, res, "s"); k != qual.Safe {
		t.Errorf("s inferred %s, want SAFE", k)
	}
	if s := res.ComputeStats(); s.Seq == 0 {
		t.Error("expected the array's decayed pointer to be SEQ")
	}
}

func TestInferBadCastMakesWild(t *testing.T) {
	prog, res := pipe(t, `
struct A { int x; };
struct B { float f; };
struct A *pa;
struct B *pb;
void f(void) { pb = (struct B*)pa; }
`, Options{})
	if k := kindOfGlobal(prog, res, "pa"); k != qual.Wild {
		t.Errorf("pa inferred %s, want WILD", k)
	}
	if k := kindOfGlobal(prog, res, "pb"); k != qual.Wild {
		t.Errorf("pb inferred %s, want WILD", k)
	}
	s := res.ComputeStats()
	if s.Bad != 1 {
		t.Errorf("bad casts = %d, want 1", s.Bad)
	}
}

func TestInferWildSpreadsToBaseAndAliases(t *testing.T) {
	// pp points to p; if pp is WILD, p must be WILD too (the referent of a
	// wild pointer is dynamically typed).
	prog, res := pipe(t, `
struct A { int x; };
struct B { float f; };
int **pp;
int *p;
struct B *bad;
void f(void) {
    pp = &p;
    bad = (struct B*)(struct A*)pp;
}
`, Options{})
	if k := kindOfGlobal(prog, res, "pp"); k != qual.Wild {
		t.Errorf("pp inferred %s, want WILD", k)
	}
	if k := kindOfGlobal(prog, res, "p"); k != qual.Wild {
		t.Errorf("p inferred %s, want WILD (base of a WILD pointer)", k)
	}
}

const figureCircleSrc = `
struct Figure { double (*area)(struct Figure *obj); };
struct Circle { double (*area)(struct Figure *obj); int radius; };

struct Circle *c;
struct Figure *f;

double circle_area(struct Figure *obj) {
    struct Circle *cir = (struct Circle*)obj;   /* downcast */
    return 3.14 * cir->radius * cir->radius;
}

void setup(void) {
    f = (struct Figure*)c;                       /* upcast */
    c->area = circle_area;
}

double dispatch(void) {
    return f->area(f);
}
`

func TestInferFigureCircle(t *testing.T) {
	prog, res := pipe(t, figureCircleSrc, Options{})
	s := res.ComputeStats()
	if s.Bad != 0 {
		t.Fatalf("bad casts = %d, want 0 (upcast+downcast are verified)", s.Bad)
	}
	if s.Upcasts < 1 || s.Downcasts < 1 {
		t.Errorf("upcasts=%d downcasts=%d, want >=1 each", s.Upcasts, s.Downcasts)
	}
	if s.Wild != 0 {
		t.Errorf("WILD pointers = %d, want 0", s.Wild)
	}
	// The downcast's source (obj, a Figure*) must be RTTI; the upcast
	// target f (Figure*) must be RTTI too via backward propagation (its
	// static type has subtypes). c (Circle*) has no subtypes: stays SAFE.
	if k := kindOfGlobal(prog, res, "c"); k != qual.Safe {
		t.Errorf("c inferred %s, want SAFE (Circle has no subtypes)", k)
	}
	if k := kindOfGlobal(prog, res, "f"); k != qual.Rtti {
		t.Errorf("f inferred %s, want RTTI", k)
	}
	if s.Rtti == 0 {
		t.Error("expected at least one RTTI pointer")
	}
}

func TestInferFigureCircleWithoutRTTI(t *testing.T) {
	// With RTTI disabled (original CCured), the downcast is bad and WILD
	// spreads — this is the ijpeg ablation of §5.
	_, res := pipe(t, figureCircleSrc, Options{NoRTTI: true})
	s := res.ComputeStats()
	if s.Bad == 0 {
		t.Error("expected bad casts with RTTI disabled")
	}
	if s.Wild == 0 {
		t.Error("expected WILD pointers with RTTI disabled")
	}
}

func TestInferVoidStarChain(t *testing.T) {
	// The paper's q1 -> q2 -> q3 -> q4 example:
	// Circle* -> Figure* -> void* -> Circle*.
	prog, res := pipe(t, `
struct Figure { double (*area)(struct Figure *obj); };
struct Circle { double (*area)(struct Figure *obj); int radius; };
struct Circle *q1;
struct Figure *q2;
void *q3;
struct Circle *q4;
void f(void) {
    q2 = (struct Figure*)q1;
    q3 = (void*)q2;
    q4 = (struct Circle*)q3;
}
`, Options{})
	if k := kindOfGlobal(prog, res, "q3"); k != qual.Rtti {
		t.Errorf("q3 inferred %s, want RTTI (downcast source)", k)
	}
	if k := kindOfGlobal(prog, res, "q2"); k != qual.Rtti {
		t.Errorf("q2 inferred %s, want RTTI (backward propagation)", k)
	}
	if k := kindOfGlobal(prog, res, "q1"); k != qual.Safe {
		t.Errorf("q1 inferred %s, want SAFE (Circle has no subtypes)", k)
	}
	if k := kindOfGlobal(prog, res, "q4"); k != qual.Safe {
		t.Errorf("q4 inferred %s, want SAFE (unconstrained)", k)
	}
}

func TestInferSeqUpcastTilingFails(t *testing.T) {
	// Arithmetic on the upcast target makes both SEQ; Circle/Figure do not
	// tile, so the cast is demoted to WILD (the soundness example of §3.1).
	prog, res := pipe(t, `
struct Figure { double (*area)(struct Figure *obj); };
struct Circle { double (*area)(struct Figure *obj); int radius; };
struct Circle *cs;
struct Figure *fs;
void f(void) {
    fs = (struct Figure*)cs;
    fs = fs + 1;
}
`, Options{})
	if k := kindOfGlobal(prog, res, "fs"); k != qual.Wild {
		t.Errorf("fs inferred %s, want WILD (SEQ upcast without tiling)", k)
	}
	if k := kindOfGlobal(prog, res, "cs"); k != qual.Wild {
		t.Errorf("cs inferred %s, want WILD", k)
	}
}

func TestInferSeqTileCast(t *testing.T) {
	// Reshaping an int matrix: tiles, so both sides are SEQ, no WILD.
	prog, res := pipe(t, `
int matrix[3][4];
int *flat;
void f(void) {
    flat = (int*)matrix;
    flat = flat + 5;
    *flat = 7;
}
`, Options{})
	if k := kindOfGlobal(prog, res, "flat"); k != qual.Seq {
		t.Errorf("flat inferred %s, want SEQ", k)
	}
	s := res.ComputeStats()
	if s.Wild != 0 {
		t.Errorf("WILD pointers = %d, want 0", s.Wild)
	}
}

func TestInferIntToPtrDisguise(t *testing.T) {
	prog, res := pipe(t, `
int *p;
void f(int handle) { p = (int*)handle; }
`, Options{})
	if k := kindOfGlobal(prog, res, "p"); k != qual.Seq {
		t.Errorf("p inferred %s, want SEQ (disguised integer: null base)", k)
	}
}

func TestInferNullCastStaysSafe(t *testing.T) {
	prog, res := pipe(t, `
int *p;
void f(void) { p = 0; if (p != 0) *p = 1; }
`, Options{})
	if k := kindOfGlobal(prog, res, "p"); k != qual.Safe {
		t.Errorf("p inferred %s, want SAFE (0 is the null constant)", k)
	}
}

func TestInferTrustedCastNoWild(t *testing.T) {
	prog, res := pipe(t, `
struct Obj { int tag; float v; };
char pool[1024];
struct Obj *alloc(void) {
    return __trusted_cast(struct Obj *, pool);
}
`, Options{})
	s := res.ComputeStats()
	if s.Trusted != 1 {
		t.Errorf("trusted casts = %d, want 1", s.Trusted)
	}
	if s.Wild != 0 {
		t.Errorf("WILD pointers = %d, want 0 (cast was trusted)", s.Wild)
	}
	_ = prog
}

func TestInferTrustBadCastsOption(t *testing.T) {
	// The bind experiment: remaining bad casts are trusted instead of WILD.
	_, res := pipe(t, `
struct A { int x; };
struct B { float f; };
struct A *pa;
struct B *pb;
void f(void) { pb = (struct B*)pa; }
`, Options{TrustBadCasts: true})
	s := res.ComputeStats()
	if s.Bad != 0 || s.Trusted != 1 {
		t.Errorf("bad=%d trusted=%d, want 0/1", s.Bad, s.Trusted)
	}
	if s.Wild != 0 {
		t.Errorf("WILD = %d, want 0", s.Wild)
	}
}

func TestInferAnnotationsRespected(t *testing.T) {
	prog, res := pipe(t, `
int * __WILD w;
int * __SEQ q;
void f(void) { }
`, Options{})
	if k := kindOfGlobal(prog, res, "w"); k != qual.Wild {
		t.Errorf("w inferred %s, want WILD (annotation)", k)
	}
	if k := kindOfGlobal(prog, res, "q"); k != qual.Seq {
		t.Errorf("q inferred %s, want SEQ (annotation)", k)
	}
}

func TestInferFunctionPointerDispatch(t *testing.T) {
	// Function pointers with equal signatures unify without WILD.
	prog, res := pipe(t, `
int add1(int x) { return x + 1; }
int mul2(int x) { return x * 2; }
int (*op)(int);
int apply(int v) { return op(v); }
void pick(int which) { op = which ? add1 : mul2; }
`, Options{})
	s := res.ComputeStats()
	if s.Wild != 0 {
		t.Errorf("WILD = %d, want 0", s.Wild)
	}
	if k := kindOfGlobal(prog, res, "op"); k != qual.Safe {
		t.Errorf("op inferred %s, want SAFE", k)
	}
}

func TestInferStringLiteralSeq(t *testing.T) {
	prog, res := pipe(t, `
char *scan(char *s) {
    while (*s) s = s + 1;
    return s;
}
char *use(void) { return scan("hello"); }
`, Options{})
	_ = prog
	s := res.ComputeStats()
	if s.Wild != 0 {
		t.Errorf("WILD = %d, want 0", s.Wild)
	}
	if s.Seq == 0 {
		t.Error("expected SEQ pointers from string traversal")
	}
}

func TestInferSplitAnnotationsSpread(t *testing.T) {
	prog, res := pipe(t, `
struct hostent { char *h_name; char **h_aliases; int h_addrtype; };
struct hostent __SPLIT * __SAFE h1;
struct hostent * h2;
char **a;
void f(void) {
    a = h1->h_aliases;
    h2 = h1;
}
`, Options{})
	// h1's annotation spreads down to its base type and through the
	// assignments to a and h2.
	var h1, h2 *cil.Global
	for _, g := range prog.Globals {
		switch g.Var.Name {
		case "h1":
			h1 = g
		case "h2":
			h2 = g
		}
	}
	if !res.Split.IsSplit(h1.Var.Type.Elem) {
		t.Error("h1's base type must be SPLIT")
	}
	if !res.Split.IsSplit(h2.Var.Type.Elem) {
		t.Error("SPLIT must spread to h2's base type through the assignment")
	}
	if res.Split.Stats.SplitPtrs == 0 {
		t.Error("expected some split pointers")
	}
}

func TestInferStatsCastShares(t *testing.T) {
	// A mixed program: most casts identical/upcasts, one downcast.
	_, res := pipe(t, figureCircleSrc, Options{})
	s := res.ComputeStats()
	if s.Casts == 0 {
		t.Fatal("no casts recorded")
	}
	if got := s.Identity + s.Upcasts + s.Downcasts + s.SeqCasts + s.Bad + s.Trusted; got != s.Casts {
		t.Errorf("cast classes sum %d != total %d", got, s.Casts)
	}
}

func TestKindStringAndOrder(t *testing.T) {
	if qual.Safe.String() != "SAFE" || qual.Wild.String() != "WILD" {
		t.Error("kind names wrong")
	}
	if !(qual.Safe < qual.Rtti && qual.Rtti < qual.Seq && qual.Seq < qual.Wild) {
		t.Error("kind escalation order broken")
	}
}

func TestInferHeapVoidDowncast(t *testing.T) {
	// malloc-style: the cast of the fresh result is allocator typing, not
	// a downcast — no RTTI, no WILD (CCured types allocators
	// polymorphically).
	prog, res := pipe(t, `
extern void *malloc(unsigned int n);
struct Node { int v; struct Node *next; };
struct Node *mk(void) {
    return (struct Node*)malloc(sizeof(struct Node));
}
`, Options{})
	_ = prog
	s := res.ComputeStats()
	if s.Wild != 0 {
		t.Errorf("WILD = %d, want 0", s.Wild)
	}
	if s.Downcasts != 0 {
		t.Errorf("downcasts = %d, want 0 (allocator cast)", s.Downcasts)
	}
	found := false
	for _, c := range res.Casts {
		if c.Class == CastAlloc {
			found = true
		}
	}
	if !found {
		t.Error("expected a CastAlloc site")
	}
}

func TestInferVoidPtrVariableDowncast(t *testing.T) {
	// Once the fresh result lands in a named void* variable, later casts
	// are genuine downcasts handled by RTTI.
	prog, res := pipe(t, `
extern void *malloc(unsigned int n);
struct Node { int v; struct Node *next; };
void *cache;
struct Node *get(void) {
    if (!cache) cache = malloc(sizeof(struct Node));
    return (struct Node*)cache;
}
`, Options{})
	s := res.ComputeStats()
	if s.Wild != 0 {
		t.Errorf("WILD = %d, want 0", s.Wild)
	}
	if s.Downcasts != 1 {
		t.Errorf("downcasts = %d, want 1", s.Downcasts)
	}
	if k := kindOfGlobal(prog, res, "cache"); k != qual.Rtti {
		t.Errorf("cache inferred %s, want RTTI", k)
	}
}
