// Package core orchestrates the gocured pipeline: parse → type check →
// lower to CIL → pointer-kind inference → curing instrumentation. It
// produces both the raw program (for baseline and Purify/Valgrind-policy
// execution) and the cured program (for checked execution), from two
// independent frontend passes since curing rewrites the IR in place.
package core

import (
	"fmt"
	"sync"

	"gocured/internal/cil"
	"gocured/internal/cparse"
	"gocured/internal/diag"
	"gocured/internal/infer"
	"gocured/internal/instrument"
	"gocured/internal/interp"
	"gocured/internal/sema"
	"gocured/internal/trace"
	"gocured/internal/vm"
)

// Unit is one fully processed program.
type Unit struct {
	Filename string
	Source   string

	// Raw is the uninstrumented program (baseline execution).
	Raw *cil.Program
	// Cured is the instrumented program and its layout oracle.
	Cured *instrument.Cured
	// Res is the inference result backing Cured.
	Res *infer.Result

	// Diags collects warnings and notes from all phases.
	Diags *diag.List

	// Incr reports how inference composed this unit: functions re-collected
	// vs. replayed from a persistent summary store. A plain Build counts
	// every function as recured.
	Incr infer.IncrStats

	// Spans records per-phase wall time of the build (parse/sema/lower of
	// the cure pass, plus frontend-raw, infer, instrument).
	Spans []trace.Span

	// Compiled bytecode modules, one per program, built on first use and
	// shared by every subsequent run of this Unit (a Unit's programs are
	// frozen after Build, so a module compiled once is valid forever; the
	// pipeline cache runs the same Unit many times).
	rawOnce, curedOnce sync.Once
	rawCode, curedCode *vm.Module
}

// rawModule returns the bytecode module for the raw program, compiling it
// on first use.
func (u *Unit) rawModule() *vm.Module {
	u.rawOnce.Do(func() { u.rawCode = vm.Compile(u.Raw, instrument.RawLayout{}) })
	return u.rawCode
}

// curedModule returns the bytecode module for the cured program, compiling
// it on first use.
func (u *Unit) curedModule() *vm.Module {
	u.curedOnce.Do(func() { u.curedCode = vm.Compile(u.Cured.Prog, u.Cured.Lay) })
	return u.curedCode
}

// frontend runs parse/check/lower once, timing each phase into spans (which
// may be nil).
func frontend(filename, src string, diags *diag.List, spans *trace.SpanSet) (*cil.Program, error) {
	var file *cparse.File
	spans.Do("parse", func() { file = cparse.Parse(filename, src, diags) })
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	var unit *sema.Unit
	spans.Do("sema", func() { unit = sema.Check(file, diags) })
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	var prog *cil.Program
	spans.Do("lower", func() { prog = cil.Lower(unit, diags) })
	if diags.HasErrors() {
		return nil, diags.Err()
	}
	return prog, nil
}

// Build compiles and cures a source file.
func Build(filename, src string, opts infer.Options) (*Unit, error) {
	return BuildStored(filename, src, opts, nil)
}

// BuildStored is Build with a persistent summary source: pointer-kind
// inference replays per-function constraint summaries whose fingerprints
// still match instead of re-collecting them, then runs the global solve as
// usual. The resulting Unit is bit-identical to a plain Build; Unit.Incr
// reports the replay/recure split. A nil sums degrades to Build.
func BuildStored(filename, src string, opts infer.Options, sums infer.SummarySource) (*Unit, error) {
	u := &Unit{Filename: filename, Source: src, Diags: &diag.List{}}
	spans := &trace.SpanSet{}
	var raw *cil.Program
	var err error
	spans.Do("frontend-raw", func() { raw, err = frontend(filename, src, u.Diags, nil) })
	if err != nil {
		return nil, fmt.Errorf("frontend: %w", err)
	}
	u.Raw = raw

	// Independent second pass for the cured program (curing mutates it).
	// This pass's phases are the ones timed individually: it is the one
	// whose output the service serves.
	curedDiags := &diag.List{}
	prog2, err := frontend(filename, src, curedDiags, spans)
	if err != nil {
		return nil, fmt.Errorf("frontend (cure pass): %w", err)
	}
	// Wrapper redirection must precede inference so wrapper constraints
	// reach every call site (§4.1).
	instrument.RedirectWrappers(prog2, u.Diags)
	spans.Do("infer", func() { u.Res, u.Incr = infer.InferIncremental(prog2, opts, u.Diags, sums) })
	spans.Do("instrument", func() { u.Cured = instrument.Cure(prog2, u.Res, u.Diags) })
	if !opts.NoOptimize {
		spans.Do("optimize", func() { instrument.Optimize(u.Cured) })
	}
	// Site IDs are assigned over the final check set, after the optimizer
	// has deleted/moved/widened checks, so IDs are dense and stable.
	instrument.AssignSites(u.Cured)
	u.Spans = spans.Spans
	if u.Diags.HasErrors() {
		return nil, u.Diags.Err()
	}
	return u, nil
}

// RunRaw executes the uninstrumented program under the given policy
// (PolicyNone, PolicyPurify, or PolicyValgrind).
func (u *Unit) RunRaw(policy interp.Policy, cfg interp.Config) (*interp.Outcome, error) {
	cfg.Policy = policy
	if cfg.Backend == interp.BackendVM && cfg.Code == nil {
		cfg.Code = u.rawModule()
	}
	m := interp.New(u.Raw, cfg)
	return m.Run()
}

// RunCured executes the instrumented program with checks enabled.
func (u *Unit) RunCured(cfg interp.Config) (*interp.Outcome, error) {
	cfg.Policy = interp.PolicyCured
	cfg.Cured = u.Cured
	if cfg.Backend == interp.BackendVM && cfg.Code == nil {
		cfg.Code = u.curedModule()
	}
	m := interp.New(u.Cured.Prog, cfg)
	return m.Run()
}

// Stats returns the static inference statistics.
func (u *Unit) Stats() infer.Stats { return u.Res.ComputeStats() }
