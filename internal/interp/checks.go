package interp

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/flight"
)

// checkCost weighs each check kind in simulated cycles: SAFE null checks
// are one compare; SEQ bounds are two; WILD pays the header read, the area
// lookup and tag work; RTTI walks the subtype relation. Indexed by
// cil.CheckKind (an array: the cost lookup is on the per-check hot path).
var checkCost = [cil.NumCheckKinds]uint64{
	cil.CheckNull:        1,
	cil.CheckSeq:         2,
	cil.CheckSeqArith:    0,
	cil.CheckWild:        6,
	cil.CheckWildRead:    3,
	cil.CheckWildWrite:   3,
	cil.CheckRtti:        3,
	cil.CheckStackEscape: 2,
	cil.CheckSeqToSafe:   2,
	cil.CheckNotStackPtr: 1,
	cil.CheckVerifyNul:   1,
	cil.CheckIndex:       1,
}

// checkEnter performs the accounting half of a check — counters, per-site
// attribution, simulated cost, the flight event — and marks c as the check
// in flight so a trap raised anywhere below (including inside mem, or
// while evaluating the pointer operand) is attributed to this site. Both
// backends run it before evaluating the operand.
func (m *Machine) checkEnter(c *cil.Check) {
	m.cnt.Checks++
	m.cnt.ChecksByKind[c.Kind]++
	if sc := m.siteFor(c); sc != nil {
		sc.Hits++
	}
	m.addCost(checkCost[c.Kind])
	if m.rec != nil {
		m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvCheck, Site: c.Site, Arg: uint64(c.Size)})
	}
	m.curCheck = c
}

// execCheck executes one CCured run-time check (Appendix A) on the tree
// backend. The pointer operand is re-evaluated; IR expressions are pure,
// so this mirrors the repeated metadata reads of the generated code.
func (m *Machine) execCheck(fr *frame, c *cil.Check) {
	prev := m.curCheck
	m.checkEnter(c)
	defer func() { m.curCheck = prev }()
	v := m.evalExpr(fr, c.Ptr)
	if c.Kind == cil.CheckStackEscape {
		// The destination lvalue is evaluated lazily: only a live stack
		// pointer needs the store destination examined.
		if v.K != VPtr || v.P == 0 || !m.mem.InStack(v.P) {
			return
		}
		dst, _, _ := m.evalLval(fr, c.DstLV)
		m.stackEscapeVerify(v, dst)
		return
	}
	m.checkVerdict(c, v)
}

// stackEscapeVerify is the second half of CheckStackEscape, shared by both
// backends: v is a live stack pointer, dst the store destination.
func (m *Machine) stackEscapeVerify(v Value, dst uint32) {
	if !m.mem.InStack(dst) {
		m.trapf("stack-escape", "storing a stack pointer (0x%x) into non-stack memory (0x%x)",
			v.P, dst)
	}
}

// checkVerdict decides one check given its evaluated operand. It is the
// shared second half of a check (after checkEnter): the tree backend calls
// it from execCheck, the bytecode backend from OpCheck.
// CheckStackEscape never reaches here (its lazy destination evaluation
// needs backend-specific sequencing).
func (m *Machine) checkVerdict(c *cil.Check, v Value) {
	switch c.Kind {
	case cil.CheckNull:
		if v.P == 0 {
			m.trapf("null", "null pointer dereference")
		}

	case cil.CheckSeq:
		if v.P == 0 {
			m.trapf("null", "null SEQ pointer dereference")
		}
		if v.B == 0 {
			m.trapf("int-deref", "dereference of an integer disguised as a pointer")
		}
		if v.P < v.B || v.P+uint32(c.Size) > v.E {
			m.trapf("bounds", "SEQ access out of bounds: p=0x%x not in [0x%x, 0x%x-%d]",
				v.P, v.B, v.E, c.Size)
		}

	case cil.CheckSeqToSafe:
		if v.P == 0 {
			return // null converts freely
		}
		if v.B == 0 {
			m.trapf("int-deref", "conversion of a disguised integer to a SAFE pointer")
		}
		if v.P < v.B || v.P+uint32(c.Size) > v.E {
			m.trapf("bounds", "SEQ->SAFE conversion out of bounds: p=0x%x not in [0x%x, 0x%x-%d]",
				v.P, v.B, v.E, c.Size)
		}

	case cil.CheckWild:
		if v.P == 0 {
			m.trapf("null", "null WILD pointer dereference")
		}
		if v.B == 0 {
			m.trapf("int-deref", "dereference of an integer disguised as a WILD pointer")
		}
		blk := m.mem.BlockAt(v.B)
		if blk == nil {
			m.trapf("bounds", "WILD pointer base 0x%x is not a valid area", v.B)
		}
		// The paper's WILD areas keep their length in a header word: pay
		// for the header read.
		if _, err := m.mem.ReadWord(blk.Addr); err != nil {
			m.check(err)
		}
		if v.P < blk.Addr || v.P+uint32(c.Size) > blk.End() {
			m.trapf("bounds", "WILD access out of bounds: p=0x%x size %d in area %q [0x%x,0x%x)",
				v.P, c.Size, blk.Name, blk.Addr, blk.End())
		}
		// Tag bookkeeping touches every word of the access.
		blk.MakeWild()
		for off := uint32(0); off < uint32(c.Size); off += 4 {
			_ = blk.TagAt(v.P + off)
		}

	case cil.CheckWildRead:
		// Reading a pointer out of a dynamically-typed area: the tags must
		// say a valid base/pointer pair lives here.
		blk := m.mem.BlockAt(v.B)
		if blk == nil || !blk.Wild {
			m.trapf("tag", "WILD pointer read from untagged area")
		}
		if blk.TagAt(v.P) != 1 || blk.TagAt(v.P+4) != 0 {
			m.trapf("tag", "WILD read of a non-pointer as a pointer (tag check failed at 0x%x)", v.P)
		}

	case cil.CheckWildWrite:
		// Tag updates happen in storePtr; the check instruction exists to
		// account for the write-barrier cost and to verify the area.
		if blk := m.mem.BlockAt(v.B); blk != nil {
			blk.MakeWild()
		}

	case cil.CheckRtti:
		if v.P == 0 {
			return // null downcasts freely
		}
		target := m.hier.Of(c.RttiTarget)
		if v.RT == nil {
			// Fresh allocation: adopts any type that fits in the block.
			blk := m.mem.BlockAt(v.P)
			if blk == nil {
				m.trapf("rtti", "downcast of pointer 0x%x to %s: no underlying object", v.P, target)
			}
			if blk.Fresh {
				if v.P+uint32(c.Size) > blk.End() {
					m.trapf("rtti", "downcast to %s does not fit in %d-byte allocation",
						target, blk.Size)
				}
				return
			}
			// A bounded pointer whose type info was lost at a library
			// boundary (e.g. qsort handing elements back to a cured
			// comparator): reinterpreting pointer-free data is memory-
			// safe, so allow it when the target fits within the bounds.
			if v.B != 0 && !ctypes.ContainsPointer(c.RttiTarget) &&
				v.P >= v.B && v.P+uint32(c.Size) <= v.E {
				return
			}
			m.trapf("rtti", "downcast of pointer without run-time type information to %s", target)
		}
		if !m.hier.IsSubtype(v.RT, target) {
			m.trapf("rtti", "checked downcast failed: %s is not a subtype of %s", v.RT, target)
		}

	case cil.CheckIndex:
		idx := v.AsInt()
		if idx < 0 || (c.Size >= 0 && idx >= int64(c.Size)) {
			m.trapf("bounds", "array index %d out of range [0, %d)", idx, c.Size)
		}

	case cil.CheckVerifyNul:
		m.verifyNul(v)

	default:
		m.trapf("internal", "unknown check kind %s", c.Kind)
	}
}

// verifyNul implements the __verify_nul wrapper helper: the string must
// contain a NUL before its bounds end.
func (m *Machine) verifyNul(v Value) {
	if v.P == 0 {
		m.trapf("null", "__verify_nul of null string")
	}
	limit := uint32(1 << 20)
	if v.B != 0 && v.E > v.P {
		limit = v.E - v.P
	}
	for i := uint32(0); i < limit; i++ {
		b, err := m.mem.ReadInt(v.P+i, 1, false)
		m.check(err)
		if b == 0 {
			return
		}
	}
	m.trapf("bounds", "__verify_nul: string is not NUL-terminated within bounds")
}
