package corpus

// ftpd-BSD-like daemon (Figure 9 and the exploit experiment). The command
// loop, path handling, and a glob matcher mirror the real daemon's pointer
// behaviour. replydirname contains the daemon's known one-byte buffer
// overflow (quote-doubling can run one past the buffer): benign sessions
// never reach it, and the exploit session in ExploitInput triggers it —
// raw execution corrupts the adjacent state, cured execution traps.

// FtpdExploitInput is a session whose CWD path overflows replydirname.
const FtpdExploitInput = "USER anonymous\nPASS guest\n" +
	"CWD /aaaaaaaaaaaaaaaaaaaaaaaaaa\"\nPWD\nQUIT\n"

// FtpdBenignInput is a normal session.
const FtpdBenignInput = "USER anonymous\nPASS guest\nPWD\nCWD /pub\nPWD\n" +
	"LIST *\nRETR readme.txt\nLIST *.tar\nQUIT\n"

var _ = register(&Program{
	Name:     "ftpd",
	Category: "daemon",
	Desc:     "ftpd-BSD-like: command loop, glob, vulnerable replydirname",
	Source: Prelude + `
enum { SCALE = 2, PATHMAX = 28, LINEMAX = 128, NFILES = 6 };

extern int getchar(void);

struct ftp_state {
    int logged_in;
    int want_pass;
    char user[32];
    char cwd[64];
    int xfers;
    int bytes;
};

struct ftp_file {
    char *name;
    int size;
};

struct ftp_file files[NFILES] = {
    { "readme.txt", 420 },
    { "index.html", 1300 },
    { "data.tar", 5120 },
    { "notes.tar", 2048 },
    { "core", 9000 },
    { "motd", 64 },
};

struct ftp_state st;

/* the known vulnerability: quote doubling can push i one past the buffer */
void replydirname(char *name, char *message) {
    char npath[PATHMAX];
    int i;
    for (i = 0; *name != 0 && i < PATHMAX; i++, name++) {
        npath[i] = *name;
        if (*name == '"') {
            i++;            /* double the quote */
            if (i < PATHMAX) npath[i] = '"';
        }
    }
    npath[i] = 0;           /* off-by-one when i == PATHMAX */
    printf("257 \"%s\" %s\n", npath, message);
}

/* fnmatch-like glob: supports * and ? */
int glob_match(char *pat, char *str) {
    while (*pat) {
        if (*pat == '*') {
            pat++;
            if (*pat == 0) return 1;
            while (*str) {
                if (glob_match(pat, str)) return 1;
                str++;
            }
            return 0;
        }
        if (*str == 0) return 0;
        if (*pat != '?' && *pat != *str) return 0;
        pat++;
        str++;
    }
    return *str == 0;
}

void do_list(char *pattern) {
    int i, shown = 0;
    for (i = 0; i < NFILES; i++) {
        if (glob_match(pattern, files[i].name)) {
            printf("-rw-r--r-- %6d %s\n", files[i].size, files[i].name);
            shown++;
        }
    }
    printf("226 %d entries\n", shown);
}

void do_retr(char *name) {
    char chunk[64];
    int i;
    for (i = 0; i < NFILES; i++) {
        if (strcmp(files[i].name, name) == 0) {
            int left = files[i].size;
            while (left > 0) {
                int n = left > 64 ? 64 : left;
                memset(chunk, 'D', n);
                sim_send(chunk, n);
                left -= n;
                st.bytes += n;
            }
            st.xfers++;
            printf("226 sent %d bytes\n", files[i].size);
            return;
        }
    }
    printf("550 no such file\n");
}

int read_line(char *buf, int max) {
    int i = 0, c;
    for (;;) {
        c = getchar();
        if (c < 0) {
            buf[i] = 0;
            return i > 0 ? i : -1;
        }
        if (c == '\n') {
            buf[i] = 0;
            return i;
        }
        if (i < max - 1) buf[i] = (char)c;
        if (i < max - 1) i++;
    }
}

void dispatch(char *line) {
    char *arg = strchr(line, ' ');
    if (arg) { *arg = 0; arg++; } else { arg = line + strlen(line); }

    if (strcmp(line, "USER") == 0) {
        strncpy(st.user, arg, 31);
        st.user[31] = 0;
        st.want_pass = 1;
        printf("331 password required for %s\n", st.user);
    } else if (strcmp(line, "PASS") == 0) {
        if (st.want_pass) {
            st.logged_in = 1;
            printf("230 user %s logged in\n", st.user);
        } else {
            printf("503 login with USER first\n");
        }
    } else if (!st.logged_in) {
        printf("530 please login\n");
    } else if (strcmp(line, "CWD") == 0) {
        strncpy(st.cwd, arg, 63);
        st.cwd[63] = 0;
        replydirname(st.cwd, "directory changed");
    } else if (strcmp(line, "PWD") == 0) {
        replydirname(st.cwd, "is current directory");
    } else if (strcmp(line, "LIST") == 0) {
        do_list(*arg ? arg : "*");
    } else if (strcmp(line, "RETR") == 0) {
        do_retr(arg);
    } else if (strcmp(line, "QUIT") == 0) {
        printf("221 goodbye (%d transfers, %d bytes)\n", st.xfers, st.bytes);
    } else {
        printf("500 unknown command %s\n", line);
    }
}

void builtin_session(void) {
    /* the benign load used for timing when no stdin script is given */
    char cmd[LINEMAX];
    int iter, i;
    char *script[9];
    script[0] = "USER bench";
    script[1] = "PASS x";
    script[2] = "PWD";
    script[3] = "CWD /pub/data";
    script[4] = "PWD";
    script[5] = "LIST *";
    script[6] = "RETR data.tar";
    script[7] = "LIST *.tar";
    script[8] = "RETR readme.txt";
    for (iter = 0; iter < SCALE * 8; iter++) {
        st.logged_in = 0;
        st.want_pass = 0;
        strcpy(st.cwd, "/");
        for (i = 0; i < 9; i++) {
            strcpy(cmd, script[i]);
            dispatch(cmd);
        }
    }
}

int main(void) {
    char line[LINEMAX];
    int got_input = 0;
    strcpy(st.cwd, "/");
    printf("220 gocured ftpd ready\n");
    while (read_line(line, LINEMAX) >= 0) {
        got_input = 1;
        dispatch(line);
        if (strcmp(line, "QUIT") == 0) return 0;
    }
    if (!got_input) builtin_session();
    printf("221 done\n");
    return 0;
}
`,
})
