package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gocured/internal/flight"
	"gocured/internal/pipeline"
	"gocured/internal/trace"
)

// stubServer mimics just enough of ccserve's surface for the generator:
// /cure (classifying hit vs miss by request name), /readyz, /metrics,
// /traces/{id}, and an /events SSE stream with a deliberate seq gap.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var cures atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/cure", func(w http.ResponseWriter, r *http.Request) {
		cures.Add(1)
		body, _ := io.ReadAll(r.Body)
		var req struct {
			Name   string `json:"name"`
			Source string `json:"source"`
		}
		if err := json.Unmarshal(body, &req); err != nil || req.Source == "" {
			http.Error(w, "bad request", http.StatusBadRequest)
			return
		}
		hit := req.Name == "load-hit.c" || req.Name == "load-run.c"
		// Adopt inbound W3C trace context like the real server does.
		id, ok := trace.ParseTraceparent(r.Header.Get("Traceparent"))
		if !ok {
			id = trace.NewID()
		}
		tier := "compile"
		if hit {
			tier = "memory"
		}
		if !hit {
			time.Sleep(2 * time.Millisecond) // misses are the slow path
		}
		w.Header().Set("X-Trace-Id", id)
		w.Header().Set("Traceparent", trace.Traceparent(id))
		json.NewEncoder(w).Encode(map[string]any{
			"trace_id": id, "cache_hit": hit, "tier": tier,
		})
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(pipeline.Metrics{})
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/traces/")
		spans := []trace.Span{
			{Name: "request", StartMS: 0, DurMS: 10, Depth: 0},
			{Name: "queue-wait", StartMS: 0, DurMS: 1, Depth: 1},
			{Name: "compile", StartMS: 1, DurMS: 8, Depth: 1},
			{Name: "cache-compile", StartMS: 1, DurMS: 0.01, Depth: 2},
			{Name: "parse", StartMS: 1.1, DurMS: 1, Depth: 2},
			{Name: "sema", StartMS: 2.2, DurMS: 1, Depth: 2},
			{Name: "lower", StartMS: 3.3, DurMS: 1, Depth: 2},
			{Name: "infer", StartMS: 4.4, DurMS: 1, Depth: 2},
			{Name: "instrument", StartMS: 5.5, DurMS: 1, Depth: 2},
		}
		flight.WriteSpanTrace(w, "trace "+id, spans, map[string]any{"trace_id": id})
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		// Seqs 1, 2, 5: one gap hiding two dropped events.
		for _, seq := range []int{1, 2, 5} {
			fmt.Fprintf(w, "event: job_done\ndata: {\"seq\":%d}\n\n", seq)
		}
		fl.Flush()
		<-r.Context().Done()
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &cures
}

func TestRunClosedLoop(t *testing.T) {
	srv, cures := stubServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:     srv.URL,
		Duration:    400 * time.Millisecond,
		Concurrency: 4,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 || int64(res.Requests) != cures.Load() {
		t.Fatalf("requests = %d, server saw %d", res.Requests, cures.Load())
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0", res.Errors)
	}
	if res.ThroughputRPS <= 0 {
		t.Fatalf("throughput = %v", res.ThroughputRPS)
	}
	for _, class := range []string{"hit", "run", "cure", "edit"} {
		cr, ok := res.Classes[class]
		if !ok || cr.Requests == 0 {
			t.Fatalf("class %q missing or empty: %+v", class, res.Classes)
		}
		if class == "hit" && cr.CacheHits != cr.Requests {
			t.Fatalf("hit class: %d hits of %d requests", cr.CacheHits, cr.Requests)
		}
	}
	if !(res.P50MS <= res.P99MS && res.P99MS <= res.P999MS) {
		t.Fatalf("quantiles out of order: p50=%v p99=%v p999=%v", res.P50MS, res.P99MS, res.P999MS)
	}
	if res.SlowestMissTraceID == "" || !trace.ValidID(res.SlowestMissTraceID) {
		t.Fatalf("no slowest-miss trace sampled: %+v", res)
	}
	if res.SlowestMissClass == "hit" || res.SlowestMissClass == "run" {
		t.Fatalf("slowest miss attributed to cache-hit class %q", res.SlowestMissClass)
	}
	if res.TraceparentSent != res.Requests {
		t.Fatalf("traceparent sent on %d of %d requests", res.TraceparentSent, res.Requests)
	}
	if res.TraceparentEchoMismatch != 0 {
		t.Fatalf("%d traceparent echo mismatches against an adopting server", res.TraceparentEchoMismatch)
	}
}

// TestTraceparentEchoMismatch drives the generator against servers that
// break the W3C round trip — one echoing a foreign trace-id, one echoing
// nothing — and expects every response to be counted as a mismatch.
func TestTraceparentEchoMismatch(t *testing.T) {
	cases := map[string]func(w http.ResponseWriter, id string){
		"foreign-id": func(w http.ResponseWriter, id string) {
			w.Header().Set("Traceparent", trace.Traceparent(trace.NewID()))
		},
		"no-echo": func(w http.ResponseWriter, id string) {},
	}
	for name, mangle := range cases {
		t.Run(name, func(t *testing.T) {
			mux := http.NewServeMux()
			mux.HandleFunc("/cure", func(w http.ResponseWriter, r *http.Request) {
				id := trace.NewID()
				mangle(w, id)
				json.NewEncoder(w).Encode(map[string]any{
					"trace_id": id, "cache_hit": true, "tier": "memory",
				})
			})
			srv := httptest.NewServer(mux)
			defer srv.Close()

			res, err := Run(context.Background(), Config{
				BaseURL:     srv.URL,
				Duration:    200 * time.Millisecond,
				Concurrency: 2,
				Mix:         map[string]int{"hit": 1},
				Seed:        3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Requests == 0 {
				t.Fatal("no requests issued")
			}
			if res.TraceparentEchoMismatch != res.Requests {
				t.Fatalf("mismatches = %d, want %d (every response)", res.TraceparentEchoMismatch, res.Requests)
			}
		})
	}
}

func TestRunOpenLoop(t *testing.T) {
	srv, _ := stubServer(t)
	res, err := Run(context.Background(), Config{
		BaseURL:    srv.URL,
		Duration:   400 * time.Millisecond,
		RatePerSec: 200,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 20 {
		t.Fatalf("open loop at 200/s for 400ms made only %d requests", res.Requests)
	}
	if res.RatePerSec != 200 {
		t.Fatalf("RatePerSec = %v", res.RatePerSec)
	}
}

func TestRunEmptyMixRejected(t *testing.T) {
	srv, _ := stubServer(t)
	_, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Mix:     map[string]int{},
	})
	if err == nil {
		t.Fatal("empty mix accepted")
	}
}

func TestWaitReady(t *testing.T) {
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if err := WaitReady(context.Background(), nil, srv.URL, 5*time.Second); err != nil {
		t.Fatalf("WaitReady: %v", err)
	}
	if calls.Load() < 3 {
		t.Fatalf("readyz polled %d times, want >= 3", calls.Load())
	}
}

func TestWaitReadyTimeout(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "never ready", http.StatusServiceUnavailable)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	err := WaitReady(context.Background(), nil, srv.URL, 300*time.Millisecond)
	if err == nil {
		t.Fatal("WaitReady succeeded against a 503 server")
	}
	if !strings.Contains(err.Error(), "not ready") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckTrace(t *testing.T) {
	srv, _ := stubServer(t)
	id := trace.NewID()
	tc := CheckTrace(context.Background(), nil, srv.URL, id, RequiredCompileSpans)
	if !tc.OK {
		t.Fatalf("trace check failed: %+v", tc)
	}
	if tc.Events == 0 || len(tc.Spans) == 0 {
		t.Fatalf("no events/spans recorded: %+v", tc)
	}

	// Empty ID is a clean failure, not a panic.
	tc = CheckTrace(context.Background(), nil, srv.URL, "", RequiredCompileSpans)
	if tc.OK || tc.Err == "" {
		t.Fatalf("empty trace ID should fail: %+v", tc)
	}

	// A trace missing required spans fails with the missing list populated.
	tc = CheckTrace(context.Background(), nil, srv.URL, id, append([]string{"no-such-span"}, RequiredCompileSpans...))
	if tc.OK {
		t.Fatal("trace check passed despite missing span")
	}
	found := false
	for _, m := range tc.Missing {
		if m == "no-such-span" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing list %v lacks no-such-span", tc.Missing)
	}
}

func TestCheckTraceIDMismatch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		spans := []trace.Span{{Name: "request", DurMS: 1}}
		flight.WriteSpanTrace(w, "t", spans, map[string]any{"trace_id": "deadbeefdeadbeef"})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	tc := CheckTrace(context.Background(), nil, srv.URL, trace.NewID(), nil)
	if tc.OK || !strings.Contains(tc.Err, "mismatch") {
		t.Fatalf("want trace_id mismatch, got %+v", tc)
	}
}

func TestWatchEventsCountsSeqGaps(t *testing.T) {
	srv, _ := stubServer(t)
	w := WatchEvents(context.Background(), nil, srv.URL)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		w.mu.Lock()
		seen := w.stats.Seen
		w.mu.Unlock()
		if seen >= 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := w.Stop()
	if st.Seen != 3 {
		t.Fatalf("seen = %d, want 3 (%+v)", st.Seen, st)
	}
	if st.SeqGaps != 1 || st.Dropped != 2 {
		t.Fatalf("gaps/dropped = %d/%d, want 1/2", st.SeqGaps, st.Dropped)
	}
	if st.Err != "" {
		t.Fatalf("unexpected watcher error: %s", st.Err)
	}
}

func TestFetchHistory(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("window") != "5m0s" {
			http.Error(w, "want window=5m0s", http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(pipeline.HistoryDump{
			IntervalMS: 10000,
			Points:     []pipeline.HistoryPoint{{UnixMS: 1}, {UnixMS: 2}},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	d, err := FetchHistory(context.Background(), nil, srv.URL, 5*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if d.IntervalMS != 10000 || len(d.Points) != 2 {
		t.Fatalf("unexpected dump: %+v", d)
	}
}

func TestWaitSLOState(t *testing.T) {
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		state := "page"
		if polls.Add(1) >= 3 {
			state = "ok"
		}
		json.NewEncoder(w).Encode(pipeline.Metrics{
			SLOs: []pipeline.SLOStatus{{
				SLOSpec: pipeline.SLOSpec{Name: "availability"},
				State:   state,
			}},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	states, err := WaitSLOState(context.Background(), nil, srv.URL, map[string]bool{"ok": true}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(states) != 1 || states[0].State != "ok" {
		t.Fatalf("final states: %+v", states)
	}

	// A state the server never reaches times out with the last states
	// attached.
	_, err = WaitSLOState(context.Background(), nil, srv.URL, map[string]bool{"warn": true}, 400*time.Millisecond)
	if err == nil {
		t.Fatal("WaitSLOState succeeded for an unreachable state")
	}
}

func TestFetchMetrics(t *testing.T) {
	srv, _ := stubServer(t)
	m, err := FetchMetrics(context.Background(), nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil metrics")
	}
}

func TestProgSourceClasses(t *testing.T) {
	g := &gen{}
	// hit and run share a source (and thus, at the server, a compile-cache
	// key modulo name); cure and edit vary per call.
	h1, h2 := g.body("hit"), g.body("hit")
	if string(h1) != string(h2) {
		t.Fatal("hit class should be deterministic")
	}
	c1, c2 := g.body("cure"), g.body("cure")
	if string(c1) == string(c2) {
		t.Fatal("cure class should vary per request")
	}
	e1, e2 := g.body("edit"), g.body("edit")
	if string(e1) == string(e2) {
		t.Fatal("edit class should vary per request")
	}
	// The edit class must keep stable_sum's text fixed while varying
	// edited(): check the stable region is shared.
	var r1, r2 struct{ Source string }
	json.Unmarshal(e1, &r1)
	json.Unmarshal(e2, &r2)
	stable := "a[i] = i + 1;"
	if !strings.Contains(r1.Source, stable) || !strings.Contains(r2.Source, stable) {
		t.Fatal("edit class mutated the stable function")
	}
}
