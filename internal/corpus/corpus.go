// Package corpus contains the benchmark C programs used to reproduce the
// paper's evaluation. Each program is written in gocured's C subset and
// mirrors the pointer idioms of the system the paper measured: the Apache
// modules are string-processing request handlers, the daemons exercise
// buffers, parsers and polymorphic containers, ijpeg is an object-oriented
// program with a large physical-subtype hierarchy, and the micro suite
// reproduces the Spec95/Olden/Ptrdist pointer behaviours (em3d is the
// pointer-dense split-overhead outlier).
package corpus

import (
	"fmt"
	"regexp"
	"sort"
)

// Program is one corpus entry.
type Program struct {
	Name     string
	Category string // apache, driver, daemon, spec, olden, ptrdist
	Desc     string
	Source   string
	// TrustBadCasts mirrors the paper's bind methodology: remaining bad
	// casts are trusted rather than WILD.
	TrustBadCasts bool
	// WantStdout, if non-empty, is the expected output at the default
	// scale (used by tests to validate raw/cured agreement).
	WantStdout string
}

var registry = map[string]*Program{}

func register(p *Program) *Program {
	if _, dup := registry[p.Name]; dup {
		panic("duplicate corpus program " + p.Name)
	}
	registry[p.Name] = p
	return p
}

// ByName returns a corpus program or nil.
func ByName(name string) *Program { return registry[name] }

// All returns every corpus program sorted by name.
func All() []*Program {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Program, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// ByCategory returns programs in a category, sorted by name.
func ByCategory(cat string) []*Program {
	var out []*Program
	for _, p := range All() {
		if p.Category == cat {
			out = append(out, p)
		}
	}
	return out
}

var scaleRe = regexp.MustCompile(`SCALE = \d+`)

// WithScale returns the program source with its SCALE constant replaced, so
// benchmarks can lengthen runs without recompiling the corpus.
func WithScale(p *Program, scale int) string {
	return scaleRe.ReplaceAllString(p.Source, fmt.Sprintf("SCALE = %d", scale))
}

// Prelude declares the external library functions available to corpus
// programs (the "precompiled C library" boundary).
const Prelude = `
extern void *malloc(unsigned int n);
extern void *calloc(unsigned int n, unsigned int size);
extern void *realloc(void *p, unsigned int n);
extern void free(void *p);
extern void *memcpy(void *dst, void *src, unsigned int n);
extern void *memset(void *dst, int c, unsigned int n);
extern int memcmp(void *a, void *b, unsigned int n);
extern int strlen(char *s);
extern char *strcpy(char *dst, char *src);
extern char *strncpy(char *dst, char *src, unsigned int n);
extern char *strcat(char *dst, char *src);
extern int strcmp(char *a, char *b);
extern int strncmp(char *a, char *b, unsigned int n);
extern char *strchr(char *s, int c);
extern char *strrchr(char *s, int c);
extern char *strstr(char *hay, char *needle);
extern char *strdup(char *s);
extern int printf(char *fmt, ...);
extern int sprintf(char *buf, char *fmt, ...);
extern int snprintf(char *buf, unsigned int n, char *fmt, ...);
extern int puts(char *s);
extern int putchar(int c);
extern int atoi(char *s);
extern int abs(int v);
extern int rand(void);
extern void srand(unsigned int seed);
extern void exit(int code);
extern void qsort(void *base, unsigned int n, unsigned int size,
                  int (*cmp)(void *a, void *b));
extern double sqrt(double x);
extern int sim_recv(char *buf, unsigned int n);
extern int sim_send(char *buf, unsigned int n);
`
