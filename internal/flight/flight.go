// Package flight is gocured's flight recorder: a low-overhead, fixed-size
// ring-buffer event log of what a cured program (and the pipeline driving
// it) actually did over time. Producers record Events into per-goroutine
// Rings — the interpreter owns one ring per Machine, the pipeline one ring
// per worker slot — with no locks on the record path; a Recorder is just
// the registry that collects rings for export. Exporters (export.go)
// render rings as Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing) and as a step-sampling profile (profile.go); on a
// trap, Snapshot cuts a "black box": the last events leading up to and
// including the trap.
//
// The disabled-path contract is one branch: every instrumentation point in
// the interpreter is `if m.rec != nil { record }`. A Ring is single-
// producer (the goroutine that owns it); reading a ring while its producer
// is live is racy and unsupported — export after the run, or own the
// synchronization (the pipeline's checkout/release discipline does).
package flight

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// EvKind classifies one recorded event.
type EvKind uint8

// Event kinds.
const (
	// EvCheck: one run-time check executed (Site identifies it).
	EvCheck EvKind = iota
	// EvTrap: a memory-safety trap fired (Name = trap kind, Pos = site).
	EvTrap
	// EvAlloc: heap allocation (Name = allocator, Arg = size in bytes).
	EvAlloc
	// EvFree: heap free (Arg = address).
	EvFree
	// EvPack: fat-pointer metadata fabricated at a widening conversion
	// (SAFE->SEQ bounds, ->WILD base adoption); Name says which.
	EvPack
	// EvUnpack: fat-pointer metadata checked+stripped at a narrowing
	// conversion (SEQ/WILD -> SAFE/RTTI).
	EvUnpack
	// EvCall / EvRet: interpreter frame push/pop (Name = function). These
	// become B/E duration pairs in the Chrome trace, so the track renders
	// the cured call stack over time.
	EvCall
	EvRet
	// EvWrapper: call into a library builtin / CCured wrapper (Name = fn).
	EvWrapper
	// EvBegin / EvEnd: generic phase or job boundary (pipeline workers,
	// compile phases). Rendered as B/E pairs like frames.
	EvBegin
	EvEnd
	// EvSample: step-sampling profile hit (Pos = source line). Present in
	// the trace as instants; the aggregate lives in Profile.
	EvSample
	// EvMark: one-off instant annotation (Name says what).
	EvMark
)

var evNames = [...]string{"check", "trap", "alloc", "free", "pack", "unpack",
	"call", "ret", "wrapper", "begin", "end", "sample", "mark"}

func (k EvKind) String() string {
	if int(k) < len(evNames) {
		return evNames[k]
	}
	return fmt.Sprintf("ev(%d)", int(k))
}

// Event is one recorded occurrence. TS is a monotonic per-ring timestamp:
// interpreter rings use simulated cycles (deterministic), pipeline rings
// use microseconds since the recorder started. Site indexes the ring's
// site table (1-based; 0 = no site).
type Event struct {
	TS   uint64
	Kind EvKind
	Site int32
	Name string
	Pos  string
	Arg  uint64
}

// Site describes one static check site referenced by Event.Site.
type Site struct {
	Pos  string
	Kind string
}

// DefaultRingCap is the default ring capacity in events. At 24 bytes of
// header plus two string headers per event this is well under 1 MiB per
// ring, and deep enough that a trap snapshot always has its preceding
// context (see DESIGN.md).
const DefaultRingCap = 8192

// Ring is one fixed-size single-producer event buffer.
type Ring struct {
	track string
	buf   []Event
	n     uint64 // total events ever recorded
	sites []Site
}

// NewRing builds a standalone ring (capacity <= 0 selects DefaultRingCap).
func NewRing(capacity int, track string) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{track: track, buf: make([]Event, capacity)}
}

// Record appends one event, overwriting the oldest once full. It never
// allocates and takes no locks; only the owning goroutine may call it.
func (r *Ring) Record(e Event) {
	r.buf[r.n%uint64(len(r.buf))] = e
	r.n++
}

// Track returns the ring's display name.
func (r *Ring) Track() string { return r.track }

// Len returns the number of live (retained) events.
func (r *Ring) Len() int {
	if r.n < uint64(len(r.buf)) {
		return int(r.n)
	}
	return len(r.buf)
}

// Dropped returns how many events wraparound overwrote.
func (r *Ring) Dropped() uint64 {
	if r.n < uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, r.Len())
	start := uint64(0)
	if r.n > uint64(len(r.buf)) {
		start = r.n - uint64(len(r.buf))
	}
	for i := start; i < r.n; i++ {
		out = append(out, r.buf[i%uint64(len(r.buf))])
	}
	return out
}

// SetSites attaches the static check-site table events reference by ID.
func (r *Ring) SetSites(sites []Site) { r.sites = sites }

// Sites returns the attached site table.
func (r *Ring) Sites() []Site { return r.sites }

// site resolves a 1-based site ID, or nil.
func (r *Ring) site(id int32) *Site {
	if id <= 0 || int(id) > len(r.sites) {
		return nil
	}
	return &r.sites[id-1]
}

// FormatEvent renders one event as a single human-readable line (the black
// box format): "ts=1042 check seq at ftpd.c:120:7".
func (r *Ring) FormatEvent(e Event) string {
	var detail string
	switch e.Kind {
	case EvCheck:
		if s := r.site(e.Site); s != nil {
			detail = fmt.Sprintf("%s at %s", s.Kind, s.Pos)
		} else {
			detail = "?"
		}
	case EvTrap:
		detail = e.Name
		if e.Pos != "" {
			detail += " at " + e.Pos
		}
	case EvAlloc:
		detail = fmt.Sprintf("%s(%d)", e.Name, e.Arg)
	case EvFree:
		detail = fmt.Sprintf("0x%x", e.Arg)
	case EvPack, EvUnpack:
		detail = e.Name
	case EvCall, EvRet, EvWrapper, EvBegin, EvEnd, EvMark:
		detail = e.Name
	case EvSample:
		detail = e.Pos
	}
	return fmt.Sprintf("ts=%d %s %s", e.TS, e.Kind, detail)
}

// BlackBox is the trap-time snapshot the recorder dumps: the last events
// leading up to and including the trap, plus the trap's attribution (the
// cured call stack and the inference blame chain, both carried over from
// the trap record).
type BlackBox struct {
	TrapKind string   `json:"trap_kind,omitempty"`
	TrapPos  string   `json:"trap_pos,omitempty"`
	Events   []string `json:"events"`
	Stack    []string `json:"stack,omitempty"`
	Blame    []string `json:"blame,omitempty"`
	// DroppedEvents counts events the ring had already overwritten before
	// the snapshot window.
	DroppedEvents uint64 `json:"dropped_events,omitempty"`
}

// Snapshot cuts a black box out of the ring: up to n events ending at the
// last recorded trap event (or at the newest event when nothing trapped),
// rendered oldest-first. Events recorded after the trap (frame pops during
// unwinding) are excluded so the window is "the instants before the trap".
func Snapshot(r *Ring, n int) *BlackBox {
	if r == nil {
		return nil
	}
	if n <= 0 {
		n = 128
	}
	evs := r.Events()
	end := len(evs) // exclusive
	bb := &BlackBox{DroppedEvents: r.Dropped()}
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == EvTrap {
			end = i + 1
			bb.TrapKind = evs[i].Name
			bb.TrapPos = evs[i].Pos
			break
		}
	}
	lo := end - n
	if lo < 0 {
		lo = 0
	}
	for _, e := range evs[lo:end] {
		bb.Events = append(bb.Events, r.FormatEvent(e))
	}
	return bb
}

// Recorder is a registry of rings plus the shared wall-clock epoch for
// rings whose producers are real goroutines (pipeline workers). Checkout
// and Release implement a worker-slot discipline: a bounded pool of
// concurrent producers reuses a bounded set of rings, one track per slot.
type Recorder struct {
	mu      sync.Mutex
	rings   []*Ring
	free    []*Ring
	ringCap int
	t0      time.Time
}

// NewRecorder builds a recorder whose rings hold capacity events each
// (<= 0 selects DefaultRingCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Recorder{ringCap: capacity, t0: time.Now()}
}

// NowMicros returns microseconds since the recorder started — the TS unit
// for wall-clock rings.
func (rec *Recorder) NowMicros() uint64 {
	return uint64(time.Since(rec.t0) / time.Microsecond)
}

// NewRing creates and registers a ring with its own track name.
func (rec *Recorder) NewRing(track string) *Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	r := NewRing(rec.ringCap, track)
	rec.rings = append(rec.rings, r)
	return r
}

// Checkout hands out a free worker ring, creating "worker-N" rings on
// demand. The caller owns the ring until Release.
func (rec *Recorder) Checkout() *Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if n := len(rec.free); n > 0 {
		r := rec.free[n-1]
		rec.free = rec.free[:n-1]
		return r
	}
	r := NewRing(rec.ringCap, fmt.Sprintf("worker-%d", len(rec.rings)))
	rec.rings = append(rec.rings, r)
	return r
}

// Release returns a checked-out ring to the pool.
func (rec *Recorder) Release(r *Ring) {
	if r == nil {
		return
	}
	rec.mu.Lock()
	rec.free = append(rec.free, r)
	rec.mu.Unlock()
}

// Rings snapshots the registered rings, in a stable (track-name) order.
func (rec *Recorder) Rings() []*Ring {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	out := make([]*Ring, len(rec.rings))
	copy(out, rec.rings)
	sort.SliceStable(out, func(i, j int) bool { return out[i].track < out[j].track })
	return out
}
