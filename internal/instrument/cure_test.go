package instrument_test

import (
	"strings"
	"testing"

	"gocured/internal/cil"
	"gocured/internal/core"
	"gocured/internal/corpus"
	"gocured/internal/infer"
	"gocured/internal/instrument"
	"gocured/internal/interp"
	"gocured/internal/wrappers"
)

func build(t *testing.T, src string, opts infer.Options) *core.Unit {
	t.Helper()
	u, err := core.Build("t.c", src, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return u
}

func TestChecksInserted(t *testing.T) {
	u := build(t, corpus.Prelude+`
int sum(int *p, int n) {
    int i, t = 0;
    for (i = 0; i < n; i++) t += p[i];
    return t;
}
int main(void) {
    int *a = (int *)malloc(10 * sizeof(int));
    int i;
    for (i = 0; i < 10; i++) a[i] = i;
    return sum(a, 10);
}
`, infer.Options{})
	total := 0
	for _, n := range u.Cured.ChecksInserted {
		total += n
	}
	if total == 0 {
		t.Fatal("no checks inserted")
	}
	if u.Cured.ChecksInserted[cil.CheckSeq] == 0 {
		t.Error("expected SEQ bounds checks for the indexed pointer")
	}
}

func TestCuredLayoutSizes(t *testing.T) {
	u := build(t, corpus.Prelude+`
struct S { int x; int *p; char c; };
struct S *g;
int main(void) {
    g = (struct S *)malloc(sizeof(struct S));
    g->p = (int *)malloc(4 * sizeof(int));
    g->p[2] = 5;
    return g->p[2];
}
`, infer.Options{})
	var sTy *cil.Global
	for _, gl := range u.Cured.Prog.Globals {
		if gl.Var.Name == "g" {
			sTy = gl
		}
	}
	if sTy == nil {
		t.Fatal("missing global g")
	}
	elem := sTy.Var.Type.Elem
	cured := u.Cured.Lay.Sizeof(elem)
	raw := instrument.RawLayout{}.Sizeof(elem)
	// p is indexed, so it is SEQ (3 words instead of 1): the cured struct
	// must be larger than the C struct.
	if cured <= raw {
		t.Errorf("cured sizeof = %d, want > raw %d (SEQ field must widen)", cured, raw)
	}
}

func TestWrapperRedirection(t *testing.T) {
	// Figure 3's strchr wrapper: calls to strchr are replaced by the
	// wrapper, whose own strchr call reaches the library.
	src := corpus.Prelude + wrappers.Source + `
int main(void) {
    char *s = "hello, world";
    char *comma = strchr(s, ',');
    if (comma == 0) return 1;
    puts(comma + 2);
    return 0;
}
`
	u := build(t, src, infer.Options{})
	// The instrumented main must call strchr_wrapper.
	mainFn := u.Cured.Prog.Lookup("main")
	sawWrapper := false
	cil.WalkInstrs(mainFn.Body.Stmts, func(i cil.Instr) {
		if c, ok := i.(*cil.Call); ok {
			if fc, ok := c.Fn.(*cil.FnConst); ok && fc.Name == "strchr_wrapper" {
				sawWrapper = true
			}
		}
	})
	if !sawWrapper {
		t.Error("main's strchr call was not redirected to strchr_wrapper")
	}
	// Inside the wrapper, the call must still reach strchr itself.
	w := u.Cured.Prog.Lookup("strchr_wrapper")
	sawReal := false
	cil.WalkInstrs(w.Body.Stmts, func(i cil.Instr) {
		if c, ok := i.(*cil.Call); ok {
			if fc, ok := c.Fn.(*cil.FnConst); ok && fc.Name == "strchr" {
				sawReal = true
			}
		}
	})
	if !sawReal {
		t.Error("wrapper's own strchr call must not be redirected")
	}
	// And it runs correctly cured.
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("cured trap: %v", out.Trap)
	}
	if !strings.Contains(out.Stdout, "world") {
		t.Errorf("stdout = %q", out.Stdout)
	}
}

func TestWrapperVerifyNulTraps(t *testing.T) {
	// A wrapper precondition failure: strlen of a string with no NUL
	// inside its bounds must trap in __verify_nul.
	src := corpus.Prelude + wrappers.Source + `
int main(void) {
    char buf[8];
    int i;
    for (i = 0; i < 8; i++) buf[i] = 'x';   /* no terminator */
    return strlen_wrapper(buf);
}
`
	u := build(t, src, infer.Options{})
	out, err := u.RunCured(interp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap == nil {
		t.Fatal("expected __verify_nul to trap on the unterminated string")
	}
}

func TestWrapperNames(t *testing.T) {
	names := wrappers.Names()
	if len(names) < 8 {
		t.Errorf("wrapper set too small: %v", names)
	}
	want := map[string]bool{"strchr": false, "strcpy": false, "strlen": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("missing wrapper for %s", n)
		}
	}
}

func TestCheckPositionsCarrySource(t *testing.T) {
	u := build(t, corpus.Prelude+`
int main(void) {
    int *p = (int *)malloc(8);
    *p = 3;
    return *p;
}
`, infer.Options{})
	found := false
	for _, f := range u.Cured.Prog.Funcs {
		cil.WalkInstrs(f.Body.Stmts, func(i cil.Instr) {
			if c, ok := i.(*cil.Check); ok && c.Position().IsValid() {
				found = true
			}
		})
	}
	if !found {
		t.Error("checks should carry source positions for diagnostics")
	}
}
