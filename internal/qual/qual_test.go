package qual

import (
	"testing"
	"testing/quick"

	"gocured/internal/ctypes"
)

func TestNodeForCreatesOncePerOccurrence(t *testing.T) {
	g := NewGraph()
	p1 := ctypes.PointerTo(ctypes.IntT())
	p2 := ctypes.PointerTo(ctypes.IntT())
	n1 := g.NodeFor(p1)
	n1b := g.NodeFor(p1)
	n2 := g.NodeFor(p2)
	if n1 != n1b {
		t.Error("same occurrence must map to one node")
	}
	if n1 == n2 {
		t.Error("distinct occurrences must get distinct nodes")
	}
	if p1.Node == 0 || p1.Node == p2.Node {
		t.Error("occurrences must record distinct node ids")
	}
	if g.NodeFor(ctypes.IntT()) != nil {
		t.Error("non-pointer types have no nodes")
	}
}

func TestUnionMergesFacts(t *testing.T) {
	g := NewGraph()
	a := g.NodeFor(ctypes.PointerTo(ctypes.IntT()))
	b := g.NodeFor(ctypes.PointerTo(ctypes.IntT()))
	a.MarkArith()
	b.MarkIntCast()
	g.Union(a, b)
	r := a.Find()
	if r != b.Find() {
		t.Fatal("union did not merge classes")
	}
	if !r.Arith || !r.IntCast {
		t.Error("facts must merge into the representative")
	}
}

func TestAnnotationsSeedForced(t *testing.T) {
	g := NewGraph()
	ty := ctypes.PointerTo(ctypes.IntT())
	ty.Ann = ctypes.AnnWild
	n := g.NodeFor(ty)
	if n.Forced != Wild {
		t.Errorf("forced = %v, want Wild", n.Forced)
	}
}

func TestFlowEdges(t *testing.T) {
	g := NewGraph()
	a := g.NodeFor(ctypes.PointerTo(ctypes.IntT()))
	b := g.NodeFor(ctypes.PointerTo(ctypes.IntT()))
	g.Flow(a, b)
	if len(a.FlowsOut()) != 1 || a.FlowsOut()[0].Find() != b.Find() {
		t.Error("flow edge missing from source")
	}
	if len(b.FlowsIn()) != 1 {
		t.Error("flow edge missing from destination")
	}
}

func TestRepsAfterUnions(t *testing.T) {
	g := NewGraph()
	var nodes []*Node
	for i := 0; i < 6; i++ {
		nodes = append(nodes, g.NodeFor(ctypes.PointerTo(ctypes.IntT())))
	}
	g.Union(nodes[0], nodes[1])
	g.Union(nodes[2], nodes[3])
	g.Union(nodes[0], nodes[2])
	reps := g.Reps()
	if len(reps) != 3 { // {0,1,2,3}, {4}, {5}
		t.Errorf("reps = %d, want 3", len(reps))
	}
}

// Property: union-find is idempotent and Find is stable under repeated
// unions in arbitrary order.
func TestUnionFindProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		g := NewGraph()
		const n = 12
		var nodes []*Node
		for i := 0; i < n; i++ {
			nodes = append(nodes, g.NodeFor(ctypes.PointerTo(ctypes.IntT())))
		}
		for _, p := range pairs {
			a, b := int(p)%n, int(p/16)%n
			g.Union(nodes[a], nodes[b])
		}
		// Find must be consistent: transitively-united nodes share a rep.
		for _, p := range pairs {
			a, b := int(p)%n, int(p/16)%n
			if nodes[a].Find() != nodes[b].Find() {
				return false
			}
		}
		// Reps count + sizes of classes must total n.
		seen := map[*Node]bool{}
		for _, nd := range nodes {
			seen[nd.Find()] = true
		}
		return len(seen) == len(g.Reps())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKindOfDefaultsSafe(t *testing.T) {
	g := NewGraph()
	ty := ctypes.PointerTo(ctypes.IntT())
	if g.KindOf(ty) != Safe {
		t.Error("unregistered occurrence defaults to SAFE")
	}
	n := g.NodeFor(ty)
	if g.KindOf(ty) != Safe {
		t.Error("unsolved node reads as SAFE")
	}
	n.Kind = Seq
	if g.KindOf(ty) != Seq {
		t.Error("solved kind must be visible")
	}
}
