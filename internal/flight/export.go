package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"gocured/internal/trace"
)

// TraceEvent is one Chrome trace-event (the JSON object Perfetto and
// chrome://tracing load). Ph is the phase: "B"/"E" duration begin/end,
// "i" instant, "M" metadata.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object container format ({"traceEvents": [...]});
// both Perfetto and chrome://tracing accept it.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace renders rings as Chrome trace-event JSON: one track (tid) per
// ring, a thread_name metadata record naming it, B/E duration pairs for
// frames and phases (nesting renders the interpreter call stack / pipeline
// job timeline), and instants for checks, traps, allocations and pointer
// conversions.
//
// The output is guaranteed well-formed even over a wrapped ring: timestamps
// are clamped non-decreasing per track, E events whose B was overwritten
// are dropped, and B events still open at the end of a ring get synthetic
// closing E events — so B/E pairs always balance.
func WriteTrace(w io.Writer, rings []*Ring) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	for tid, r := range rings {
		f.TraceEvents = append(f.TraceEvents, ringEvents(r, tid+1)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// ringEvents converts one ring into trace events on track tid.
func ringEvents(r *Ring, tid int) []TraceEvent {
	out := []TraceEvent{{
		Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]any{"name": r.Track()},
	}}
	depth := 0
	lastTS := float64(0)
	var openNames []string
	emit := func(te TraceEvent) {
		if te.TS < lastTS {
			te.TS = lastTS // clamp: monotonic per track
		}
		lastTS = te.TS
		out = append(out, te)
	}
	for _, e := range r.Events() {
		ts := float64(e.TS)
		switch e.Kind {
		case EvCall, EvBegin:
			emit(TraceEvent{Name: e.Name, Ph: "B", TS: ts, Pid: 1, Tid: tid, Cat: e.Kind.String()})
			depth++
			openNames = append(openNames, e.Name)
		case EvRet, EvEnd:
			if depth == 0 {
				continue // matching B was overwritten by wraparound
			}
			depth--
			openNames = openNames[:depth]
			emit(TraceEvent{Name: e.Name, Ph: "E", TS: ts, Pid: 1, Tid: tid, Cat: e.Kind.String()})
		case EvCheck:
			te := TraceEvent{Name: "check", Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "check", S: "t"}
			if s := r.site(e.Site); s != nil {
				te.Name = "check " + s.Kind
				te.Args = map[string]any{"pos": s.Pos}
			}
			emit(te)
		case EvTrap:
			te := TraceEvent{Name: "TRAP " + e.Name, Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "trap", S: "t"}
			if e.Pos != "" {
				te.Args = map[string]any{"pos": e.Pos}
			}
			emit(te)
		case EvAlloc:
			emit(TraceEvent{Name: e.Name, Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "alloc", S: "t",
				Args: map[string]any{"bytes": e.Arg}})
		case EvFree:
			emit(TraceEvent{Name: "free", Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "alloc", S: "t",
				Args: map[string]any{"addr": e.Arg}})
		case EvPack, EvUnpack:
			emit(TraceEvent{Name: e.Kind.String() + " " + e.Name, Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "fatptr", S: "t"})
		case EvWrapper:
			emit(TraceEvent{Name: e.Name, Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "wrapper", S: "t"})
		case EvSample:
			emit(TraceEvent{Name: "sample", Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "sample", S: "t",
				Args: map[string]any{"pos": e.Pos}})
		case EvMark:
			emit(TraceEvent{Name: e.Name, Ph: "i", TS: ts, Pid: 1, Tid: tid, Cat: "mark", S: "t"})
		}
	}
	// Close frames left open (a trap unwinds via panic, so EvRet events
	// normally balance; an exhausted step limit or a wrapped ring can
	// still leave B's dangling).
	for i := depth - 1; i >= 0; i-- {
		emit(TraceEvent{Name: openNames[i], Ph: "E", TS: lastTS, Pid: 1, Tid: tid, Cat: "call"})
	}
	return out
}

// RingFromSpans converts a phase-span snapshot (internal/trace) into a
// ring of EvBegin/EvEnd pairs, so compile phases appear as their own track
// in the exported trace. TS is microseconds (StartMS * 1000). Returns nil
// when there are no spans.
func RingFromSpans(track string, spans []trace.Span) *Ring {
	if len(spans) == 0 {
		return nil
	}
	type bound struct {
		ts    float64
		begin bool
		depth int
		name  string
	}
	var bounds []bound
	for _, sp := range spans {
		dur := sp.DurMS
		if dur < 0 {
			dur = 0 // span never ended: render as zero-duration
		}
		bounds = append(bounds,
			bound{ts: sp.StartMS, begin: true, depth: sp.Depth, name: sp.Name},
			bound{ts: sp.StartMS + dur, begin: false, depth: sp.Depth, name: sp.Name})
	}
	sort.SliceStable(bounds, func(i, j int) bool {
		if bounds[i].ts != bounds[j].ts {
			return bounds[i].ts < bounds[j].ts
		}
		// Same instant: close deeper spans first, then open shallow ones
		// before deep ones, and ends before begins (adjacent phases).
		if bounds[i].begin != bounds[j].begin {
			return !bounds[i].begin
		}
		if bounds[i].begin {
			return bounds[i].depth < bounds[j].depth
		}
		return bounds[i].depth > bounds[j].depth
	})
	r := NewRing(2*len(spans), track)
	for _, b := range bounds {
		k := EvBegin
		if !b.begin {
			k = EvEnd
		}
		r.Record(Event{TS: uint64(b.ts * 1000), Kind: k, Name: b.name})
	}
	return r
}

// spanNode is one node of the reconstructed span tree WriteSpanTrace
// sanitizes before emission. Times are milliseconds.
type spanNode struct {
	name       string
	start, end float64
	children   []*spanNode
}

// buildSpanTree reconstructs the tree from a pre-order, depth-annotated
// span list: each span becomes a child of the nearest preceding span with a
// smaller depth (spans with no such ancestor are roots).
func buildSpanTree(spans []trace.Span) []*spanNode {
	var roots []*spanNode
	type entry struct {
		n     *spanNode
		depth int
	}
	var stack []entry
	for _, sp := range spans {
		dur := sp.DurMS
		if dur < 0 {
			dur = 0 // span never ended: render as zero-duration
		}
		n := &spanNode{name: sp.Name, start: sp.StartMS, end: sp.StartMS + dur}
		for len(stack) > 0 && stack[len(stack)-1].depth >= sp.Depth {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			roots = append(roots, n)
		} else {
			p := stack[len(stack)-1].n
			p.children = append(p.children, n)
		}
		stack = append(stack, entry{n, sp.Depth})
	}
	return roots
}

// sanitizeSpan clamps n into [*cursor, maxEnd] and its children into n,
// ordering siblings by start and squeezing out overlaps, so the recursive
// B/E emission below always satisfies ValidateTrace. Aggregate spans (store
// I/O) and float rounding can produce windows that slightly overrun their
// parent or neighbors; the clamp trades sub-bucket duration accuracy on
// those edges for a structurally valid trace.
func sanitizeSpan(n *spanNode, cursor *float64, maxEnd float64) {
	if n.start < *cursor {
		n.start = *cursor
	}
	if n.start > maxEnd {
		n.start = maxEnd
	}
	if n.end > maxEnd {
		n.end = maxEnd
	}
	if n.end < n.start {
		n.end = n.start
	}
	sort.SliceStable(n.children, func(i, j int) bool { return n.children[i].start < n.children[j].start })
	childCursor := n.start
	for _, c := range n.children {
		sanitizeSpan(c, &childCursor, n.end)
	}
	*cursor = n.end
}

// appendSpanEvents emits one sanitized node as a B/E pair around its
// children, on pid 1 / tid 1. TS is microseconds (span times are ms).
func appendSpanEvents(out []TraceEvent, n *spanNode, args map[string]any) []TraceEvent {
	out = append(out, TraceEvent{Name: n.name, Ph: "B", TS: n.start * 1000, Pid: 1, Tid: 1, Cat: "span", Args: args})
	for _, c := range n.children {
		out = appendSpanEvents(out, c, nil)
	}
	return append(out, TraceEvent{Name: n.name, Ph: "E", TS: n.end * 1000, Pid: 1, Tid: 1, Cat: "span"})
}

// WriteSpanTrace renders a pre-order, depth-annotated span timeline (a
// request trace from the pipeline's trace buffer) as Chrome trace-event
// JSON on a single track. rootArgs, when non-nil, is attached to the first
// root span's B event (the place to carry the trace ID). Unlike
// RingFromSpans — which renders spans as a flat event stream and relies on
// them being well-nested — this exporter reconstructs the span tree and
// sanitizes it (children clamped into parents, siblings ordered and
// non-overlapping), so the output passes ValidateTrace for any input list.
func WriteSpanTrace(w io.Writer, track string, spans []trace.Span, rootArgs map[string]any) error {
	f := traceFile{DisplayTimeUnit: "ms", TraceEvents: []TraceEvent{}}
	if len(spans) > 0 {
		f.TraceEvents = append(f.TraceEvents, TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: 1,
			Args: map[string]any{"name": track},
		})
		roots := buildSpanTree(spans)
		cursor := roots[0].start
		for _, rt := range roots {
			sanitizeSpan(rt, &cursor, math.Inf(1))
		}
		for i, rt := range roots {
			var args map[string]any
			if i == 0 {
				args = rootArgs
			}
			f.TraceEvents = appendSpanEvents(f.TraceEvents, rt, args)
		}
	}
	return json.NewEncoder(w).Encode(f)
}

// ValidateTrace checks data against the trace-event contract the exporter
// promises: a {"traceEvents": [...]} object whose events each carry a
// name, a known phase, and pid/tid; per-track timestamps are monotonically
// non-decreasing; and every track's B/E pairs balance (every E matches the
// innermost open B by name, and nothing stays open at the end). It returns
// the number of events on success.
func ValidateTrace(data []byte) (int, error) {
	var f traceFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("trace is not valid JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return 0, fmt.Errorf("trace has no traceEvents array")
	}
	type track struct{ pid, tid int }
	lastTS := make(map[track]float64)
	stacks := make(map[track][]string)
	for i, te := range f.TraceEvents {
		if te.Name == "" {
			return 0, fmt.Errorf("event %d: empty name", i)
		}
		switch te.Ph {
		case "B", "E", "i", "M", "X":
		default:
			return 0, fmt.Errorf("event %d (%q): unknown phase %q", i, te.Name, te.Ph)
		}
		if te.Ph == "M" {
			continue
		}
		tr := track{te.Pid, te.Tid}
		if prev, ok := lastTS[tr]; ok && te.TS < prev {
			return 0, fmt.Errorf("event %d (%q): timestamp %v goes backwards (prev %v) on pid=%d tid=%d",
				i, te.Name, te.TS, prev, te.Pid, te.Tid)
		}
		lastTS[tr] = te.TS
		switch te.Ph {
		case "B":
			stacks[tr] = append(stacks[tr], te.Name)
		case "E":
			st := stacks[tr]
			if len(st) == 0 {
				return 0, fmt.Errorf("event %d (%q): E with no open B on pid=%d tid=%d", i, te.Name, te.Pid, te.Tid)
			}
			if top := st[len(st)-1]; top != te.Name {
				return 0, fmt.Errorf("event %d: E %q does not match open B %q on pid=%d tid=%d",
					i, te.Name, top, te.Pid, te.Tid)
			}
			stacks[tr] = st[:len(st)-1]
		}
	}
	for tr, st := range stacks {
		if len(st) > 0 {
			return 0, fmt.Errorf("pid=%d tid=%d: %d B events never closed (innermost %q)",
				tr.pid, tr.tid, len(st), st[len(st)-1])
		}
	}
	return len(f.TraceEvents), nil
}
