package cparse

import "fmt"

// TokKind enumerates lexical token kinds for the C subset.
type TokKind int

const (
	EOF TokKind = iota
	IDENT
	INTLIT
	FLOATLIT
	CHARLIT
	STRLIT
	PRAGMA // a full #pragma line; Text holds the content after "#pragma"

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	ARROW    // ->
	ELLIPSIS // ...

	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	TILDE    // ~
	BANG     // !
	LSHIFT   // <<
	RSHIFT   // >>
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQEQ     // ==
	NEQ      // !=
	ANDAND   // &&
	OROR     // ||
	QUESTION // ?
	COLON    // :
	INC      // ++
	DEC      // --

	ASSIGN        // =
	PLUSASSIGN    // +=
	MINUSASSIGN   // -=
	STARASSIGN    // *=
	SLASHASSIGN   // /=
	PERCENTASSIGN // %=
	AMPASSIGN     // &=
	PIPEASSIGN    // |=
	CARETASSIGN   // ^=
	LSHIFTASSIGN  // <<=
	RSHIFTASSIGN  // >>=

	// Keywords.
	KwVoid
	KwChar
	KwShort
	KwInt
	KwLong
	KwFloat
	KwDouble
	KwSigned
	KwUnsigned
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwExtern
	KwStatic
	KwConst
	KwVolatile
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSwitch
	KwCase
	KwDefault
	KwSizeof
	KwGoto

	// CCured extensions.
	KwSafe        // __SAFE
	KwSeq         // __SEQ
	KwWild        // __WILD
	KwRtti        // __RTTI
	KwSplit       // __SPLIT
	KwNoSplit     // __NOSPLIT
	KwTrustedCast // __trusted_cast
)

var keywords = map[string]TokKind{
	"void": KwVoid, "char": KwChar, "short": KwShort, "int": KwInt,
	"long": KwLong, "float": KwFloat, "double": KwDouble,
	"signed": KwSigned, "unsigned": KwUnsigned,
	"struct": KwStruct, "union": KwUnion, "enum": KwEnum,
	"typedef": KwTypedef, "extern": KwExtern, "static": KwStatic,
	"const": KwConst, "volatile": KwVolatile,
	"if": KwIf, "else": KwElse, "while": KwWhile, "do": KwDo, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"sizeof": KwSizeof, "goto": KwGoto,
	"__SAFE": KwSafe, "__SEQ": KwSeq, "__WILD": KwWild, "__RTTI": KwRtti,
	"__SPLIT": KwSplit, "__NOSPLIT": KwNoSplit,
	"__trusted_cast": KwTrustedCast,
}

var tokNames = map[TokKind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal",
	FLOATLIT: "float literal", CHARLIT: "char literal", STRLIT: "string literal",
	PRAGMA: "#pragma",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	SEMI: ";", COMMA: ",", DOT: ".", ARROW: "->", ELLIPSIS: "...",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", TILDE: "~", BANG: "!",
	LSHIFT: "<<", RSHIFT: ">>", LT: "<", GT: ">", LE: "<=", GE: ">=",
	EQEQ: "==", NEQ: "!=", ANDAND: "&&", OROR: "||",
	QUESTION: "?", COLON: ":", INC: "++", DEC: "--",
	ASSIGN: "=", PLUSASSIGN: "+=", MINUSASSIGN: "-=", STARASSIGN: "*=",
	SLASHASSIGN: "/=", PERCENTASSIGN: "%=", AMPASSIGN: "&=",
	PIPEASSIGN: "|=", CARETASSIGN: "^=", LSHIFTASSIGN: "<<=", RSHIFTASSIGN: ">>=",
}

// String returns a printable name for the token kind.
func (k TokKind) String() string {
	if n, ok := tokNames[k]; ok {
		return n
	}
	for s, kw := range keywords {
		if kw == k {
			return s
		}
	}
	return fmt.Sprintf("tok(%d)", int(k))
}

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string  // IDENT, PRAGMA, STRLIT (decoded), and raw spelling for literals
	Int  int64   // INTLIT, CHARLIT value
	F    float64 // FLOATLIT value
	Line int
	Col  int
}
