// Command ccserve exposes the curing pipeline as an HTTP service: clients
// POST C sources and get back pointer-kind statistics, diagnostics, and
// (optionally) the result of executing the cured program in a chosen mode.
//
//	ccserve [-addr :8080] [-j N] [-cache N] [-step-limit N] [-timeout D]
//
// Endpoints:
//
//	POST /cure                cure (and optionally run) a source; see CureRequest
//	GET  /events              live job/trap events as Server-Sent Events
//	GET  /metrics             pipeline metrics snapshot as JSON
//	GET  /metrics/prometheus  the same counters in Prometheus text format
//	GET  /corpus              list the built-in corpus programs
//	GET  /corpus/{name}       fetch one corpus program (source and metadata)
//	GET  /debug/vars          expvar, including the pipeline metrics
//	GET  /debug/pprof/        Go profiling (only with -pprof)
//
// Every request is logged as one structured (slog JSON) line with a request
// ID, method, path, status, and duration; /cure lines additionally carry
// mode, cache hit/miss, and a trap summary.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// are drained before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/flight"
	"gocured/internal/interp"
	"gocured/internal/pipeline"
	"gocured/internal/trace"
)

// CureRequest is the POST /cure body.
type CureRequest struct {
	// Name labels the translation unit in diagnostics (default "input.c").
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`

	Options struct {
		NoRTTI              bool `json:"no_rtti,omitempty"`
		NoPhysicalSubtyping bool `json:"no_physical_subtyping,omitempty"`
		TrustBadCasts       bool `json:"trust_bad_casts,omitempty"`
		ForceSplitAll       bool `json:"force_split_all,omitempty"`
		NoOptimize          bool `json:"no_optimize,omitempty"`
	} `json:"options,omitempty"`

	// Run requests execution after curing; Mode defaults to "cured".
	Run       bool     `json:"run,omitempty"`
	Mode      string   `json:"mode,omitempty"`
	Stdin     string   `json:"stdin,omitempty"`
	Args      []string `json:"args,omitempty"`
	StepLimit uint64   `json:"step_limit,omitempty"`
	// Trace enables the flight recorder for the run: the response carries
	// the Chrome trace-event JSON and, on a trap, the black-box snapshot.
	Trace bool `json:"trace,omitempty"`
	// ProfilePeriod enables step-sampling profiling at the given period
	// (interpreter steps per sample; 0 = off).
	ProfilePeriod int `json:"profile_period,omitempty"`
	// Backend selects the interpreter backend for the run: "vm" (default)
	// or "tree". Results are bit-identical; "tree" is the reference oracle.
	Backend string `json:"backend,omitempty"`
}

// CureResponse is the POST /cure reply.
type CureResponse struct {
	Name        string        `json:"name"`
	Key         string        `json:"key"`
	CacheHit    bool          `json:"cache_hit"`
	Stats       gocured.Stats `json:"stats"`
	Diagnostics []string      `json:"diagnostics,omitempty"`
	// Phases are the per-phase wall times of the job (parse, sema, lower,
	// infer, instrument, and "run" for run jobs).
	Phases []trace.Span `json:"phases,omitempty"`
	Run    *RunResponse `json:"run,omitempty"`
}

// RunResponse is the execution part of a CureResponse.
type RunResponse struct {
	Mode        string `json:"mode"`
	ExitCode    int    `json:"exit_code"`
	Stdout      string `json:"stdout"`
	Trapped     bool   `json:"trapped"`
	TrapKind    string `json:"trap_kind,omitempty"`
	TrapMessage string `json:"trap_message,omitempty"`
	// TrapPos/TrapStack/TrapBlame attribute a trap: source location, cured
	// call stack (innermost first), and the inference blame chain of the
	// pointer whose check fired.
	TrapPos   string   `json:"trap_pos,omitempty"`
	TrapStack []string `json:"trap_stack,omitempty"`
	TrapBlame []string `json:"trap_blame,omitempty"`
	Steps     uint64   `json:"steps"`
	Checks    uint64   `json:"checks"`
	SimCycles uint64   `json:"sim_cycles"`
	// HotSites are the hottest run-time check sites of the run.
	HotSites    []gocured.CheckSiteCount `json:"hot_sites,omitempty"`
	ToolReports []string                 `json:"tool_reports,omitempty"`
	// Trace is the run's flight recording in Chrome trace-event format
	// (request option "trace"); load it in Perfetto or chrome://tracing.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Profile is the step-sampling profile (request option
	// "profile_period"), hottest source line first.
	Profile []gocured.ProfileLine `json:"profile,omitempty"`
	// BlackBox is the crash snapshot: the events leading up to the trap,
	// the cured call stack, and the blame chain (only for traced runs that
	// trapped).
	BlackBox *flight.BlackBox `json:"black_box,omitempty"`
}

// serverConfig bundles the serving options newServer needs.
type serverConfig struct {
	MaxBytes int64
	Logger   *slog.Logger
	Pprof    bool
}

// server bundles the Runner with the HTTP handlers so tests can drive the
// mux without a listener.
type server struct {
	runner   *pipeline.Runner
	maxBytes int64
	logger   *slog.Logger
	mux      *http.ServeMux
	reqSeq   atomic.Uint64
}

func newServer(runner *pipeline.Runner, cfg serverConfig) *server {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &server{runner: runner, maxBytes: cfg.MaxBytes, logger: cfg.Logger, mux: http.NewServeMux()}
	s.mux.HandleFunc("/cure", s.handleCure)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prometheus", s.handlePrometheus)
	s.mux.HandleFunc("/corpus", s.handleCorpusList)
	s.mux.HandleFunc("/corpus/", s.handleCorpusGet)
	s.mux.Handle("/debug/vars", expvar.Handler())
	if cfg.Pprof {
		// Explicit routes rather than the net/http/pprof blank import: the
		// profiling surface exists only when asked for.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// statusWriter captures the response status for the request log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the SSE handler's flusher
// check sees through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ctxKey keys the per-request logger in the request context.
type ctxKey struct{}

// reqLogger returns the request-scoped logger (carrying the request ID).
func (s *server) reqLogger(r *http.Request) *slog.Logger {
	if l, ok := r.Context().Value(ctxKey{}).(*slog.Logger); ok {
		return l
	}
	return s.logger
}

// ServeHTTP assigns every request an ID, threads a request-scoped logger
// through the context, and logs one structured line when the handler
// returns.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqSeq.Add(1)
	lg := s.logger.With("req_id", id)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), ctxKey{}, lg)))
	lg.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"dur_ms", float64(time.Since(start))/float64(time.Millisecond))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the structured error reply of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errCode renders an HTTP status as a stable snake_case error code
// ("bad_request", "request_entity_too_large", ...).
func errCode(status int) string {
	return strings.ReplaceAll(strings.ToLower(http.StatusText(status)), " ", "_")
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: errCode(status)})
}

func (s *server) handleCure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	var req CureRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	name := req.Name
	if name == "" {
		name = "input.c"
	}
	mode := gocured.ModeCured
	if req.Mode != "" {
		var err error
		if mode, err = gocured.ParseMode(req.Mode); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if _, err := interp.ParseBackend(req.Backend); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	job := pipeline.Job{
		Name:   name,
		Source: req.Source,
		Options: gocured.Options{
			NoRTTI:              req.Options.NoRTTI,
			NoPhysicalSubtyping: req.Options.NoPhysicalSubtyping,
			TrustBadCasts:       req.Options.TrustBadCasts,
			ForceSplitAll:       req.Options.ForceSplitAll,
			NoOptimize:          req.Options.NoOptimize,
		},
		Run:  req.Run,
		Mode: mode,
		RunOptions: gocured.RunOptions{
			Stdin:         []byte(req.Stdin),
			Args:          req.Args,
			StepLimit:     req.StepLimit,
			Trace:         req.Trace,
			ProfilePeriod: req.ProfilePeriod,
			Backend:       req.Backend,
		},
	}
	start := time.Now()
	res := s.runner.Do(r.Context(), job)
	if res.Err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		s.reqLogger(r).Warn("cure failed", "name", name, "mode", mode.String(), "err", res.Err.Error())
		writeError(w, status, "%v", res.Err)
		return
	}
	resp := CureResponse{
		Name:        res.Name,
		Key:         res.Key.String(),
		CacheHit:    res.CacheHit,
		Stats:       res.Stats,
		Diagnostics: res.Diagnostics,
		Phases:      res.Phases,
	}
	logAttrs := []any{
		"name", name,
		"mode", mode.String(),
		"cache_hit", res.CacheHit,
		"dur_ms", float64(time.Since(start)) / float64(time.Millisecond),
	}
	if res.Run != nil {
		resp.Run = &RunResponse{
			Mode:        mode.String(),
			ExitCode:    res.Run.ExitCode,
			Stdout:      res.Run.Stdout,
			Trapped:     res.Run.Trapped,
			TrapKind:    res.Run.TrapKind,
			TrapMessage: res.Run.TrapMessage,
			TrapPos:     res.Run.TrapPos,
			TrapStack:   res.Run.TrapStack,
			TrapBlame:   res.Run.TrapBlame,
			Steps:       res.Run.Steps,
			Checks:      res.Run.Checks,
			SimCycles:   res.Run.SimCycles,
			HotSites:    res.Run.TopCheckSites(5),
			ToolReports: res.Run.ToolReports,
			Trace:       json.RawMessage(res.Run.TraceJSON),
			Profile:     res.Run.Profile,
			BlackBox:    res.Run.BlackBox,
		}
		logAttrs = append(logAttrs, "trapped", res.Run.Trapped)
		if res.Run.Trapped {
			logAttrs = append(logAttrs, "trap_kind", res.Run.TrapKind, "trap_pos", res.Run.TrapPos)
		}
	}
	s.reqLogger(r).Info("cure", logAttrs...)
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents streams the pipeline's live job/trap events as Server-Sent
// Events: one `event: <type>` / `data: <JobEvent JSON>` record per event,
// until the client disconnects. A slow client misses events rather than
// stalling the workers; the "seq" field exposes the gaps.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Open the stream immediately so clients see headers before the first
	// job event.
	fmt.Fprint(w, ": gocured event stream\n\n")
	flusher.Flush()

	ch, cancel := s.runner.Events().Subscribe(64)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			flusher.Flush()
		}
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.runner.Metrics())
}

// handlePrometheus serves the pipeline metrics in the Prometheus text
// exposition format.
func (s *server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pipeline.WritePrometheus(w, s.runner.Metrics())
}

// corpusEntry is one row of GET /corpus.
type corpusEntry struct {
	Name          string `json:"name"`
	Category      string `json:"category"`
	Lines         int    `json:"lines"`
	TrustBadCasts bool   `json:"trust_bad_casts,omitempty"`
}

func (s *server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	var out []corpusEntry
	for _, p := range corpus.All() {
		out = append(out, corpusEntry{
			Name:          p.Name,
			Category:      p.Category,
			Lines:         gocured.CountLines(p.Source),
			TrustBadCasts: p.TrustBadCasts,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCorpusGet(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/corpus/")
	p := corpus.ByName(name)
	if p == nil {
		writeError(w, http.StatusNotFound, "no corpus program %q", name)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		corpusEntry
		Source     string `json:"source"`
		WantStdout string `json:"want_stdout,omitempty"`
	}{
		corpusEntry: corpusEntry{
			Name:          p.Name,
			Category:      p.Category,
			Lines:         gocured.CountLines(p.Source),
			TrustBadCasts: p.TrustBadCasts,
		},
		Source:     p.Source,
		WantStdout: p.WantStdout,
	})
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent curing/execution jobs")
	cacheEntries := flag.Int("cache", pipeline.DefaultCacheEntries, "compile cache entries (negative disables)")
	stepLimit := flag.Uint64("step-limit", 200_000_000, "default interpreter step limit per run")
	jobTimeout := flag.Duration("timeout", 60*time.Second, "wall-clock bound per job (0 = none)")
	maxBytes := flag.Int64("max-request-bytes", 1<<20, "maximum POST /cure body size")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory; compiles survive restarts (empty = memory cache only)")
	flag.Parse()

	arts, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		log.Fatalf("ccserve: %v", err)
	}
	runner := pipeline.NewRunner(pipeline.RunnerOptions{
		Workers:          *jobs,
		CacheEntries:     *cacheEntries,
		DefaultStepLimit: *stepLimit,
		JobTimeout:       *jobTimeout,
		Store:            arts,
	})
	expvar.Publish("gocured_pipeline", runner.ExpvarVar())

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newServer(runner, serverConfig{MaxBytes: *maxBytes, Logger: logger, Pprof: *pprofFlag}),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("ccserve listening on %s (%d workers, %s version %s)",
		*addr, runner.Workers(), "gocured", gocured.Version)
	if arts != nil {
		st := arts.Store().Stats()
		log.Printf("ccserve: artifact store %s (%d chunks, %d bytes)", *storeDir, st.Chunks, st.Bytes)
	}

	select {
	case err := <-errCh:
		log.Fatalf("ccserve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("ccserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ccserve: shutdown: %v", err)
		}
	}
}
