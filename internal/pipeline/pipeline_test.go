package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"gocured"
	"gocured/internal/corpus"
)

const tinyOK = `
extern int printf(char *fmt, ...);
int main(void) { printf("ok\n"); return 0; }
`

const tinyLoop = `
int main(void) { for (;;) {} return 0; }
`

const tinyOOB = `
int main(void) {
    int a[3];
    int i, t = 0;
    for (i = 0; i <= 3; i++) t += a[i];
    return t;
}
`

// shadowMemBudget bounds the shadow-memory (purify/valgrind) leg of
// TestRunnerCorpus: programs are admitted cheapest-first until their
// combined raw memory-access count (a deterministic counter) reaches the
// budget. The shadow policies cost real wall time per simulated access
// (roughly 20µs/access for both modes together on a slow box), so the
// budget keeps the sweep to a few minutes no matter how the corpus grows.
// Today it admits the whole corpus (~22M accesses at SCALE=1).
const shadowMemBudget = 32_000_000

// TestRunnerCorpus cures and runs every corpus program through the Runner
// under raw and cured (default scale: no traps, WantStdout agreement), and
// under the Purify/Valgrind shadow policies at SCALE=1 for as many
// programs as fit shadowMemBudget. It then repeats the whole batch to
// demand 100% cache hits. The shadow leg is skipped in -short mode.
func TestRunnerCorpus(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 4})
	ctx := context.Background()
	jobs := CorpusJobs([]gocured.Mode{gocured.ModeRaw, gocured.ModeCured}, 0)
	extraRuns := 0 // probe executions, counted by the Runner's metrics too
	if !testing.Short() {
		// Probe every program raw at SCALE=1 (cheap) to learn its access
		// count, then shadow-run the cheapest programs within budget.
		probe := CorpusJobs([]gocured.Mode{gocured.ModeRaw}, 1)
		probeRes := r.DoAll(ctx, probe)
		order := make([]int, len(probe))
		for i := range order {
			order[i] = i
			if probeRes[i].Err != nil {
				t.Fatalf("probe %s: %v", probe[i].Name, probeRes[i].Err)
			}
		}
		sort.Slice(order, func(a, b int) bool {
			return probeRes[order[a]].Run.MemAccesses < probeRes[order[b]].Run.MemAccesses
		})
		var mem uint64
		var skipped []string
		for _, i := range order {
			mem += probeRes[i].Run.MemAccesses
			if mem > shadowMemBudget {
				skipped = append(skipped, probe[i].Name)
				continue
			}
			for _, mode := range []gocured.Mode{gocured.ModePurify, gocured.ModeValgrind} {
				j := probe[i]
				j.Mode = mode
				jobs = append(jobs, j)
			}
		}
		extraRuns = len(probe)
		if len(skipped) > 0 {
			t.Logf("shadow sweep covers %d/%d programs within the %d-access budget; skipped heavyweights: %v",
				len(probe)-len(skipped), len(probe), shadowMemBudget, skipped)
		}
	}

	first := r.DoAll(ctx, jobs)
	for i, res := range first {
		job := jobs[i]
		if res.Err != nil {
			t.Fatalf("%s/%s: %v", job.Name, job.Mode, res.Err)
		}
		if res.Run == nil {
			t.Fatalf("%s/%s: no run result", job.Name, job.Mode)
		}
		if res.Run.Trapped {
			t.Errorf("%s/%s trapped: %s", job.Name, job.Mode, res.Run.TrapMessage)
		}
		p := corpus.ByName(strings.TrimSuffix(job.Name, ".c"))
		if p != nil && p.WantStdout != "" &&
			(job.Mode == gocured.ModeRaw || job.Mode == gocured.ModeCured) &&
			res.Run.Stdout != p.WantStdout {
			t.Errorf("%s/%s stdout = %q, want %q", job.Name, job.Mode, res.Run.Stdout, p.WantStdout)
		}
	}
	m1 := r.Metrics()
	if m1.Cache.Misses == 0 || m1.Cache.Hits == 0 {
		t.Fatalf("first pass: expected both misses and mode-sharing hits, got %+v", m1.Cache)
	}
	if m1.RunsExecuted != uint64(len(jobs)+extraRuns) {
		t.Errorf("RunsExecuted = %d, want %d", m1.RunsExecuted, len(jobs)+extraRuns)
	}

	// Second pass: identical sources must all be served from the cache.
	// Compile-only (re-executing the interpreter would double the test's
	// wall time without exercising the cache any further).
	again := make([]Job, len(jobs))
	copy(again, jobs)
	for i := range again {
		again[i].Run = false
	}
	second := r.DoAll(ctx, again)
	for i, res := range second {
		if res.Err != nil {
			t.Fatalf("second pass %s: %v", again[i].Name, res.Err)
		}
		if !res.CacheHit {
			t.Errorf("second pass %s/%s missed the cache", again[i].Name, jobs[i].Mode)
		}
	}
	m2 := r.Metrics()
	if m2.Cache.Misses != m1.Cache.Misses {
		t.Errorf("second pass recompiled: misses %d -> %d", m1.Cache.Misses, m2.Cache.Misses)
	}
	if got, want := m2.Cache.Hits-m1.Cache.Hits, uint64(len(jobs)); got != want {
		t.Errorf("second pass hits = %d, want %d", got, want)
	}
}

// TestRunnerParallelSpeedup checks the headline property: with 4+ workers,
// curing the corpus is substantially faster than the 1-worker sequential
// path. Wall-clock assertions need real parallelism, so single/dual-core
// machines skip (the 1/2/4/8-worker benchmarks in bench_test.go measure
// the same thing without asserting).
func TestRunnerParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup assertion, have %d", runtime.NumCPU())
	}
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	jobs := CorpusCompileJobs(0)
	measure := func(workers int) time.Duration {
		// Caching disabled so both passes do the full compile work.
		r := NewRunner(RunnerOptions{Workers: workers, CacheEntries: -1})
		start := time.Now()
		for _, res := range r.DoAll(context.Background(), jobs) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
		return time.Since(start)
	}
	seq := measure(1)
	par := measure(4)
	t.Logf("sequential %v, 4 workers %v (%.2fx)", seq, par, float64(seq)/float64(par))
	if par > seq*2/3 {
		t.Errorf("4-worker corpus cure not faster than sequential: %v vs %v", par, seq)
	}
}

// TestCacheCoalescing launches many concurrent identical jobs and demands
// the cache compile the source exactly once.
func TestCacheCoalescing(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 8})
	jobs := make([]Job, 32)
	for i := range jobs {
		jobs[i] = Job{Name: "tiny.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured}
	}
	for _, res := range r.DoAll(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Run.Stdout != "ok\n" {
			t.Errorf("stdout = %q", res.Run.Stdout)
		}
	}
	if m := r.Metrics(); m.Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single-flight coalescing)", m.Cache.Misses)
	}
}

// TestCacheEviction bounds the cache and checks LRU eviction with counters.
func TestCacheEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("int main(void) { return %d; }", i)
		if _, lk, err := c.GetOrCompile("v.c", src, gocured.Options{}); err != nil || lk.Hit {
			t.Fatalf("compile %d: lookup=%+v err=%v", i, lk, err)
		}
	}
	s := c.Stats()
	if s.Entries != 2 || s.Evictions != 2 {
		t.Errorf("stats = %+v, want 2 entries and 2 evictions", s)
	}
	// Oldest entries are gone; newest are hits.
	if _, lk, _ := c.GetOrCompile("v.c", "int main(void) { return 3; }", gocured.Options{}); !lk.Hit || lk.Tier != "memory" {
		t.Error("most recent entry was evicted")
	}
	if _, lk, _ := c.GetOrCompile("v.c", "int main(void) { return 0; }", gocured.Options{}); lk.Hit {
		t.Error("oldest entry should have been evicted")
	}
}

// TestCacheKeyDiscriminates checks every key component matters.
func TestCacheKeyDiscriminates(t *testing.T) {
	base := CacheKey("a.c", tinyOK, gocured.Options{})
	if CacheKey("b.c", tinyOK, gocured.Options{}) == base {
		t.Error("filename not in key")
	}
	if CacheKey("a.c", tinyOK+" ", gocured.Options{}) == base {
		t.Error("source not in key")
	}
	if CacheKey("a.c", tinyOK, gocured.Options{NoRTTI: true}) == base {
		t.Error("options not in key")
	}
	if CacheKey("a.c", tinyOK, gocured.Options{}) != base {
		t.Error("key not deterministic")
	}
}

// TestPanicIsolation injects a panicking job into a batch and demands the
// batch completes with the panic contained in that job's result.
func TestPanicIsolation(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 2})
	jobs := []Job{
		{Name: "ok1.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured},
		{Name: "boom.c", Source: tinyOK, testPanic: true},
		{Name: "ok2.c", Source: tinyOK, Run: true, Mode: gocured.ModeRaw},
	}
	results := r.DoAll(context.Background(), jobs)
	if err := results[1].Err; err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking job error = %v, want panic report", err)
	}
	for _, i := range []int{0, 2} {
		if results[i].Err != nil {
			t.Errorf("%s failed alongside the panicking job: %v", jobs[i].Name, results[i].Err)
		}
	}
	m := r.Metrics()
	if m.JobsPanicked != 1 || m.JobsFailed != 1 {
		t.Errorf("metrics = panicked %d failed %d, want 1/1", m.JobsPanicked, m.JobsFailed)
	}
}

// TestJobTimeout bounds a divergent program by wall clock; the step limit
// acts as the backstop that eventually frees the worker.
func TestJobTimeout(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 1})
	res := r.Do(context.Background(), Job{
		Name:       "loop.c",
		Source:     tinyLoop,
		Run:        true,
		Mode:       gocured.ModeRaw,
		RunOptions: gocured.RunOptions{StepLimit: 200_000_000},
		Timeout:    20 * time.Millisecond,
	})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "timed out") {
		t.Fatalf("err = %v, want timeout", res.Err)
	}
	if m := r.Metrics(); m.JobsTimedOut != 1 {
		t.Errorf("JobsTimedOut = %d, want 1", m.JobsTimedOut)
	}
}

// TestDefaultStepLimit checks the Runner-level step bound converts runaway
// programs into timeout traps rather than hung workers.
func TestDefaultStepLimit(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 1, DefaultStepLimit: 100_000})
	res := r.Do(context.Background(), Job{Name: "loop.c", Source: tinyLoop, Run: true, Mode: gocured.ModeRaw})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Run.Trapped || res.Run.TrapKind != "timeout" {
		t.Fatalf("run = trapped %v kind %q, want timeout trap", res.Run.Trapped, res.Run.TrapKind)
	}
}

// TestContextCancellation checks Do respects an already-cancelled context.
func TestContextCancellation(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := r.Do(ctx, Job{Name: "t.c", Source: tinyOK}); res.Err == nil {
		t.Fatal("expected context error")
	}
}

// TestMetricsObservability runs a trapping job and checks the counters and
// histograms a dashboard would read.
func TestMetricsObservability(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 2})
	for _, job := range []Job{
		{Name: "oob.c", Source: tinyOOB, Run: true, Mode: gocured.ModeCured},
		{Name: "ok.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured},
		{Name: "bad.c", Source: "int main( {", Run: true, Mode: gocured.ModeRaw},
	} {
		r.Do(context.Background(), job)
	}
	m := r.Metrics()
	if m.JobsRun != 3 || m.JobsFailed != 1 {
		t.Errorf("jobs run/failed = %d/%d, want 3/1", m.JobsRun, m.JobsFailed)
	}
	if m.Traps != 1 || m.TrapsByKind["bounds"] != 1 {
		t.Errorf("traps = %d (%v), want one bounds trap", m.Traps, m.TrapsByKind)
	}
	if m.CompileWall.Count != 2 {
		t.Errorf("compile histogram count = %d, want 2", m.CompileWall.Count)
	}
	if m.RunWall.Count != 2 {
		t.Errorf("run histogram count = %d, want 2", m.RunWall.Count)
	}
	if m.CompileWall.MeanMS() < 0 {
		t.Error("negative mean")
	}
	// The expvar adapter must render valid JSON-ish output.
	if s := r.ExpvarVar().String(); !strings.Contains(s, "jobs_run") {
		t.Errorf("expvar output missing jobs_run: %s", s)
	}
}

// TestTimelineStoreSpanClamp pins the synthetic store-span geometry: the
// aggregated store I/O wall time sums across concurrent inference
// goroutines and can exceed the compile window, but the spans in the raw
// Phases list must stay inside [compile start, compile end] — never a
// negative start overlapping queue-wait.
func TestTimelineStoreSpanClamp(t *testing.T) {
	enq := time.Now()
	tl := &timeline{
		compStart:    enq.Add(2 * time.Millisecond),
		compDur:      10 * time.Millisecond,
		tier:         "disk",
		storeReads:   4,
		storeWrites:  2,
		storeReadMS:  25, // 25 + 9 = 34ms of summed I/O in a 10ms window
		storeWriteMS: 9,
	}
	spans := tl.spans(enq, 2*time.Millisecond, 12*time.Millisecond)
	cs, ce := 2.0, 12.0
	found := 0
	for _, sp := range spans {
		if sp.Name != "store-read" && sp.Name != "store-write" {
			continue
		}
		found++
		if sp.StartMS < cs || sp.StartMS+sp.DurMS > ce+1e-9 || sp.DurMS < 0 {
			t.Errorf("%s span [%v, %v+%v] escapes compile window [%v, %v]",
				sp.Name, sp.StartMS, sp.StartMS, sp.DurMS, cs, ce)
		}
	}
	if found != 2 {
		t.Errorf("found %d store spans, want 2", found)
	}
}
