package corpus

// The Apache-module family (Figure 8). Each module is a request handler
// over a request_rec-like structure with header tables and a body buffer,
// driven by a deterministic request generator (the paper used 1000 requests
// of 1/10/100KB files; we use scaled buffer sizes so interpreted runs stay
// tractable). A checksum of handler effects is printed so raw and cured
// outputs can be compared exactly.

// apacheHarness is the shared request plumbing.
const apacheHarness = `
enum { SCALE = 2, MAXHDR = 8, BUFSZ = 1024, NREQ = 40 };

struct table_entry { char key[24]; char val[64]; };

struct request_rec {
    char uri[64];
    char method[8];
    int status;
    int content_length;
    char body[BUFSZ];
    char out[2 * BUFSZ];
    int out_len;
    struct table_entry headers_in[MAXHDR];
    struct table_entry headers_out[MAXHDR];
    int n_in;
    int n_out;
};

char *tbl_get(struct table_entry *tbl, int n, char *key) {
    int i;
    for (i = 0; i < n; i++) {
        if (strcmp(tbl[i].key, key) == 0) return tbl[i].val;
    }
    return 0;
}

int tbl_set(struct table_entry *tbl, int n, int max, char *key, char *val) {
    int i;
    for (i = 0; i < n; i++) {
        if (strcmp(tbl[i].key, key) == 0) {
            strncpy(tbl[i].val, val, 63);
            tbl[i].val[63] = 0;
            return n;
        }
    }
    if (n < max) {
        strncpy(tbl[n].key, key, 23);
        tbl[n].key[23] = 0;
        strncpy(tbl[n].val, val, 63);
        tbl[n].val[63] = 0;
        return n + 1;
    }
    return n;
}

void make_request(struct request_rec *r, int i, int size) {
    int k;
    sprintf(r->uri, "/site/page%d.html", i % 17);
    strcpy(r->method, (i % 5 == 0) ? "POST" : "GET");
    r->status = 0;
    r->out_len = 0;
    r->n_in = 0;
    r->n_out = 0;
    if (size > BUFSZ) size = BUFSZ;
    r->content_length = size;
    sim_recv(r->body, size);
    r->body[size - 1] = 0;
    r->n_in = tbl_set(r->headers_in, r->n_in, MAXHDR, "Host", "bench.example.org");
    r->n_in = tbl_set(r->headers_in, r->n_in, MAXHDR, "User-Agent", "webstone/2.5");
    if (i % 3 == 0) {
        r->n_in = tbl_set(r->headers_in, r->n_in, MAXHDR, "Cookie", "Apache=user7713");
    }
    for (k = 0; k < size; k++) {
        if (r->body[k] == 0) r->body[k] = 'x';
    }
    r->body[size - 1] = 0;
}

int handle(struct request_rec *r);

int main(void) {
    struct request_rec *r = (struct request_rec *)malloc(sizeof(struct request_rec));
    int sizes[3];
    int iter, i, s;
    int checksum = 0;
    sizes[0] = 64; sizes[1] = 256; sizes[2] = BUFSZ;
    for (iter = 0; iter < SCALE; iter++) {
        for (s = 0; s < 3; s++) {
            for (i = 0; i < NREQ; i++) {
                make_request(r, i, sizes[s]);
                checksum += handle(r);
                checksum += r->status + r->out_len + r->n_out * 7;
                checksum = checksum % 1000000007;
            }
        }
    }
    printf("MODNAME checksum %d\n", checksum);
    return 0;
}
`

// apacheModule assembles a module program.
func apacheModule(name, handler string) string {
	src := Prelude + apacheHarness + handler
	return replaceAll(src, "MODNAME", name)
}

func replaceAll(s, old, new string) string {
	out := ""
	for {
		i := indexOf(s, old)
		if i < 0 {
			return out + s
		}
		out += s[:i] + new
		s = s[i+len(old):]
	}
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

var _ = register(&Program{
	Name:     "apache-asis",
	Category: "apache",
	Desc:     "mod_asis-like: sends the body through unmodified",
	Source: apacheModule("apache-asis", `
int handle(struct request_rec *r) {
    int i;
    for (i = 0; i < r->content_length && i < 2 * BUFSZ; i++) {
        r->out[i] = r->body[i];
    }
    r->out_len = r->content_length;
    sim_send(r->out, r->out_len);
    r->status = 200;
    return r->out_len;
}
`),
})

var _ = register(&Program{
	Name:     "apache-expires",
	Category: "apache",
	Desc:     "mod_expires-like: computes expiry headers",
	Source: apacheModule("apache-expires", `
int fake_now = 1054000000;

void format_http_date(char *buf, int t) {
    int days = t / 86400;
    int secs = t % 86400;
    sprintf(buf, "Day%d, %02d:%02d:%02d GMT",
            days % 7, secs / 3600, (secs / 60) % 60, secs % 60);
}

int handle(struct request_rec *r) {
    char date[64];
    int ttl = 3600;
    char *uri = r->uri;
    if (strstr(uri, ".html")) ttl = 600;
    if (strstr(uri, ".png")) ttl = 86400;
    fake_now = fake_now + 13;
    format_http_date(date, fake_now + ttl);
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "Expires", date);
    format_http_date(date, fake_now);
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "Date", date);
    r->status = 200;
    return ttl;
}
`),
})

var _ = register(&Program{
	Name:     "apache-gzip",
	Category: "apache",
	Desc:     "mod_gzip-like: LZ-style compression of the body",
	Source: apacheModule("apache-gzip", `
enum { HASHSZ = 256, WINDOW = 64 };

int hash3(char *p) {
    return ((p[0] * 33 + p[1]) * 33 + p[2]) & (HASHSZ - 1);
}

int handle(struct request_rec *r) {
    int head[HASHSZ];
    int i, n, o;
    char *in = r->body;
    n = r->content_length - 1;
    for (i = 0; i < HASHSZ; i++) head[i] = -1;
    o = 0;
    i = 0;
    while (i < n && o < 2 * BUFSZ - 4) {
        int matched = 0;
        if (i + 3 <= n) {
            int h = hash3(in + i);
            int cand = head[h];
            if (cand >= 0 && i - cand < WINDOW) {
                int len = 0;
                while (i + len < n && len < 63 && in[cand + len] == in[i + len]) len++;
                if (len >= 4) {
                    r->out[o++] = (char)255;
                    r->out[o++] = (char)(i - cand);
                    r->out[o++] = (char)len;
                    i += len;
                    matched = 1;
                }
            }
            head[h] = i;
        }
        if (!matched) {
            r->out[o++] = in[i];
            i++;
        }
    }
    r->out_len = o;
    sim_send(r->out, o);
    r->status = 200;
    return o;
}
`),
})

var _ = register(&Program{
	Name:     "apache-headers",
	Category: "apache",
	Desc:     "mod_headers-like: header add/unset/rewrite rules",
	Source: apacheModule("apache-headers", `
struct hdr_rule {
    char *action; /* "set", "append", "unset" */
    char *key;
    char *value;
};

struct hdr_rule rules[4] = {
    { "set",    "X-Frame-Options", "DENY" },
    { "set",    "Server", "Apache/1.2.9 cured" },
    { "append", "Cache-Control", "no-store" },
    { "unset",  "X-Powered-By", "" },
};

int handle(struct request_rec *r) {
    int i, acted = 0;
    for (i = 0; i < 4; i++) {
        struct hdr_rule *rule = &rules[i];
        if (strcmp(rule->action, "set") == 0) {
            r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, rule->key, rule->value);
            acted++;
        } else if (strcmp(rule->action, "append") == 0) {
            char buf[64];
            char *old = tbl_get(r->headers_out, r->n_out, rule->key);
            if (old) {
                snprintf(buf, 64, "%s, %s", old, rule->value);
            } else {
                snprintf(buf, 64, "%s", rule->value);
            }
            r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, rule->key, buf);
            acted++;
        } else {
            int k;
            for (k = 0; k < r->n_out; k++) {
                if (strcmp(r->headers_out[k].key, rule->key) == 0) {
                    r->headers_out[k] = r->headers_out[r->n_out - 1];
                    r->n_out--;
                    acted++;
                    break;
                }
            }
        }
    }
    r->status = 200;
    return acted;
}
`),
})

var _ = register(&Program{
	Name:     "apache-info",
	Category: "apache",
	Desc:     "mod_info-like: formats a server-status page",
	Source: apacheModule("apache-info", `
int requests_served = 0;

int handle(struct request_rec *r) {
    int o = 0, i;
    requests_served++;
    o += sprintf(r->out + o, "<html><head>Server Info</head><body>");
    o += sprintf(r->out + o, "<h1>%s %s</h1>", r->method, r->uri);
    o += sprintf(r->out + o, "<p>served: %d</p>", requests_served);
    for (i = 0; i < r->n_in && o < 2 * BUFSZ - 128; i++) {
        o += sprintf(r->out + o, "<li>%s: %s</li>",
                     r->headers_in[i].key, r->headers_in[i].val);
    }
    o += sprintf(r->out + o, "</body></html>");
    r->out_len = o;
    sim_send(r->out, o);
    r->status = 200;
    return o;
}
`),
})

var _ = register(&Program{
	Name:     "apache-layout",
	Category: "apache",
	Desc:     "mod_layout-like: wraps bodies with header and footer",
	Source: apacheModule("apache-layout", `
char *layout_header = "<!-- layout: begin -->\n";
char *layout_footer = "\n<!-- layout: end -->\n";

int handle(struct request_rec *r) {
    int o = 0, i, n;
    n = strlen(layout_header);
    for (i = 0; i < n; i++) r->out[o++] = layout_header[i];
    n = r->content_length - 1;
    for (i = 0; i < n && o < 2 * BUFSZ - 64; i++) r->out[o++] = r->body[i];
    n = strlen(layout_footer);
    for (i = 0; i < n; i++) r->out[o++] = layout_footer[i];
    r->out[o] = 0;
    r->out_len = o;
    sim_send(r->out, o);
    r->status = 200;
    return o;
}
`),
})

var _ = register(&Program{
	Name:     "apache-random",
	Category: "apache",
	Desc:     "mod_random-like: serves a pseudorandom quote",
	Source: apacheModule("apache-random", `
char *quotes[6] = {
    "The computing scientist's main challenge is not to get confused.",
    "Simplicity is prerequisite for reliability.",
    "Program testing can show the presence of bugs, never their absence.",
    "Memory safety is an absolute prerequisite for security.",
    "Be conservative in what you send, liberal in what you accept.",
    "Premature optimization is the root of all evil.",
};

int handle(struct request_rec *r) {
    int pick = rand() % 6;
    char *q = quotes[pick];
    strcpy(r->out, q);
    r->out_len = strlen(q);
    sim_send(r->out, r->out_len);
    r->status = 200;
    return pick;
}
`),
})

var _ = register(&Program{
	Name:     "apache-urlcount",
	Category: "apache",
	Desc:     "urlcount-like: per-URI hit counting in a chained hash table",
	Source: apacheModule("apache-urlcount", `
enum { UCBUCKETS = 32 };

struct url_node {
    char *uri;
    int hits;
    struct url_node *next;
};

struct url_node *buckets[UCBUCKETS];

int uc_hash(char *s) {
    int h = 5381;
    while (*s) { h = h * 33 + *s; s++; }
    if (h < 0) h = -h;
    return h % UCBUCKETS;
}

int handle(struct request_rec *r) {
    int h = uc_hash(r->uri);
    struct url_node *n = buckets[h];
    while (n) {
        if (strcmp(n->uri, r->uri) == 0) {
            n->hits++;
            r->status = 200;
            return n->hits;
        }
        n = n->next;
    }
    n = (struct url_node *)malloc(sizeof(struct url_node));
    n->uri = strdup(r->uri);
    n->hits = 1;
    n->next = buckets[h];
    buckets[h] = n;
    r->status = 200;
    return 1;
}
`),
})

var _ = register(&Program{
	Name:     "apache-usertrack",
	Category: "apache",
	Desc:     "mod_usertrack-like: cookie parsing and generation",
	Source: apacheModule("apache-usertrack", `
int cookie_serial = 1000;

int handle(struct request_rec *r) {
    char buf[64];
    char *cookie = tbl_get(r->headers_in, r->n_in, "Cookie");
    if (cookie) {
        char *eq = strchr(cookie, '=');
        if (eq) {
            int id = atoi(eq + 1 + 4); /* skip "user" */
            r->status = 200;
            return id;
        }
    }
    cookie_serial++;
    sprintf(buf, "Apache=user%d", cookie_serial);
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "Set-Cookie", buf);
    r->status = 200;
    return cookie_serial;
}
`),
})

var _ = register(&Program{
	Name:     "apache-webstone",
	Category: "apache",
	Desc:     "WebStone-like composite: expires+gzip+headers+urlcount+usertrack per request",
	Source: apacheModule("apache-webstone", `
enum { WBUCKETS = 32, WHASHSZ = 256 };

struct url_node { char *uri; int hits; struct url_node *next; };
struct url_node *wbuckets[WBUCKETS];
int wcookie_serial = 500;
int wfake_now = 1054000000;

int wuc_hash(char *s) {
    int h = 5381;
    while (*s) { h = h * 33 + *s; s++; }
    if (h < 0) h = -h;
    return h % WBUCKETS;
}

int w_urlcount(struct request_rec *r) {
    int h = wuc_hash(r->uri);
    struct url_node *n = wbuckets[h];
    while (n) {
        if (strcmp(n->uri, r->uri) == 0) { n->hits++; return n->hits; }
        n = n->next;
    }
    n = (struct url_node *)malloc(sizeof(struct url_node));
    n->uri = strdup(r->uri);
    n->hits = 1;
    n->next = wbuckets[h];
    wbuckets[h] = n;
    return 1;
}

int w_expires(struct request_rec *r) {
    char date[64];
    wfake_now += 7;
    sprintf(date, "t+%d GMT", wfake_now + 600);
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "Expires", date);
    return 600;
}

int w_usertrack(struct request_rec *r) {
    char buf[64];
    char *cookie = tbl_get(r->headers_in, r->n_in, "Cookie");
    if (cookie) return atoi(cookie + 11);
    wcookie_serial++;
    sprintf(buf, "Apache=user%d", wcookie_serial);
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "Set-Cookie", buf);
    return wcookie_serial;
}

int w_gzip(struct request_rec *r) {
    int head[WHASHSZ];
    int i, n, o;
    char *in = r->body;
    n = r->content_length - 1;
    for (i = 0; i < WHASHSZ; i++) head[i] = -1;
    o = 0;
    i = 0;
    while (i < n && o < 2 * BUFSZ - 4) {
        int matched = 0;
        if (i + 3 <= n) {
            int h = ((in[i] * 33 + in[i+1]) * 33 + in[i+2]) & (WHASHSZ - 1);
            int cand = head[h];
            if (cand >= 0 && i - cand < 64) {
                int len = 0;
                while (i + len < n && len < 63 && in[cand + len] == in[i + len]) len++;
                if (len >= 4) {
                    r->out[o++] = (char)255;
                    r->out[o++] = (char)(i - cand);
                    r->out[o++] = (char)len;
                    i += len;
                    matched = 1;
                }
            }
            head[h] = i;
        }
        if (!matched) { r->out[o++] = in[i]; i++; }
    }
    r->out_len = o;
    return o;
}

int w_headers(struct request_rec *r) {
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "Server", "Apache/1.2.9");
    r->n_out = tbl_set(r->headers_out, r->n_out, MAXHDR, "X-Frame-Options", "DENY");
    return r->n_out;
}

int handle(struct request_rec *r) {
    int total = 0;
    total += w_expires(r);
    total += w_headers(r);
    total += w_urlcount(r);
    total += w_usertrack(r);
    total += w_gzip(r);
    sim_send(r->out, r->out_len);
    r->status = 200;
    return total % 100000;
}
`),
})
