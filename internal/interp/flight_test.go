package interp_test

import (
	"testing"

	"gocured/internal/cil"
	"gocured/internal/flight"
	"gocured/internal/interp"
)

// TestTopSitesTieOrder pins the hot-site ordering: hits descending, then
// source position compared numerically (t.c:9 before t.c:10 — lexical order
// would reverse them), then check kind. Map iteration order must never leak
// into the report.
func TestTopSitesTieOrder(t *testing.T) {
	c := interp.Counters{Sites: map[interp.SiteKey]*interp.SiteCount{
		{Pos: "t.c:10:1", Kind: cil.CheckNull}: {Hits: 7},
		{Pos: "t.c:9:1", Kind: cil.CheckNull}:  {Hits: 7},
		{Pos: "t.c:2:5", Kind: cil.CheckSeq}:   {Hits: 7},
		{Pos: "t.c:2:5", Kind: cil.CheckNull}:  {Hits: 7},
		{Pos: "a.c:99:1", Kind: cil.CheckWild}: {Hits: 9},
	}}
	for i := 0; i < 50; i++ { // map order varies per iteration attempt
		got := c.TopSites(0)
		want := []struct {
			pos  string
			kind cil.CheckKind
		}{
			{"a.c:99:1", cil.CheckWild}, // most hits first
			{"t.c:2:5", cil.CheckNull},  // then position, numerically
			{"t.c:2:5", cil.CheckSeq},   // then kind
			{"t.c:9:1", cil.CheckNull},
			{"t.c:10:1", cil.CheckNull},
		}
		if len(got) != len(want) {
			t.Fatalf("len = %d, want %d", len(got), len(want))
		}
		for j, w := range want {
			if got[j].Pos != w.pos || got[j].Kind != w.kind {
				t.Fatalf("iteration %d: site %d = %s %s, want %s %s",
					i, j, got[j].Pos, got[j].Kind, w.pos, w.kind)
			}
		}
	}
}

// TestFlightRecorderCapturesCuredRun wires a ring into a cured execution
// and checks that the event stream carries the run: checks with resolvable
// sites, balanced call/return pairs, and allocation/free events.
func TestFlightRecorderCapturesCuredRun(t *testing.T) {
	u := build(t, `
int printf(char *fmt, ...);
void *malloc(unsigned int n);
void free(void *p);
int sum(int *p, int n) {
    int i, t = 0;
    for (i = 0; i < n; i++) t += p[i];
    return t;
}
int main(void) {
    int *p = (int*)malloc(4 * 8);
    int i;
    for (i = 0; i < 8; i++) p[i] = i;
    printf("%d\n", sum(p, 8));
    free(p);
    return 0;
}
`)
	ring := flight.NewRing(4096, "interp")
	out, err := u.RunCured(interp.Config{Flight: ring})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("unexpected trap: %v", out.Trap)
	}
	if out.Flight != ring {
		t.Fatal("Outcome.Flight not set")
	}
	if len(ring.Sites()) == 0 {
		t.Fatal("site table not attached to the ring")
	}
	var checks, allocs, frees int
	depth := 0
	var lastTS uint64
	for _, e := range ring.Events() {
		if e.TS < lastTS {
			t.Fatalf("timestamps regress: %d after %d", e.TS, lastTS)
		}
		lastTS = e.TS
		switch e.Kind {
		case flight.EvCheck:
			checks++
			if e.Site <= 0 || int(e.Site) > len(ring.Sites()) {
				t.Fatalf("check event with unresolvable site %d", e.Site)
			}
		case flight.EvAlloc:
			allocs++
		case flight.EvFree:
			frees++
		case flight.EvCall:
			depth++
		case flight.EvRet:
			depth--
		}
	}
	if checks == 0 {
		t.Error("no check events recorded")
	}
	if allocs == 0 || frees == 0 {
		t.Errorf("allocs = %d, frees = %d, want both > 0", allocs, frees)
	}
	if depth != 0 {
		t.Errorf("call/return depth = %d at end of run, want 0", depth)
	}
	if uint64(checks)+ring.Dropped() < out.Counters.Checks {
		t.Errorf("ring saw %d checks (+%d dropped) but the run executed %d",
			checks, ring.Dropped(), out.Counters.Checks)
	}
}

// TestFlightBlackBoxOnTrap checks the crash snapshot: a trapped cured run
// attaches the last ring window ending at the trap event, with the stack.
func TestFlightBlackBoxOnTrap(t *testing.T) {
	u := build(t, `
char buf[8];
void fill(char *p, int n) {
    int i;
    for (i = 0; i <= n; i++) p[i] = 'A';   /* off-by-one */
}
int main(void) {
    fill(buf, 8);
    return 0;
}
`)
	ring := flight.NewRing(1024, "interp")
	out, err := u.RunCured(interp.Config{Flight: ring})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap == nil {
		t.Fatal("overflow did not trap")
	}
	bb := out.BlackBox
	if bb == nil {
		t.Fatal("no black box attached to the trapped outcome")
	}
	if bb.TrapKind != out.Trap.Kind || bb.TrapPos != out.Trap.Pos {
		t.Errorf("black box trap %s@%s, outcome trap %s@%s",
			bb.TrapKind, bb.TrapPos, out.Trap.Kind, out.Trap.Pos)
	}
	if len(bb.Events) < 2 {
		t.Fatalf("black box has %d events, want the pre-trap window", len(bb.Events))
	}
	if len(bb.Stack) == 0 {
		t.Error("black box is missing the call stack")
	}
}

// TestProfileSampling drives the step sampler through a hot loop and
// expects the loop line to dominate the profile.
func TestProfileSampling(t *testing.T) {
	u := build(t, `
int main(void) {
    int i, t = 0;
    for (i = 0; i < 20000; i++) t += i;
    return t > 0 ? 0 : 1;
}
`)
	prof := flight.NewProfile(64)
	out, err := u.RunCured(interp.Config{Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trap != nil {
		t.Fatalf("unexpected trap: %v", out.Trap)
	}
	if prof.Total() == 0 {
		t.Fatal("no samples taken")
	}
	top := prof.Top(3)
	if len(top) == 0 {
		t.Fatal("empty profile")
	}
	if top[0].Samples == 0 || top[0].Pct <= 0 {
		t.Errorf("top line %+v has no weight", top[0])
	}
}
