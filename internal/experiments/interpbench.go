package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"gocured"
	"gocured/internal/corpus"
)

// E11: interpreter-backend throughput. Every corpus program is compiled
// once and executed in cured mode on both backends — the reference tree
// walker and the bytecode VM — and the rows report steps/second for each
// plus the per-program speedup. The two backends must agree exactly on
// observable behaviour (stdout, exit code, trap, every counter), so the
// measurement doubles as a corpus-wide differential run; any divergence
// panics. The headline number is the geometric mean speedup, tracked in
// BENCH_interp.json and gated by CI.

// InterpBenchRow is one program's tree vs vm measurement.
type InterpBenchRow struct {
	Name string `json:"name"`
	// Steps is the run's interpreter step count (identical on both
	// backends by construction).
	Steps uint64 `json:"steps"`

	// Best-of-N wall times per run, milliseconds.
	TreeMS float64 `json:"tree_ms"`
	VMMS   float64 `json:"vm_ms"`

	// Throughput in interpreter steps per second.
	TreeStepsPerSec float64 `json:"tree_steps_per_sec"`
	VMStepsPerSec   float64 `json:"vm_steps_per_sec"`

	// Speedup is vm throughput over tree throughput.
	Speedup float64 `json:"speedup"`

	// Trapped programs (the exploit demos) are still measured: both
	// backends must trap identically.
	Trapped bool `json:"trapped,omitempty"`
}

// InterpBench is the full tree vs vm comparison, serialized to
// BENCH_interp.json.
type InterpBench struct {
	Scale int              `json:"scale"`
	Reps  int              `json:"reps"`
	Rows  []InterpBenchRow `json:"rows"`
	// GeomeanSpeedup is the geometric mean of the per-program speedups —
	// the repository's headline vm/tree number.
	GeomeanSpeedup float64 `json:"geomean_speedup"`
}

// MeasureInterp compiles every corpus program once and times cured-mode
// execution on both backends, best of cfg-derived reps after one warmup
// run each. It bypasses the pipeline Runner: the point is wall time of
// the interpreter itself, not of cached artifacts.
func MeasureInterp(cfg Config) *InterpBench {
	progs := corpus.All()
	reps := 3
	bench := &InterpBench{Scale: cfg.Scale, Reps: reps, Rows: make([]InterpBenchRow, len(progs))}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, p := range progs {
		wg.Add(1)
		go func(i int, p *corpus.Program) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bench.Rows[i] = measureBackends(p, cfg.Scale, reps)
		}(i, p)
	}
	wg.Wait()
	logSum := 0.0
	for _, r := range bench.Rows {
		logSum += math.Log(r.Speedup)
	}
	bench.GeomeanSpeedup = math.Exp(logSum / float64(len(bench.Rows)))
	return bench
}

func measureBackends(p *corpus.Program, scale, reps int) InterpBenchRow {
	src := p.Source
	if scale > 0 {
		src = corpus.WithScale(p, scale)
	}
	prog, err := gocured.Compile(p.Name+".c", src, gocured.Options{TrustBadCasts: p.TrustBadCasts})
	if err != nil {
		panic(fmt.Sprintf("interpbench: build %s: %v", p.Name, err))
	}
	time1 := func(backend string) (*gocured.Result, float64) {
		opts := gocured.RunOptions{Backend: backend}
		// Warmup: the first vm run compiles the bytecode module (cached on
		// the Program thereafter); the first tree run warms layout caches.
		out, err := prog.Run(gocured.ModeCured, opts)
		if err != nil {
			panic(fmt.Sprintf("interpbench: run %s (%s): %v", p.Name, backend, err))
		}
		best := math.MaxFloat64
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, err := prog.Run(gocured.ModeCured, opts); err != nil {
				panic(fmt.Sprintf("interpbench: run %s (%s): %v", p.Name, backend, err))
			}
			if ms := float64(time.Since(t0).Nanoseconds()) / 1e6; ms < best {
				best = ms
			}
		}
		return out, best
	}
	treeOut, treeMS := time1("tree")
	vmOut, vmMS := time1("vm")
	// The backends must be observably identical — counters included.
	if treeOut.Stdout != vmOut.Stdout || treeOut.ExitCode != vmOut.ExitCode ||
		treeOut.Trapped != vmOut.Trapped || treeOut.TrapKind != vmOut.TrapKind ||
		treeOut.TrapPos != vmOut.TrapPos || treeOut.TrapMessage != vmOut.TrapMessage ||
		treeOut.Steps != vmOut.Steps || treeOut.Checks != vmOut.Checks ||
		treeOut.SimCycles != vmOut.SimCycles || treeOut.MemAccesses != vmOut.MemAccesses {
		panic(fmt.Sprintf("interpbench: %s diverges between tree and vm: steps %d/%d checks %d/%d trapped %v/%v",
			p.Name, treeOut.Steps, vmOut.Steps, treeOut.Checks, vmOut.Checks,
			treeOut.Trapped, vmOut.Trapped))
	}
	stepsPerSec := func(steps uint64, ms float64) float64 {
		if ms <= 0 {
			return 0
		}
		return float64(steps) / (ms / 1000)
	}
	return InterpBenchRow{
		Name:            p.Name,
		Steps:           treeOut.Steps,
		TreeMS:          treeMS,
		VMMS:            vmMS,
		TreeStepsPerSec: stepsPerSec(treeOut.Steps, treeMS),
		VMStepsPerSec:   stepsPerSec(vmOut.Steps, vmMS),
		Speedup:         treeMS / vmMS,
		Trapped:         vmOut.Trapped,
	}
}

// InterpSpeed renders E11 as a table.
func InterpSpeed(cfg Config) *Table {
	b := MeasureInterp(cfg)
	t := &Table{
		ID:    "E11",
		Title: "interpreter backends: tree walker vs bytecode vm (cured mode)",
		Note: "best-of-" + fmt.Sprint(b.Reps) + " wall times; both backends are verified\n" +
			"bit-identical on stdout, traps, and every counter before timing counts",
		Header: []string{"program", "steps", "tree ms", "vm ms",
			"tree steps/s", "vm steps/s", "speedup"},
	}
	for _, r := range b.Rows {
		name := r.Name
		if r.Trapped {
			name += "*"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(r.Steps),
			fmt.Sprintf("%.2f", r.TreeMS), fmt.Sprintf("%.2f", r.VMMS),
			fmt.Sprintf("%.0f", r.TreeStepsPerSec), fmt.Sprintf("%.0f", r.VMStepsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	t.Rows = append(t.Rows, []string{
		"GEOMEAN", "", "", "", "", "", fmt.Sprintf("%.2fx", b.GeomeanSpeedup),
	})
	return t
}

// WriteInterpBench runs MeasureInterp and writes the result as indented
// JSON — the BENCH_interp.json artifact tracked in the repository and
// gated by CI.
func WriteInterpBench(cfg Config, path string) (*InterpBench, error) {
	b := MeasureInterp(cfg)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}
