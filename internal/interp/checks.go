package interp

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/flight"
)

// execCheck executes one CCured run-time check (Appendix A). The pointer
// operand is re-evaluated; IR expressions are pure, so this mirrors the
// repeated metadata reads of the generated code.
// checkCost weighs each check kind in simulated cycles: SAFE null checks
// are one compare; SEQ bounds are two; WILD pays the header read, the area
// lookup and tag work; RTTI walks the subtype relation.
var checkCost = map[cil.CheckKind]uint64{
	cil.CheckNull:        1,
	cil.CheckSeq:         2,
	cil.CheckSeqArith:    0,
	cil.CheckWild:        6,
	cil.CheckWildRead:    3,
	cil.CheckWildWrite:   3,
	cil.CheckRtti:        3,
	cil.CheckStackEscape: 2,
	cil.CheckSeqToSafe:   2,
	cil.CheckNotStackPtr: 1,
	cil.CheckVerifyNul:   1,
	cil.CheckIndex:       1,
}

func (m *Machine) execCheck(fr *frame, c *cil.Check) {
	m.cnt.Checks++
	m.cnt.ChecksByKind[c.Kind]++
	if sc := m.siteCount(c); sc != nil {
		sc.Hits++
	}
	m.addCost(checkCost[c.Kind])
	if m.rec != nil {
		m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvCheck, Site: c.Site, Arg: uint64(c.Size)})
	}
	// Track the in-flight check so a trap raised anywhere below (including
	// inside mem) is attributed to this site; restore on normal exit and on
	// unwind alike.
	prev := m.curCheck
	m.curCheck = c
	defer func() { m.curCheck = prev }()
	switch c.Kind {
	case cil.CheckNull:
		v := m.evalExpr(fr, c.Ptr)
		if v.P == 0 {
			m.trapf("null", "null pointer dereference")
		}

	case cil.CheckSeq:
		v := m.evalExpr(fr, c.Ptr)
		if v.P == 0 {
			m.trapf("null", "null SEQ pointer dereference")
		}
		if v.B == 0 {
			m.trapf("int-deref", "dereference of an integer disguised as a pointer")
		}
		if v.P < v.B || v.P+uint32(c.Size) > v.E {
			m.trapf("bounds", "SEQ access out of bounds: p=0x%x not in [0x%x, 0x%x-%d]",
				v.P, v.B, v.E, c.Size)
		}

	case cil.CheckSeqToSafe:
		v := m.evalExpr(fr, c.Ptr)
		if v.P == 0 {
			return // null converts freely
		}
		if v.B == 0 {
			m.trapf("int-deref", "conversion of a disguised integer to a SAFE pointer")
		}
		if v.P < v.B || v.P+uint32(c.Size) > v.E {
			m.trapf("bounds", "SEQ->SAFE conversion out of bounds: p=0x%x not in [0x%x, 0x%x-%d]",
				v.P, v.B, v.E, c.Size)
		}

	case cil.CheckWild:
		v := m.evalExpr(fr, c.Ptr)
		if v.P == 0 {
			m.trapf("null", "null WILD pointer dereference")
		}
		if v.B == 0 {
			m.trapf("int-deref", "dereference of an integer disguised as a WILD pointer")
		}
		blk := m.mem.BlockAt(v.B)
		if blk == nil {
			m.trapf("bounds", "WILD pointer base 0x%x is not a valid area", v.B)
		}
		// The paper's WILD areas keep their length in a header word: pay
		// for the header read.
		if _, err := m.mem.ReadWord(blk.Addr); err != nil {
			m.check(err)
		}
		if v.P < blk.Addr || v.P+uint32(c.Size) > blk.End() {
			m.trapf("bounds", "WILD access out of bounds: p=0x%x size %d in area %q [0x%x,0x%x)",
				v.P, c.Size, blk.Name, blk.Addr, blk.End())
		}
		// Tag bookkeeping touches every word of the access.
		blk.MakeWild()
		for off := uint32(0); off < uint32(c.Size); off += 4 {
			_ = blk.TagAt(v.P + off)
		}

	case cil.CheckWildRead:
		// Reading a pointer out of a dynamically-typed area: the tags must
		// say a valid base/pointer pair lives here.
		v := m.evalExpr(fr, c.Ptr)
		blk := m.mem.BlockAt(v.B)
		if blk == nil || !blk.Wild {
			m.trapf("tag", "WILD pointer read from untagged area")
		}
		if blk.TagAt(v.P) != 1 || blk.TagAt(v.P+4) != 0 {
			m.trapf("tag", "WILD read of a non-pointer as a pointer (tag check failed at 0x%x)", v.P)
		}

	case cil.CheckWildWrite:
		// Tag updates happen in storePtr; the check instruction exists to
		// account for the write-barrier cost and to verify the area.
		v := m.evalExpr(fr, c.Ptr)
		if blk := m.mem.BlockAt(v.B); blk != nil {
			blk.MakeWild()
		}

	case cil.CheckRtti:
		v := m.evalExpr(fr, c.Ptr)
		if v.P == 0 {
			return // null downcasts freely
		}
		target := m.hier.Of(c.RttiTarget)
		if v.RT == nil {
			// Fresh allocation: adopts any type that fits in the block.
			blk := m.mem.BlockAt(v.P)
			if blk == nil {
				m.trapf("rtti", "downcast of pointer 0x%x to %s: no underlying object", v.P, target)
			}
			if blk.Fresh {
				if v.P+uint32(c.Size) > blk.End() {
					m.trapf("rtti", "downcast to %s does not fit in %d-byte allocation",
						target, blk.Size)
				}
				return
			}
			// A bounded pointer whose type info was lost at a library
			// boundary (e.g. qsort handing elements back to a cured
			// comparator): reinterpreting pointer-free data is memory-
			// safe, so allow it when the target fits within the bounds.
			if v.B != 0 && !ctypes.ContainsPointer(c.RttiTarget) &&
				v.P >= v.B && v.P+uint32(c.Size) <= v.E {
				return
			}
			m.trapf("rtti", "downcast of pointer without run-time type information to %s", target)
		}
		if !m.hier.IsSubtype(v.RT, target) {
			m.trapf("rtti", "checked downcast failed: %s is not a subtype of %s", v.RT, target)
		}

	case cil.CheckStackEscape:
		v := m.evalExpr(fr, c.Ptr)
		if v.K != VPtr || v.P == 0 || !m.mem.InStack(v.P) {
			return
		}
		dst, _, _ := m.evalLval(fr, c.DstLV)
		if !m.mem.InStack(dst) {
			m.trapf("stack-escape", "storing a stack pointer (0x%x) into non-stack memory (0x%x)",
				v.P, dst)
		}

	case cil.CheckIndex:
		idx := m.evalExpr(fr, c.Ptr).AsInt()
		if idx < 0 || (c.Size >= 0 && idx >= int64(c.Size)) {
			m.trapf("bounds", "array index %d out of range [0, %d)", idx, c.Size)
		}

	case cil.CheckVerifyNul:
		v := m.evalExpr(fr, c.Ptr)
		m.verifyNul(v)

	default:
		m.trapf("internal", "unknown check kind %s", c.Kind)
	}
}

// verifyNul implements the __verify_nul wrapper helper: the string must
// contain a NUL before its bounds end.
func (m *Machine) verifyNul(v Value) {
	if v.P == 0 {
		m.trapf("null", "__verify_nul of null string")
	}
	limit := uint32(1 << 20)
	if v.B != 0 && v.E > v.P {
		limit = v.E - v.P
	}
	for i := uint32(0); i < limit; i++ {
		b, err := m.mem.ReadInt(v.P+i, 1, false)
		m.check(err)
		if b == 0 {
			return
		}
	}
	m.trapf("bounds", "__verify_nul: string is not NUL-terminated within bounds")
}
