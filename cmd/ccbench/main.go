// Command ccbench regenerates every table and figure of the paper's
// evaluation on the gocured corpus.
//
// Usage:
//
//	ccbench [-scale N] [-j N] [-only E3] [-trace-dir DIR]
//
// With -trace-dir, ccbench writes two Perfetto-loadable Chrome trace-event
// files into DIR: pipeline.json (one track per pipeline worker showing job
// compile/run phases and traps) and e9-ftpd-cured.json (the flight
// recording of a cured ftpd exploit run, checks and all, ending in the
// trap that stops the overflow).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/experiments"
	"gocured/internal/flight"
	"gocured/internal/pipeline"
)

// writeFtpdTrace compiles the corpus ftpd and replays the E9 exploit
// session cured with the flight recorder on, writing the trace-event JSON.
func writeFtpdTrace(path string) error {
	p := corpus.ByName("ftpd")
	prog, err := gocured.Compile(p.Name+".c", p.Source, gocured.Options{TrustBadCasts: p.TrustBadCasts})
	if err != nil {
		return fmt.Errorf("compile ftpd: %w", err)
	}
	res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{
		Stdin: []byte(corpus.FtpdExploitInput),
		Trace: true,
	})
	if err != nil {
		return fmt.Errorf("run ftpd: %w", err)
	}
	if !res.Trapped {
		return fmt.Errorf("cured ftpd exploit did not trap")
	}
	return os.WriteFile(path, res.TraceJSON, 0o644)
}

func main() {
	scale := flag.Int("scale", 0, "override the corpus SCALE constant (0 = source default)")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent curing/execution jobs")
	only := flag.String("only", "", "run a single experiment by id (E1..E11)")
	optJSON := flag.String("opt-json", "", "write the E10 -O0 vs -O comparison to this file as JSON (BENCH_opt.json)")
	interpJSON := flag.String("interp-json", "", "write the E11 tree vs vm backend comparison to this file as JSON (BENCH_interp.json)")
	storeJSON := flag.String("store-json", "", "write the E12 artifact-store cold/warm/edit comparison to this file as JSON (BENCH_store.json)")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory for -store-json and compiles (empty = a throwaway temp directory)")
	traceDir := flag.String("trace-dir", "", "write Perfetto trace-event files (pipeline.json, e9-ftpd-cured.json) into this directory")
	flag.Parse()

	var recorder *flight.Recorder
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		recorder = flight.NewRecorder(0)
	}
	arts, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := experiments.Config{
		Scale:  *scale,
		Jobs:   *jobs,
		Runner: pipeline.NewRunner(pipeline.RunnerOptions{Workers: *jobs, Flight: recorder, Store: arts}),
	}
	// writeTraces renders the flight recordings once the requested
	// experiments have run (on every exit path that executed jobs).
	writeTraces := func() {
		if *traceDir == "" {
			return
		}
		pipePath := filepath.Join(*traceDir, "pipeline.json")
		f, err := os.Create(pipePath)
		if err == nil {
			err = flight.WriteTrace(f, recorder.Rings())
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", pipePath, err)
			os.Exit(1)
		}
		ftpdPath := filepath.Join(*traceDir, "e9-ftpd-cured.json")
		if err := writeFtpdTrace(ftpdPath); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", ftpdPath, err)
			os.Exit(1)
		}
		fmt.Printf("-- traces: %s, %s (load in Perfetto)\n", pipePath, ftpdPath)
	}

	all := map[string]func(experiments.Config) *experiments.Table{
		"E1":  experiments.CastClassification,
		"E2":  experiments.Fig8Apache,
		"E3":  experiments.Fig9System,
		"E4":  experiments.IjpegRTTI,
		"E5":  experiments.MicroSuite,
		"E6":  experiments.SplitOverhead,
		"E7":  experiments.BindCasts,
		"E8":  experiments.SplitStats,
		"E9":  experiments.Exploits,
		"E10": experiments.OptOverhead,
		"E11": experiments.InterpSpeed,
		"E12": experiments.StoreWarmth,
	}
	if *storeJSON != "" {
		dir := *storeDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "gocured-store-")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		b, err := experiments.WriteStoreBench(cfg, dir, *storeJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: cold re-cured %d/%d functions, warm re-cured %d, one-line edits re-cured %.1f%% (%d/%d)\n",
			*storeJSON, b.ColdRecured, b.TotalFuncs, b.WarmRecured,
			b.EditPct, b.EditRecured, b.EditedFuncs)
		writeTraces()
		return
	}
	if *interpJSON != "" {
		b, err := experiments.WriteInterpBench(cfg, *interpJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: bytecode vm is %.2fx the tree walker (geomean over %d programs)\n",
			*interpJSON, b.GeomeanSpeedup, len(b.Rows))
		writeTraces()
		return
	}
	if *optJSON != "" {
		b, err := experiments.WriteOptBench(cfg, *optJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: dynamic checks %d (-O0) -> %d (-O), %.1f%% eliminated\n",
			*optJSON, b.TotalChecksO0, b.TotalChecksO, b.DynReductionPct)
		writeTraces()
		return
	}
	if *only != "" {
		fn, ok := all[*only]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E11)\n", *only)
			os.Exit(2)
		}
		fmt.Println(fn(cfg).Format())
		writeTraces()
		return
	}
	for _, t := range experiments.All(cfg) {
		fmt.Println(t.Format())
	}
	writeTraces()
	m := cfg.Runner.Metrics()
	fmt.Printf("-- pipeline: %d jobs on %d workers, cache %d/%d hit/miss, compile mean %.1fms p99 %.1fms, run mean %.1fms, e2e p50/p99 %.1f/%.1fms\n",
		m.JobsRun, m.Workers, m.Cache.Hits, m.Cache.Misses,
		m.CompileWall.MeanMS(), m.CompileWall.Quantile(0.99), m.RunWall.MeanMS(),
		m.E2EWall.Quantile(0.50), m.E2EWall.Quantile(0.99))
}
