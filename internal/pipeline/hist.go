package pipeline

import (
	"math"
	"sync"
	"time"
)

// The latency histograms use HDR-style logarithmic buckets: bounds grow by
// a factor of 2^(1/4) (four sub-buckets per octave, ~19% relative width,
// so a quantile read from the buckets is within ~9% of the true value)
// from 1µs to ~74s, with a final +Inf overflow bucket. One fixed bound
// table serves every duration-shaped metric — end-to-end latency,
// queue wait, per-phase compile times — so snapshots from different
// sources merge bucket-for-bucket; the queue-depth histogram reuses it as
// a dimensionless scale (depth n lands in the bucket bounding n).
const (
	logBucketsPerOctave = 4
	logBucketCount      = 105 // 26+ octaves: 0.001ms .. ~74s
	logBucketMinMS      = 0.001
)

// logBucketStep is the ratio between adjacent bucket bounds; bound i-1 is
// bound i divided by this factor.
var logBucketStep = math.Exp2(1.0 / logBucketsPerOctave)

// logBoundsMS are the inclusive upper bounds, in milliseconds.
var logBoundsMS = func() [logBucketCount]float64 {
	var b [logBucketCount]float64
	for i := range b {
		b[i] = logBucketMinMS * math.Exp2(float64(i)/logBucketsPerOctave)
	}
	return b
}()

// logBucketFor returns the index of the bucket holding ms (len(bounds)
// marks the overflow bucket). Bounds are inclusive: ms == bound i lands in
// bucket i.
func logBucketFor(ms float64) int {
	if ms <= logBoundsMS[0] {
		return 0
	}
	if ms > logBoundsMS[logBucketCount-1] {
		return logBucketCount
	}
	// log2(ms / min) * perOctave, then fix up float edge error locally.
	i := int(math.Ceil(math.Log2(ms/logBucketMinMS) * logBucketsPerOctave))
	if i < 0 {
		i = 0
	}
	if i >= logBucketCount {
		i = logBucketCount - 1
	}
	for i > 0 && ms <= logBoundsMS[i-1] {
		i--
	}
	for i < logBucketCount-1 && ms > logBoundsMS[i] {
		i++
	}
	return i
}

// Exemplar links one histogram bucket to the trace of a request that
// landed in it (OpenMetrics exemplar semantics): follow TraceID to
// GET /traces/{id} for the full span timeline of a representative
// observation. Retention is last-per-bucket: each new observation with a
// trace ID replaces the bucket's exemplar.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	ValueMS float64 `json:"value_ms"`
}

// HistBucket is one histogram bucket in a snapshot. Empty buckets are
// omitted from snapshots; LeMS 0 marks the +Inf overflow bucket.
type HistBucket struct {
	LeMS     float64   `json:"le_ms"`
	Count    uint64    `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Histogram is an immutable snapshot of a latency distribution: sparse
// non-empty buckets over the canonical log-bucket bounds, with per-bucket
// exemplars. It marshals into /metrics JSON and backs the Prometheus
// rendering.
type Histogram struct {
	Count   uint64       `json:"count"`
	SumMS   float64      `json:"sum_ms"`
	MaxMS   float64      `json:"max_ms"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// MeanMS returns the mean observation in milliseconds.
func (h Histogram) MeanMS() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumMS / float64(h.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) in milliseconds,
// linearly interpolated inside the bucket holding the target rank. The
// overflow bucket reports MaxMS. An empty histogram reports 0.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		if b.LeMS == 0 { // overflow
			return h.MaxMS
		}
		if float64(cum+b.Count) >= target {
			// Interpolate from the bucket's own canonical lower bound, not
			// the previous non-empty snapshot bucket: sparse snapshots elide
			// empty buckets, and interpolating across an elided run would
			// drag the estimate far below the bucket that actually holds the
			// target rank (bimodal latency understating p99).
			lower := 0.0
			if b.LeMS > logBoundsMS[0] {
				lower = b.LeMS / logBucketStep
			}
			frac := (target - float64(cum)) / float64(b.Count)
			v := lower + frac*(b.LeMS-lower)
			if v > h.MaxMS && h.MaxMS > 0 {
				v = h.MaxMS
			}
			return v
		}
		cum += b.Count
	}
	return h.MaxMS
}

// Merge folds another snapshot into h bucket-for-bucket (both use the
// canonical bounds). The merged bucket keeps o's exemplar when it has one
// (o is the newer snapshot in every call site), else h's.
func (h *Histogram) Merge(o Histogram) {
	if o.Count == 0 {
		return
	}
	h.Count += o.Count
	h.SumMS += o.SumMS
	if o.MaxMS > h.MaxMS {
		h.MaxMS = o.MaxMS
	}
	byLe := make(map[float64]int, len(h.Buckets))
	for i, b := range h.Buckets {
		byLe[b.LeMS] = i
	}
	for _, b := range o.Buckets {
		if i, ok := byLe[b.LeMS]; ok {
			h.Buckets[i].Count += b.Count
			if b.Exemplar != nil {
				h.Buckets[i].Exemplar = b.Exemplar
			}
			continue
		}
		h.Buckets = append(h.Buckets, b)
	}
	// Restore bound order (overflow bucket, LeMS 0, sorts last).
	sortBuckets(h.Buckets)
}

func sortBuckets(bs []HistBucket) {
	le := func(b HistBucket) float64 {
		if b.LeMS == 0 {
			return math.Inf(1)
		}
		return b.LeMS
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && le(bs[j]) < le(bs[j-1]); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// LogHist is the mutable accumulator behind a Histogram snapshot: fixed
// log buckets, a last-per-bucket exemplar slot, and one mutex. Observe is
// a few loads and stores — far off any hot path (one observation per job
// phase) — so a mutex beats the complexity of striping. The zero value is
// ready to use; LogHist must not be copied after first use.
type LogHist struct {
	mu        sync.Mutex
	count     uint64
	sumMS     float64
	maxMS     float64
	buckets   [logBucketCount + 1]uint64
	exemplars [logBucketCount + 1]Exemplar
}

// Observe records a duration with an optional exemplar trace ID.
func (h *LogHist) Observe(d time.Duration, traceID string) {
	h.ObserveMS(float64(d)/float64(time.Millisecond), traceID)
}

// ObserveMS records a raw millisecond (or dimensionless) value.
func (h *LogHist) ObserveMS(ms float64, traceID string) {
	if ms < 0 || math.IsNaN(ms) {
		ms = 0
	}
	i := logBucketFor(ms)
	h.mu.Lock()
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
	h.buckets[i]++
	if traceID != "" {
		h.exemplars[i] = Exemplar{TraceID: traceID, ValueMS: ms}
	}
	h.mu.Unlock()
}

// Snapshot returns an immutable copy with empty buckets elided.
func (h *LogHist) Snapshot() Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := Histogram{Count: h.count, SumMS: h.sumMS, MaxMS: h.maxMS}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := HistBucket{Count: n}
		if i < logBucketCount {
			b.LeMS = logBoundsMS[i]
		}
		if e := h.exemplars[i]; e.TraceID != "" {
			ex := e
			b.Exemplar = &ex
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}
