package cil

import (
	"strings"
	"testing"

	"gocured/internal/cparse"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/sema"
)

// lower is the test pipeline: parse, check, lower.
func lower(t *testing.T, src string) *Program {
	t.Helper()
	var d diag.List
	file := cparse.Parse("test.c", src, &d)
	unit := sema.Check(file, &d)
	prog := Lower(unit, &d)
	if d.HasErrors() {
		t.Fatalf("pipeline errors:\n%v", d.Err())
	}
	return prog
}

func TestLowerSimpleFunction(t *testing.T) {
	prog := lower(t, `
int add(int a, int b) { return a + b; }
`)
	f := prog.Lookup("add")
	if f == nil {
		t.Fatal("missing function add")
	}
	if len(f.Params) != 2 {
		t.Fatalf("params = %d", len(f.Params))
	}
	// Body: return (a + b); plus the implicit trailing return.
	ret, ok := f.Body.Stmts[0].(*Return)
	if !ok {
		t.Fatalf("first stmt = %T, want Return", f.Body.Stmts[0])
	}
	bin, ok := ret.X.(*BinOp)
	if !ok || bin.Op != OpAdd {
		t.Fatalf("return expr = %s", ExprString(ret.X))
	}
}

func TestLowerPointerArithmetic(t *testing.T) {
	prog := lower(t, `
int sum(int *p, int n) {
    int total = 0;
    int i;
    for (i = 0; i < n; i++) total += p[i];
    return total;
}
`)
	var sawAddPI bool
	walkExprs(prog.Lookup("sum").Body, func(e Expr) {
		if b, ok := e.(*BinOp); ok && b.Op == OpAddPI {
			sawAddPI = true
		}
	})
	if !sawAddPI {
		t.Error("expected pointer arithmetic (OpAddPI) from p[i]")
	}
}

func TestLowerShortCircuit(t *testing.T) {
	prog := lower(t, `
int f(int a, int b) { return a && b; }
int g(int a, int b) { return a || b; }
`)
	for _, name := range []string{"f", "g"} {
		fn := prog.Lookup(name)
		found := false
		var scan func(stmts []Stmt)
		scan = func(stmts []Stmt) {
			for _, s := range stmts {
				if iff, ok := s.(*If); ok {
					found = true
					scan(iff.Then.Stmts)
				}
			}
		}
		scan(fn.Body.Stmts)
		if !found {
			t.Errorf("%s: short-circuit operator did not lower to If", name)
		}
	}
}

func TestLowerIncDecSemantics(t *testing.T) {
	prog := lower(t, `
int post(int x) { int y; y = x++; return y * 100 + x; }
int pre(int x) { int y; y = ++x; return y * 100 + x; }
`)
	// Structural check: both produce at least two Sets (save + update).
	for _, name := range []string{"post", "pre"} {
		sets := 0
		walkInstrs(prog.Lookup(name).Body, func(i Instr) {
			if _, ok := i.(*Set); ok {
				sets++
			}
		})
		if sets < 3 {
			t.Errorf("%s: got %d sets, want >= 3", name, sets)
		}
	}
}

func TestLowerCallWithCasts(t *testing.T) {
	prog := lower(t, `
void use(void *p);
int main(void) {
    int x = 5;
    use(&x);
    return 0;
}
`)
	var call *Call
	walkInstrs(prog.Lookup("main").Body, func(i Instr) {
		if c, ok := i.(*Call); ok {
			call = c
		}
	})
	if call == nil {
		t.Fatal("missing call to use")
	}
	cast, ok := call.Args[0].(*Cast)
	if !ok {
		t.Fatalf("argument = %s, want an implicit cast to void*", ExprString(call.Args[0]))
	}
	if !cast.Implicit || !cast.To.IsPointer() || !cast.To.Elem.IsVoid() {
		t.Errorf("cast = %s", ExprString(cast))
	}
	if len(prog.Externs) != 1 || prog.Externs[0].Name != "use" {
		t.Errorf("externs = %v", prog.Externs)
	}
}

func TestLowerGlobalInits(t *testing.T) {
	prog := lower(t, `
int x = 42;
char *msg = "hello";
int table[3] = { 7, 8, 9 };
int f(void);
int (*fp)(void) = f;
int f(void) { return 0; }
`)
	byName := map[string]*Global{}
	for _, g := range prog.Globals {
		byName[g.Var.Name] = g
	}
	if c, ok := byName["x"].Init.Expr.(*Const); !ok || c.I != 42 {
		t.Errorf("x init = %#v", byName["x"].Init)
	}
	if _, ok := byName["msg"].Init.Expr.(*StrConst); !ok {
		t.Errorf("msg init = %#v", byName["msg"].Init)
	}
	if !byName["table"].Init.IsList || len(byName["table"].Init.List) != 3 {
		t.Errorf("table init = %#v", byName["table"].Init)
	}
	if fc, ok := byName["fp"].Init.Expr.(*FnConst); !ok || fc.Name != "f" {
		t.Errorf("fp init = %#v", byName["fp"].Init)
	}
}

func TestLowerAddrOfSharesNode(t *testing.T) {
	prog := lower(t, `
int g;
int *p1;
int *p2;
void f(void) {
    p1 = &g;
    p2 = &g;
}
`)
	var addrTypes []*ctypes.Type
	walkExprs(prog.Lookup("f").Body, func(e Expr) {
		if a, ok := e.(*AddrOf); ok {
			addrTypes = append(addrTypes, a.Ty)
		}
	})
	if len(addrTypes) != 2 {
		t.Fatalf("addr-of sites = %d, want 2", len(addrTypes))
	}
	if addrTypes[0] != addrTypes[1] {
		t.Error("&g sites must share one pointer type occurrence (one qualifier node)")
	}
}

func TestLowerSwitchFallthrough(t *testing.T) {
	prog := lower(t, `
int f(int x) {
    int r = 0;
    switch (x) {
    case 1: r = 1;
    case 2: r += 10; break;
    default: r = -1;
    }
    return r;
}
`)
	var sw *Switch
	var scan func(stmts []Stmt)
	scan = func(stmts []Stmt) {
		for _, s := range stmts {
			if s2, ok := s.(*Switch); ok {
				sw = s2
			}
		}
	}
	scan(prog.Lookup("f").Body.Stmts)
	if sw == nil {
		t.Fatal("switch did not survive lowering")
	}
	if len(sw.Cases) != 3 {
		t.Errorf("cases = %d, want 3", len(sw.Cases))
	}
}

func TestPrinterOutput(t *testing.T) {
	prog := lower(t, `
int inc(int x) { return x + 1; }
`)
	var b strings.Builder
	Print(&b, prog)
	out := b.String()
	for _, want := range []string{"func inc", "return (x + 1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q:\n%s", want, out)
		}
	}
}

// ---- IR walking helpers (exported for use by other test packages would be
// overkill; tests in other packages re-walk with the public Walk helpers
// below if needed) ----

func walkInstrs(b *Block, f func(Instr)) {
	walkStmts(b.Stmts, func(s Stmt) {
		if si, ok := s.(*SInstr); ok {
			f(si.Ins)
		}
	})
}

func walkStmts(stmts []Stmt, f func(Stmt)) {
	for _, s := range stmts {
		f(s)
		switch st := s.(type) {
		case *Block:
			walkStmts(st.Stmts, f)
		case *If:
			walkStmts(st.Then.Stmts, f)
			if st.Else != nil {
				walkStmts(st.Else.Stmts, f)
			}
		case *Loop:
			walkStmts(st.Body.Stmts, f)
			if st.Post != nil {
				walkStmts(st.Post.Stmts, f)
			}
		case *Switch:
			for _, c := range st.Cases {
				walkStmts(c.Body, f)
			}
		}
	}
}

func walkExprs(b *Block, f func(Expr)) {
	var we func(e Expr)
	we = func(e Expr) {
		if e == nil {
			return
		}
		f(e)
		switch x := e.(type) {
		case *Lval:
			walkLvalExprs(x.LV, we)
		case *AddrOf:
			walkLvalExprs(x.LV, we)
		case *BinOp:
			we(x.A)
			we(x.B)
		case *UnOp:
			we(x.X)
		case *Cast:
			we(x.X)
		}
	}
	walkStmts(b.Stmts, func(s Stmt) {
		switch st := s.(type) {
		case *SInstr:
			switch in := st.Ins.(type) {
			case *Set:
				walkLvalExprs(in.LV, we)
				we(in.RHS)
			case *Call:
				if in.Result != nil {
					walkLvalExprs(in.Result, we)
				}
				we(in.Fn)
				for _, a := range in.Args {
					we(a)
				}
			case *Check:
				we(in.Ptr)
			}
		case *If:
			we(st.Cond)
		case *Return:
			if st.X != nil {
				we(st.X)
			}
		case *Switch:
			we(st.X)
		}
	})
}

func walkLvalExprs(lv *Lvalue, we func(Expr)) {
	if lv.Mem != nil {
		we(lv.Mem)
	}
	for _, o := range lv.Offset {
		if o.Index != nil {
			we(o.Index)
		}
	}
}
