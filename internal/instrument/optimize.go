package instrument

import (
	"fmt"

	"gocured/internal/cil"
)

// Redundant-check elimination. The paper notes that, unlike binary
// instrumentors, CCured can use static information to remove checks; this
// pass removes a check when an identical check is already established on
// the same straight-line path and nothing that could change its outcome has
// intervened.
//
// The analysis is local and conservative:
//
//   - facts are keyed by (check kind, pointer expression, size, target);
//   - a Set to a variable kills facts that mention that variable;
//   - a store through memory kills facts that read memory or mention
//     address-taken variables (potential aliases);
//   - a call kills the same set (a callee cannot touch the caller's
//     non-address-taken locals);
//   - entering or leaving nested control flow clears all facts.

// factDeps describes what a check's operands depend on.
type factDeps struct {
	vars     map[*cil.Var]bool
	memRead  bool
	addrVars bool // references an address-taken variable
}

func depsOf(c *cil.Check) factDeps {
	d := factDeps{vars: make(map[*cil.Var]bool)}
	scan := func(e cil.Expr) {
		cil.WalkExpr(e, func(x cil.Expr) {
			switch v := x.(type) {
			case *cil.Lval:
				if v.LV.Var != nil {
					d.vars[v.LV.Var] = true
					if v.LV.Var.AddrTaken || v.LV.Var.Global {
						d.addrVars = true
					}
					if len(v.LV.Offset) > 0 {
						// reading through offsets touches memory
						d.memRead = true
					}
				} else {
					d.memRead = true
				}
			case *cil.AddrOf:
				if v.LV.Mem != nil {
					d.memRead = true
				}
			}
		})
	}
	scan(c.Ptr)
	if c.DstLV != nil {
		cil.WalkLvalue(c.DstLV, func(e cil.Expr) { scan(e) })
		if c.DstLV.Var != nil {
			d.vars[c.DstLV.Var] = true
		} else {
			d.memRead = true
		}
	}
	return d
}

func factKey(c *cil.Check) string {
	key := fmt.Sprintf("%d|%s|%d", c.Kind, cil.ExprString(c.Ptr), c.Size)
	if c.RttiTarget != nil {
		key += "|" + c.RttiTarget.String()
	}
	if c.DstLV != nil {
		key += "|dst:" + cil.LvalString(c.DstLV)
	}
	return key
}

type factSet struct {
	facts map[string]factDeps
}

func newFactSet() *factSet { return &factSet{facts: make(map[string]factDeps)} }

func (fs *factSet) clear() {
	for k := range fs.facts {
		delete(fs.facts, k)
	}
}

// killVar removes facts that depend on v.
func (fs *factSet) killVar(v *cil.Var) {
	for k, d := range fs.facts {
		if d.vars[v] {
			delete(fs.facts, k)
		}
	}
}

// killMem removes facts that could be invalidated by a memory write or a
// call: anything reading memory or referencing address-taken variables.
func (fs *factSet) killMem() {
	for k, d := range fs.facts {
		if d.memRead || d.addrVars {
			delete(fs.facts, k)
		}
	}
}

// Optimize removes redundant checks from every function of prog and returns
// the number of checks eliminated.
func Optimize(prog *cil.Program) int {
	removed := 0
	for _, f := range prog.Funcs {
		removed += optimizeBlock(f.Body)
	}
	return removed
}

func optimizeBlock(b *cil.Block) int {
	removed := 0
	fs := newFactSet()
	var out []cil.Stmt
	for _, s := range b.Stmts {
		si, isInstr := s.(*cil.SInstr)
		if !isInstr {
			// Nested control flow: optimize inside with a fresh state and
			// assume nothing afterwards.
			switch st := s.(type) {
			case *cil.Block:
				removed += optimizeBlock(st)
			case *cil.If:
				removed += optimizeBlock(st.Then)
				if st.Else != nil {
					removed += optimizeBlock(st.Else)
				}
			case *cil.Loop:
				removed += optimizeBlock(st.Body)
				if st.Post != nil {
					removed += optimizeBlock(st.Post)
				}
			case *cil.Switch:
				for _, c := range st.Cases {
					inner := &cil.Block{Stmts: c.Body}
					removed += optimizeBlock(inner)
					c.Body = inner.Stmts
				}
			}
			fs.clear()
			out = append(out, s)
			continue
		}
		switch in := si.Ins.(type) {
		case *cil.Check:
			key := factKey(in)
			if _, known := fs.facts[key]; known {
				removed++
				continue // drop the redundant check
			}
			fs.facts[key] = depsOf(in)
			out = append(out, s)
		case *cil.Set:
			if in.LV.Var != nil && len(in.LV.Offset) == 0 {
				fs.killVar(in.LV.Var)
			} else {
				fs.killMem()
				if in.LV.Var != nil {
					fs.killVar(in.LV.Var)
				}
			}
			out = append(out, s)
		case *cil.Call:
			fs.killMem()
			if in.Result != nil {
				if in.Result.Var != nil && len(in.Result.Offset) == 0 {
					fs.killVar(in.Result.Var)
				} else {
					fs.killMem()
				}
			}
			out = append(out, s)
		default:
			fs.clear()
			out = append(out, s)
		}
	}
	b.Stmts = out
	return removed
}
