package pipeline

import (
	"expvar"
	"sync"
	"time"

	"gocured/internal/store"
)

// histBoundsMS are the upper bounds (milliseconds, inclusive) of the wall
// time histogram buckets; a final overflow bucket catches the rest.
var histBoundsMS = [...]float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// HistBucket is one cumulative-free histogram bucket.
type HistBucket struct {
	LeMS  float64 `json:"le_ms"` // upper bound; 0 marks the overflow bucket
	Count uint64  `json:"count"`
}

// Histogram is a snapshot of a wall-time distribution.
type Histogram struct {
	Count   uint64       `json:"count"`
	SumMS   float64      `json:"sum_ms"`
	MaxMS   float64      `json:"max_ms"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// MeanMS returns the mean observation in milliseconds.
func (h Histogram) MeanMS() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumMS / float64(h.Count)
}

// histogram is the mutable accumulator behind a Histogram snapshot.
type histogram struct {
	count   uint64
	sumMS   float64
	maxMS   float64
	buckets [len(histBoundsMS) + 1]uint64
}

func (h *histogram) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
	for i, le := range histBoundsMS {
		if ms <= le {
			h.buckets[i]++
			return
		}
	}
	h.buckets[len(histBoundsMS)]++
}

func (h *histogram) snapshot() Histogram {
	out := Histogram{Count: h.count, SumMS: h.sumMS, MaxMS: h.maxMS}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := HistBucket{Count: n}
		if i < len(histBoundsMS) {
			b.LeMS = histBoundsMS[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// BuildInfo identifies the running build: the gocured analysis revision,
// the Go toolchain, and whether the check optimizer is on by default. It
// feeds the gocured_build_info Prometheus gauge, the standard pattern for
// joining metrics against deployment metadata.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Optimizer string `json:"optimizer"` // "on" or "off"
}

// Metrics is a point-in-time snapshot of a Runner's counters. It marshals
// directly to JSON (ccserve's GET /metrics and the expvar export).
type Metrics struct {
	Build BuildInfo `json:"build"`

	Workers      int   `json:"workers"`
	JobsInFlight int64 `json:"jobs_in_flight"`

	JobsRun      uint64 `json:"jobs_run"`
	JobsFailed   uint64 `json:"jobs_failed"`
	JobsPanicked uint64 `json:"jobs_panicked"`
	JobsTimedOut uint64 `json:"jobs_timed_out"`

	RunsExecuted uint64            `json:"runs_executed"`
	Traps        uint64            `json:"traps"`
	TrapsByKind  map[string]uint64 `json:"traps_by_kind,omitempty"`

	Cache CacheStats `json:"cache"`

	// Store snapshots the persistent artifact store (nil when the Runner
	// has none); FuncsRecured/FuncsLoaded count per-function inference work
	// across non-cache-hit compiles — loaded functions were replayed from
	// stored summaries instead of re-collected.
	Store        *store.Stats `json:"store,omitempty"`
	FuncsRecured uint64       `json:"funcs_recured"`
	FuncsLoaded  uint64       `json:"funcs_loaded"`

	CompileWall Histogram `json:"compile_wall"`
	RunWall     Histogram `json:"run_wall"`
}

// metrics is the Runner's internal accumulator. One mutex guards all of it:
// updates are a few counter bumps per job, far off the interpreter's hot
// path, so contention is negligible next to compile/run work.
type metrics struct {
	mu           sync.Mutex
	jobsInFlight int64
	jobsRun      uint64
	jobsFailed   uint64
	jobsPanicked uint64
	jobsTimedOut uint64
	runsExecuted uint64
	traps        uint64
	trapsByKind  map[string]uint64
	funcsRecured uint64
	funcsLoaded  uint64
	compileWall  histogram
	runWall      histogram
}

func newMetrics() *metrics {
	return &metrics{trapsByKind: make(map[string]uint64)}
}

func (m *metrics) jobStarted() {
	m.mu.Lock()
	m.jobsInFlight++
	m.mu.Unlock()
}

func (m *metrics) jobFinished(res *JobResult) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsInFlight--
	m.jobsRun++
	if res.Err != nil {
		m.jobsFailed++
		return
	}
	if !res.CacheHit {
		m.compileWall.observe(res.CompileTime)
		m.funcsRecured += uint64(res.Incr.Recured)
		m.funcsLoaded += uint64(res.Incr.Loaded)
	}
	if res.Run != nil {
		m.runsExecuted++
		m.runWall.observe(res.RunTime)
		if res.Run.Trapped {
			m.traps++
			m.trapsByKind[res.Run.TrapKind]++
		}
	}
}

func (m *metrics) jobPanicked() {
	m.mu.Lock()
	m.jobsPanicked++
	m.mu.Unlock()
}

func (m *metrics) jobTimedOut() {
	m.mu.Lock()
	m.jobsTimedOut++
	m.mu.Unlock()
}

func (m *metrics) snapshot(workers int, cache CacheStats) Metrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Metrics{
		Workers:      workers,
		JobsInFlight: m.jobsInFlight,
		JobsRun:      m.jobsRun,
		JobsFailed:   m.jobsFailed,
		JobsPanicked: m.jobsPanicked,
		JobsTimedOut: m.jobsTimedOut,
		RunsExecuted: m.runsExecuted,
		Traps:        m.traps,
		Cache:        cache,
		FuncsRecured: m.funcsRecured,
		FuncsLoaded:  m.funcsLoaded,
		CompileWall:  m.compileWall.snapshot(),
		RunWall:      m.runWall.snapshot(),
	}
	if len(m.trapsByKind) > 0 {
		out.TrapsByKind = make(map[string]uint64, len(m.trapsByKind))
		for k, v := range m.trapsByKind {
			out.TrapsByKind[k] = v
		}
	}
	return out
}

// ExpvarVar adapts the Runner's metrics to the expvar interface; publish it
// with expvar.Publish (ccserve does, under "gocured_pipeline") and it shows
// up on /debug/vars alongside the Go runtime's variables.
func (r *Runner) ExpvarVar() expvar.Var {
	return expvar.Func(func() any { return r.Metrics() })
}
