// Command ccrun compiles and executes a C source file on the gocured
// simulated machine, either raw or cured (or under the Purify/Valgrind-
// style shadow policies).
//
// Usage:
//
//	ccrun [-mode raw|cured|purify|valgrind] [-backend vm|tree] [-stdin file] [-trust] [-phases] [-trace out.json] [-prof N] file.c
//
// With -trace, the run's flight recording is written as Chrome trace-event
// JSON (load it in Perfetto or chrome://tracing), and a trapped run prints
// its black-box snapshot: the last recorded events, the call stack, and the
// blame chain. With -prof N, every N interpreter steps the current source
// line is sampled and a pprof-style top table is printed to stderr.
package main

import (
	"flag"
	"fmt"
	"os"

	"gocured"
	"gocured/internal/pipeline"
)

func main() {
	mode := flag.String("mode", "cured", "execution mode: raw, cured, purify, valgrind")
	stdinFile := flag.String("stdin", "", "file whose bytes feed getchar()")
	trust := flag.Bool("trust", false, "trust remaining bad casts")
	steps := flag.Uint64("steps", 0, "step limit (0 = default)")
	traceOut := flag.String("trace", "", "write the flight recording as Chrome trace-event JSON to this file")
	traceBuf := flag.Int("trace-buf", 0, "flight-recorder ring capacity in events (0 = 8192)")
	profPeriod := flag.Int("prof", 0, "sample the current source line every N interpreter steps (0 = off)")
	backend := flag.String("backend", "vm", "interpreter backend: vm (bytecode) or tree (reference walker)")
	phases := flag.Bool("phases", false, "print per-phase compile durations to stderr before running")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory; recompiles of unchanged functions are replayed from it (empty = off)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccrun [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var m gocured.Mode
	switch *mode {
	case "raw":
		m = gocured.ModeRaw
	case "cured":
		m = gocured.ModeCured
	case "purify":
		m = gocured.ModePurify
	case "valgrind":
		m = gocured.ModeValgrind
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	var stdin []byte
	if *stdinFile != "" {
		stdin, err = os.ReadFile(*stdinFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	opts := gocured.Options{TrustBadCasts: *trust}
	var sums gocured.SummarySource
	if arts, err := pipeline.OpenStore(*storeDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	} else if arts != nil {
		sums = arts.ForOptions(opts)
	}
	prog, err := gocured.CompileStored(file, string(src), opts, sums)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *phases {
		total := 0.0
		for _, sp := range prog.Spans() {
			fmt.Fprintf(os.Stderr, "phase %-12s %8.3fms\n", sp.Name, sp.DurMS)
			total += sp.DurMS
		}
		fmt.Fprintf(os.Stderr, "phase %-12s %8.3fms\n", "total", total)
	}
	res, err := prog.Run(m, gocured.RunOptions{
		Stdin:         stdin,
		StepLimit:     *steps,
		Trace:         *traceOut != "",
		TraceBuf:      *traceBuf,
		ProfilePeriod: *profPeriod,
		Backend:       *backend,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Stdout.WriteString(res.Stdout)
	for _, r := range res.ToolReports {
		fmt.Fprintln(os.Stderr, r)
	}
	fmt.Fprintf(os.Stderr, "[%s] steps=%d checks=%d mem=%d\n",
		*mode, res.Steps, res.Checks, res.MemAccesses)
	if *traceOut != "" && res.TraceJSON != nil {
		if err := os.WriteFile(*traceOut, res.TraceJSON, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "flight recording written to %s (load in Perfetto)\n", *traceOut)
	}
	if len(res.Profile) > 0 {
		fmt.Fprintf(os.Stderr, "step profile (period %d):\n", *profPeriod)
		for i, l := range res.Profile {
			if i >= 10 {
				break
			}
			fmt.Fprintf(os.Stderr, "  %6d  %5.1f%%  %s\n", l.Samples, l.Pct, l.Pos)
		}
	}
	if res.Trapped {
		at := ""
		if res.TrapPos != "" {
			at = " at " + res.TrapPos
		}
		fmt.Fprintf(os.Stderr, "TRAP (%s)%s: %s\n", res.TrapKind, at, res.TrapMessage)
		for _, fn := range res.TrapStack {
			fmt.Fprintf(os.Stderr, "  in %s\n", fn)
		}
		for _, l := range res.TrapBlame {
			fmt.Fprintf(os.Stderr, "  | %s\n", l)
		}
		if bb := res.BlackBox; bb != nil {
			fmt.Fprintf(os.Stderr, "black box (last %d events", len(bb.Events))
			if bb.DroppedEvents > 0 {
				fmt.Fprintf(os.Stderr, ", %d older dropped", bb.DroppedEvents)
			}
			fmt.Fprintln(os.Stderr, "):")
			for _, e := range bb.Events {
				fmt.Fprintf(os.Stderr, "  %s\n", e)
			}
		}
		os.Exit(3)
	}
	os.Exit(res.ExitCode)
}
