package pipeline

import (
	"sync"
	"time"
)

// JobEvent is one live pipeline event: a job starting, finishing, or
// trapping. Events stream to subscribers (ccserve's GET /events) as they
// happen; they are advisory telemetry, not a durable log — a slow consumer
// drops events rather than stalling the worker pool.
type JobEvent struct {
	// Seq is a monotonically increasing sequence number; gaps tell a
	// consumer that it fell behind and events were dropped.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Type is "job_start", "job_done", "trap", or "slo_state".
	Type string `json:"type"`
	Name string `json:"name"`
	Mode string `json:"mode,omitempty"`
	// TraceID links the event to its request trace (GET /traces/{id}).
	TraceID string `json:"trace_id,omitempty"`
	// CacheHit and DurMS are set on job_done.
	CacheHit bool    `json:"cache_hit,omitempty"`
	DurMS    float64 `json:"dur_ms,omitempty"`
	Err      string  `json:"err,omitempty"`
	// TrapKind/TrapPos are set on trap events.
	TrapKind string `json:"trap_kind,omitempty"`
	TrapPos  string `json:"trap_pos,omitempty"`
	// State/Burn are set on slo_state events: Name carries the SLO name,
	// State the new alert state ("ok", "warn", "page"), Burn the highest
	// window burn rate at the transition.
	State string  `json:"state,omitempty"`
	Burn  float64 `json:"burn,omitempty"`
}

// Bus fans JobEvents out to subscribers. Publish never blocks: a subscriber
// whose buffer is full misses events (its next Seq jumps), which is the
// right trade for a live tail over a hot worker pool.
type Bus struct {
	mu     sync.Mutex
	seq    uint64
	nextID int
	subs   map[int]chan JobEvent
}

// NewBus builds an empty Bus.
func NewBus() *Bus { return &Bus{subs: make(map[int]chan JobEvent)} }

// Subscribe registers a subscriber with the given channel buffer (min 1)
// and returns its event channel plus an unsubscribe function. After
// unsubscribing the channel is closed.
func (b *Bus) Subscribe(buf int) (<-chan JobEvent, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan JobEvent, buf)
	b.mu.Lock()
	id := b.nextID
	b.nextID++
	b.subs[id] = ch
	b.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			b.mu.Lock()
			delete(b.subs, id)
			b.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Publish stamps the event with the next sequence number and offers it to
// every subscriber without blocking.
func (b *Bus) Publish(ev JobEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seq++
	ev.Seq = b.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default: // subscriber is behind; drop rather than stall
		}
	}
}

// Subscribers returns the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}
