// Package mem implements gocured's simulated memory: a flat little-endian
// arena of 4-byte-word ILP32 memory in which globals, stack frames, heap
// blocks, and string literals are allocated as contiguous blocks.
//
// Two properties matter for the experiments:
//
//   - In raw (uncured) execution, out-of-bounds accesses inside the arena
//     silently corrupt neighbouring blocks — exactly like real C — so the
//     exploit demonstrations are genuine.
//   - Blocks carry the metadata CCured's run-time needs: region (for the
//     stack-escape check), WILD tags (one per word), and liveness.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Region classifies a block's storage class.
type Region int

// Regions.
const (
	RegNull Region = iota // the unmapped null page
	RegGlobal
	RegStack
	RegHeap
	RegCode // function descriptors (not readable/writable data)
)

var regionNames = [...]string{"null", "global", "stack", "heap", "code"}

func (r Region) String() string { return regionNames[r] }

// Block is one allocation.
type Block struct {
	ID     int
	Addr   uint32
	Size   uint32
	Region Region
	Name   string
	Dead   bool // freed heap block or popped stack frame

	// Wild marks a dynamically-typed (WILD) area; Tags has one entry per
	// word, nonzero meaning "this word holds a valid pointer base".
	Wild bool
	Tags []uint8

	// Fresh marks heap memory whose dynamic type is not yet fixed
	// (allocator results): RTTI downcasts into fresh blocks succeed if the
	// target fits.
	Fresh bool
}

// End returns the first address past the block.
func (b *Block) End() uint32 { return b.Addr + b.Size }

// Contains reports whether addr lies within the block.
func (b *Block) Contains(addr uint32) bool { return addr >= b.Addr && addr < b.End() }

// Trap is a memory-safety violation detected by the simulated memory or by
// a CCured run-time check.
type Trap struct {
	Kind string
	Msg  string
	// Pos is the rendered source location ("file:line:col") of the trapping
	// statement; empty when unknown. Stack is the cured-program call stack,
	// innermost frame first. Both are attached by the interpreter at trap
	// time (mem itself has no source information).
	Pos   string
	Stack []string
}

func (t *Trap) Error() string {
	if t.Pos != "" {
		return fmt.Sprintf("memory trap (%s) at %s: %s", t.Kind, t.Pos, t.Msg)
	}
	return fmt.Sprintf("memory trap (%s): %s", t.Kind, t.Msg)
}

// NewTrap builds a trap error.
func NewTrap(kind, format string, args ...any) *Trap {
	return &Trap{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// nullPage is the size of the reserved unmapped region at address 0, so
// that null and near-null dereferences fault even in raw mode.
const nullPage = 64

// Memory is the flat simulated address space.
type Memory struct {
	arena  []byte
	brk    uint32   // allocation cursor (arena keeps slack beyond it)
	blocks []*Block // sorted by Addr (allocation is monotonic)
	nextID int

	stackBase, stackSize, sp uint32
	stack                    []*Block // live frames, contiguous, LIFO

	// Loads/Stores count raw accesses (for the harness's counters).
	Loads, Stores uint64
}

// New returns an empty memory with the null page reserved.
func New() *Memory {
	m := &Memory{arena: make([]byte, nullPage, 1<<16), brk: nullPage}
	m.blocks = append(m.blocks, &Block{ID: 0, Addr: 0, Size: nullPage, Region: RegNull, Name: "<null>"})
	m.nextID = 1
	return m
}

func align8(n uint32) uint32 { return (n + 7) &^ 7 }

// allocSlack keeps mapped bytes beyond the last block so that modest
// overflows land in valid (future) memory and corrupt silently, as on a
// real heap, instead of faulting at the arena edge.
const allocSlack = 256

func (m *Memory) extend(to uint32) {
	need := int(to)
	for len(m.arena) < need {
		m.arena = append(m.arena, 0)
	}
}

// Alloc carves a new block. Sizes of 0 are rounded up to one word so every
// object has a distinct address.
func (m *Memory) Alloc(size uint32, region Region, name string) *Block {
	if size == 0 {
		size = 4
	}
	addr := align8(m.brk)
	m.extend(addr + size + allocSlack)
	// Zero the block (heap reuse does not occur, but slack may have been
	// scribbled on by a past overflow).
	for i := addr; i < addr+size; i++ {
		m.arena[i] = 0
	}
	m.brk = addr + size
	b := &Block{ID: m.nextID, Addr: addr, Size: size, Region: region, Name: name}
	m.nextID++
	m.blocks = append(m.blocks, b)
	return b
}

// Free marks a heap block dead. Double frees and non-heap frees trap.
func (m *Memory) Free(addr uint32) error {
	b := m.BlockAt(addr)
	if b == nil || b.Addr != addr {
		return NewTrap("free", "free of non-block address 0x%x", addr)
	}
	if b.Region != RegHeap {
		return NewTrap("free", "free of %s memory %q", b.Region, b.Name)
	}
	if b.Dead {
		return NewTrap("free", "double free of %q", b.Name)
	}
	b.Dead = true
	return nil
}

// BlockAt returns the block containing addr, or nil.
func (m *Memory) BlockAt(addr uint32) *Block {
	if m.InStack(addr) {
		return m.stackBlockAt(addr)
	}
	i := sort.Search(len(m.blocks), func(i int) bool { return m.blocks[i].Addr > addr })
	if i == 0 {
		return nil
	}
	b := m.blocks[i-1]
	if b.Contains(addr) {
		return b
	}
	return nil
}

// MakeWild marks a block as a dynamically-typed (WILD) area and allocates
// its per-word tags.
func (b *Block) MakeWild() {
	if !b.Wild {
		b.Wild = true
		b.Tags = make([]uint8, (b.Size+3)/4)
	}
}

// TagAt returns the tag of the word containing addr.
func (b *Block) TagAt(addr uint32) uint8 {
	if !b.Wild {
		return 0
	}
	i := (addr - b.Addr) / 4
	if int(i) >= len(b.Tags) {
		return 0
	}
	return b.Tags[i]
}

// SetTag sets the tag of the word containing addr.
func (b *Block) SetTag(addr uint32, v uint8) {
	if !b.Wild {
		return
	}
	i := (addr - b.Addr) / 4
	if int(i) < len(b.Tags) {
		b.Tags[i] = v
	}
}

// inArena checks a raw access; even raw mode cannot escape the arena or
// touch the null page.
func (m *Memory) inArena(addr, size uint32) error {
	if addr < nullPage {
		return NewTrap("segv", "access to address 0x%x in the null page", addr)
	}
	if int(addr)+int(size) > len(m.arena) {
		return NewTrap("segv", "access to unmapped address 0x%x", addr)
	}
	return nil
}

// ReadInt loads a little-endian integer of the given byte size.
func (m *Memory) ReadInt(addr uint32, size int, signed bool) (int64, error) {
	if err := m.inArena(addr, uint32(size)); err != nil {
		return 0, err
	}
	m.Loads++
	var u uint64
	switch size {
	case 1:
		u = uint64(m.arena[addr])
	case 2:
		u = uint64(binary.LittleEndian.Uint16(m.arena[addr:]))
	case 4:
		u = uint64(binary.LittleEndian.Uint32(m.arena[addr:]))
	case 8:
		u = binary.LittleEndian.Uint64(m.arena[addr:])
	default:
		return 0, NewTrap("access", "bad integer size %d", size)
	}
	if signed {
		switch size {
		case 1:
			return int64(int8(u)), nil
		case 2:
			return int64(int16(u)), nil
		case 4:
			return int64(int32(u)), nil
		}
	}
	return int64(u), nil
}

// WriteInt stores a little-endian integer of the given byte size.
func (m *Memory) WriteInt(addr uint32, size int, v int64) error {
	if err := m.inArena(addr, uint32(size)); err != nil {
		return err
	}
	m.Stores++
	switch size {
	case 1:
		m.arena[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(m.arena[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(m.arena[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(m.arena[addr:], uint64(v))
	default:
		return NewTrap("access", "bad integer size %d", size)
	}
	return nil
}

// ReadFloat loads a float of byte size 4 or 8.
func (m *Memory) ReadFloat(addr uint32, size int) (float64, error) {
	if err := m.inArena(addr, uint32(size)); err != nil {
		return 0, err
	}
	m.Loads++
	if size == 4 {
		return float64(math.Float32frombits(binary.LittleEndian.Uint32(m.arena[addr:]))), nil
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(m.arena[addr:])), nil
}

// WriteFloat stores a float of byte size 4 or 8.
func (m *Memory) WriteFloat(addr uint32, size int, v float64) error {
	if err := m.inArena(addr, uint32(size)); err != nil {
		return err
	}
	m.Stores++
	if size == 4 {
		binary.LittleEndian.PutUint32(m.arena[addr:], math.Float32bits(float32(v)))
	} else {
		binary.LittleEndian.PutUint64(m.arena[addr:], math.Float64bits(v))
	}
	return nil
}

// ReadWord loads one 32-bit word (pointers).
func (m *Memory) ReadWord(addr uint32) (uint32, error) {
	v, err := m.ReadInt(addr, 4, false)
	return uint32(v), err
}

// WriteWord stores one 32-bit word.
func (m *Memory) WriteWord(addr uint32, v uint32) error {
	return m.WriteInt(addr, 4, int64(v))
}

// Copy moves n bytes from src to dst (memmove semantics).
func (m *Memory) Copy(dst, src, n uint32) error {
	if n == 0 {
		return nil
	}
	if err := m.inArena(src, n); err != nil {
		return err
	}
	if err := m.inArena(dst, n); err != nil {
		return err
	}
	m.Loads += uint64(n)
	m.Stores += uint64(n)
	copy(m.arena[dst:dst+n], m.arena[src:src+n])
	return nil
}

// SetBytes fills n bytes at addr with c.
func (m *Memory) SetBytes(addr uint32, c byte, n uint32) error {
	if n == 0 {
		return nil
	}
	if err := m.inArena(addr, n); err != nil {
		return err
	}
	m.Stores += uint64(n)
	for i := uint32(0); i < n; i++ {
		m.arena[addr+i] = c
	}
	return nil
}

// Bytes returns a copy of n bytes at addr (for builtins reading strings).
func (m *Memory) Bytes(addr, n uint32) ([]byte, error) {
	if err := m.inArena(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.arena[addr:addr+n])
	return out, nil
}

// CString reads a NUL-terminated string at addr, bounded by limit bytes
// (and by the arena).
func (m *Memory) CString(addr uint32, limit uint32) (string, error) {
	var out []byte
	for i := uint32(0); i < limit; i++ {
		if err := m.inArena(addr+i, 1); err != nil {
			return "", err
		}
		c := m.arena[addr+i]
		if c == 0 {
			return string(out), nil
		}
		out = append(out, c)
	}
	return string(out), nil
}

// Size returns the current arena extent in bytes.
func (m *Memory) Size() int { return len(m.arena) }

// Blocks returns all blocks (for diagnostics).
func (m *Memory) Blocks() []*Block { return m.blocks }
