package corpus_test

import (
	"strings"
	"testing"

	"gocured/internal/core"
	"gocured/internal/corpus"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

// TestCorpusRawVsCured builds every corpus program, runs it raw and cured,
// and demands: no traps, identical stdout, identical exit codes. This is
// the central semantic-preservation property of the transformation.
func TestCorpusRawVsCured(t *testing.T) {
	for _, p := range corpus.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := core.Build(p.Name+".c", p.Source, infer.Options{
				TrustBadCasts: p.TrustBadCasts,
			})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			raw, err := u.RunRaw(interp.PolicyNone, interp.Config{})
			if err != nil {
				t.Fatalf("raw run: %v", err)
			}
			if raw.Trap != nil {
				t.Fatalf("raw trap: %v\nstdout: %s", raw.Trap, raw.Stdout)
			}
			cured, err := u.RunCured(interp.Config{})
			if err != nil {
				t.Fatalf("cured run: %v", err)
			}
			if cured.Trap != nil {
				t.Fatalf("cured trap: %v\nstdout: %s", cured.Trap, cured.Stdout)
			}
			if raw.Stdout != cured.Stdout {
				t.Fatalf("output mismatch:\nraw:   %q\ncured: %q", raw.Stdout, cured.Stdout)
			}
			if raw.ExitCode != cured.ExitCode {
				t.Fatalf("exit mismatch: raw %d cured %d", raw.ExitCode, cured.ExitCode)
			}
			if p.WantStdout != "" && raw.Stdout != p.WantStdout {
				t.Errorf("stdout = %q, want %q", raw.Stdout, p.WantStdout)
			}
			if !strings.Contains(raw.Stdout, p.Name) && !strings.Contains(raw.Stdout, "checksum") {
				t.Logf("note: output does not echo the program name: %q", raw.Stdout)
			}
		})
	}
}

// TestCorpusAllSplit runs the split-overhead ablation subjects with every
// type in the compatible representation and checks semantics still hold.
func TestCorpusAllSplit(t *testing.T) {
	for _, name := range []string{"olden-em3d", "ptrdist-anagram", "olden-treeadd", "ijpeg"} {
		p := corpus.ByName(name)
		if p == nil {
			t.Fatalf("missing corpus program %s", name)
		}
		t.Run(name, func(t *testing.T) {
			u, err := core.Build(name+".c", p.Source, infer.Options{SplitAll: true})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			raw, err := u.RunRaw(interp.PolicyNone, interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			cured, err := u.RunCured(interp.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if cured.Trap != nil {
				t.Fatalf("cured all-split trap: %v", cured.Trap)
			}
			if raw.Stdout != cured.Stdout {
				t.Fatalf("all-split output mismatch:\nraw:   %q\ncured: %q", raw.Stdout, cured.Stdout)
			}
			if u.Res.Split.Stats.SplitPtrs == 0 {
				t.Error("all-split inference produced no split pointers")
			}
		})
	}
}

// TestCorpusScale checks that WithScale actually rescales the workload.
func TestCorpusScale(t *testing.T) {
	p := corpus.ByName("pcnet32")
	if p == nil {
		t.Fatal("missing pcnet32")
	}
	s := corpus.WithScale(p, 7)
	if !strings.Contains(s, "SCALE = 7") {
		t.Error("WithScale did not rewrite the SCALE constant")
	}
	if strings.Contains(s, "SCALE = 2") {
		t.Error("old SCALE constant still present")
	}
}

// TestCorpusCategoriesPopulated ensures the registry covers the families
// the experiments need.
func TestCorpusCategoriesPopulated(t *testing.T) {
	for _, cat := range []string{"apache", "driver"} {
		if len(corpus.ByCategory(cat)) == 0 {
			t.Errorf("no corpus programs in category %q", cat)
		}
	}
}
