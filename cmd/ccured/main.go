// Command ccured compiles a C source file with the gocured pipeline and
// reports the inference results: pointer-kind distribution, cast
// classification, split statistics, inserted checks, and (with -dump) the
// instrumented program.
//
// Usage:
//
//	ccured [-dump] [-dump-raw] [-no-rtti] [-no-subtyping] [-trust] [-split-all] [-O level] [-trace out.json] file.c
//
// With -explain, ccured prints an annotated blame chain for every pointer
// with a checked (non-SAFE) kind: the shortest constraint path from the
// pointer back to the cast, arithmetic, or annotation that forced the kind,
// with rule names and source locations. -site restricts the output to casts
// at one source position ("file.c:12" matches every column on that line).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gocured"
	"gocured/internal/flight"
	"gocured/internal/pipeline"
)

// writeExplain renders the -explain output: one annotated blame chain per
// pointer equivalence class with a checked kind at the selected sites.
func writeExplain(w io.Writer, prog *gocured.Program, site string) {
	chains := prog.ExplainKind(site)
	fmt.Fprintln(w, "---- blame chains (why pointers have checked kinds) ----")
	if len(chains) == 0 {
		fmt.Fprintln(w, "nothing to explain: every pointer at the selected sites is SAFE")
	}
	for _, ch := range chains {
		fmt.Fprint(w, ch)
	}
}

func main() {
	dump := flag.Bool("dump", false, "print the instrumented (cured) program")
	dumpRaw := flag.Bool("dump-raw", false, "print the uninstrumented program")
	noRTTI := flag.Bool("no-rtti", false, "disable the RTTI pointer kind (original CCured downcasts)")
	noSub := flag.Bool("no-subtyping", false, "disable physical subtyping (POPL02 CCured)")
	trust := flag.Bool("trust", false, "trust remaining bad casts instead of making pointers WILD")
	splitAll := flag.Bool("split-all", false, "force the compatible (split) representation everywhere")
	optLevel := flag.Int("O", 1, "check optimization level: 0 keeps every inserted check, 1 runs the CFG optimizer")
	listCasts := flag.Bool("list-casts", false, "list every pointer cast with its classification (review trusted/bad ones)")
	explain := flag.Bool("explain", false, "print blame chains for WILD/SEQ/RTTI pointers (why each kind was inferred)")
	site := flag.String("site", "", "with -explain: only explain casts at this source position prefix (e.g. file.c:12)")
	traceOut := flag.String("trace", "", "write the compile phases as Chrome trace-event JSON to this file")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory; recompiles of unchanged functions are replayed from it (empty = off)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: ccured [flags] file.c")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opts := gocured.Options{
		NoRTTI:              *noRTTI,
		NoPhysicalSubtyping: *noSub,
		TrustBadCasts:       *trust,
		ForceSplitAll:       *splitAll,
		NoOptimize:          *optLevel == 0,
	}
	var sums gocured.SummarySource
	if arts, err := pipeline.OpenStore(*storeDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	} else if arts != nil {
		sums = arts.ForOptions(opts)
	}
	prog, err := gocured.CompileStored(file, string(src), opts, sums)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *storeDir != "" {
		in := prog.IncrStats()
		fmt.Fprintf(os.Stderr, "store: %d functions, %d replayed from %s, %d re-cured\n",
			in.Funcs, in.Loaded, *storeDir, in.Recured)
	}
	for _, d := range prog.Diagnostics() {
		fmt.Fprintln(os.Stderr, d)
	}
	s := prog.Stats()
	fmt.Printf("%s: %d lines\n", file, s.Lines)
	fmt.Printf("pointers: %d  SAFE %.1f%%  SEQ %.1f%%  WILD %.1f%%  RTTI %.1f%%\n",
		s.Pointers, s.PctSafe, s.PctSeq, s.PctWild, s.PctRtti)
	fmt.Printf("casts: %d  identity %d  upcasts %d  downcasts %d  alloc-typed %d  tile %d  bad %d  trusted %d\n",
		s.Casts, s.Identity, s.Upcasts, s.Downcasts, s.Alloc,
		s.SeqCasts, s.BadCasts, s.Trusted)
	fmt.Printf("split: %d pointers split (%.1f%%), %d need metadata pointers (%.1f%%)\n",
		s.SplitPointers, s.PctSplit, s.MetaPointers, s.PctMeta)
	fmt.Printf("run-time checks inserted: %d\n", s.ChecksInserted)
	if *optLevel > 0 {
		remaining := s.ChecksInserted - s.ChecksEliminated - s.ChecksCoalesced
		fmt.Printf("optimizer: %d eliminated, %d coalesced, %d hoisted, %d widened; %d remain\n",
			s.ChecksEliminated, s.ChecksCoalesced, s.ChecksHoisted, s.ChecksWidened, remaining)
	}
	if *listCasts {
		fmt.Println("---- casts (a security review starts at trusted/bad ones) ----")
		for _, c := range prog.Casts() {
			mark := ""
			if c.Trusted {
				mark = "  <-- REVIEW"
			}
			fmt.Printf("%-20s %-10s %s -> %s%s\n", c.Pos, c.Class, c.From, c.To, mark)
		}
	}
	if *explain {
		writeExplain(os.Stdout, prog, *site)
	}
	if *dumpRaw {
		fmt.Println("---- raw program ----")
		prog.DumpRaw(os.Stdout)
	}
	if *dump {
		fmt.Println("---- cured program ----")
		prog.DumpCured(os.Stdout)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// WriteSpanTrace (rather than RingFromSpans) tolerates overlapping
		// sibling spans: it rebuilds the tree and clamps, so the output is
		// ValidateTrace-clean whatever the front end recorded.
		err = flight.WriteSpanTrace(f, "compile "+file, prog.Spans(), map[string]any{"file": file})
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "compile trace written to %s (load in Perfetto)\n", *traceOut)
	}
}
