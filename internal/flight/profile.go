package flight

import (
	"fmt"
	"io"
	"sort"

	"gocured/internal/diag"
)

// DefaultSamplePeriod is the default step-sampling period: one sample
// every N interpreter steps. 4096 keeps the enabled-mode overhead in the
// noise while still resolving hot lines in runs of a few million steps.
const DefaultSamplePeriod = 4096

// Profile is a step-sampling profile of a cured run: every sampling period
// the interpreter records the source line it is executing, so hot cured-
// source lines surface as sample counts — the same shape as a pprof "top"
// table, with interpreter steps standing in for CPU time.
type Profile struct {
	period  uint64
	samples map[string]uint64
	total   uint64
}

// NewProfile builds a profile with the given sampling period (<= 0 selects
// DefaultSamplePeriod).
func NewProfile(period int) *Profile {
	if period <= 0 {
		period = DefaultSamplePeriod
	}
	return &Profile{period: uint64(period), samples: make(map[string]uint64)}
}

// Period returns the sampling period in steps.
func (p *Profile) Period() uint64 { return p.period }

// Sample records one hit at the given source line ("file.c:123").
func (p *Profile) Sample(pos string) {
	p.samples[pos]++
	p.total++
}

// Total returns the number of samples taken.
func (p *Profile) Total() uint64 { return p.total }

// Line is one row of the profile's top table.
type Line struct {
	Pos      string  `json:"pos"`
	Samples  uint64  `json:"samples"`
	Pct      float64 `json:"pct"`
	EstSteps uint64  `json:"est_steps"`
}

// Top returns the n hottest source lines (0 = all), samples descending;
// ties are ordered by position (file, then numeric line), so the table is
// fully deterministic.
func (p *Profile) Top(n int) []Line {
	out := make([]Line, 0, len(p.samples))
	for pos, c := range p.samples {
		l := Line{Pos: pos, Samples: c, EstSteps: c * p.period}
		if p.total > 0 {
			l.Pct = 100 * float64(c) / float64(p.total)
		}
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Samples != out[j].Samples {
			return out[i].Samples > out[j].Samples
		}
		return diag.ComparePosStrings(out[i].Pos, out[j].Pos) < 0
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Render writes the top-n table in pprof "top" style.
func (p *Profile) Render(w io.Writer, n int) {
	fmt.Fprintf(w, "step profile: %d samples, period %d steps\n", p.total, p.period)
	fmt.Fprintf(w, "%10s %7s  %s\n", "est.steps", "pct", "source line")
	for _, l := range p.Top(n) {
		fmt.Fprintf(w, "%10d %6.2f%%  %s\n", l.EstSteps, l.Pct, l.Pos)
	}
}
