package corpus

// bind-like DNS server (Figure 9: bind is the biggest and most cast-heavy
// system in the paper: 82000 casts, 530 initially bad, of which RTTI
// recovers the downcasts and the remaining are trusted after review). This
// corpus program concentrates the same idioms: wire-format encoding and
// parsing with name compression, a task queue whose events carry void*
// arguments (RTTI), a resource-record hierarchy with per-type rdata
// (upcasts + checked downcasts), and sockaddr_in/sockaddr casts that need
// the trusted-cast escape hatch.

var _ = register(&Program{
	Name:          "bind",
	Category:      "daemon",
	Desc:          "bind-like DNS server: wire codec, RR hierarchy, task queue, sockaddr casts",
	TrustBadCasts: true,
	Source: Prelude + `
enum { SCALE = 2, WIRE = 512, MAXNAMES = 12, QUERIES = 30 };

/* ---- sockaddr family: the casts the paper trusts ---- */

struct sockaddr {
    short sa_family;
    char sa_data[14];
};

struct sockaddr_in {
    short sin_family;
    unsigned short sin_port;
    unsigned int sin_addr;
    char sin_zero[8];
};

int sockaddr_port(struct sockaddr *sa) {
    if (sa->sa_family == 2) {
        struct sockaddr_in *sin = __trusted_cast(struct sockaddr_in *, sa);
        return (int)sin->sin_port;
    }
    return 0;
}

/* ---- resource records: a physical-subtype hierarchy ---- */

struct rr {
    int type;        /* 1 = A, 5 = CNAME, 15 = MX */
    int ttl;
    char name[32];
};

struct rr_a {
    int type;
    int ttl;
    char name[32];
    unsigned int addr;
};

struct rr_cname {
    int type;
    int ttl;
    char name[32];
    char target[32];
};

struct rr_mx {
    int type;
    int ttl;
    char name[32];
    int pref;
    char exchange[32];
};

/* the zone: an array of generic rr pointers (subtype polymorphism) */
struct rr *zone[MAXNAMES];
int zone_n;

void zone_add_a(char *name, unsigned int addr) {
    struct rr_a *a = (struct rr_a *)malloc(sizeof(struct rr_a));
    a->type = 1;
    a->ttl = 3600;
    strncpy(a->name, name, 31);
    a->name[31] = 0;
    a->addr = addr;
    zone[zone_n] = (struct rr *)a;         /* upcast */
    zone_n++;
}

void zone_add_cname(char *name, char *target) {
    struct rr_cname *c = (struct rr_cname *)malloc(sizeof(struct rr_cname));
    c->type = 5;
    c->ttl = 7200;
    strncpy(c->name, name, 31);
    c->name[31] = 0;
    strncpy(c->target, target, 31);
    c->target[31] = 0;
    zone[zone_n] = (struct rr *)c;         /* upcast */
    zone_n++;
}

void zone_add_mx(char *name, int pref, char *exchange) {
    struct rr_mx *m = (struct rr_mx *)malloc(sizeof(struct rr_mx));
    m->type = 15;
    m->ttl = 7200;
    strncpy(m->name, name, 31);
    m->name[31] = 0;
    m->pref = pref;
    strncpy(m->exchange, exchange, 31);
    m->exchange[31] = 0;
    zone[zone_n] = (struct rr *)m;         /* upcast */
    zone_n++;
}

struct rr *zone_find(char *name, int type) {
    int i;
    for (i = 0; i < zone_n; i++) {
        if (zone[i]->type == type && strcmp(zone[i]->name, name) == 0) {
            return zone[i];
        }
    }
    return 0;
}

/* ---- wire format with name compression ---- */

struct wirebuf {
    char data[WIRE];
    int len;
    /* name compression: offsets of names already written */
    int name_off[MAXNAMES];
    char names[MAXNAMES][32];
    int n_names;
};

void wire_reset(struct wirebuf *w) {
    w->len = 0;
    w->n_names = 0;
}

void wire_put8(struct wirebuf *w, int v) {
    if (w->len < WIRE) { w->data[w->len] = (char)v; w->len++; }
}

void wire_put16(struct wirebuf *w, int v) {
    wire_put8(w, (v >> 8) & 255);
    wire_put8(w, v & 255);
}

void wire_put32(struct wirebuf *w, unsigned int v) {
    wire_put16(w, (int)(v >> 16));
    wire_put16(w, (int)(v & 0xFFFF));
}

/* write a dotted name with compression pointers */
void wire_put_name(struct wirebuf *w, char *name) {
    int i;
    for (i = 0; i < w->n_names; i++) {
        if (strcmp(w->names[i], name) == 0) {
            wire_put16(w, 0xC000 | w->name_off[i]);   /* compression ptr */
            return;
        }
    }
    if (w->n_names < MAXNAMES) {
        strncpy(w->names[w->n_names], name, 31);
        w->names[w->n_names][31] = 0;
        w->name_off[w->n_names] = w->len;
        w->n_names++;
    }
    /* labels */
    {
        char *p = name;
        while (*p) {
            char *dot = strchr(p, '.');
            int n = dot ? (int)(dot - p) : strlen(p);
            int k;
            wire_put8(w, n);
            for (k = 0; k < n; k++) wire_put8(w, p[k]);
            if (!dot) break;
            p = dot + 1;
        }
        wire_put8(w, 0);
    }
}

int wire_get8(struct wirebuf *w, int *pos) {
    if (*pos >= w->len) return -1;
    {
        int v = w->data[*pos] & 255;
        (*pos)++;
        return v;
    }
}

int wire_get16(struct wirebuf *w, int *pos) {
    int hi = wire_get8(w, pos);
    int lo = wire_get8(w, pos);
    return (hi << 8) | lo;
}

/* read a possibly compressed name */
void wire_get_name(struct wirebuf *w, int *pos, char *out, int max) {
    int o = 0, n, k, hops = 0;
    int p = *pos;
    int jumped = 0;
    for (;;) {
        n = w->data[p] & 255;
        if ((n & 0xC0) == 0xC0) {
            int lo = w->data[p + 1] & 255;
            if (!jumped) *pos = p + 2;
            p = ((n & 0x3F) << 8) | lo;
            jumped = 1;
            hops++;
            if (hops > 4) break;
            continue;
        }
        p++;
        if (n == 0) break;
        for (k = 0; k < n && o < max - 2; k++) {
            out[o] = w->data[p + k];
            o++;
        }
        p += n;
        out[o] = '.';
        o++;
    }
    if (o > 0) o--;          /* strip trailing dot */
    out[o] = 0;
    if (!jumped) *pos = p;
}

/* encode one rr (dispatch on the record's dynamic type) */
void wire_put_rr(struct wirebuf *w, struct rr *r) {
    wire_put_name(w, r->name);
    wire_put16(w, r->type);
    wire_put32(w, (unsigned int)r->ttl);
    if (r->type == 1) {
        struct rr_a *a = (struct rr_a *)r;          /* checked downcast */
        wire_put16(w, 4);
        wire_put32(w, a->addr);
    } else if (r->type == 5) {
        struct rr_cname *c = (struct rr_cname *)r;  /* checked downcast */
        wire_put16(w, strlen(c->target) + 2);
        wire_put_name(w, c->target);
    } else {
        struct rr_mx *m = (struct rr_mx *)r;        /* checked downcast */
        wire_put16(w, strlen(m->exchange) + 4);
        wire_put16(w, m->pref);
        wire_put_name(w, m->exchange);
    }
}

/* ---- the task system: events with void* arguments (RTTI) ---- */

struct task {
    void (*action)(void *arg);
    void *arg;
    struct task *next;
};

struct task *task_head;
struct task *task_tail;
int tasks_run;

void task_send(void (*action)(void *arg), void *arg) {
    struct task *t = (struct task *)malloc(sizeof(struct task));
    t->action = action;
    t->arg = arg;
    t->next = 0;
    if (task_tail) task_tail->next = t; else task_head = t;
    task_tail = t;
}

void task_run_all(void) {
    while (task_head) {
        struct task *t = task_head;
        task_head = t->next;
        if (!task_head) task_tail = 0;
        t->action(t->arg);
        tasks_run++;
        free(t);
    }
}

/* ---- query processing ---- */

struct query {
    char qname[32];
    int qtype;
    struct sockaddr_in from;
    int answered;
};

/* a custom arena allocator for query objects: the cast from the character
   pool to the object type is exactly the "unsound cast needed for a custom
   allocator" that the paper marks as trusted after review */
enum { ARENA_SZ = 4096 };
char arena_pool[ARENA_SZ];
int arena_off;

struct query *arena_alloc_query(void) {
    struct query *q;
    if (arena_off + (int)sizeof(struct query) > ARENA_SZ) arena_off = 0;
    q = __trusted_cast(struct query *, arena_pool + arena_off);
    arena_off += ((int)sizeof(struct query) + 7) & ~7;
    return q;
}

struct wirebuf __SPLIT *reply;   /* sent directly to the library (§4.2) */
int answers_sent;
int reply_bytes;

void answer_query(void *arg) {
    struct query *q = (struct query *)arg;          /* void* downcast */
    struct rr *r = zone_find(q->qname, q->qtype);
    wire_reset(reply);
    wire_put16(reply, 0x8180);                       /* response flags */
    wire_put16(reply, 1);                            /* qdcount */
    wire_put16(reply, r ? 1 : 0);                    /* ancount */
    wire_put_name(reply, q->qname);
    wire_put16(reply, q->qtype);
    if (r) {
        wire_put_rr(reply, r);
        /* chase CNAMEs one hop, like a real resolver */
        if (r->type == 5) {
            struct rr_cname *c = (struct rr_cname *)r;
            struct rr *a = zone_find(c->target, 1);
            if (a) wire_put_rr(reply, a);
        }
        answers_sent++;
    }
    sim_send(reply->data, (unsigned int)reply->len);
    reply_bytes += reply->len;
    q->answered = 1;
    q->answered += sockaddr_port(__trusted_cast(struct sockaddr *, &q->from));
}

char *qnames[6] = {
    "www.example.org", "mail.example.org", "ns.example.org",
    "example.org", "ftp.example.org", "missing.example.org",
};

void submit_query(int i) {
    struct query *q = arena_alloc_query();
    strncpy(q->qname, qnames[i % 6], 31);
    q->qname[31] = 0;
    q->qtype = (i % 3 == 0) ? 1 : ((i % 3 == 1) ? 5 : 15);
    q->from.sin_family = 2;
    q->from.sin_port = (unsigned short)(1024 + i);
    q->from.sin_addr = 0x7F000001;
    q->answered = 0;
    task_send(answer_query, (void *)q);
}

/* round-trip check: encode a name, decode it back */
int codec_selftest(void) {
    struct wirebuf *w = (struct wirebuf *)malloc(sizeof(struct wirebuf));
    char out[64];
    int pos = 0, ok = 1;
    wire_reset(w);
    wire_put_name(w, "www.example.org");
    wire_put_name(w, "www.example.org");   /* second write compresses */
    wire_get_name(w, &pos, out, 64);
    if (strcmp(out, "www.example.org") != 0) ok = 0;
    wire_get_name(w, &pos, out, 64);
    if (strcmp(out, "www.example.org") != 0) ok = 0;
    free(w);
    return ok;
}

int main(void) {
    int iter, i;
    if (!codec_selftest()) { printf("bind codec selftest FAILED\n"); return 1; }
    reply = (struct wirebuf *)malloc(sizeof(struct wirebuf));
    zone_add_a("www.example.org", 0xC0A80001);
    zone_add_a("ns.example.org", 0xC0A80002);
    zone_add_cname("ftp.example.org", "www.example.org");
    zone_add_mx("example.org", 10, "mail.example.org");
    zone_add_a("mail.example.org", 0xC0A80003);
    for (iter = 0; iter < SCALE; iter++) {
        for (i = 0; i < QUERIES; i++) submit_query(i);
        task_run_all();
    }
    printf("bind tasks=%d answers=%d bytes=%d\n", tasks_run, answers_sent, reply_bytes);
    return 0;
}
`,
})
