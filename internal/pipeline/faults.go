package pipeline

import (
	"context"
	"crypto/sha256"
	"sync"
	"sync/atomic"
	"time"

	"gocured"
	"gocured/internal/infer"
)

// Faults is the pipeline's deterministic fault-injection harness. The
// admission and overload tests use it to simulate slow or stalled workers,
// a wedged artifact store, and adversarial arrival patterns without any
// reliance on wall-clock races: every fault is a hook the test controls
// explicitly. A nil *Faults (the production default) costs one nil check
// per job.
type Faults struct {
	// OnExecute is called when a job actually begins executing on a worker
	// slot — after admission, before any compile work. Coalesced followers
	// and shed jobs never trigger it, which makes it the harness's
	// compile/execution counter.
	OnExecute func(job Job)
	// OnDone is called when a job's execution finishes (any outcome),
	// still on the worker goroutine.
	OnDone func(job Job)
	// ExecGate, when it returns a non-nil channel, stalls the execution
	// until that channel closes: the "stalled worker" fault. The worker
	// slot stays occupied the whole time, so queueing and timeout policies
	// see exactly what a wedged compile looks like.
	ExecGate func(job Job) <-chan struct{}
	// ExecDelay injects an artificial service time: the "slow worker"
	// fault, used to make service-time distributions deterministic.
	ExecDelay func(job Job) time.Duration
	// WrapSummaries decorates the artifact-store summary source each
	// compile sees; wrap with WedgeSource to simulate a wedged store whose
	// reads and writes hang.
	WrapSummaries func(src gocured.SummarySource) gocured.SummarySource
}

// beforeExec applies the pre-execution faults on the worker goroutine.
func (f *Faults) beforeExec(job Job) {
	if f == nil {
		return
	}
	if f.OnExecute != nil {
		f.OnExecute(job)
	}
	if f.ExecGate != nil {
		if ch := f.ExecGate(job); ch != nil {
			<-ch
		}
	}
	if f.ExecDelay != nil {
		if d := f.ExecDelay(job); d > 0 {
			time.Sleep(d)
		}
	}
}

// afterExec applies the post-execution hook on the worker goroutine.
func (f *Faults) afterExec(job Job) {
	if f != nil && f.OnDone != nil {
		f.OnDone(job)
	}
}

// wrapSummaries applies the store fault, if any.
func (f *Faults) wrapSummaries(src gocured.SummarySource) gocured.SummarySource {
	if f == nil || f.WrapSummaries == nil {
		return src
	}
	return f.WrapSummaries(src)
}

// StallGate stalls gated executions until the test releases them, one at a
// time and in arrival order — the deterministic scheduler probe: with it,
// a test steps the worker pool one completed job at a time and observes
// exactly which waiter the admission policy dispatches next.
type StallGate struct {
	mu      sync.Mutex
	waiting []chan struct{}
	arrived int
}

// NewStallGate returns an empty gate. Wire it as Faults.ExecGate with
// g.Gate.
func NewStallGate() *StallGate { return &StallGate{} }

// Gate is the Faults.ExecGate hook: each execution blocks on a fresh
// channel until released.
func (g *StallGate) Gate(Job) <-chan struct{} {
	ch := make(chan struct{})
	g.mu.Lock()
	g.waiting = append(g.waiting, ch)
	g.arrived++
	g.mu.Unlock()
	return ch
}

// Arrived reports how many executions have reached the gate so far
// (released or not); tests poll it to know a job holds a worker slot.
func (g *StallGate) Arrived() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.arrived
}

// WaitArrived polls until n executions have reached the gate or the
// timeout lapses; it reports whether the count was reached.
func (g *StallGate) WaitArrived(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for g.Arrived() < n {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Release unblocks up to n stalled executions in arrival order and
// returns how many it released.
func (g *StallGate) Release(n int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	released := 0
	for released < n && len(g.waiting) > 0 {
		close(g.waiting[0])
		g.waiting = g.waiting[1:]
		released++
	}
	return released
}

// ReleaseAll unblocks every currently stalled execution.
func (g *StallGate) ReleaseAll() int {
	g.mu.Lock()
	n := len(g.waiting)
	g.mu.Unlock()
	return g.Release(n)
}

// ExecTracker counts executions and their peak concurrency. Wire Begin as
// Faults.OnExecute and End as Faults.OnDone; Peak then proves the worker
// pool never over-admits (a double-released slot shows up as Peak >
// Workers), and Total proves coalescing deduplicated work.
type ExecTracker struct {
	cur, peak, total atomic.Int64
}

// Begin is the Faults.OnExecute hook.
func (t *ExecTracker) Begin(Job) {
	t.total.Add(1)
	n := t.cur.Add(1)
	for {
		p := t.peak.Load()
		if n <= p || t.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

// End is the Faults.OnDone hook.
func (t *ExecTracker) End(Job) { t.cur.Add(-1) }

// Total is the number of executions that actually ran.
func (t *ExecTracker) Total() int64 { return t.total.Load() }

// Peak is the maximum concurrent executions observed.
func (t *ExecTracker) Peak() int64 { return t.peak.Load() }

// Current is the number of executions running right now.
func (t *ExecTracker) Current() int64 { return t.cur.Load() }

// WedgeSource wraps a SummarySource so every Load and Save blocks until
// Gate closes: the wedged-artifact-store fault. Compiles that consult the
// store hang inside inference, occupying their worker slot, until the
// test unwedges the store — exactly the failure mode of a hung disk or a
// stuck remote cache.
type WedgeSource struct {
	Inner gocured.SummarySource
	Gate  <-chan struct{}
}

func (w *WedgeSource) Load(fn string, body, decls [sha256.Size]byte) (*infer.FuncSummary, bool) {
	<-w.Gate
	return w.Inner.Load(fn, body, decls)
}

func (w *WedgeSource) Save(sum *infer.FuncSummary, fn string, body, decls [sha256.Size]byte) {
	<-w.Gate
	w.Inner.Save(sum, fn, body, decls)
}

// BurstDo is the burst arrival pattern: every job is submitted at the same
// instant (a common barrier releases all submitter goroutines together),
// modelling a thundering herd rather than DoAll's as-fast-as-possible
// spawn loop. Results return in input order.
func BurstDo(ctx context.Context, r *Runner, jobs []Job) []*JobResult {
	start := make(chan struct{})
	results := make([]*JobResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			results[i] = r.Do(ctx, jobs[i])
		}(i)
	}
	close(start)
	wg.Wait()
	return results
}
