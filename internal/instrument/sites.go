package instrument

import (
	"gocured/internal/cil"
)

// SiteInfo is one static check site of the final (optimized) cured
// program: a rendered source position × check kind. Check.Site values
// index this table 1-based.
type SiteInfo struct {
	Pos  string
	Kind cil.CheckKind
}

// AssignSites walks the cured program after optimization and gives every
// check instruction a stable small-integer site ID, deduplicated by
// position × kind (the same identity interp.SiteKey uses for run-time
// attribution). The table lets the flight recorder log one int32 per
// executed check instead of a position string, and lets exporters resolve
// IDs back to sources. core.Build calls this as the last curing stage.
func AssignSites(c *Cured) {
	idx := make(map[SiteInfo]int32)
	c.Sites = c.Sites[:0]
	for _, f := range c.Prog.Funcs {
		cil.WalkInstrs(f.Body.Stmts, func(i cil.Instr) {
			chk, ok := i.(*cil.Check)
			if !ok {
				return
			}
			k := SiteInfo{Pos: chk.Pos.String(), Kind: chk.Kind}
			id, seen := idx[k]
			if !seen {
				c.Sites = append(c.Sites, k)
				id = int32(len(c.Sites))
				idx[k] = id
			}
			chk.Site = id
		})
	}
	c.SiteIndex = idx
}
