package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gocured"
	"gocured/internal/flight"
	"gocured/internal/store"
	"gocured/internal/trace"
)

// RunnerOptions tune a Runner.
type RunnerOptions struct {
	// Workers bounds concurrent jobs (0 = runtime.NumCPU()).
	Workers int
	// CacheEntries bounds the compile cache (0 = DefaultCacheEntries,
	// negative = caching disabled).
	CacheEntries int
	// DefaultStepLimit is applied to run jobs that do not set their own
	// RunOptions.StepLimit (0 keeps the interpreter's default of 1e9).
	// ccserve lowers it so one request cannot monopolize a worker.
	DefaultStepLimit uint64
	// JobTimeout is the default wall-clock bound per job (0 = none). A
	// timed-out job's result is abandoned; its worker slot is freed only
	// when the underlying compile/run actually stops (the step limit is
	// the hard backstop), so pathological jobs exert backpressure instead
	// of accumulating unbounded goroutines.
	JobTimeout time.Duration
	// Flight, when non-nil, records every job's compile/run phases into
	// per-worker flight-recorder rings (wall-clock µs timestamps). Export
	// them with flight.WriteTrace(w, Flight.Rings()) for a Perfetto view
	// of pipeline concurrency (one track per worker slot). Nil disables
	// recording at the cost of one nil comparison per job.
	Flight *flight.Recorder
	// Store, when non-nil, is the persistent artifact store used as the
	// cache's second tier: compiles replay per-function inference summaries
	// from it, so a restarted process serves warm compiles from disk.
	Store *store.Artifacts
	// TraceBufferEntries bounds the request-trace buffer behind Traces()
	// and GET /traces/{id} (0 = trace.DefaultBufferEntries; negative
	// disables request-trace retention — jobs still get trace IDs and span
	// timelines, they just are not kept for later query).
	TraceBufferEntries int
	// QueueDepth bounds the admission queue: at most this many jobs wait
	// for worker slots at once, and further arrivals are shed with a
	// ShedError carrying a Retry-After estimate. 0 leaves the queue
	// unbounded — right for batch drivers (ccbench submits a whole corpus
	// at once); ccserve always sets a bound.
	QueueDepth int
	// ClientWeights maps client IDs to fair-queue weights; absent clients
	// get DefaultClientWeight. A weight-2 client is entitled to twice the
	// admitted share of a weight-1 client when both are backlogged.
	ClientWeights map[string]int
	// CoalesceJobs enables runner-level coalescing: identical in-flight
	// jobs (same cache key AND same run options — see coalesceKey) share
	// one admission slot and one execution, and every caller receives the
	// same payload. Off by default because batch drivers want every
	// submitted job measured individually; ccserve turns it on.
	CoalesceJobs bool
	// Faults injects deterministic failures for tests; nil in production.
	Faults *Faults
}

// Job is one unit of pipeline work: cure a source file and, optionally,
// execute it in one Mode.
type Job struct {
	// Name labels the job and names the translation unit in diagnostics
	// (a ".c" suffix is conventional but not required).
	Name    string
	Source  string
	Options gocured.Options

	// TraceID is the request-scoped trace ID propagated through the job's
	// spans, bus events, error text, and the trace buffer. Empty means the
	// Runner assigns a fresh one (callers with an inbound ID — ccserve
	// honoring a client-supplied X-Trace-Id — set it).
	TraceID string

	// ClientID keys per-client fair queueing: under contention, admission
	// shares worker slots across distinct ClientIDs by weight, so one
	// flooding tenant cannot starve the rest. Empty means the anonymous
	// client (all unattributed jobs share one fair-queue lane). ccserve
	// sets it from the client-ID header or the remote address.
	ClientID string

	// Run requests execution after curing; Mode and RunOptions configure it.
	Run        bool
	Mode       gocured.Mode
	RunOptions gocured.RunOptions

	// Timeout overrides the Runner's JobTimeout when positive.
	Timeout time.Duration

	// testPanic makes execute panic before doing any work; package tests
	// inject it to exercise the per-job panic isolation.
	testPanic bool
}

// JobResult is the outcome of one Job.
type JobResult struct {
	Name string
	Key  Key

	// TraceID identifies this request's trace: pass it to Runner.Traces()
	// (or GET /traces/{id}) for the full span timeline.
	TraceID string

	// Program, Stats and Diagnostics are set when compilation succeeded.
	Program     *gocured.Program
	Stats       gocured.Stats
	Diagnostics []string
	// CacheHit reports that compilation was served without compiling
	// (memory or in-flight coalescing); Tier names the exact cache tier
	// that served it: "memory", "inflight", "disk" (compiled with stored
	// summaries replayed), or "compile" (from scratch).
	CacheHit bool
	Tier     string
	// Incr reports the inference composition of the compile: functions
	// replayed from the artifact store vs. re-collected. On a CacheHit it
	// describes the original compilation.
	Incr gocured.IncrStats

	// Run is the execution result for run jobs.
	Run *gocured.Result

	// Phases is the request's span timeline in pre-order with Depth
	// nesting: a root "request" span (depth 0); "queue-wait", "compile"
	// and "run" children (depth 1); and under "compile" the cache-tier
	// lookup, the compile phases (parse/sema/lower/infer/instrument/...,
	// on non-hits), and aggregated store-read/store-write spans (depth 2).
	// Offsets are milliseconds from the moment Do admitted the job.
	Phases []trace.Span

	// QueueWait is the time the job waited for a worker slot; E2E the
	// end-to-end latency as the caller experienced it (queue wait +
	// compile/cache + run).
	QueueWait   time.Duration
	E2E         time.Duration
	CompileTime time.Duration
	RunTime     time.Duration

	// Err is non-nil on compile errors, run errors, panics (isolated per
	// job) and timeouts. A trapped execution is not an error: see
	// Run.Trapped.
	Err error
}

// Runner cures and executes Jobs on a bounded worker pool over a shared
// content-addressed cache, behind an admission scheduler (bounded queue,
// per-client fair queueing, deadline-aware shedding). One Runner is
// intended to live for the whole process (ccserve) or batch (ccbench); it
// is safe for concurrent use.
type Runner struct {
	opts   RunnerOptions
	adm    *admitter
	cache  *Cache
	m      *metrics
	bus    *Bus
	traces *trace.Buffer

	// flights coalesce identical in-flight jobs when CoalesceJobs is on.
	flightMu sync.Mutex
	flights  map[string]*jobFlight
}

// NewRunner builds a Runner.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	r := &Runner{
		opts:    opts,
		m:       newMetrics(),
		bus:     NewBus(),
		flights: make(map[string]*jobFlight),
	}
	r.adm = newAdmitter(opts.Workers, opts.QueueDepth, opts.ClientWeights, r.m)
	if opts.CacheEntries >= 0 {
		r.cache = NewCache(opts.CacheEntries)
		r.cache.SetStore(opts.Store)
		if opts.Faults != nil && opts.Faults.WrapSummaries != nil {
			r.cache.wrapSums = opts.Faults.WrapSummaries
		}
	}
	if opts.TraceBufferEntries >= 0 {
		r.traces = trace.NewBuffer(opts.TraceBufferEntries)
	}
	return r
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return r.opts.Workers }

// Events returns the Runner's live event bus. Subscribe to tail job
// start/done/trap events (ccserve's GET /events streams them as SSE).
func (r *Runner) Events() *Bus { return r.bus }

// Traces returns the Runner's bounded request-trace buffer (nil when
// disabled via RunnerOptions.TraceBufferEntries < 0).
func (r *Runner) Traces() *trace.Buffer { return r.traces }

// CountTraceparentMalformed records an inbound W3C traceparent header that
// failed validation and was discarded. The HTTP layer calls this (the spec
// says restart the trace, not reject the request) so operators can spot a
// misbehaving upstream in the traceparent_malformed counter.
func (r *Runner) CountTraceparentMalformed() { r.m.traceparentMalformed() }

// Metrics snapshots the Runner's counters.
func (r *Runner) Metrics() Metrics {
	var cs CacheStats
	if r.cache != nil {
		cs = r.cache.Stats()
	}
	m := r.m.snapshot(r.opts.Workers, cs)
	m.QueueLimit = r.opts.QueueDepth
	if d := r.adm.ClientDepths(); len(d) > 0 {
		m.ClientQueueDepths = d
	}
	if r.opts.Store != nil {
		st := r.opts.Store.Store().Stats()
		m.Store = &st
	}
	if r.traces != nil {
		ts := r.traces.Stats()
		m.Traces = &ts
	}
	m.Build = BuildInfo{
		Version:   gocured.Version,
		GoVersion: runtime.Version(),
		Optimizer: "on", // optimizer is per-job (Options.NoOptimize); the build default is on
	}
	return m
}

// Do executes one job: admission (bounded queue, fair queueing, deadline
// shedding), then execution on a worker slot, blocking until the job
// completes, is shed, times out, or ctx is cancelled. It always returns a
// non-nil result; inspect Err. A shed job's Err unwraps to *ShedError.
// With CoalesceJobs on, identical in-flight jobs share one execution.
func (r *Runner) Do(ctx context.Context, job Job) *JobResult {
	if job.TraceID == "" {
		job.TraceID = trace.NewID()
	}
	if !r.opts.CoalesceJobs {
		return r.doOne(ctx, job)
	}

	key := coalesceKey(job)
	r.flightMu.Lock()
	if f, ok := r.flights[key]; ok {
		f.join()
		r.flightMu.Unlock()
		r.m.jobCoalesced()
		return r.waitFlight(ctx, job, f, false)
	}
	// Leader: run the job on a detached context that is cancelled only
	// when every participant (leader caller included) has walked away, so
	// one waiter's cancellation can never kill the shared execution.
	fctx, cancel := context.WithCancel(context.Background())
	f := &jobFlight{done: make(chan struct{}), refs: 1, cancel: cancel}
	r.flights[key] = f
	r.flightMu.Unlock()
	go func() {
		res := r.doOne(fctx, job)
		r.flightMu.Lock()
		delete(r.flights, key)
		r.flightMu.Unlock()
		f.mu.Lock()
		f.res = res
		f.finished = true
		f.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return r.waitFlight(ctx, job, f, true)
}

// jobFlight is one in-flight job execution that identical concurrent jobs
// coalesce onto: the leader executes, everyone shares the payload.
type jobFlight struct {
	done chan struct{}
	res  *JobResult

	mu       sync.Mutex
	refs     int
	finished bool
	cancel   context.CancelFunc
}

// join registers another participant.
func (f *jobFlight) join() {
	f.mu.Lock()
	f.refs++
	f.mu.Unlock()
}

// leave deregisters a participant that stopped waiting; when the last one
// leaves an unfinished flight, the shared execution is cancelled (it would
// only burn a queue slot on a result nobody reads).
func (f *jobFlight) leave() {
	f.mu.Lock()
	f.refs--
	last := f.refs == 0 && !f.finished
	f.mu.Unlock()
	if last {
		f.cancel()
	}
}

// coalesceKey is the identity under which in-flight jobs coalesce: the
// compile cache key (name, source, inference options) plus everything that
// changes what an execution produces — run mode, stdin, args, step limit,
// tracing, profiling, and backend. Two jobs may share an execution only if
// a cache hit could have served them the same payload; collapsing the key
// to the cache key alone would hand a -backend=tree caller a vm result.
func coalesceKey(job Job) string {
	k := CacheKey(job.Name, job.Source, job.Options)
	if !job.Run {
		return fmt.Sprintf("%x|compile", k[:])
	}
	ro := job.RunOptions
	return fmt.Sprintf("%x|run|%s|%x|%q|%d|%v|%d|%s",
		k[:], job.Mode, ro.Stdin, ro.Args, ro.StepLimit, ro.Trace, ro.ProfilePeriod, ro.Backend)
}

// waitFlight waits for a shared execution on behalf of one participant,
// honoring that participant's own context and timeout.
func (r *Runner) waitFlight(ctx context.Context, job Job, f *jobFlight, leader bool) *JobResult {
	enq := time.Now()
	timeout := job.Timeout
	if timeout <= 0 {
		timeout = r.opts.JobTimeout
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case <-f.done:
		if leader {
			return f.res
		}
		// Followers share the payload (Program, Stats, Run — all immutable
		// after completion) under their own envelope: the tier says the
		// request was coalesced, and timing reflects this caller's wait.
		// The TraceID stays the follower's own: trace-context propagation
		// promises the caller its trace-id back on every response, and a
		// caller that minted a traceparent must see that id echoed even
		// when its request piggybacked on another execution. The follower's
		// trace is a one-span stub naming the leader's trace, so the
		// coalesced execution stays reachable from either id.
		cp := *f.res
		cp.Tier = "coalesced"
		cp.CacheHit = cp.Err == nil
		cp.QueueWait = 0
		cp.E2E = time.Since(enq)
		if job.TraceID != f.res.TraceID {
			cp.TraceID = job.TraceID
			if r.traces != nil {
				durMS := float64(cp.E2E) / float64(time.Millisecond)
				rt := trace.ReqTrace{ID: job.TraceID, Name: job.Name, Start: enq, DurMS: durMS,
					Spans: []trace.Span{{Name: "coalesced onto trace " + f.res.TraceID, DurMS: durMS}}}
				if cp.Err != nil {
					rt.Err = cp.Err.Error()
				}
				r.traces.Add(rt)
			}
		}
		return &cp
	case <-ctx.Done():
		f.leave()
		return &JobResult{Name: job.Name, TraceID: job.TraceID, Err: ctx.Err()}
	case <-timeoutCh:
		f.leave()
		r.m.jobTimedOut()
		return &JobResult{Name: job.Name, TraceID: job.TraceID,
			Err: fmt.Errorf("job %q (trace %s) timed out after %v", job.Name, job.TraceID, timeout)}
	}
}

// doOne admits and executes one job without coalescing.
func (r *Runner) doOne(ctx context.Context, job Job) *JobResult {
	enq := time.Now()
	wait, err := r.adm.admit(ctx, job.ClientID, job.TraceID)
	if err != nil {
		var shed *ShedError
		if errors.As(err, &shed) {
			return &JobResult{Name: job.Name, TraceID: job.TraceID,
				Err: fmt.Errorf("job %q (trace %s): %w", job.Name, job.TraceID, err)}
		}
		return &JobResult{Name: job.Name, TraceID: job.TraceID, Err: err}
	}
	r.m.jobStarted()

	resCh := make(chan *JobResult, 1)
	go func() {
		svcStart := time.Now()
		// The slot is returned when execution actually stops — after the
		// in-flight gauge drops — even if the caller abandoned the job on
		// timeout long ago, so pathological jobs exert backpressure
		// instead of over-admitting.
		defer func() { r.adm.release(time.Since(svcStart)) }()
		res := r.execute(job, enq, wait)
		r.m.jobFinished(res)
		resCh <- res
	}()

	timeout := job.Timeout
	if timeout <= 0 {
		timeout = r.opts.JobTimeout
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case res := <-resCh:
		return res
	case <-ctx.Done():
		return &JobResult{Name: job.Name, TraceID: job.TraceID, Err: ctx.Err()}
	case <-timeoutCh:
		r.m.jobTimedOut()
		return &JobResult{Name: job.Name, TraceID: job.TraceID,
			Err: fmt.Errorf("job %q (trace %s) timed out after %v", job.Name, job.TraceID, timeout)}
	}
}

// RetryAfter is the Runner's current backoff estimate for rejected work:
// the time the pool needs to drain the present queue at the observed p50
// service rate. ccserve uses it for Retry-After headers.
func (r *Runner) RetryAfter() time.Duration { return r.adm.RetryAfter() }

// DoAll fans jobs out over the worker pool and returns their results in
// input order once all have completed (or ctx is cancelled, in which case
// the remaining results carry ctx's error).
func (r *Runner) DoAll(ctx context.Context, jobs []Job) []*JobResult {
	results := make([]*JobResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Do(ctx, jobs[i])
		}(i)
	}
	wg.Wait()
	return results
}

// Compile cures a source through the worker pool and cache without
// executing it.
func (r *Runner) Compile(ctx context.Context, name, source string, opts gocured.Options) *JobResult {
	return r.Do(ctx, Job{Name: name, Source: source, Options: opts})
}

// timeline collects the raw timing facts execute gathers so the request's
// span tree can be assembled once, at the end, whatever path (success,
// compile error, panic) the job took.
type timeline struct {
	compStart time.Time
	compDur   time.Duration
	tier      string
	// progSpans are the compile's own phase spans (offsets relative to the
	// compile start); nil when the compile was served from cache.
	progSpans []trace.Span
	// Aggregated artifact-store I/O performed by this compile.
	storeReadMS  float64
	storeWriteMS float64
	storeReads   int
	storeWrites  int
	runStart     time.Time
	runDur       time.Duration
}

// spans assembles the pre-order, depth-annotated request timeline. All
// offsets are milliseconds from enq (the moment Do admitted the job).
func (tl *timeline) spans(enq time.Time, wait, e2e time.Duration) []trace.Span {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	out := []trace.Span{
		{Name: "request", DurMS: ms(e2e)},
		{Name: "queue-wait", DurMS: ms(wait), Depth: 1},
	}
	if !tl.compStart.IsZero() {
		cs := ms(tl.compStart.Sub(enq))
		cd := ms(tl.compDur)
		out = append(out, trace.Span{Name: "compile", StartMS: cs, DurMS: cd, Depth: 1})
		// The cache-tier span covers the lookup: on a memory/inflight hit
		// that is the whole compile window; on a miss it is the (tiny)
		// address computation before compiling.
		tierDur := cd
		if tl.progSpans != nil {
			tierDur = 0
		}
		out = append(out, trace.Span{Name: "cache-" + tl.tier, StartMS: cs, DurMS: tierDur, Depth: 2})
		for _, sp := range tl.progSpans {
			sp.StartMS += cs
			sp.Depth += 2
			out = append(out, sp)
		}
		// Store I/O is interleaved with inference; surface it as aggregate
		// spans at the end of the compile window. The aggregates sum wall
		// time across concurrent inference goroutines, so they can exceed
		// the compile duration — clamp each span into the compile window so
		// the raw Phases list in the /cure response is well-formed (never a
		// negative start or an overlap into queue-wait), not just the
		// sanitized GET /traces/{id} export.
		clamp := func(start, dur float64) (float64, float64) {
			if start < cs {
				start = cs
			}
			if end := cs + cd; start+dur > end {
				dur = end - start
			}
			if dur < 0 {
				dur = 0
			}
			return start, dur
		}
		if tl.storeReads > 0 {
			start, dur := clamp(cs+cd-tl.storeReadMS-tl.storeWriteMS, tl.storeReadMS)
			out = append(out, trace.Span{Name: "store-read", StartMS: start, DurMS: dur, Depth: 2})
		}
		if tl.storeWrites > 0 {
			start, dur := clamp(cs+cd-tl.storeWriteMS, tl.storeWriteMS)
			out = append(out, trace.Span{Name: "store-write", StartMS: start, DurMS: dur, Depth: 2})
		}
	}
	if !tl.runStart.IsZero() {
		out = append(out, trace.Span{Name: "run", StartMS: ms(tl.runStart.Sub(enq)), DurMS: ms(tl.runDur), Depth: 1})
	}
	return out
}

// execute runs one job on the calling goroutine. Panics anywhere in the
// compile/run path are isolated into Err so one pathological source cannot
// take down a batch. enq/wait carry the queue timing measured by Do.
func (r *Runner) execute(job Job, enq time.Time, wait time.Duration) (res *JobResult) {
	res = &JobResult{Name: job.Name, TraceID: job.TraceID, QueueWait: wait}
	tl := &timeline{}
	// Registered first so it runs last (after the recover defer below has
	// isolated any panic into res.Err): every exit path — success, compile
	// error, panic — leaves a complete timeline and a queryable trace.
	defer func() {
		res.E2E = time.Since(enq)
		res.Phases = tl.spans(enq, wait, res.E2E)
		if r.traces != nil {
			rt := trace.ReqTrace{ID: res.TraceID, Name: job.Name, Start: enq,
				DurMS: float64(res.E2E) / float64(time.Millisecond), Spans: res.Phases}
			if res.Err != nil {
				rt.Err = res.Err.Error()
			}
			r.traces.Add(rt)
		}
	}()
	defer func() {
		if p := recover(); p != nil {
			r.m.jobPanicked()
			res.Err = fmt.Errorf("job %q (trace %s) panicked: %v\n%s", job.Name, job.TraceID, p, debug.Stack())
		}
	}()
	if job.testPanic {
		panic("injected test panic")
	}
	// Fault injection (tests only; both calls are nil checks in production).
	r.opts.Faults.beforeExec(job)
	defer r.opts.Faults.afterExec(job)

	// Flight recording: one ring per worker slot, checked out for the
	// job's duration so concurrent jobs land on separate Perfetto tracks.
	var ring *flight.Ring
	rec := r.opts.Flight
	if rec != nil {
		ring = rec.Checkout()
		defer rec.Release(ring)
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvBegin, Name: "job " + job.Name})
		defer func() {
			if res.Run != nil && res.Run.Trapped {
				ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvTrap,
					Name: res.Run.TrapKind, Pos: res.Run.TrapPos})
			}
			ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvEnd, Name: "job " + job.Name})
		}()
	}
	r.bus.Publish(JobEvent{Type: "job_start", Name: job.Name, Mode: job.Mode.String(), TraceID: job.TraceID})
	start := time.Now()
	defer func() {
		ev := JobEvent{Type: "job_done", Name: job.Name, Mode: job.Mode.String(), TraceID: job.TraceID,
			CacheHit: res.CacheHit, DurMS: float64(time.Since(start)) / float64(time.Millisecond)}
		if res.Err != nil {
			ev.Err = res.Err.Error()
		}
		r.bus.Publish(ev)
	}()

	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvBegin, Name: "compile"})
	}
	tl.compStart = start
	compiled, lk, err := r.compile(job)
	res.CompileTime = time.Since(start)
	tl.compDur = res.CompileTime
	tl.tier = lk.Tier
	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvEnd, Name: "compile"})
	}
	if err != nil {
		res.Err = fmt.Errorf("compile %s (trace %s): %w", job.Name, job.TraceID, err)
		return res
	}
	res.Key = compiled.Key
	res.Program = compiled.Program
	res.Stats = compiled.Stats
	res.Diagnostics = compiled.Diagnostics
	res.Incr = compiled.Incr
	res.CacheHit = lk.Hit
	res.Tier = lk.Tier
	if !lk.Hit {
		tl.progSpans = compiled.Program.Spans()
		tl.storeReadMS = compiled.StoreReadMS
		tl.storeWriteMS = compiled.StoreWriteMS
		tl.storeReads = compiled.StoreReads
		tl.storeWrites = compiled.StoreWrites
	}

	if !job.Run {
		return res
	}
	ro := job.RunOptions
	if ro.StepLimit == 0 && r.opts.DefaultStepLimit > 0 {
		ro.StepLimit = r.opts.DefaultStepLimit
	}
	runStart := time.Now()
	tl.runStart = runStart
	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvBegin, Name: "run " + job.Mode.String()})
	}
	out, err := compiled.Program.Run(job.Mode, ro)
	res.RunTime = time.Since(runStart)
	tl.runDur = res.RunTime
	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvEnd, Name: "run " + job.Mode.String()})
	}
	if err != nil {
		res.Err = fmt.Errorf("run %s (%s, trace %s): %w", job.Name, job.Mode, job.TraceID, err)
		return res
	}
	res.Run = out
	if out.Trapped {
		r.bus.Publish(JobEvent{Type: "trap", Name: job.Name, Mode: job.Mode.String(), TraceID: job.TraceID,
			TrapKind: out.TrapKind, TrapPos: out.TrapPos})
	}
	return res
}

func (r *Runner) compile(job Job) (*Compiled, Lookup, error) {
	if r.cache != nil {
		return r.cache.GetOrCompile(job.Name, job.Source, job.Options)
	}
	compiled, err := compileSource(CacheKey(job.Name, job.Source, job.Options), job.Name, job.Source, job.Options, r.opts.Store)
	return compiled, lookupFor(compiled), err
}
