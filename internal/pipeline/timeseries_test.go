package pipeline

import (
	"testing"
	"time"
)

// metricsScript drives a History in tests: each Tick samples the current
// value of m, which the test mutates between ticks.
type metricsScript struct {
	m Metrics
}

func (s *metricsScript) source() Metrics { return s.m }

func tsBase() time.Time {
	return time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
}

func TestHistoryRingWrap(t *testing.T) {
	src := &metricsScript{}
	h := NewHistory(HistoryOptions{
		Source:    src.source,
		Interval:  time.Second,
		Retention: 3 * time.Second, // capacity 4
	})
	base := tsBase()
	for i := 0; i < 10; i++ {
		src.m.Admitted = uint64(i)
		src.m.SnapshotUnixMS = base.Add(time.Duration(i) * time.Second).UnixMilli()
		h.Tick(base.Add(time.Duration(i) * time.Second))
	}
	d := h.Dump(0)
	if len(d.Points) != 4 {
		t.Fatalf("points = %d, want ring capacity 4", len(d.Points))
	}
	// The ring kept the newest 4 ticks: admitted counters 6..9, so the
	// three non-oldest points each show a delta of 1.
	if d.Points[0].UnixMS != base.Add(6*time.Second).UnixMilli() {
		t.Fatalf("oldest retained point at %d, want t+6s", d.Points[0].UnixMS)
	}
	for i, p := range d.Points {
		wantDelta := uint64(1)
		if i == 0 {
			wantDelta = 0 // nothing precedes the oldest point
		}
		if p.Admitted != wantDelta {
			t.Errorf("point %d admitted delta = %d, want %d", i, p.Admitted, wantDelta)
		}
	}
	if d.Summary == nil || d.Summary.Admitted != 3 {
		t.Fatalf("summary = %+v, want admitted delta 3 across the window", d.Summary)
	}
}

func TestHistoryDumpWindowAndDeltas(t *testing.T) {
	src := &metricsScript{}
	h := NewHistory(HistoryOptions{
		Source:    src.source,
		Interval:  time.Second,
		Retention: time.Minute,
	})
	base := tsBase()
	var lat LogHist
	for i := 0; i < 6; i++ {
		src.m.Admitted = uint64(i * 10)
		src.m.Shed = uint64(i)
		src.m.TrapsByKind = map[string]uint64{"null": uint64(i)}
		src.m.Traps = uint64(i)
		lat.ObserveMS(5.0, "")
		src.m.E2EWall = lat.Snapshot()
		h.Tick(base.Add(time.Duration(i) * time.Second))
	}
	// window=2s keeps the newest point plus anything within 2s of it.
	d := h.Dump(2 * time.Second)
	if len(d.Points) != 3 {
		t.Fatalf("windowed points = %d, want 3", len(d.Points))
	}
	last := d.Points[len(d.Points)-1]
	if last.Admitted != 10 || last.Shed != 1 || last.IntervalMS != 1000 {
		t.Fatalf("last point deltas = %+v", last)
	}
	// One 5ms observation per interval: the per-point delta quantiles sit
	// in the bucket holding 5ms (bounds ~4.3/5.1ms).
	if last.P50MS <= 0 || last.P50MS > 5.1 {
		t.Fatalf("per-point p50 = %v, want within the 5ms bucket", last.P50MS)
	}
	if d.Summary == nil {
		t.Fatal("no summary")
	}
	if d.Summary.Admitted != 20 || d.Summary.Shed != 2 || d.Summary.Traps != 2 {
		t.Fatalf("summary = %+v", d.Summary)
	}
	if d.Summary.TrapsByKind["null"] != 2 {
		t.Fatalf("summary traps_by_kind = %+v", d.Summary.TrapsByKind)
	}
	if d.Summary.E2E.Count != 2 {
		t.Fatalf("summary e2e delta count = %d, want 2", d.Summary.E2E.Count)
	}
}

func TestHistoryDumpEmpty(t *testing.T) {
	h := NewHistory(HistoryOptions{Source: func() Metrics { return Metrics{} }})
	d := h.Dump(0)
	if len(d.Points) != 0 || d.Summary != nil {
		t.Fatalf("empty history dumped %+v", d)
	}
}

// TestHistorySLOTransitions drives the availability objective through
// ok -> page -> ok with a synthetic clock and checks both the evaluated
// states and the slo_state events published on the bus.
func TestHistorySLOTransitions(t *testing.T) {
	src := &metricsScript{}
	bus := NewBus()
	events, cancel := bus.Subscribe(16)
	defer cancel()

	h := NewHistory(HistoryOptions{
		Source:    src.source,
		Interval:  time.Second,
		Retention: time.Minute,
		SLOs:      []SLOSpec{{Name: "availability", Objective: 0.99}},
		Windows: SLOWindows{
			FastShort: 2 * time.Second,
			FastLong:  8 * time.Second,
			SlowShort: 4 * time.Second,
			SlowLong:  16 * time.Second,
		},
		Bus: bus,
	})

	base := tsBase()
	tick := 0
	step := func(admitted, shed uint64) {
		src.m.Admitted += admitted
		src.m.Shed += shed
		h.Tick(base.Add(time.Duration(tick) * time.Second))
		tick++
	}

	// Healthy traffic: everything admitted, state ok.
	for i := 0; i < 5; i++ {
		step(100, 0)
	}
	st := h.Statuses()
	if len(st) != 1 || st[0].State != SLOStateOK {
		t.Fatalf("healthy statuses = %+v", st)
	}

	// Overload: half of everything shed. Error fraction 0.5 against a 1%
	// budget is a burn of 50 on every window — page.
	for i := 0; i < 5; i++ {
		step(50, 50)
	}
	st = h.Statuses()
	if st[0].State != SLOStatePage {
		t.Fatalf("overload state = %q (windows %+v), want page", st[0].State, st[0].Windows)
	}
	if mb := st[0].MaxBurn(); mb < PageBurn {
		t.Fatalf("overload max burn = %v, want >= %v", mb, PageBurn)
	}

	// Recovery: idle ticks. The fast-short window drains first and the
	// pairing rule resets the page; eventually every window is empty -> ok.
	for i := 0; i < 20; i++ {
		step(0, 0)
	}
	st = h.Statuses()
	if st[0].State != SLOStateOK {
		t.Fatalf("recovered state = %q (windows %+v), want ok", st[0].State, st[0].Windows)
	}

	// The bus saw every transition in order (no event for the initial ok
	// state): -> warn as the first shed batch trips the fast pair but the
	// longer fast window still dilutes it below the page threshold, -> page
	// once the burn sustains, -> warn while the slow windows still cover
	// the burn after the fast ones drained, -> ok once they drain too.
	var states []string
	for len(events) > 0 {
		ev := <-events
		if ev.Type != "slo_state" {
			t.Fatalf("unexpected event type %q", ev.Type)
		}
		states = append(states, ev.State)
	}
	want := []string{SLOStateWarn, SLOStatePage, SLOStateWarn, SLOStateOK}
	if len(states) != len(want) {
		t.Fatalf("slo_state events = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("slo_state events = %v, want %v", states, want)
		}
	}
}

// TestHistoryLatencySLO pins the latency objective: observations past the
// target spend budget; under the target they do not.
func TestHistoryLatencySLO(t *testing.T) {
	src := &metricsScript{}
	var lat LogHist
	h := NewHistory(HistoryOptions{
		Source:    src.source,
		Interval:  time.Second,
		Retention: time.Minute,
		SLOs:      []SLOSpec{{Name: "latency", Objective: 0.99, LatencyTargetMS: 100}},
		Windows: SLOWindows{
			FastShort: 2 * time.Second, FastLong: 4 * time.Second,
			SlowShort: 3 * time.Second, SlowLong: 8 * time.Second,
		},
	})
	base := tsBase()
	tick := 0
	step := func(ms float64, n int) {
		for i := 0; i < n; i++ {
			lat.ObserveMS(ms, "")
		}
		src.m.E2EWall = lat.Snapshot()
		h.Tick(base.Add(time.Duration(tick) * time.Second))
		tick++
	}

	for i := 0; i < 4; i++ {
		step(10, 100) // fast requests, well under the 100ms target
	}
	if st := h.Statuses(); st[0].State != SLOStateOK {
		t.Fatalf("fast traffic state = %+v, want ok", st[0])
	}
	for i := 0; i < 4; i++ {
		step(5000, 100) // every request blows the target: burn 100 on a 1% budget
	}
	if st := h.Statuses(); st[0].State != SLOStatePage {
		t.Fatalf("slow traffic state = %q (windows %+v), want page", st[0].State, st[0].Windows)
	}
}

func TestSLOEventsAvailability(t *testing.T) {
	spec := SLOSpec{Name: "availability", Objective: 0.99}
	old := Metrics{Admitted: 100, Shed: 10, JobsPanicked: 1, JobsTimedOut: 1}
	cur := Metrics{Admitted: 180, Shed: 30, JobsPanicked: 2, JobsTimedOut: 3}
	good, total := sloEvents(spec, old, cur)
	// 100 new admission decisions; 20 shed + 1 panic + 2 timeouts bad.
	if total != 100 || good != 77 {
		t.Fatalf("good/total = %d/%d, want 77/100", good, total)
	}
	// A counter regression (restart) yields an empty window, not a wrap.
	good, total = sloEvents(spec, cur, old)
	if good != 0 || total != 0 {
		t.Fatalf("regressed counters gave %d/%d, want 0/0", good, total)
	}
}

func TestSLOEventsLatency(t *testing.T) {
	spec := SLOSpec{Name: "latency", Objective: 0.99, LatencyTargetMS: 100}
	var lh LogHist
	for i := 0; i < 90; i++ {
		lh.ObserveMS(10, "")
	}
	old := Metrics{E2EWall: lh.Snapshot()}
	for i := 0; i < 10; i++ {
		lh.ObserveMS(5000, "")
	}
	cur := Metrics{E2EWall: lh.Snapshot()}
	good, total := sloEvents(spec, old, cur)
	if total != 10 || good != 0 {
		t.Fatalf("good/total = %d/%d, want 0/10 (every new observation slow)", good, total)
	}
	// Inconsistent snapshots (e.g. a restart shrank the histogram) are
	// skipped rather than fabricated.
	good, total = sloEvents(spec, cur, Metrics{E2EWall: old.E2EWall})
	if good != 0 || total != 0 {
		t.Fatalf("inconsistent snapshots gave %d/%d, want 0/0", good, total)
	}
}

func TestBurnRate(t *testing.T) {
	spec := SLOSpec{Objective: 0.99}
	if b := burnRate(spec, 0, 0); b != 0 {
		t.Errorf("empty window burn = %v, want 0", b)
	}
	// 1% errors on a 1% budget: burning exactly at the sustainable rate.
	if b := burnRate(spec, 99, 100); b < 0.999 || b > 1.001 {
		t.Errorf("burn = %v, want 1.0", b)
	}
	if b := burnRate(spec, 50, 100); b < 49.9 || b > 50.1 {
		t.Errorf("burn = %v, want 50", b)
	}
	// A 100% objective has no budget: any error is a huge burn.
	if b := burnRate(SLOSpec{Objective: 1}, 99, 100); b < 1e6 {
		t.Errorf("zero-budget burn = %v, want huge", b)
	}
}

func TestSLOStateFolding(t *testing.T) {
	// mk builds four eligible windows (fully covered, plenty of events) so
	// the cases exercise the burn thresholds alone.
	mkw := func(burn float64) WindowBurn {
		return WindowBurn{WindowMS: 60_000, SpanMS: 60_000, Total: 1000, Burn: burn, Eligible: true}
	}
	mk := func(fs, fl, ss, sl float64) []WindowBurn {
		return []WindowBurn{mkw(fs), mkw(fl), mkw(ss), mkw(sl)}
	}
	// Ineligible variants: same burns, but the window fails a coverage gate.
	uncovered := mk(20, 20, 0, 0)
	uncovered[1].Eligible = false
	sparse := mk(0, 0, 7, 7)
	sparse[2].Eligible = false
	cases := []struct {
		name string
		w    []WindowBurn
		want string
	}{
		{"all-zero", mk(0, 0, 0, 0), SLOStateOK},
		{"page-both-fast", mk(20, 15, 0, 0), SLOStatePage},
		{"fast-short-only-spike", mk(20, 1, 0, 0), SLOStateOK},
		{"warn-slow-pair", mk(0, 0, 7, 7), SLOStateWarn},
		{"warn-fast-pair-below-page", mk(7, 7, 0, 0), SLOStateWarn},
		{"slow-short-only", mk(0, 0, 7, 1), SLOStateOK},
		{"page-burn-but-uncovered-window", uncovered, SLOStateOK},
		{"warn-burn-but-sparse-window", sparse, SLOStateOK},
		{"malformed", nil, SLOStateOK},
	}
	for _, tc := range cases {
		if got := sloState(tc.w); got != tc.want {
			t.Errorf("%s: state = %q, want %q", tc.name, got, tc.want)
		}
	}
}

func TestWindowBurnEligibility(t *testing.T) {
	cases := []struct {
		name string
		w    WindowBurn
		want bool
	}{
		{"covered-and-busy", WindowBurn{WindowMS: 60_000, SpanMS: 30_000, Total: 10}, true},
		{"under-covered", WindowBurn{WindowMS: 60_000, SpanMS: 29_000, Total: 1000}, false},
		{"too-few-events", WindowBurn{WindowMS: 60_000, SpanMS: 60_000, Total: 9}, false},
		{"empty", WindowBurn{WindowMS: 60_000}, false},
	}
	for _, tc := range cases {
		if got := tc.w.alertEligible(); got != tc.want {
			t.Errorf("%s: eligible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestHistorySLOStartupNoFalsePage pins the startup regression: with
// production-scale windows (5m/1h/30m/6h) a few seconds after boot, every
// window falls back to the same oldest ring point, so 1 shed out of 5
// requests is a burn of 20 on all four "windows" — which must NOT page,
// because none of them actually covers its window yet.
func TestHistorySLOStartupNoFalsePage(t *testing.T) {
	src := &metricsScript{}
	h := NewHistory(HistoryOptions{
		Source:    src.source,
		Interval:  time.Second,
		Retention: time.Hour,
		SLOs:      []SLOSpec{{Name: "availability", Objective: 0.99}},
	})
	base := tsBase()
	h.Tick(base)
	src.m.Admitted, src.m.Shed = 4, 1
	h.Tick(base.Add(time.Second))
	st := h.Statuses()
	if len(st) != 1 || st[0].State != SLOStateOK {
		t.Fatalf("startup statuses = %+v, want ok", st)
	}
	for i, w := range st[0].Windows {
		if w.Eligible {
			t.Errorf("window %d eligible with a 1s span over %dms: %+v", i, w.WindowMS, w)
		}
	}
}

func TestHistogramDelta(t *testing.T) {
	var lh LogHist
	lh.ObserveMS(1, "aaaaaaaaaaaaaaa1")
	lh.ObserveMS(50, "")
	old := lh.Snapshot()
	lh.ObserveMS(1, "aaaaaaaaaaaaaaa2")
	lh.ObserveMS(900, "aaaaaaaaaaaaaaa3")
	cur := lh.Snapshot()

	d := cur.Delta(old)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	var sum uint64
	for _, b := range d.Buckets {
		sum += b.Count
	}
	if sum != 2 {
		t.Fatalf("delta bucket sum = %d, want 2", sum)
	}
	// Positive-delta buckets keep cur's exemplars; untouched buckets (the
	// 50ms one) drop out entirely.
	for _, b := range d.Buckets {
		if b.Count == 0 {
			t.Fatalf("zero-count bucket survived the delta: %+v", d.Buckets)
		}
		if b.Exemplar == nil {
			t.Fatalf("delta bucket lost its exemplar: %+v", b)
		}
	}

	// Empty old snapshot: delta is cur verbatim.
	if d := cur.Delta(Histogram{}); d.Count != cur.Count {
		t.Fatalf("delta from empty = %+v", d)
	}
	// Inconsistent (old bigger than cur, i.e. a restart): cur returned
	// unchanged rather than a wrapped subtraction.
	if d := old.Delta(cur); d.Count != old.Count {
		t.Fatalf("inconsistent delta = %+v, want old unchanged", d)
	}
}
