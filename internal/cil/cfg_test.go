package cil

import (
	"testing"

	"gocured/internal/ctypes"
)

// Helpers building IR fragments directly (cfg construction is independent
// of the frontend, so the tests assemble statement trees by hand).

func intTy() *ctypes.Type { return &ctypes.Type{Kind: ctypes.Int, Size: 4} }

func intVar(name string, id int) *Var {
	return &Var{Name: name, Type: intTy(), ID: id}
}

func setI(v *Var, val int64) Stmt {
	return &SInstr{Ins: &Set{LV: VarLV(v), RHS: &Const{I: val, Ty: v.Type}}}
}

func fnOf(stmts ...Stmt) *Func {
	return &Func{Name: "f", Body: &Block{Stmts: stmts}}
}

func TestCFGStraightLine(t *testing.T) {
	v := intVar("x", 0)
	g := BuildCFG(fnOf(setI(v, 1), setI(v, 2)))
	rpo := g.ReversePostorder()
	if rpo[0] != g.Entry {
		t.Fatalf("RPO does not start at entry")
	}
	if len(g.Entry.Instrs) != 2 {
		t.Errorf("entry block has %d instrs, want 2", len(g.Entry.Instrs))
	}
	// Falling off the end reaches the exit.
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry should fall through to exit")
	}
}

func TestCFGIfJoin(t *testing.T) {
	v := intVar("x", 0)
	cond := &Lval{LV: VarLV(v)}
	fn := fnOf(
		setI(v, 1),
		&If{Cond: cond, Then: &Block{Stmts: []Stmt{setI(v, 2)}}, Else: &Block{Stmts: []Stmt{setI(v, 3)}}},
		setI(v, 4),
	)
	g := BuildCFG(fn)
	// entry branches to both arms; both arms reach the join holding x=4.
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(g.Entry.Succs))
	}
	join := g.Entry.Succs[0].Succs[0]
	if join != g.Entry.Succs[1].Succs[0] {
		t.Fatalf("arms do not converge on one join block")
	}
	if len(join.Instrs) != 1 {
		t.Errorf("join block has %d instrs, want 1", len(join.Instrs))
	}
	d := g.Dominators()
	if !d.Dominates(g.Entry, join) {
		t.Errorf("entry must dominate the join")
	}
	for _, arm := range g.Entry.Succs {
		if d.Dominates(arm, join) {
			t.Errorf("an if arm must not dominate the join")
		}
		if d.Idom(arm) != g.Entry {
			t.Errorf("arm idom = %v, want entry", d.Idom(arm))
		}
	}
	if d.Idom(join) != g.Entry {
		t.Errorf("join idom should be the branch head")
	}
}

func TestCFGMissingElse(t *testing.T) {
	v := intVar("x", 0)
	fn := fnOf(
		&If{Cond: &Lval{LV: VarLV(v)}, Then: &Block{Stmts: []Stmt{setI(v, 2)}}},
		setI(v, 4),
	)
	g := BuildCFG(fn)
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2 (then + fallthrough)", len(g.Entry.Succs))
	}
}

func TestCFGLoopShape(t *testing.T) {
	v := intVar("i", 0)
	// loop { if (!i) break; i = 2 } post { i = 3 } — the canonical lowering
	// of a while loop with a post block.
	body := &Block{Stmts: []Stmt{
		&If{Cond: &UnOp{Op: OpNot, X: &Lval{LV: VarLV(v)}, Ty: v.Type}, Then: &Block{Stmts: []Stmt{&Break{}}}},
		setI(v, 2),
	}}
	post := &Block{Stmts: []Stmt{setI(v, 3)}}
	fn := fnOf(setI(v, 1), &Loop{Body: body, Post: post}, setI(v, 4))
	g := BuildCFG(fn)
	d := g.Dominators()
	loops := g.NaturalLoops(d)
	if len(loops) != 1 {
		t.Fatalf("found %d natural loops, want 1", len(loops))
	}
	l := loops[0]
	// Header dominates every block of the loop.
	for b := range l.Blocks {
		if !d.Dominates(l.Head, b) {
			t.Errorf("loop header does not dominate block %d", b.ID)
		}
	}
	// The post block (holding i=3) is part of the loop.
	found := false
	for b := range l.Blocks {
		for _, si := range b.Instrs {
			if s, ok := si.Ins.(*Set); ok {
				if c, ok := s.RHS.(*Const); ok && c.I == 3 {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("post block not collected into the natural loop")
	}
}

func TestCFGNestedLoops(t *testing.T) {
	v := intVar("i", 0)
	brk := func() *If {
		return &If{Cond: &Lval{LV: VarLV(v)}, Then: &Block{Stmts: []Stmt{&Break{}}}}
	}
	inner := &Loop{Body: &Block{Stmts: []Stmt{brk(), setI(v, 2)}}}
	outer := &Loop{Body: &Block{Stmts: []Stmt{brk(), inner, setI(v, 3)}}}
	g := BuildCFG(fnOf(outer))
	d := g.Dominators()
	loops := g.NaturalLoops(d)
	if len(loops) != 2 {
		t.Fatalf("found %d natural loops, want 2", len(loops))
	}
	// One loop body must strictly contain the other.
	a, b := loops[0], loops[1]
	if len(a.Blocks) < len(b.Blocks) {
		a, b = b, a
	}
	for blk := range b.Blocks {
		if !a.Blocks[blk] {
			t.Fatalf("inner loop block %d not contained in outer loop", blk.ID)
		}
	}
}

func TestCFGDeadCodeUnreachable(t *testing.T) {
	v := intVar("x", 0)
	fn := fnOf(&Return{}, setI(v, 1)) // code after return
	g := BuildCFG(fn)
	rpo := g.ReversePostorder()
	for _, b := range rpo {
		for _, si := range b.Instrs {
			if _, ok := si.Ins.(*Set); ok {
				t.Errorf("dead instruction reachable in RPO")
			}
		}
	}
	if len(rpo) >= len(g.Blocks) {
		t.Errorf("expected unreachable blocks to be excluded from RPO (%d blocks, %d in RPO)",
			len(g.Blocks), len(rpo))
	}
	d := g.Dominators()
	// Unreachable blocks dominate nothing.
	for _, b := range g.Blocks {
		reachable := false
		for _, r := range rpo {
			if r == b {
				reachable = true
			}
		}
		if !reachable && d.Dominates(b, g.Exit) {
			t.Errorf("unreachable block %d claims to dominate the exit", b.ID)
		}
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	v := intVar("x", 0)
	sw := &Switch{
		X: &Lval{LV: VarLV(v)},
		Cases: []*SwitchCase{
			{Val: 0, Body: []Stmt{setI(v, 1)}}, // falls through
			{Val: 1, Body: []Stmt{setI(v, 2), &Break{}}},
			{IsDefault: true, Body: []Stmt{setI(v, 3)}},
		},
	}
	g := BuildCFG(fnOf(sw, setI(v, 9)))
	// Dispatch block has one successor per case (default present: no direct
	// join edge).
	if len(g.Entry.Succs) != 3 {
		t.Fatalf("switch dispatch has %d successors, want 3", len(g.Entry.Succs))
	}
	// Case 0 falls through into case 1's head.
	c0, c1 := g.Entry.Succs[0], g.Entry.Succs[1]
	fallsThrough := false
	for _, s := range c0.Succs {
		if s == c1 {
			fallsThrough = true
		}
	}
	if !fallsThrough {
		t.Errorf("case 0 does not fall through to case 1")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	// Diamond: A -> B, A -> C, B -> D, C -> D. Built via If/Else.
	v := intVar("x", 0)
	fn := fnOf(
		&If{Cond: &Lval{LV: VarLV(v)},
			Then: &Block{Stmts: []Stmt{setI(v, 1)}},
			Else: &Block{Stmts: []Stmt{setI(v, 2)}}},
		&Return{},
	)
	g := BuildCFG(fn)
	d := g.Dominators()
	if d.Idom(g.Entry) != nil {
		t.Errorf("entry has an idom")
	}
	// Exit's idom is the join (which holds no instrs here but leads to
	// exit); walking idoms from exit must reach entry.
	steps := 0
	for b := g.Exit; b != nil; b = d.Idom(b) {
		steps++
		if steps > len(g.Blocks) {
			t.Fatalf("idom chain from exit does not terminate")
		}
	}
}
