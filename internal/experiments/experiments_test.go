package experiments_test

import (
	"strconv"
	"strings"
	"testing"

	"gocured/internal/experiments"
)

// The experiment tables are regression-tested for their *shapes*: the
// qualitative claims of the paper that EXPERIMENTS.md reports as
// reproduced must keep holding. Cost ratios are deterministic, so these
// assertions are stable.

var cfg = experiments.Config{Scale: 1}

func cell(t *testing.T, tab *experiments.Table, row int, col string) string {
	t.Helper()
	for i, h := range tab.Header {
		if h == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("table %s has no column %q", tab.ID, col)
	return ""
}

func cellF(t *testing.T, tab *experiments.Table, row int, col string) float64 {
	t.Helper()
	s := strings.TrimSuffix(cell(t, tab, row, col), "%")
	s = strings.TrimPrefix(s, "+")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("table %s cell %q not numeric: %q", tab.ID, col, s)
	}
	return v
}

func findRow(t *testing.T, tab *experiments.Table, name string) int {
	t.Helper()
	for i, r := range tab.Rows {
		if r[0] == name {
			return i
		}
	}
	t.Fatalf("table %s has no row %q", tab.ID, name)
	return -1
}

func TestE1CastShapes(t *testing.T) {
	tab := experiments.CastClassification(cfg)
	total := findRow(t, tab, "TOTAL")
	if cellF(t, tab, total, "bad%") > 1.0 {
		t.Errorf("bad casts exceed the paper's <1%%: %s", cell(t, tab, total, "bad%"))
	}
	up := cellF(t, tab, total, "up%")
	down := cellF(t, tab, total, "down%")
	alloc := cellF(t, tab, total, "alloc%")
	if up+down+alloc < 90 {
		t.Errorf("up+down+alloc = %.1f%%, want the dominant share", up+down+alloc)
	}
}

func TestE4IjpegShape(t *testing.T) {
	tab := experiments.IjpegRTTI(cfg)
	noRtti, withRtti := 0, 1
	if cellF(t, tab, noRtti, "wild%") < 50 {
		t.Error("without RTTI most ijpeg pointers should be WILD")
	}
	if cellF(t, tab, withRtti, "wild%") != 0 {
		t.Error("with RTTI no pointer should be WILD")
	}
	if cell(t, tab, withRtti, "bad-casts") != "0" {
		t.Error("with RTTI there must be no bad casts")
	}
	if cellF(t, tab, noRtti, "cured-ratio") <= cellF(t, tab, withRtti, "cured-ratio") {
		t.Error("the WILD configuration must be slower than the RTTI one")
	}
}

func TestE6SplitShape(t *testing.T) {
	tab := experiments.SplitOverhead(cfg)
	em3d := findRow(t, tab, "olden-em3d")
	treeadd := findRow(t, tab, "olden-treeadd")
	ks := findRow(t, tab, "ptrdist-ks")
	if cellF(t, tab, em3d, "overhead%") < 10 {
		t.Error("em3d must be a split-overhead outlier")
	}
	for _, r := range []int{treeadd, ks} {
		if cellF(t, tab, r, "overhead%") > 5 {
			t.Errorf("%s: split overhead should be negligible, got %s",
				tab.Rows[r][0], cell(t, tab, r, "overhead%"))
		}
	}
}

func TestE7BindShape(t *testing.T) {
	tab := experiments.BindCasts(cfg)
	noRtti := 0
	withRtti := 1
	if cellF(t, tab, noRtti, "wild%") == 0 {
		t.Error("without RTTI bind must have WILD pointers")
	}
	if cell(t, tab, noRtti, "downcasts") != "0" {
		t.Error("without RTTI there are no checked downcasts")
	}
	if cellF(t, tab, withRtti, "wild%") != 0 {
		t.Error("with RTTI bind's WILD share must drop to zero")
	}
	if cell(t, tab, withRtti, "bad") != "0" {
		t.Error("with RTTI all remaining casts must be recovered or trusted")
	}
}

func TestE8SplitStats(t *testing.T) {
	tab := experiments.SplitStats(cfg)
	bind := findRow(t, tab, "bind")
	sendmail := findRow(t, tab, "sendmail")
	if cellF(t, tab, bind, "split%") == 0 {
		t.Error("bind's boundary annotation must produce split pointers")
	}
	if cellF(t, tab, sendmail, "split%") != 0 {
		t.Error("unannotated sendmail must have no split pointers")
	}
}

func TestE9ExploitShape(t *testing.T) {
	tab := experiments.Exploits(cfg)
	benign := findRow(t, tab, "benign session")
	exploit := findRow(t, tab, "exploit session (CWD overflow)")
	if !strings.Contains(cell(t, tab, benign, "cured"), "completion") {
		t.Error("benign session must complete when cured")
	}
	if !strings.Contains(cell(t, tab, exploit, "raw"), "completion") {
		t.Error("exploit must run to completion raw (silent corruption)")
	}
	if !strings.Contains(cell(t, tab, exploit, "cured"), "TRAPPED") {
		t.Error("exploit must trap when cured")
	}
	if got := cell(t, tab, benign, "top trap site"); got != "-" {
		t.Errorf("benign session top trap site = %q, want -", got)
	}
	if got := cell(t, tab, exploit, "top trap site"); !strings.Contains(got, "ftpd.c:") {
		t.Errorf("exploit top trap site = %q, want an ftpd.c position", got)
	}
}

func TestTimingTablesShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("timing tables are slow")
	}
	micro := experiments.MicroSuite(cfg)
	for i, r := range micro.Rows {
		cured := cellF(t, micro, i, "cured")
		purify := cellF(t, micro, i, "purify")
		valgrind := cellF(t, micro, i, "valgrind")
		if !(cured < purify && purify < valgrind) {
			t.Errorf("%s: want cured < purify < valgrind, got %.2f %.1f %.1f",
				r[0], cured, purify, valgrind)
		}
		if cured > 3.0 {
			t.Errorf("%s: cured ratio %.2f implausibly high", r[0], cured)
		}
		if purify < 5 {
			t.Errorf("%s: purify ratio %.1f implausibly low", r[0], purify)
		}
	}

	fig9 := experiments.Fig9System(cfg)
	for i, r := range fig9.Rows {
		cured := cellF(t, fig9, i, "cured")
		valgrind := cellF(t, fig9, i, "valgrind")
		if cured >= valgrind {
			t.Errorf("%s: cured (%.2f) must be far cheaper than valgrind (%.1f)",
				r[0], cured, valgrind)
		}
		if cured > 2.5 {
			t.Errorf("%s: cured ratio %.2f out of the published band", r[0], cured)
		}
	}

	fig8 := experiments.Fig8Apache(cfg)
	for i, r := range fig8.Rows {
		cured := cellF(t, fig8, i, "cured-ratio")
		if cured > 1.6 {
			t.Errorf("%s: apache module ratio %.2f too high (I/O should dominate)", r[0], cured)
		}
		kinds := cell(t, fig8, i, "sf/sq/w/rt")
		if !strings.HasSuffix(kinds, "/0/0") {
			t.Errorf("%s: apache modules must have no WILD/RTTI pointers: %s", r[0], kinds)
		}
	}
}
