// Package qual defines pointer-kind qualifiers and the constraint graph used
// by the CCured inference. Each syntactic pointer (or array) type occurrence
// gets a Node; the address of each variable and structure field gets one as
// well. Inference merges nodes that must share a kind (union-find), connects
// data flow with directed edges, and records per-node facts (arithmetic,
// bad casts, annotations) that the solver turns into kinds.
package qual

import (
	"fmt"

	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/trace"
)

// Kind is a CCured pointer kind.
type Kind int

// Pointer kinds, ordered so that the solver can only escalate:
// Unknown < Safe < Rtti < Seq < Wild.
const (
	Unknown Kind = iota
	Safe
	Rtti
	Seq
	Wild
)

var kindNames = [...]string{"UNKNOWN", "SAFE", "RTTI", "SEQ", "WILD"}

func (k Kind) String() string { return kindNames[k] }

// Node is one equivalence class representative in the qualifier graph.
type Node struct {
	ID int
	// Ty is the pointer/array occurrence this node was created for (the
	// first one, if several were unified).
	Ty *ctypes.Type

	// Facts accumulated during constraint generation.
	Arith    bool // pointer arithmetic is performed on this pointer
	BadCast  bool // involved in a cast CCured cannot verify
	IntCast  bool // a non-zero integer is cast to this pointer
	RttiNeed bool // a checked downcast reads run-time type info from it
	Forced   Kind // user annotation (Unknown if none)

	// Kind is the solved pointer kind (valid after Solve).
	Kind Kind

	// WhyPos/Why record the first reason a node went WILD, for diagnostics
	// ("a security review should start at these casts").
	Why    string
	WhyPos diag.Pos

	parent *Node // union-find
	rank   int
	g      *Graph // owning graph (provenance recording)

	// flowOut lists nodes this one flows into (assignment/cast data flow,
	// source -> destination).
	flowOut []*Node
	// flowIn lists nodes flowing into this one.
	flowIn []*Node
	// base lists the pointer nodes contained in the representation of the
	// pointee type (for WILD spreading into base types).
	base []*Node
}

// Graph is the whole-program qualifier graph.
type Graph struct {
	Nodes  []*Node
	byType map[*ctypes.Type]*Node
	// Prov records every constraint edge and kind-forcing fact with its
	// rule name and source location, so solved kinds can be explained by a
	// blame chain (trace.Prov.Explain).
	Prov *trace.Prov
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{byType: make(map[*ctypes.Type]*Node), Prov: trace.NewProv()}
}

// NodeFor returns the node for a pointer/array type occurrence, creating it
// on first use. The occurrence's Node field is set to the node ID.
func (g *Graph) NodeFor(t *ctypes.Type) *Node {
	if t == nil || (t.Kind != ctypes.Ptr && t.Kind != ctypes.Array) {
		return nil
	}
	if n, ok := g.byType[t]; ok {
		return n.Find()
	}
	n := &Node{ID: len(g.Nodes) + 1, Ty: t, g: g}
	switch t.Ann {
	case ctypes.AnnSafe:
		n.Forced = Safe
	case ctypes.AnnSeq:
		n.Forced = Seq
	case ctypes.AnnWild:
		n.Forced = Wild
	case ctypes.AnnRtti:
		n.Forced = Rtti
	}
	n.parent = n
	g.Nodes = append(g.Nodes, n)
	g.byType[t] = n
	t.Node = n.ID
	g.Prov.Describe(n.ID, t.String())
	if n.Forced != Unknown {
		g.Prov.AddSeed(n.ID, "forced-"+n.Forced.String(), diag.Pos{}, "user annotation")
	}
	return n
}

// OccNode returns the node created for the occurrence t itself (not its
// class representative), or nil. Blame chains start at occurrence nodes so
// the explanation names the exact type the user wrote.
func (g *Graph) OccNode(t *ctypes.Type) *Node {
	return g.byType[t]
}

// Lookup returns the representative node for an occurrence, or nil.
func (g *Graph) Lookup(t *ctypes.Type) *Node {
	if n, ok := g.byType[t]; ok {
		return n.Find()
	}
	return nil
}

// Find returns the representative of n's equivalence class. It never
// mutates the chain: queries stay race-free when a solved graph is read
// from several goroutines at once (concurrent Run of a compiled program).
// Compress collapses every chain after solving, so post-solve lookups are
// one hop; during inference chains stay short via union by rank.
func (n *Node) Find() *Node {
	for n.parent != n.parent.parent {
		n = n.parent
	}
	return n.parent
}

// Compress points every node directly at its representative. The solver
// calls it once after the kinds are final so that later concurrent Find
// calls are single-hop reads.
func (g *Graph) Compress() {
	for _, n := range g.Nodes {
		n.parent = n.Find()
	}
}

// Union merges the classes of a and b (they must have the same kind).
func (g *Graph) Union(a, b *Node) *Node {
	return g.UnionR(a, b, "unify", diag.Pos{})
}

// UnionR is Union with provenance: rule names the inference rule that
// demanded the unification and pos its source location.
func (g *Graph) UnionR(a, b *Node, rule string, pos diag.Pos) *Node {
	ra, rb := a.Find(), b.Find()
	if ra == rb {
		return ra
	}
	g.Prov.AddEdge(a.ID, b.ID, trace.CatUnify, rule, pos)
	if ra.rank < rb.rank {
		ra, rb = rb, ra
	}
	if ra.rank == rb.rank {
		ra.rank++
	}
	rb.parent = ra
	// Merge facts into the representative.
	ra.Arith = ra.Arith || rb.Arith
	ra.IntCast = ra.IntCast || rb.IntCast
	ra.RttiNeed = ra.RttiNeed || rb.RttiNeed
	if rb.BadCast && !ra.BadCast {
		ra.BadCast = true
		ra.Why, ra.WhyPos = rb.Why, rb.WhyPos
	}
	if ra.Forced == Unknown {
		ra.Forced = rb.Forced
	}
	ra.flowOut = append(ra.flowOut, rb.flowOut...)
	ra.flowIn = append(ra.flowIn, rb.flowIn...)
	ra.base = append(ra.base, rb.base...)
	return ra
}

// Flow records data flow from src to dst (assignment dst = src).
func (g *Graph) Flow(src, dst *Node) {
	g.FlowR(src, dst, "flow", diag.Pos{})
}

// FlowR is Flow with provenance: rule names the inference rule behind the
// edge ("assign", "upcast", "call-arg", ...) and pos its source location.
func (g *Graph) FlowR(src, dst *Node, rule string, pos diag.Pos) {
	if src == nil || dst == nil {
		return
	}
	rs, rd := src.Find(), dst.Find()
	if rs == rd {
		return
	}
	g.Prov.AddEdge(src.ID, dst.ID, trace.CatFlow, rule, pos)
	rs.flowOut = append(rs.flowOut, rd)
	rd.flowIn = append(rd.flowIn, rs)
}

// AddBase records that base is a pointer contained in the representation of
// n's pointee (WILD spreads from n to base).
func (g *Graph) AddBase(n, base *Node) {
	if n == nil || base == nil {
		return
	}
	g.Prov.AddEdge(n.ID, base.ID, trace.CatBase, "contains", diag.Pos{})
	rn := n.Find()
	rn.base = append(rn.base, base)
}

// seed records a kind-forcing fact on the occurrence node itself (not the
// representative), so blame chains end at the exact site that forced it.
func (n *Node) seed(fact string, pos diag.Pos, why string) {
	if n.g != nil {
		n.g.Prov.AddSeed(n.ID, fact, pos, why)
	}
}

// MarkArith records pointer arithmetic on n.
func (n *Node) MarkArith() { n.MarkArithAt(diag.Pos{}) }

// MarkArithAt is MarkArith with the arithmetic's source location.
func (n *Node) MarkArithAt(pos diag.Pos) {
	if n != nil {
		n.seed("arith", pos, "pointer arithmetic")
		n.Find().Arith = true
	}
}

// MarkBad records a bad cast with provenance.
func (n *Node) MarkBad(pos diag.Pos, why string) {
	if n == nil {
		return
	}
	n.seed("bad-cast", pos, why)
	r := n.Find()
	if !r.BadCast {
		r.BadCast = true
		r.Why = why
		r.WhyPos = pos
	}
}

// MarkIntCast records a non-zero integer flowing into the pointer.
func (n *Node) MarkIntCast() { n.MarkIntCastAt(diag.Pos{}) }

// MarkIntCastAt is MarkIntCast with the cast's source location.
func (n *Node) MarkIntCastAt(pos diag.Pos) {
	if n != nil {
		n.seed("int-cast", pos, "non-zero integer cast to pointer")
		n.Find().IntCast = true
	}
}

// MarkRtti records that a checked downcast needs RTTI from this pointer.
func (n *Node) MarkRtti() { n.MarkRttiAt(diag.Pos{}) }

// MarkRttiAt is MarkRtti with the downcast's source location.
func (n *Node) MarkRttiAt(pos diag.Pos) {
	if n != nil {
		n.seed("rtti-need", pos, "source of a checked downcast")
		n.Find().RttiNeed = true
	}
}

// Reps returns the unique class representatives.
func (g *Graph) Reps() []*Node {
	seen := make(map[*Node]bool)
	var out []*Node
	for _, n := range g.Nodes {
		r := n.Find()
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// KindOf returns the solved kind for the class of t's node; pointers that
// never entered the graph (unreached occurrences) default to Safe.
func (g *Graph) KindOf(t *ctypes.Type) Kind {
	if n := g.Lookup(t); n != nil {
		if n.Kind == Unknown {
			return Safe
		}
		return n.Kind
	}
	return Safe
}

// FlowsOut exposes n's outgoing flow edges (representatives).
func (n *Node) FlowsOut() []*Node { return n.Find().flowOut }

// FlowsIn exposes n's incoming flow edges (representatives).
func (n *Node) FlowsIn() []*Node { return n.Find().flowIn }

// BaseNodes exposes the pointee-contained pointer nodes.
func (n *Node) BaseNodes() []*Node { return n.Find().base }

func (n *Node) String() string {
	return fmt.Sprintf("n%d(%s:%s)", n.ID, n.Ty, n.Kind)
}
