// Package loadgen drives synthetic cure/run traffic against a ccserve
// instance and reports latency distributions. It supports closed-loop
// generation (a fixed number of workers, each issuing its next request as
// soon as the previous completes — concurrency is the control variable)
// and open-loop generation (requests dispatched on a fixed arrival
// schedule regardless of completions — the harsher model, since queueing
// delay compounds instead of throttling the generator).
//
// Traffic is a weighted mix of request classes chosen to exercise the
// server's distinct cost paths:
//
//	hit    the same source every time: memory-cache hits
//	run    a fixed source with run:true: cache hit + interpreter execution
//	cure   a wholly fresh source every request: full compiles
//	edit   one function's body changes per request while the rest of the
//	       unit stays stable: incremental re-cure (store summary replay)
//	heavy  a fresh many-function unit every request: expensive full
//	       compiles, for overload runs that must saturate the worker pool
//	       at request rates the generator can sustain precisely
//
// Latencies aggregate into the same log-bucketed histograms the pipeline
// uses (internal/pipeline.LogHist), so quantiles here and server-side
// quantiles are directly comparable bucket-for-bucket.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gocured/internal/pipeline"
	"gocured/internal/trace"
)

// Config tunes one load run.
type Config struct {
	// BaseURL is the ccserve root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Duration bounds the run.
	Duration time.Duration
	// Concurrency is the closed-loop worker count (ignored when
	// RatePerSec > 0 selects open-loop mode).
	Concurrency int
	// RatePerSec, when positive, switches to open-loop generation at this
	// arrival rate.
	RatePerSec float64
	// Mix maps class name -> weight. Nil means DefaultMix.
	Mix map[string]int
	// Seed makes the class sequence reproducible.
	Seed int64
	// Client is the HTTP client (nil = a default with sane timeouts).
	Client *http.Client
}

// DefaultMix approximates a warm service: mostly cache hits and runs, a
// steady trickle of fresh compiles and incremental edits.
func DefaultMix() map[string]int {
	return map[string]int{"hit": 45, "run": 25, "edit": 20, "cure": 10}
}

// ClassResult is the per-class slice of a Result.
type ClassResult struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	Shed      int     `json:"shed,omitempty"`
	CacheHits int     `json:"cache_hits"`
	MeanMS    float64 `json:"mean_ms"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// Result is the outcome of one load run at one operating point.
type Result struct {
	Concurrency   int     `json:"concurrency"`
	RatePerSec    float64 `json:"rate_per_sec,omitempty"`
	DurationS     float64 `json:"duration_s"`
	Requests      int     `json:"requests"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`

	// Shed counts requests the server rejected with 429 (admission-control
	// load shedding). Shed requests are not errors — the overload gates
	// treat clean rejection as correct behaviour — and they are excluded
	// from the latency histograms, which cover admitted requests only.
	// ShedNoRetryAfter counts 429s whose Retry-After header was missing or
	// unparseable (expected 0: every shed must carry a backoff hint), and
	// Status5xx counts server-error responses (expected 0 under overload:
	// a melting server sheds with 429, it does not 500).
	Shed             int `json:"shed,omitempty"`
	ShedNoRetryAfter int `json:"shed_no_retry_after,omitempty"`
	Status5xx        int `json:"status_5xx,omitempty"`

	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`

	Classes map[string]ClassResult `json:"classes"`

	// SlowestMiss identifies the slowest non-cache-hit request of the run:
	// its trace covers every compile phase, which makes it the natural
	// candidate for the post-run trace check.
	SlowestMissTraceID string  `json:"slowest_miss_trace_id,omitempty"`
	SlowestMissMS      float64 `json:"slowest_miss_ms,omitempty"`
	SlowestMissClass   string  `json:"slowest_miss_class,omitempty"`

	// LastMiss is the most recently completed cache miss — a fallback
	// candidate for the trace check when the slowest miss has already been
	// evicted from the server's bounded trace buffer by later traffic.
	LastMissTraceID string  `json:"last_miss_trace_id,omitempty"`
	LastMissMS      float64 `json:"last_miss_ms,omitempty"`

	// TraceparentSent counts requests issued with a generator-minted W3C
	// traceparent header (every request); TraceparentEchoMismatch counts
	// responses that failed the round-trip check — the echoed Traceparent
	// header (or the reply's trace_id) did not carry the generated trace-id
	// back. Expected 0: the server must adopt and echo inbound trace
	// context verbatim.
	TraceparentSent         int `json:"traceparent_sent,omitempty"`
	TraceparentEchoMismatch int `json:"traceparent_echo_mismatch,omitempty"`
}

// cureReply is the slice of ccserve's CureResponse the generator needs.
type cureReply struct {
	TraceID  string `json:"trace_id"`
	CacheHit bool   `json:"cache_hit"`
	Tier     string `json:"tier"`
}

// ShedResponse is the error issue() returns for a 429: the server shed the
// request under admission control. HasRetryAfter reports whether the
// response carried a well-formed Retry-After header (it always should).
type ShedResponse struct {
	HasRetryAfter  bool
	RetryAfterSecs int
}

func (e *ShedResponse) Error() string {
	return fmt.Sprintf("shed (429, retry after %ds)", e.RetryAfterSecs)
}

// httpError is a non-2xx, non-429 response, keeping the status inspectable
// so the collector can count 5xx separately.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

// collector aggregates results across workers. One mutex for the counters;
// the histograms carry their own locks.
type collector struct {
	overall pipeline.LogHist
	classes map[string]*classCollector

	mu           sync.Mutex
	errors       int
	shed         int
	shedNoRetry  int
	status5xx    int
	tpSent       int
	tpMismatch   int
	slowestMS    float64
	slowestID    string
	slowestClass string
	lastMissMS   float64
	lastMissID   string
}

type classCollector struct {
	hist             pipeline.LogHist
	requests, errors atomic.Int64
	shed             atomic.Int64
	hits             atomic.Int64
}

// echoCheck reports the W3C traceparent round trip of one request: whether
// a traceparent was minted and sent, and whether the server's echo failed
// to carry the same trace-id back.
type echoCheck struct {
	Sent     bool
	Mismatch bool
}

func (c *collector) record(class string, ms float64, reply *cureReply, echo echoCheck, err error) {
	cc := c.classes[class]
	cc.requests.Add(1)
	if echo.Sent {
		c.mu.Lock()
		c.tpSent++
		if echo.Mismatch {
			c.tpMismatch++
		}
		c.mu.Unlock()
	}
	if err != nil {
		// A 429 is the server shedding load as designed, not a failure;
		// count it apart from errors and keep it out of the admitted-latency
		// histograms.
		var shed *ShedResponse
		if errors.As(err, &shed) {
			cc.shed.Add(1)
			c.mu.Lock()
			c.shed++
			if !shed.HasRetryAfter {
				c.shedNoRetry++
			}
			c.mu.Unlock()
			return
		}
		cc.errors.Add(1)
		c.mu.Lock()
		c.errors++
		var he *httpError
		if errors.As(err, &he) && he.status >= 500 {
			c.status5xx++
		}
		c.mu.Unlock()
		return
	}
	traceID := ""
	if reply != nil {
		traceID = reply.TraceID
		if reply.CacheHit {
			cc.hits.Add(1)
		}
	}
	c.overall.Observe(time.Duration(ms*float64(time.Millisecond)), traceID)
	cc.hist.Observe(time.Duration(ms*float64(time.Millisecond)), traceID)
	if reply != nil && !reply.CacheHit && traceID != "" {
		c.mu.Lock()
		if ms > c.slowestMS {
			c.slowestMS, c.slowestID, c.slowestClass = ms, traceID, class
		}
		c.lastMissMS, c.lastMissID = ms, traceID
		c.mu.Unlock()
	}
}

// gen holds the shared request-generation state.
type gen struct {
	cfg     Config
	client  *http.Client
	classes []string // expanded by weight for O(1) picks
	cureSeq atomic.Uint64
	editSeq atomic.Uint64
}

// baseProg is the body template. stable_sum and main never change; the
// edit class varies only edited()'s constants, the cure class varies all
// three slots (a wholly new unit every request).
const baseProg = `extern int printf(char *fmt, ...);

int stable_sum(int n) {
  int i, t = 0;
  int a[8];
  for (i = 0; i < 8; i++) a[i] = i + %d;
  for (i = 0; i < n && i < 8; i++) t += a[i];
  return t;
}

int edited(int x) { return x * %d + %d; }

int main(void) {
  int r = stable_sum(6) + edited(%d);
  return r & 255;
}
`

func progSource(stableK, mulK, addK, argK int) string {
	return fmt.Sprintf(baseProg, stableK, mulK, addK, argK)
}

// heavySource builds a fresh translation unit of nFuncs array-walking
// functions, unique per seed. One cure costs tens of milliseconds, so
// overload scenarios reach server saturation at request rates low enough
// that neither the generator's arrival ticker nor connection handling is
// the bottleneck — the server's admission queue is.
func heavySource(seed, nFuncs int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "/* heavy unit %d */\n", seed)
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b,
			"int hf%d(int x) { int a[16]; int i, t = %d; for (i = 0; i < 16; i++) { a[i] = x + i * %d; t += a[i]; } return t; }\n",
			i, seed+i, i+1)
	}
	b.WriteString("int main(void) {\n  int s = 0;\n")
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "  s += hf%d(%d);\n", i, i)
	}
	b.WriteString("  return s & 255;\n}\n")
	return b.String()
}

// body builds the POST /cure payload for one request of a class.
func (g *gen) body(class string) []byte {
	type reqBody struct {
		Name   string `json:"name"`
		Source string `json:"source"`
		Run    bool   `json:"run,omitempty"`
		Mode   string `json:"mode,omitempty"`
	}
	var b reqBody
	switch class {
	case "hit":
		b = reqBody{Name: "load-hit.c", Source: progSource(1, 3, 1, 2)}
	case "run":
		b = reqBody{Name: "load-run.c", Source: progSource(1, 3, 1, 2), Run: true, Mode: "cured"}
	case "cure":
		n := int(g.cureSeq.Add(1))
		b = reqBody{Name: "load-cure.c", Source: progSource(n%251, n%127+1, n%89, n%7)}
	case "heavy":
		// A fresh many-function unit: one request costs a substantial
		// compile, for overload scenarios that must saturate the worker
		// pool at low request rates. The run seed salts the unit so
		// separate runs (sweep vs overload) never share cache entries.
		n := int(g.cureSeq.Add(1))
		b = reqBody{Name: "load-heavy.c", Source: heavySource(int(g.cfg.Seed)*1_000_003+n, 40)}
	case "edit":
		// Only edited()'s constants move: stable_sum and main keep their
		// fingerprints, so a store-backed server replays them (tier "disk").
		n := int(g.editSeq.Add(1))
		b = reqBody{Name: "load-edit.c", Source: progSource(1, n%127+1, n%89, 2)}
	default:
		panic("loadgen: unknown class " + class)
	}
	data, err := json.Marshal(b)
	if err != nil {
		panic(err)
	}
	return data
}

// issue sends one request and returns (latency ms, parsed reply, the
// traceparent round-trip check, error). Every request carries a freshly
// minted W3C traceparent; the server must adopt its trace-id and echo it
// back both as the response Traceparent header and the reply's trace_id.
func (g *gen) issue(ctx context.Context, class string) (float64, *cureReply, echoCheck, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, g.cfg.BaseURL+"/cure",
		bytes.NewReader(g.body(class)))
	if err != nil {
		return 0, nil, echoCheck{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	tid := trace.NewW3CTraceID()
	req.Header.Set("Traceparent", trace.Traceparent(tid))
	echo := echoCheck{Sent: true}
	// checkEcho runs once a response arrived: the echoed header must parse
	// and carry the minted trace-id verbatim. Transport failures skip the
	// check (there is no response to inspect).
	checkEcho := func(resp *http.Response) {
		got, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
		if !ok || got != tid {
			echo.Mismatch = true
		}
	}
	start := time.Now()
	resp, err := g.client.Do(req)
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		return ms, nil, echoCheck{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return ms, nil, echoCheck{}, err
	}
	ms = float64(time.Since(start)) / float64(time.Millisecond)
	if resp.StatusCode == http.StatusTooManyRequests {
		checkEcho(resp)
		ra := resp.Header.Get("Retry-After")
		secs, perr := strconv.Atoi(ra)
		return ms, nil, echo, &ShedResponse{
			HasRetryAfter:  ra != "" && perr == nil && secs >= 1,
			RetryAfterSecs: secs,
		}
	}
	if resp.StatusCode != http.StatusOK {
		// The server sets Traceparent on every outcome, so error responses
		// are checked too — otherwise an echo regression that only shows on
		// 4xx/5xx would be invisible to the -gate mismatch check.
		checkEcho(resp)
		return ms, nil, echo, &httpError{status: resp.StatusCode,
			err: fmt.Errorf("%s: status %d: %.200s", class, resp.StatusCode, data)}
	}
	checkEcho(resp)
	var reply cureReply
	if err := json.Unmarshal(data, &reply); err != nil {
		return ms, nil, echo, fmt.Errorf("%s: bad reply: %w", class, err)
	}
	if reply.TraceID == "" {
		reply.TraceID = resp.Header.Get("X-Trace-Id")
	}
	if reply.TraceID != tid {
		echo.Mismatch = true
	}
	return ms, &reply, echo, nil
}

// Run executes one load run and aggregates the results. Closed-loop when
// cfg.RatePerSec <= 0, open-loop otherwise.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.BaseURL == "" {
		return Result{}, fmt.Errorf("loadgen: BaseURL required")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	mix := cfg.Mix
	if mix == nil {
		mix = DefaultMix()
	}
	client := cfg.Client
	if client == nil {
		// The whole harness talks to one host at high concurrency; the
		// default transport keeps only 2 idle connections per host, which
		// makes the generator churn a fresh TCP connection per request and
		// bottleneck on dials long before the server saturates.
		// No MaxConnsPerHost cap: capping it would hide overload in a
		// client-side connection queue — arrivals must reach the server so
		// its admission policy (not this harness) decides their fate.
		client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 512,
			},
		}
	}

	g := &gen{cfg: cfg, client: client}
	// Expand weights into a pick table with a stable class order.
	names := make([]string, 0, len(mix))
	for name := range mix {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for i := 0; i < mix[name]; i++ {
			g.classes = append(g.classes, name)
		}
	}
	if len(g.classes) == 0 {
		return Result{}, fmt.Errorf("loadgen: empty mix")
	}

	col := &collector{classes: make(map[string]*classCollector, len(names))}
	for _, name := range names {
		col.classes[name] = &classCollector{}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup

	oneRequest := func(rng *rand.Rand) {
		class := g.classes[rng.Intn(len(g.classes))]
		ms, reply, echo, err := g.issue(ctx, class) // ctx, not runCtx: in-flight requests finish
		col.record(class, ms, reply, echo, err)
	}

	if cfg.RatePerSec > 0 {
		// Open loop: arrivals on a fixed schedule, one goroutine each.
		interval := time.Duration(float64(time.Second) / cfg.RatePerSec)
		if interval <= 0 {
			interval = time.Microsecond
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	arrivals:
		for {
			select {
			case <-runCtx.Done():
				break arrivals
			case <-ticker.C:
				wg.Add(1)
				class := g.classes[rng.Intn(len(g.classes))]
				go func() {
					defer wg.Done()
					ms, reply, echo, err := g.issue(ctx, class)
					col.record(class, ms, reply, echo, err)
				}()
			}
		}
	} else {
		// Closed loop: each worker issues back-to-back requests.
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919))
				for runCtx.Err() == nil {
					oneRequest(rng)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := col.overall.Snapshot()
	res := Result{
		Concurrency:      cfg.Concurrency,
		RatePerSec:       cfg.RatePerSec,
		DurationS:        float64(elapsed) / float64(time.Second),
		Requests:         int(snap.Count) + col.errors + col.shed,
		Errors:           col.errors,
		Shed:             col.shed,
		ShedNoRetryAfter: col.shedNoRetry,
		Status5xx:        col.status5xx,
		ThroughputRPS:    float64(snap.Count) / (float64(elapsed) / float64(time.Second)),
		MeanMS:           snap.MeanMS(),
		P50MS:            snap.Quantile(0.50),
		P90MS:            snap.Quantile(0.90),
		P99MS:            snap.Quantile(0.99),
		P999MS:           snap.Quantile(0.999),
		MaxMS:            snap.MaxMS,
		Classes:          make(map[string]ClassResult, len(names)),

		SlowestMissTraceID: col.slowestID,
		SlowestMissMS:      col.slowestMS,
		SlowestMissClass:   col.slowestClass,
		LastMissTraceID:    col.lastMissID,
		LastMissMS:         col.lastMissMS,

		TraceparentSent:         col.tpSent,
		TraceparentEchoMismatch: col.tpMismatch,
	}
	for _, name := range names {
		cc := col.classes[name]
		cs := cc.hist.Snapshot()
		res.Classes[name] = ClassResult{
			Requests:  int(cc.requests.Load()),
			Errors:    int(cc.errors.Load()),
			Shed:      int(cc.shed.Load()),
			CacheHits: int(cc.hits.Load()),
			MeanMS:    cs.MeanMS(),
			P50MS:     cs.Quantile(0.50),
			P99MS:     cs.Quantile(0.99),
			MaxMS:     cs.MaxMS,
		}
	}
	return res, nil
}
