package trace

import "time"

// Span is one timed pipeline phase (parse, sema, lower, infer, instrument,
// run). DurMS is milliseconds, the unit the metrics surface uses. StartMS
// is the span's start offset from the SpanSet's first observation and
// Depth its nesting level, so exporters (the flight recorder's Chrome
// trace rendering) can reconstruct a timeline from a snapshot.
type Span struct {
	Name    string  `json:"name"`
	DurMS   float64 `json:"dur_ms"`
	StartMS float64 `json:"start_ms,omitempty"`
	Depth   int     `json:"depth,omitempty"`
}

// EndMS returns the span's end offset.
func (s Span) EndMS() float64 { return s.StartMS + s.DurMS }

// SpanSet accumulates phase spans. The zero value is ready to use; it is
// not safe for concurrent use (phases run sequentially). Spans may nest:
// Begin/End pairs track an open-span stack, and Do is Begin+fn+End.
type SpanSet struct {
	Spans []Span

	t0   time.Time
	open []int // indices into Spans of still-open spans, outermost first
}

// SpanHandle identifies one Begin'd span for End.
type SpanHandle int

// now returns the offset in ms since the set's first observation,
// initializing the epoch on first use.
func (s *SpanSet) now() float64 {
	if s.t0.IsZero() {
		s.t0 = time.Now()
		return 0
	}
	return float64(time.Since(s.t0)) / float64(time.Millisecond)
}

// Add records a completed (leaf) span ending now with duration d.
func (s *SpanSet) Add(name string, d time.Duration) {
	if s == nil {
		return
	}
	end := s.now()
	dur := float64(d) / float64(time.Millisecond)
	start := end - dur
	if start < 0 {
		start = 0
	}
	s.Spans = append(s.Spans, Span{Name: name, DurMS: dur, StartMS: start, Depth: len(s.open)})
}

// Begin opens a span. The returned handle closes it via End; spans begun
// while another is open nest under it (Depth records the level).
func (s *SpanSet) Begin(name string) SpanHandle {
	if s == nil {
		return -1
	}
	start := s.now()
	idx := len(s.Spans)
	s.Spans = append(s.Spans, Span{Name: name, StartMS: start, DurMS: -1, Depth: len(s.open)})
	s.open = append(s.open, idx)
	return SpanHandle(idx)
}

// End closes the span h. Ending a span that still has open children closes
// the children first (at the same instant), so out-of-order End calls can
// never produce overlapping-but-unnested spans; ending an already-closed
// span is a no-op. Zero-duration spans (Begin immediately followed by End)
// are kept — they mark phases that ran and finished within a timer tick.
func (s *SpanSet) End(h SpanHandle) {
	if s == nil || h < 0 || int(h) >= len(s.Spans) {
		return
	}
	// Find h on the open stack; a missing entry means it was already ended.
	at := -1
	for i, idx := range s.open {
		if idx == int(h) {
			at = i
			break
		}
	}
	if at < 0 {
		return
	}
	end := s.now()
	// Close h and everything opened after it, innermost first.
	for i := len(s.open) - 1; i >= at; i-- {
		sp := &s.Spans[s.open[i]]
		sp.DurMS = end - sp.StartMS
		if sp.DurMS < 0 {
			sp.DurMS = 0
		}
	}
	s.open = s.open[:at]
}

// Do times fn and records it under name, nesting inside any open span.
func (s *SpanSet) Do(name string, fn func()) {
	if s == nil {
		fn()
		return
	}
	h := s.Begin(name)
	fn()
	s.End(h)
}

// Open reports how many spans are currently open (for tests).
func (s *SpanSet) Open() int {
	if s == nil {
		return 0
	}
	return len(s.open)
}
