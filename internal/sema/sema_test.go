package sema_test

import (
	"strings"
	"testing"

	"gocured/internal/cparse"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/sema"
)

func check(t *testing.T, src string) (*sema.Unit, *diag.List) {
	t.Helper()
	var d diag.List
	f := cparse.Parse("t.c", src, &d)
	u := sema.Check(f, &d)
	return u, &d
}

func mustCheck(t *testing.T, src string) *sema.Unit {
	t.Helper()
	u, d := check(t, src)
	if d.HasErrors() {
		t.Fatalf("unexpected errors:\n%v", d.Err())
	}
	return u
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, d := check(t, src)
	if !d.HasErrors() {
		t.Fatalf("expected errors for:\n%s", src)
	}
	if wantSubstr != "" && !strings.Contains(d.Err().Error(), wantSubstr) {
		t.Errorf("errors %v\nmissing substring %q", d.Err(), wantSubstr)
	}
}

func TestResolveAndScopes(t *testing.T) {
	u := mustCheck(t, `
int g;
int f(int x) {
    int y = x + g;
    {
        int y = 2 * y; /* note: C reads the new y; our checker resolves in order */
        g = y;
    }
    return y;
}
`)
	if len(u.Funcs) != 1 {
		t.Fatalf("funcs = %d", len(u.Funcs))
	}
	fs := u.Funcs[0]
	if len(fs.Params) != 1 || len(fs.Locals) != 2 {
		t.Errorf("params=%d locals=%d, want 1/2", len(fs.Params), len(fs.Locals))
	}
	// The shadowed local must have been renamed for the flat lowering.
	names := map[string]bool{}
	for _, l := range fs.Locals {
		names[l.Name] = true
	}
	if !names["y"] || len(names) != 2 {
		t.Errorf("local names = %v, want y and a uniquified y", names)
	}
}

func TestUndeclaredIdentifier(t *testing.T) {
	mustFail(t, `int f(void) { return nope; }`, "undeclared")
}

func TestTypeErrors(t *testing.T) {
	mustFail(t, `
struct S { int x; };
int f(void) { struct S s; return s + 1; }
`, "invalid operands")
	mustFail(t, `int f(int *p) { return p * 2; }`, "invalid operands")
	mustFail(t, `int f(void) { int a[3]; a = 0; return 0; }`, "cannot assign to an array")
	mustFail(t, `struct S; int f(struct S *p) { return p->x; }`, "incomplete")
	mustFail(t, `struct S { int x; }; int f(struct S *p) { return p->y; }`, "no field")
}

func TestArgumentChecking(t *testing.T) {
	mustFail(t, `
int add(int a, int b);
int f(void) { return add(1); }
`, "wrong number of arguments")
	mustFail(t, `
int add(int a, int b);
int f(void) { return add(1, 2, 3); }
`, "wrong number of arguments")
	// Variadic tails are fine.
	mustCheck(t, `
int printf(char *fmt, ...);
int f(void) { return printf("%d %d %d", 1, 2, 3); }
`)
}

func TestImplicitCastsInserted(t *testing.T) {
	u := mustCheck(t, `
void use(void *p);
int f(void) {
    int x;
    double d = x;     /* int -> double */
    use(&x);          /* int* -> void* */
    return (int)d;
}
`)
	// Find the void* conversion on the call argument.
	fs := u.Funcs[0]
	found := false
	var scan func(s cparse.Stmt)
	scanExpr := func(e cparse.Expr) {
		var walk func(e cparse.Expr)
		walk = func(e cparse.Expr) {
			switch x := e.(type) {
			case *cparse.Cast:
				if x.Implicit && x.To.IsPointer() && x.To.Elem.IsVoid() {
					found = true
				}
				walk(x.X)
			case *cparse.Call:
				for _, a := range x.Args {
					walk(a)
				}
			case *cparse.Unary:
				walk(x.X)
			case *cparse.Binary:
				walk(x.X)
				walk(x.Y)
			case *cparse.Assign:
				walk(x.L)
				walk(x.R)
			}
		}
		walk(e)
	}
	scan = func(s cparse.Stmt) {
		switch st := s.(type) {
		case *cparse.Block:
			for _, s2 := range st.Stmts {
				scan(s2)
			}
		case *cparse.ExprStmt:
			scanExpr(st.X)
		case *cparse.DeclStmt:
			for _, dcl := range st.Decls {
				if dcl.Init != nil && dcl.Init.Expr != nil {
					scanExpr(dcl.Init.Expr)
				}
			}
		case *cparse.Return:
			if st.X != nil {
				scanExpr(st.X)
			}
		}
	}
	scan(fs.Def.Body)
	if !found {
		t.Error("no implicit cast to void* found on the call argument")
	}
}

func TestReturnChecking(t *testing.T) {
	mustFail(t, `void f(void) { return 3; }`, "void function")
	mustFail(t, `int f(void) { return; }`, "must return")
	mustCheck(t, `int f(void) { return 0; }`)
}

func TestAddrTakenTracked(t *testing.T) {
	u := mustCheck(t, `
int *g;
int f(void) {
    int local = 1;
    g = &local;  /* semantically dubious but type-correct */
    return *g;
}
`)
	fs := u.Funcs[0]
	var localSym *cparse.Symbol
	for _, l := range fs.Locals {
		if strings.HasPrefix(l.Name, "local") {
			localSym = l
		}
	}
	if localSym == nil || !localSym.AddrTaken {
		t.Error("address-taken local not marked")
	}
	if localSym.AddrType == nil || !localSym.AddrType.IsPointer() {
		t.Error("AddrType not created")
	}
}

func TestArrayLengthFromInitializer(t *testing.T) {
	u := mustCheck(t, `
int xs[] = { 1, 2, 3, 4 };
char msg[] = "hey";
`)
	byName := map[string]*cparse.Symbol{}
	for _, g := range u.Globals {
		byName[g.Name] = g
	}
	if byName["xs"].Type.Len != 4 {
		t.Errorf("xs len = %d, want 4", byName["xs"].Type.Len)
	}
	if byName["msg"].Type.Len != 4 { // "hey" + NUL
		t.Errorf("msg len = %d, want 4", byName["msg"].Type.Len)
	}
}

func TestConflictingDeclarations(t *testing.T) {
	mustFail(t, `
int g;
double g;
`, "conflicting")
	mustFail(t, `
int f(void) { return 0; }
int f(void) { return 1; }
`, "redefinition")
	// extern then definition with the same type is fine.
	mustCheck(t, `
extern int h(int x);
int h(int x) { return x; }
`)
}

func TestExternsCollected(t *testing.T) {
	u := mustCheck(t, `
extern int strlen(char *s);
int f(char *s) { return strlen(s); }
`)
	found := false
	for _, e := range u.Externs {
		if e.Name == "strlen" {
			found = true
		}
	}
	if !found {
		t.Errorf("externs = %v, want strlen", u.Externs)
	}
}

func TestCondArmsUnify(t *testing.T) {
	mustCheck(t, `
char *pick(int c, char *a, char *b) { return c ? a : b; }
int *zero(int c, int *p) { return c ? p : 0; }
`)
	mustFail(t, `
struct A { int x; };
int f(int c, struct A a) { return c ? a : 3; }
`, "")
	_ = ctypes.Word
}
