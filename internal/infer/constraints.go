package infer

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// regType registers qualifier nodes for every pointer/array occurrence in
// t's reachable type graph, records base-containment edges for WILD
// spreading, and registers pointer base types in the RTTI hierarchy.
func (in *inferrer) regType(t *ctypes.Type) {
	if t == nil {
		return
	}
	if in.rec != nil && hasQualOcc(t) {
		// Pure-scalar registrations are graph no-ops and are not recorded,
		// so summaries never reference (possibly shared) scalar types.
		in.rec.reg(t)
	}
	ctypes.Walk(t, func(u *ctypes.Type) {
		if u.Kind != ctypes.Ptr && u.Kind != ctypes.Array {
			return
		}
		n := in.g.NodeFor(u)
		if u.Kind == ctypes.Ptr && u.Elem.Kind != ctypes.Func {
			in.hier.Of(u.Elem)
		}
		// A decayed pointer is the same inference node as its array.
		if u.DecayOf != nil {
			in.g.UnionR(n, in.g.NodeFor(u.DecayOf), "decay", diag.Pos{})
		}
		// Base containment: pointer occurrences in the representation of
		// the pointee (not through further pointers).
		for _, b := range repPointers(u.Elem) {
			in.g.AddBase(n, in.g.NodeFor(b))
		}
	})
}

// hasQualOcc reports whether t's reachable type graph contains any
// pointer/array occurrence (i.e. whether regType on it does anything).
func hasQualOcc(t *ctypes.Type) bool {
	found := false
	ctypes.Walk(t, func(u *ctypes.Type) {
		if u.Kind == ctypes.Ptr || u.Kind == ctypes.Array {
			found = true
		}
	})
	return found
}

// repPointers returns the pointer/array occurrences contained in the
// in-memory representation of t (descending through structs and arrays but
// not through pointers).
func repPointers(t *ctypes.Type) []*ctypes.Type {
	var out []*ctypes.Type
	var rec func(u *ctypes.Type, depth int)
	seen := map[*ctypes.StructInfo]bool{}
	rec = func(u *ctypes.Type, depth int) {
		if u == nil || depth > 64 {
			return
		}
		switch u.Kind {
		case ctypes.Ptr:
			out = append(out, u)
		case ctypes.Array:
			out = append(out, u)
			rec(u.Elem, depth+1)
		case ctypes.Struct:
			if !u.SU.Complete || seen[u.SU] {
				return
			}
			seen[u.SU] = true
			for _, f := range u.SU.Fields {
				rec(f.Type, depth+1)
			}
		}
	}
	rec(t, 0)
	return out
}

func (in *inferrer) collectInit(init *cil.Init, ty *ctypes.Type) {
	switch {
	case init == nil || init.Zero:
	case init.IsList:
		switch ty.Kind {
		case ctypes.Array:
			for _, e := range init.List {
				in.collectInit(e, ty.Elem)
			}
		case ctypes.Struct:
			for i, e := range init.List {
				if i < len(ty.SU.Fields) {
					in.collectInit(e, ty.SU.Fields[i].Type)
				}
			}
		}
	default:
		in.collectExpr(init.Expr)
		in.flow(init.Expr.Type(), ty, "init", posOfExpr(init.Expr))
	}
}

func posOfExpr(e cil.Expr) diag.Pos {
	if c, ok := e.(*cil.Cast); ok {
		return c.Pos
	}
	return diag.Pos{}
}

// collectFunc generates constraints from one function body.
func (in *inferrer) collectFunc(f *cil.Func) {
	retTy := f.Type.Fn.Ret
	cil.WalkStmts(f.Body.Stmts, func(s cil.Stmt) {
		switch st := s.(type) {
		case *cil.SInstr:
			switch i := st.Ins.(type) {
			case *cil.Set:
				in.collectLvalue(i.LV)
				in.collectExpr(i.RHS)
				in.flow(i.RHS.Type(), i.LV.Ty, "assign", i.Position())
			case *cil.Call:
				in.collectCall(i)
			case *cil.Check:
				cil.WalkExpr(i.Ptr, func(e cil.Expr) { in.collectExprShallow(e) })
			}
		case *cil.If:
			in.collectExpr(st.Cond)
		case *cil.Return:
			if st.X != nil {
				in.collectExpr(st.X)
				in.flow(st.X.Type(), retTy, "return", st.Pos)
			}
		case *cil.Switch:
			in.collectExpr(st.X)
		}
	})
}

func (in *inferrer) collectCall(call *cil.Call) {
	if call.Result != nil {
		in.collectLvalue(call.Result)
	}
	in.collectExpr(call.Fn)
	for _, a := range call.Args {
		in.collectExpr(a)
	}
	// Determine the signature.
	ft := call.Fn.Type()
	if ft.IsPointer() {
		ft = ft.Elem
	}
	if ft.Kind != ctypes.Func {
		return
	}
	fn := ft.Fn
	for i, a := range call.Args {
		if i < len(fn.Params) {
			in.flow(a.Type(), fn.Params[i], "call-arg", call.Position())
		}
	}
	if call.Result != nil {
		in.flow(fn.Ret, call.Result.Ty, "call-ret", call.Position())
	}
}

// collectExpr registers nodes and generates constraints for e and all
// subexpressions.
func (in *inferrer) collectExpr(e cil.Expr) {
	cil.WalkExpr(e, func(x cil.Expr) { in.collectExprShallow(x) })
}

// collectExprShallow handles a single expression node (subexpressions are
// visited by the caller's walk).
func (in *inferrer) collectExprShallow(x cil.Expr) {
	switch v := x.(type) {
	case *cil.StrConst:
		in.regType(v.Ty)
	case *cil.FnConst:
		in.regType(v.Ty)
	case *cil.AddrOf:
		in.regType(v.Ty)
		in.collectLvalueShallow(v.LV)
	case *cil.Lval:
		in.collectLvalueShallow(v.LV)
	case *cil.Cast:
		in.regType(v.To)
		in.collectCast(v)
	case *cil.BinOp:
		switch v.Op {
		case cil.OpAddPI, cil.OpSubPI:
			in.regType(v.A.Type())
			in.markArithOcc(v.A.Type(), diag.Pos{})
		case cil.OpSubPP:
			for _, side := range []cil.Expr{v.A, v.B} {
				in.regType(side.Type())
				in.markArithOcc(side.Type(), diag.Pos{})
			}
		}
	}
}

// markArithOcc marks pointer arithmetic on the occurrence t, recording the
// mark by occurrence (the lookup repeats at replay, at the same sequence
// point, so it resolves to the same node).
func (in *inferrer) markArithOcc(t *ctypes.Type, pos diag.Pos) {
	if in.rec != nil {
		in.rec.mark(opArith, nil, t, pos, "")
	}
	if n := in.g.Lookup(t); n != nil {
		n.MarkArithAt(pos)
	}
}

func (in *inferrer) collectLvalue(lv *cil.Lvalue) {
	if lv.Mem != nil {
		in.collectExpr(lv.Mem)
	}
	for _, o := range lv.Offset {
		if o.Index != nil {
			in.collectExpr(o.Index)
		}
	}
	in.collectLvalueShallow(lv)
}

// collectLvalueShallow registers arithmetic implied by non-constant array
// indexing: a[i] is *(a+i) on the decayed pointer, so the array occurrence
// gets the ARITH constraint (constant in-range indices are checked
// statically and need no fat representation).
func (in *inferrer) collectLvalueShallow(lv *cil.Lvalue) {
	cur := lv.Ty
	// Recompute the chain from the base to know the array occurrences.
	if lv.Var != nil {
		cur = lv.Var.Type
		in.regType(cur)
	} else {
		cur = lv.Mem.Type().Elem
	}
	for _, o := range lv.Offset {
		if o.Field != nil {
			cur = o.Field.Type
			continue
		}
		// Index step: cur is the array type.
		if cur.Kind == ctypes.Array {
			if !isConstInRange(o.Index, cur.Len) {
				in.regType(cur)
				in.markArithOcc(cur, diag.Pos{})
			}
			cur = cur.Elem
		} else if cur.Kind == ctypes.Ptr {
			cur = cur.Elem
		}
	}
}

func isConstInRange(e cil.Expr, n int) bool {
	c, ok := e.(*cil.Const)
	return ok && c.I >= 0 && n >= 0 && c.I < int64(n)
}

// flow generates the constraint for an assignment of a value of type src to
// a location of type dst (types are structurally equal after sema). rule
// names the syntactic context ("assign", "call-arg", ...) for provenance.
func (in *inferrer) flow(src, dst *ctypes.Type, rule string, pos diag.Pos) {
	if src == nil || dst == nil || src == dst {
		return
	}
	switch {
	case src.IsPointer() && dst.IsPointer():
		in.regType(src)
		in.regType(dst)
		ns, nd := in.g.Lookup(src), in.g.Lookup(dst)
		if in.rec != nil {
			in.rec.flow(nil, nil, src, dst, rule, pos)
			in.rec.edge(nil, nil, src, dst, edgeAssign, nil)
		}
		in.g.FlowR(ns, nd, rule, pos)
		in.edges = append(in.edges, &edge{src: ns, dst: nd, class: edgeAssign})
		if ok, pairs := ctypes.PhysEqual(src.Elem, dst.Elem); ok {
			in.unifyPairs(pairs, rule, pos)
		}
	case src.Kind == ctypes.Struct && dst.Kind == ctypes.Struct:
		// Struct copy: contained pointers alias the same data.
		if ok, pairs := ctypes.PhysEqual(src, dst); ok {
			in.unifyPairs(pairs, "struct-copy", pos)
		}
	case src.Kind == ctypes.Array && dst.IsPointer():
		// Decayed array flow.
		in.regType(src)
		in.regType(dst)
		if in.rec != nil {
			in.rec.flow(nil, nil, src, dst, "array-decay", pos)
			in.rec.edge(nil, nil, src, dst, edgeAssign, nil)
		}
		in.g.FlowR(in.g.Lookup(src), in.g.Lookup(dst), "array-decay", pos)
		in.edges = append(in.edges, &edge{src: in.g.Lookup(src), dst: in.g.Lookup(dst), class: edgeAssign})
	}
}

// unifyPairs unions the kinds of matched pointer occurrence pairs.
func (in *inferrer) unifyPairs(pairs [][2]*ctypes.Type, rule string, pos diag.Pos) {
	for _, p := range pairs {
		in.regType(p[0])
		in.regType(p[1])
		if in.rec != nil {
			in.rec.unify(p[0], p[1], rule, pos)
		}
		a, b := in.g.Lookup(p[0]), in.g.Lookup(p[1])
		if a != nil && b != nil {
			in.g.UnionR(a, b, rule, pos)
		}
	}
}

// isNullExpr reports whether e is the constant 0 (through casts).
func isNullExpr(e cil.Expr) bool {
	switch v := e.(type) {
	case *cil.Const:
		return v.I == 0
	case *cil.Cast:
		return isNullExpr(v.X)
	}
	return false
}

// collectCast classifies a cast site and generates its constraints. This is
// the heart of §3: identity and upcasts are statically safe (physical
// subtyping), downcasts require RTTI, tile-compatible casts require SEQ,
// and everything else is bad (WILD) unless trusted.
func (in *inferrer) collectCast(c *cil.Cast) {
	from, to := c.X.Type(), c.To
	site := &CastSite{Pos: c.Pos, From: from, To: to, Trusted: c.Trusted}
	in.casts = append(in.casts, site)
	in.castOf[c] = site
	if in.rec != nil {
		in.rec.cast(c, site, from, to)
		// The classification below settles site.Class (and TileOK/Trusted)
		// on whatever branch returns; patch the recorded op on the way out.
		defer in.rec.patchCast(site)
	}

	switch {
	case !from.IsPointer() && !to.IsPointer():
		site.Class = CastNonPtr
		return
	case !from.IsPointer() && to.IsPointer():
		in.regType(to)
		if isNullExpr(c.X) {
			site.Class = CastNull
			return
		}
		site.Class = CastIntToPtr
		// A disguised integer can only live in a SEQ or WILD pointer
		// (its base field is null; it can never be dereferenced).
		if in.rec != nil {
			in.rec.mark(opIntCast, nil, to, c.Pos, "")
		}
		in.g.Lookup(to).MarkIntCastAt(c.Pos)
		return
	case from.IsPointer() && !to.IsPointer():
		in.regType(from)
		site.Class = CastPtrToInt
		return
	}

	// Pointer-to-pointer. nf/nt are cached representatives: the unifyPairs
	// calls below may merge classes, so later uses of nf/nt can name nodes
	// a fresh Lookup would no longer return. The recording binds them to
	// virtual registers here, at the lookup point, for exactly that reason.
	in.regType(from)
	in.regType(to)
	nf, nt := in.g.Lookup(from), in.g.Lookup(to)
	if in.rec != nil {
		in.rec.bind(nf, from)
		in.rec.bind(nt, to)
	}

	if c.Trusted {
		site.Class = CastFromPtrTrusted
		return
	}

	if in.allocRets[from] {
		// Fresh allocator result adopting its use type: no compatibility
		// constraint, but the data flow remains (the allocator's result
		// node must carry bounds when its uses need them).
		site.Class = CastAlloc
		in.flowEdge(nf, nt, from, to, "alloc-adopt", c.Pos, edgeAssign, site)
		return
	}

	if ok, pairs := ctypes.PhysEqual(from.Elem, to.Elem); ok {
		site.Class = CastIdentity
		in.unifyPairs(pairs, "cast-identity", c.Pos)
		in.flowEdge(nf, nt, from, to, "cast-identity", c.Pos, edgeAssign, site)
		return
	}

	if !in.opts.NoPhysicalSubtyping {
		if ok, pairs := ctypes.Prefix(from.Elem, to.Elem); ok {
			// Upcast: from.Elem <= to.Elem.
			site.Class = CastUpcast
			site.TileOK, _ = ctypes.Tile(from.Elem, to.Elem)
			if to.Elem.IsVoid() {
				// A SEQ void* keeps byte-granular bounds and cannot be
				// dereferenced, so the tiling requirement is vacuous.
				site.TileOK = true
			}
			in.unifyPairs(pairs, "upcast", c.Pos)
			in.flowEdge(nf, nt, from, to, "upcast", c.Pos, edgeUpcast, site)
			return
		}
		if ok, pairs := ctypes.Prefix(to.Elem, from.Elem); ok {
			// Downcast: to.Elem <= from.Elem.
			if in.opts.NoRTTI {
				if in.opts.TrustBadCasts {
					site.Class = CastFromPtrTrusted
					site.Trusted = true
					return
				}
				site.Class = CastBad
				in.markBadCast(nf, nt, from, to, c.Pos)
				return
			}
			site.Class = CastDowncast
			in.unifyPairs(pairs, "downcast", c.Pos)
			if in.rec != nil {
				in.rec.mark(opRtti, nf, from, c.Pos, "")
			}
			nf.MarkRttiAt(c.Pos)
			in.flowEdge(nf, nt, from, to, "downcast", c.Pos, edgeDowncast, site)
			return
		}
		if ok, pairs := ctypes.Tile(from.Elem, to.Elem); ok {
			// Same tiling: valid between SEQ pointers (§3.1).
			site.Class = CastSeqTile
			in.unifyPairs(pairs, "seq-tile", c.Pos)
			if in.rec != nil {
				in.rec.mark(opArith, nf, from, c.Pos, "")
				in.rec.mark(opArith, nt, to, c.Pos, "")
			}
			nf.MarkArithAt(c.Pos)
			nt.MarkArithAt(c.Pos)
			in.flowEdge(nf, nt, from, to, "seq-tile", c.Pos, edgeTile, site)
			return
		}
	}

	if in.opts.TrustBadCasts {
		// The bind experiment: trade soundness for efficient kinds; a
		// security review starts at these casts.
		site.Class = CastFromPtrTrusted
		site.Trusted = true
		return
	}
	site.Class = CastBad
	in.markBadCast(nf, nt, from, to, c.Pos)
}

// flowEdge records a flow constraint plus its classified edge between two
// cached cast-end representatives.
func (in *inferrer) flowEdge(nf, nt *qual.Node, from, to *ctypes.Type, rule string, pos diag.Pos, class edgeClass, site *CastSite) {
	if in.rec != nil {
		in.rec.flow(nf, nt, from, to, rule, pos)
		in.rec.edge(nf, nt, from, to, class, site)
	}
	in.g.FlowR(nf, nt, rule, pos)
	in.edges = append(in.edges, &edge{src: nf, dst: nt, class: class, site: site})
}

func (in *inferrer) markBadCast(a, b *qual.Node, ta, tb *ctypes.Type, pos diag.Pos) {
	if in.rec != nil {
		in.rec.mark(opBad, a, ta, pos, "bad cast")
		in.rec.mark(opBad, b, tb, pos, "bad cast")
	}
	a.MarkBad(pos, "bad cast")
	b.MarkBad(pos, "bad cast")
	// Bad casts tie the two pointers into the untyped universe together.
	if in.rec != nil {
		in.rec.flow(a, b, ta, tb, "bad-cast", pos)
		in.rec.edge(a, b, ta, tb, edgeAssign, nil)
	}
	in.g.FlowR(a, b, "bad-cast", pos)
	in.edges = append(in.edges, &edge{src: a, dst: b, class: edgeAssign})
}
