package infer

import (
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
)

// solve runs the kind fixpoint:
//
//  1. WILD spreads from bad casts along every flow edge (both directions)
//     and into pointee representations (the soundness conditions of §2.1).
//  2. SEQ is required by pointer arithmetic and disguised integers, and
//     propagates against the data flow (bounds originate at allocation).
//  3. RTTI is required at checked downcast sources and propagates against
//     the data flow through physically-equal assignments unconditionally
//     and through upcasts only when the source type has subtypes (§3.2).
//  4. A re-check pass demotes to WILD the upcasts whose SEQ tiling fails
//     and the downcasts that ended up on SEQ pointers; the fixpoint
//     repeats until stable (kinds only escalate, so it terminates).
//
// Everything still Unknown at the end is SAFE.
func (in *inferrer) solve() {
	for iter := 0; iter < 64; iter++ {
		in.propagateWild()
		in.propagateSeq()
		if !in.opts.NoRTTI {
			in.propagateRtti()
		}
		if !in.recheck() {
			break
		}
	}
	in.finalize()
}

// wildSeeded reports whether the class should be wild right now.
func seedWild(n *qual.Node) bool {
	r := n.Find()
	return r.BadCast || r.Forced == qual.Wild
}

func (in *inferrer) propagateWild() {
	var work []*qual.Node
	inWork := map[*qual.Node]bool{}
	push := func(n *qual.Node) {
		if n == nil {
			return
		}
		r := n.Find()
		if r.Kind != qual.Wild {
			r.Kind = qual.Wild
			if !inWork[r] {
				inWork[r] = true
				work = append(work, r)
			}
		}
	}
	for _, r := range in.g.Reps() {
		if r.Kind == qual.Wild || seedWild(r) {
			push(r)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[n] = false
		for _, m := range n.FlowsOut() {
			push(m)
		}
		for _, m := range n.FlowsIn() {
			push(m)
		}
		for _, m := range n.BaseNodes() {
			push(m)
		}
	}
}

// seqNeeded reports whether the class demands at least SEQ.
func seqNeeded(r *qual.Node) bool {
	return r.Arith || r.IntCast || r.Forced == qual.Seq
}

// propagateIntCast spreads the "disguised integer" fact forward along data
// flow: a pointer that may hold a null-base disguised integer needs the
// multi-word representation everywhere the value travels (converting it to
// SAFE would trap even when the program never dereferences it).
func (in *inferrer) propagateIntCast() {
	var work []*qual.Node
	for _, r := range in.g.Reps() {
		if r.IntCast {
			work = append(work, r)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range n.FlowsOut() {
			r := m.Find()
			if !r.IntCast {
				r.IntCast = true
				// Seed the blame index too: SEQ chains walk with the data
				// flow, so a downstream node infected here needs its own
				// seed to be explainable.
				in.g.Prov.AddSeed(r.ID, "int-cast-flow", diag.Pos{}, "receives a disguised integer via data flow")
				work = append(work, r)
			}
		}
	}
}

func (in *inferrer) propagateSeq() {
	in.propagateIntCast()
	// Seed.
	var work []*qual.Node
	seq := map[*qual.Node]bool{}
	push := func(n *qual.Node) {
		if n == nil {
			return
		}
		r := n.Find()
		if r.Kind == qual.Wild || seq[r] {
			return
		}
		seq[r] = true
		work = append(work, r)
	}
	for _, r := range in.g.Reps() {
		if r.Kind != qual.Wild && seqNeeded(r) {
			push(r)
		}
	}
	// SEQ propagates against the data flow: if the destination needs
	// bounds, the source must carry them.
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, m := range n.FlowsIn() {
			push(m)
		}
	}
	for r := range seq {
		if r.Kind != qual.Wild {
			r.Kind = qual.Seq
		}
	}
}

func (in *inferrer) propagateRtti() {
	rt := map[*qual.Node]bool{}
	var work []*qual.Node
	push := func(n *qual.Node) {
		if n == nil {
			return
		}
		r := n.Find()
		if r.Kind == qual.Wild || r.Kind == qual.Seq || rt[r] {
			return
		}
		rt[r] = true
		work = append(work, r)
	}
	for _, r := range in.g.Reps() {
		if (r.RttiNeed || r.Forced == qual.Rtti) && r.Kind != qual.Wild && r.Kind != qual.Seq {
			push(r)
		}
	}
	// Index edges by destination for backward propagation with classes.
	edgesByDst := map[*qual.Node][]*edge{}
	for _, e := range in.edges {
		if e.src == nil || e.dst == nil {
			continue
		}
		edgesByDst[e.dst.Find()] = append(edgesByDst[e.dst.Find()], e)
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range edgesByDst[n] {
			src := e.src.Find()
			switch e.class {
			case edgeAssign:
				// Physically equal: q' = RTTI => q = RTTI.
				push(src)
			case edgeUpcast:
				// Propagate only if the source's static type has subtypes
				// occurring in the program; otherwise its static type is
				// exact and SAFE suffices.
				if src.Ty != nil && src.Ty.Elem != nil {
					if in.hier.HasStrictSubtypes(in.hier.Of(src.Ty.Elem)) {
						push(src)
					}
				}
			}
		}
	}
	for r := range rt {
		if r.Kind != qual.Wild && r.Kind != qual.Seq {
			r.Kind = qual.Rtti
		}
	}
}

// recheck demotes invalid combinations to WILD; reports whether anything
// changed (requiring another fixpoint round).
func (in *inferrer) recheck() bool {
	changed := false
	demote := func(n *qual.Node, site *CastSite) {
		r := n.Find()
		if !r.BadCast {
			r.MarkBad(site.Pos, "cast invalid at inferred kinds")
			changed = true
		}
		if !site.WentWild {
			site.WentWild = true
			site.Class = CastBad
		}
	}
	kindOf := func(n *qual.Node) qual.Kind {
		if n == nil {
			return qual.Safe
		}
		return n.Find().Kind
	}
	for _, e := range in.edges {
		if e.site == nil || e.site.Trusted {
			continue
		}
		switch e.class {
		case edgeUpcast:
			// A SEQ upcast is only sound when the tiling rule holds.
			if (kindOf(e.src) == qual.Seq || kindOf(e.dst) == qual.Seq) && !e.site.TileOK {
				demote(e.src, e.site)
				demote(e.dst, e.site)
			}
		case edgeDowncast:
			// Checked downcasts are defined for RTTI sources and SAFE or
			// RTTI destinations; SEQ on either side is unsupported.
			if kindOf(e.src) == qual.Seq || kindOf(e.dst) == qual.Seq {
				demote(e.src, e.site)
				demote(e.dst, e.site)
			}
		}
	}
	// A node that needs both RTTI and SEQ has no representation: WILD.
	for _, r := range in.g.Reps() {
		if r.Kind == qual.Seq && r.RttiNeed && !r.BadCast {
			r.MarkBad(r.WhyPos, "needs both RTTI and SEQ")
			changed = true
		}
	}
	return changed
}

// finalize assigns SAFE to everything still unknown and validates user
// annotations.
func (in *inferrer) finalize() {
	for _, r := range in.g.Reps() {
		if r.Kind == qual.Unknown {
			r.Kind = qual.Safe
		}
		if r.Forced != qual.Unknown && r.Forced != r.Kind {
			switch {
			case r.Forced == qual.Safe && r.Kind != qual.Safe:
				in.diags.Warnf(r.WhyPos, "pointer annotated __SAFE was inferred %s", r.Kind)
			case r.Forced == qual.Seq && r.Kind == qual.Wild:
				in.diags.Warnf(r.WhyPos, "pointer annotated __SEQ was inferred WILD")
			}
		}
	}
	// Record the solved kind on every member of each class (so KindOf on
	// any occurrence reads the class kind).
	for _, n := range in.g.Nodes {
		n.Kind = n.Find().Kind
	}
}

// Kinds returns the solved kind for a type occurrence.
func (r *Result) Kinds(t *ctypes.Type) qual.Kind { return r.Graph.KindOf(t) }

// Stats summarizes the static pointer-kind distribution (the sf/sq/w/rt
// columns of Figures 8 and 9) and the cast classification of §3.
type Stats struct {
	Ptrs      int // pointer occurrences
	Safe      int
	Seq       int
	Wild      int
	Rtti      int
	Casts     int // casts involving pointers
	Identity  int
	Upcasts   int
	Downcasts int
	SeqCasts  int
	Bad       int
	Trusted   int
	Alloc     int // allocator-result casts (polymorphic allocator typing)
	Null      int
	IntCasts  int
}

// PctSafe returns the SAFE percentage (0-100).
func (s Stats) PctSafe() float64 { return pct(s.Safe, s.Ptrs) }

// PctSeq returns the SEQ percentage.
func (s Stats) PctSeq() float64 { return pct(s.Seq, s.Ptrs) }

// PctWild returns the WILD percentage.
func (s Stats) PctWild() float64 { return pct(s.Wild, s.Ptrs) }

// PctRtti returns the RTTI percentage.
func (s Stats) PctRtti() float64 { return pct(s.Rtti, s.Ptrs) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// ComputeStats tallies kinds over pointer occurrences and classifies casts.
func (r *Result) ComputeStats() Stats {
	var s Stats
	for _, n := range r.Graph.Nodes {
		if n.Ty == nil || n.Ty.Kind != ctypes.Ptr {
			continue
		}
		s.Ptrs++
		switch n.Find().Kind {
		case qual.Seq:
			s.Seq++
		case qual.Wild:
			s.Wild++
		case qual.Rtti:
			s.Rtti++
		default:
			s.Safe++
		}
	}
	for _, c := range r.Casts {
		switch c.Class {
		case CastNonPtr:
			continue
		case CastIdentity:
			s.Identity++
		case CastUpcast:
			s.Upcasts++
		case CastDowncast:
			s.Downcasts++
		case CastSeqTile:
			s.SeqCasts++
		case CastBad:
			s.Bad++
		case CastFromPtrTrusted:
			s.Trusted++
		case CastNull:
			s.Null++
			continue
		case CastAlloc:
			s.Alloc++ // allocator typing; counted among casts but benign
		case CastIntToPtr, CastPtrToInt:
			s.IntCasts++
			continue
		}
		s.Casts++
	}
	return s
}
