package interp

import (
	"fmt"

	"gocured/internal/ctypes"
	"gocured/internal/flight"
	"gocured/internal/qual"
	"gocured/internal/rtti"
)

// ValKind discriminates runtime values.
type ValKind uint8

// Value kinds.
const (
	VInt ValKind = iota
	VFloat
	VPtr
)

// Value is one scalar runtime value. Pointer values carry the full fat
// payload (bounds, run-time type); what actually lands in memory on a store
// depends on the destination occurrence's pointer kind.
type Value struct {
	K ValKind
	I int64
	F float64

	P uint32 // pointer
	B uint32 // base (SEQ/WILD); 0 marks a disguised integer
	E uint32 // end (SEQ)
	// RT is the run-time type node (RTTI pointers); nil means "fresh
	// allocation, adopts any type that fits".
	RT *rtti.Node
}

// IntVal makes an integer value.
func IntVal(i int64) Value { return Value{K: VInt, I: i} }

// FloatVal makes a floating value.
func FloatVal(f float64) Value { return Value{K: VFloat, F: f} }

// PtrVal makes a bare pointer value.
func PtrVal(p uint32) Value { return Value{K: VPtr, P: p} }

// SeqVal makes a pointer value with bounds.
func SeqVal(p, b, e uint32) Value { return Value{K: VPtr, P: p, B: b, E: e} }

// Truthy reports C truth.
func (v Value) Truthy() bool {
	switch v.K {
	case VInt:
		return v.I != 0
	case VFloat:
		return v.F != 0
	default:
		return v.P != 0
	}
}

// AsInt coerces to an integer (pointers coerce to their address).
func (v Value) AsInt() int64 {
	switch v.K {
	case VInt:
		return v.I
	case VFloat:
		return int64(v.F)
	default:
		return int64(v.P)
	}
}

// AsFloat coerces to a float.
func (v Value) AsFloat() float64 {
	switch v.K {
	case VInt:
		return float64(v.I)
	case VFloat:
		return v.F
	default:
		return float64(v.P)
	}
}

func (v Value) String() string {
	switch v.K {
	case VInt:
		return fmt.Sprintf("%d", v.I)
	case VFloat:
		return fmt.Sprintf("%g", v.F)
	default:
		return fmt.Sprintf("ptr(0x%x,b=0x%x,e=0x%x)", v.P, v.B, v.E)
	}
}

// normInt truncates and re-extends an integer to the given C type.
func normInt(i int64, size int, signed bool) int64 {
	switch size {
	case 1:
		if signed {
			return int64(int8(i))
		}
		return int64(uint8(i))
	case 2:
		if signed {
			return int64(int16(i))
		}
		return int64(uint16(i))
	case 4:
		if signed {
			return int64(int32(i))
		}
		return int64(uint32(i))
	default:
		return i
	}
}

// load reads a scalar of occurrence type t at addr, honouring the layout
// oracle's pointer representation for t.
func (m *Machine) load(addr uint32, t *ctypes.Type) Value {
	switch t.Kind {
	case ctypes.Int:
		i, err := m.mem.ReadInt(addr, t.Size, t.Signed)
		m.check(err)
		return IntVal(i)
	case ctypes.Float:
		f, err := m.mem.ReadFloat(addr, t.Size)
		m.check(err)
		return FloatVal(f)
	case ctypes.Ptr:
		return m.loadPtr(addr, t)
	default:
		m.trapf("access", "cannot load value of type %s", t)
		return Value{}
	}
}

// splitWork models the cost of maintaining the parallel metadata structure
// alongside the data. Per §4.2, the m field is omitted when Meta(t) is
// void, so pointers without metadata pay nothing extra — only accesses that
// actually touch the mirrored structure are charged (the em3d/anagram
// outliers come from their metadata-bearing pointers).
func (m *Machine) splitWork(addr uint32, hasMeta bool) {
	if !hasMeta {
		return
	}
	m.addCost(5)
	s := uint64(addr) | 1
	for i := 0; i < 24; i++ {
		s = s*2862933555777941757 + 3037000493
	}
	m.libcState.ioSink += s
}

func (m *Machine) loadPtr(addr uint32, t *ctypes.Type) Value {
	if m.lay.IsSplit(t) {
		p, err := m.mem.ReadWord(addr)
		m.check(err)
		v := Value{K: VPtr, P: p}
		meta, ok := m.shadowMeta[addr]
		if ok {
			v.B, v.E = meta.b, meta.e
			v.RT = m.nodeByID(meta.rt)
		}
		m.splitWork(addr, ok)
		return v
	}
	switch m.lay.KindOf(t) {
	case qual.Seq:
		p, err := m.mem.ReadWord(addr)
		m.check(err)
		b, err := m.mem.ReadWord(addr + 4)
		m.check(err)
		e, err := m.mem.ReadWord(addr + 8)
		m.check(err)
		return Value{K: VPtr, P: p, B: b, E: e}
	case qual.Wild:
		// Rep: {b, p}; the base word carries the tag.
		b, err := m.mem.ReadWord(addr)
		m.check(err)
		p, err := m.mem.ReadWord(addr + 4)
		m.check(err)
		return Value{K: VPtr, P: p, B: b}
	case qual.Rtti:
		p, err := m.mem.ReadWord(addr)
		m.check(err)
		id, err := m.mem.ReadWord(addr + 4)
		m.check(err)
		return Value{K: VPtr, P: p, RT: m.nodeByID(int(id))}
	default:
		p, err := m.mem.ReadWord(addr)
		m.check(err)
		return Value{K: VPtr, P: p}
	}
}

// store writes a scalar of occurrence type t at addr.
func (m *Machine) store(addr uint32, t *ctypes.Type, v Value) {
	switch t.Kind {
	case ctypes.Int:
		m.check(m.mem.WriteInt(addr, t.Size, v.AsInt()))
	case ctypes.Float:
		m.check(m.mem.WriteFloat(addr, t.Size, v.AsFloat()))
	case ctypes.Ptr:
		m.storePtr(addr, t, v)
	default:
		m.trapf("access", "cannot store value of type %s", t)
	}
	if m.policyShadow != nil {
		m.policyShadow.onStore(m, addr, uint32(m.lay.Sizeof(t)))
	}
}

func (m *Machine) storePtr(addr uint32, t *ctypes.Type, v Value) {
	if m.lay.IsSplit(t) {
		m.check(m.mem.WriteWord(addr, v.P))
		// Metadata mirrors the data in the parallel (shadow) structure —
		// but only for kinds whose Meta is non-void (Figure 6): a SAFE
		// pointer occurrence has no metadata of its own, so split SAFE
		// pointers cost exactly what the interleaved representation does.
		switch m.lay.KindOf(t) {
		case qual.Seq, qual.Rtti, qual.Wild:
			if v.B != 0 || v.E != 0 || v.RT != nil {
				m.shadowMeta[addr] = metaEntry{b: v.B, e: v.E, rt: m.idOfNode(v.RT)}
				m.splitWork(addr, true)
			} else {
				_, had := m.shadowMeta[addr]
				if had {
					delete(m.shadowMeta, addr)
				}
				m.splitWork(addr, had)
			}
		}
		return
	}
	switch m.lay.KindOf(t) {
	case qual.Seq:
		m.check(m.mem.WriteWord(addr, v.P))
		m.check(m.mem.WriteWord(addr+4, v.B))
		m.check(m.mem.WriteWord(addr+8, v.E))
	case qual.Wild:
		m.check(m.mem.WriteWord(addr, v.B))
		m.check(m.mem.WriteWord(addr+4, v.P))
		// Update the tags if the destination area is dynamically typed:
		// the base word's tag is set, the pointer word's tag cleared.
		if blk := m.mem.BlockAt(addr); blk != nil && blk.Wild {
			blk.SetTag(addr, 1)
			blk.SetTag(addr+4, 0)
		}
	case qual.Rtti:
		m.check(m.mem.WriteWord(addr, v.P))
		m.check(m.mem.WriteWord(addr+4, uint32(m.idOfNode(v.RT))))
	default:
		m.check(m.mem.WriteWord(addr, v.P))
		// Storing a non-pointer-tagged word into a wild area clears tags.
		if blk := m.mem.BlockAt(addr); blk != nil && blk.Wild {
			blk.SetTag(addr, 0)
		}
	}
}

// convert adapts a value flowing from occurrence type `from` to occurrence
// type `to` (Figure 11's cast translations): fabricating single-object
// bounds for SAFE sources, materializing run-time type nodes for RTTI
// destinations, and carrying disguised integers with a null base. In cured
// mode, narrowing a SEQ or WILD value into a SAFE or RTTI slot performs the
// null-or-in-bounds conversion check of Figure 11 — conversions happen at
// every assignment, not only at syntactic casts.
func (m *Machine) convert(v Value, from, to *ctypes.Type) Value {
	return m.convertChecked(v, from, to, false)
}

func (m *Machine) convertChecked(v Value, from, to *ctypes.Type, trusted bool) Value {
	if from == nil || to == nil || from == to {
		return v
	}
	if m.policy == PolicyCured && !trusted && v.K == VPtr && v.P != 0 &&
		from.IsPointer() && to.IsPointer() {
		kf, kt := m.lay.KindOf(from), m.lay.KindOf(to)
		if (kf == qual.Seq || kf == qual.Wild) && (kt == qual.Safe || kt == qual.Rtti) {
			m.narrowCheck(v, to)
		}
	}
	switch {
	case to.IsInteger():
		if v.K == VPtr {
			return IntVal(normInt(int64(v.P), to.Size, to.Signed))
		}
		return IntVal(normInt(v.AsInt(), to.Size, to.Signed))
	case to.Kind == ctypes.Float:
		f := v.AsFloat()
		if to.Size == 4 {
			f = float64(float32(f))
		}
		return FloatVal(f)
	case to.IsPointer():
		if v.K != VPtr {
			// int -> pointer: disguised integer (null base).
			return Value{K: VPtr, P: uint32(v.AsInt())}
		}
		out := v
		kf, kt := m.kindOfPtr(from), m.lay.KindOf(to)
		if kt == qual.Seq && out.B == 0 && out.P != 0 && kf == qual.Safe {
			// SAFE -> SEQ: the object is exactly one element.
			out.B = out.P
			out.E = out.P + uint32(m.lay.Sizeof(from.Elem))
			m.recEvent(flight.EvPack, "safe->seq", uint64(out.P))
		}
		if kt == qual.Wild && out.B == 0 && out.P != 0 {
			if blk := m.mem.BlockAt(out.P); blk != nil {
				blk.MakeWild()
				out.B = blk.Addr
				m.recEvent(flight.EvPack, "->wild", uint64(out.P))
			}
		}
		if kt == qual.Rtti && out.RT == nil && kf != qual.Rtti {
			// A statically-typed pointer records its static type (Fig. 2).
			if from.IsPointer() && m.hier != nil && out.P != 0 {
				if blk := m.mem.BlockAt(out.P); blk == nil || !blk.Fresh {
					out.RT = m.hier.Of(from.Elem)
				}
			}
		}
		if out.RT == nil && m.hier != nil && out.P != 0 &&
			to.Elem.IsVoid() && from.IsPointer() && !from.Elem.IsVoid() {
			// void* values remember their origin type even through SAFE
			// occurrences, so that run-time type information survives
			// library boundaries (e.g. qsort handing elements back).
			if blk := m.mem.BlockAt(out.P); blk == nil || !blk.Fresh {
				out.RT = m.hier.Of(from.Elem)
			}
		}
		return out
	}
	return v
}

// narrowCheck enforces the SEQ/WILD -> SAFE/RTTI conversion invariant:
// non-null values must carry a base and point at a whole object of the
// destination's pointee size.
func (m *Machine) narrowCheck(v Value, to *ctypes.Type) {
	m.recEvent(flight.EvUnpack, "seq->safe", uint64(v.P))
	if v.B == 0 {
		m.trapf("int-deref", "conversion of a disguised integer to a %s", to)
	}
	end := v.E
	if end == 0 {
		if blk := m.mem.BlockAt(v.B); blk != nil {
			end = blk.End()
		}
	}
	size := uint32(m.lay.Sizeof(to.Elem))
	if v.P < v.B || v.P+size > end {
		m.trapf("bounds", "conversion to %s out of bounds: p=0x%x not in [0x%x,0x%x-%d]",
			to, v.P, v.B, end, size)
	}
}

// kindOfPtr is KindOf with a fallback for non-pointer sources.
func (m *Machine) kindOfPtr(t *ctypes.Type) qual.Kind {
	if t != nil && t.IsPointer() {
		return m.lay.KindOf(t)
	}
	return qual.Safe
}

type metaEntry struct {
	b, e uint32
	rt   int
}

func (m *Machine) nodeByID(id int) *rtti.Node {
	if id == 0 || m.hier == nil {
		return nil
	}
	nodes := m.hier.Nodes()
	if id-1 < len(nodes) {
		return nodes[id-1]
	}
	return nil
}

func (m *Machine) idOfNode(n *rtti.Node) int {
	if n == nil {
		return 0
	}
	return n.ID
}
