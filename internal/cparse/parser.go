package cparse

import (
	"fmt"
	"strings"

	"gocured/internal/ctypes"
	"gocured/internal/diag"
)

// Parser is a recursive-descent parser for the gocured C subset. It resolves
// types during parsing (maintaining typedef names, struct/union tags, and
// enum constants), which is required to disambiguate C's grammar.
//
// Simplifications relative to full C (documented limits; the corpus and
// examples stay within them): typedef names are file-scoped (locals must not
// shadow typedef names), no bitfields, no K&R definitions, no goto/labels.
type Parser struct {
	lx    *Lexer
	diags *diag.List

	tok  Token // current token
	next Token // one-token lookahead
	file string

	typedefs map[string]*ctypes.Type
	tags     map[string]*ctypes.StructInfo
	enums    map[string]int64

	out *File
}

// Parse parses one translation unit.
func Parse(file, src string, diags *diag.List) *File {
	p := &Parser{
		lx:       NewLexer(file, src, diags),
		diags:    diags,
		file:     file,
		typedefs: make(map[string]*ctypes.Type),
		tags:     make(map[string]*ctypes.StructInfo),
		enums:    make(map[string]int64),
		out:      &File{Name: file},
	}
	p.tok = p.lx.Next()
	p.next = p.lx.Next()
	p.parseTranslationUnit()
	return p.out
}

func (p *Parser) pos() diag.Pos { return diag.Pos{File: p.file, Line: p.tok.Line, Col: p.tok.Col} }

func (p *Parser) advance() Token {
	t := p.tok
	p.tok = p.next
	p.next = p.lx.Next()
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.tok.Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) Token {
	if p.tok.Kind != k {
		p.diags.Errorf(p.pos(), "expected %s, found %s %q", k, p.tok.Kind, p.tok.Text)
		// Error recovery: synthesize the token without consuming.
		return Token{Kind: k, Line: p.tok.Line, Col: p.tok.Col}
	}
	return p.advance()
}

// ---- Top level ----

func (p *Parser) parseTranslationUnit() {
	for p.tok.Kind != EOF {
		switch p.tok.Kind {
		case PRAGMA:
			p.parsePragma()
		case SEMI:
			p.advance()
		default:
			p.parseExternalDecl()
		}
	}
}

// parsePragma handles #pragma ccuredWrapperOf("wrapper", "wrapped"); other
// pragmas are ignored with a note.
func (p *Parser) parsePragma() {
	t := p.advance()
	text := t.Text
	if rest, ok := strings.CutPrefix(text, "ccuredWrapperOf"); ok {
		var w, f string
		rest = strings.TrimSpace(rest)
		if n, err := fmt.Sscanf(rest, "(%q, %q)", &w, &f); n == 2 && err == nil {
			p.out.Wrappers = append(p.out.Wrappers,
				&WrapperPragma{P: diag.Pos{File: p.file, Line: t.Line, Col: t.Col}, Wrapper: w, Wrapped: f})
			return
		}
		p.diags.Errorf(diag.Pos{File: p.file, Line: t.Line, Col: t.Col},
			"malformed ccuredWrapperOf pragma: %q", text)
		return
	}
	p.diags.Notef(diag.Pos{File: p.file, Line: t.Line, Col: t.Col}, "ignoring #pragma %s", text)
}

// parseExternalDecl parses a function definition, prototype, global
// variable declaration, typedef, or bare struct/enum definition.
func (p *Parser) parseExternalDecl() {
	pos := p.pos()
	base, storage, ok := p.parseDeclSpecifiers()
	if !ok {
		p.diags.Errorf(pos, "expected declaration, found %s %q", p.tok.Kind, p.tok.Text)
		p.advance()
		return
	}
	if p.tok.Kind == SEMI {
		p.advance() // bare "struct S { ... };" or "enum {...};"
		return
	}
	for {
		dpos := p.pos()
		name, ty := p.parseDeclarator(base)
		if name == "" {
			p.diags.Errorf(dpos, "declarator requires a name")
		}
		if storage == SCTypedef {
			p.typedefs[name] = ty
		} else if ty.Kind == ctypes.Func {
			fd := &FuncDef{P: dpos, Name: name, Type: ty, Storage: storage}
			if p.tok.Kind == LBRACE {
				fd.Body = p.parseBlock()
				p.out.Funcs = append(p.out.Funcs, fd)
				return // no comma-separated declarators after a body
			}
			p.out.Funcs = append(p.out.Funcs, fd) // prototype
		} else {
			vd := &VarDecl{P: dpos, Name: name, Type: ty, Storage: storage}
			if p.accept(ASSIGN) {
				vd.Init = p.parseInitializer()
			}
			p.out.Globals = append(p.out.Globals, vd)
		}
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(SEMI)
}

// ---- Declaration specifiers and declarators ----

// startsType reports whether the current token can begin a type name.
func (p *Parser) startsType() bool {
	switch p.tok.Kind {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwStruct, KwUnion, KwEnum, KwConst, KwVolatile,
		KwSplit, KwNoSplit:
		return true
	case IDENT:
		_, ok := p.typedefs[p.tok.Text]
		return ok
	}
	return false
}

// parseDeclSpecifiers parses storage class + type specifiers. Returns the
// base type, the storage class, and whether any specifier was seen.
func (p *Parser) parseDeclSpecifiers() (*ctypes.Type, StorageClass, bool) {
	storage := SCNone
	split := ctypes.SAnnNone
	var (
		seenAny                    bool
		unsigned, signed           bool
		nChar, nShort, nInt, nLong int
		nFloat, nDouble, nVoid     int
		su                         *ctypes.StructInfo
		tdef                       *ctypes.Type
	)
loop:
	for {
		switch p.tok.Kind {
		case KwTypedef:
			storage = SCTypedef
			p.advance()
		case KwExtern:
			storage = SCExtern
			p.advance()
		case KwStatic:
			storage = SCStatic
			p.advance()
		case KwConst, KwVolatile:
			p.advance()
		case KwSplit:
			split = ctypes.SAnnSplit
			p.advance()
		case KwNoSplit:
			split = ctypes.SAnnNoSplit
			p.advance()
		case KwUnsigned:
			unsigned = true
			seenAny = true
			p.advance()
		case KwSigned:
			signed = true
			seenAny = true
			p.advance()
		case KwChar:
			nChar++
			seenAny = true
			p.advance()
		case KwShort:
			nShort++
			seenAny = true
			p.advance()
		case KwInt:
			nInt++
			seenAny = true
			p.advance()
		case KwLong:
			nLong++
			seenAny = true
			p.advance()
		case KwFloat:
			nFloat++
			seenAny = true
			p.advance()
		case KwDouble:
			nDouble++
			seenAny = true
			p.advance()
		case KwVoid:
			nVoid++
			seenAny = true
			p.advance()
		case KwStruct, KwUnion:
			su = p.parseStructSpecifier(p.tok.Kind == KwUnion)
			seenAny = true
		case KwEnum:
			p.parseEnumSpecifier()
			nInt++ // enums are ints
			seenAny = true
		case IDENT:
			if t, ok := p.typedefs[p.tok.Text]; ok && !seenAny && tdef == nil {
				tdef = t
				seenAny = true
				p.advance()
				continue
			}
			break loop
		default:
			break loop
		}
	}
	if !seenAny && storage == SCNone && split == ctypes.SAnnNone {
		return nil, SCNone, false
	}

	var base *ctypes.Type
	switch {
	case tdef != nil:
		base = tdef // typedefs share the Type value (shared qualifier nodes)
	case su != nil:
		base = ctypes.StructType(su)
	case nVoid > 0:
		base = ctypes.VoidType()
	case nDouble > 0:
		base = ctypes.FloatType(8)
	case nFloat > 0:
		base = ctypes.FloatType(4)
	case nChar > 0:
		base = ctypes.IntType(1, !unsigned)
	case nShort > 0:
		base = ctypes.IntType(2, !unsigned)
	case nLong >= 2:
		base = ctypes.IntType(8, !unsigned)
	case nLong == 1:
		base = ctypes.IntType(4, !unsigned) // ILP32 long
	case nInt > 0 || signed || unsigned:
		base = ctypes.IntType(4, !unsigned)
	default:
		base = ctypes.IntT()
	}
	if split != ctypes.SAnnNone && base != tdef {
		base.SplitAnnot = split
	} else if split != ctypes.SAnnNone {
		// Apply the split annotation to a fresh copy so we do not mutate
		// the shared typedef occurrence.
		cp := *base
		cp.SplitAnnot = split
		base = &cp
	}
	return base, storage, true
}

// parseStructSpecifier parses struct/union specifiers:
// struct TAG, struct TAG {...}, struct {...}.
func (p *Parser) parseStructSpecifier(union bool) *ctypes.StructInfo {
	p.advance() // struct or union
	name := ""
	if p.tok.Kind == IDENT {
		name = p.advance().Text
	}
	var su *ctypes.StructInfo
	if name != "" {
		if existing, ok := p.tags[name]; ok {
			su = existing
		} else {
			su = ctypes.NewStruct(name, union)
			p.tags[name] = su
			p.out.Structs = append(p.out.Structs, su)
		}
	} else {
		su = ctypes.NewStruct("", union)
		p.out.Structs = append(p.out.Structs, su)
	}
	if p.tok.Kind != LBRACE {
		return su
	}
	if su.Complete {
		p.diags.Errorf(p.pos(), "redefinition of %s", name)
	}
	p.advance() // {
	var fields []*ctypes.Field
	for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
		base, storage, ok := p.parseDeclSpecifiers()
		if !ok {
			p.diags.Errorf(p.pos(), "expected field declaration")
			p.advance()
			continue
		}
		if storage != SCNone {
			p.diags.Errorf(p.pos(), "storage class not allowed on fields")
		}
		for {
			fname, fty := p.parseDeclarator(base)
			if fname == "" {
				p.diags.Errorf(p.pos(), "field requires a name")
			}
			if fty.Kind == ctypes.Func {
				p.diags.Errorf(p.pos(), "field %s has function type", fname)
				fty = ctypes.PointerTo(fty)
			}
			fields = append(fields, &ctypes.Field{Name: fname, Type: fty})
			if !p.accept(COMMA) {
				break
			}
		}
		p.expect(SEMI)
	}
	p.expect(RBRACE)
	su.Define(fields)
	return su
}

// parseEnumSpecifier parses enum specifiers, registering constants.
func (p *Parser) parseEnumSpecifier() {
	p.advance() // enum
	if p.tok.Kind == IDENT {
		p.advance() // tag (enums are just ints; tags are not tracked)
	}
	if p.tok.Kind != LBRACE {
		return
	}
	p.advance()
	val := int64(0)
	for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
		name := p.expect(IDENT).Text
		if p.accept(ASSIGN) {
			val = p.parseConstExpr()
		}
		p.enums[name] = val
		val++
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(RBRACE)
}

// parseDeclarator parses a (possibly abstract) declarator applied to base,
// returning the declared name ("" for abstract) and the full type.
func (p *Parser) parseDeclarator(base *ctypes.Type) (string, *ctypes.Type) {
	// Pointers: each '*' may be followed by kind/split annotations and
	// const/volatile.
	for p.tok.Kind == STAR {
		p.advance()
		pt := ctypes.PointerTo(base)
	annLoop:
		for {
			switch p.tok.Kind {
			case KwSafe:
				pt.Ann = ctypes.AnnSafe
				p.advance()
			case KwSeq:
				pt.Ann = ctypes.AnnSeq
				p.advance()
			case KwWild:
				pt.Ann = ctypes.AnnWild
				p.advance()
			case KwRtti:
				pt.Ann = ctypes.AnnRtti
				p.advance()
			case KwSplit:
				pt.SplitAnnot = ctypes.SAnnSplit
				p.advance()
			case KwNoSplit:
				pt.SplitAnnot = ctypes.SAnnNoSplit
				p.advance()
			case KwConst, KwVolatile:
				p.advance()
			default:
				break annLoop
			}
		}
		base = pt
	}
	return p.parseDirectDeclarator(base)
}

// parseDirectDeclarator handles names, parenthesized declarators, arrays,
// and function parameter lists.
func (p *Parser) parseDirectDeclarator(base *ctypes.Type) (string, *ctypes.Type) {
	name := ""
	// inner is a pending parenthesized declarator; its suffixes must be
	// applied to the *fully suffixed* outer type. We implement the
	// standard algorithm: remember the token range? Instead we parse the
	// inner declarator abstractly against a placeholder and patch.
	var innerWrap func(*ctypes.Type) *ctypes.Type

	switch p.tok.Kind {
	case IDENT:
		name = p.advance().Text
	case LPAREN:
		// Could be "(declarator)" or, for abstract function types, a
		// parameter list directly. It is a nested declarator if the next
		// token is '*' or IDENT or '('.
		if p.next.Kind == STAR || p.next.Kind == IDENT || p.next.Kind == LPAREN {
			p.advance() // (
			// Parse the nested declarator against a placeholder type; we
			// substitute the real base (with suffixes) afterwards.
			placeholder := &ctypes.Type{Kind: ctypes.Void}
			n, t := p.parseDeclarator(placeholder)
			name = n
			p.expect(RPAREN)
			innerWrap = func(real *ctypes.Type) *ctypes.Type {
				return substPlaceholder(t, placeholder, real)
			}
		}
	}

	// Suffixes: arrays and parameter lists, applied left to right; for
	// multidimensional arrays the first suffix is the outermost.
	ty := p.parseDeclSuffixes(base)
	if innerWrap != nil {
		ty = innerWrap(ty)
	}
	return name, ty
}

func (p *Parser) parseDeclSuffixes(base *ctypes.Type) *ctypes.Type {
	switch p.tok.Kind {
	case LBRACK:
		p.advance()
		n := -1
		if p.tok.Kind != RBRACK {
			n = int(p.parseConstExpr())
			if n < 0 {
				p.diags.Errorf(p.pos(), "negative array size")
				n = 0
			}
		}
		p.expect(RBRACK)
		elem := p.parseDeclSuffixes(base)
		return ctypes.ArrayOf(elem, n)
	case LPAREN:
		p.advance()
		params, names, variadic := p.parseParamList()
		p.expect(RPAREN)
		ret := p.parseDeclSuffixes(base)
		return ctypes.FuncType(ret, params, names, variadic)
	}
	return base
}

// substPlaceholder rebuilds t with placeholder replaced by real. Used for
// parenthesized declarators like (*f)(int).
func substPlaceholder(t, placeholder, real *ctypes.Type) *ctypes.Type {
	if t == placeholder {
		return real
	}
	switch t.Kind {
	case ctypes.Ptr:
		cp := *t
		cp.Elem = substPlaceholder(t.Elem, placeholder, real)
		return &cp
	case ctypes.Array:
		cp := *t
		cp.Elem = substPlaceholder(t.Elem, placeholder, real)
		return &cp
	case ctypes.Func:
		cp := *t
		fn := *t.Fn
		fn.Ret = substPlaceholder(fn.Ret, placeholder, real)
		cp.Fn = &fn
		return &cp
	}
	return t
}

// parseParamList parses a function parameter list (already inside parens).
func (p *Parser) parseParamList() (params []*ctypes.Type, names []string, variadic bool) {
	if p.tok.Kind == RPAREN {
		return nil, nil, false
	}
	// (void) means no parameters.
	if p.tok.Kind == KwVoid && p.next.Kind == RPAREN {
		p.advance()
		return nil, nil, false
	}
	for {
		if p.tok.Kind == ELLIPSIS {
			p.advance()
			variadic = true
			break
		}
		base, storage, ok := p.parseDeclSpecifiers()
		if !ok {
			p.diags.Errorf(p.pos(), "expected parameter declaration")
			p.advance()
			break
		}
		if storage != SCNone {
			p.diags.Errorf(p.pos(), "storage class not allowed on parameters")
		}
		name, ty := p.parseDeclarator(base)
		ty = ty.Decay() // arrays decay to pointers in parameter lists
		if ty.Kind == ctypes.Func {
			ty = ctypes.PointerTo(ty) // functions decay to function pointers
		}
		params = append(params, ty)
		names = append(names, name)
		if !p.accept(COMMA) {
			break
		}
	}
	return params, names, variadic
}

// parseTypeName parses a type-name (for casts and sizeof): specifiers plus
// an abstract declarator.
func (p *Parser) parseTypeName() *ctypes.Type {
	base, storage, ok := p.parseDeclSpecifiers()
	if !ok {
		p.diags.Errorf(p.pos(), "expected type name")
		return ctypes.IntT()
	}
	if storage != SCNone {
		p.diags.Errorf(p.pos(), "storage class not allowed in type name")
	}
	name, ty := p.parseDeclarator(base)
	if name != "" {
		p.diags.Errorf(p.pos(), "unexpected name %q in type name", name)
	}
	return ty
}

// ---- Initializers ----

func (p *Parser) parseInitializer() *Initializer {
	pos := p.pos()
	if p.tok.Kind == LBRACE {
		p.advance()
		init := &Initializer{P: pos, IsList: true}
		for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
			init.List = append(init.List, p.parseInitializer())
			if !p.accept(COMMA) {
				break
			}
		}
		p.expect(RBRACE)
		return init
	}
	return &Initializer{P: pos, Expr: p.parseAssignExpr()}
}

// ---- Statements ----

func (p *Parser) parseBlock() *Block {
	b := &Block{stmtBase: stmtBase{P: p.pos()}}
	p.expect(LBRACE)
	for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
	}
	p.expect(RBRACE)
	return b
}

func (p *Parser) parseStmt() Stmt {
	pos := p.pos()
	switch p.tok.Kind {
	case LBRACE:
		return p.parseBlock()
	case SEMI:
		p.advance()
		return &Empty{stmtBase{pos}}
	case KwIf:
		p.advance()
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		then := p.parseStmt()
		var els Stmt
		if p.accept(KwElse) {
			els = p.parseStmt()
		}
		return &If{stmtBase: stmtBase{pos}, Cond: cond, Then: then, Else: els}
	case KwWhile:
		p.advance()
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		return &While{stmtBase: stmtBase{pos}, Cond: cond, Body: p.parseStmt()}
	case KwDo:
		p.advance()
		body := p.parseStmt()
		p.expect(KwWhile)
		p.expect(LPAREN)
		cond := p.parseExpr()
		p.expect(RPAREN)
		p.expect(SEMI)
		return &DoWhile{stmtBase: stmtBase{pos}, Body: body, Cond: cond}
	case KwFor:
		p.advance()
		p.expect(LPAREN)
		var init Stmt
		if p.tok.Kind != SEMI {
			if p.startsType() {
				init = p.parseDeclStmt()
			} else {
				e := p.parseExpr()
				p.expect(SEMI)
				init = &ExprStmt{stmtBase{pos}, e}
			}
		} else {
			p.advance()
		}
		var cond Expr
		if p.tok.Kind != SEMI {
			cond = p.parseExpr()
		}
		p.expect(SEMI)
		var post Expr
		if p.tok.Kind != RPAREN {
			post = p.parseExpr()
		}
		p.expect(RPAREN)
		return &For{stmtBase: stmtBase{pos}, Init: init, Cond: cond, Post: post, Body: p.parseStmt()}
	case KwReturn:
		p.advance()
		var x Expr
		if p.tok.Kind != SEMI {
			x = p.parseExpr()
		}
		p.expect(SEMI)
		return &Return{stmtBase{pos}, x}
	case KwBreak:
		p.advance()
		p.expect(SEMI)
		return &Break{stmtBase{pos}}
	case KwContinue:
		p.advance()
		p.expect(SEMI)
		return &Continue{stmtBase{pos}}
	case KwSwitch:
		return p.parseSwitch()
	case KwGoto:
		p.diags.Errorf(pos, "goto is not supported by the gocured C subset")
		p.advance()
		if p.tok.Kind == IDENT {
			p.advance()
		}
		p.expect(SEMI)
		return &Empty{stmtBase{pos}}
	default:
		if p.startsType() {
			return p.parseDeclStmt()
		}
		e := p.parseExpr()
		p.expect(SEMI)
		return &ExprStmt{stmtBase{pos}, e}
	}
}

// parseDeclStmt parses a local declaration statement (consumes ';').
func (p *Parser) parseDeclStmt() *DeclStmt {
	pos := p.pos()
	base, storage, ok := p.parseDeclSpecifiers()
	if !ok {
		p.diags.Errorf(pos, "expected declaration")
		p.advance()
		return &DeclStmt{stmtBase: stmtBase{pos}}
	}
	if storage == SCTypedef {
		p.diags.Errorf(pos, "local typedefs are not supported")
	}
	ds := &DeclStmt{stmtBase: stmtBase{pos}}
	for {
		dpos := p.pos()
		name, ty := p.parseDeclarator(base)
		vd := &VarDecl{P: dpos, Name: name, Type: ty, Storage: storage}
		if p.accept(ASSIGN) {
			vd.Init = p.parseInitializer()
		}
		ds.Decls = append(ds.Decls, vd)
		if !p.accept(COMMA) {
			break
		}
	}
	p.expect(SEMI)
	return ds
}

func (p *Parser) parseSwitch() Stmt {
	pos := p.pos()
	p.advance() // switch
	p.expect(LPAREN)
	x := p.parseExpr()
	p.expect(RPAREN)
	p.expect(LBRACE)
	sw := &Switch{stmtBase: stmtBase{pos}, X: x}
	var cur *SwitchCase
	for p.tok.Kind != RBRACE && p.tok.Kind != EOF {
		switch p.tok.Kind {
		case KwCase:
			p.advance()
			v := p.parseConstExpr()
			p.expect(COLON)
			cur = &SwitchCase{Val: v}
			sw.Cases = append(sw.Cases, cur)
		case KwDefault:
			p.advance()
			p.expect(COLON)
			cur = &SwitchCase{IsDefault: true}
			sw.Cases = append(sw.Cases, cur)
		default:
			if cur == nil {
				p.diags.Errorf(p.pos(), "statement before first case in switch")
				cur = &SwitchCase{IsDefault: false}
				sw.Cases = append(sw.Cases, cur)
			}
			cur.Stmts = append(cur.Stmts, p.parseStmt())
		}
	}
	p.expect(RBRACE)
	return sw
}

// ---- Expressions ----

func (p *Parser) parseExpr() Expr {
	e := p.parseAssignExpr()
	for p.tok.Kind == COMMA {
		pos := p.pos()
		p.advance()
		r := p.parseAssignExpr()
		e = &Comma{exprBase: exprBase{P: pos}, X: e, Y: r}
	}
	return e
}

var assignOps = map[TokKind]BinaryOp{
	PLUSASSIGN: Add, MINUSASSIGN: Sub, STARASSIGN: Mul, SLASHASSIGN: Div,
	PERCENTASSIGN: Rem, AMPASSIGN: BitAnd, PIPEASSIGN: BitOr,
	CARETASSIGN: BitXor, LSHIFTASSIGN: Shl, RSHIFTASSIGN: Shr,
}

func (p *Parser) parseAssignExpr() Expr {
	l := p.parseCondExpr()
	pos := p.pos()
	if p.tok.Kind == ASSIGN {
		p.advance()
		r := p.parseAssignExpr()
		return &Assign{exprBase: exprBase{P: pos}, Op: -1, L: l, R: r}
	}
	if op, ok := assignOps[p.tok.Kind]; ok {
		p.advance()
		r := p.parseAssignExpr()
		return &Assign{exprBase: exprBase{P: pos}, Op: op, L: l, R: r}
	}
	return l
}

func (p *Parser) parseCondExpr() Expr {
	c := p.parseBinaryExpr(0)
	if p.tok.Kind != QUESTION {
		return c
	}
	pos := p.pos()
	p.advance()
	t := p.parseExpr()
	p.expect(COLON)
	f := p.parseCondExpr()
	return &Cond{exprBase: exprBase{P: pos}, C: c, T: t, F: f}
}

// binary operator precedence table (higher binds tighter).
var binPrec = map[TokKind]int{
	OROR: 1, ANDAND: 2, PIPE: 3, CARET: 4, AMP: 5,
	EQEQ: 6, NEQ: 6,
	LT: 7, GT: 7, LE: 7, GE: 7,
	LSHIFT: 8, RSHIFT: 8,
	PLUS: 9, MINUS: 9,
	STAR: 10, SLASH: 10, PERCENT: 10,
}

var binOpOf = map[TokKind]BinaryOp{
	OROR: LogOr, ANDAND: LogAnd, PIPE: BitOr, CARET: BitXor, AMP: BitAnd,
	EQEQ: Eq, NEQ: Ne, LT: Lt, GT: Gt, LE: Le, GE: Ge,
	LSHIFT: Shl, RSHIFT: Shr, PLUS: Add, MINUS: Sub,
	STAR: Mul, SLASH: Div, PERCENT: Rem,
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	l := p.parseCastExpr()
	for {
		prec, ok := binPrec[p.tok.Kind]
		if !ok || prec < minPrec {
			return l
		}
		op := binOpOf[p.tok.Kind]
		pos := p.pos()
		p.advance()
		r := p.parseBinaryExpr(prec + 1)
		l = &Binary{exprBase: exprBase{P: pos}, Op: op, X: l, Y: r}
	}
}

func (p *Parser) parseCastExpr() Expr {
	if p.tok.Kind == LPAREN && p.nextStartsType() {
		pos := p.pos()
		p.advance()
		ty := p.parseTypeName()
		p.expect(RPAREN)
		// Disambiguate "(T)(x)" cast from compound literal (unsupported).
		x := p.parseCastExpr()
		return &Cast{exprBase: exprBase{P: pos}, To: ty, X: x}
	}
	return p.parseUnaryExpr()
}

// nextStartsType reports whether the token after '(' begins a type name.
func (p *Parser) nextStartsType() bool {
	switch p.next.Kind {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwStruct, KwUnion, KwEnum, KwConst, KwVolatile,
		KwSplit, KwNoSplit:
		return true
	case IDENT:
		_, ok := p.typedefs[p.next.Text]
		return ok
	}
	return false
}

func (p *Parser) parseUnaryExpr() Expr {
	pos := p.pos()
	switch p.tok.Kind {
	case INC:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: PreInc, X: p.parseUnaryExpr()}
	case DEC:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: PreDec, X: p.parseUnaryExpr()}
	case PLUS:
		p.advance()
		return p.parseCastExpr()
	case MINUS:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: Neg, X: p.parseCastExpr()}
	case BANG:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: Not, X: p.parseCastExpr()}
	case TILDE:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: BitNot, X: p.parseCastExpr()}
	case STAR:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: Deref, X: p.parseCastExpr()}
	case AMP:
		p.advance()
		return &Unary{exprBase: exprBase{P: pos}, Op: AddrOf, X: p.parseCastExpr()}
	case KwSizeof:
		p.advance()
		if p.tok.Kind == LPAREN && p.nextStartsType() {
			p.advance()
			ty := p.parseTypeName()
			p.expect(RPAREN)
			return &SizeofExpr{exprBase: exprBase{P: pos}, OfType: ty}
		}
		return &SizeofExpr{exprBase: exprBase{P: pos}, X: p.parseUnaryExpr()}
	case KwTrustedCast:
		p.advance()
		p.expect(LPAREN)
		ty := p.parseTypeName()
		p.expect(COMMA)
		x := p.parseAssignExpr()
		p.expect(RPAREN)
		return &Cast{exprBase: exprBase{P: pos}, To: ty, X: x, Trusted: true}
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() Expr {
	e := p.parsePrimaryExpr()
	for {
		pos := p.pos()
		switch p.tok.Kind {
		case LBRACK:
			p.advance()
			idx := p.parseExpr()
			p.expect(RBRACK)
			e = &Index{exprBase: exprBase{P: pos}, X: e, I: idx}
		case LPAREN:
			p.advance()
			var args []Expr
			for p.tok.Kind != RPAREN && p.tok.Kind != EOF {
				args = append(args, p.parseAssignExpr())
				if !p.accept(COMMA) {
					break
				}
			}
			p.expect(RPAREN)
			e = &Call{exprBase: exprBase{P: pos}, Fn: e, Args: args}
		case DOT:
			p.advance()
			name := p.expect(IDENT).Text
			e = &Member{exprBase: exprBase{P: pos}, X: e, Name: name}
		case ARROW:
			p.advance()
			name := p.expect(IDENT).Text
			e = &Member{exprBase: exprBase{P: pos}, X: e, Name: name, Arrow: true}
		case INC:
			p.advance()
			e = &Unary{exprBase: exprBase{P: pos}, Op: PostInc, X: e}
		case DEC:
			p.advance()
			e = &Unary{exprBase: exprBase{P: pos}, Op: PostDec, X: e}
		default:
			return e
		}
	}
}

func (p *Parser) parsePrimaryExpr() Expr {
	pos := p.pos()
	switch p.tok.Kind {
	case INTLIT:
		t := p.advance()
		return &IntLit{exprBase: exprBase{P: pos}, Val: t.Int}
	case CHARLIT:
		t := p.advance()
		return &IntLit{exprBase: exprBase{P: pos}, Val: t.Int}
	case FLOATLIT:
		t := p.advance()
		return &FloatLit{exprBase: exprBase{P: pos}, Val: t.F}
	case STRLIT:
		t := p.advance()
		return &StrLit{exprBase: exprBase{P: pos}, Val: t.Text}
	case IDENT:
		t := p.advance()
		if v, ok := p.enums[t.Text]; ok {
			return &IntLit{exprBase: exprBase{P: pos}, Val: v}
		}
		return &Ident{exprBase: exprBase{P: pos}, Name: t.Text}
	case LPAREN:
		p.advance()
		e := p.parseExpr()
		p.expect(RPAREN)
		return e
	default:
		p.diags.Errorf(pos, "expected expression, found %s %q", p.tok.Kind, p.tok.Text)
		p.advance()
		return &IntLit{exprBase: exprBase{P: pos}}
	}
}

// ---- Constant expressions ----

// parseConstExpr parses and evaluates an integer constant expression.
func (p *Parser) parseConstExpr() int64 {
	pos := p.pos()
	e := p.parseCondExpr()
	v, ok := evalConst(e)
	if !ok {
		p.diags.Errorf(pos, "expression is not an integer constant")
	}
	return v
}

// evalConst evaluates integer constant expressions over the parsed AST.
func evalConst(e Expr) (int64, bool) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, true
	case *Unary:
		v, ok := evalConst(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case Neg:
			return -v, true
		case Not:
			if v == 0 {
				return 1, true
			}
			return 0, true
		case BitNot:
			return ^v, true
		}
		return 0, false
	case *Binary:
		a, ok := evalConst(x.X)
		if !ok {
			return 0, false
		}
		b, ok := evalConst(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case Add:
			return a + b, true
		case Sub:
			return a - b, true
		case Mul:
			return a * b, true
		case Div:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case Rem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case Shl:
			return a << uint(b&63), true
		case Shr:
			return a >> uint(b&63), true
		case BitAnd:
			return a & b, true
		case BitOr:
			return a | b, true
		case BitXor:
			return a ^ b, true
		case Lt:
			return b2i(a < b), true
		case Gt:
			return b2i(a > b), true
		case Le:
			return b2i(a <= b), true
		case Ge:
			return b2i(a >= b), true
		case Eq:
			return b2i(a == b), true
		case Ne:
			return b2i(a != b), true
		case LogAnd:
			return b2i(a != 0 && b != 0), true
		case LogOr:
			return b2i(a != 0 || b != 0), true
		}
		return 0, false
	case *Cond:
		c, ok := evalConst(x.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return evalConst(x.T)
		}
		return evalConst(x.F)
	case *SizeofExpr:
		if x.OfType != nil {
			return int64(ctypes.Sizeof(x.OfType)), true
		}
		return 0, false
	case *Cast:
		return evalConst(x.X)
	}
	return 0, false
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
