package interp

// The bytecode executor: one dense dispatch loop over vm.Instr. Semantics
// are defined by the tree walker in interp.go/checks.go — every opcode
// here mirrors one of its evaluation steps exactly, in the same order,
// with the same trap messages, so both backends produce bit-identical
// observable results (stdout, counters, site tables, trap provenance).
// The differential fuzzer (diff_fuzz_test.go) and the backend golden test
// (backend_test.go) enforce the equivalence.

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/flight"
	"gocured/internal/qual"
	"gocured/internal/vm"
)

// vmCall invokes one compiled function: push the (identically laid out)
// stack frame, spill converted arguments into parameter slots, and run
// the dispatch loop. The bracketing — PushFrame, flight EvCall/EvRet,
// frames for trap attribution, frame pooling — matches call().
func (m *Machine) vmCall(fc *vm.FuncCode, args []Value) Value {
	blk, err := m.mem.PushFrame(fc.FrameSize, fc.Fn.Name)
	m.check(err)
	fr := m.getFrame(fc.Fn, blk.Addr, nil, fc.NumRegs)
	for i, p := range fc.Fn.Params {
		if i < len(args) {
			m.store(fr.base+fc.ParamOffs[i], p.Type, args[i])
		}
	}
	if m.rec != nil {
		m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvCall, Name: fc.Fn.Name})
	}
	m.frames = append(m.frames, fr)
	defer func() {
		if m.rec != nil {
			m.rec.Record(flight.Event{TS: m.cnt.Cost, Kind: flight.EvRet, Name: fc.Fn.Name})
		}
		m.frames = m.frames[:len(m.frames)-1]
		m.mem.PopFrame()
		m.putFrame(fr)
	}()
	return m.vmExec(fr, fc)
}

func (m *Machine) vmExec(fr *frame, fc *vm.FuncCode) Value {
	code := fc.Code
	regs := fr.regs
	pc := 0
	for pc < len(code) {
		in := &code[pc]
		pc++
		switch in.Op {
		case vm.OpStep:
			// Inlined step() — the hottest opcode by far.
			m.cnt.Steps++
			m.cnt.Cost++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			if m.prof != nil {
				m.sampleStep()
			}
			if in.A >= 0 {
				// After the step charge, like the tree: the profiler samples
				// inside step and attributes to the previous statement's line.
				m.curPos = fc.Poss[in.A]
			}
		case vm.OpBackEdge:
			// Inlined backEdge(): counts against the limit, no cost.
			m.cnt.Steps++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
		case vm.OpJump:
			pc = int(in.A)
		case vm.OpJumpBack:
			// Fused loop tail: the head's back-edge charge, then the jump
			// (landing just past the head's OpBackEdge).
			m.cnt.Steps++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			pc = int(in.A)
		case vm.OpJumpFalse:
			if !regs[in.B].Truthy() {
				pc = int(in.A)
			}
		case vm.OpJumpEq:
			if regs[in.B].AsInt() == fc.Consts[in.C] {
				pc = int(in.A)
			}
		case vm.OpJumpBinFalse:
			if !m.vmBin(&fc.Bins[in.D], &regs[in.B], &regs[in.C]).Truthy() {
				pc = int(in.A)
			}
		case vm.OpJumpBinConstFalse:
			cv := IntVal(fc.Consts[in.C])
			if !m.vmBin(&fc.Bins[in.D], &regs[in.B], &cv).Truthy() {
				pc = int(in.A)
			}
		case vm.OpReturn:
			if in.A < 0 {
				return Value{}
			}
			return regs[in.A]

		case vm.OpConstInt:
			regs[in.A] = IntVal(fc.Consts[in.B])
		case vm.OpConstFloat:
			regs[in.A] = FloatVal(fc.Floats[in.B])
		case vm.OpConstStr:
			regs[in.A] = m.internString(fc.Strs[in.B])
		case vm.OpFnAddr:
			regs[in.A] = PtrVal(m.funcAddrOf(fc.Names[in.B]))

		case vm.OpAddrLocal:
			hb := fr.base + uint32(in.C)
			regs[in.A] = Value{K: VPtr, P: fr.base + uint32(in.B), B: hb, E: hb + uint32(in.D)}
		case vm.OpAddrGlobal:
			a := m.vmGlobals[in.B]
			if a == 0 {
				m.trapf("internal", "global %q has no storage", m.code.Globals[in.B].Name)
			}
			regs[in.A] = Value{K: VPtr, P: a, B: a, E: a + uint32(in.C)}
		case vm.OpAddrMem:
			pv := regs[in.B]
			b, e := pv.B, pv.E
			if b == 0 || e == 0 {
				b = pv.P
				e = pv.P + uint32(in.C)
			}
			regs[in.A] = Value{K: VPtr, P: pv.P, B: b, E: e}
		case vm.OpFieldOff:
			a := regs[in.B].P + uint32(in.C)
			regs[in.A] = Value{K: VPtr, P: a, B: a, E: a + uint32(in.D)}
		case vm.OpIndexOff:
			v := regs[in.B]
			idx := regs[in.C].AsInt()
			v.P = uint32(int64(v.P) + idx*int64(in.D))
			regs[in.A] = v
		case vm.OpIndexConst:
			v := regs[in.B]
			v.P += uint32(in.C)
			regs[in.A] = v
		case vm.OpAddrOf:
			v := regs[in.B]
			v.K = VPtr
			switch in.C {
			case vm.AddrWild:
				if blk := m.mem.BlockAt(v.P); blk != nil {
					blk.MakeWild()
					v.B = blk.Addr
				}
			case vm.AddrRtti:
				if m.hier != nil {
					v.RT = m.hier.Of(fc.Types[in.D])
				}
			}
			regs[in.A] = v

		case vm.OpLoad:
			addr := regs[in.B].P
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			regs[in.A] = m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
		case vm.OpStore:
			m.vmStore(regs[in.A].P, &fc.TyDescs[in.C], fc.Types[in.C], fc.TySizes[in.C], regs[in.B])
		case vm.OpLoadLocal:
			addr := fr.base + uint32(in.B)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			regs[in.A] = m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
		case vm.OpStoreLocal:
			m.vmStore(fr.base+uint32(in.A), &fc.TyDescs[in.C], fc.Types[in.C], fc.TySizes[in.C], regs[in.B])
		case vm.OpLoadGlobal:
			g := m.vmGlobals[in.B]
			if g == 0 {
				m.trapf("internal", "global %q has no storage", m.code.Globals[in.B].Name)
			}
			addr := g + uint32(in.D)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			regs[in.A] = m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
		case vm.OpStoreGlobal:
			g := m.vmGlobals[in.A]
			if g == 0 {
				m.trapf("internal", "global %q has no storage", m.code.Globals[in.A].Name)
			}
			m.vmStore(g+uint32(in.D), &fc.TyDescs[in.C], fc.Types[in.C], fc.TySizes[in.C], regs[in.B])
		case vm.OpAggCopy:
			m.check(m.mem.Copy(regs[in.A].P, regs[in.B].P, uint32(in.C)))

		case vm.OpConvert:
			cv := &fc.Convs[in.C]
			regs[in.A] = m.convertChecked(regs[in.B], cv.From, cv.To, cv.Trusted)
		case vm.OpBin:
			regs[in.A] = m.vmBin(&fc.Bins[in.D], &regs[in.B], &regs[in.C])
		case vm.OpBinConst:
			cv := IntVal(fc.Consts[in.C])
			regs[in.A] = m.vmBin(&fc.Bins[in.D], &regs[in.B], &cv)
		case vm.OpUn:
			regs[in.A] = m.vmUn(&fc.Uns[in.C], regs[in.B])

		case vm.OpCallFn:
			ci := &fc.Calls[in.C]
			args := regs[ci.ArgBase : ci.ArgBase+ci.NArgs]
			var ret Value
			if ci.FC != nil {
				ret = m.vmCall(ci.FC, args)
			} else {
				ret = m.call(ci.Fn, args) // callee fell back to the tree
			}
			if in.A >= 0 {
				regs[in.A] = ret
			}
		case vm.OpCallNamed:
			ci := &fc.Calls[in.C]
			args := regs[ci.ArgBase : ci.ArgBase+ci.NArgs]
			bf, ok := m.builtins[ci.Name]
			if !ok {
				m.trapf("link", "call to undefined function %q", ci.Name)
			}
			m.recEvent(flight.EvWrapper, ci.Name, 0)
			ret := bf(m, args)
			if in.A >= 0 {
				regs[in.A] = ret
			}
		case vm.OpCallPtr:
			ci := &fc.Calls[in.C]
			args := regs[ci.ArgBase : ci.ArgBase+ci.NArgs]
			ret := m.callPtr(regs[in.B].P, args, ci.ArgTypes)
			if in.A >= 0 {
				regs[in.A] = ret
			}

		case vm.OpCheckBegin:
			m.checkEnter(fc.Checks[in.C])
		case vm.OpCheck:
			m.checkVerdict(fc.Checks[in.C], regs[in.B])
			m.curCheck = nil
		case vm.OpStackTest:
			v := regs[in.B]
			if v.K != VPtr || v.P == 0 || !m.mem.InStack(v.P) {
				m.curCheck = nil
				pc = int(in.A)
			}
		case vm.OpStackVerify:
			m.stackEscapeVerify(regs[in.B], regs[in.C].P)
			m.curCheck = nil

		// Superinstructions: each is its two constituents in sequence
		// (dead intermediate register writes elided).
		case vm.OpJumpTrue:
			if regs[in.B].Truthy() {
				pc = int(in.A)
			}
		case vm.OpLoadConv:
			addr := regs[in.B].P
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			cv := &fc.Convs[in.D]
			lv := m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
			regs[in.A] = m.convertChecked(lv, cv.From, cv.To, cv.Trusted)
		case vm.OpStepLoadLocal:
			m.cnt.Steps++
			m.cnt.Cost++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			if m.prof != nil {
				m.sampleStep()
			}
			if in.D >= 0 {
				m.curPos = fc.Poss[in.D]
			}
			addr := fr.base + uint32(in.B)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			regs[in.A] = m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
		case vm.OpStoreLocalStep:
			m.vmStore(fr.base+uint32(in.A), &fc.TyDescs[in.C], fc.Types[in.C], fc.TySizes[in.C], regs[in.B])
			m.cnt.Steps++
			m.cnt.Cost++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			if m.prof != nil {
				m.sampleStep()
			}
			if in.D >= 0 {
				m.curPos = fc.Poss[in.D]
			}
		case vm.OpConvStoreLocal:
			cv := &fc.Convs[in.C]
			m.vmStore(fr.base+uint32(in.A), &fc.TyDescs[in.D], fc.Types[in.D], fc.TySizes[in.D],
				m.convertChecked(regs[in.B], cv.From, cv.To, cv.Trusted))
		case vm.OpJumpFalseStep:
			if !regs[in.B].Truthy() {
				pc = int(in.A)
			} else {
				m.cnt.Steps++
				m.cnt.Cost++
				if m.cnt.Steps > m.stepLimit {
					m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
				}
				if m.prof != nil {
					m.sampleStep()
				}
				if in.C >= 0 {
					m.curPos = fc.Poss[in.C]
				}
			}
		case vm.OpLoadLocalBin:
			addr := fr.base + uint32(in.B)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			bi := &fc.Bins[in.D]
			lv := m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
			regs[in.A] = m.vmBin(bi, &regs[in.A], &lv)
		case vm.OpLoadLocalBinConst:
			addr := fr.base + uint32(in.B)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[in.C]))
			}
			bi := &fc.Bins[in.D]
			lv := m.vmLoad(addr, &fc.TyDescs[in.C], fc.Types[in.C])
			cv := IntVal(bi.CI)
			regs[in.A] = m.vmBin(bi, &lv, &cv)
		case vm.OpBinAddrMem:
			bi := &fc.Bins[in.D]
			v := m.vmBin(bi, &regs[in.B], &regs[in.C])
			b, e := v.B, v.E
			if b == 0 || e == 0 {
				b = v.P
				e = v.P + uint32(bi.MemSize)
			}
			regs[in.A] = Value{K: VPtr, P: v.P, B: b, E: e}
		case vm.OpBinCheck:
			v := m.vmBin(&fc.Bins[in.D], &regs[in.B], &regs[in.C])
			m.checkVerdict(fc.Checks[in.A], v)
			m.curCheck = nil
		case vm.OpCheckStep:
			m.checkVerdict(fc.Checks[in.C], regs[in.B])
			m.curCheck = nil
			m.cnt.Steps++
			m.cnt.Cost++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			if m.prof != nil {
				m.sampleStep()
			}
			if in.D >= 0 {
				m.curPos = fc.Poss[in.D]
			}
		case vm.OpLoadLocal2Bin:
			bi := &fc.Bins[in.D]
			a1 := fr.base + uint32(in.B)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, a1, uint32(fc.TySizes[bi.LTy]))
			}
			lv1 := m.vmLoad(a1, &fc.TyDescs[bi.LTy], fc.Types[bi.LTy])
			a2 := fr.base + uint32(in.C)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, a2, uint32(fc.TySizes[bi.RTy]))
			}
			lv2 := m.vmLoad(a2, &fc.TyDescs[bi.RTy], fc.Types[bi.RTy])
			regs[in.A] = m.vmBin(bi, &lv1, &lv2)
		case vm.OpStepLoadLocalBinConst:
			m.cnt.Steps++
			m.cnt.Cost++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			if m.prof != nil {
				m.sampleStep()
			}
			if in.D >= 0 {
				m.curPos = fc.Poss[in.D]
			}
			bi := &fc.Bins[in.C]
			addr := fr.base + uint32(in.B)
			if m.policyShadow != nil {
				m.policyShadow.onLoad(m, addr, uint32(fc.TySizes[bi.LTy]))
			}
			lv := m.vmLoad(addr, &fc.TyDescs[bi.LTy], fc.Types[bi.LTy])
			cv := IntVal(bi.CI)
			regs[in.A] = m.vmBin(bi, &lv, &cv)
		case vm.OpStepCheckBegin:
			m.cnt.Steps++
			m.cnt.Cost++
			if m.cnt.Steps > m.stepLimit {
				m.trapf("timeout", "step limit (%d) exceeded", m.stepLimit)
			}
			if m.prof != nil {
				m.sampleStep()
			}
			if in.D >= 0 {
				m.curPos = fc.Poss[in.D]
			}
			m.checkEnter(fc.Checks[in.C])

		default:
			m.trapf("internal", "unknown opcode %s", in.Op)
		}
	}
	return Value{}
}

// vmLoad is Machine.load with the per-access type interrogation — the
// kind switch, the split-representation lookup, the qualifier-graph
// query — resolved at compile time into d. The memory reads, costs, and
// trap messages are identical to value.go's load/loadPtr.
func (m *Machine) vmLoad(addr uint32, d *vm.TyDesc, t *ctypes.Type) Value {
	switch d.Kind {
	case ctypes.Int:
		i, err := m.mem.ReadInt(addr, int(d.Size), d.Signed)
		m.check(err)
		return IntVal(i)
	case ctypes.Float:
		f, err := m.mem.ReadFloat(addr, int(d.Size))
		m.check(err)
		return FloatVal(f)
	case ctypes.Ptr:
		if d.Split {
			p, err := m.mem.ReadWord(addr)
			m.check(err)
			v := Value{K: VPtr, P: p}
			meta, ok := m.shadowMeta[addr]
			if ok {
				v.B, v.E = meta.b, meta.e
				v.RT = m.nodeByID(meta.rt)
			}
			m.splitWork(addr, ok)
			return v
		}
		switch d.PKind {
		case qual.Seq:
			p, err := m.mem.ReadWord(addr)
			m.check(err)
			b, err := m.mem.ReadWord(addr + 4)
			m.check(err)
			e, err := m.mem.ReadWord(addr + 8)
			m.check(err)
			return Value{K: VPtr, P: p, B: b, E: e}
		case qual.Wild:
			b, err := m.mem.ReadWord(addr)
			m.check(err)
			p, err := m.mem.ReadWord(addr + 4)
			m.check(err)
			return Value{K: VPtr, P: p, B: b}
		case qual.Rtti:
			p, err := m.mem.ReadWord(addr)
			m.check(err)
			id, err := m.mem.ReadWord(addr + 4)
			m.check(err)
			return Value{K: VPtr, P: p, RT: m.nodeByID(int(id))}
		default:
			p, err := m.mem.ReadWord(addr)
			m.check(err)
			return Value{K: VPtr, P: p}
		}
	default:
		m.trapf("access", "cannot load value of type %s", t)
		return Value{}
	}
}

// vmStore is Machine.store/storePtr over a compile-time descriptor; hook
// is the precomputed Sizeof for the shadow-policy callback.
func (m *Machine) vmStore(addr uint32, d *vm.TyDesc, t *ctypes.Type, hook int32, v Value) {
	switch d.Kind {
	case ctypes.Int:
		m.check(m.mem.WriteInt(addr, int(d.Size), v.AsInt()))
	case ctypes.Float:
		m.check(m.mem.WriteFloat(addr, int(d.Size), v.AsFloat()))
	case ctypes.Ptr:
		m.vmStorePtr(addr, d, v)
	default:
		m.trapf("access", "cannot store value of type %s", t)
	}
	if m.policyShadow != nil {
		m.policyShadow.onStore(m, addr, uint32(hook))
	}
}

func (m *Machine) vmStorePtr(addr uint32, d *vm.TyDesc, v Value) {
	if d.Split {
		m.check(m.mem.WriteWord(addr, v.P))
		switch d.PKind {
		case qual.Seq, qual.Rtti, qual.Wild:
			if v.B != 0 || v.E != 0 || v.RT != nil {
				m.shadowMeta[addr] = metaEntry{b: v.B, e: v.E, rt: m.idOfNode(v.RT)}
				m.splitWork(addr, true)
			} else {
				_, had := m.shadowMeta[addr]
				if had {
					delete(m.shadowMeta, addr)
				}
				m.splitWork(addr, had)
			}
		}
		return
	}
	switch d.PKind {
	case qual.Seq:
		m.check(m.mem.WriteWord(addr, v.P))
		m.check(m.mem.WriteWord(addr+4, v.B))
		m.check(m.mem.WriteWord(addr+8, v.E))
	case qual.Wild:
		m.check(m.mem.WriteWord(addr, v.B))
		m.check(m.mem.WriteWord(addr+4, v.P))
		if blk := m.mem.BlockAt(addr); blk != nil && blk.Wild {
			blk.SetTag(addr, 1)
			blk.SetTag(addr+4, 0)
		}
	case qual.Rtti:
		m.check(m.mem.WriteWord(addr, v.P))
		m.check(m.mem.WriteWord(addr+4, uint32(m.idOfNode(v.RT))))
	default:
		m.check(m.mem.WriteWord(addr, v.P))
		if blk := m.mem.BlockAt(addr); blk != nil && blk.Wild {
			blk.SetTag(addr, 0)
		}
	}
}

// vmBin mirrors evalBinOp over precomputed operand facts. The operands
// are passed by pointer (they are read-only): two Values exceed Go's
// register-passing budget and would spill to the stack on every call.
func (m *Machine) vmBin(bi *vm.BinInfo, a, b *Value) Value {
	switch bi.Op {
	case cil.OpAddPI, cil.OpSubPI:
		idx := b.AsInt()
		if bi.Op == cil.OpSubPI {
			idx = -idx
		}
		out := *a
		out.P = uint32(int64(a.P) + idx*bi.Esz)
		return out
	case cil.OpSubPP:
		return IntVal((int64(a.P) - int64(b.P)) / bi.Esz)
	}

	if a.K == VFloat || b.K == VFloat {
		af, bf := a.AsFloat(), b.AsFloat()
		switch bi.Op {
		case cil.OpAdd:
			return m.vmFret(bi, af+bf)
		case cil.OpSub:
			return m.vmFret(bi, af-bf)
		case cil.OpMul:
			return m.vmFret(bi, af*bf)
		case cil.OpDiv:
			return m.vmFret(bi, af/bf)
		case cil.OpLt:
			return boolVal(af < bf)
		case cil.OpGt:
			return boolVal(af > bf)
		case cil.OpLe:
			return boolVal(af <= bf)
		case cil.OpGe:
			return boolVal(af >= bf)
		case cil.OpEq:
			return boolVal(af == bf)
		case cil.OpNe:
			return boolVal(af != bf)
		}
		m.trapf("arith", "bad float operator %s", bi.Op)
	}

	ai, bv := a.AsInt(), b.AsInt()
	signed := bi.OpSigned
	norm := func(v int64) Value {
		if bi.IsInt {
			return IntVal(normInt(v, bi.Size, bi.TySigned))
		}
		return IntVal(v)
	}
	switch bi.Op {
	case cil.OpAdd:
		return norm(ai + bv)
	case cil.OpSub:
		return norm(ai - bv)
	case cil.OpMul:
		return norm(ai * bv)
	case cil.OpDiv:
		if bv == 0 {
			m.trapf("arith", "division by zero")
		}
		if !signed {
			return norm(int64(uint64(uint32(ai)) / uint64(uint32(bv))))
		}
		return norm(ai / bv)
	case cil.OpRem:
		if bv == 0 {
			m.trapf("arith", "modulo by zero")
		}
		if !signed {
			return norm(int64(uint64(uint32(ai)) % uint64(uint32(bv))))
		}
		return norm(ai % bv)
	case cil.OpShl:
		return norm(ai << uint(bv&63))
	case cil.OpShr:
		if !signed {
			return norm(int64(uint32(ai) >> uint(bv&31)))
		}
		return norm(ai >> uint(bv&63))
	case cil.OpBitAnd:
		return norm(ai & bv)
	case cil.OpBitOr:
		return norm(ai | bv)
	case cil.OpBitXor:
		return norm(ai ^ bv)
	case cil.OpLt:
		return boolVal(cmpInts(*a, *b, signed) < 0)
	case cil.OpGt:
		return boolVal(cmpInts(*a, *b, signed) > 0)
	case cil.OpLe:
		return boolVal(cmpInts(*a, *b, signed) <= 0)
	case cil.OpGe:
		return boolVal(cmpInts(*a, *b, signed) >= 0)
	case cil.OpEq:
		return boolVal(ai == bv)
	case cil.OpNe:
		return boolVal(ai != bv)
	}
	m.trapf("arith", "bad operator %s", bi.Op)
	return Value{}
}

func (m *Machine) vmFret(bi *vm.BinInfo, f float64) Value {
	if bi.F32 {
		return FloatVal(float64(float32(f)))
	}
	return FloatVal(f)
}

// vmUn mirrors the UnOp arm of evalExpr.
func (m *Machine) vmUn(u *vm.UnInfo, v Value) Value {
	switch u.Op {
	case cil.OpNeg:
		if v.K == VFloat {
			return FloatVal(-v.F)
		}
		return IntVal(normInt(-v.AsInt(), u.Size, u.Signed))
	case cil.OpNot:
		if v.Truthy() {
			return IntVal(0)
		}
		return IntVal(1)
	case cil.OpBitNot:
		return IntVal(normInt(^v.AsInt(), u.Size, u.Signed))
	}
	m.trapf("internal", "unknown unary operator %s", u.Op)
	return Value{}
}
