package infer

import (
	"crypto/sha256"
	"fmt"
	"io"

	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
)

// FingerprintFunc content-hashes one function for summary keying: the
// printed body (pure structure), every statement and cast position (summary
// ops carry positions into provenance, so a moved-but-identical body must
// not reuse a stale summary), and a deep structural fingerprint of every
// type occurrence in the function's scope (the printer does not render
// kind/split annotations, but they seed the solver).
func FingerprintFunc(f *cil.Func) [sha256.Size]byte {
	h := sha256.New()
	cil.FprintFunc(h, f)
	cil.WalkStmts(f.Body.Stmts, func(s cil.Stmt) {
		switch st := s.(type) {
		case *cil.SInstr:
			writePos(h, st.Ins.Position())
		case *cil.Return:
			writePos(h, st.Pos)
		}
	})
	cil.WalkFuncExprs(f, func(e cil.Expr) {
		if c, ok := e.(*cil.Cast); ok {
			writePos(h, c.Pos)
		}
	})
	forEachFuncType(f, func(t *ctypes.Type) {
		typeFP(h, t, make(map[*ctypes.StructInfo]bool), 0)
	})
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// FingerprintDecls content-hashes everything a function collection can see
// outside function bodies: struct layouts, globals (with initializers),
// externs, function signatures, and wrapper pragmas. Any change here
// invalidates every stored summary of the translation unit (the hash is
// part of each chunk key), which also keeps the occurrence table's
// declaration-owned naming stable for every summary that is reused.
func FingerprintDecls(prog *cil.Program) [sha256.Size]byte {
	h := sha256.New()
	for i, su := range prog.Structs {
		fmt.Fprintf(h, "su%d:%s:%v:%v;", i, su.Name, su.Union, su.Complete)
		for _, f := range su.Fields {
			fmt.Fprintf(h, "%s:", f.Name)
			typeFP(h, f.Type, make(map[*ctypes.StructInfo]bool), 0)
		}
	}
	for _, g := range prog.Globals {
		fmt.Fprintf(h, "g:%s:", g.Var.Name)
		typeFP(h, g.Var.Type, make(map[*ctypes.StructInfo]bool), 0)
		typeFP(h, g.Var.AddrType, make(map[*ctypes.StructInfo]bool), 0)
		initFP(h, g.Init)
	}
	for _, v := range prog.Externs {
		fmt.Fprintf(h, "x:%s:", v.Name)
		typeFP(h, v.Type, make(map[*ctypes.StructInfo]bool), 0)
		typeFP(h, v.AddrType, make(map[*ctypes.StructInfo]bool), 0)
	}
	for _, f := range prog.Funcs {
		fmt.Fprintf(h, "fs:%s:", f.Name)
		typeFP(h, f.Type, make(map[*ctypes.StructInfo]bool), 0)
	}
	for _, w := range prog.Wrappers {
		fmt.Fprintf(h, "w:%s:%s;", w.Wrapper, w.Wrapped)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

func writePos(w io.Writer, p diag.Pos) {
	fmt.Fprintf(w, "@%s:%d:%d;", p.File, p.Line, p.Col)
}

// typeFP writes a deep structural fingerprint of t: kind, size, sign,
// length, user annotations, decay identity, and the pointee/field/signature
// structure. Struct recursion is cut by name+field-count once visited.
func typeFP(w io.Writer, t *ctypes.Type, seen map[*ctypes.StructInfo]bool, depth int) {
	if t == nil || depth > 64 {
		io.WriteString(w, "~")
		return
	}
	fmt.Fprintf(w, "(%d:%d:%v:%d:%d:%d:%v", t.Kind, t.Size, t.Signed, t.Len, t.Ann, t.SplitAnnot, t.DecayOf != nil)
	switch t.Kind {
	case ctypes.Ptr, ctypes.Array:
		typeFP(w, t.Elem, seen, depth+1)
	case ctypes.Struct:
		fmt.Fprintf(w, "%s:%v:%v:%d", t.SU.Name, t.SU.Union, t.SU.Complete, len(t.SU.Fields))
		if !seen[t.SU] {
			seen[t.SU] = true
			for _, f := range t.SU.Fields {
				fmt.Fprintf(w, "%s:", f.Name)
				typeFP(w, f.Type, seen, depth+1)
			}
		}
	case ctypes.Func:
		typeFP(w, t.Fn.Ret, seen, depth+1)
		fmt.Fprintf(w, "%v:%d", t.Fn.Variadic, len(t.Fn.Params))
		for _, p := range t.Fn.Params {
			typeFP(w, p, seen, depth+1)
		}
	}
	io.WriteString(w, ")")
}

func initFP(w io.Writer, in *cil.Init) {
	switch {
	case in == nil || in.Zero:
		io.WriteString(w, "z")
	case in.IsList:
		io.WriteString(w, "{")
		for _, e := range in.List {
			initFP(w, e)
		}
		io.WriteString(w, "}")
	default:
		io.WriteString(w, cil.ExprString(in.Expr))
		cil.WalkExpr(in.Expr, func(e cil.Expr) {
			if c, ok := e.(*cil.Cast); ok {
				typeFP(w, c.To, make(map[*ctypes.StructInfo]bool), 0)
			}
		})
	}
}
