package trace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// W3C trace-context (https://www.w3.org/TR/trace-context/) support: ccserve
// accepts an inbound `traceparent` request header, adopts its 128-bit
// trace-id as the request's trace ID, and echoes a traceparent on every
// response, so a request that crosses process boundaries (loadgen → ccserve
// today, ccserve → remote cache tomorrow) keeps one identity end to end.
//
// The header shape is four dash-separated lowercase-hex fields:
//
//	version "-" trace-id "-" parent-id "-" trace-flags
//	  00    -  32 hex    -   16 hex    -   2 hex
//
// Per spec, a malformed traceparent is not an error: the receiver discards
// it, starts a fresh trace, and (here) counts the discard so operators can
// see a misbehaving upstream.

// NewW3CTraceID returns a fresh 32-lowercase-hex (128-bit) W3C trace-id.
// It is never all-zero (the spec's invalid value).
func NewW3CTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Same degraded path as NewID: a counter beats a mid-request panic.
		return fmt.Sprintf("%032x", idSeq.Add(1))
	}
	id := hex.EncodeToString(b[:])
	if id == zeroTraceID {
		b[15] = 1
		id = hex.EncodeToString(b[:])
	}
	return id
}

const (
	zeroTraceID  = "00000000000000000000000000000000"
	zeroParentID = "0000000000000000"
)

// ParseTraceparent validates a traceparent header per the W3C trace-context
// spec and returns its trace-id. ok is false for anything malformed:
// wrong field lengths, uppercase or non-hex digits, the forbidden all-zero
// trace-id/parent-id, or the invalid version ff. Versions above 00 are
// accepted as long as the first four fields parse (the spec requires
// forward compatibility: later versions may append fields).
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return "", false
	}
	version, tid, pid, flags := parts[0], parts[1], parts[2], parts[3]
	if len(version) != 2 || !isLowerHex(version) || version == "ff" {
		return "", false
	}
	// Version 00 defines exactly four fields; extra fields are malformed.
	if version == "00" && len(parts) != 4 {
		return "", false
	}
	if len(tid) != 32 || !isLowerHex(tid) || tid == zeroTraceID {
		return "", false
	}
	if len(pid) != 16 || !isLowerHex(pid) || pid == zeroParentID {
		return "", false
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return "", false
	}
	return tid, true
}

// Traceparent renders a version-00 traceparent header carrying traceID,
// with a freshly minted parent-id and the sampled flag set. A 16-hex
// internal ID (server-minted NewID) is left-padded with zeros to the W3C
// 128-bit width; a 32-hex ID (adopted from an inbound traceparent) is
// carried verbatim, so the upstream that minted it can correlate the echo.
func Traceparent(traceID string) string {
	if len(traceID) == 16 {
		traceID = zeroParentID + traceID
	}
	if !ValidID(traceID) || len(traceID) != 32 || traceID == zeroTraceID {
		traceID = NewW3CTraceID()
	}
	return "00-" + traceID + "-" + NewID() + "-01"
}
