// Package pipeline turns gocured's one-shot Compile/Run API into a
// concurrent curing service core. It provides three pieces:
//
//   - Job / Runner: a worker pool that cures and executes many translation
//     units concurrently with bounded parallelism, per-job wall-clock
//     timeouts and step limits, and per-job panic isolation, so one
//     pathological source cannot take down a batch;
//
//   - Cache: a content-addressed memoization of Compile results keyed by
//     SHA-256(version, filename, options, source), with single-flight
//     coalescing of concurrent identical compiles, LRU eviction under a
//     size bound, and hit/miss/eviction counters;
//
//   - Metrics: a snapshot of jobs run, cache effectiveness, compile/run
//     wall-time histograms, and traps observed, exported programmatically
//     (Runner.Metrics) and as an expvar/JSON endpoint (Runner.ExpvarVar,
//     served by cmd/ccserve).
//
// The experiments suite (internal/experiments, cmd/ccbench) dispatches its
// per-program work through a Runner, and cmd/ccserve exposes the Runner
// over HTTP. Correctness of the whole design rests on gocured.Program
// being safe for concurrent Run — see the Program documentation.
package pipeline

import (
	"runtime"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/store"
)

// OpenStore opens the persistent artifact store rooted at dir, keyed by
// this build's gocured and Go toolchain versions (the schema every command
// shares, so stores are interchangeable between ccserve, ccbench, ccrun,
// and ccured). An empty dir returns (nil, nil): the store is disabled.
func OpenStore(dir string) (*store.Artifacts, error) {
	if dir == "" {
		return nil, nil
	}
	s, err := store.Open(dir)
	if err != nil {
		return nil, err
	}
	return store.NewArtifacts(s, gocured.Version, runtime.Version()), nil
}

// CorpusJobs builds one job per (corpus program, mode) pair, curing each
// program with its documented options (bind's trusted casts, etc.) at the
// given scale (0 = source default). It is the canonical "cure the whole
// corpus" workload used by the pipeline tests and benchmarks.
func CorpusJobs(modes []gocured.Mode, scale int) []Job {
	var jobs []Job
	for _, p := range corpus.All() {
		src := p.Source
		if scale > 0 {
			src = corpus.WithScale(p, scale)
		}
		for _, mode := range modes {
			jobs = append(jobs, Job{
				Name:    p.Name + ".c",
				Source:  src,
				Options: gocured.Options{TrustBadCasts: p.TrustBadCasts},
				Run:     true,
				Mode:    mode,
			})
		}
	}
	return jobs
}

// CorpusCompileJobs builds compile-only jobs for every corpus program.
func CorpusCompileJobs(scale int) []Job {
	var jobs []Job
	for _, p := range corpus.All() {
		src := p.Source
		if scale > 0 {
			src = corpus.WithScale(p, scale)
		}
		jobs = append(jobs, Job{
			Name:    p.Name + ".c",
			Source:  src,
			Options: gocured.Options{TrustBadCasts: p.TrustBadCasts},
		})
	}
	return jobs
}
