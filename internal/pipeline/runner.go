package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"gocured"
	"gocured/internal/flight"
	"gocured/internal/store"
	"gocured/internal/trace"
)

// RunnerOptions tune a Runner.
type RunnerOptions struct {
	// Workers bounds concurrent jobs (0 = runtime.NumCPU()).
	Workers int
	// CacheEntries bounds the compile cache (0 = DefaultCacheEntries,
	// negative = caching disabled).
	CacheEntries int
	// DefaultStepLimit is applied to run jobs that do not set their own
	// RunOptions.StepLimit (0 keeps the interpreter's default of 1e9).
	// ccserve lowers it so one request cannot monopolize a worker.
	DefaultStepLimit uint64
	// JobTimeout is the default wall-clock bound per job (0 = none). A
	// timed-out job's result is abandoned; its worker slot is freed only
	// when the underlying compile/run actually stops (the step limit is
	// the hard backstop), so pathological jobs exert backpressure instead
	// of accumulating unbounded goroutines.
	JobTimeout time.Duration
	// Flight, when non-nil, records every job's compile/run phases into
	// per-worker flight-recorder rings (wall-clock µs timestamps). Export
	// them with flight.WriteTrace(w, Flight.Rings()) for a Perfetto view
	// of pipeline concurrency (one track per worker slot). Nil disables
	// recording at the cost of one nil comparison per job.
	Flight *flight.Recorder
	// Store, when non-nil, is the persistent artifact store used as the
	// cache's second tier: compiles replay per-function inference summaries
	// from it, so a restarted process serves warm compiles from disk.
	Store *store.Artifacts
}

// Job is one unit of pipeline work: cure a source file and, optionally,
// execute it in one Mode.
type Job struct {
	// Name labels the job and names the translation unit in diagnostics
	// (a ".c" suffix is conventional but not required).
	Name    string
	Source  string
	Options gocured.Options

	// Run requests execution after curing; Mode and RunOptions configure it.
	Run        bool
	Mode       gocured.Mode
	RunOptions gocured.RunOptions

	// Timeout overrides the Runner's JobTimeout when positive.
	Timeout time.Duration

	// testPanic makes execute panic before doing any work; package tests
	// inject it to exercise the per-job panic isolation.
	testPanic bool
}

// JobResult is the outcome of one Job.
type JobResult struct {
	Name string
	Key  Key

	// Program, Stats and Diagnostics are set when compilation succeeded.
	Program     *gocured.Program
	Stats       gocured.Stats
	Diagnostics []string
	// CacheHit reports that compilation was served from the memory cache.
	CacheHit bool
	// Incr reports the inference composition of the compile: functions
	// replayed from the artifact store vs. re-collected. On a CacheHit it
	// describes the original compilation.
	Incr gocured.IncrStats

	// Run is the execution result for run jobs.
	Run *gocured.Result

	// Phases records the per-phase wall times of the job: the compile
	// phases (parse/sema/lower/infer/instrument — from the original
	// compilation when served from cache) plus a "run" span for run jobs.
	Phases []trace.Span

	CompileTime time.Duration
	RunTime     time.Duration

	// Err is non-nil on compile errors, run errors, panics (isolated per
	// job) and timeouts. A trapped execution is not an error: see
	// Run.Trapped.
	Err error
}

// Runner cures and executes Jobs on a bounded worker pool over a shared
// content-addressed cache. One Runner is intended to live for the whole
// process (ccserve) or batch (ccbench); it is safe for concurrent use.
type Runner struct {
	opts  RunnerOptions
	sem   chan struct{}
	cache *Cache
	m     *metrics
	bus   *Bus
}

// NewRunner builds a Runner.
func NewRunner(opts RunnerOptions) *Runner {
	if opts.Workers <= 0 {
		opts.Workers = runtime.NumCPU()
	}
	r := &Runner{
		opts: opts,
		sem:  make(chan struct{}, opts.Workers),
		m:    newMetrics(),
		bus:  NewBus(),
	}
	if opts.CacheEntries >= 0 {
		r.cache = NewCache(opts.CacheEntries)
		r.cache.SetStore(opts.Store)
	}
	return r
}

// Workers returns the worker-pool size.
func (r *Runner) Workers() int { return r.opts.Workers }

// Events returns the Runner's live event bus. Subscribe to tail job
// start/done/trap events (ccserve's GET /events streams them as SSE).
func (r *Runner) Events() *Bus { return r.bus }

// Metrics snapshots the Runner's counters.
func (r *Runner) Metrics() Metrics {
	var cs CacheStats
	if r.cache != nil {
		cs = r.cache.Stats()
	}
	m := r.m.snapshot(r.opts.Workers, cs)
	if r.opts.Store != nil {
		st := r.opts.Store.Store().Stats()
		m.Store = &st
	}
	m.Build = BuildInfo{
		Version:   gocured.Version,
		GoVersion: runtime.Version(),
		Optimizer: "on", // optimizer is per-job (Options.NoOptimize); the build default is on
	}
	return m
}

// Do executes one job, blocking until a worker slot is free (or ctx is
// cancelled) and then until the job completes, times out, or panics. It
// always returns a non-nil result; inspect Err.
func (r *Runner) Do(ctx context.Context, job Job) *JobResult {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return &JobResult{Name: job.Name, Err: ctx.Err()}
	}
	r.m.jobStarted()

	resCh := make(chan *JobResult, 1)
	go func() {
		defer func() { <-r.sem }()
		res := r.execute(job)
		r.m.jobFinished(res)
		resCh <- res
	}()

	timeout := job.Timeout
	if timeout <= 0 {
		timeout = r.opts.JobTimeout
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case res := <-resCh:
		return res
	case <-ctx.Done():
		return &JobResult{Name: job.Name, Err: ctx.Err()}
	case <-timeoutCh:
		r.m.jobTimedOut()
		return &JobResult{Name: job.Name, Err: fmt.Errorf("job %q timed out after %v", job.Name, timeout)}
	}
}

// DoAll fans jobs out over the worker pool and returns their results in
// input order once all have completed (or ctx is cancelled, in which case
// the remaining results carry ctx's error).
func (r *Runner) DoAll(ctx context.Context, jobs []Job) []*JobResult {
	results := make([]*JobResult, len(jobs))
	var wg sync.WaitGroup
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = r.Do(ctx, jobs[i])
		}(i)
	}
	wg.Wait()
	return results
}

// Compile cures a source through the worker pool and cache without
// executing it.
func (r *Runner) Compile(ctx context.Context, name, source string, opts gocured.Options) *JobResult {
	return r.Do(ctx, Job{Name: name, Source: source, Options: opts})
}

// execute runs one job on the calling goroutine. Panics anywhere in the
// compile/run path are isolated into Err so one pathological source cannot
// take down a batch.
func (r *Runner) execute(job Job) (res *JobResult) {
	res = &JobResult{Name: job.Name}
	defer func() {
		if p := recover(); p != nil {
			r.m.jobPanicked()
			res.Err = fmt.Errorf("job %q panicked: %v\n%s", job.Name, p, debug.Stack())
		}
	}()
	if job.testPanic {
		panic("injected test panic")
	}

	// Flight recording: one ring per worker slot, checked out for the
	// job's duration so concurrent jobs land on separate Perfetto tracks.
	var ring *flight.Ring
	rec := r.opts.Flight
	if rec != nil {
		ring = rec.Checkout()
		defer rec.Release(ring)
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvBegin, Name: "job " + job.Name})
		defer func() {
			if res.Run != nil && res.Run.Trapped {
				ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvTrap,
					Name: res.Run.TrapKind, Pos: res.Run.TrapPos})
			}
			ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvEnd, Name: "job " + job.Name})
		}()
	}
	r.bus.Publish(JobEvent{Type: "job_start", Name: job.Name, Mode: job.Mode.String()})
	start := time.Now()
	defer func() {
		ev := JobEvent{Type: "job_done", Name: job.Name, Mode: job.Mode.String(),
			CacheHit: res.CacheHit, DurMS: float64(time.Since(start)) / float64(time.Millisecond)}
		if res.Err != nil {
			ev.Err = res.Err.Error()
		}
		r.bus.Publish(ev)
	}()

	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvBegin, Name: "compile"})
	}
	compiled, hit, err := r.compile(job)
	res.CompileTime = time.Since(start)
	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvEnd, Name: "compile"})
	}
	if err != nil {
		res.Err = fmt.Errorf("compile %s: %w", job.Name, err)
		return res
	}
	res.Key = compiled.Key
	res.Program = compiled.Program
	res.Stats = compiled.Stats
	res.Diagnostics = compiled.Diagnostics
	res.Incr = compiled.Incr
	res.CacheHit = hit
	res.Phases = append(res.Phases, compiled.Program.Spans()...)

	if !job.Run {
		return res
	}
	ro := job.RunOptions
	if ro.StepLimit == 0 && r.opts.DefaultStepLimit > 0 {
		ro.StepLimit = r.opts.DefaultStepLimit
	}
	runStart := time.Now()
	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvBegin, Name: "run " + job.Mode.String()})
	}
	out, err := compiled.Program.Run(job.Mode, ro)
	res.RunTime = time.Since(runStart)
	if ring != nil {
		ring.Record(flight.Event{TS: rec.NowMicros(), Kind: flight.EvEnd, Name: "run " + job.Mode.String()})
	}
	res.Phases = append(res.Phases, trace.Span{Name: "run", DurMS: float64(res.RunTime) / float64(time.Millisecond)})
	if err != nil {
		res.Err = fmt.Errorf("run %s (%s): %w", job.Name, job.Mode, err)
		return res
	}
	res.Run = out
	if out.Trapped {
		r.bus.Publish(JobEvent{Type: "trap", Name: job.Name, Mode: job.Mode.String(),
			TrapKind: out.TrapKind, TrapPos: out.TrapPos})
	}
	return res
}

func (r *Runner) compile(job Job) (*Compiled, bool, error) {
	if r.cache != nil {
		return r.cache.GetOrCompile(job.Name, job.Source, job.Options)
	}
	compiled, err := compileSource(CacheKey(job.Name, job.Source, job.Options), job.Name, job.Source, job.Options, r.opts.Store)
	return compiled, false, err
}
