package pipeline

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramMeanMSZeroCount(t *testing.T) {
	var h Histogram
	if got := h.MeanMS(); got != 0 {
		t.Errorf("empty histogram MeanMS = %v, want 0 (no division by zero)", got)
	}
	h = Histogram{Count: 4, SumMS: 10}
	if got := h.MeanMS(); got != 2.5 {
		t.Errorf("MeanMS = %v, want 2.5", got)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h histogram
	h.observe(500 * time.Microsecond) // le=1 bucket
	h.observe(3 * time.Millisecond)   // le=5 bucket
	h.observe(10 * time.Second)       // overflow bucket
	s := h.snapshot()
	if s.Count != 3 || s.MaxMS != 10000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Empty buckets are dropped; the overflow bucket has LeMS 0.
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %+v, want 3 non-empty", s.Buckets)
	}
	if s.Buckets[0].LeMS != 1 || s.Buckets[1].LeMS != 5 || s.Buckets[2].LeMS != 0 {
		t.Errorf("bucket bounds = %+v", s.Buckets)
	}
}

// TestWritePrometheusFormat unit-tests the text renderer on a hand-built
// snapshot: cumulative buckets rebuilt over the canonical bounds, sorted
// trap-kind labels, and counter/gauge samples.
func TestWritePrometheusFormat(t *testing.T) {
	m := Metrics{
		Workers:      4,
		JobsRun:      7,
		RunsExecuted: 5,
		Traps:        2,
		TrapsByKind:  map[string]uint64{"null": 1, "bounds": 1},
		Cache:        CacheStats{Entries: 3, Hits: 2, Misses: 5},
		CompileWall: Histogram{
			Count: 3, SumMS: 12.5, MaxMS: 9,
			Buckets: []HistBucket{{LeMS: 2, Count: 1}, {LeMS: 10, Count: 2}},
		},
	}
	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()

	for _, want := range []string{
		"# TYPE gocured_workers gauge\ngocured_workers 4\n",
		"# TYPE gocured_jobs_run_total counter\ngocured_jobs_run_total 7\n",
		"gocured_traps_total 2\n",
		// Label values sort: bounds before null.
		"gocured_traps_by_kind_total{kind=\"bounds\"} 1\ngocured_traps_by_kind_total{kind=\"null\"} 1\n",
		"gocured_cache_hits_total 2\n",
		// Sparse buckets {2:1, 10:2} become cumulative over all bounds:
		// le=1 -> 0, le=2 -> 1, le=5 -> 1, le=10 -> 3, ... le=5000 -> 3.
		"gocured_compile_wall_ms_bucket{le=\"1\"} 0\n",
		"gocured_compile_wall_ms_bucket{le=\"2\"} 1\n",
		"gocured_compile_wall_ms_bucket{le=\"5\"} 1\n",
		"gocured_compile_wall_ms_bucket{le=\"10\"} 3\n",
		"gocured_compile_wall_ms_bucket{le=\"5000\"} 3\n",
		"gocured_compile_wall_ms_bucket{le=\"+Inf\"} 3\n",
		"gocured_compile_wall_ms_sum 12.5\n",
		"gocured_compile_wall_ms_count 3\n",
		// The empty run histogram still renders a complete family.
		"gocured_run_wall_ms_bucket{le=\"+Inf\"} 0\n",
		"gocured_run_wall_ms_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// Every # TYPE is preceded by its # HELP line.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP ") {
				t.Errorf("TYPE line without preceding HELP: %q", l)
			}
		}
	}
}
