package gocured_test

// One benchmark per table/figure of the paper's evaluation (see DESIGN.md's
// per-experiment index). Each benchmark regenerates its table; run
//
//	go test -bench=. -benchmem
//
// or use cmd/ccbench for the formatted tables. The finer-grained
// BenchmarkRun benches time individual corpus programs per execution mode.

import (
	"context"
	"fmt"
	"testing"

	"gocured"
	"gocured/internal/core"
	"gocured/internal/corpus"
	"gocured/internal/experiments"
	"gocured/internal/flight"
	"gocured/internal/infer"
	"gocured/internal/interp"
	"gocured/internal/pipeline"
)

var benchCfg = experiments.Config{Scale: 1}

func benchTable(b *testing.B, fn func(experiments.Config) *experiments.Table) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t := fn(benchCfg)
		if len(t.Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

// BenchmarkCastClassification regenerates E1 (§3 cast statistics).
func BenchmarkCastClassification(b *testing.B) {
	benchTable(b, experiments.CastClassification)
}

// BenchmarkFig8Apache regenerates E2 (Figure 8, Apache modules).
func BenchmarkFig8Apache(b *testing.B) { benchTable(b, experiments.Fig8Apache) }

// BenchmarkFig9System regenerates E3 (Figure 9, system software).
func BenchmarkFig9System(b *testing.B) { benchTable(b, experiments.Fig9System) }

// BenchmarkIjpegRTTI regenerates E4 (ijpeg RTTI ablation).
func BenchmarkIjpegRTTI(b *testing.B) { benchTable(b, experiments.IjpegRTTI) }

// BenchmarkMicroSuite regenerates E5 (Spec/Olden/Ptrdist vs Purify/Valgrind).
func BenchmarkMicroSuite(b *testing.B) { benchTable(b, experiments.MicroSuite) }

// BenchmarkSplitOverhead regenerates E6 (all-split ablation).
func BenchmarkSplitOverhead(b *testing.B) { benchTable(b, experiments.SplitOverhead) }

// BenchmarkBindCasts regenerates E7 (bind cast statistics).
func BenchmarkBindCasts(b *testing.B) { benchTable(b, experiments.BindCasts) }

// BenchmarkSplitStats regenerates E8 (split inference statistics).
func BenchmarkSplitStats(b *testing.B) { benchTable(b, experiments.SplitStats) }

// BenchmarkExploits regenerates E9 (ftpd exploit prevention).
func BenchmarkExploits(b *testing.B) { benchTable(b, experiments.Exploits) }

// BenchmarkCompile times the whole pipeline (parse -> check -> lower ->
// infer -> cure) on the largest corpus program.
func BenchmarkCompile(b *testing.B) {
	p := corpus.ByName("bind")
	for i := 0; i < b.N; i++ {
		if _, err := core.Build("bind.c", p.Source, infer.Options{TrustBadCasts: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheColdCompile times curing bind through the pipeline with
// caching disabled: every iteration pays the full parse/infer/cure cost.
// Compare against BenchmarkCacheWarmCompile for the content-addressed
// cache's speedup.
func BenchmarkCacheColdCompile(b *testing.B) {
	r := pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1, CacheEntries: -1})
	p := corpus.ByName("bind")
	for i := 0; i < b.N; i++ {
		if res := r.Compile(context.Background(), "bind.c", p.Source, infraOpts(p)); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// BenchmarkCacheWarmCompile times the same compile served from the cache.
func BenchmarkCacheWarmCompile(b *testing.B) {
	r := pipeline.NewRunner(pipeline.RunnerOptions{Workers: 1})
	p := corpus.ByName("bind")
	if res := r.Compile(context.Background(), "bind.c", p.Source, infraOpts(p)); res.Err != nil {
		b.Fatal(res.Err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := r.Compile(context.Background(), "bind.c", p.Source, infraOpts(p))
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		if !res.CacheHit {
			b.Fatal("warm compile missed the cache")
		}
	}
}

func infraOpts(p *corpus.Program) gocured.Options {
	return gocured.Options{TrustBadCasts: p.TrustBadCasts}
}

// BenchmarkCorpusCureWorkers cures the whole corpus (compile only, cache
// disabled so every job does real work) with 1, 2, 4, and 8 workers; on a
// multicore machine the wall time per op should fall with the worker count
// until it hits the core count.
func BenchmarkCorpusCureWorkers(b *testing.B) {
	jobs := pipeline.CorpusCompileJobs(1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := pipeline.NewRunner(pipeline.RunnerOptions{Workers: workers, CacheEntries: -1})
				for _, res := range r.DoAll(context.Background(), jobs) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
		})
	}
}

// BenchmarkRun times representative corpus programs per execution mode
// (raw, cured, purify, valgrind) so individual slowdown ratios can be read
// straight off the -bench output.
func BenchmarkRun(b *testing.B) {
	programs := []string{"ijpeg", "olden-em3d", "spec-compress", "apache-webstone", "bind"}
	modes := []struct {
		name   string
		policy interp.Policy
	}{
		{"raw", interp.PolicyNone},
		{"cured", interp.PolicyCured},
		{"purify", interp.PolicyPurify},
		{"valgrind", interp.PolicyValgrind},
	}
	for _, name := range programs {
		p := corpus.ByName(name)
		u, err := core.Build(name+".c", corpus.WithScale(p, 1),
			infer.Options{TrustBadCasts: p.TrustBadCasts})
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range modes {
			b.Run(name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var out *interp.Outcome
					var err error
					if m.policy == interp.PolicyCured {
						out, err = u.RunCured(interp.Config{})
					} else {
						out, err = u.RunRaw(m.policy, interp.Config{})
					}
					if err != nil {
						b.Fatal(err)
					}
					if out.Trap != nil {
						b.Fatalf("trap: %v", out.Trap)
					}
				}
			})
		}
	}
}

// BenchmarkFlightRecorder quantifies the flight recorder's cost on a cured
// run: "off" is the one-nil-check disabled path (the ≤2% contract), "on"
// records every event into the ring, "profiled" adds step sampling.
func BenchmarkFlightRecorder(b *testing.B) {
	p := corpus.ByName("spec-compress")
	u, err := core.Build(p.Name+".c", corpus.WithScale(p, 1),
		infer.Options{TrustBadCasts: p.TrustBadCasts})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, cfg interp.Config) {
		for i := 0; i < b.N; i++ {
			out, err := u.RunCured(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if out.Trap != nil {
				b.Fatalf("trap: %v", out.Trap)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, interp.Config{}) })
	b.Run("on", func(b *testing.B) {
		run(b, interp.Config{Flight: flight.NewRing(flight.DefaultRingCap, "bench")})
	})
	b.Run("profiled", func(b *testing.B) {
		run(b, interp.Config{
			Flight:  flight.NewRing(flight.DefaultRingCap, "bench"),
			Profile: flight.NewProfile(flight.DefaultSamplePeriod),
		})
	})
}
