// Object-oriented C: the paper's Figure/Circle pattern — subtype
// polymorphism, dynamic dispatch, and checked downcasts. With RTTI the
// program has zero bad casts; with RTTI disabled (the original CCured)
// the same code drowns in WILD pointers.
package main

import (
	"fmt"
	"log"

	"gocured"
)

const src = `
extern int printf(char *fmt, ...);
extern void *malloc(unsigned int n);

struct Figure { int (*area100)(struct Figure *obj); };
struct Circle { int (*area100)(struct Figure *obj); int radius; };
struct Square { int (*area100)(struct Figure *obj); int side; };

int circle_area(struct Figure *obj) {
    struct Circle *c = (struct Circle *)obj;      /* checked downcast */
    return 314 * c->radius * c->radius / 100;
}

int square_area(struct Figure *obj) {
    struct Square *s = (struct Square *)obj;      /* checked downcast */
    return s->side * s->side;
}

int main(void) {
    struct Figure *figs[4];
    int i, total = 0;
    for (i = 0; i < 4; i++) {
        if (i % 2 == 0) {
            struct Circle *c = (struct Circle *)malloc(sizeof(struct Circle));
            c->area100 = circle_area;
            c->radius = i + 1;
            figs[i] = (struct Figure *)c;          /* upcast */
        } else {
            struct Square *s = (struct Square *)malloc(sizeof(struct Square));
            s->area100 = square_area;
            s->side = i + 1;
            figs[i] = (struct Figure *)s;          /* upcast */
        }
    }
    for (i = 0; i < 4; i++) total += figs[i]->area100(figs[i]);  /* dispatch */
    printf("total area x100 = %d\n", total);
    return 0;
}
`

func main() {
	for _, cfg := range []struct {
		name string
		opts gocured.Options
	}{
		{"original CCured (no RTTI)", gocured.Options{NoRTTI: true}},
		{"PLDI03 CCured (physical subtyping + RTTI)", gocured.Options{}},
	} {
		prog, err := gocured.Compile("oop.c", src, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		s := prog.Stats()
		res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", cfg.name)
		fmt.Printf("  kinds: SAFE %.0f%%  SEQ %.0f%%  WILD %.0f%%  RTTI %.0f%%  (bad casts: %d)\n",
			s.PctSafe, s.PctSeq, s.PctWild, s.PctRtti, s.BadCasts)
		fmt.Printf("  cured run: %strapped=%v\n\n", res.Stdout, res.Trapped)
	}

	// And the safety net: downcasting a Figure that is NOT a Circle traps.
	bad := `
extern int printf(char *fmt, ...);
struct Figure { int (*area100)(struct Figure *obj); };
struct Circle { int (*area100)(struct Figure *obj); int radius; };
struct Figure plain;
int dummy(struct Figure *o) { return 0; }
int main(void) {
    struct Figure *f = &plain;
    struct Circle *c;
    plain.area100 = dummy;
    c = (struct Circle *)f;     /* wrong downcast */
    return c->radius;
}
`
	prog, err := gocured.Compile("bad.c", bad, gocured.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== wrong downcast ==\n  trapped=%v (%s: %s)\n",
		res.Trapped, res.TrapKind, res.TrapMessage)
}
