package interp

import (
	"testing"

	"gocured/internal/cil"
)

// The per-check-hit attribution path: a check carrying a static site ID
// counts into the dense table by index — no map hash, no position-string
// formatting, no allocation. (The previous implementation keyed a map on
// SiteKey{Pos: c.Pos.String(), ...}, allocating on every dynamic check.)

func TestSiteForHitPathDoesNotAllocate(t *testing.T) {
	m := &Machine{siteCounts: make([]SiteCount, 4)}
	chk := &cil.Check{Kind: cil.CheckSeq, Site: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		m.siteFor(chk).Hits++
	})
	if allocs != 0 {
		t.Fatalf("siteFor allocated %.1f times per check hit, want 0", allocs)
	}
}

func BenchmarkSiteCount(b *testing.B) {
	m := &Machine{siteCounts: make([]SiteCount, 8)}
	chk := &cil.Check{Kind: cil.CheckNull, Site: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.siteFor(chk).Hits++
	}
	if m.siteCounts[3].Hits != uint64(b.N) {
		b.Fatal("hits were not attributed to the site's dense slot")
	}
}
