package pipeline

import (
	"math"
	"sync"
	"time"
)

// The latency histograms use HDR-style logarithmic buckets: bounds grow by
// a factor of 2^(1/4) (four sub-buckets per octave, ~19% relative width,
// so a quantile read from the buckets is within ~9% of the true value)
// from 1µs to ~74s, with a final +Inf overflow bucket. One fixed bound
// table serves every duration-shaped metric — end-to-end latency,
// queue wait, per-phase compile times — so snapshots from different
// sources merge bucket-for-bucket; the queue-depth histogram reuses it as
// a dimensionless scale (depth n lands in the bucket bounding n).
const (
	logBucketsPerOctave = 4
	logBucketCount      = 105 // 26+ octaves: 0.001ms .. ~74s
	logBucketMinMS      = 0.001
)

// logBucketStep is the ratio between adjacent bucket bounds; bound i-1 is
// bound i divided by this factor.
var logBucketStep = math.Exp2(1.0 / logBucketsPerOctave)

// logBoundsMS are the inclusive upper bounds, in milliseconds.
var logBoundsMS = func() [logBucketCount]float64 {
	var b [logBucketCount]float64
	for i := range b {
		b[i] = logBucketMinMS * math.Exp2(float64(i)/logBucketsPerOctave)
	}
	return b
}()

// logBucketFor returns the index of the bucket holding ms (len(bounds)
// marks the overflow bucket). Bounds are inclusive: ms == bound i lands in
// bucket i.
func logBucketFor(ms float64) int {
	if ms <= logBoundsMS[0] {
		return 0
	}
	if ms > logBoundsMS[logBucketCount-1] {
		return logBucketCount
	}
	// log2(ms / min) * perOctave, then fix up float edge error locally.
	i := int(math.Ceil(math.Log2(ms/logBucketMinMS) * logBucketsPerOctave))
	if i < 0 {
		i = 0
	}
	if i >= logBucketCount {
		i = logBucketCount - 1
	}
	for i > 0 && ms <= logBoundsMS[i-1] {
		i--
	}
	for i < logBucketCount-1 && ms > logBoundsMS[i] {
		i++
	}
	return i
}

// Exemplar links one histogram bucket to the trace of a request that
// landed in it (OpenMetrics exemplar semantics): follow TraceID to
// GET /traces/{id} for the full span timeline of a representative
// observation. Retention is last-per-bucket: each new observation with a
// trace ID replaces the bucket's exemplar.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	ValueMS float64 `json:"value_ms"`
}

// HistBucket is one histogram bucket in a snapshot. Empty buckets are
// omitted from snapshots; LeMS 0 marks the +Inf overflow bucket.
type HistBucket struct {
	LeMS     float64   `json:"le_ms"`
	Count    uint64    `json:"count"`
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// Histogram is an immutable snapshot of a latency distribution: sparse
// non-empty buckets over the canonical log-bucket bounds, with per-bucket
// exemplars. It marshals into /metrics JSON and backs the Prometheus
// rendering.
type Histogram struct {
	Count   uint64       `json:"count"`
	SumMS   float64      `json:"sum_ms"`
	MaxMS   float64      `json:"max_ms"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// MeanMS returns the mean observation in milliseconds.
func (h Histogram) MeanMS() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.SumMS / float64(h.Count)
}

// Quantile returns the q-quantile (0 <= q <= 1) in milliseconds,
// linearly interpolated inside the bucket holding the target rank. The
// overflow bucket reports MaxMS. An empty histogram reports 0.
func (h Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.Count)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		if b.LeMS == 0 { // overflow
			return h.MaxMS
		}
		if float64(cum+b.Count) >= target {
			// Interpolate from the bucket's own canonical lower bound, not
			// the previous non-empty snapshot bucket: sparse snapshots elide
			// empty buckets, and interpolating across an elided run would
			// drag the estimate far below the bucket that actually holds the
			// target rank (bimodal latency understating p99).
			lower := 0.0
			if b.LeMS > logBoundsMS[0] {
				lower = b.LeMS / logBucketStep
			}
			frac := (target - float64(cum)) / float64(b.Count)
			v := lower + frac*(b.LeMS-lower)
			if v > h.MaxMS && h.MaxMS > 0 {
				v = h.MaxMS
			}
			return v
		}
		cum += b.Count
	}
	return h.MaxMS
}

// Merge folds another snapshot into h bucket-for-bucket (both use the
// canonical bounds). The merged bucket keeps o's exemplar when it has one
// (o is the newer snapshot in every call site), else h's.
func (h *Histogram) Merge(o Histogram) {
	if o.Count == 0 {
		return
	}
	h.Count += o.Count
	h.SumMS += o.SumMS
	if o.MaxMS > h.MaxMS {
		h.MaxMS = o.MaxMS
	}
	byLe := make(map[float64]int, len(h.Buckets))
	for i, b := range h.Buckets {
		byLe[b.LeMS] = i
	}
	for _, b := range o.Buckets {
		if i, ok := byLe[b.LeMS]; ok {
			h.Buckets[i].Count += b.Count
			if b.Exemplar != nil {
				h.Buckets[i].Exemplar = b.Exemplar
			}
			continue
		}
		h.Buckets = append(h.Buckets, b)
	}
	// Restore bound order (overflow bucket, LeMS 0, sorts last).
	sortBuckets(h.Buckets)
}

// Delta returns the distribution of observations recorded between prev and
// h, where both are snapshots of the same cumulative accumulator (prev the
// older one). Bucket counts subtract bound-for-bound; each surviving bucket
// keeps h's exemplar, which by last-per-bucket retention is the newest one
// and very likely belongs to the window. If any count would go negative
// (snapshots from different accumulators, or a restart in between), h is
// returned unchanged — the cumulative view is the only safe answer. SumMS
// subtracts too, so MeanMS works on the delta; MaxMS keeps h's value (the
// per-window max is not recoverable from cumulative snapshots).
func (h Histogram) Delta(prev Histogram) Histogram {
	if prev.Count == 0 {
		return h
	}
	if h.Count < prev.Count || h.SumMS < prev.SumMS {
		return h
	}
	prevByLe := make(map[float64]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevByLe[b.LeMS] = b.Count
	}
	// Every bucket prev saw must still be present in h with at least the
	// same count, or the snapshots cannot be from one growing accumulator.
	curByLe := make(map[float64]uint64, len(h.Buckets))
	for _, b := range h.Buckets {
		curByLe[b.LeMS] = b.Count
	}
	for le, n := range prevByLe {
		if curByLe[le] < n {
			return h
		}
	}
	out := Histogram{Count: h.Count - prev.Count, SumMS: h.SumMS - prev.SumMS, MaxMS: h.MaxMS}
	for _, b := range h.Buckets {
		old := prevByLe[b.LeMS]
		if n := b.Count - old; n > 0 {
			nb := HistBucket{LeMS: b.LeMS, Count: n}
			if b.Exemplar != nil {
				ex := *b.Exemplar
				nb.Exemplar = &ex
			}
			out.Buckets = append(out.Buckets, nb)
		}
	}
	return out
}

func sortBuckets(bs []HistBucket) {
	le := func(b HistBucket) float64 {
		if b.LeMS == 0 {
			return math.Inf(1)
		}
		return b.LeMS
	}
	for i := 1; i < len(bs); i++ {
		for j := i; j > 0 && le(bs[j]) < le(bs[j-1]); j-- {
			bs[j], bs[j-1] = bs[j-1], bs[j]
		}
	}
}

// DefaultExemplarMaxAge bounds how long a bucket's exemplar stays in
// snapshots without a fresh trace-carrying observation. It matches the
// default time-series history retention: an exemplar older than the whole
// history window would link a live bucket to a trace that the trajectory
// views can no longer explain (and that the bounded trace buffer has long
// evicted).
const DefaultExemplarMaxAge = time.Hour

// exemplarSlot is one bucket's retained exemplar plus the wall-clock time
// of the observation that set it, so snapshots can age stale ones out.
type exemplarSlot struct {
	e  Exemplar
	at time.Time
}

// LogHist is the mutable accumulator behind a Histogram snapshot: fixed
// log buckets, a last-per-bucket exemplar slot, and one mutex. Observe is
// a few loads and stores — far off any hot path (one observation per job
// phase) — so a mutex beats the complexity of striping. The zero value is
// ready to use; LogHist must not be copied after first use.
type LogHist struct {
	// ExemplarMaxAge overrides DefaultExemplarMaxAge when positive: a
	// bucket exemplar older than this is omitted from snapshots (the count
	// stays — only the stale trace link ages out). Set before first use.
	ExemplarMaxAge time.Duration

	mu        sync.Mutex
	count     uint64
	sumMS     float64
	maxMS     float64
	buckets   [logBucketCount + 1]uint64
	exemplars [logBucketCount + 1]exemplarSlot

	// now is a test hook; nil means time.Now.
	now func() time.Time
}

func (h *LogHist) clock() time.Time {
	if h.now != nil {
		return h.now()
	}
	return time.Now()
}

// Observe records a duration with an optional exemplar trace ID.
func (h *LogHist) Observe(d time.Duration, traceID string) {
	h.ObserveMS(float64(d)/float64(time.Millisecond), traceID)
}

// ObserveMS records a raw millisecond (or dimensionless) value.
func (h *LogHist) ObserveMS(ms float64, traceID string) {
	if ms < 0 || math.IsNaN(ms) {
		ms = 0
	}
	i := logBucketFor(ms)
	h.mu.Lock()
	h.count++
	h.sumMS += ms
	if ms > h.maxMS {
		h.maxMS = ms
	}
	h.buckets[i]++
	if traceID != "" {
		h.exemplars[i] = exemplarSlot{e: Exemplar{TraceID: traceID, ValueMS: ms}, at: h.clock()}
	}
	h.mu.Unlock()
}

// Snapshot returns an immutable copy with empty buckets elided. Exemplars
// older than ExemplarMaxAge (default DefaultExemplarMaxAge) are omitted: a
// bucket that has seen thousands of fresh observations must not stay
// decorated with a trace ID from hours ago that nothing can resolve.
func (h *LogHist) Snapshot() Histogram {
	maxAge := h.ExemplarMaxAge
	if maxAge <= 0 {
		maxAge = DefaultExemplarMaxAge
	}
	cutoff := h.clock().Add(-maxAge)
	h.mu.Lock()
	defer h.mu.Unlock()
	out := Histogram{Count: h.count, SumMS: h.sumMS, MaxMS: h.maxMS}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := HistBucket{Count: n}
		if i < logBucketCount {
			b.LeMS = logBoundsMS[i]
		}
		if s := h.exemplars[i]; s.e.TraceID != "" && !s.at.Before(cutoff) {
			ex := s.e
			b.Exemplar = &ex
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}
