// Command ccserve exposes the curing pipeline as an HTTP service: clients
// POST C sources and get back pointer-kind statistics, diagnostics, and
// (optionally) the result of executing the cured program in a chosen mode.
//
//	ccserve [-addr :8080] [-j N] [-cache N] [-step-limit N] [-timeout D]
//	        [-queue-depth N] [-coalesce] [-client-header NAME]
//
// Endpoints:
//
//	POST /cure                cure (and optionally run) a source; see CureRequest
//	GET  /events              live job/trap events as Server-Sent Events
//	GET  /metrics             pipeline metrics snapshot as JSON
//	GET  /metrics/prometheus  the same counters in Prometheus text format
//	                          (OpenMetrics with exemplars when the Accept
//	                          header asks for application/openmetrics-text)
//	GET  /traces              recent request traces (summaries, newest first)
//	GET  /traces/{id}         one request trace as Chrome trace-event JSON
//	GET  /healthz             liveness (process is up)
//	GET  /readyz              readiness (corpus loaded, store opened, pool started)
//	GET  /corpus              list the built-in corpus programs
//	GET  /corpus/{name}       fetch one corpus program (source and metadata)
//	GET  /debug/vars          expvar, including the pipeline metrics
//	GET  /debug/pprof/        Go profiling (only with -pprof)
//
// Every request is logged as one structured (slog JSON) line with a request
// ID, method, path, status, and duration; /cure lines additionally carry
// the trace ID, mode, cache tier, and a trap summary. Every /cure response
// carries its trace ID (body field and X-Trace-Id header); clients may
// supply their own W3C-shaped 16-hex ID via either to correlate traces
// across systems.
//
// The pipeline runs behind admission control: at most -queue-depth jobs
// wait for worker slots, fair-queued per client (the -client-header value,
// default X-Client-Id, falling back to the remote address). Excess load is
// rejected with 429 and a Retry-After header computed from the queue depth
// and the observed service rate; identical concurrent requests coalesce
// onto one execution (-coalesce, on by default).
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// are drained before exit.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"gocured"
	"gocured/internal/corpus"
	"gocured/internal/flight"
	"gocured/internal/interp"
	"gocured/internal/pipeline"
	"gocured/internal/trace"
)

// CureRequest is the POST /cure body.
type CureRequest struct {
	// Name labels the translation unit in diagnostics (default "input.c").
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`

	// TraceID, when set, must be a 16-hex-digit trace ID; the job's spans,
	// events, and log lines carry it (default: the server assigns one). The
	// X-Trace-Id request header is an equivalent, lower-priority channel.
	TraceID string `json:"trace_id,omitempty"`

	Options struct {
		NoRTTI              bool `json:"no_rtti,omitempty"`
		NoPhysicalSubtyping bool `json:"no_physical_subtyping,omitempty"`
		TrustBadCasts       bool `json:"trust_bad_casts,omitempty"`
		ForceSplitAll       bool `json:"force_split_all,omitempty"`
		NoOptimize          bool `json:"no_optimize,omitempty"`
	} `json:"options,omitempty"`

	// Run requests execution after curing; Mode defaults to "cured".
	Run       bool     `json:"run,omitempty"`
	Mode      string   `json:"mode,omitempty"`
	Stdin     string   `json:"stdin,omitempty"`
	Args      []string `json:"args,omitempty"`
	StepLimit uint64   `json:"step_limit,omitempty"`
	// Trace enables the flight recorder for the run: the response carries
	// the Chrome trace-event JSON and, on a trap, the black-box snapshot.
	Trace bool `json:"trace,omitempty"`
	// ProfilePeriod enables step-sampling profiling at the given period
	// (interpreter steps per sample; 0 = off).
	ProfilePeriod int `json:"profile_period,omitempty"`
	// Backend selects the interpreter backend for the run: "vm" (default)
	// or "tree". Results are bit-identical; "tree" is the reference oracle.
	Backend string `json:"backend,omitempty"`
}

// CureResponse is the POST /cure reply.
type CureResponse struct {
	Name string `json:"name"`
	Key  string `json:"key"`
	// TraceID identifies this request's trace; GET /traces/{id} returns the
	// full span timeline while it remains in the bounded trace buffer.
	TraceID  string `json:"trace_id"`
	CacheHit bool   `json:"cache_hit"`
	// Tier is the cache tier that served the compile: "memory", "inflight",
	// "disk", or "compile".
	Tier        string        `json:"tier,omitempty"`
	Stats       gocured.Stats `json:"stats"`
	Diagnostics []string      `json:"diagnostics,omitempty"`
	// Phases is the request's span timeline (pre-order, depth-annotated):
	// queue wait, cache tier, compile phases, store I/O, and run.
	Phases []trace.Span `json:"phases,omitempty"`
	Run    *RunResponse `json:"run,omitempty"`
}

// RunResponse is the execution part of a CureResponse.
type RunResponse struct {
	Mode        string `json:"mode"`
	ExitCode    int    `json:"exit_code"`
	Stdout      string `json:"stdout"`
	Trapped     bool   `json:"trapped"`
	TrapKind    string `json:"trap_kind,omitempty"`
	TrapMessage string `json:"trap_message,omitempty"`
	// TrapPos/TrapStack/TrapBlame attribute a trap: source location, cured
	// call stack (innermost first), and the inference blame chain of the
	// pointer whose check fired.
	TrapPos   string   `json:"trap_pos,omitempty"`
	TrapStack []string `json:"trap_stack,omitempty"`
	TrapBlame []string `json:"trap_blame,omitempty"`
	Steps     uint64   `json:"steps"`
	Checks    uint64   `json:"checks"`
	SimCycles uint64   `json:"sim_cycles"`
	// HotSites are the hottest run-time check sites of the run.
	HotSites    []gocured.CheckSiteCount `json:"hot_sites,omitempty"`
	ToolReports []string                 `json:"tool_reports,omitempty"`
	// Trace is the run's flight recording in Chrome trace-event format
	// (request option "trace"); load it in Perfetto or chrome://tracing.
	Trace json.RawMessage `json:"trace,omitempty"`
	// Profile is the step-sampling profile (request option
	// "profile_period"), hottest source line first.
	Profile []gocured.ProfileLine `json:"profile,omitempty"`
	// BlackBox is the crash snapshot: the events leading up to the trap,
	// the cured call stack, and the blame chain (only for traced runs that
	// trapped).
	BlackBox *flight.BlackBox `json:"black_box,omitempty"`
}

// serverConfig bundles the serving options newServer needs.
type serverConfig struct {
	MaxBytes int64
	Logger   *slog.Logger
	Pprof    bool
	// StoreConfigured tells /readyz a persistent artifact store was
	// requested (so its absence from metrics means a failed open).
	StoreConfigured bool
	// ClientHeader names the request header that carries the fair-queue
	// client ID (empty = DefaultClientHeader). Requests without it are
	// attributed to their remote address.
	ClientHeader string
	// History, when set, enables GET /metrics/history and /debug/dash and
	// annotates metrics snapshots with SLO burn-rate statuses. The caller
	// owns its sampling loop (History.Run).
	History *pipeline.History
}

// DefaultClientHeader is the request header consulted for the fair-queue
// client ID when serverConfig.ClientHeader is empty.
const DefaultClientHeader = "X-Client-Id"

// server bundles the Runner with the HTTP handlers so tests can drive the
// mux without a listener.
type server struct {
	runner   *pipeline.Runner
	maxBytes int64
	logger   *slog.Logger
	mux      *http.ServeMux
	reqSeq   atomic.Uint64
	// ready flips once markReady declares startup finished (runner built,
	// store opened, listener launched); it gates /readyz so load balancers
	// hold traffic during boot.
	ready atomic.Bool
	// storeConfigured records whether a persistent store was requested, so
	// /readyz can distinguish "no store" from "store failed to open".
	storeConfigured bool
	// clientHeader names the header carrying the fair-queue client ID.
	clientHeader string
	// history is the metrics time series behind /metrics/history and
	// /debug/dash (nil when not configured).
	history *pipeline.History
}

func newServer(runner *pipeline.Runner, cfg serverConfig) *server {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// ready stays false until the caller (main, or a test) declares startup
	// finished via markReady; /readyz answers 503 until then.
	if cfg.ClientHeader == "" {
		cfg.ClientHeader = DefaultClientHeader
	}
	s := &server{runner: runner, maxBytes: cfg.MaxBytes, logger: cfg.Logger, mux: http.NewServeMux(),
		storeConfigured: cfg.StoreConfigured, clientHeader: cfg.ClientHeader, history: cfg.History}
	s.mux.HandleFunc("/cure", s.handleCure)
	s.mux.HandleFunc("/events", s.handleEvents)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/metrics/prometheus", s.handlePrometheus)
	s.mux.HandleFunc("/metrics/history", s.handleMetricsHistory)
	s.mux.HandleFunc("/debug/dash", s.handleDash)
	s.mux.HandleFunc("/traces", s.handleTracesList)
	s.mux.HandleFunc("/traces/", s.handleTraceGet)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/corpus", s.handleCorpusList)
	s.mux.HandleFunc("/corpus/", s.handleCorpusGet)
	s.mux.Handle("/debug/vars", expvar.Handler())
	if cfg.Pprof {
		// Explicit routes rather than the net/http/pprof blank import: the
		// profiling surface exists only when asked for.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// markReady declares startup finished: /readyz's "started" check passes
// from here on. main calls it once the store, runner, and listener are all
// wired; tests call it to probe the ready state directly.
func (s *server) markReady() { s.ready.Store(true) }

// statusWriter captures the response status for the request log. Handlers
// that never call WriteHeader explicitly — net/http sends an implicit 200
// on the first Write, and the SSE path's first visible act can be a Flush —
// must still log 200, so Write and Flush latch the implicit status and
// Status() defaults to 200 for anything unset.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK // implicit 200 from first Write
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards to the underlying writer so the SSE handler's flusher
// check sees through the wrapper. Flushing headers-only also implies 200.
func (w *statusWriter) Flush() {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the response status for logging (200 when the handler
// finished without ever writing anything).
func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// ctxKey keys the per-request logger in the request context.
type ctxKey struct{}

// reqLogger returns the request-scoped logger (carrying the request ID).
func (s *server) reqLogger(r *http.Request) *slog.Logger {
	if l, ok := r.Context().Value(ctxKey{}).(*slog.Logger); ok {
		return l
	}
	return s.logger
}

// ServeHTTP assigns every request an ID, threads a request-scoped logger
// through the context, and logs one structured line when the handler
// returns.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := s.reqSeq.Add(1)
	lg := s.logger.With("req_id", id)
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	s.mux.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), ctxKey{}, lg)))
	attrs := []any{
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.Status(),
		"dur_ms", float64(time.Since(start)) / float64(time.Millisecond),
	}
	// Handlers that resolve a trace ID echo it as a response header; lift
	// it into the access log so a log line links straight to /traces/{id}.
	if tid := sw.Header().Get("X-Trace-Id"); tid != "" {
		attrs = append(attrs, "trace_id", tid)
	}
	lg.Info("request", attrs...)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the structured error reply of every non-2xx response.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

// errCode renders an HTTP status as a stable snake_case error code
// ("bad_request", "request_entity_too_large", ...).
func errCode(status int) string {
	return strings.ReplaceAll(strings.ToLower(http.StatusText(status)), " ", "_")
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Code: errCode(status)})
}

// clientID attributes a request to a fair-queue client: the client-ID
// header when present, else the remote host (sans port), so unattributed
// traffic from one address shares one lane instead of minting a client per
// connection.
func (s *server) clientID(r *http.Request) string {
	if id := r.Header.Get(s.clientHeader); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a backoff hint as RFC 9110 Retry-After whole
// seconds, rounded up (minimum 1).
func retryAfterSeconds(d time.Duration) int64 {
	s := int64((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func (s *server) handleCure(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	// Echo a valid inbound traceparent up front so the header is on every
	// outcome, including early validation failures that never reach the
	// runner; the post-run echo below overwrites it with the job's final
	// trace-id (the same one, unless the request overrode it).
	if tid, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
		w.Header().Set("Traceparent", trace.Traceparent(tid))
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBytes)
	var req CureRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Source) == "" {
		writeError(w, http.StatusBadRequest, "missing source")
		return
	}
	name := req.Name
	if name == "" {
		name = "input.c"
	}
	mode := gocured.ModeCured
	if req.Mode != "" {
		var err error
		if mode, err = gocured.ParseMode(req.Mode); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if _, err := interp.ParseBackend(req.Backend); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	traceID := req.TraceID
	if traceID == "" {
		traceID = r.Header.Get("X-Trace-Id")
	}
	if traceID != "" && !trace.ValidID(traceID) {
		writeError(w, http.StatusBadRequest, "trace_id must be 16 or 32 lowercase hex digits, got %q", traceID)
		return
	}
	// W3C trace-context: with no explicit trace ID, adopt the trace-id of an
	// inbound traceparent header so the request keeps the caller's identity
	// end to end. Per the spec a malformed traceparent is NOT an error — the
	// trace restarts fresh (the runner mints an ID) and the discard is
	// counted for the traceparent_malformed metric.
	if traceID == "" {
		if tp := r.Header.Get("traceparent"); tp != "" {
			if tid, ok := trace.ParseTraceparent(tp); ok {
				traceID = tid
			} else {
				s.runner.CountTraceparentMalformed()
			}
		}
	}

	job := pipeline.Job{
		Name:     name,
		TraceID:  traceID,
		ClientID: s.clientID(r),
		Source:   req.Source,
		Options: gocured.Options{
			NoRTTI:              req.Options.NoRTTI,
			NoPhysicalSubtyping: req.Options.NoPhysicalSubtyping,
			TrustBadCasts:       req.Options.TrustBadCasts,
			ForceSplitAll:       req.Options.ForceSplitAll,
			NoOptimize:          req.Options.NoOptimize,
		},
		Run:  req.Run,
		Mode: mode,
		RunOptions: gocured.RunOptions{
			Stdin:         []byte(req.Stdin),
			Args:          req.Args,
			StepLimit:     req.StepLimit,
			Trace:         req.Trace,
			ProfilePeriod: req.ProfilePeriod,
			Backend:       req.Backend,
		},
	}
	start := time.Now()
	res := s.runner.Do(r.Context(), job)
	w.Header().Set("X-Trace-Id", res.TraceID)
	// Echo a traceparent on every outcome (success, shed, failure): the
	// trace-id is carried verbatim (zero-padded for 16-hex internal IDs), so
	// an upstream that minted it can match the echo to its own records.
	w.Header().Set("Traceparent", trace.Traceparent(res.TraceID))
	if res.Err != nil {
		var shed *pipeline.ShedError
		if errors.As(res.Err, &shed) {
			// Load shed: tell the client when to come back. Retry-After is
			// whole seconds (RFC 9110), rounded up so "50ms" doesn't become
			// an immediate hammering retry loop.
			w.Header().Set("Retry-After", strconv.FormatInt(retryAfterSeconds(shed.RetryAfter), 10))
			s.reqLogger(r).Warn("cure shed", "name", name, "trace_id", res.TraceID,
				"client", job.ClientID, "reason", shed.Reason, "retry_after", shed.RetryAfter.String())
			writeError(w, http.StatusTooManyRequests, "%v", res.Err)
			return
		}
		status := http.StatusUnprocessableEntity
		if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
			status = http.StatusServiceUnavailable
		}
		s.reqLogger(r).Warn("cure failed", "name", name, "trace_id", res.TraceID,
			"mode", mode.String(), "err", res.Err.Error())
		writeError(w, status, "%v", res.Err)
		return
	}
	resp := CureResponse{
		Name:        res.Name,
		Key:         res.Key.String(),
		TraceID:     res.TraceID,
		CacheHit:    res.CacheHit,
		Tier:        res.Tier,
		Stats:       res.Stats,
		Diagnostics: res.Diagnostics,
		Phases:      res.Phases,
	}
	logAttrs := []any{
		"name", name,
		"trace_id", res.TraceID,
		"mode", mode.String(),
		"cache_hit", res.CacheHit,
		"tier", res.Tier,
		"dur_ms", float64(time.Since(start)) / float64(time.Millisecond),
	}
	if res.Run != nil {
		resp.Run = &RunResponse{
			Mode:        mode.String(),
			ExitCode:    res.Run.ExitCode,
			Stdout:      res.Run.Stdout,
			Trapped:     res.Run.Trapped,
			TrapKind:    res.Run.TrapKind,
			TrapMessage: res.Run.TrapMessage,
			TrapPos:     res.Run.TrapPos,
			TrapStack:   res.Run.TrapStack,
			TrapBlame:   res.Run.TrapBlame,
			Steps:       res.Run.Steps,
			Checks:      res.Run.Checks,
			SimCycles:   res.Run.SimCycles,
			HotSites:    res.Run.TopCheckSites(5),
			ToolReports: res.Run.ToolReports,
			Trace:       json.RawMessage(res.Run.TraceJSON),
			Profile:     res.Run.Profile,
			BlackBox:    res.Run.BlackBox,
		}
		logAttrs = append(logAttrs, "trapped", res.Run.Trapped)
		if res.Run.Trapped {
			logAttrs = append(logAttrs, "trap_kind", res.Run.TrapKind, "trap_pos", res.Run.TrapPos)
		}
	}
	s.reqLogger(r).Info("cure", logAttrs...)
	writeJSON(w, http.StatusOK, resp)
}

// handleEvents streams the pipeline's live job/trap events as Server-Sent
// Events: one `event: <type>` / `data: <JobEvent JSON>` record per event,
// until the client disconnects. A slow client misses events rather than
// stalling the workers; the "seq" field exposes the gaps.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	// Open the stream immediately so clients see headers before the first
	// job event.
	fmt.Fprint(w, ": gocured event stream\n\n")
	flusher.Flush()

	ch, cancel := s.runner.Events().Subscribe(64)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			flusher.Flush()
		}
	}
}

// metricsSnapshot is the Runner snapshot annotated with the burn-rate
// engine's current SLO statuses (when a History is configured): the SLO
// view rides along in every JSON and Prometheus exposition.
func (s *server) metricsSnapshot() pipeline.Metrics {
	m := s.runner.Metrics()
	if s.history != nil {
		m.SLOs = s.history.Statuses()
	}
	return m
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// handleMetricsHistory serves the retained metrics time series as JSON:
// per-interval deltas, a window summary with exemplars, and the SLO
// statuses. ?window=5m bounds the look-back (default: full retention).
func (s *server) handleMetricsHistory(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, "metrics history is disabled")
		return
	}
	var window time.Duration
	if q := r.URL.Query().Get("window"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "bad window %q: want a Go duration like 5m", q)
			return
		}
		window = d
	}
	writeJSON(w, http.StatusOK, s.history.Dump(window))
}

// handlePrometheus serves the pipeline metrics in the Prometheus text
// exposition format. Scrapers that negotiate OpenMetrics via the Accept
// header get the OpenMetrics dialect with trace-ID exemplars on histogram
// buckets; everyone else gets classic 0.0.4 text, which must stay
// exemplar-free because its parser rejects anything after a sample value.
func (s *server) handlePrometheus(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
		pipeline.WriteOpenMetrics(w, s.metricsSnapshot())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	pipeline.WritePrometheus(w, s.metricsSnapshot())
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyCheck is one named readiness condition in the /readyz reply.
type readyCheck struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Info string `json:"info,omitempty"`
}

// handleReadyz is the readiness probe: 200 only when the corpus is loaded,
// the artifact store (when configured) opened, and the worker pool started.
// Each condition is reported individually so a failing probe says why.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	m := s.runner.Metrics()
	checks := []readyCheck{
		{Name: "started", OK: s.ready.Load()},
		{Name: "corpus_loaded", OK: len(corpus.All()) > 0,
			Info: fmt.Sprintf("%d programs", len(corpus.All()))},
		{Name: "pool_started", OK: s.runner.Workers() > 0,
			Info: fmt.Sprintf("%d workers", s.runner.Workers())},
	}
	storeOK := !s.storeConfigured || m.Store != nil
	info := "not configured"
	if s.storeConfigured {
		info = "open"
		if m.Store == nil {
			info = "configured but not open"
		}
	}
	checks = append(checks, readyCheck{Name: "store_opened", OK: storeOK, Info: info})

	status := http.StatusOK
	ready := true
	for _, c := range checks {
		if !c.OK {
			ready = false
			status = http.StatusServiceUnavailable
		}
	}
	writeJSON(w, status, struct {
		Ready  bool         `json:"ready"`
		Checks []readyCheck `json:"checks"`
	}{ready, checks})
}

// traceSummary is one row of GET /traces.
type traceSummary struct {
	TraceID string    `json:"trace_id"`
	Name    string    `json:"name"`
	Start   time.Time `json:"start"`
	DurMS   float64   `json:"dur_ms"`
	Err     string    `json:"err,omitempty"`
	Spans   int       `json:"spans"`
}

// handleTracesList lists recent request traces, newest first (?n= bounds
// the count, default 50).
func (s *server) handleTracesList(w http.ResponseWriter, r *http.Request) {
	buf := s.runner.Traces()
	if buf == nil {
		writeError(w, http.StatusNotFound, "request tracing is disabled")
		return
	}
	n := 50
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	out := []traceSummary{}
	for _, t := range buf.Recent(n) {
		out = append(out, traceSummary{TraceID: t.ID, Name: t.Name, Start: t.Start,
			DurMS: t.DurMS, Err: t.Err, Spans: len(t.Spans)})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTraceGet renders one request trace as Chrome trace-event JSON
// (load it in Perfetto or chrome://tracing). The trace ID rides in the
// root span's args.
func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	buf := s.runner.Traces()
	if buf == nil {
		writeError(w, http.StatusNotFound, "request tracing is disabled")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/traces/")
	if !trace.ValidID(id) {
		writeError(w, http.StatusBadRequest, "trace ID must be 16 or 32 lowercase hex digits, got %q", id)
		return
	}
	t, ok := buf.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no trace %q (buffer holds the most recent %d requests)",
			id, buf.Stats().Cap)
		return
	}
	args := map[string]any{"trace_id": t.ID, "name": t.Name, "start": t.Start.Format(time.RFC3339Nano)}
	if t.Err != "" {
		args["err"] = t.Err
	}
	w.Header().Set("Content-Type", "application/json")
	if err := flight.WriteSpanTrace(w, "req "+t.Name, t.Spans, args); err != nil {
		s.reqLogger(r).Warn("trace export failed", "trace_id", id, "err", err.Error())
	}
}

// corpusEntry is one row of GET /corpus.
type corpusEntry struct {
	Name          string `json:"name"`
	Category      string `json:"category"`
	Lines         int    `json:"lines"`
	TrustBadCasts bool   `json:"trust_bad_casts,omitempty"`
}

func (s *server) handleCorpusList(w http.ResponseWriter, r *http.Request) {
	var out []corpusEntry
	for _, p := range corpus.All() {
		out = append(out, corpusEntry{
			Name:          p.Name,
			Category:      p.Category,
			Lines:         gocured.CountLines(p.Source),
			TrustBadCasts: p.TrustBadCasts,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleCorpusGet(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/corpus/")
	p := corpus.ByName(name)
	if p == nil {
		writeError(w, http.StatusNotFound, "no corpus program %q", name)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		corpusEntry
		Source     string `json:"source"`
		WantStdout string `json:"want_stdout,omitempty"`
	}{
		corpusEntry: corpusEntry{
			Name:          p.Name,
			Category:      p.Category,
			Lines:         gocured.CountLines(p.Source),
			TrustBadCasts: p.TrustBadCasts,
		},
		Source:     p.Source,
		WantStdout: p.WantStdout,
	})
}

// parseSLOWindows parses the -slo-windows flag: empty means the 5m/1h and
// 30m/6h defaults; otherwise exactly four comma-separated Go durations in
// fast-short,fast-long,slow-short,slow-long order.
func parseSLOWindows(s string) (pipeline.SLOWindows, error) {
	if s == "" {
		return pipeline.DefaultSLOWindows(), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return pipeline.SLOWindows{}, fmt.Errorf("want 4 comma-separated durations, got %d", len(parts))
	}
	var ds [4]time.Duration
	for i, p := range parts {
		d, err := time.ParseDuration(strings.TrimSpace(p))
		if err != nil {
			return pipeline.SLOWindows{}, err
		}
		if d <= 0 {
			return pipeline.SLOWindows{}, fmt.Errorf("window %q must be positive", p)
		}
		ds[i] = d
	}
	return pipeline.SLOWindows{FastShort: ds[0], FastLong: ds[1], SlowShort: ds[2], SlowLong: ds[3]}, nil
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	jobs := flag.Int("j", runtime.NumCPU(), "concurrent curing/execution jobs")
	cacheEntries := flag.Int("cache", pipeline.DefaultCacheEntries, "compile cache entries (negative disables)")
	stepLimit := flag.Uint64("step-limit", 200_000_000, "default interpreter step limit per run")
	jobTimeout := flag.Duration("timeout", 60*time.Second, "wall-clock bound per job (0 = none)")
	maxBytes := flag.Int64("max-request-bytes", 1<<20, "maximum POST /cure body size")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/ profiling endpoints")
	storeDir := flag.String("store-dir", "", "persistent artifact store directory; compiles survive restarts (empty = memory cache only)")
	traceBuffer := flag.Int("trace-buffer", trace.DefaultBufferEntries, "request traces kept for GET /traces/{id} (negative disables)")
	queueDepth := flag.Int("queue-depth", 256, "admission queue bound; excess load is shed with 429 (0 = unbounded)")
	coalesce := flag.Bool("coalesce", true, "coalesce identical in-flight jobs onto one execution")
	clientHeader := flag.String("client-header", DefaultClientHeader, "request header carrying the fair-queue client ID")
	histInterval := flag.Duration("history-interval", 10*time.Second, "metrics history sampling interval (0 disables history, SLOs, and /debug/dash)")
	histRetention := flag.Duration("history-retention", time.Hour, "metrics history retention window")
	sloObjective := flag.Float64("slo-objective", 0.99, "good fraction promised by the availability and latency SLOs")
	sloP99 := flag.Duration("slo-p99", time.Second, "latency SLO target: requests should finish within this bound (0 disables the latency SLO)")
	sloWindows := flag.String("slo-windows", "", "burn-rate windows, four comma-separated durations fast-short,fast-long,slow-short,slow-long (default 5m,1h,30m,6h)")
	flag.Parse()

	windows, err := parseSLOWindows(*sloWindows)
	if err != nil {
		log.Fatalf("ccserve: -slo-windows: %v", err)
	}

	arts, err := pipeline.OpenStore(*storeDir)
	if err != nil {
		log.Fatalf("ccserve: %v", err)
	}
	runner := pipeline.NewRunner(pipeline.RunnerOptions{
		Workers:            *jobs,
		CacheEntries:       *cacheEntries,
		DefaultStepLimit:   *stepLimit,
		JobTimeout:         *jobTimeout,
		Store:              arts,
		TraceBufferEntries: *traceBuffer,
		QueueDepth:         *queueDepth,
		CoalesceJobs:       *coalesce,
	})
	expvar.Publish("gocured_pipeline", runner.ExpvarVar())

	var history *pipeline.History
	if *histInterval > 0 {
		specs := []pipeline.SLOSpec{{Name: "availability", Objective: *sloObjective}}
		if *sloP99 > 0 {
			specs = append(specs, pipeline.SLOSpec{Name: "latency", Objective: *sloObjective,
				LatencyTargetMS: float64(*sloP99) / float64(time.Millisecond)})
		}
		history = pipeline.NewHistory(pipeline.HistoryOptions{
			Source:    runner.Metrics,
			Interval:  *histInterval,
			Retention: *histRetention,
			SLOs:      specs,
			Windows:   windows,
			Bus:       runner.Events(),
		})
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	app := newServer(runner, serverConfig{MaxBytes: *maxBytes, Logger: logger,
		Pprof: *pprofFlag, StoreConfigured: *storeDir != "", ClientHeader: *clientHeader,
		History: history})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           app,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if history != nil {
		go history.Run(ctx)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	// Store, runner, and listener are wired; let /readyz admit traffic.
	app.markReady()
	log.Printf("ccserve listening on %s (%d workers, %s version %s)",
		*addr, runner.Workers(), "gocured", gocured.Version)
	if arts != nil {
		st := arts.Store().Stats()
		log.Printf("ccserve: artifact store %s (%d chunks, %d bytes)", *storeDir, st.Chunks, st.Bytes)
	}

	select {
	case err := <-errCh:
		log.Fatalf("ccserve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("ccserve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("ccserve: shutdown: %v", err)
		}
	}
}
