package pipeline

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"gocured"
	"gocured/internal/trace"
)

// waitCond polls cond until it holds or the timeout lapses.
func waitCond(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// uniqueSource returns a compilable unit no other test job shares, so the
// compile cache and the coalescer both see a distinct identity.
func uniqueSource(tag string, n int) string {
	return fmt.Sprintf("int main(void) { int x = %d; return x &%d; /* %s */ }\n", n, n%7+1, tag)
}

// drainGate keeps releasing every execution that reaches the gate until
// the returned stop function is called — for test phases where the order
// of dispatch no longer matters and the pool should just drain.
func drainGate(g *StallGate) (stop func()) {
	done := make(chan struct{})
	go func() {
		for {
			g.ReleaseAll()
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	return func() { close(done) }
}

// primeSvc feeds the admitter's service-time estimator directly so
// deadline-shedding tests don't depend on real compile timings.
func primeSvc(r *Runner, d time.Duration) {
	for i := 0; i < svcMinSamples; i++ {
		r.adm.svc.observe(d)
	}
}

// TestAdmissionQueueFullShed pins the bounded-queue policy: with the one
// worker wedged and the queue at capacity, the next arrival is rejected
// with ShedQueueFull and a positive Retry-After, and the rejection never
// touches the queue gauges or wait histograms.
func TestAdmissionQueueFullShed(t *testing.T) {
	gate := NewStallGate()
	r := NewRunner(RunnerOptions{
		Workers:    1,
		QueueDepth: 2,
		Faults:     &Faults{ExecGate: gate.Gate},
	})
	ctx := context.Background()

	done := make(chan *JobResult, 3)
	submit := func(i int) {
		go func() {
			done <- r.Do(ctx, Job{Name: "q.c", Source: uniqueSource("qfull", i)})
		}()
	}
	// One job occupies the worker (stalled at the gate), two fill the queue.
	submit(0)
	if !gate.WaitArrived(1, 5*time.Second) {
		t.Fatal("first job never reached the worker")
	}
	submit(1)
	submit(2)
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().QueueDepthNow == 2 }, "queue depth 2")

	// The fourth arrival must shed, synchronously.
	res := r.Do(ctx, Job{Name: "shed.c", Source: uniqueSource("qfull", 3)})
	var shed *ShedError
	if !errors.As(res.Err, &shed) {
		t.Fatalf("expected ShedError, got %v", res.Err)
	}
	if shed.Reason != ShedQueueFull {
		t.Fatalf("shed reason = %q, want %q", shed.Reason, ShedQueueFull)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("Retry-After = %v, want > 0", shed.RetryAfter)
	}
	if !strings.Contains(res.Err.Error(), res.TraceID) {
		t.Fatalf("shed error %q does not carry trace ID %s", res.Err, res.TraceID)
	}

	m := r.Metrics()
	if m.Shed != 1 || m.ShedByReason[ShedQueueFull] != 1 {
		t.Fatalf("shed counters = %d/%v, want 1/queue_full:1", m.Shed, m.ShedByReason)
	}
	if m.ShedExemplar == nil || m.ShedExemplar.TraceID != res.TraceID {
		t.Fatalf("shed exemplar = %+v, want trace %s", m.ShedExemplar, res.TraceID)
	}
	if m.QueueDepthNow != 2 {
		t.Fatalf("shed touched the queue gauge: depth %d, want 2", m.QueueDepthNow)
	}

	stop := drainGate(gate)
	defer stop()
	for i := 0; i < 3; i++ {
		if res := <-done; res.Err != nil {
			t.Fatalf("admitted job failed: %v", res.Err)
		}
	}
	// Stragglers released from the gate may still be draining; gauges must
	// settle to zero.
	waitCond(t, 5*time.Second, func() bool {
		m := r.Metrics()
		return m.QueueDepthNow == 0 && m.JobsInFlight == 0
	}, "gauges to settle")
	m = r.Metrics()
	if m.Admitted != 3 {
		t.Fatalf("admitted = %d, want 3", m.Admitted)
	}
	if m.QueueWait.Count != 3 {
		t.Fatalf("QueueWait recorded %d observations, want 3 (admitted only)", m.QueueWait.Count)
	}
}

// TestAdmissionDeadlineShed pins deadline-aware rejection: once the
// estimator knows p50 service time, a job whose remaining deadline cannot
// cover it is shed instead of queued — and without enough samples the
// policy never fires (a cold server must not reject on garbage estimates).
func TestAdmissionDeadlineShed(t *testing.T) {
	gate := NewStallGate()
	r := NewRunner(RunnerOptions{Workers: 1, QueueDepth: 8, Faults: &Faults{ExecGate: gate.Gate}})

	// Cold estimator: a short deadline alone must not shed (the job should
	// queue/admit normally while the worker is free).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan *JobResult, 1)
	go func() { done <- r.Do(ctx, Job{Name: "cold.c", Source: uniqueSource("dl", 0)}) }()
	if !gate.WaitArrived(1, 5*time.Second) {
		t.Fatal("cold-estimator job never admitted")
	}

	// Prime p50 = 50ms; with the worker occupied, a 5ms-deadline job must
	// shed with reason "deadline" before entering the queue.
	primeSvc(r, 50*time.Millisecond)
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel2()
	res := r.Do(shortCtx, Job{Name: "late.c", Source: uniqueSource("dl", 1)})
	var shed *ShedError
	if !errors.As(res.Err, &shed) || shed.Reason != ShedDeadline {
		t.Fatalf("expected deadline shed, got %v", res.Err)
	}
	// Retry-After derives from queue drain time at p50: (queued+1)/workers
	// * p50 = 50ms with an empty queue.
	if shed.RetryAfter != 50*time.Millisecond {
		t.Fatalf("Retry-After = %v, want 50ms", shed.RetryAfter)
	}
	if m := r.Metrics(); m.ShedByReason[ShedDeadline] != 1 {
		t.Fatalf("shed_by_reason = %v, want deadline:1", m.ShedByReason)
	}

	// A job with a comfortable deadline still queues.
	okCtx, cancel3 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel3()
	done2 := make(chan *JobResult, 1)
	go func() { done2 <- r.Do(okCtx, Job{Name: "fine.c", Source: uniqueSource("dl", 2)}) }()
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().QueueDepthNow == 1 }, "queued job")

	gate.Release(1)
	if res := <-done; res.Err != nil {
		t.Fatalf("cold job failed: %v", res.Err)
	}
	// The queued job only reaches the gate after the first frees the slot.
	if !gate.WaitArrived(2, 5*time.Second) {
		t.Fatal("queued job never dispatched")
	}
	gate.Release(1)
	if res := <-done2; res.Err != nil {
		t.Fatalf("queued job failed: %v", res.Err)
	}
}

// TestAdmissionFairness is the property-style fairness test: K clients
// with skewed offered load and skewed weights enqueue under a wedged
// worker in a seed-randomized interleaving; dispatch order must give every
// backlogged client at least its weight share minus tolerance, and every
// client must make progress early (no starvation).
func TestAdmissionFairness(t *testing.T) {
	type clientSpec struct {
		id     string
		weight int
		jobs   int
	}
	specs := []clientSpec{
		{"heavy", 2, 12}, // entitled to 1/2 of slots while backlogged
		{"light", 1, 4},  // 1/4
		{"tiny", 1, 4},   // 1/4
	}
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			gate := NewStallGate()
			var mu sync.Mutex
			var grantOrder []string
			weights := map[string]int{}
			total := 0
			for _, s := range specs {
				weights[s.id] = s.weight
				total += s.jobs
			}
			r := NewRunner(RunnerOptions{
				Workers:       1,
				ClientWeights: weights,
				Faults: &Faults{
					OnExecute: func(job Job) {
						mu.Lock()
						grantOrder = append(grantOrder, job.ClientID)
						mu.Unlock()
					},
					ExecGate: gate.Gate,
				},
			})
			ctx := context.Background()

			// Wedge the worker with a plug job so every client job queues.
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				r.Do(ctx, Job{Name: "plug.c", ClientID: "plug", Source: uniqueSource("plug", int(seed))})
			}()
			if !gate.WaitArrived(1, 5*time.Second) {
				t.Fatal("plug job never started")
			}

			// Seed-randomized interleaving of the offered load, enqueued one
			// at a time (each submission observed in the queue gauge before
			// the next) so the arrival order is exactly the shuffled order.
			rng := rand.New(rand.NewSource(seed))
			var arrivals []string
			for _, s := range specs {
				for i := 0; i < s.jobs; i++ {
					arrivals = append(arrivals, s.id)
				}
			}
			rng.Shuffle(len(arrivals), func(i, j int) { arrivals[i], arrivals[j] = arrivals[j], arrivals[i] })
			for i, id := range arrivals {
				i, id := i, id
				wg.Add(1)
				go func() {
					defer wg.Done()
					res := r.Do(ctx, Job{Name: id + ".c", ClientID: id,
						Source: uniqueSource(id, i+1000*int(seed))})
					if res.Err != nil {
						t.Errorf("client %s job failed: %v", id, res.Err)
					}
				}()
				want := int64(i + 1)
				waitCond(t, 5*time.Second, func() bool { return r.Metrics().QueueDepthNow == want },
					fmt.Sprintf("enqueue %d", i+1))
			}

			// Per-client depths are now visible in the metrics snapshot.
			m := r.Metrics()
			for _, s := range specs {
				if m.ClientQueueDepths[s.id] != s.jobs {
					t.Fatalf("client %s queue depth = %d, want %d (%v)",
						s.id, m.ClientQueueDepths[s.id], s.jobs, m.ClientQueueDepths)
				}
			}

			// Step the scheduler one completed job at a time: each release
			// frees the slot, the admitter dispatches exactly one waiter, and
			// that waiter's arrival at the gate appends to grantOrder.
			gate.Release(1) // plug finishes
			for i := 0; i < total; i++ {
				if !gate.WaitArrived(2+i, 5*time.Second) {
					t.Fatalf("dispatch %d never reached the gate", i+1)
				}
				gate.Release(1)
			}
			wg.Wait()

			mu.Lock()
			order := append([]string(nil), grantOrder...)
			mu.Unlock()
			// The plug executes first and is not part of the fairness load.
			if len(order) != total+1 || order[0] != "plug" {
				t.Fatalf("granted %d jobs (first %q), want %d led by the plug",
					len(order), order[0], total)
			}
			order = order[1:]

			// No starvation: every client is dispatched within the first
			// K+2 grants (SFQ guarantees each backlogged client a slot per
			// virtual round).
			first := map[string]int{}
			for i, id := range order {
				if _, ok := first[id]; !ok {
					first[id] = i
				}
			}
			for _, s := range specs {
				idx, ok := first[s.id]
				if !ok {
					t.Fatalf("client %s starved entirely (order %v)", s.id, order)
				}
				if idx > len(specs)+2 {
					t.Errorf("client %s first dispatched at position %d (order %v)", s.id, idx, order)
				}
			}

			// Fair share while all clients stay backlogged: light and tiny
			// hold 4 jobs each, so for the first 16 grants every client has
			// work queued. Each client's share must be at least its weight
			// fraction minus a one-slot-per-round tolerance.
			window := 16
			counts := map[string]int{}
			for _, id := range order[:window] {
				counts[id]++
			}
			for _, s := range specs {
				share := window * s.weight / (s.weight + 2) // total weight = 4
				min := share - 2
				if counts[s.id] < min {
					t.Errorf("client %s got %d of first %d grants, want >= %d (order %v)",
						s.id, counts[s.id], window, min, order)
				}
			}
		})
	}
}

// TestCoalescingRace is the coalescing correctness test: N concurrent
// identical run jobs must cost exactly one execution, every caller must
// receive a bit-identical payload, and the follower envelopes must say so.
func TestCoalescingRace(t *testing.T) {
	const n = 32
	gate := NewStallGate()
	tracker := &ExecTracker{}
	r := NewRunner(RunnerOptions{
		Workers:            4,
		CoalesceJobs:       true,
		TraceBufferEntries: 2 * n,
		Faults: &Faults{
			OnExecute: tracker.Begin,
			OnDone:    tracker.End,
			ExecGate:  gate.Gate,
		},
	})

	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: "same.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured,
			TraceID: trace.NewID()}
	}
	resCh := make(chan []*JobResult, 1)
	go func() { resCh <- BurstDo(context.Background(), r, jobs) }()

	// Hold the single leader execution at the gate until every follower has
	// joined the flight, so the race window is maximally wide.
	if !gate.WaitArrived(1, 5*time.Second) {
		t.Fatal("leader never started executing")
	}
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().Coalesced == n-1 }, "followers to join")
	gate.ReleaseAll()

	results := <-resCh
	var leader *JobResult
	followers := 0
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %d failed: %v", i, res.Err)
		}
		if res.Run == nil {
			t.Fatalf("job %d missing run result", i)
		}
		if res.Tier == "coalesced" {
			followers++
			if !res.CacheHit {
				t.Errorf("follower %d not marked CacheHit", i)
			}
		} else {
			leader = res
		}
	}
	if followers != n-1 || leader == nil {
		t.Fatalf("got %d followers of %d jobs, want %d and one leader", followers, n, n-1)
	}
	for i, res := range results {
		// Bit-identical payloads: same content address and identical
		// execution observables.
		if res.Key != leader.Key {
			t.Fatalf("job %d key %s != leader %s", i, res.Key, leader.Key)
		}
		if res.Run.Stdout != leader.Run.Stdout || res.Run.ExitCode != leader.Run.ExitCode ||
			res.Run.Steps != leader.Run.Steps || res.Run.Checks != leader.Run.Checks {
			t.Fatalf("job %d run result diverges from leader", i)
		}
		// Every caller keeps its own trace identity even when the execution
		// was shared: the response must echo the id the caller sent (the
		// trace-context round-trip contract).
		if res.TraceID != jobs[i].TraceID {
			t.Fatalf("job %d trace %s != its own job trace %s", i, res.TraceID, jobs[i].TraceID)
		}
	}
	// Follower traces are queryable stubs that name the leader's trace, so
	// the shared execution stays reachable from either id.
	for i, res := range results {
		if res.Tier != "coalesced" {
			continue
		}
		rt, ok := r.Traces().Get(res.TraceID)
		if !ok {
			t.Fatalf("follower %d trace %s not in buffer", i, res.TraceID)
		}
		if len(rt.Spans) != 1 || !strings.Contains(rt.Spans[0].Name, leader.TraceID) {
			t.Fatalf("follower %d stub trace spans = %+v, want one span naming leader trace %s",
				i, rt.Spans, leader.TraceID)
		}
	}
	if got := tracker.Total(); got != 1 {
		t.Fatalf("%d executions for %d identical jobs, want exactly 1", got, n)
	}
	if m := r.Metrics(); m.Coalesced != n-1 {
		t.Fatalf("coalesced counter = %d, want %d", m.Coalesced, n-1)
	}
}

// TestCoalescingWaiterCancel pins the shared-execution lifecycle: a
// mid-flight cancellation of one waiter must not cancel the execution the
// other participants are waiting on.
func TestCoalescingWaiterCancel(t *testing.T) {
	gate := NewStallGate()
	tracker := &ExecTracker{}
	r := NewRunner(RunnerOptions{
		Workers:      2,
		CoalesceJobs: true,
		Faults:       &Faults{OnExecute: tracker.Begin, OnDone: tracker.End, ExecGate: gate.Gate},
	})
	job := Job{Name: "shared.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured}

	leaderDone := make(chan *JobResult, 1)
	go func() { leaderDone <- r.Do(context.Background(), job) }()
	if !gate.WaitArrived(1, 5*time.Second) {
		t.Fatal("execution never started")
	}

	cancelCtx, cancel := context.WithCancel(context.Background())
	cancelledDone := make(chan *JobResult, 1)
	go func() { cancelledDone <- r.Do(cancelCtx, job) }()
	survivorDone := make(chan *JobResult, 1)
	go func() { survivorDone <- r.Do(context.Background(), job) }()
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().Coalesced == 2 }, "both followers to join")

	// Cancel one follower mid-flight: it must return promptly with the
	// context error while the execution keeps running for everyone else.
	cancel()
	res := <-cancelledDone
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v, want context.Canceled", res.Err)
	}
	if tracker.Current() != 1 {
		t.Fatalf("shared execution stopped when one waiter cancelled")
	}

	gate.ReleaseAll()
	for _, ch := range []chan *JobResult{leaderDone, survivorDone} {
		if res := <-ch; res.Err != nil {
			t.Fatalf("surviving participant failed: %v", res.Err)
		}
	}
	if got := tracker.Total(); got != 1 {
		t.Fatalf("%d executions, want 1", got)
	}
}

// TestQueueCancelStorm is the queue-accounting regression test: when half
// the queued callers abandon the queue at once, the depth gauge must track
// exactly, settle to zero, and the QueueWait/QueueDepth histograms must
// record admitted jobs only.
func TestQueueCancelStorm(t *testing.T) {
	const queued = 16
	gate := NewStallGate()
	r := NewRunner(RunnerOptions{Workers: 1, Faults: &Faults{ExecGate: gate.Gate}})
	ctx := context.Background()

	plugDone := make(chan *JobResult, 1)
	go func() {
		plugDone <- r.Do(ctx, Job{Name: "plug.c", Source: uniqueSource("storm", 0)})
	}()
	if !gate.WaitArrived(1, 5*time.Second) {
		t.Fatal("plug never started")
	}

	type waiter struct {
		cancel context.CancelFunc
		done   chan *JobResult
	}
	waiters := make([]waiter, queued)
	for i := range waiters {
		wctx, cancel := context.WithCancel(ctx)
		done := make(chan *JobResult, 1)
		waiters[i] = waiter{cancel, done}
		i := i
		go func() {
			done <- r.Do(wctx, Job{Name: "w.c", Source: uniqueSource("storm", i+1)})
		}()
	}
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().QueueDepthNow == queued },
		"all waiters queued")

	// Burst cancel storm: every even waiter abandons the queue at once.
	for i := 0; i < queued; i += 2 {
		waiters[i].cancel()
	}
	for i := 0; i < queued; i += 2 {
		if res := <-waiters[i].done; !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("cancelled waiter %d returned %v", i, res.Err)
		}
	}
	if depth := r.Metrics().QueueDepthNow; depth != queued/2 {
		t.Fatalf("queue depth after cancel storm = %d, want %d", depth, queued/2)
	}

	// Drain the survivors; dispatch order among them no longer matters.
	stop := drainGate(gate)
	defer stop()
	if res := <-plugDone; res.Err != nil {
		t.Fatalf("plug failed: %v", res.Err)
	}
	for i := 1; i < queued; i += 2 {
		if res := <-waiters[i].done; res.Err != nil {
			t.Fatalf("surviving waiter %d failed: %v", i, res.Err)
		}
	}

	waitCond(t, 5*time.Second, func() bool {
		m := r.Metrics()
		return m.QueueDepthNow == 0 && m.JobsInFlight == 0
	}, "gauges to settle")
	m := r.Metrics()
	wantAdmitted := uint64(1 + queued/2) // plug + survivors
	if m.Admitted != wantAdmitted {
		t.Fatalf("admitted = %d, want %d", m.Admitted, wantAdmitted)
	}
	if m.QueueWait.Count != wantAdmitted {
		t.Fatalf("QueueWait recorded %d observations, want %d (admitted only, never cancelled jobs)",
			m.QueueWait.Count, wantAdmitted)
	}
	if m.QueueDepth.Count != wantAdmitted {
		t.Fatalf("QueueDepth recorded %d observations, want %d", m.QueueDepth.Count, wantAdmitted)
	}
}

// TestTimeoutReleasesSlotOnce is the slot-leak regression test: a job that
// times out while its execution is wedged must return its worker slot
// exactly once — after the execution actually stops — and the in-flight
// gauge must decrement exactly once.
func TestTimeoutReleasesSlotOnce(t *testing.T) {
	gate := NewStallGate()
	tracker := &ExecTracker{}
	r := NewRunner(RunnerOptions{
		Workers:    1,
		JobTimeout: 30 * time.Millisecond,
		Faults:     &Faults{OnExecute: tracker.Begin, OnDone: tracker.End, ExecGate: gate.Gate},
	})
	ctx := context.Background()

	res := r.Do(ctx, Job{Name: "wedged.c", Source: uniqueSource("leak", 0)})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "timed out") {
		t.Fatalf("expected timeout error, got %v", res.Err)
	}
	// The caller is gone but the execution still occupies the slot: the
	// in-flight gauge must show it, and a second job must queue, not run.
	if m := r.Metrics(); m.JobsInFlight != 1 || m.JobsTimedOut != 1 {
		t.Fatalf("after timeout: in-flight %d timed-out %d, want 1/1", m.JobsInFlight, m.JobsTimedOut)
	}
	done2 := make(chan *JobResult, 1)
	go func() {
		done2 <- r.Do(ctx, Job{Name: "next.c", Source: uniqueSource("leak", 1), Timeout: 5 * time.Second})
	}()
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().QueueDepthNow == 1 }, "second job to queue")
	if tracker.Total() != 1 {
		t.Fatalf("second job executed while the slot was wedged")
	}

	// Unwedge: the abandoned execution finishes, releases its slot exactly
	// once, and the queued job runs.
	gate.Release(1)
	if !gate.WaitArrived(2, 5*time.Second) {
		t.Fatal("queued job never got the released slot")
	}
	gate.Release(1)
	if res := <-done2; res.Err != nil {
		t.Fatalf("second job failed: %v", res.Err)
	}
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().JobsInFlight == 0 }, "in-flight to settle")
	if peak := tracker.Peak(); peak != 1 {
		t.Fatalf("peak concurrency %d on a 1-worker pool: slot released more than once", peak)
	}
	m := r.Metrics()
	if m.Admitted != 2 || m.JobsRun != 2 {
		t.Fatalf("admitted %d run %d, want 2/2", m.Admitted, m.JobsRun)
	}
}

// TestWedgedStore drives the wedged-artifact-store fault: a compile whose
// store reads hang occupies its worker slot (backpressure, not collapse),
// queues later arrivals, and completes once the store unwedges.
func TestWedgedStore(t *testing.T) {
	wedge := make(chan struct{})
	r := NewRunner(RunnerOptions{
		Workers: 1,
		Store:   openArtifacts(t, t.TempDir()),
		Faults: &Faults{
			WrapSummaries: func(src gocured.SummarySource) gocured.SummarySource {
				return &WedgeSource{Inner: src, Gate: wedge}
			},
		},
	})
	ctx := context.Background()

	done := make(chan *JobResult, 1)
	go func() {
		done <- r.Do(ctx, Job{Name: "wedge.c", Source: uniqueSource("wedge", 0)})
	}()
	// The compile must be stuck inside inference (slot held, nothing
	// finished), and a second arrival must queue behind it.
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().JobsInFlight == 1 }, "compile to start")
	done2 := make(chan *JobResult, 1)
	go func() {
		done2 <- r.Do(ctx, Job{Name: "behind.c", Source: uniqueSource("wedge", 1)})
	}()
	waitCond(t, 5*time.Second, func() bool { return r.Metrics().QueueDepthNow == 1 }, "second job to queue")
	select {
	case res := <-done:
		t.Fatalf("compile finished with the store wedged: %+v", res.Err)
	case <-time.After(50 * time.Millisecond):
	}

	close(wedge)
	for _, ch := range []chan *JobResult{done, done2} {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("job failed after unwedging: %v", res.Err)
		}
		if res.CacheHit {
			t.Fatalf("expected a real compile, got cache hit")
		}
	}
	if m := r.Metrics(); m.QueueDepthNow != 0 || m.JobsInFlight != 0 {
		t.Fatalf("gauges did not settle: %+v", m)
	}
}

// TestAdmitterSFQDispatchOrder pins the scheduler's dispatch order at the
// unit level: smallest finish tag first, enqueue order breaking ties, and
// the weighted client draining proportionally faster.
func TestAdmitterSFQDispatchOrder(t *testing.T) {
	m := newMetrics()
	a := newAdmitter(1, 0, map[string]int{"w2": 2}, m)

	// Occupy the only slot so everything queues.
	if _, err := a.admit(context.Background(), "plug", "t0"); err != nil {
		t.Fatal(err)
	}

	type admitRes struct {
		id  string
		err error
	}
	grants := make(chan admitRes, 8)
	// enqueue submits one waiter and blocks until the admitter has queued
	// it, so arrival order (and therefore seq tie-breaking) is exact.
	enqueue := func(id string, wantQueued int) {
		go func() {
			_, err := a.admit(context.Background(), id, "t-"+id)
			grants <- admitRes{id, err}
		}()
		waitCond(t, 5*time.Second, func() bool {
			a.mu.Lock()
			q := a.queued
			a.mu.Unlock()
			return q == wantQueued
		}, fmt.Sprintf("waiter %d to queue", wantQueued))
	}

	// Enqueue deterministically: w2, w2, w1, w1.
	for i, id := range []string{"w2", "w2", "w1", "w1"} {
		enqueue(id, i+1)
	}

	// Finish tags: w2 jobs at 0.5, 1.0; w1 jobs at 1.0, 2.0. Expected
	// dispatch: w2 (0.5), then w2 (1.0, earlier seq than w1's 1.0), then
	// w1 (1.0), then w1 (2.0).
	want := []string{"w2", "w2", "w1", "w1"}
	for i, wantID := range want {
		a.release(10 * time.Millisecond)
		got := <-grants
		if got.err != nil {
			t.Fatalf("grant %d errored: %v", i, got.err)
		}
		if got.id != wantID {
			t.Fatalf("grant %d went to %s, want %s", i, got.id, wantID)
		}
	}
	// All slots drain; idle clients are forgotten.
	for i := 0; i < len(want); i++ {
		a.release(10 * time.Millisecond)
	}
	if depths := a.ClientDepths(); len(depths) != 0 {
		t.Fatalf("client depths not empty after drain: %v", depths)
	}
}

// TestAdmissionPromFamilies checks the exposition contract for the new
// admission families: always declared, shed-by-reason covering both
// reasons, and the shed exemplar present only in the OpenMetrics dialect.
func TestAdmissionPromFamilies(t *testing.T) {
	r := NewRunner(RunnerOptions{Workers: 1, QueueDepth: 3})
	m := r.Metrics()
	m.Shed = 2
	m.ShedByReason = map[string]uint64{ShedQueueFull: 2}
	m.ShedExemplar = &Exemplar{TraceID: "00000000deadbeef", ValueMS: 1}
	m.Coalesced = 5
	m.ClientQueueDepths = map[string]int{"tenant-a": 3}

	var prom, om strings.Builder
	WritePrometheus(&prom, m)
	WriteOpenMetrics(&om, m)

	for _, want := range []string{
		"gocured_queue_limit 3",
		"gocured_admitted_total 0",
		"gocured_shed_total 2",
		`gocured_shed_by_reason_total{reason="deadline"} 0`,
		`gocured_shed_by_reason_total{reason="queue_full"} 2`,
		"gocured_coalesced_total 5",
		`gocured_client_queue_depth{client="tenant-a"} 3`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("classic exposition missing %q", want)
		}
		if !strings.Contains(om.String(), want) {
			t.Errorf("OpenMetrics exposition missing %q", want)
		}
	}
	// Exemplars are OpenMetrics-only: the 0.0.4 parser rejects suffixes.
	if strings.Contains(prom.String(), "# {") {
		t.Error("classic exposition carries exemplars")
	}
	if !strings.Contains(om.String(), `gocured_shed_total 2 # {trace_id="00000000deadbeef"}`) {
		t.Error("OpenMetrics shed counter missing its exemplar")
	}
}

// TestCoalesceKeyIdentity pins the coalescing identity: jobs may share an
// execution only when a cache hit could serve both the same payload, so
// every option that changes the payload must split the key.
func TestCoalesceKeyIdentity(t *testing.T) {
	base := Job{Name: "a.c", Source: tinyOK, Run: true, Mode: gocured.ModeCured}
	same := base
	if coalesceKey(base) != coalesceKey(same) {
		t.Fatal("identical jobs produced different coalesce keys")
	}
	vary := []func(*Job){
		func(j *Job) { j.Source = tinyOK + " " },
		func(j *Job) { j.Name = "b.c" },
		func(j *Job) { j.Options.NoOptimize = true },
		func(j *Job) { j.Run = false },
		func(j *Job) { j.Mode = gocured.ModeRaw },
		func(j *Job) { j.RunOptions.Stdin = []byte("x") },
		func(j *Job) { j.RunOptions.Args = []string{"x"} },
		func(j *Job) { j.RunOptions.StepLimit = 7 },
		func(j *Job) { j.RunOptions.Trace = true },
		func(j *Job) { j.RunOptions.ProfilePeriod = 100 },
		func(j *Job) { j.RunOptions.Backend = "tree" },
	}
	for i, f := range vary {
		j := base
		f(&j)
		if coalesceKey(j) == coalesceKey(base) {
			t.Errorf("variation %d did not change the coalesce key", i)
		}
	}
	// ClientID and TraceID are envelope, not payload: they must coalesce.
	j := base
	j.ClientID = "tenant-a"
	j.TraceID = "00000000deadbeef"
	if coalesceKey(j) != coalesceKey(base) {
		t.Error("client/trace identity split the coalesce key")
	}
}

// TestBurstArrivalAccounting drives the burst arrival pattern end to end
// on a tiny pool with the workers stalled, so the outcome is exact: the
// pool holds Workers + QueueDepth jobs and every other arrival sheds.
func TestBurstArrivalAccounting(t *testing.T) {
	const n = 24
	gate := NewStallGate()
	r := NewRunner(RunnerOptions{Workers: 2, QueueDepth: 4, Faults: &Faults{ExecGate: gate.Gate}})
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{Name: "burst.c", ClientID: fmt.Sprintf("c%d", i%3),
			Source: uniqueSource("burst", i)}
	}
	// Workers stall at the gate, so the queue cannot drain during the
	// burst: exactly Workers jobs execute, exactly QueueDepth queue, and
	// every other arrival sheds. Only once all n arrivals are accounted
	// for does the drain start.
	resCh := make(chan []*JobResult, 1)
	go func() { resCh <- BurstDo(context.Background(), r, jobs) }()
	waitCond(t, 5*time.Second, func() bool {
		m := r.Metrics()
		return m.Shed+m.Admitted+uint64(m.QueueDepthNow) == n
	}, "all arrivals to be decided")
	stop := drainGate(gate)
	defer stop()
	results := <-resCh

	admitted, shedCount := 0, 0
	for i, res := range results {
		var shed *ShedError
		switch {
		case res.Err == nil:
			admitted++
		case errors.As(res.Err, &shed):
			shedCount++
			if shed.Reason != ShedQueueFull {
				t.Errorf("job %d shed for %q, want queue_full", i, shed.Reason)
			}
		default:
			t.Errorf("job %d unexpected error: %v", i, res.Err)
		}
	}
	// The pool holds exactly 2 executing + 4 queued while the gate is
	// shut; the other 18 must shed.
	if admitted != 6 || shedCount != n-6 {
		t.Fatalf("admitted %d shed %d, want exactly 6/%d", admitted, shedCount, n-6)
	}
	waitCond(t, 5*time.Second, func() bool {
		m := r.Metrics()
		return m.QueueDepthNow == 0 && m.JobsInFlight == 0
	}, "gauges to settle")
	m := r.Metrics()
	if m.Admitted != uint64(admitted) || m.Shed != uint64(shedCount) {
		t.Fatalf("metrics admitted/shed = %d/%d, client saw %d/%d",
			m.Admitted, m.Shed, admitted, shedCount)
	}
	if m.QueueWait.Count != uint64(admitted) {
		t.Fatalf("QueueWait count %d != admitted %d", m.QueueWait.Count, admitted)
	}
}
