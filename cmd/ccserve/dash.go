package main

import (
	"io"
	"net/http"
)

// handleDash serves the live operations dashboard: a single self-contained
// HTML page (no build step, no external assets) that polls
// GET /metrics/history for sparkline data and tails GET /events over SSE.
// It exists so "is the service healthy right now" is answerable from a
// browser with nothing but the binary.
func (s *server) handleDash(w http.ResponseWriter, r *http.Request) {
	if s.history == nil {
		writeError(w, http.StatusNotFound, "metrics history is disabled; restart with -history-interval > 0")
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, dashHTML)
}

// dashHTML is the whole dashboard. Design notes: the palette is the
// validated two-slot categorical pair (blue/orange, CVD-checked in both
// modes); status colors (ok/warn/page) are a separate reserved set and
// always ship with an icon + text label, never color alone; every chart
// has a hover tooltip and the raw points are available as a table.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>gocured dash</title>
<style>
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834;
  --ok: #0ca30c; --warn: #fab219; --page-c: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --baseline: #383835; --ring: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
header { display: flex; align-items: baseline; gap: 12px; flex-wrap: wrap; margin-bottom: 12px; }
header h1 { font-size: 18px; margin: 0; }
header .meta { color: var(--ink-2); font-size: 12px; }
.filters { display: flex; gap: 4px; margin-left: auto; }
.filters button {
  font: inherit; font-size: 12px; padding: 2px 10px; cursor: pointer;
  background: var(--surface); color: var(--ink-2);
  border: 1px solid var(--ring); border-radius: 6px;
}
.filters button[aria-pressed="true"] { color: var(--ink); font-weight: 600; border-color: var(--baseline); }
.grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(300px, 1fr)); gap: 12px; }
.card {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 8px; padding: 10px 12px;
}
.card h2 { font-size: 12px; font-weight: 600; color: var(--ink-2); margin: 0 0 6px; }
.card .now { font-size: 22px; }
.legend { display: flex; gap: 12px; font-size: 11px; color: var(--ink-2); margin-top: 2px; }
.legend .swatch { display: inline-block; width: 8px; height: 8px; border-radius: 2px; margin-right: 4px; vertical-align: baseline; }
svg.spark { width: 100%; height: 64px; display: block; }
.slos { display: grid; grid-template-columns: repeat(auto-fit, minmax(240px, 1fr)); gap: 12px; margin-bottom: 12px; }
.slo .state { font-weight: 600; font-size: 14px; }
.slo .state.ok { color: var(--ok); }
.slo .state.warn { color: var(--warn); }
.slo .state.page { color: var(--page-c); }
.slo .burns { font-size: 11px; color: var(--muted); margin-top: 2px; }
.bars .bar-row { display: grid; grid-template-columns: 10em 1fr 3em; gap: 6px; align-items: center; font-size: 12px; margin: 3px 0; }
.bars .bar-row .name { overflow: hidden; text-overflow: ellipsis; white-space: nowrap; color: var(--ink-2); }
.bars .bar-row .bar { height: 10px; background: var(--s1); border-radius: 4px; min-width: 2px; }
.bars .bar-row .n { text-align: right; font-variant-numeric: tabular-nums; }
.links a { color: var(--s1); font-size: 12px; text-decoration: none; margin-right: 10px; }
.links a:hover { text-decoration: underline; }
.feed { list-style: none; margin: 0; padding: 0; font-size: 12px; max-height: 180px; overflow-y: auto; }
.feed li { padding: 2px 0; border-bottom: 1px solid var(--grid); color: var(--ink-2); }
.feed li .t { color: var(--muted); margin-right: 6px; font-variant-numeric: tabular-nums; }
.feed li.slo-ev { color: var(--ink); font-weight: 600; }
#tip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface); color: var(--ink); border: 1px solid var(--ring);
  border-radius: 6px; padding: 4px 8px; font-size: 11px; box-shadow: 0 2px 8px rgba(0,0,0,.15);
}
details { margin-top: 12px; }
details summary { cursor: pointer; color: var(--ink-2); font-size: 12px; }
table { border-collapse: collapse; font-size: 11px; margin-top: 6px; }
th, td { text-align: right; padding: 2px 8px; border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums; }
th { color: var(--muted); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
</style>
</head>
<body>
<header>
  <h1>gocured</h1>
  <span class="meta" id="meta">connecting&hellip;</span>
  <nav class="filters" id="filters" aria-label="history window">
    <button data-w="5m">5m</button>
    <button data-w="15m">15m</button>
    <button data-w="1h" aria-pressed="true">1h</button>
  </nav>
</header>

<section class="slos" id="slos"></section>

<section class="grid">
  <div class="card">
    <h2>Queue depth</h2>
    <div class="now" id="queue-now">&ndash;</div>
    <svg class="spark" id="spark-queue" role="img" aria-label="queue depth over time"></svg>
  </div>
  <div class="card">
    <h2>Admitted / shed per second</h2>
    <div class="now" id="rate-now">&ndash;</div>
    <svg class="spark" id="spark-rate" role="img" aria-label="admit and shed rates over time"></svg>
    <div class="legend">
      <span><span class="swatch" style="background:var(--s1)"></span>admitted</span>
      <span><span class="swatch" style="background:var(--s2)"></span>shed</span>
    </div>
  </div>
  <div class="card">
    <h2>End-to-end latency (ms)</h2>
    <div class="now" id="lat-now">&ndash;</div>
    <svg class="spark" id="spark-lat" role="img" aria-label="latency quantiles over time"></svg>
    <div class="legend">
      <span><span class="swatch" style="background:var(--s1)"></span>p50</span>
      <span><span class="swatch" style="background:var(--s2)"></span>p99</span>
    </div>
    <div class="links" id="exemplars"></div>
  </div>
  <div class="card">
    <h2>Hot trap kinds (window)</h2>
    <div class="bars" id="traps">no traps</div>
  </div>
  <div class="card">
    <h2>Live events</h2>
    <ul class="feed" id="feed"></ul>
  </div>
</section>

<details>
  <summary>history table</summary>
  <div style="overflow-x:auto"><table id="points-table"></table></div>
</details>

<div id="tip"></div>

<script>
"use strict";
var windowSel = "1h";
var lastDump = null;
var tip = document.getElementById("tip");

// esc HTML-escapes server-derived strings before they reach innerHTML.
// Job names, error messages, and trap positions embed user program
// content verbatim, so anything out of the SSE/JSON feeds is hostile.
function esc(v) {
  return String(v).replace(/[&<>"']/g, function (c) {
    return { "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;", "'": "&#39;" }[c];
  });
}
function fmt(v) {
  if (v >= 100) return Math.round(v).toString();
  if (v >= 1) return v.toFixed(1);
  return v.toFixed(2);
}
function ts(ms) {
  var d = new Date(ms);
  function p(n) { return (n < 10 ? "0" : "") + n; }
  return p(d.getHours()) + ":" + p(d.getMinutes()) + ":" + p(d.getSeconds());
}

// drawSpark renders one or two series as 2px polylines with a hairline
// baseline, a direct label on each series' last value, and a shared hover
// tooltip (the whole svg is the hit target).
function drawSpark(svg, series, times, labels) {
  var W = svg.clientWidth || 300, H = svg.clientHeight || 64;
  var padT = 4, padB = 12, padR = 34;
  svg.setAttribute("viewBox", "0 0 " + W + " " + H);
  var max = 0;
  series.forEach(function (s) { s.forEach(function (v) { if (v > max) max = v; }); });
  if (max <= 0) max = 1;
  var n = series[0].length;
  var x = function (i) { return n < 2 ? 0 : i * (W - padR) / (n - 1); };
  var y = function (v) { return H - padB - (v / max) * (H - padT - padB); };
  var colors = ["var(--s1)", "var(--s2)"];
  var out = '<line x1="0" y1="' + (H - padB) + '" x2="' + W + '" y2="' + (H - padB) +
    '" stroke="var(--baseline)" stroke-width="1"/>';
  series.forEach(function (s, si) {
    if (!n) return;
    var pts = s.map(function (v, i) { return x(i).toFixed(1) + "," + y(v).toFixed(1); }).join(" ");
    out += '<polyline points="' + pts + '" fill="none" stroke="' + colors[si] +
      '" stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>';
    var last = s[n - 1];
    out += '<text x="' + (W - padR + 4) + '" y="' + (y(last) + 4).toFixed(1) +
      '" font-size="10" fill="var(--ink-2)">' + fmt(last) + "</text>";
  });
  svg.innerHTML = out;
  svg.onmousemove = function (ev) {
    if (!n) return;
    var r = svg.getBoundingClientRect();
    var i = Math.round((ev.clientX - r.left) / ((W - padR) / Math.max(1, n - 1)));
    if (i < 0) i = 0;
    if (i >= n) i = n - 1;
    var lines = [ts(times[i])];
    series.forEach(function (s, si) { lines.push(labels[si] + ": " + fmt(s[i])); });
    tip.innerHTML = lines.join("<br>");
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 12) + "px";
    tip.style.top = (ev.clientY + 12) + "px";
  };
  svg.onmouseleave = function () { tip.style.display = "none"; };
}

var stateGlyph = { ok: "✓", warn: "⚠", page: "✕" };

function renderSLOs(slos) {
  var el = document.getElementById("slos");
  if (!slos || !slos.length) { el.innerHTML = ""; return; }
  el.innerHTML = slos.map(function (s) {
    var burns = (s.windows || []).map(function (w) {
      var mins = w.window_ms / 60000;
      var lab = mins >= 60 ? (mins / 60) + "h" : mins >= 1 ? mins + "m" : (w.window_ms / 1000) + "s";
      return lab + ": " + fmt(w.burn) + "×";
    }).join(" · ");
    var target = s.latency_target_ms ? " p99≤" + fmt(s.latency_target_ms) + "ms" : "";
    var state = stateGlyph.hasOwnProperty(s.state) ? s.state : "ok";
    return '<div class="card slo"><h2>SLO: ' + esc(s.name) + " (" + (s.objective * 100) + "%" + target + ')</h2>' +
      '<div class="state ' + state + '">' + stateGlyph[state] + " " + esc(state.toUpperCase()) + "</div>" +
      '<div class="burns">burn ' + burns + "</div></div>";
  }).join("");
}

function renderTraps(summary) {
  var el = document.getElementById("traps");
  var kinds = summary && summary.traps_by_kind;
  if (!kinds || !Object.keys(kinds).length) { el.textContent = "no traps in window"; return; }
  var rows = Object.keys(kinds).map(function (k) { return [k, kinds[k]]; })
    .sort(function (a, b) { return b[1] - a[1]; }).slice(0, 8);
  var max = rows[0][1];
  el.innerHTML = rows.map(function (r) {
    return '<div class="bar-row"><span class="name" title="' + esc(r[0]) + '">' + esc(r[0]) +
      '</span><span><span class="bar" style="width:' + (100 * r[1] / max) + '%"></span></span>' +
      '<span class="n">' + fmt(r[1]) + "</span></div>";
  }).join("");
}

function renderExemplars(summary) {
  var el = document.getElementById("exemplars");
  var bks = (summary && summary.e2e && summary.e2e.buckets) || [];
  var ex = [];
  bks.forEach(function (b) { if (b.exemplar) ex.push(b.exemplar); });
  ex.sort(function (a, b) { return b.value_ms - a.value_ms; });
  el.innerHTML = ex.slice(0, 3).map(function (e) {
    return '<a href="/traces/' + esc(encodeURIComponent(e.trace_id)) +
      '" title="open trace ' + esc(e.trace_id) + '">' +
      fmt(e.value_ms) + "ms ↗</a>";
  }).join("");
}

function renderTable(points) {
  var t = document.getElementById("points-table");
  var head = "<tr><th>time</th><th>queue</th><th>in-flight</th><th>admit</th><th>shed</th>" +
    "<th>run</th><th>fail</th><th>traps</th><th>p50</th><th>p99</th></tr>";
  t.innerHTML = head + points.slice(-60).map(function (p) {
    return "<tr><td>" + ts(p.unix_ms) + "</td><td>" + p.queue_depth + "</td><td>" + p.jobs_in_flight +
      "</td><td>" + p.admitted + "</td><td>" + p.shed + "</td><td>" + p.jobs_run +
      "</td><td>" + p.jobs_failed + "</td><td>" + p.traps +
      "</td><td>" + fmt(p.p50_ms) + "</td><td>" + fmt(p.p99_ms) + "</td></tr>";
  }).join("");
}

function render(dump) {
  lastDump = dump;
  var pts = dump.points || [];
  var times = pts.map(function (p) { return p.unix_ms; });
  var perSec = function (field) {
    return pts.map(function (p) { return p.interval_ms > 0 ? p[field] * 1000 / p.interval_ms : 0; });
  };
  drawSpark(document.getElementById("spark-queue"), [pts.map(function (p) { return p.queue_depth; })], times, ["queue"]);
  drawSpark(document.getElementById("spark-rate"), [perSec("admitted"), perSec("shed")], times, ["admit/s", "shed/s"]);
  drawSpark(document.getElementById("spark-lat"),
    [pts.map(function (p) { return p.p50_ms; }), pts.map(function (p) { return p.p99_ms; })],
    times, ["p50 ms", "p99 ms"]);
  if (pts.length) {
    var last = pts[pts.length - 1];
    document.getElementById("queue-now").textContent = last.queue_depth;
    var rs = last.interval_ms > 0 ? last.shed * 1000 / last.interval_ms : 0;
    var ra = last.interval_ms > 0 ? last.admitted * 1000 / last.interval_ms : 0;
    document.getElementById("rate-now").textContent = fmt(ra) + "/s · " + fmt(rs) + " shed/s";
    document.getElementById("lat-now").textContent =
      "p50 " + fmt(last.p50_ms) + " · p99 " + fmt(last.p99_ms);
  }
  renderSLOs(dump.slos);
  renderTraps(dump.summary);
  renderExemplars(dump.summary);
  renderTable(pts);
  document.getElementById("meta").textContent =
    pts.length + " points · every " + (dump.interval_ms / 1000) + "s · window " + windowSel;
}

function poll() {
  fetch("/metrics/history?window=" + windowSel)
    .then(function (r) { return r.json(); })
    .then(render)
    .catch(function () { document.getElementById("meta").textContent = "history fetch failed"; });
}

document.getElementById("filters").addEventListener("click", function (ev) {
  var b = ev.target.closest("button");
  if (!b) return;
  windowSel = b.dataset.w;
  this.querySelectorAll("button").forEach(function (x) { x.setAttribute("aria-pressed", x === b); });
  poll();
});

var feed = document.getElementById("feed");
function pushEvent(cls, text) {
  var li = document.createElement("li");
  if (cls) li.className = cls;
  li.innerHTML = '<span class="t">' + ts(Date.now()) + "</span>" + text;
  feed.insertBefore(li, feed.firstChild);
  while (feed.children.length > 40) feed.removeChild(feed.lastChild);
}
try {
  var es = new EventSource("/events");
  ["trap", "slo_state", "job_done"].forEach(function (kind) {
    es.addEventListener(kind, function (ev) {
      var e = JSON.parse(ev.data);
      if (kind === "slo_state") {
        pushEvent("slo-ev", "SLO " + esc(e.name) + " → " + esc(String(e.state).toUpperCase()) +
          " (burn " + fmt(e.burn) + "×)");
      } else if (kind === "trap") {
        pushEvent("", "trap " + esc(e.trap_kind) + " @ " + esc(e.trap_pos || "?") +
          (e.trace_id ? ' <a href="/traces/' + esc(encodeURIComponent(e.trace_id)) + '">trace ↗</a>' : ""));
      } else if (e.err) {
        pushEvent("", "job " + esc(e.name) + " failed: " + esc(e.err));
      }
    });
  });
} catch (_) { /* SSE unsupported: dashboard still works via polling */ }

poll();
setInterval(poll, 3000);
</script>
</body>
</html>
`
