package trace

import (
	"fmt"
	"sync"
	"testing"
)

func rt(id string) ReqTrace {
	return ReqTrace{ID: id, Name: id + ".c", Spans: []Span{{Name: "request"}}}
}

func TestNewIDShape(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID() = %q, not a 16-hex ID", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q", id)
		}
		seen[id] = true
	}
	for _, bad := range []string{"", "short", "0123456789abcdeF", "0123456789abcdefg", "xxxxxxxxxxxxxxxx"} {
		if ValidID(bad) {
			t.Errorf("ValidID(%q) = true", bad)
		}
	}
}

func TestBufferAddGetEvict(t *testing.T) {
	b := NewBuffer(3)
	for _, id := range []string{"aaaaaaaaaaaaaaa1", "aaaaaaaaaaaaaaa2", "aaaaaaaaaaaaaaa3"} {
		b.Add(rt(id))
	}
	if _, ok := b.Get("aaaaaaaaaaaaaaa1"); !ok {
		t.Fatal("trace 1 missing before eviction")
	}
	b.Add(rt("aaaaaaaaaaaaaaa4")) // evicts 1
	if _, ok := b.Get("aaaaaaaaaaaaaaa1"); ok {
		t.Error("oldest trace survived eviction")
	}
	for _, id := range []string{"aaaaaaaaaaaaaaa2", "aaaaaaaaaaaaaaa3", "aaaaaaaaaaaaaaa4"} {
		if got, ok := b.Get(id); !ok || got.ID != id {
			t.Errorf("Get(%s) = %+v, %v", id, got, ok)
		}
	}
	st := b.Stats()
	if st.Added != 4 || st.Evicted != 1 || st.Dropped != 0 || st.Live != 3 || st.Cap != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBufferRecentNewestFirst(t *testing.T) {
	b := NewBuffer(3)
	for i := 1; i <= 5; i++ { // 1,2 evicted; live = 3,4,5
		b.Add(rt(fmt.Sprintf("%016d", i)))
	}
	got := b.Recent(0)
	if len(got) != 3 || got[0].ID != fmt.Sprintf("%016d", 5) ||
		got[1].ID != fmt.Sprintf("%016d", 4) || got[2].ID != fmt.Sprintf("%016d", 3) {
		t.Errorf("Recent = %v", got)
	}
	if got := b.Recent(1); len(got) != 1 || got[0].ID != fmt.Sprintf("%016d", 5) {
		t.Errorf("Recent(1) = %v", got)
	}
}

func TestBufferDropsUnqueryable(t *testing.T) {
	b := NewBuffer(2)
	b.Add(ReqTrace{Name: "no-id.c", Spans: []Span{{Name: "request"}}})
	b.Add(ReqTrace{ID: "aaaaaaaaaaaaaaaa"}) // no spans
	if st := b.Stats(); st.Dropped != 2 || st.Added != 0 || st.Live != 0 {
		t.Errorf("stats = %+v, want 2 dropped", st)
	}
}

func TestBufferDuplicateIDReplaces(t *testing.T) {
	b := NewBuffer(2)
	b.Add(rt("aaaaaaaaaaaaaaa1"))
	upd := rt("aaaaaaaaaaaaaaa1")
	upd.DurMS = 42
	b.Add(upd)
	got, ok := b.Get("aaaaaaaaaaaaaaa1")
	if !ok || got.DurMS != 42 {
		t.Errorf("Get = %+v, %v; want replaced trace", got, ok)
	}
	if st := b.Stats(); st.Live != 1 || st.Evicted != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBufferConcurrent(t *testing.T) {
	b := NewBuffer(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("%08d%08d", g, i)
				b.Add(rt(id))
				b.Get(id)
				b.Recent(4)
				b.Stats()
			}
		}(g)
	}
	wg.Wait()
	if st := b.Stats(); st.Added != 1600 || st.Live != 16 {
		t.Errorf("stats = %+v", st)
	}
}
