package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gocured"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

// TestExplainGolden pins the -explain output for examples/explain/wild.c:
// every WILD pointer gets a blame chain with rule names and source
// locations, walking data flow back to the bad cast that caused it.
func TestExplainGolden(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "explain")
	src, err := os.ReadFile(filepath.Join(dir, "wild.c"))
	if err != nil {
		t.Fatal(err)
	}
	// Compile under the bare name so positions in the golden file do not
	// depend on where the repository is checked out.
	prog, err := gocured.Compile("wild.c", string(src), gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	writeExplain(&b, prog, "")
	got := b.String()

	goldenPath := filepath.Join(dir, "wild.golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("explain output differs from %s (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
	}

	// Sanity beyond the exact text: a WILD chain must blame the bad cast
	// at its source position.
	for _, needle := range []string{"is WILD:", "bad-cast at wild.c:12:16", "[flow: assign]"} {
		if !strings.Contains(got, needle) {
			t.Errorf("explain output missing %q", needle)
		}
	}
}

// TestExplainSiteFilter checks that -site restricts chains to casts at one
// source position prefix.
func TestExplainSiteFilter(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "explain", "wild.c"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := gocured.Compile("wild.c", string(src), gocured.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	writeExplain(&b, prog, "wild.c:14")
	got := b.String()
	if !strings.Contains(got, "[flow: cast-identity]") {
		t.Errorf("site-filtered output lost the chain for the line-14 cast:\n%s", got)
	}

	b.Reset()
	writeExplain(&b, prog, "wild.c:999")
	if got := b.String(); !strings.Contains(got, "nothing to explain") {
		t.Errorf("filter with no matches must say so, got:\n%s", got)
	}
}
