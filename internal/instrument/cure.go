package instrument

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/infer"
	"gocured/internal/qual"
)

// Cured is the result of the curing transformation: the instrumented
// program, the inference result, and the kind-aware layout oracle.
type Cured struct {
	Prog *cil.Program
	Res  *infer.Result
	Lay  *Layout
	// ChecksInserted counts the static run-time checks added, by kind.
	ChecksInserted map[cil.CheckKind]int
	// ChecksEliminated counts checks removed by the redundancy optimizer.
	ChecksEliminated int
	// Opt holds the full optimizer statistics (nil when curing ran at -O0).
	Opt *OptStats
	// Sites is the static check-site table of the final program, built by
	// AssignSites after optimization; cil.Check.Site indexes it 1-based.
	Sites []SiteInfo
	// SiteIndex maps a site back to its 1-based ID (the inverse of Sites);
	// the interpreter uses it to resolve the optimizer's per-site
	// elimination counts onto dense site-ID-indexed counters.
	SiteIndex map[SiteInfo]int32
}

// RedirectWrappers rewrites calls to wrapped extern functions so they go
// through their ccuredWrapperOf wrappers (§4.1) — except inside a wrapper
// itself, whose call reaches the real library. This must run before
// pointer-kind inference so the wrapper's constraints (e.g. __verify_nul
// requiring bounds) flow to every call site.
func RedirectWrappers(prog *cil.Program, diags *diag.List) {
	wrapperFor := make(map[string]string)
	defined := make(map[string]bool)
	for _, f := range prog.Funcs {
		defined[f.Name] = true
	}
	for _, w := range prog.Wrappers {
		if !defined[w.Wrapper] {
			diags.Warnf(diag.Pos{}, "wrapper %q for %q is not defined", w.Wrapper, w.Wrapped)
			continue
		}
		if defined[w.Wrapped] {
			continue // wrapping a defined function is a no-op
		}
		wrapperFor[w.Wrapped] = w.Wrapper
	}
	if len(wrapperFor) == 0 {
		return
	}
	// One shared function-pointer occurrence per wrapper, so inference
	// constraints from every redirected call site flow into the wrapper's
	// signature (not the wrapped prototype's).
	wrapPtrTy := make(map[string]*ctypes.Type)
	ptrTo := func(w string) *ctypes.Type {
		if t, ok := wrapPtrTy[w]; ok {
			return t
		}
		wfn := prog.Lookup(w)
		t := ctypes.PointerTo(wfn.Type)
		wrapPtrTy[w] = t
		return t
	}
	for _, f := range prog.Funcs {
		cil.WalkInstrs(f.Body.Stmts, func(i cil.Instr) {
			call, ok := i.(*cil.Call)
			if !ok {
				return
			}
			if fc, ok := call.Fn.(*cil.FnConst); ok {
				if w, has := wrapperFor[fc.Name]; has && f.Name != w {
					fc.Name = w
					fc.Ty = ptrTo(w)
				}
			}
		})
	}
}

// Cure instruments prog in place using the inference result: inserts the
// run-time checks of Appendix A before each instruction that needs them.
// RedirectWrappers must already have run (the core pipeline does so before
// inference).
func Cure(prog *cil.Program, res *infer.Result, diags *diag.List) *Cured {
	c := &curer{
		cured: &Cured{
			Prog:           prog,
			Res:            res,
			Lay:            newLayout(res),
			ChecksInserted: make(map[cil.CheckKind]int),
		},
		diags: diags,
	}
	for _, f := range prog.Funcs {
		c.curFn = f
		c.cureBlock(f.Body)
	}
	// Check optimization (see optimize.go) runs as a separate pipeline
	// stage so it can be disabled with -O0; core.Build calls Optimize.
	return c.cured
}

type curer struct {
	cured   *Cured
	diags   *diag.List
	curFn   *cil.Func
	pending []cil.Instr // checks to prepend to the current statement
}

func (c *curer) emit(k cil.CheckKind, ptr cil.Expr, size int, target *ctypes.Type, dst *cil.Lvalue, pos diag.Pos) {
	chk := &cil.Check{Kind: k, Ptr: ptr, Size: size, RttiTarget: target, DstLV: dst}
	chk.Pos = pos
	c.pending = append(c.pending, chk)
	c.cured.ChecksInserted[k]++
}

// cureBlock rewrites a block, inserting pending checks before each
// statement that needs them.
func (c *curer) cureBlock(b *cil.Block) {
	var out []cil.Stmt
	for _, s := range b.Stmts {
		saved := c.pending
		c.pending = nil
		switch st := s.(type) {
		case *cil.SInstr:
			c.cureInstr(st.Ins)
		case *cil.If:
			c.cureExpr(st.Cond, diag.Pos{})
			c.cureBlock(st.Then)
			if st.Else != nil {
				c.cureBlock(st.Else)
			}
		case *cil.Loop:
			c.cureBlock(st.Body)
			if st.Post != nil {
				c.cureBlock(st.Post)
			}
		case *cil.Return:
			if st.X != nil {
				c.cureExpr(st.X, st.Pos)
			}
		case *cil.Switch:
			c.cureExpr(st.X, diag.Pos{})
			for _, cs := range st.Cases {
				inner := &cil.Block{Stmts: cs.Body}
				c.cureBlock(inner)
				cs.Body = inner.Stmts
			}
		case *cil.Block:
			c.cureBlock(st)
		}
		for _, chk := range c.pending {
			out = append(out, &cil.SInstr{Ins: chk})
		}
		c.pending = saved
		out = append(out, s)
	}
	b.Stmts = out
}

// pos helpers: If/Loop/etc. have no direct Pos; use zero.

func (c *curer) cureInstr(i cil.Instr) {
	switch in := i.(type) {
	case *cil.Set:
		c.cureExpr(in.RHS, in.Position())
		c.cureLval(in.LV, true, in.Position())
		// Writing a pointer into heap or global memory must not leak a
		// stack address (Appendix A, memory writes).
		if in.RHS.Type() != nil && in.RHS.Type().IsPointer() && in.LV.Mem != nil {
			c.emit(cil.CheckStackEscape, in.RHS, 0, nil, in.LV, in.Position())
		}
	case *cil.Call:
		c.cureExpr(in.Fn, in.Position())
		for _, a := range in.Args {
			c.cureExpr(a, in.Position())
		}
		if in.Result != nil {
			c.cureLval(in.Result, true, in.Position())
		}
		// Calls through function pointers require a non-null target.
		if _, direct := in.Fn.(*cil.FnConst); !direct {
			c.emit(cil.CheckNull, in.Fn, 0, nil, nil, in.Position())
		}
	case *cil.Check:
		// already instrumented
	}
}

// cureExpr inserts checks for every memory read and conversion in e.
func (c *curer) cureExpr(e cil.Expr, pos diag.Pos) {
	cil.WalkExpr(e, func(x cil.Expr) {
		switch v := x.(type) {
		case *cil.Lval:
			c.cureLval(v.LV, false, pos)
		case *cil.AddrOf:
			// Taking an address performs no access, but the offsets must
			// still be in bounds.
			c.cureOffsets(v.LV, pos)
		case *cil.Cast:
			c.cureCast(v, pos)
		}
	})
}

// cureCast inserts conversion checks at kind boundaries (Figure 11) and
// the isSubtype check for downcasts (Figure 2).
func (c *curer) cureCast(v *cil.Cast, pos diag.Pos) {
	site := c.cured.Res.CastOf[v]
	if site == nil || site.Trusted {
		return
	}
	from, to := v.X.Type(), v.To
	if !from.IsPointer() || !to.IsPointer() {
		return
	}
	kf, kt := c.cured.Lay.KindOf(from), c.cured.Lay.KindOf(to)
	if p := v.Pos; p.IsValid() {
		pos = p
	}
	if site.Class == infer.CastDowncast && kf == qual.Rtti {
		c.emit(cil.CheckRtti, v.X, c.cured.Lay.Sizeof(to.Elem), to.Elem, nil, pos)
		return
	}
	// Narrowing conversions: SEQ/WILD to SAFE/RTTI require null-or-in-
	// bounds for the destination's access size.
	if (kf == qual.Seq || kf == qual.Wild) && (kt == qual.Safe || kt == qual.Rtti) {
		c.emit(cil.CheckSeqToSafe, v.X, c.cured.Lay.Sizeof(to.Elem), nil, nil, pos)
	}
}

// cureLval inserts the access checks for one lvalue read or write.
func (c *curer) cureLval(lv *cil.Lvalue, isWrite bool, pos diag.Pos) {
	if lv.Mem != nil {
		pt := lv.Mem.Type()
		k := c.cured.Lay.KindOf(pt)
		size := c.cured.Lay.Sizeof(pt.Elem)
		switch k {
		case qual.Safe, qual.Rtti:
			c.emit(cil.CheckNull, lv.Mem, 0, nil, nil, pos)
		case qual.Seq:
			c.emit(cil.CheckSeq, lv.Mem, size, nil, nil, pos)
		case qual.Wild:
			c.emit(cil.CheckWild, lv.Mem, size, nil, nil, pos)
			if lv.Ty.IsPointer() {
				if isWrite {
					c.emit(cil.CheckWildWrite, lv.Mem, size, nil, nil, pos)
				} else {
					c.emit(cil.CheckWildRead, lv.Mem, size, nil, nil, pos)
				}
			}
		}
	}
	c.cureOffsets(lv, pos)
}

// cureOffsets bounds-checks non-constant (or statically out-of-range)
// array indices: the array length is known statically, so these checks
// need no fat pointers.
func (c *curer) cureOffsets(lv *cil.Lvalue, pos diag.Pos) {
	var cur *ctypes.Type
	if lv.Var != nil {
		cur = lv.Var.Type
	} else {
		cur = lv.Mem.Type().Elem
	}
	for _, o := range lv.Offset {
		if o.Field != nil {
			cur = o.Field.Type
			continue
		}
		if cur.Kind == ctypes.Array {
			if cc, ok := o.Index.(*cil.Const); !ok || cc.I < 0 || (cur.Len >= 0 && cc.I >= int64(cur.Len)) {
				c.emit(cil.CheckIndex, o.Index, cur.Len, nil, nil, pos)
			}
			cur = cur.Elem
		} else if cur.Kind == ctypes.Ptr {
			cur = cur.Elem
		}
	}
}
