package pipeline

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"gocured/internal/store"
)

// WritePrometheus renders a Metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one # HELP / # TYPE pair per family,
// counters and gauges as single samples, histograms as cumulative
// le-labelled buckets plus _sum and _count.
func WritePrometheus(w io.Writer, m Metrics) {
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n", name, help, name, name, fmtFloat(v))
	}
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(w, "# HELP gocured_build_info Build metadata (constant 1; labels carry the values).\n"+
		"# TYPE gocured_build_info gauge\n"+
		"gocured_build_info{version=%q,go_version=%q,optimizer=%q} 1\n",
		m.Build.Version, m.Build.GoVersion, m.Build.Optimizer)

	gauge("gocured_workers", "Size of the job worker pool.", float64(m.Workers))
	gauge("gocured_jobs_in_flight", "Jobs currently executing.", float64(m.JobsInFlight))
	counter("gocured_jobs_run_total", "Jobs completed (including failures).", m.JobsRun)
	counter("gocured_jobs_failed_total", "Jobs that ended in an error.", m.JobsFailed)
	counter("gocured_jobs_panicked_total", "Jobs isolated after a panic.", m.JobsPanicked)
	counter("gocured_jobs_timed_out_total", "Jobs abandoned on timeout.", m.JobsTimedOut)
	counter("gocured_runs_executed_total", "Cured/raw program executions.", m.RunsExecuted)

	counter("gocured_traps_total", "Executions stopped by a memory-safety trap.", m.Traps)
	if len(m.TrapsByKind) > 0 {
		name := "gocured_traps_by_kind_total"
		fmt.Fprintf(w, "# HELP %s Traps by check kind.\n# TYPE %s counter\n", name, name)
		kinds := make([]string, 0, len(m.TrapsByKind))
		for k := range m.TrapsByKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			fmt.Fprintf(w, "%s{kind=%q} %d\n", name, k, m.TrapsByKind[k])
		}
	}

	gauge("gocured_cache_entries", "Live compile-cache entries.", float64(m.Cache.Entries))
	counter("gocured_cache_hits_total", "Compile-cache hits.", m.Cache.Hits)
	counter("gocured_cache_misses_total", "Compile-cache misses.", m.Cache.Misses)
	counter("gocured_cache_evictions_total", "Compile-cache LRU evictions.", m.Cache.Evictions)

	// Artifact-store families are always exposed (zero without a store) so
	// dashboards and smoke checks can rely on their presence.
	var st store.Stats
	if m.Store != nil {
		st = *m.Store
	}
	counter("gocured_store_hits_total", "Artifact-store chunk hits.", uint64(st.Hits))
	counter("gocured_store_misses_total", "Artifact-store chunk misses.", uint64(st.Misses))
	counter("gocured_store_writes_total", "Artifact-store chunks written.", uint64(st.Writes))
	counter("gocured_store_corrupt_dropped_total", "Corrupt chunks detected and dropped on read.", uint64(st.CorruptDropped))
	gauge("gocured_store_chunks", "Chunks resident in the artifact store.", float64(st.Chunks))
	gauge("gocured_store_bytes", "Bytes resident in the artifact store.", float64(st.Bytes))
	counter("gocured_funcs_recured_total", "Functions whose constraints were re-collected.", m.FuncsRecured)
	counter("gocured_funcs_loaded_total", "Functions replayed from stored summaries.", m.FuncsLoaded)

	writeHistogram(w, "gocured_compile_wall_ms", "Compile wall time in milliseconds.", m.CompileWall)
	writeHistogram(w, "gocured_run_wall_ms", "Run wall time in milliseconds.", m.RunWall)
}

// writeHistogram renders one Histogram snapshot as cumulative buckets over
// the canonical bounds. Snapshots drop empty buckets, so counts are summed
// back up while walking the full bound list.
func writeHistogram(w io.Writer, name, help string, h Histogram) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	byLe := make(map[float64]uint64, len(h.Buckets))
	for _, b := range h.Buckets {
		if b.LeMS > 0 {
			byLe[b.LeMS] = b.Count
		}
	}
	var cum uint64
	for _, le := range histBoundsMS {
		cum += byLe[le]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmtFloat(le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
	fmt.Fprintf(w, "%s_sum %s\n", name, fmtFloat(h.SumMS))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
