package sema

import (
	"gocured/internal/cparse"
	"gocured/internal/ctypes"
)

// This file type checks expressions. The cardinal rule: every conversion
// becomes an explicit Cast node (marked Implicit), because the pointer-kind
// inference reads its constraints off casts.

// decay wraps an expression of array or function type in its decayed
// pointer form. Array decay reuses the array's qualifier node (the decayed
// pointer IS the array pointer, so they must share a kind).
func decay(e cparse.Expr) cparse.Expr {
	t := e.Type()
	switch t.Kind {
	case ctypes.Array:
		e.SetType(t.Decay())
		return e
	case ctypes.Func:
		e.SetType(ctypes.PointerTo(t))
		return e
	}
	return e
}

// isNullConst reports whether e is the integer constant 0 (a null pointer
// constant), looking through implicit int casts.
func isNullConst(e cparse.Expr) bool {
	switch x := e.(type) {
	case *cparse.IntLit:
		return x.Val == 0
	case *cparse.Cast:
		if x.Implicit && x.To.IsInteger() {
			return isNullConst(x.X)
		}
	}
	return false
}

// convert coerces e to type to, inserting an implicit Cast when the types
// differ structurally. Identical types never get a cast, so cast statistics
// reflect genuine conversions.
func (c *checker) convert(e cparse.Expr, to *ctypes.Type) cparse.Expr {
	e = decay(e)
	from := e.Type()
	if from == to || ctypes.Equal(from, to) {
		return e
	}
	okConv := false
	switch {
	case from.IsArith() && to.IsArith():
		okConv = true
	case from.IsPointer() && to.IsPointer():
		okConv = true // classification happens during inference
	case from.IsInteger() && to.IsPointer():
		okConv = true // null constants and int-to-pointer disguises
	case from.IsPointer() && to.IsInteger():
		okConv = true
	case to.IsVoid():
		okConv = true
	}
	if !okConv {
		c.diags.Errorf(e.Pos(), "cannot convert %s to %s", from, to)
	}
	cast := &cparse.Cast{To: to, X: e, Implicit: true}
	cast.P = e.Pos()
	cast.SetType(to)
	return cast
}

// usualArith computes the usual arithmetic conversion target for a and b.
func usualArith(a, b *ctypes.Type) *ctypes.Type {
	if a.Kind == ctypes.Float || b.Kind == ctypes.Float {
		sz := 4
		if a.Kind == ctypes.Float && a.Size == 8 || b.Kind == ctypes.Float && b.Size == 8 {
			sz = 8
		}
		return ctypes.FloatType(sz)
	}
	// Integer promotion: everything smaller than int promotes to int.
	sz, unsigned := 4, false
	if a.Size > sz {
		sz = a.Size
	}
	if b.Size > sz {
		sz = b.Size
	}
	if (a.Size >= sz && !a.Signed) || (b.Size >= sz && !b.Signed) {
		unsigned = true
	}
	return ctypes.IntType(sz, !unsigned)
}

func (c *checker) checkExpr(e cparse.Expr) cparse.Expr {
	switch x := e.(type) {
	case *cparse.IntLit:
		if x.Type() == nil {
			x.SetType(ctypes.IntT())
		}
		return x
	case *cparse.FloatLit:
		x.SetType(ctypes.FloatType(8))
		return x
	case *cparse.StrLit:
		// A string literal is a char array that decays to char*; each
		// literal is its own qualifier node.
		x.SetType(ctypes.PointerTo(ctypes.CharType()))
		return x
	case *cparse.Ident:
		sym := c.lookup(x.Name)
		if sym == nil {
			c.diags.Errorf(x.Pos(), "undeclared identifier %q", x.Name)
			x.SetType(ctypes.IntT())
			return x
		}
		x.Sym = sym
		x.SetType(sym.Type)
		return x
	case *cparse.Unary:
		return c.checkUnary(x)
	case *cparse.Binary:
		return c.checkBinary(x)
	case *cparse.Assign:
		return c.checkAssign(x)
	case *cparse.Cond:
		return c.checkCondExpr(x)
	case *cparse.Cast:
		x.X = decay(c.checkExpr(x.X))
		from, to := x.X.Type(), x.To
		if !from.IsScalar() && !from.IsVoid() && !to.IsScalar() && !to.IsVoid() &&
			!ctypes.Equal(from, to) {
			c.diags.Errorf(x.Pos(), "invalid cast from %s to %s", from, to)
		}
		x.SetType(to)
		return x
	case *cparse.Call:
		return c.checkCall(x)
	case *cparse.Index:
		x.X = decay(c.checkExpr(x.X))
		x.I = c.checkExpr(x.I)
		xt := x.X.Type()
		it := x.I.Type()
		// C allows i[p]; normalize to p[i].
		if it.IsPointer() && xt.IsInteger() {
			x.X, x.I = x.I, x.X
			xt, it = it, xt
		}
		if !xt.IsPointer() {
			c.diags.Errorf(x.Pos(), "subscripted value %s is not a pointer or array", xt)
			x.SetType(ctypes.IntT())
			return x
		}
		if !it.IsInteger() {
			c.diags.Errorf(x.Pos(), "array index must be an integer, got %s", it)
		}
		x.SetType(xt.Elem)
		return x
	case *cparse.Member:
		return c.checkMember(x)
	case *cparse.SizeofExpr:
		if x.X != nil {
			x.X = c.checkExpr(x.X)
		}
		x.SetType(ctypes.UIntT())
		return x
	case *cparse.Comma:
		x.X = c.checkExpr(x.X)
		x.Y = c.checkExpr(x.Y)
		x.SetType(x.Y.Type())
		return x
	}
	c.diags.Errorf(e.Pos(), "unhandled expression %T", e)
	e.SetType(ctypes.IntT())
	return e
}

// isLvalue reports whether e designates an object.
func isLvalue(e cparse.Expr) bool {
	switch x := e.(type) {
	case *cparse.Ident:
		return x.Sym != nil && x.Sym.Kind == cparse.SymVar
	case *cparse.Index:
		return true
	case *cparse.Member:
		return x.Arrow || isLvalue(x.X)
	case *cparse.Unary:
		return x.Op == cparse.Deref
	}
	return false
}

func (c *checker) checkUnary(x *cparse.Unary) cparse.Expr {
	switch x.Op {
	case cparse.Neg, cparse.BitNot:
		x.X = c.checkExpr(x.X)
		t := x.X.Type()
		if !t.IsArith() || (x.Op == cparse.BitNot && !t.IsInteger()) {
			c.diags.Errorf(x.Pos(), "invalid operand type %s for unary %s", t, x.Op)
			x.SetType(ctypes.IntT())
			return x
		}
		if t.IsInteger() && t.Size < 4 {
			x.X = c.convert(x.X, ctypes.IntT())
		}
		x.SetType(x.X.Type())
		return x
	case cparse.Not:
		x.X = decay(c.checkExpr(x.X))
		if !x.X.Type().IsScalar() {
			c.diags.Errorf(x.Pos(), "invalid operand type %s for !", x.X.Type())
		}
		x.SetType(ctypes.IntT())
		return x
	case cparse.Deref:
		x.X = decay(c.checkExpr(x.X))
		t := x.X.Type()
		if !t.IsPointer() {
			c.diags.Errorf(x.Pos(), "cannot dereference non-pointer %s", t)
			x.SetType(ctypes.IntT())
			return x
		}
		if t.Elem.Kind == ctypes.Func {
			// *f on a function pointer is the function itself.
			x.SetType(t.Elem)
			return x
		}
		x.SetType(t.Elem)
		return x
	case cparse.AddrOf:
		return c.checkAddrOf(x)
	case cparse.PreInc, cparse.PreDec, cparse.PostInc, cparse.PostDec:
		x.X = c.checkExpr(x.X)
		if !isLvalue(x.X) {
			c.diags.Errorf(x.Pos(), "operand of %s is not an lvalue", x.Op)
		}
		t := x.X.Type()
		if t.Kind == ctypes.Array || !t.IsScalar() {
			c.diags.Errorf(x.Pos(), "invalid operand type %s for %s", t, x.Op)
			x.SetType(ctypes.IntT())
			return x
		}
		x.SetType(t)
		return x
	}
	c.diags.Errorf(x.Pos(), "unhandled unary operator %s", x.Op)
	x.SetType(ctypes.IntT())
	return x
}

// checkAddrOf handles &e. Addresses of variables and fields use shared
// per-symbol / per-field pointer occurrences so that all address-of sites
// share one qualifier node; &p[i] is rewritten to p + i and &*p to p, so
// the result shares p's node.
func (c *checker) checkAddrOf(x *cparse.Unary) cparse.Expr {
	inner := c.checkExpr(x.X)
	switch v := inner.(type) {
	case *cparse.Ident:
		sym := v.Sym
		if sym == nil {
			x.SetType(ctypes.PointerTo(ctypes.IntT()))
			return x
		}
		if sym.Kind == cparse.SymFunc {
			// &f is just f decayed.
			return decay(v)
		}
		sym.AddrTaken = true
		if sym.AddrType == nil {
			sym.AddrType = ctypes.PointerTo(sym.Type)
		}
		x.X = v
		x.SetType(sym.AddrType)
		return x
	case *cparse.Member:
		f := v.Field
		if f != nil {
			if f.AddrType == nil {
				f.AddrType = ctypes.PointerTo(f.Type)
			}
			if !v.Arrow {
				c.markAddrTaken(v.X)
			}
			x.X = v
			x.SetType(f.AddrType)
			return x
		}
		x.SetType(ctypes.PointerTo(ctypes.IntT()))
		return x
	case *cparse.Index:
		// &p[i] == p + i (shares p's qualifier node).
		add := &cparse.Binary{Op: cparse.Add, X: v.X, Y: v.I}
		add.P = x.Pos()
		add.SetType(v.X.Type())
		return add
	case *cparse.Unary:
		if v.Op == cparse.Deref {
			return v.X // &*p == p
		}
	}
	if !isLvalue(inner) {
		c.diags.Errorf(x.Pos(), "cannot take the address of this expression")
	}
	x.X = inner
	x.SetType(ctypes.PointerTo(inner.Type()))
	return x
}

// markAddrTaken records that the base object of a member chain has its
// address exposed (e.g. &s.f exposes s).
func (c *checker) markAddrTaken(e cparse.Expr) {
	switch v := e.(type) {
	case *cparse.Ident:
		if v.Sym != nil {
			v.Sym.AddrTaken = true
		}
	case *cparse.Member:
		if !v.Arrow {
			c.markAddrTaken(v.X)
		}
	case *cparse.Index:
		// base already behind a pointer
	}
}

func (c *checker) checkBinary(x *cparse.Binary) cparse.Expr {
	x.X = decay(c.checkExpr(x.X))
	x.Y = decay(c.checkExpr(x.Y))
	lt, rt := x.X.Type(), x.Y.Type()

	switch x.Op {
	case cparse.LogAnd, cparse.LogOr:
		if !lt.IsScalar() || !rt.IsScalar() {
			c.diags.Errorf(x.Pos(), "invalid operands %s, %s for %s", lt, rt, x.Op)
		}
		x.SetType(ctypes.IntT())
		return x

	case cparse.Eq, cparse.Ne, cparse.Lt, cparse.Gt, cparse.Le, cparse.Ge:
		switch {
		case lt.IsArith() && rt.IsArith():
			common := usualArith(lt, rt)
			x.X = c.convert(x.X, common)
			x.Y = c.convert(x.Y, common)
		case lt.IsPointer() && rt.IsPointer():
			// Comparing unequal pointer types requires a cast; insert one
			// toward the left type so inference sees it.
			if !ctypes.Equal(lt, rt) {
				x.Y = c.convert(x.Y, lt)
			}
		case lt.IsPointer() && rt.IsInteger():
			x.Y = c.convert(x.Y, lt)
		case rt.IsPointer() && lt.IsInteger():
			x.X = c.convert(x.X, rt)
		default:
			c.diags.Errorf(x.Pos(), "invalid comparison of %s and %s", lt, rt)
		}
		x.SetType(ctypes.IntT())
		return x

	case cparse.Add:
		if lt.IsPointer() && rt.IsInteger() {
			x.SetType(lt)
			return x
		}
		if lt.IsInteger() && rt.IsPointer() {
			x.X, x.Y = x.Y, x.X // normalize: pointer on the left
			x.SetType(rt)
			return x
		}
	case cparse.Sub:
		if lt.IsPointer() && rt.IsInteger() {
			x.SetType(lt)
			return x
		}
		if lt.IsPointer() && rt.IsPointer() {
			if !ctypes.Equal(lt.Elem, rt.Elem) {
				c.diags.Errorf(x.Pos(), "subtraction of incompatible pointers %s and %s", lt, rt)
			}
			x.SetType(ctypes.IntT())
			return x
		}
	}

	// Remaining cases are arithmetic.
	if !lt.IsArith() || !rt.IsArith() {
		c.diags.Errorf(x.Pos(), "invalid operands %s, %s for %s", lt, rt, x.Op)
		x.SetType(ctypes.IntT())
		return x
	}
	switch x.Op {
	case cparse.Rem, cparse.Shl, cparse.Shr, cparse.BitAnd, cparse.BitOr, cparse.BitXor:
		if !lt.IsInteger() || !rt.IsInteger() {
			c.diags.Errorf(x.Pos(), "operator %s requires integers, got %s, %s", x.Op, lt, rt)
		}
	}
	common := usualArith(lt, rt)
	x.X = c.convert(x.X, common)
	x.Y = c.convert(x.Y, common)
	x.SetType(common)
	return x
}

func (c *checker) checkAssign(x *cparse.Assign) cparse.Expr {
	x.L = c.checkExpr(x.L)
	if !isLvalue(x.L) {
		c.diags.Errorf(x.Pos(), "assignment target is not an lvalue")
	}
	lt := x.L.Type()
	if lt.Kind == ctypes.Array {
		c.diags.Errorf(x.Pos(), "cannot assign to an array")
		lt = ctypes.IntT()
	}
	if x.Op < 0 {
		x.R = c.convert(c.checkExpr(x.R), lt)
		x.SetType(lt)
		return x
	}
	// Compound assignment `l op= r`: the lowering evaluates the lvalue
	// address once, reads it, applies the operator, and writes back. Here
	// we validate operand types and convert the right operand; no pointer
	// casts are involved (pointer compound assignment is arithmetic only),
	// so inference loses nothing.
	x.R = decay(c.checkExpr(x.R))
	rt := x.R.Type()
	switch {
	case lt.IsPointer():
		if x.Op != cparse.Add && x.Op != cparse.Sub {
			c.diags.Errorf(x.Pos(), "invalid operator %s= on pointer", x.Op)
		}
		if !rt.IsInteger() {
			c.diags.Errorf(x.Pos(), "pointer %s= requires an integer, got %s", x.Op, rt)
		}
	case lt.IsArith() && rt.IsArith():
		switch x.Op {
		case cparse.Rem, cparse.Shl, cparse.Shr, cparse.BitAnd, cparse.BitOr, cparse.BitXor:
			if !lt.IsInteger() || !rt.IsInteger() {
				c.diags.Errorf(x.Pos(), "operator %s= requires integers", x.Op)
			}
		}
		x.R = c.convert(x.R, usualArith(lt, rt))
	default:
		c.diags.Errorf(x.Pos(), "invalid operands %s, %s for %s=", lt, rt, x.Op)
	}
	x.SetType(lt)
	return x
}

func (c *checker) checkCondExpr(x *cparse.Cond) cparse.Expr {
	x.C = decay(c.checkExpr(x.C))
	if !x.C.Type().IsScalar() {
		c.diags.Errorf(x.Pos(), "?: condition must be scalar")
	}
	x.T = decay(c.checkExpr(x.T))
	x.F = decay(c.checkExpr(x.F))
	tt, ft := x.T.Type(), x.F.Type()
	switch {
	case tt.IsArith() && ft.IsArith():
		common := usualArith(tt, ft)
		x.T = c.convert(x.T, common)
		x.F = c.convert(x.F, common)
		x.SetType(common)
	case tt.IsPointer() && ft.IsPointer():
		if !ctypes.Equal(tt, ft) {
			x.F = c.convert(x.F, tt)
		}
		x.SetType(tt)
	case tt.IsPointer() && isNullConst(x.F):
		x.F = c.convert(x.F, tt)
		x.SetType(tt)
	case ft.IsPointer() && isNullConst(x.T):
		x.T = c.convert(x.T, ft)
		x.SetType(ft)
	case tt.IsVoid() && ft.IsVoid():
		x.SetType(ctypes.VoidType())
	default:
		c.diags.Errorf(x.Pos(), "incompatible ?: arms: %s and %s", tt, ft)
		x.SetType(tt)
	}
	return x
}

func (c *checker) checkCall(x *cparse.Call) cparse.Expr {
	x.Fn = c.checkExpr(x.Fn)
	ft := x.Fn.Type()
	if ft.IsPointer() && ft.Elem.Kind == ctypes.Func {
		ft = ft.Elem
	}
	if ft.Kind != ctypes.Func {
		c.diags.Errorf(x.Pos(), "called object has type %s, not a function", ft)
		x.SetType(ctypes.IntT())
		return x
	}
	fn := ft.Fn
	if len(x.Args) < len(fn.Params) || (len(x.Args) > len(fn.Params) && !fn.Variadic) {
		c.diags.Errorf(x.Pos(), "wrong number of arguments: have %d, want %d",
			len(x.Args), len(fn.Params))
	}
	for i := range x.Args {
		x.Args[i] = c.checkExpr(x.Args[i])
		if i < len(fn.Params) {
			x.Args[i] = c.convert(x.Args[i], fn.Params[i])
		} else {
			// Default argument promotions for variadic tails.
			x.Args[i] = decay(x.Args[i])
			at := x.Args[i].Type()
			if at.IsInteger() && at.Size < 4 {
				x.Args[i] = c.convert(x.Args[i], ctypes.IntT())
			} else if at.Kind == ctypes.Float && at.Size == 4 {
				x.Args[i] = c.convert(x.Args[i], ctypes.FloatType(8))
			}
		}
	}
	x.SetType(fn.Ret)
	return x
}

func (c *checker) checkMember(x *cparse.Member) cparse.Expr {
	x.X = c.checkExpr(x.X)
	t := x.X.Type()
	if x.Arrow {
		t = t.Decay()
		if !t.IsPointer() {
			c.diags.Errorf(x.Pos(), "-> on non-pointer type %s", x.X.Type())
			x.SetType(ctypes.IntT())
			return x
		}
		x.X.SetType(t) // record decay
		t = t.Elem
	}
	if t.Kind != ctypes.Struct {
		c.diags.Errorf(x.Pos(), "member access on non-struct type %s", t)
		x.SetType(ctypes.IntT())
		return x
	}
	if !t.SU.Complete {
		c.diags.Errorf(x.Pos(), "member access on incomplete type %s", t)
		x.SetType(ctypes.IntT())
		return x
	}
	f := t.SU.FieldByName(x.Name)
	if f == nil {
		c.diags.Errorf(x.Pos(), "%s has no field %q", t, x.Name)
		x.SetType(ctypes.IntT())
		return x
	}
	x.Field = f
	x.SetType(f.Type)
	return x
}
