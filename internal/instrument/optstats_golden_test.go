package instrument_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gocured/internal/core"
	"gocured/internal/infer"
)

var update = flag.Bool("update", false, "rewrite golden files with the current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// exampleSource loads one example program's C source: either a .c file on
// disk or the backquoted `const src` literal embedded in an example's
// main.go.
func exampleSource(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(path, ".c") {
		return string(data)
	}
	s := string(data)
	i := strings.Index(s, "const src = `")
	if i < 0 {
		t.Fatalf("%s: no embedded `const src` literal", path)
	}
	s = s[i+len("const src = `"):]
	j := strings.Index(s, "`")
	if j < 0 {
		t.Fatalf("%s: unterminated source literal", path)
	}
	return s[:j]
}

// TestOptimizerStatsGolden pins the optimizer's per-example statistics —
// checks inserted by curing vs eliminated / coalesced / hoisted / widened
// by the optimizer — over the shipped example programs. A change to the
// optimizer that silently regresses (or inflates) its effect shows up as a
// golden diff.
func TestOptimizerStatsGolden(t *testing.T) {
	examples := []struct {
		name, path string
	}{
		{"quickstart", "../../examples/quickstart/main.go"},
		{"oop", "../../examples/oop/main.go"},
		{"explain", "../../examples/explain/wild.c"},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s  %8s  %4s  %4s  %5s  %5s  %6s\n",
		"example", "inserted", "elim", "coal", "hoist", "widen", "remain")
	for _, ex := range examples {
		src := exampleSource(t, ex.path)
		u, err := core.Build(ex.name+".c", src, infer.Options{})
		if err != nil {
			t.Fatalf("%s: %v", ex.name, err)
		}
		inserted := 0
		for _, n := range u.Cured.ChecksInserted {
			inserted += n
		}
		o := u.Cured.Opt
		fmt.Fprintf(&b, "%-10s  %8d  %4d  %4d  %5d  %5d  %6d\n",
			ex.name, inserted, o.Eliminated, o.Coalesced, o.Hoisted, o.Widened,
			inserted-o.Eliminated-o.Coalesced)
		// Per-function detail, sorted by name, for functions the optimizer
		// touched.
		var names []string
		for name, fo := range o.PerFunc {
			if fo.Eliminated+fo.Coalesced+fo.Hoisted+fo.Widened > 0 {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			fo := o.PerFunc[name]
			fmt.Fprintf(&b, "  %-20s  before %3d  after %3d  elim %2d  coal %2d  hoist %2d  widen %2d  blocks %2d  loops %d\n",
				name, fo.Before, fo.After, fo.Eliminated, fo.Coalesced, fo.Hoisted, fo.Widened,
				fo.Blocks, fo.Loops)
		}
	}
	checkGolden(t, "optstats.golden", b.String())
}
