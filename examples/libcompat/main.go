// Library compatibility (§4): a "precompiled library" function —
// gethostbyname — returns a structure laid out exactly as C expects, with
// thin pointers. The cured program reads it directly through SPLIT types
// (data in C layout, metadata in the parallel shadow structure), no deep
// copies and no wrapper needed; bounds still hold because the boundary
// generates metadata for the returned structure.
package main

import (
	"fmt"
	"log"

	"gocured"
)

const src = `
extern int printf(char *fmt, ...);

struct hostent {
    char *h_name;       /* official name */
    char **h_aliases;   /* NULL-terminated alias list */
    int h_addrtype;
};

extern struct hostent *gethostbyname(char *name);

int main(void) {
    /* __SPLIT: use the compatible representation for this structure */
    struct hostent __SPLIT *h = gethostbyname("example.org");
    int i;
    printf("name: %s (addrtype %d)\n", h->h_name, h->h_addrtype);
    for (i = 0; h->h_aliases[i]; i++) {
        printf("alias: %s\n", h->h_aliases[i]);
    }
    return 0;
}
`

func main() {
	prog, err := gocured.Compile("libcompat.c", src, gocured.Options{})
	if err != nil {
		log.Fatal(err)
	}
	s := prog.Stats()
	fmt.Printf("split inference: %d pointers use the compatible representation (%.0f%%), "+
		"%d need metadata pointers\n\n", s.SplitPointers, s.PctSplit, s.MetaPointers)

	for _, mode := range []gocured.Mode{gocured.ModeRaw, gocured.ModeCured} {
		res, err := prog.Run(mode, gocured.RunOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s", mode, res.Stdout)
		if res.Trapped {
			fmt.Printf("TRAPPED: %s\n", res.TrapMessage)
		}
		fmt.Println()
	}

	// The same structure read through a cured pointer still carries
	// bounds: walking past the alias array's NULL terminator traps.
	bad := `
extern int printf(char *fmt, ...);
struct hostent { char *h_name; char **h_aliases; int h_addrtype; };
extern struct hostent *gethostbyname(char *name);
int main(void) {
    struct hostent __SPLIT *h = gethostbyname("example.org");
    /* aliases has 2 entries + NULL; element 5 is out of bounds */
    printf("%s\n", h->h_aliases[5]);
    return 0;
}
`
	prog2, err := gocured.Compile("libcompat-bad.c", bad, gocured.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := prog2.Run(gocured.ModeCured, gocured.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== out-of-bounds walk over library data (cured) ==\ntrapped=%v (%s)\n",
		res.Trapped, res.TrapKind)
}
