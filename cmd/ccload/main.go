// ccload is a load harness for ccserve: it drives a weighted mix of
// cure / cache-hit / run / edit-recure traffic at the server, sweeps
// concurrency levels to chart a saturation curve, and reports latency
// quantiles (p50/p99/p999) per level and per traffic class.
//
// Beyond raw latency it verifies the observability plumbing end to end:
//
//   - it samples the slowest cache-miss request of the sweep and fetches
//     GET /traces/{id}, requiring a ValidateTrace-clean Chrome trace whose
//     spans cover queue wait, the cache tier, and every compile phase,
//     all stamped with the matching trace ID;
//   - it tails GET /events for the whole run and counts sequence gaps
//     (each gap = dropped events for a keeping-up consumer);
//   - it reads GET /metrics afterwards and extracts the trace-buffer
//     drop counter.
//
// With -gate the process exits non-zero if the p99 SLO is violated at the
// gated level, the trace check fails, any request errored, or any
// dropped-span / seq-gap errors occurred — making it suitable as a CI
// smoke gate. The report is written as JSON (BENCH_serve.json by
// convention).
//
// Example:
//
//	ccload -url http://127.0.0.1:8080 -levels 1,2,4,8 -duration 5s \
//	       -slo-p99 250ms -gate -out BENCH_serve.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gocured/internal/loadgen"
)

type sloReport struct {
	P99MS         float64 `json:"p99_ms"`
	Concurrency   int     `json:"concurrency"`
	ObservedP99MS float64 `json:"observed_p99_ms"`
	Pass          bool    `json:"pass"`
}

type report struct {
	GeneratedBy string         `json:"generated_by"`
	Generated   string         `json:"generated"`
	BaseURL     string         `json:"base_url"`
	DurationS   float64        `json:"duration_s_per_level"`
	Mix         map[string]int `json:"mix"`

	// Saturation is the closed-loop sweep, one entry per concurrency
	// level, in ascending order.
	Saturation []loadgen.Result `json:"saturation"`
	// OpenLoop is the optional fixed-arrival-rate run (-rate).
	OpenLoop *loadgen.Result `json:"open_loop,omitempty"`

	TraceCheck    loadgen.TraceCheck `json:"trace_check"`
	Events        loadgen.EventStats `json:"events"`
	TracesDropped uint64             `json:"traces_dropped"`

	SLO        *sloReport `json:"slo,omitempty"`
	Violations []string   `json:"violations,omitempty"`
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	return out, nil
}

func parseMix(s string) (map[string]int, error) {
	if s == "" {
		return loadgen.DefaultMix(), nil
	}
	mix := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", part)
		}
		mix[strings.TrimSpace(name)] = w
	}
	return mix, nil
}

func main() {
	var (
		url       = flag.String("url", "http://127.0.0.1:8080", "ccserve base URL")
		levels    = flag.String("levels", "1,2,4,8", "comma-separated closed-loop concurrency sweep")
		duration  = flag.Duration("duration", 5*time.Second, "duration per sweep level")
		rate      = flag.Float64("rate", 0, "additional open-loop run at this arrival rate (req/s; 0 = skip)")
		mixFlag   = flag.String("mix", "", "traffic mix as class=weight,... (classes: hit,run,cure,edit)")
		seed      = flag.Int64("seed", 1, "random seed for the class sequence")
		waitReady = flag.Duration("wait-ready", 30*time.Second, "how long to poll /readyz before starting")
		out       = flag.String("out", "BENCH_serve.json", "report path (- = stdout)")
		sloP99    = flag.Duration("slo-p99", 0, "p99 latency SLO at the gated level (0 = no SLO)")
		sloLevel  = flag.Int("slo-level", 0, "concurrency level the SLO applies to (0 = lowest swept level)")
		gate      = flag.Bool("gate", false, "exit non-zero on SLO violation, trace-check failure, errors, or seq gaps")
	)
	flag.Parse()

	lvls, err := parseLevels(*levels)
	if err != nil {
		fatal(err)
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fatal(err)
	}

	ctx := context.Background()
	if err := loadgen.WaitReady(ctx, nil, *url, *waitReady); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ccload: %s ready; sweeping concurrency %v, %v per level\n", *url, lvls, *duration)

	watcher := loadgen.WatchEvents(ctx, nil, *url)

	rep := report{
		GeneratedBy: "ccload",
		Generated:   time.Now().UTC().Format(time.RFC3339),
		BaseURL:     *url,
		DurationS:   duration.Seconds(),
		Mix:         mix,
	}

	// The trace check samples a high-latency cache miss. The server's trace
	// buffer is bounded, so a trace from early in the sweep may be evicted
	// by later traffic — check right after each run while its traces are
	// still live, preferring the level's slowest miss and falling back to
	// its most recent one. The slowest passing check across the sweep wins.
	var traceCheck *loadgen.TraceCheck
	traceCheckMS := 0.0
	checkRun := func(res loadgen.Result) {
		candidates := []struct {
			id string
			ms float64
		}{
			{res.SlowestMissTraceID, res.SlowestMissMS},
			{res.LastMissTraceID, res.LastMissMS},
		}
		for _, cand := range candidates {
			if cand.id == "" {
				continue
			}
			tc := loadgen.CheckTrace(ctx, nil, *url, cand.id, loadgen.RequiredCompileSpans)
			if tc.OK {
				if traceCheck == nil || !traceCheck.OK || cand.ms >= traceCheckMS {
					traceCheck, traceCheckMS = &tc, cand.ms
				}
				return
			}
			if traceCheck == nil || !traceCheck.OK {
				traceCheck = &tc
			}
		}
	}

	for _, c := range lvls {
		res, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:     *url,
			Duration:    *duration,
			Concurrency: c,
			Mix:         mix,
			Seed:        *seed + int64(c),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccload: c=%-3d %6.1f req/s  p50=%.2fms p99=%.2fms p999=%.2fms errs=%d\n",
			c, res.ThroughputRPS, res.P50MS, res.P99MS, res.P999MS, res.Errors)
		rep.Saturation = append(rep.Saturation, res)
		checkRun(res)
	}

	if *rate > 0 {
		res, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:    *url,
			Duration:   *duration,
			RatePerSec: *rate,
			Mix:        mix,
			Seed:       *seed,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccload: open loop %.0f req/s  p50=%.2fms p99=%.2fms p999=%.2fms errs=%d\n",
			*rate, res.P50MS, res.P99MS, res.P999MS, res.Errors)
		rep.OpenLoop = &res
		checkRun(res)
	}

	rep.Events = watcher.Stop()
	if traceCheck != nil {
		rep.TraceCheck = *traceCheck
	} else {
		rep.TraceCheck.Err = "no cache-miss trace sampled in any run"
	}
	if m, err := loadgen.FetchMetrics(ctx, nil, *url); err != nil {
		rep.Violations = append(rep.Violations, "metrics: "+err.Error())
	} else if m.Traces != nil {
		rep.TracesDropped = m.Traces.Dropped
	}

	// Gate evaluation. Violations are always reported; -gate decides
	// whether they are fatal.
	if *sloP99 > 0 {
		gated := rep.Saturation[0]
		if *sloLevel > 0 {
			found := false
			for _, r := range rep.Saturation {
				if r.Concurrency == *sloLevel {
					gated, found = r, true
					break
				}
			}
			if !found {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("slo-level %d not in sweep %v", *sloLevel, lvls))
			}
		}
		slo := &sloReport{
			P99MS:         float64(*sloP99) / float64(time.Millisecond),
			Concurrency:   gated.Concurrency,
			ObservedP99MS: gated.P99MS,
		}
		slo.Pass = slo.ObservedP99MS <= slo.P99MS
		rep.SLO = slo
		if !slo.Pass {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("p99 SLO: %.2fms > %.2fms at concurrency %d",
					slo.ObservedP99MS, slo.P99MS, slo.Concurrency))
		}
	}
	if !rep.TraceCheck.OK {
		rep.Violations = append(rep.Violations, "trace check: "+rep.TraceCheck.Err)
	}
	if rep.Events.SeqGaps > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("event stream: %d seq gaps (%d events dropped)", rep.Events.SeqGaps, rep.Events.Dropped))
	}
	if rep.Events.Err != "" {
		rep.Violations = append(rep.Violations, "event stream: "+rep.Events.Err)
	}
	if rep.TracesDropped > 0 {
		rep.Violations = append(rep.Violations,
			fmt.Sprintf("trace buffer dropped %d traces", rep.TracesDropped))
	}
	for _, r := range rep.Saturation {
		if r.Errors > 0 {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%d request errors at concurrency %d", r.Errors, r.Concurrency))
		}
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "ccload: report written to %s\n", *out)
	}

	if len(rep.Violations) > 0 {
		for _, v := range rep.Violations {
			fmt.Fprintf(os.Stderr, "ccload: VIOLATION: %s\n", v)
		}
		if *gate {
			os.Exit(1)
		}
	} else {
		fmt.Fprintln(os.Stderr, "ccload: all gates passed")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ccload:", err)
	os.Exit(2)
}
