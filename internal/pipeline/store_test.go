package pipeline

import (
	"context"
	"testing"

	"gocured"
	"gocured/internal/store"
)

func openArtifacts(t *testing.T, dir string) *store.Artifacts {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return store.NewArtifacts(s, gocured.Version, "go-test")
}

// TestRunnerWarmRestart is the tentpole's pipeline-level guarantee: two
// Runner lifetimes (two "server processes") sharing one store directory,
// where the second serves the full corpus compile workload without
// re-collecting a single storable function.
func TestRunnerWarmRestart(t *testing.T) {
	dir := t.TempDir()
	jobs := CorpusCompileJobs(0)

	r1 := NewRunner(RunnerOptions{Workers: 4, Store: openArtifacts(t, dir)})
	for _, res := range r1.DoAll(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatalf("cold %s: %v", res.Name, res.Err)
		}
		if res.Incr.Loaded != 0 {
			t.Fatalf("cold %s loaded %d functions from an empty store", res.Name, res.Incr.Loaded)
		}
	}

	// A fresh Runner: the memory cache is gone, only the disk tier remains.
	r2 := NewRunner(RunnerOptions{Workers: 4, Store: openArtifacts(t, dir)})
	var recured, loaded, unstorable int
	for _, res := range r2.DoAll(context.Background(), jobs) {
		if res.Err != nil {
			t.Fatalf("warm %s: %v", res.Name, res.Err)
		}
		if res.CacheHit {
			t.Fatalf("warm %s unexpectedly hit the fresh memory cache", res.Name)
		}
		recured += res.Incr.Recured
		loaded += res.Incr.Loaded
		unstorable += res.Incr.Unstorable
	}
	if recured != unstorable {
		t.Errorf("warm restart re-collected %d functions beyond the %d unstorable ones", recured-unstorable, unstorable)
	}
	if loaded == 0 {
		t.Error("warm restart loaded nothing from the store")
	}

	m := r2.Metrics()
	if m.Store == nil {
		t.Fatal("Metrics.Store nil with a store configured")
	}
	if m.Store.Hits == 0 || m.Store.Chunks == 0 || m.Store.Bytes == 0 {
		t.Errorf("store metrics not populated: %+v", *m.Store)
	}
	if int(m.FuncsLoaded) != loaded || int(m.FuncsRecured) != recured {
		t.Errorf("metrics funcs loaded/recured = %d/%d, want %d/%d", m.FuncsLoaded, m.FuncsRecured, loaded, recured)
	}
}

// TestStoredCompileIdentical asserts the store changes performance, never
// results: cold (writing), warm (replaying), and store-less compiles of the
// same job agree on stats, diagnostics, and execution behaviour.
func TestStoredCompileIdentical(t *testing.T) {
	dir := t.TempDir()
	jobs := CorpusJobs([]gocured.Mode{gocured.ModeCured}, 0)
	ro := gocured.RunOptions{StepLimit: 2_000_000}
	for i := range jobs {
		jobs[i].RunOptions = ro
	}

	plain := NewRunner(RunnerOptions{Workers: 4, CacheEntries: -1})
	cold := NewRunner(RunnerOptions{Workers: 4, CacheEntries: -1, Store: openArtifacts(t, dir)})
	warm := NewRunner(RunnerOptions{Workers: 4, CacheEntries: -1, Store: openArtifacts(t, dir)})

	base := plain.DoAll(context.Background(), jobs)
	for pass, r := range map[string]*Runner{"cold": cold, "warm": warm} {
		for i, res := range r.DoAll(context.Background(), jobs) {
			want := base[i]
			if (res.Err != nil) != (want.Err != nil) {
				t.Fatalf("%s %s: err %v vs %v", pass, res.Name, res.Err, want.Err)
			}
			if res.Err != nil {
				continue
			}
			if res.Stats != want.Stats {
				t.Errorf("%s %s: stats diverged from store-less compile", pass, res.Name)
			}
			if res.Run.Trapped != want.Run.Trapped || res.Run.ExitCode != want.Run.ExitCode ||
				res.Run.Stdout != want.Run.Stdout || res.Run.Checks != want.Run.Checks {
				t.Errorf("%s %s: execution diverged from store-less compile", pass, res.Name)
			}
		}
	}
}
