// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the gocured corpus. Each experiment returns a Table
// with the measured values next to the paper's published numbers; the
// bench harness (bench_test.go) and cmd/ccbench drive them.
//
// Absolute numbers differ from the paper — our substrate is an interpreter
// over simulated memory, not gcc on a 2003 machine — but the shapes are
// preserved: CCured's type-directed checks cost a fraction of the
// shadow-memory tools, RTTI rescues the ijpeg-style downcast-heavy code
// from WILD, and split types are cheap except for pointer-dense code.
package experiments

import (
	"fmt"
	"strings"

	"gocured/internal/core"
	"gocured/internal/corpus"
	"gocured/internal/infer"
	"gocured/internal/interp"
)

// Config tunes experiment cost.
type Config struct {
	// Scale overrides the corpus SCALE constant (0 keeps the source value).
	Scale int
}

// Table is one reproduced table/figure.
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "   %s\n", line)
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// All runs every experiment.
func All(cfg Config) []*Table {
	return []*Table{
		CastClassification(cfg),
		Fig8Apache(cfg),
		Fig9System(cfg),
		IjpegRTTI(cfg),
		MicroSuite(cfg),
		SplitOverhead(cfg),
		BindCasts(cfg),
		SplitStats(cfg),
		Exploits(cfg),
	}
}

// ---- shared plumbing ----

type built struct {
	unit  *core.Unit
	prog  *corpus.Program
	lines int
}

func mustBuild(p *corpus.Program, opts infer.Options, scale int) *built {
	src := p.Source
	if scale > 0 {
		src = corpus.WithScale(p, scale)
	}
	u, err := core.Build(p.Name+".c", src, opts)
	if err != nil {
		panic(fmt.Sprintf("experiments: build %s: %v", p.Name, err))
	}
	lines := 0
	for _, l := range strings.Split(src, "\n") {
		if strings.TrimSpace(l) != "" {
			lines++
		}
	}
	return &built{unit: u, prog: p, lines: lines}
}

func defaultOpts(p *corpus.Program) infer.Options {
	return infer.Options{TrustBadCasts: p.TrustBadCasts}
}

// cost executes the program once under a policy and returns the
// deterministic simulated-cycle count. Experiment tables use cost ratios:
// reproducible run to run, unlike wall time over an interpreter, while
// wall-clock behaviour is still exercised by bench_test.go.
func (b *built) cost(policy interp.Policy) uint64 {
	var out *interp.Outcome
	var err error
	if policy == interp.PolicyCured {
		out, err = b.unit.RunCured(interp.Config{})
	} else {
		out, err = b.unit.RunRaw(policy, interp.Config{})
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: run %s/%s: %v", b.prog.Name, policy, err))
	}
	if out.Trap != nil {
		panic(fmt.Sprintf("experiments: %s trapped under %s: %v", b.prog.Name, policy, out.Trap))
	}
	return out.Counters.Cost
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func pctStr(f float64) string { return fmt.Sprintf("%.0f", f) }

// kindCols renders the sf/sq/w/rt column of Figures 8 and 9.
func kindCols(s infer.Stats) string {
	return fmt.Sprintf("%s/%s/%s/%s",
		pctStr(s.PctSafe()), pctStr(s.PctSeq()), pctStr(s.PctWild()), pctStr(s.PctRtti()))
}
