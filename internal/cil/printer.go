package cil

import (
	"fmt"
	"io"
	"strings"
)

// Print writes a readable rendering of the program to w (for debugging and
// the ccured CLI's --dump mode).
func Print(w io.Writer, p *Program) {
	pr := &printer{w: w}
	for _, g := range p.Globals {
		pr.printf("global %s : %s", g.Var.Name, g.Var.Type)
		if g.Init != nil {
			pr.printf(" = %s", initString(g.Init))
		}
		pr.printf("\n")
	}
	for _, f := range p.Funcs {
		pr.printFunc(f)
	}
}

// FprintFunc writes the readable rendering of a single function to w. The
// infer package fingerprints function bodies with it: the rendering is a
// pure function of the lowered body, so two parses of the same source
// produce byte-identical output.
func FprintFunc(w io.Writer, f *Func) {
	pr := &printer{w: w}
	pr.printFunc(f)
}

type printer struct {
	w      io.Writer
	indent int
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(pr.w, format, args...)
}

func (pr *printer) line(format string, args ...any) {
	fmt.Fprintf(pr.w, "%s", strings.Repeat("  ", pr.indent))
	fmt.Fprintf(pr.w, format, args...)
	fmt.Fprintln(pr.w)
}

func (pr *printer) printFunc(f *Func) {
	var params []string
	for _, p := range f.Params {
		params = append(params, fmt.Sprintf("%s : %s", p.Name, p.Type))
	}
	pr.line("func %s(%s) : %s {", f.Name, strings.Join(params, ", "), f.Type.Fn.Ret)
	pr.indent++
	for _, l := range f.Locals {
		pr.line("local %s : %s", l.Name, l.Type)
	}
	pr.printBlock(f.Body)
	pr.indent--
	pr.line("}")
}

func (pr *printer) printBlock(b *Block) {
	for _, s := range b.Stmts {
		pr.printStmt(s)
	}
}

func (pr *printer) printStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		pr.printBlock(st)
	case *SInstr:
		pr.line("%s", InstrString(st.Ins))
	case *If:
		pr.line("if (%s) {", ExprString(st.Cond))
		pr.indent++
		pr.printBlock(st.Then)
		pr.indent--
		if st.Else != nil {
			pr.line("} else {")
			pr.indent++
			pr.printBlock(st.Else)
			pr.indent--
		}
		pr.line("}")
	case *Loop:
		pr.line("loop {")
		pr.indent++
		pr.printBlock(st.Body)
		if st.Post != nil {
			pr.indent--
			pr.line("} post {")
			pr.indent++
			pr.printBlock(st.Post)
		}
		pr.indent--
		pr.line("}")
	case *Break:
		pr.line("break")
	case *Continue:
		pr.line("continue")
	case *Return:
		if st.X != nil {
			pr.line("return %s", ExprString(st.X))
		} else {
			pr.line("return")
		}
	case *Switch:
		pr.line("switch (%s) {", ExprString(st.X))
		pr.indent++
		for _, c := range st.Cases {
			if c.IsDefault {
				pr.line("default:")
			} else {
				pr.line("case %d:", c.Val)
			}
			pr.indent++
			for _, s2 := range c.Body {
				pr.printStmt(s2)
			}
			pr.indent--
		}
		pr.indent--
		pr.line("}")
	default:
		pr.line("<unknown stmt %T>", s)
	}
}

// initString renders a static initializer.
func initString(in *Init) string {
	switch {
	case in == nil || in.Zero:
		return "0"
	case in.IsList:
		parts := make([]string, len(in.List))
		for i, e := range in.List {
			parts[i] = initString(e)
		}
		return "{" + strings.Join(parts, ", ") + "}"
	default:
		return ExprString(in.Expr)
	}
}

// InstrString renders an instruction.
func InstrString(i Instr) string {
	switch in := i.(type) {
	case *Set:
		return fmt.Sprintf("%s = %s", LvalString(in.LV), ExprString(in.RHS))
	case *Call:
		var b strings.Builder
		if in.Result != nil {
			fmt.Fprintf(&b, "%s = ", LvalString(in.Result))
		}
		fmt.Fprintf(&b, "%s(", ExprString(in.Fn))
		for idx, a := range in.Args {
			if idx > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ExprString(a))
		}
		b.WriteString(")")
		return b.String()
	case *Check:
		s := fmt.Sprintf("__check_%s(%s", in.Kind, ExprString(in.Ptr))
		if in.Size != 0 {
			s += fmt.Sprintf(", %d", in.Size)
		}
		if in.RttiTarget != nil {
			s += fmt.Sprintf(", rttiOf(%s)", in.RttiTarget)
		}
		return s + ")"
	}
	return fmt.Sprintf("<unknown instr %T>", i)
}

// LvalString renders an lvalue.
func LvalString(lv *Lvalue) string {
	var b strings.Builder
	if lv.Var != nil {
		b.WriteString(lv.Var.Name)
	} else {
		fmt.Fprintf(&b, "(*%s)", ExprString(lv.Mem))
	}
	for _, o := range lv.Offset {
		if o.Field != nil {
			fmt.Fprintf(&b, ".%s", o.Field.Name)
		} else {
			fmt.Fprintf(&b, "[%s]", ExprString(o.Index))
		}
	}
	return b.String()
}

// ExprString renders an expression.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *Const:
		return fmt.Sprintf("%d", x.I)
	case *SizeOf:
		return fmt.Sprintf("sizeof(%s)", x.Of)
	case *FConst:
		return fmt.Sprintf("%g", x.F)
	case *StrConst:
		return fmt.Sprintf("%q", x.S)
	case *FnConst:
		return "&" + x.Name
	case *Lval:
		return LvalString(x.LV)
	case *AddrOf:
		return "&" + LvalString(x.LV)
	case *BinOp:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.A), x.Op, ExprString(x.B))
	case *UnOp:
		op := x.Op.String()
		if x.Op == OpNeg {
			op = "-"
		}
		return fmt.Sprintf("%s%s", op, ExprString(x.X))
	case *Cast:
		mark := ""
		if x.Trusted {
			mark = "trusted "
		}
		return fmt.Sprintf("(%s%s)%s", mark, x.To, ExprString(x.X))
	}
	return fmt.Sprintf("<unknown expr %T>", e)
}
