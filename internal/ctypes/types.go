// Package ctypes represents C types for the gocured pipeline: construction,
// ILP32 layout (sizeof/alignof/field offsets), printing, and the physical
// type equality / physical subtyping relations from §3.1 of "CCured in the
// Real World" (PLDI 2003).
//
// Pointer and array type occurrences carry qualifier node identifiers
// (assigned by the inference engine); a typedef shares one Type value, so a
// typedef'd pointer has a single program-wide qualifier, exactly as in CCured.
package ctypes

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Word is the machine word size in bytes. The paper's appendix assumes
// 4-byte words (ILP32); all layout and tag computations use it.
const Word = 4

// Kind discriminates the C type constructors.
type Kind int

const (
	// Void is the C void type. For physical subtyping it behaves as the
	// empty structure: every type is a physical subtype of void.
	Void Kind = iota
	// Int covers all integer types (including char, enums and _Bool),
	// distinguished by Size and Signed.
	Int
	// Float covers float (Size 4) and double (Size 8).
	Float
	// Ptr is a pointer type; Elem is the pointee.
	Ptr
	// Array is a constant-size array; Elem is the element, Len the count.
	Array
	// Struct is a struct or union type; SU carries the definition.
	Struct
	// Func is a function type; Fn carries the signature. Only pointers to
	// Func are first-class values.
	Func
)

// Type is one C type occurrence. Pointer and array occurrences are distinct
// values (each syntactic `*` in the program has its own Type), while struct
// definitions are shared through SU.
type Type struct {
	Kind   Kind
	Size   int  // Int, Float: size in bytes
	Signed bool // Int: signedness
	Elem   *Type
	Len    int // Array: element count; -1 if incomplete ([])
	SU     *StructInfo
	Fn     *FuncInfo

	// Node is the pointer-kind qualifier node id for Ptr and Array
	// occurrences; 0 means not yet assigned.
	Node int
	// SNode is the SPLIT-qualifier node id (§4.2); SPLIT applies to all
	// types, so every occurrence may receive one. 0 means unassigned.
	SNode int

	// Ann records a programmer-supplied pointer-kind annotation
	// (__SAFE/__SEQ/__WILD/__RTTI) on this occurrence.
	Ann KindAnn
	// SplitAnnot records a programmer-supplied __SPLIT/__NOSPLIT
	// annotation on this occurrence.
	SplitAnnot SplitAnn

	// DecayOf links a decayed pointer occurrence back to the array
	// occurrence it came from; the inference unifies their qualifier
	// nodes (the decayed pointer IS the array pointer).
	DecayOf *Type
	decayed *Type // cached Decay() result, one per array occurrence
}

// KindAnn is a source-level pointer-kind annotation.
type KindAnn uint8

// Pointer-kind annotations.
const (
	AnnNone KindAnn = iota
	AnnSafe
	AnnSeq
	AnnWild
	AnnRtti
)

// SplitAnn is a source-level SPLIT/NOSPLIT annotation.
type SplitAnn uint8

// Split annotations.
const (
	SAnnNone SplitAnn = iota
	SAnnSplit
	SAnnNoSplit
)

// StructInfo is the shared definition of a struct or union.
type StructInfo struct {
	Name     string // tag name; may be "" for anonymous
	Union    bool
	Fields   []*Field
	Complete bool

	// ID is a unique identifier assigned at creation, usable as a map key
	// for hierarchy construction.
	ID int

	size, align int
	laidOut     bool
}

// Field is one member of a struct or union.
type Field struct {
	Name   string
	Type   *Type
	Offset int // byte offset, filled in by layout
	// Parent is the defining struct (set by Define).
	Parent *StructInfo

	// AddrType is the shared pointer-type occurrence used for every &s.f
	// expression on this field, so that all of them share one qualifier
	// node (CCured associates one qualifier with the address of each
	// structure field). Created on demand by sema.
	AddrType *Type
}

// FuncInfo is a function signature.
type FuncInfo struct {
	Ret      *Type
	Params   []*Type
	Names    []string // parameter names, parallel to Params (may be empty)
	Variadic bool
}

// nextStructID is atomic so that independent translation units can be
// compiled concurrently (the pipeline Runner fans Build out over a worker
// pool) while struct IDs stay process-unique.
var nextStructID atomic.Int64

// NewStruct creates a fresh, incomplete struct or union definition.
func NewStruct(name string, union bool) *StructInfo {
	return &StructInfo{Name: name, Union: union, ID: int(nextStructID.Add(1))}
}

// Define completes a struct definition with its fields and computes layout.
func (s *StructInfo) Define(fields []*Field) {
	s.Fields = fields
	s.Complete = true
	s.laidOut = false
	for _, f := range fields {
		f.Parent = s
	}
	s.layout()
}

// FieldByName returns the field with the given name, or nil.
func (s *StructInfo) FieldByName(name string) *Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Constructors for the basic types. Each call returns a fresh value so that
// distinct occurrences can carry distinct qualifier nodes.

// VoidType returns a fresh void type.
func VoidType() *Type { return &Type{Kind: Void} }

// IntType returns a fresh integer type of the given byte size and signedness.
func IntType(size int, signed bool) *Type { return &Type{Kind: Int, Size: size, Signed: signed} }

// CharType returns a fresh char (signed, 1 byte).
func CharType() *Type { return IntType(1, true) }

// IntT returns a fresh int (signed, 4 bytes).
func IntT() *Type { return IntType(4, true) }

// UIntT returns a fresh unsigned int.
func UIntT() *Type { return IntType(4, false) }

// FloatType returns a fresh floating type of the given byte size (4 or 8).
func FloatType(size int) *Type { return &Type{Kind: Float, Size: size} }

// PointerTo returns a fresh pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Ptr, Elem: elem} }

// ArrayOf returns a fresh array type of n elements of elem.
func ArrayOf(elem *Type, n int) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// StructType returns a fresh type occurrence referring to the definition su.
func StructType(su *StructInfo) *Type { return &Type{Kind: Struct, SU: su} }

// FuncType returns a fresh function type.
func FuncType(ret *Type, params []*Type, names []string, variadic bool) *Type {
	return &Type{Kind: Func, Fn: &FuncInfo{Ret: ret, Params: params, Names: names, Variadic: variadic}}
}

// IsVoid reports whether t is void.
func (t *Type) IsVoid() bool { return t.Kind == Void }

// IsInteger reports whether t is an integer type.
func (t *Type) IsInteger() bool { return t.Kind == Int }

// IsArith reports whether t is an arithmetic (integer or floating) type.
func (t *Type) IsArith() bool { return t.Kind == Int || t.Kind == Float }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == Ptr }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.IsPointer() }

// IsFuncPtr reports whether t is a pointer to a function type.
func (t *Type) IsFuncPtr() bool { return t.Kind == Ptr && t.Elem.Kind == Func }

// Decay returns the type after array-to-pointer decay. For an array type it
// returns the (cached, per-occurrence) pointer to the element; the DecayOf
// back-link lets the inference unify the two occurrences' qualifier nodes,
// so the array and its decayed pointer share one kind.
func (t *Type) Decay() *Type {
	if t.Kind == Array {
		if t.decayed == nil {
			p := PointerTo(t.Elem)
			p.Node = t.Node
			p.SNode = t.SNode
			p.Ann = t.Ann
			p.SplitAnnot = t.SplitAnnot
			p.DecayOf = t
			t.decayed = p
		}
		return t.decayed
	}
	return t
}

// Sizeof returns the byte size of t under ILP32 layout. Incomplete types
// and function types have size 0.
func Sizeof(t *Type) int {
	switch t.Kind {
	case Void, Func:
		return 0
	case Int, Float:
		return t.Size
	case Ptr:
		return Word
	case Array:
		if t.Len < 0 {
			return 0
		}
		return t.Len * Sizeof(t.Elem)
	case Struct:
		t.SU.layout()
		return t.SU.size
	}
	return 0
}

// Alignof returns the alignment of t in bytes.
func Alignof(t *Type) int {
	switch t.Kind {
	case Void, Func:
		return 1
	case Int, Float:
		return t.Size
	case Ptr:
		return Word
	case Array:
		return Alignof(t.Elem)
	case Struct:
		t.SU.layout()
		return t.SU.align
	}
	return 1
}

func align(off, a int) int {
	if a <= 1 {
		return off
	}
	return (off + a - 1) / a * a
}

func (s *StructInfo) layout() {
	if s.laidOut || !s.Complete {
		return
	}
	s.laidOut = true
	s.align = 1
	if s.Union {
		for _, f := range s.Fields {
			f.Offset = 0
			if a := Alignof(f.Type); a > s.align {
				s.align = a
			}
			if sz := Sizeof(f.Type); sz > s.size {
				s.size = sz
			}
		}
	} else {
		off := 0
		for _, f := range s.Fields {
			a := Alignof(f.Type)
			if a > s.align {
				s.align = a
			}
			off = align(off, a)
			f.Offset = off
			off += Sizeof(f.Type)
		}
		s.size = off
	}
	s.size = align(s.size, s.align)
}

// String renders t in C-like syntax (types read inside-out; we use a
// simplified left-to-right rendering adequate for diagnostics).
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Void:
		return "void"
	case Int:
		name := ""
		switch t.Size {
		case 1:
			name = "char"
		case 2:
			name = "short"
		case 4:
			name = "int"
		case 8:
			name = "long long"
		default:
			name = fmt.Sprintf("int%d", t.Size*8)
		}
		if !t.Signed {
			return "unsigned " + name
		}
		return name
	case Float:
		if t.Size == 4 {
			return "float"
		}
		return "double"
	case Ptr:
		return t.Elem.String() + "*"
	case Array:
		if t.Len < 0 {
			return t.Elem.String() + "[]"
		}
		return fmt.Sprintf("%s[%d]", t.Elem, t.Len)
	case Struct:
		kw := "struct"
		if t.SU.Union {
			kw = "union"
		}
		if t.SU.Name != "" {
			return kw + " " + t.SU.Name
		}
		return fmt.Sprintf("%s <anon#%d>", kw, t.SU.ID)
	case Func:
		var b strings.Builder
		b.WriteString(t.Fn.Ret.String())
		b.WriteString(" (")
		for i, p := range t.Fn.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		if t.Fn.Variadic {
			if len(t.Fn.Params) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...")
		}
		b.WriteString(")")
		return b.String()
	}
	return "<bad type>"
}

// Equal reports structural equality of two types, ignoring qualifier nodes.
// Used for "identical type" cast classification and signature matching.
func Equal(a, b *Type) bool {
	return equal(a, b, make(map[[2]int]bool))
}

func equal(a, b *Type, seen map[[2]int]bool) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Void:
		return true
	case Int:
		return a.Size == b.Size && a.Signed == b.Signed
	case Float:
		return a.Size == b.Size
	case Ptr:
		return equal(a.Elem, b.Elem, seen)
	case Array:
		return a.Len == b.Len && equal(a.Elem, b.Elem, seen)
	case Struct:
		if a.SU == b.SU {
			return true
		}
		key := [2]int{a.SU.ID, b.SU.ID}
		if a.SU.ID > b.SU.ID {
			key = [2]int{b.SU.ID, a.SU.ID}
		}
		if seen[key] {
			return true // coinductive: assume equal while comparing
		}
		seen[key] = true
		if a.SU.Union != b.SU.Union || len(a.SU.Fields) != len(b.SU.Fields) {
			return false
		}
		for i := range a.SU.Fields {
			fa, fb := a.SU.Fields[i], b.SU.Fields[i]
			if fa.Name != fb.Name || !equal(fa.Type, fb.Type, seen) {
				return false
			}
		}
		return true
	case Func:
		fa, fb := a.Fn, b.Fn
		if fa.Variadic != fb.Variadic || len(fa.Params) != len(fb.Params) {
			return false
		}
		if !equal(fa.Ret, fb.Ret, seen) {
			return false
		}
		for i := range fa.Params {
			if !equal(fa.Params[i], fb.Params[i], seen) {
				return false
			}
		}
		return true
	}
	return false
}

// Walk visits t and every type reachable from it (pointee, element, field,
// signature types), calling f on each occurrence exactly once per syntactic
// occurrence. Struct definitions are visited once.
func Walk(t *Type, f func(*Type)) {
	walk(t, f, make(map[*StructInfo]bool))
}

func walk(t *Type, f func(*Type), seen map[*StructInfo]bool) {
	if t == nil {
		return
	}
	f(t)
	switch t.Kind {
	case Ptr, Array:
		walk(t.Elem, f, seen)
	case Struct:
		if seen[t.SU] {
			return
		}
		seen[t.SU] = true
		for _, fl := range t.SU.Fields {
			walk(fl.Type, f, seen)
		}
	case Func:
		walk(t.Fn.Ret, f, seen)
		for _, p := range t.Fn.Params {
			walk(p, f, seen)
		}
	}
}
