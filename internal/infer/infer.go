// Package infer implements CCured's whole-program pointer-kind inference,
// extended per "CCured in the Real World" (PLDI 2003) with physical
// subtyping for upcasts (§3.1), RTTI pointers for checked downcasts (§3.2),
// trusted casts, and SPLIT/NOSPLIT inference for the compatible metadata
// representation (§4.2).
//
// The algorithm associates a qualifier node with each syntactic occurrence
// of a pointer type, the address of each variable, and the address of each
// structure field; generates constraints from casts, assignments, and
// pointer arithmetic; and solves for the cheapest kinds: SAFE wherever
// possible, then RTTI, then SEQ, with WILD only for genuinely bad casts.
package infer

import (
	"gocured/internal/cil"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/qual"
	"gocured/internal/rtti"
	"gocured/internal/trace"
)

// Options configure the inference.
type Options struct {
	// NoRTTI disables the RTTI pointer kind: downcasts become bad casts
	// (the pre-PLDI03 behaviour; used for the ijpeg ablation).
	NoRTTI bool
	// NoPhysicalSubtyping disables upcast verification: upcasts become bad
	// casts (original POPL02 CCured behaviour).
	NoPhysicalSubtyping bool
	// TrustBadCasts treats every remaining bad cast as trusted instead of
	// making pointers WILD (the bind experiment trades soundness for the
	// efficient kinds; a security review starts at these casts).
	TrustBadCasts bool
	// SplitAll forces the compatible (split) representation on every
	// non-WILD type — the "all types split" overhead ablation of §5.
	SplitAll bool
	// NoOptimize disables the post-curing check optimizer (-O0). Consumed
	// by the build pipeline, not by inference itself; it lives here so one
	// options struct keys compile caching for the whole pipeline.
	NoOptimize bool
}

// CastClass classifies one cast site.
type CastClass int

// Cast classes. Identity covers physically-equal pointer types.
const (
	CastNonPtr CastClass = iota
	CastIdentity
	CastUpcast
	CastDowncast
	CastSeqTile // same tiling, valid between SEQ pointers
	CastNull    // the constant 0 to a pointer
	CastIntToPtr
	CastPtrToInt
	CastFromPtrTrusted
	CastBad
	// CastAlloc is a cast of an allocator's fresh result (malloc, calloc,
	// realloc) to its use type. CCured types allocators polymorphically:
	// the fresh memory adopts the destination type and the bounds come
	// from the allocation, so no constraint is generated.
	CastAlloc
)

var castClassNames = [...]string{"non-ptr", "identity", "upcast", "downcast",
	"seq-tile", "null", "int2ptr", "ptr2int", "trusted", "bad", "alloc"}

func (c CastClass) String() string { return castClassNames[c] }

// CastSite records the classification of one cast occurrence.
type CastSite struct {
	Pos     diag.Pos
	From    *ctypes.Type
	To      *ctypes.Type
	Class   CastClass
	TileOK  bool // for upcasts: whether the SEQ tiling rule also holds
	Trusted bool
	// WentWild is set during solving if the site had to be demoted to WILD
	// (e.g. a SEQ upcast whose tiling fails).
	WentWild bool
}

// Result is the outcome of inference.
type Result struct {
	Graph *qual.Graph
	Hier  *rtti.Hierarchy
	Casts []*CastSite
	// CastOf maps IR cast nodes to their classification (used by the
	// instrumenter to place RTTI checks).
	CastOf map[*cil.Cast]*CastSite
	Opts   Options
	Split  *SplitResult
	// Prov records every constraint edge and kind-forcing fact generated
	// during inference; Explain reconstructs blame chains from it.
	Prov *trace.Prov
}

// Explain reconstructs the blame chain for the solved kind of the pointer
// occurrence t: the shortest constraint path from t back to the cast (or
// arithmetic, annotation, ...) that forced it WILD, SEQ, or RTTI. Returns
// nil for SAFE pointers (nothing to blame) and unregistered occurrences.
func (r *Result) Explain(t *ctypes.Type) *trace.Chain {
	if r == nil || r.Prov == nil || t == nil {
		return nil
	}
	occ := r.Graph.OccNode(t)
	if occ == nil {
		return nil
	}
	var goal trace.Goal
	switch r.Graph.KindOf(t) {
	case qual.Wild:
		goal = trace.GoalWild
	case qual.Seq:
		goal = trace.GoalSeq
	case qual.Rtti:
		goal = trace.GoalRtti
	default:
		return nil
	}
	return r.Prov.Explain(occ.ID, goal)
}

type edgeClass int

const (
	edgeAssign edgeClass = iota
	edgeUpcast
	edgeDowncast
	edgeTile
)

type edge struct {
	src, dst *qual.Node
	class    edgeClass
	site     *CastSite // nil for plain assignments
}

type inferrer struct {
	prog  *cil.Program
	diags *diag.List
	opts  Options

	g      *qual.Graph
	hier   *rtti.Hierarchy
	casts  []*CastSite
	castOf map[*cil.Cast]*CastSite
	edges  []*edge
	// allocRets holds the return-type occurrences of the known allocator
	// externs; casts from them are CastAlloc.
	allocRets map[*ctypes.Type]bool
	// rec, when non-nil, captures the current function's collection pass
	// as a replayable summary (see summary.go). Plain Infer never sets it.
	rec *recorder
}

func newInferrer(prog *cil.Program, opts Options, diags *diag.List) *inferrer {
	return &inferrer{
		prog:      prog,
		diags:     diags,
		opts:      opts,
		g:         qual.NewGraph(),
		hier:      rtti.NewHierarchy(),
		castOf:    make(map[*cil.Cast]*CastSite),
		allocRets: make(map[*ctypes.Type]bool),
	}
}

// prologue runs everything that precedes per-function constraint
// collection: allocator/wrapper extern marks, registration of every
// declaration-reachable occurrence, and global initializer constraints.
// The incremental path always runs it fresh — it is cheap and
// whole-program, the per-function summaries replay on top of it.
func (in *inferrer) prologue() {
	for _, v := range in.prog.Externs {
		if v.Type.Kind != ctypes.Func {
			continue
		}
		switch v.Name {
		case "malloc", "calloc", "realloc":
			if v.Type.Fn.Ret.IsPointer() {
				in.allocRets[v.Type.Fn.Ret] = true
			}
		case "__verify_nul", "__endof":
			// Wrapper helpers that read a pointer's bounds metadata: their
			// arguments must carry bounds (SEQ).
			for _, pt := range v.Type.Fn.Params {
				if pt.IsPointer() {
					in.g.NodeFor(pt).MarkArith()
				}
			}
		case "__mkptr":
			// The model pointer (second parameter) supplies the metadata.
			if len(v.Type.Fn.Params) == 2 && v.Type.Fn.Params[1].IsPointer() {
				in.g.NodeFor(v.Type.Fn.Params[1]).MarkArith()
			}
		}
	}
	// Register all type occurrences reachable from declarations.
	for _, g := range in.prog.Globals {
		in.regType(g.Var.Type)
		in.regType(g.Var.AddrType)
		if g.Init != nil {
			in.collectInit(g.Init, g.Var.Type)
		}
	}
	for _, v := range in.prog.Externs {
		in.regType(v.Type)
		in.regType(v.AddrType)
	}
	for _, f := range in.prog.Funcs {
		in.regType(f.Type)
		for _, p := range f.Params {
			in.regType(p.Type)
			in.regType(p.AddrType)
		}
		for _, l := range f.Locals {
			in.regType(l.Type)
			in.regType(l.AddrType)
		}
	}
}

// result runs the global solve/split phases over the collected (or
// replayed) constraints and freezes the graph.
func (in *inferrer) result() *Result {
	in.solve()
	res := &Result{
		Graph:  in.g,
		Hier:   in.hier,
		Casts:  in.casts,
		CastOf: in.castOf,
		Opts:   in.opts,
		Prov:   in.g.Prov,
	}
	res.Split = inferSplit(in.prog, in.g, in.opts.SplitAll, in.diags)
	// Freeze the qualifier graph: collapse every union-find chain so the
	// layout oracle's KindOf queries never write shared state. A compiled
	// unit can then be executed from many goroutines concurrently.
	in.g.Compress()
	return res
}

// Infer runs pointer-kind inference over prog.
func Infer(prog *cil.Program, opts Options, diags *diag.List) *Result {
	in := newInferrer(prog, opts, diags)
	in.prologue()
	for _, f := range prog.Funcs {
		in.collectFunc(f)
	}
	return in.result()
}
