package pipeline

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramMeanMSZeroCount(t *testing.T) {
	var h Histogram
	if got := h.MeanMS(); got != 0 {
		t.Errorf("empty histogram MeanMS = %v, want 0 (no division by zero)", got)
	}
	h = Histogram{Count: 4, SumMS: 10}
	if got := h.MeanMS(); got != 2.5 {
		t.Errorf("MeanMS = %v, want 2.5", got)
	}
}

// TestLogBucketBoundaries is the golden test for the bucket scheme: bounds
// grow by 2^(1/4) from 1µs, upper bounds are inclusive, and values above
// the last bound land in the overflow bucket.
func TestLogBucketBoundaries(t *testing.T) {
	if logBoundsMS[0] != 0.001 {
		t.Fatalf("first bound = %v, want 0.001", logBoundsMS[0])
	}
	// Four sub-buckets per octave: bound[i+4] = 2*bound[i], exactly (the
	// bounds are computed, not accumulated, so no drift).
	for i := 0; i+4 < logBucketCount; i += 4 {
		if got, want := logBoundsMS[i+4], 2*logBoundsMS[i]; math.Abs(got-want) > want*1e-12 {
			t.Fatalf("bound[%d] = %v, want 2*bound[%d] = %v", i+4, got, i, want)
		}
	}
	// Whole-octave bounds are exact: bound[4k] = 0.001 * 2^k.
	if got := logBoundsMS[40]; got != 0.001*math.Exp2(10) {
		t.Errorf("bound[40] = %v, want 1.024", got)
	}
	// The table covers sub-µs to over a minute.
	if last := logBoundsMS[logBucketCount-1]; last < 60_000 {
		t.Errorf("last bound = %vms, want > 60s", last)
	}

	for _, tc := range []struct {
		ms   float64
		want int
	}{
		{0, 0},
		{-1, 0}, // clamped by ObserveMS before lookup, but be defensive
		{0.0005, 0},
		{0.001, 0}, // inclusive: exactly on a bound lands in that bucket
		{0.0010001, 1},
		{logBoundsMS[17], 17},
		{logBoundsMS[17] * 1.0001, 18},
		{logBoundsMS[logBucketCount-1], logBucketCount - 1},
		{logBoundsMS[logBucketCount-1] + 1, logBucketCount}, // overflow
		{1e12, logBucketCount},
	} {
		if got := logBucketFor(tc.ms); got != tc.want {
			t.Errorf("logBucketFor(%v) = %d, want %d", tc.ms, got, tc.want)
		}
	}
	// Exhaustive boundary sweep: every bound maps to its own bucket, and
	// nudging above it maps to the next.
	for i, b := range logBoundsMS {
		if got := logBucketFor(b); got != i {
			t.Fatalf("logBucketFor(bound[%d]=%v) = %d", i, b, got)
		}
		above := b * (1 + 1e-9)
		if got := logBucketFor(above); got != i+1 {
			t.Fatalf("logBucketFor(just above bound[%d]) = %d, want %d", i, got, i+1)
		}
	}
}

func TestLogHistObserveAndSnapshot(t *testing.T) {
	var h LogHist
	h.Observe(500*time.Microsecond, "aaaaaaaaaaaaaaa1") // 0.5ms
	h.Observe(3*time.Millisecond, "")
	h.Observe(100*time.Second, "aaaaaaaaaaaaaaa2") // past the ~67s last bound
	s := h.Snapshot()
	if s.Count != 3 || s.MaxMS != 100000 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Buckets) != 3 {
		t.Fatalf("buckets = %+v, want 3 non-empty", s.Buckets)
	}
	if s.Buckets[2].LeMS != 0 {
		t.Errorf("overflow bucket LeMS = %v, want 0", s.Buckets[2].LeMS)
	}
	if s.Buckets[0].Exemplar == nil || s.Buckets[0].Exemplar.TraceID != "aaaaaaaaaaaaaaa1" {
		t.Errorf("bucket 0 exemplar = %+v", s.Buckets[0].Exemplar)
	}
	if s.Buckets[1].Exemplar != nil {
		t.Errorf("no-trace-ID observation grew an exemplar: %+v", s.Buckets[1].Exemplar)
	}
	if s.Buckets[2].Exemplar == nil || s.Buckets[2].Exemplar.ValueMS != 100000 {
		t.Errorf("overflow exemplar = %+v", s.Buckets[2].Exemplar)
	}
}

// TestLogHistExemplarRetention pins the last-per-bucket policy: a newer
// observation with a trace ID replaces the bucket's exemplar; one without
// a trace ID leaves it alone.
func TestLogHistExemplarRetention(t *testing.T) {
	var h LogHist
	h.ObserveMS(1.0, "aaaaaaaaaaaaaaa1")
	h.ObserveMS(1.0, "aaaaaaaaaaaaaaa2")
	h.ObserveMS(1.0, "") // must not clear the exemplar
	s := h.Snapshot()
	if len(s.Buckets) != 1 || s.Buckets[0].Count != 3 {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	ex := s.Buckets[0].Exemplar
	if ex == nil || ex.TraceID != "aaaaaaaaaaaaaaa2" || ex.ValueMS != 1.0 {
		t.Errorf("exemplar = %+v, want last trace-carrying observation", ex)
	}
}

// TestLogHistExemplarStaleness pins the aging policy: an exemplar older
// than ExemplarMaxAge no longer appears in snapshots (the trace it links to
// is long evicted), while the bucket's counts are untouched.
func TestLogHistExemplarStaleness(t *testing.T) {
	clock := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	var h LogHist
	h.now = func() time.Time { return clock }

	h.ObserveMS(1.0, "aaaaaaaaaaaaaaa1")
	if s := h.Snapshot(); s.Buckets[0].Exemplar == nil {
		t.Fatal("fresh exemplar missing")
	}

	// Just inside the default max age: still present.
	clock = clock.Add(DefaultExemplarMaxAge - time.Second)
	if s := h.Snapshot(); s.Buckets[0].Exemplar == nil {
		t.Fatal("exemplar aged out before ExemplarMaxAge")
	}

	// Past it: gone, counts intact.
	clock = clock.Add(2 * time.Second)
	s := h.Snapshot()
	if s.Buckets[0].Exemplar != nil {
		t.Fatalf("stale exemplar survived: %+v", s.Buckets[0].Exemplar)
	}
	if s.Buckets[0].Count != 1 || s.Count != 1 {
		t.Fatalf("aging touched the counts: %+v", s)
	}

	// A fresh trace-carrying observation repopulates the bucket.
	h.ObserveMS(1.0, "aaaaaaaaaaaaaaa2")
	if s := h.Snapshot(); s.Buckets[0].Exemplar == nil || s.Buckets[0].Exemplar.TraceID != "aaaaaaaaaaaaaaa2" {
		t.Fatalf("fresh exemplar missing after staleness: %+v", s.Buckets[0])
	}

	// A custom (shorter) max age is honored.
	h.ExemplarMaxAge = time.Minute
	clock = clock.Add(2 * time.Minute)
	if s := h.Snapshot(); s.Buckets[0].Exemplar != nil {
		t.Fatal("custom ExemplarMaxAge ignored")
	}
}

func TestSnapshotTimestamps(t *testing.T) {
	m := newMetrics()
	before := time.Now().UnixMilli()
	s := m.snapshot(1, CacheStats{})
	after := time.Now().UnixMilli()
	if s.SnapshotUnixMS < before || s.SnapshotUnixMS > after {
		t.Fatalf("snapshot_unix_ms = %d, want within [%d, %d]", s.SnapshotUnixMS, before, after)
	}
	if s.UptimeMS < 0 {
		t.Fatalf("uptime_ms = %d, want >= 0", s.UptimeMS)
	}
	m.start = m.start.Add(-time.Minute)
	if s := m.snapshot(1, CacheStats{}); s.UptimeMS < time.Minute.Milliseconds() {
		t.Fatalf("uptime_ms = %d, want >= 60000 after aging start", s.UptimeMS)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h LogHist
	for i := 0; i < 90; i++ {
		h.ObserveMS(1.0, "")
	}
	for i := 0; i < 10; i++ {
		h.ObserveMS(100.0, "")
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.50); p50 > 1.01 {
		t.Errorf("p50 = %v, want <= ~1ms", p50)
	}
	// p99 falls in the bucket holding 100ms: within one bucket's relative
	// width (2^1/4 ≈ 1.19) of the true value.
	if p99 := s.Quantile(0.99); p99 < 100/1.19 || p99 > 100 {
		t.Errorf("p99 = %v, want within one bucket of 100ms", p99)
	}
	if p100 := s.Quantile(1); p100 != s.MaxMS {
		t.Errorf("p100 = %v, want MaxMS %v", p100, s.MaxMS)
	}
	if got := (Histogram{}).Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

// TestHistogramQuantileBimodal pins interpolation against sparse
// snapshots: with counts only at 1ms and 1000ms, a quantile landing in the
// 1000ms bucket must interpolate from that bucket's own lower bound
// (~1000/2^0.25 ≈ 841ms), not from the previous non-empty bucket way down
// at 1ms — the latter understates tail latency by 4x and would let an SLO
// gate pass on a blown p99.
func TestHistogramQuantileBimodal(t *testing.T) {
	var h LogHist
	for i := 0; i < 50; i++ {
		h.ObserveMS(1.0, "")
	}
	for i := 0; i < 50; i++ {
		h.ObserveMS(1000.0, "")
	}
	s := h.Snapshot()
	for _, q := range []float64{0.60, 0.99} {
		if v := s.Quantile(q); v < 1000/1.19 || v > 1000 {
			t.Errorf("p%v = %v, want within one bucket of 1000ms", q*100, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b LogHist
	a.ObserveMS(1.0, "aaaaaaaaaaaaaaa1")
	a.ObserveMS(50000.0*10, "") // overflow
	b.ObserveMS(1.0, "aaaaaaaaaaaaaaa2")
	b.ObserveMS(8.0, "")
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 4 || sa.MaxMS != 500000 {
		t.Fatalf("merged = %+v", sa)
	}
	// Bound order restored, overflow last.
	var prev float64
	for i, bk := range sa.Buckets {
		if bk.LeMS == 0 && i != len(sa.Buckets)-1 {
			t.Fatalf("overflow bucket not last: %+v", sa.Buckets)
		}
		if bk.LeMS != 0 && bk.LeMS < prev {
			t.Fatalf("buckets out of order: %+v", sa.Buckets)
		}
		prev = bk.LeMS
	}
	// The shared 1ms bucket summed counts and kept the newer (o's) exemplar.
	if bk := sa.Buckets[0]; bk.Count != 2 || bk.Exemplar == nil || bk.Exemplar.TraceID != "aaaaaaaaaaaaaaa2" {
		t.Errorf("merged shared bucket = %+v (exemplar %+v)", bk, bk.Exemplar)
	}
}

// TestLogHistConcurrentMerge hammers one LogHist from many goroutines while
// snapshots are taken and merged concurrently; run under -race it checks
// the locking discipline, and the final tally checks no observation or
// count is lost.
func TestLogHistConcurrentMerge(t *testing.T) {
	var h LogHist
	const goroutines, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.ObserveMS(float64(i%100)+0.5, fmt.Sprintf("%08d%08d", g, i))
				if i%50 == 0 {
					var acc Histogram
					acc.Merge(h.Snapshot())
					_ = acc.Quantile(0.99)
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
	var sum uint64
	for _, b := range s.Buckets {
		sum += b.Count
	}
	if sum != s.Count {
		t.Fatalf("bucket sum = %d, want %d", sum, s.Count)
	}
}

// TestWritePrometheusFormat unit-tests the text renderer on a hand-built
// snapshot: cumulative buckets over the canonical log bounds, per-phase
// labels, sorted trap-kind labels, and counter/gauge samples. The classic
// 0.0.4 dialect must stay exemplar-free (its parser rejects anything after
// a sample value); exemplars are covered by TestWriteOpenMetricsFormat.
func TestWritePrometheusFormat(t *testing.T) {
	lo, hi := logBoundsMS[8], logBoundsMS[60]
	m := promTestMetrics()
	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()

	for _, want := range []string{
		"# TYPE gocured_workers gauge\ngocured_workers 4\n",
		"# TYPE gocured_jobs_run_total counter\ngocured_jobs_run_total 7\n",
		"gocured_traps_total 2\n",
		// Label values sort: bounds before null.
		"gocured_traps_by_kind_total{kind=\"bounds\"} 1\ngocured_traps_by_kind_total{kind=\"null\"} 1\n",
		"gocured_cache_hits_total 2\n",
		"gocured_traces_dropped_total 0\n",
		// First bound always renders (cumulative 0 here), populated buckets
		// render with running cumulative counts; no exemplar suffixes in the
		// 0.0.4 dialect even though the snapshot carries them.
		fmt.Sprintf("gocured_compile_wall_ms_bucket{le=%q} 0\n", fmtFloat(logBoundsMS[0])),
		fmt.Sprintf("gocured_compile_wall_ms_bucket{le=%q} 1\n", fmtFloat(lo)),
		fmt.Sprintf("gocured_compile_wall_ms_bucket{le=%q} 3\n", fmtFloat(hi)),
		fmt.Sprintf("gocured_compile_wall_ms_bucket{le=%q} 3\n", fmtFloat(logBoundsMS[logBucketCount-1])),
		"gocured_compile_wall_ms_bucket{le=\"+Inf\"} 4\n",
		"gocured_compile_wall_ms_sum 12.5\n",
		"gocured_compile_wall_ms_count 4\n",
		// The empty families still render completely.
		"gocured_run_wall_ms_bucket{le=\"+Inf\"} 0\n",
		"gocured_run_wall_ms_count 0\n",
		"gocured_e2e_wall_ms_count 0\n",
		"gocured_queue_wait_ms_count 0\n",
		"# TYPE gocured_queue_depth gauge\ngocured_queue_depth 0\n",
		// Phase-labelled histogram blocks are complete per label.
		fmt.Sprintf("gocured_phase_ms_bucket{phase=\"parse\",le=%q} 1\n", fmtFloat(hi)),
		"gocured_phase_ms_bucket{phase=\"parse\",le=\"+Inf\"} 1\n",
		"gocured_phase_ms_sum{phase=\"parse\"} 2\n",
		"gocured_phase_ms_count{phase=\"parse\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}

	// The classic parser accepts only an optional timestamp after a sample
	// value, so the 0.0.4 dialect must never carry exemplar syntax.
	if strings.Contains(out, "# {") {
		t.Errorf("0.0.4 output carries exemplar syntax:\n%s", out)
	}

	// Every # TYPE is preceded by its # HELP line.
	lines := strings.Split(out, "\n")
	for i, l := range lines {
		if strings.HasPrefix(l, "# TYPE ") {
			if i == 0 || !strings.HasPrefix(lines[i-1], "# HELP ") {
				t.Errorf("TYPE line without preceding HELP: %q", l)
			}
		}
	}
}

// promTestMetrics builds the hand-made snapshot both exposition-format
// tests render: counters, sorted trap kinds, and a compile-wall histogram
// whose buckets (including the +Inf overflow) carry exemplars.
func promTestMetrics() Metrics {
	lo, hi := logBoundsMS[8], logBoundsMS[60]
	return Metrics{
		Workers:      4,
		JobsRun:      7,
		RunsExecuted: 5,
		Traps:        2,
		TrapsByKind:  map[string]uint64{"null": 1, "bounds": 1},
		Cache:        CacheStats{Entries: 3, Hits: 2, Misses: 5},
		CompileWall: Histogram{
			Count: 4, SumMS: 12.5, MaxMS: 9,
			Buckets: []HistBucket{
				{LeMS: lo, Count: 1, Exemplar: &Exemplar{TraceID: "aaaaaaaaaaaaaaa1", ValueMS: 0.003}},
				{LeMS: hi, Count: 2},
				{Count: 1, Exemplar: &Exemplar{TraceID: "aaaaaaaaaaaaaaa2", ValueMS: 99000}},
			},
		},
		Phases: []PhaseHist{{Phase: "parse", Hist: Histogram{
			Count: 1, SumMS: 2, MaxMS: 2,
			Buckets: []HistBucket{{LeMS: hi, Count: 1}},
		}}},
	}
}

// TestWriteOpenMetricsFormat pins the OpenMetrics dialect: counter
// families declared without the _total sample suffix, exemplars riding
// histogram bucket lines (the overflow exemplar on +Inf), and a
// terminating # EOF line.
func TestWriteOpenMetricsFormat(t *testing.T) {
	lo := logBoundsMS[8]
	var b strings.Builder
	WriteOpenMetrics(&b, promTestMetrics())
	out := b.String()

	for _, want := range []string{
		// Counter families drop _total in HELP/TYPE; samples keep it.
		"# TYPE gocured_jobs_run counter\ngocured_jobs_run_total 7\n",
		"# TYPE gocured_traps_by_kind counter\n",
		"gocured_traps_by_kind_total{kind=\"bounds\"} 1\n",
		// Gauges keep their names.
		"# TYPE gocured_workers gauge\ngocured_workers 4\n",
		// Bucket exemplars, including the overflow exemplar on +Inf.
		fmt.Sprintf("gocured_compile_wall_ms_bucket{le=%q} 1 # {trace_id=\"aaaaaaaaaaaaaaa1\"} 0.003\n", fmtFloat(lo)),
		"gocured_compile_wall_ms_bucket{le=\"+Inf\"} 4 # {trace_id=\"aaaaaaaaaaaaaaa2\"} 99000\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Errorf("OpenMetrics output does not end with # EOF:\n...%s", out[max(0, len(out)-80):])
	}
	if strings.Contains(out, "# TYPE gocured_jobs_run_total ") {
		t.Errorf("OpenMetrics TYPE line kept the _total suffix:\n%s", out)
	}
}

// TestExpositionFamilyOrder pins deterministic output: metric families are
// emitted in ascending name order in both dialects, so diffs between
// scrapes are stable and greppable.
func TestExpositionFamilyOrder(t *testing.T) {
	m := promTestMetrics()
	m.SLOs = []SLOStatus{{
		SLOSpec: SLOSpec{Name: "availability", Objective: 0.99},
		State:   SLOStateWarn,
		Windows: []WindowBurn{{WindowMS: 300000, Burn: 7.5}},
	}}
	render := func(f func(*strings.Builder)) []string {
		var b strings.Builder
		f(&b)
		var fams []string
		for _, l := range strings.Split(b.String(), "\n") {
			if strings.HasPrefix(l, "# HELP ") {
				fams = append(fams, strings.Fields(l)[2])
			}
		}
		return fams
	}
	for dialect, f := range map[string]func(*strings.Builder){
		"prometheus":  func(b *strings.Builder) { WritePrometheus(b, m) },
		"openmetrics": func(b *strings.Builder) { WriteOpenMetrics(b, m) },
	} {
		fams := render(f)
		if len(fams) < 10 {
			t.Fatalf("%s: only %d families rendered", dialect, len(fams))
		}
		for i := 1; i < len(fams); i++ {
			if fams[i] <= fams[i-1] {
				t.Errorf("%s: family order not strictly ascending: %q then %q", dialect, fams[i-1], fams[i])
			}
		}
	}

	// The SLO gauges render with slo/window labels and the numeric state.
	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()
	for _, want := range []string{
		"gocured_slo_burn_rate{slo=\"availability\",window=\"5m0s\"} 7.5\n",
		"gocured_slo_state{slo=\"availability\"} 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}
