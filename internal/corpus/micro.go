package corpus

// The Spec95/Olden/Ptrdist-like micro suite (§5: CCured adds 7-56% on these
// while Purify and Valgrind cost 25-100x and 9-130x; the all-split ablation
// makes em3d the outlier). Each program reproduces the pointer behaviour of
// its namesake: recursive trees, list sorting, pointer-dense graph
// relaxation, hierarchy walks, dictionary hashing, greedy graph algorithms,
// LZW compression, and a small cons-cell evaluator.

var _ = register(&Program{
	Name:     "olden-treeadd",
	Category: "olden",
	Desc:     "treeadd-like: build a binary tree recursively and sum it",
	Source: Prelude + `
enum { SCALE = 2, DEPTH = 11 };

struct tree {
    int val;
    struct tree *left;
    struct tree *right;
};

struct tree *build(int depth, int val) {
    struct tree *t;
    if (depth == 0) return 0;
    t = (struct tree *)malloc(sizeof(struct tree));
    t->val = val;
    t->left = build(depth - 1, 2 * val);
    t->right = build(depth - 1, 2 * val + 1);
    return t;
}

int treeadd(struct tree *t) {
    if (!t) return 0;
    return t->val + treeadd(t->left) + treeadd(t->right);
}

int main(void) {
    int iter, total = 0;
    struct tree *t = build(DEPTH, 1);
    for (iter = 0; iter < SCALE * 4; iter++) {
        total = (total + treeadd(t)) % 1000000007;
    }
    printf("treeadd depth=%d total=%d\n", DEPTH, total);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "olden-bisort",
	Category: "olden",
	Desc:     "bisort-like: recursive list merge sort (pointer-chasing)",
	Source: Prelude + `
enum { SCALE = 2, N = 600 };

struct node {
    int val;
    struct node *next;
};

struct node *make_list(int n, unsigned int seed) {
    struct node *head = 0;
    int i;
    for (i = 0; i < n; i++) {
        struct node *x = (struct node *)malloc(sizeof(struct node));
        seed = seed * 1103515245 + 12345;
        x->val = (int)((seed >> 16) & 0x7FFF);
        x->next = head;
        head = x;
    }
    return head;
}

struct node *merge(struct node *a, struct node *b) {
    struct node dummy;
    struct node *tail = &dummy;
    dummy.next = 0;
    while (a && b) {
        if (a->val <= b->val) { tail->next = a; a = a->next; }
        else { tail->next = b; b = b->next; }
        tail = tail->next;
    }
    tail->next = a ? a : b;
    return dummy.next;
}

struct node *msort(struct node *l) {
    struct node *slow, *fast, *mid;
    if (!l || !l->next) return l;
    slow = l;
    fast = l->next;
    while (fast && fast->next) {
        slow = slow->next;
        fast = fast->next->next;
    }
    mid = slow->next;
    slow->next = 0;
    return merge(msort(l), msort(mid));
}

int is_sorted(struct node *l) {
    while (l && l->next) {
        if (l->val > l->next->val) return 0;
        l = l->next;
    }
    return 1;
}

void free_list(struct node *l) {
    while (l) {
        struct node *n = l->next;
        free(l);
        l = n;
    }
}

int main(void) {
    int iter, ok = 1, check = 0;
    for (iter = 0; iter < SCALE; iter++) {
        struct node *l = make_list(N, (unsigned int)(iter + 1));
        l = msort(l);
        ok = ok && is_sorted(l);
        check = (check + l->val) % 100000;
        free_list(l);
    }
    printf("bisort n=%d sorted=%d check=%d\n", N, ok, check);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "olden-em3d",
	Category: "olden",
	Desc:     "em3d-like: bipartite graph relaxation (pointer-dense; the split outlier)",
	Source: Prelude + `
enum { SCALE = 2, NNODES = 60, DEGREE = 6, ITERS = 12 };

/* like the real em3d, each node's adjacency is a heap array of pointers
   walked with pointer arithmetic: the metadata-bearing (SEQ) pointers are
   what make em3d the split-representation outlier */
struct gnode {
    double value;
    int degree;
    struct gnode **to;      /* heap array of neighbours */
    double *coeff;          /* heap array of weights */
    struct gnode *next;     /* intrusive list of all nodes */
};

struct gnode *e_list;
struct gnode *h_list;

struct gnode *make_side(int n, unsigned int seed) {
    struct gnode *head = 0;
    int i, k;
    for (i = 0; i < n; i++) {
        struct gnode *g = (struct gnode *)malloc(sizeof(struct gnode));
        seed = seed * 1103515245 + 12345;
        g->value = (double)((seed >> 16) & 1023) / 64.0;
        g->degree = DEGREE;
        g->to = (struct gnode **)malloc(DEGREE * sizeof(struct gnode *));
        g->coeff = (double *)malloc(DEGREE * sizeof(double));
        for (k = 0; k < DEGREE; k++) {
            g->to[k] = 0;
            seed = seed * 1103515245 + 12345;
            g->coeff[k] = (double)((seed >> 20) & 255) / 512.0;
        }
        g->next = head;
        head = g;
    }
    return head;
}

/* wire each node to DEGREE pseudo-random nodes of the other side */
void connect(struct gnode *from, struct gnode *other, int nother, unsigned int seed) {
    struct gnode *table[NNODES];
    struct gnode *g;
    int i = 0, k;
    for (g = other; g; g = g->next) { table[i] = g; i++; }
    for (g = from; g; g = g->next) {
        for (k = 0; k < DEGREE; k++) {
            seed = seed * 1103515245 + 12345;
            g->to[k] = table[(seed >> 16) % (unsigned int)nother];
        }
    }
}

void relax(struct gnode *side) {
    struct gnode *g;
    for (g = side; g; g = g->next) {
        double acc = g->value;
        struct gnode **np = g->to;
        double *cp = g->coeff;
        int k;
        for (k = 0; k < g->degree; k++) {
            acc = acc - cp[k] * np[k]->value;
        }
        g->value = acc / 2.0;
    }
}

int main(void) {
    int iter, i;
    double check = 0.0;
    e_list = make_side(NNODES, 7);
    h_list = make_side(NNODES, 13);
    connect(e_list, h_list, NNODES, 21);
    connect(h_list, e_list, NNODES, 42);
    for (iter = 0; iter < SCALE; iter++) {
        for (i = 0; i < ITERS; i++) {
            relax(e_list);
            relax(h_list);
        }
    }
    {
        struct gnode *g;
        for (g = e_list; g; g = g->next) check = check + g->value;
    }
    printf("em3d nodes=%d check=%d\n", 2 * NNODES, (int)(check * 1000.0));
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "olden-power",
	Category: "olden",
	Desc:     "power-like: hierarchical demand computation over a customer tree",
	Source: Prelude + `
enum { SCALE = 2, FEEDERS = 6, BRANCHES = 5, LEAVES = 8 };

struct leaf {
    double demand;
    double price;
};

struct branch {
    struct leaf *leaves[LEAVES];
    double impedance;
    double total;
};

struct feeder {
    struct branch *branches[BRANCHES];
    double total;
};

struct root {
    struct feeder *feeders[FEEDERS];
    double total;
};

double compute_leaf(struct leaf *l, double price) {
    l->price = price;
    l->demand = 10.0 / (1.0 + price) + 0.3;
    return l->demand;
}

double compute_branch(struct branch *b, double price) {
    double sum = 0.0;
    int i;
    for (i = 0; i < LEAVES; i++) sum = sum + compute_leaf(b->leaves[i], price + b->impedance);
    b->total = sum;
    return sum;
}

double compute_feeder(struct feeder *f, double price) {
    double sum = 0.0;
    int i;
    for (i = 0; i < BRANCHES; i++) sum = sum + compute_branch(f->branches[i], price * 1.05);
    f->total = sum;
    return sum;
}

struct root *build_root(void) {
    struct root *r = (struct root *)malloc(sizeof(struct root));
    int i, j, k;
    for (i = 0; i < FEEDERS; i++) {
        struct feeder *f = (struct feeder *)malloc(sizeof(struct feeder));
        for (j = 0; j < BRANCHES; j++) {
            struct branch *b = (struct branch *)malloc(sizeof(struct branch));
            b->impedance = 0.01 * (double)(j + 1);
            for (k = 0; k < LEAVES; k++) {
                b->leaves[k] = (struct leaf *)malloc(sizeof(struct leaf));
                b->leaves[k]->demand = 1.0;
            }
            f->branches[j] = b;
        }
        r->feeders[i] = f;
    }
    return r;
}

int main(void) {
    struct root *r = build_root();
    double price = 0.5, total = 0.0;
    int iter, i;
    for (iter = 0; iter < SCALE * 12; iter++) {
        total = 0.0;
        for (i = 0; i < FEEDERS; i++) total = total + compute_feeder(r->feeders[i], price);
        /* newton-ish price update toward a demand target */
        price = price + (total - 300.0) * 0.0005;
    }
    printf("power total=%d price=%d\n", (int)(total * 100.0), (int)(price * 10000.0));
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "ptrdist-anagram",
	Category: "ptrdist",
	Desc:     "anagram-like: dictionary bucketing by sorted-letter signature",
	Source: Prelude + `
enum { SCALE = 2, BUCKETS = 64, NWORDS = 24 };

struct word {
    char *text;
    char sig[16];
    struct word *next;
};

struct word *buckets[BUCKETS];
int groups;
int members;

char *dict[NWORDS] = {
    "listen", "silent", "enlist", "tinsel",
    "stream", "master", "maters", "tamers",
    "parse", "spare", "pears", "reaps",
    "night", "thing", "dusty", "study",
    "cider", "cried", "dicer", "price",
    "caret", "trace", "crate", "react",
};

void sort_sig(char *src, char *dst) {
    int i, j, n = strlen(src);
    if (n > 15) n = 15;
    for (i = 0; i < n; i++) dst[i] = src[i];
    dst[n] = 0;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            if (dst[j] < dst[i]) {
                char t = dst[i];
                dst[i] = dst[j];
                dst[j] = t;
            }
        }
    }
}

int sig_hash(char *s) {
    int h = 0;
    while (*s) { h = h * 31 + *s; s++; }
    if (h < 0) h = -h;
    return h % BUCKETS;
}

void insert_word(char *text) {
    struct word *w = (struct word *)malloc(sizeof(struct word));
    int h;
    struct word *scan;
    int found = 0;
    w->text = text;
    sort_sig(text, w->sig);
    h = sig_hash(w->sig);
    for (scan = buckets[h]; scan; scan = scan->next) {
        if (strcmp(scan->sig, w->sig) == 0) { found = 1; break; }
    }
    if (!found) groups++;
    members++;
    w->next = buckets[h];
    buckets[h] = w;
}

int count_group(char *text) {
    char sig[16];
    int h, n = 0;
    struct word *scan;
    sort_sig(text, sig);
    h = sig_hash(sig);
    for (scan = buckets[h]; scan; scan = scan->next) {
        if (strcmp(scan->sig, sig) == 0) n++;
    }
    return n;
}

int main(void) {
    int iter, i, check = 0;
    for (i = 0; i < NWORDS; i++) insert_word(dict[i]);
    for (iter = 0; iter < SCALE * 20; iter++) {
        for (i = 0; i < NWORDS; i++) check += count_group(dict[i]);
        check = check % 1000000007;
    }
    printf("anagram groups=%d members=%d check=%d\n", groups, members, check);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "ptrdist-ks",
	Category: "ptrdist",
	Desc:     "ks-like: Kernighan-Schweikert graph partition with gain updates",
	Source: Prelude + `
enum { SCALE = 2, NV = 32, NE = 96 };

struct edge {
    int a, b, w;
};

struct vertex {
    int side;
    int gain;
    int locked;
};

struct vertex verts[NV];
struct edge edges[NE];

void build_graph(void) {
    unsigned int seed = 99;
    int i;
    for (i = 0; i < NV; i++) {
        verts[i].side = i & 1;
        verts[i].locked = 0;
    }
    for (i = 0; i < NE; i++) {
        seed = seed * 1103515245 + 12345;
        edges[i].a = (int)((seed >> 16) % NV);
        seed = seed * 1103515245 + 12345;
        edges[i].b = (int)((seed >> 16) % NV);
        edges[i].w = 1 + (int)((seed >> 8) & 7);
        if (edges[i].a == edges[i].b) edges[i].b = (edges[i].b + 1) % NV;
    }
}

int cut_cost(void) {
    int i, cost = 0;
    for (i = 0; i < NE; i++) {
        if (verts[edges[i].a].side != verts[edges[i].b].side) cost += edges[i].w;
    }
    return cost;
}

void compute_gains(void) {
    int i;
    for (i = 0; i < NV; i++) verts[i].gain = 0;
    for (i = 0; i < NE; i++) {
        struct edge *e = &edges[i];
        if (verts[e->a].side != verts[e->b].side) {
            verts[e->a].gain += e->w;
            verts[e->b].gain += e->w;
        } else {
            verts[e->a].gain -= e->w;
            verts[e->b].gain -= e->w;
        }
    }
}

int best_unlocked(void) {
    int i, best = -1;
    for (i = 0; i < NV; i++) {
        if (verts[i].locked) continue;
        if (best < 0 || verts[i].gain > verts[best].gain) best = i;
    }
    return best;
}

int kl_pass(void) {
    int moves, v;
    for (v = 0; v < NV; v++) verts[v].locked = 0;
    for (moves = 0; moves < NV / 2; moves++) {
        compute_gains();
        v = best_unlocked();
        if (v < 0 || verts[v].gain <= 0) break;
        verts[v].side = 1 - verts[v].side;
        verts[v].locked = 1;
    }
    return cut_cost();
}

int main(void) {
    int iter, cost = 0;
    build_graph();
    for (iter = 0; iter < SCALE * 3; iter++) {
        cost = kl_pass();
    }
    printf("ks vertices=%d cost=%d\n", NV, cost);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "ptrdist-ft",
	Category: "ptrdist",
	Desc:     "ft-like: minimum spanning tree with a heap-free greedy frontier",
	Source: Prelude + `
enum { SCALE = 2, FTV = 48 };

struct fedge {
    int to;
    int w;
    struct fedge *next;
};

struct fedge *adj[FTV];
int in_tree[FTV];
int dist[FTV];

void add_edge(int a, int b, int w) {
    struct fedge *e = (struct fedge *)malloc(sizeof(struct fedge));
    e->to = b;
    e->w = w;
    e->next = adj[a];
    adj[a] = e;
}

void build(void) {
    unsigned int seed = 31;
    int i;
    for (i = 0; i < FTV; i++) adj[i] = 0;
    for (i = 0; i < FTV; i++) {
        int j;
        for (j = 0; j < 4; j++) {
            int b, w;
            seed = seed * 1103515245 + 12345;
            b = (int)((seed >> 16) % FTV);
            w = 1 + (int)((seed >> 6) & 63);
            if (b != i) {
                add_edge(i, b, w);
                add_edge(b, i, w);
            }
        }
    }
}

int mst(void) {
    int total = 0, i, steps;
    for (i = 0; i < FTV; i++) { in_tree[i] = 0; dist[i] = 1 << 20; }
    dist[0] = 0;
    for (steps = 0; steps < FTV; steps++) {
        int best = -1;
        struct fedge *e;
        for (i = 0; i < FTV; i++) {
            if (!in_tree[i] && (best < 0 || dist[i] < dist[best])) best = i;
        }
        if (best < 0 || dist[best] >= (1 << 20)) break;
        in_tree[best] = 1;
        total += dist[best];
        for (e = adj[best]; e; e = e->next) {
            if (!in_tree[e->to] && e->w < dist[e->to]) dist[e->to] = e->w;
        }
    }
    return total;
}

int main(void) {
    int iter, total = 0;
    build();
    for (iter = 0; iter < SCALE * 6; iter++) {
        total = (total + mst()) % 1000000007;
    }
    printf("ft vertices=%d total=%d\n", FTV, total);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "spec-compress",
	Category: "spec",
	Desc:     "compress-like: LZW with a chained-hash code table",
	Source: Prelude + `
enum { SCALE = 2, INSZ = 600, TABSZ = 512, MAXCODES = 400 };

struct code_entry {
    int prefix;
    int ch;
    int code;
    struct code_entry *next;
};

struct code_entry *table[TABSZ];
struct code_entry pool[MAXCODES];
int npool;
int next_code;

int code_hash(int prefix, int ch) {
    int h = prefix * 31 + ch;
    if (h < 0) h = -h;
    return h % TABSZ;
}

int lookup(int prefix, int ch) {
    struct code_entry *e = table[code_hash(prefix, ch)];
    while (e) {
        if (e->prefix == prefix && e->ch == ch) return e->code;
        e = e->next;
    }
    return -1;
}

void insert(int prefix, int ch) {
    int h;
    struct code_entry *e;
    if (npool >= MAXCODES) return;
    e = &pool[npool];
    npool++;
    e->prefix = prefix;
    e->ch = ch;
    e->code = next_code;
    next_code++;
    h = code_hash(prefix, ch);
    e->next = table[h];
    table[h] = e;
}

void reset_table(void) {
    int i;
    for (i = 0; i < TABSZ; i++) table[i] = 0;
    npool = 0;
    next_code = 256;
}

int compress(char *in, int n, int *out, int maxout) {
    int i, o = 0;
    int cur = in[0] & 255;
    for (i = 1; i < n; i++) {
        int c = in[i] & 255;
        int code = lookup(cur, c);
        if (code >= 0) {
            cur = code;
        } else {
            if (o < maxout) { out[o] = cur; o++; }
            insert(cur, c);
            cur = c;
        }
    }
    if (o < maxout) { out[o] = cur; o++; }
    return o;
}

int main(void) {
    char in[INSZ];
    int out[INSZ];
    int iter, i, total = 0;
    for (iter = 0; iter < SCALE * 4; iter++) {
        int n;
        sim_recv(in, INSZ);
        for (i = 0; i < INSZ; i++) {
            if ((i & 7) < 3) in[i] = 'a' + (char)(i & 3);  /* make it compressible */
        }
        reset_table();
        n = compress(in, INSZ, out, INSZ);
        total = (total + n) % 1000000007;
        for (i = 0; i < n && i < 10; i++) total += out[i];
    }
    printf("compress in=%d total=%d\n", INSZ, total);
    return 0;
}
`,
})

var _ = register(&Program{
	Name:     "spec-li",
	Category: "spec",
	Desc:     "li-like: cons cells, a tiny evaluator, and mark-free arena reuse",
	Source: Prelude + `
enum { SCALE = 2, NCELLS = 2000 };

enum { T_INT = 1, T_CONS = 2, T_SYM = 3 };

struct cell {
    int tag;
    int ival;             /* T_INT */
    char *sym;            /* T_SYM */
    struct cell *car;     /* T_CONS */
    struct cell *cdr;
};

struct cell heap_cells[NCELLS];
int cell_next;

struct cell *cell_alloc(void) {
    struct cell *c;
    if (cell_next >= NCELLS) cell_next = 0;   /* arena reuse */
    c = &heap_cells[cell_next];
    cell_next++;
    return c;
}

struct cell *mk_int(int v) {
    struct cell *c = cell_alloc();
    c->tag = T_INT;
    c->ival = v;
    c->car = 0;
    c->cdr = 0;
    return c;
}

struct cell *cons(struct cell *car, struct cell *cdr) {
    struct cell *c = cell_alloc();
    c->tag = T_CONS;
    c->car = car;
    c->cdr = cdr;
    return c;
}

struct cell *mk_list(int n, int base) {
    struct cell *l = 0;
    int i;
    for (i = n - 1; i >= 0; i--) l = cons(mk_int(base + i), l);
    return l;
}

int list_sum(struct cell *l) {
    int s = 0;
    while (l && l->tag == T_CONS) {
        if (l->car && l->car->tag == T_INT) s += l->car->ival;
        l = l->cdr;
    }
    return s;
}

struct cell *list_map_double(struct cell *l) {
    if (!l || l->tag != T_CONS) return 0;
    return cons(mk_int(l->car->ival * 2), list_map_double(l->cdr));
}

struct cell *list_reverse(struct cell *l) {
    struct cell *acc = 0;
    while (l && l->tag == T_CONS) {
        acc = cons(l->car, acc);
        l = l->cdr;
    }
    return acc;
}

int main(void) {
    int iter, total = 0;
    for (iter = 0; iter < SCALE * 10; iter++) {
        struct cell *l = mk_list(40, iter);
        struct cell *d = list_map_double(l);
        struct cell *r = list_reverse(d);
        total = (total + list_sum(l) + list_sum(r)) % 1000000007;
    }
    printf("li cells=%d total=%d\n", NCELLS, total);
    return 0;
}
`,
})
