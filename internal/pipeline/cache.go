package pipeline

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gocured"
	"gocured/internal/infer"
	"gocured/internal/store"
)

// Key is the content address of one compile job: the SHA-256 of the
// compiler version, the file name, the inference options, and the source
// text. Two jobs with equal keys are guaranteed to produce the same
// Program, so the cache can hand the compiled artifact to both.
type Key [sha256.Size]byte

// String renders a short hex prefix for logs and metrics.
func (k Key) String() string { return hex.EncodeToString(k[:8]) }

// CacheKey computes the content address for a compile job.
func CacheKey(filename, source string, opts gocured.Options) Key {
	h := sha256.New()
	// Length-prefix each variable-size component so concatenations cannot
	// collide; Options is a flat struct of bools with a stable rendering.
	fmt.Fprintf(h, "%s\x00%d:%s\x00%+v\x00%d:", gocured.Version, len(filename), filename, opts, len(source))
	h.Write([]byte(source))
	var k Key
	h.Sum(k[:0])
	return k
}

// Compiled is a cached compilation artifact: the Program itself plus the
// statistics and rendered diagnostics, memoized so cache hits skip the
// qualifier-graph walk too.
type Compiled struct {
	Key         Key
	Filename    string
	Program     *gocured.Program
	Stats       gocured.Stats
	Diagnostics []string
	// Incr reports how inference composed the program: functions replayed
	// from the artifact store vs. re-collected (all recured without one).
	Incr gocured.IncrStats
	// StoreReadMS/StoreWriteMS aggregate the wall time this compile spent
	// in artifact-store I/O (summary loads and saves); StoreReads and
	// StoreWrites count the operations. On a cache hit they describe the
	// original compile (store I/O is interleaved with inference, so these
	// are aggregates, not a per-chunk span list).
	StoreReadMS  float64
	StoreWriteMS float64
	StoreReads   int
	StoreWrites  int
	// SourceBytes is the size of the source text, retained for the cache
	// size accounting after the source itself is dropped.
	SourceBytes int
}

// Lookup reports how one GetOrCompile call was served: the cache tier and
// whether the caller paid for a compile.
type Lookup struct {
	// Tier is "memory" (LRU hit), "inflight" (coalesced onto another
	// goroutine's in-progress compile of the same key), "disk" (compiled,
	// but with at least one function replayed from the artifact store), or
	// "compile" (compiled from scratch).
	Tier string
	// Hit reports that no compile ran on this call (memory or inflight).
	Hit bool
}

// lookupFor classifies a freshly-compiled (non-hit) result by whether the
// artifact store contributed.
func lookupFor(c *Compiled) Lookup {
	if c != nil && c.Incr.Loaded > 0 {
		return Lookup{Tier: "disk"}
	}
	return Lookup{Tier: "compile"}
}

// CacheStats is a point-in-time snapshot of cache effectiveness counters.
type CacheStats struct {
	Entries    int    `json:"entries"`
	MaxEntries int    `json:"max_entries"`
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
}

// Cache is a bounded, content-addressed memoization of Compile results
// with LRU eviction. Lookups that race on the same missing key coalesce:
// one goroutine compiles, the rest wait for its result (a thundering herd
// of identical sources costs one compile). It is safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used; values are *Compiled
	entries  map[Key]*list.Element
	inflight map[Key]*compileFlight
	// arts, when non-nil, is the second cache tier: a memory miss consults
	// the persistent artifact store for per-function summaries before
	// falling back to a full compile.
	arts *store.Artifacts
	// wrapSums, when non-nil, decorates the summary source each compile
	// sees; the fault-injection harness uses it to wedge the artifact store.
	wrapSums func(gocured.SummarySource) gocured.SummarySource

	hits, misses, evictions uint64
}

// compileFlight is one in-progress compile other goroutines can wait on.
type compileFlight struct {
	done chan struct{}
	res  *Compiled
	err  error
}

// NewCache returns a cache bounded to max entries (max <= 0 means the
// DefaultCacheEntries bound).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{
		max:      max,
		ll:       list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*compileFlight),
	}
}

// DefaultCacheEntries bounds the cache when no explicit size is given.
const DefaultCacheEntries = 256

// SetStore attaches a persistent artifact store as the cache's second tier
// (memory LRU → disk chunks → compile). Set before use; not synchronized.
func (c *Cache) SetStore(a *store.Artifacts) { c.arts = a }

// GetOrCompile returns the Compiled artifact for (filename, source, opts),
// compiling at most once per content address. The Lookup return reports
// which tier served the result (memory LRU, coalescing onto another
// goroutine's in-flight compile of the same key, the on-disk artifact
// store, or a from-scratch compile). Compile errors are returned, not
// cached: the next identical request retries.
func (c *Cache) GetOrCompile(filename, source string, opts gocured.Options) (*Compiled, Lookup, error) {
	key := CacheKey(filename, source, opts)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*Compiled), Lookup{Tier: "memory", Hit: true}, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-f.done
		return f.res, Lookup{Tier: "inflight", Hit: true}, f.err
	}
	c.misses++
	f := &compileFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = compileSourceWrapped(key, filename, source, opts, c.arts, c.wrapSums)
	close(f.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.res)
	}
	c.mu.Unlock()
	return f.res, lookupFor(f.res), f.err
}

// compileSource builds the artifact outside the lock. A panic in the
// compiler is converted into an error so that goroutines waiting on this
// compileFlight are released (the Runner additionally isolates panics per job).
func compileSource(key Key, filename, source string, opts gocured.Options, arts *store.Artifacts) (*Compiled, error) {
	return compileSourceWrapped(key, filename, source, opts, arts, nil)
}

// compileSourceWrapped is compileSource with the fault-injection decorator
// applied to the summary source. The wrap sits inside the timing layer, so
// a wedged store's stall time shows up in the store-read/store-write spans
// exactly where a genuinely hung disk would.
func compileSourceWrapped(key Key, filename, source string, opts gocured.Options, arts *store.Artifacts,
	wrap func(gocured.SummarySource) gocured.SummarySource) (res *Compiled, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("compile %s: panic: %v", filename, p)
		}
	}()
	var sums gocured.SummarySource
	var timed *timedSums
	if arts != nil {
		src := gocured.SummarySource(arts.ForOptions(opts))
		if wrap != nil {
			if w := wrap(src); w != nil {
				src = w
			}
		}
		timed = &timedSums{src: src}
		sums = timed
	} else if wrap != nil {
		if w := wrap(nil); w != nil {
			timed = &timedSums{src: w}
			sums = timed
		}
	}
	prog, err := gocured.CompileStored(filename, source, opts, sums)
	if err != nil {
		return nil, err
	}
	res = &Compiled{
		Key:         key,
		Filename:    filename,
		Program:     prog,
		Stats:       prog.Stats(),
		Diagnostics: prog.Diagnostics(),
		Incr:        prog.IncrStats(),
		SourceBytes: len(source),
	}
	if timed != nil {
		res.StoreReadMS = float64(timed.loadNS.Load()) / 1e6
		res.StoreWriteMS = float64(timed.saveNS.Load()) / 1e6
		res.StoreReads = int(timed.loadOps.Load())
		res.StoreWrites = int(timed.saveOps.Load())
	}
	return res, nil
}

// timedSums decorates a SummarySource with wall-time and op-count
// accounting, the source of a compile's store-read/store-write spans and
// phase histograms. Counters are atomics: nothing guarantees inference
// keeps the source on one goroutine forever.
type timedSums struct {
	src             gocured.SummarySource
	loadNS, loadOps atomic.Int64
	saveNS, saveOps atomic.Int64
}

func (t *timedSums) Load(fn string, body, decls [sha256.Size]byte) (*infer.FuncSummary, bool) {
	start := time.Now()
	sum, ok := t.src.Load(fn, body, decls)
	t.loadNS.Add(int64(time.Since(start)))
	t.loadOps.Add(1)
	return sum, ok
}

func (t *timedSums) Save(sum *infer.FuncSummary, fn string, body, decls [sha256.Size]byte) {
	start := time.Now()
	t.src.Save(sum, fn, body, decls)
	t.saveNS.Add(int64(time.Since(start)))
	t.saveOps.Add(1)
}

func (c *Cache) insertLocked(key Key, res *Compiled) {
	if _, ok := c.entries[key]; ok {
		return // a racing flight already inserted it
	}
	c.entries[key] = c.ll.PushFront(res)
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*Compiled).Key)
		c.evictions++
	}
}

// Lookup returns the cached artifact for a key without compiling, or nil.
// It does not disturb the LRU order and counts neither hit nor miss; it
// exists for introspection (ccserve's cache probe).
func (c *Cache) Lookup(key Key) *Compiled {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		return el.Value.(*Compiled)
	}
	return nil
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:    c.ll.Len(),
		MaxEntries: c.max,
		Hits:       c.hits,
		Misses:     c.misses,
		Evictions:  c.evictions,
	}
}
