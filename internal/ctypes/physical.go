package ctypes

// This file implements physical type equality and physical subtyping
// (§3.1 of the paper). A type is flattened into a sequence of scalar atoms
// at byte offsets; t' is a physical subtype of t ("t <= t'", so that
// casting t* to t'* is an upcast) when the atom sequence of t' is a prefix
// of that of t at identical offsets.
//
// The flattening realizes the paper's equations:
//
//	t ~ t[1]
//	t[n1+n2] ~ struct { t[n1]; t[n2]; }
//	struct { t1; void; } ~ t1            (void is the empty aggregate)
//	struct { t1; struct { t2; t3; } } ~ struct { struct { t1; t2; }; t3; }
//
// Pointer atoms match only pointer atoms whose targets are physically
// equal (checked coinductively so recursive structures terminate); this is
// the soundness condition that distinguishes our treatment of void* from
// prior work, and it is what keeps a double from aliasing a function
// pointer in the Circle/Figure example.

// maxFlatten bounds the number of atoms materialized when flattening a
// type; casts between larger types are conservatively classified bad.
const maxFlatten = 8192

type atomKind int

const (
	aInt atomKind = iota
	aFloat
	aPtr
	aFuncPtr
	aUnion // opaque union blob: matches only the identical union
)

type atom struct {
	off  int
	kind atomKind
	size int
	pt   *Type       // for aPtr/aFuncPtr: the pointer occurrence itself
	su   *StructInfo // for aUnion
}

// flatten appends the atoms of t at base offset to out. Returns nil, false
// if the atom budget is exceeded.
func flatten(t *Type, base int, out []atom) ([]atom, bool) {
	if len(out) > maxFlatten {
		return nil, false
	}
	switch t.Kind {
	case Void:
		return out, true // empty aggregate
	case Int:
		return append(out, atom{off: base, kind: aInt, size: t.Size}), true
	case Float:
		return append(out, atom{off: base, kind: aFloat, size: t.Size}), true
	case Ptr:
		k := aPtr
		if t.Elem.Kind == Func {
			k = aFuncPtr
		}
		return append(out, atom{off: base, kind: k, size: Word, pt: t}), true
	case Array:
		n := t.Len
		if n < 0 {
			n = 0
		}
		esz := Sizeof(t.Elem)
		var ok bool
		for i := 0; i < n; i++ {
			out, ok = flatten(t.Elem, base+i*esz, out)
			if !ok {
				return nil, false
			}
		}
		return out, true
	case Struct:
		if !t.SU.Complete {
			return nil, false
		}
		if t.SU.Union {
			// A union is opaque: it matches only itself. (Real CCured
			// makes unsound unions WILD; sendmail's port turned unions
			// into structs for this reason.)
			return append(out, atom{off: base, kind: aUnion, size: Sizeof(t), su: t.SU}), true
		}
		var ok bool
		for _, f := range t.SU.Fields {
			out, ok = flatten(f.Type, base+f.Offset, out)
			if !ok {
				return nil, false
			}
		}
		return out, true
	case Func:
		return nil, false
	}
	return nil, false
}

// matcher carries the coinductive memo table and the matched pointer pairs
// accumulated while comparing two types.
type matcher struct {
	seen  map[[2]int]bool // struct-pair assumptions, by StructInfo.ID
	pairs [][2]*Type      // matched pointer occurrences (for kind unification)
}

func (m *matcher) atomEq(a, b atom, sameOff bool) bool {
	if sameOff && a.off != b.off {
		return false
	}
	if a.kind != b.kind || a.size != b.size {
		return false
	}
	switch a.kind {
	case aUnion:
		return a.su == b.su
	case aPtr:
		if !m.physEq(a.pt.Elem, b.pt.Elem) {
			return false
		}
		m.pairs = append(m.pairs, [2]*Type{a.pt, b.pt})
		return true
	case aFuncPtr:
		if !m.sigEq(a.pt.Elem, b.pt.Elem) {
			return false
		}
		m.pairs = append(m.pairs, [2]*Type{a.pt, b.pt})
		return true
	}
	return true
}

// sigEq compares two function types for compatible signatures.
func (m *matcher) sigEq(a, b *Type) bool {
	if a.Kind != Func || b.Kind != Func {
		return false
	}
	fa, fb := a.Fn, b.Fn
	if fa.Variadic != fb.Variadic || len(fa.Params) != len(fb.Params) {
		return false
	}
	if !m.physEq(fa.Ret, fb.Ret) {
		return false
	}
	for i := range fa.Params {
		if !m.physEq(fa.Params[i], fb.Params[i]) {
			return false
		}
	}
	return true
}

// physEq reports whether a and b are physically equal types.
func (m *matcher) physEq(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	// Coinductive guard for (mutually) recursive structures.
	if a.Kind == Struct && b.Kind == Struct {
		if a.SU == b.SU {
			return true
		}
		key := [2]int{a.SU.ID, b.SU.ID}
		if key[0] > key[1] {
			key[0], key[1] = key[1], key[0]
		}
		if m.seen[key] {
			return true
		}
		m.seen[key] = true
		defer delete(m.seen, key)
	}
	if a.Kind == Func || b.Kind == Func {
		return m.sigEq(a, b)
	}
	fa, ok := flatten(a, 0, nil)
	if !ok {
		return false
	}
	fb, ok := flatten(b, 0, nil)
	if !ok {
		return false
	}
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if !m.atomEq(fa[i], fb[i], true) {
			return false
		}
	}
	return true
}

// PhysEqual reports whether a and b are physically equal (a ~ b). It also
// returns the pointer occurrence pairs matched during the comparison; when
// the types are used compatibly, the inference must unify the kinds of each
// pair.
func PhysEqual(a, b *Type) (bool, [][2]*Type) {
	m := &matcher{seen: make(map[[2]int]bool)}
	ok := m.physEq(a, b)
	if !ok {
		return false, nil
	}
	return true, m.pairs
}

// Prefix reports whether smaller is a physical-layout prefix of larger
// (larger <= smaller), i.e. casting larger* to smaller* is a safe upcast.
// void is the empty aggregate, so Prefix(t, void) holds for every t.
func Prefix(larger, smaller *Type) (bool, [][2]*Type) {
	m := &matcher{seen: make(map[[2]int]bool)}
	ok := m.prefix(larger, smaller)
	if !ok {
		return false, nil
	}
	return true, m.pairs
}

func (m *matcher) prefix(larger, smaller *Type) bool {
	if smaller.Kind == Void {
		return true
	}
	if larger.Kind == Func || smaller.Kind == Func {
		return m.sigEq(larger, smaller)
	}
	fl, ok := flatten(larger, 0, nil)
	if !ok {
		return false
	}
	fs, ok := flatten(smaller, 0, nil)
	if !ok {
		return false
	}
	if len(fs) > len(fl) {
		return false
	}
	// Every atom of the smaller view must coincide with an atom of the
	// larger at the same offset. Atoms are emitted in offset order, and the
	// larger type may have extra atoms interleaved only beyond the
	// smaller's span or in the smaller's padding holes; we walk both lists.
	j := 0
	for i := range fs {
		for j < len(fl) && fl[j].off < fs[i].off {
			j++
		}
		if j >= len(fl) || !m.atomEq(fl[j], fs[i], true) {
			return false
		}
		j++
	}
	return true
}

// gcd computes the greatest common divisor.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Tile implements the SEQ cast rule of §3.1: a cast from a* SEQ to b* SEQ
// is allowed when a[n] ~ b[n'] for the smallest n, n' > 0 such that
// n*sizeof(a) == n'*sizeof(b). This prevents, e.g., viewing a Circle array
// as a Figure array where strides would misalign doubles over function
// pointers, while allowing multi-dimensional array reshaping.
func Tile(a, b *Type) (bool, [][2]*Type) {
	sa, sb := Sizeof(a), Sizeof(b)
	if sa == 0 || sb == 0 {
		// void or incomplete: only void~void tiles.
		if a.Kind == Void && b.Kind == Void {
			return true, nil
		}
		return false, nil
	}
	g := gcd(sa, sb)
	lcm := sa / g * sb
	if lcm > maxFlatten {
		return false, nil
	}
	n, n2 := lcm/sa, lcm/sb
	m := &matcher{seen: make(map[[2]int]bool)}
	if !m.physEq(ArrayOf(a, n), ArrayOf(b, n2)) {
		return false, nil
	}
	return true, m.pairs
}

// ContainsPointer reports whether t's representation contains any pointer
// (used by the WILD-spreading and the Meta(t) computation: types without
// pointers need no metadata).
func ContainsPointer(t *Type) bool {
	found := false
	Walk(t, func(u *Type) {
		if u.Kind == Ptr {
			found = true
		}
	})
	return found
}
