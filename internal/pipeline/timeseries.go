package pipeline

import (
	"context"
	"sync"
	"time"
)

// History is an in-process time series of Metrics snapshots: a fixed-size
// ring sampled on a scrape interval, retained for a bounded window. It is
// deliberately not a TSDB — one process, one retention horizon, whole
// snapshots — because its consumers (the burn-rate engine, the /debug/dash
// sparklines, CI artifacts) all want "the recent past of this process",
// and a ring of ~360 snapshots answers that in a few megabytes with zero
// dependencies. Anything longer-lived belongs in an external scraper,
// which the cumulative Prometheus exposition already feeds.
//
// History also owns SLO evaluation: each Tick appends a snapshot and
// re-evaluates the configured objectives against the ring, publishing an
// slo_state event on the bus whenever an objective changes alert state.

// HistoryOptions configures a History. Zero values take defaults.
type HistoryOptions struct {
	// Source produces the snapshot sampled each tick (required; typically
	// Runner.Metrics).
	Source func() Metrics
	// Interval is the sampling period (default 10s).
	Interval time.Duration
	// Retention bounds how far back the ring reaches (default 1h). The
	// ring holds Retention/Interval+1 points.
	Retention time.Duration
	// SLOs are the objectives evaluated each tick (nil = none).
	SLOs []SLOSpec
	// Windows are the burn-rate windows (zero fields take the 5m/1h/30m/6h
	// defaults). Windows longer than Retention degrade to the full ring.
	Windows SLOWindows
	// Bus, when set, receives an slo_state JobEvent each time an objective
	// changes alert state.
	Bus *Bus
}

const (
	defaultHistoryInterval  = 10 * time.Second
	defaultHistoryRetention = time.Hour
)

type histPoint struct {
	at time.Time
	m  Metrics
}

// History samples Metrics on an interval into a bounded ring and evaluates
// SLO burn rates over it. Create with NewHistory; drive with Run (or Tick
// in tests).
type History struct {
	opts HistoryOptions

	mu       sync.Mutex
	ring     []histPoint
	head     int // next write slot
	n        int // points stored
	statuses []SLOStatus
}

// NewHistory builds a History (no sampling starts until Run or Tick).
func NewHistory(opts HistoryOptions) *History {
	if opts.Interval <= 0 {
		opts.Interval = defaultHistoryInterval
	}
	if opts.Retention <= 0 {
		opts.Retention = defaultHistoryRetention
	}
	opts.Windows = opts.Windows.withDefaults()
	capacity := int(opts.Retention/opts.Interval) + 1
	if capacity < 2 {
		capacity = 2
	}
	return &History{opts: opts, ring: make([]histPoint, capacity)}
}

// Interval returns the configured sampling period.
func (h *History) Interval() time.Duration { return h.opts.Interval }

// Retention returns the configured retention window.
func (h *History) Retention() time.Duration { return h.opts.Retention }

// Run samples Source every Interval until ctx is cancelled. It takes one
// sample immediately so the ring is never empty while the process serves.
func (h *History) Run(ctx context.Context) {
	h.Tick(time.Now())
	t := time.NewTicker(h.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			h.Tick(now)
		}
	}
}

// Tick takes one sample at the given time and re-evaluates the SLOs. It is
// the testable entry point behind Run; tests drive it with synthetic
// clocks.
func (h *History) Tick(now time.Time) {
	m := h.opts.Source()
	h.mu.Lock()
	h.ring[h.head] = histPoint{at: now, m: m}
	h.head = (h.head + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	prev := h.statuses
	h.statuses = h.evalLocked(now)
	cur := h.statuses
	h.mu.Unlock()

	if h.opts.Bus == nil {
		return
	}
	// Publish transitions outside the lock (Publish takes the bus lock).
	prevState := make(map[string]string, len(prev))
	for _, s := range prev {
		prevState[s.Name] = s.State
	}
	for _, s := range cur {
		if old, seen := prevState[s.Name]; (seen && old != s.State) || (!seen && s.State != SLOStateOK) {
			h.opts.Bus.Publish(JobEvent{
				Type:  "slo_state",
				Name:  s.Name,
				State: s.State,
				Burn:  s.MaxBurn(),
			})
		}
	}
}

// Statuses returns the most recent SLO evaluations (nil before the first
// Tick or when no SLOs are configured).
func (h *History) Statuses() []SLOStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]SLOStatus, len(h.statuses))
	copy(out, h.statuses)
	return out
}

// at returns the i-th stored point, 0 = oldest. Caller holds mu.
func (h *History) at(i int) histPoint {
	return h.ring[(h.head-h.n+i+2*len(h.ring))%len(h.ring)]
}

// older returns the newest stored point at least age older than now, or
// the oldest stored point when the ring does not reach that far. ok is
// false when fewer than two points exist. Caller holds mu.
func (h *History) older(now time.Time, age time.Duration) (histPoint, bool) {
	if h.n < 2 {
		return histPoint{}, false
	}
	cut := now.Add(-age)
	best := h.at(0)
	for i := 1; i < h.n-1; i++ {
		p := h.at(i)
		if p.at.After(cut) {
			break
		}
		best = p
	}
	return best, true
}

// evalLocked computes the SLO statuses against the current ring. Caller
// holds mu; the newest point must already be appended.
func (h *History) evalLocked(now time.Time) []SLOStatus {
	if len(h.opts.SLOs) == 0 || h.n == 0 {
		return nil
	}
	newest := h.at(h.n - 1)
	windows := []time.Duration{
		h.opts.Windows.FastShort, h.opts.Windows.FastLong,
		h.opts.Windows.SlowShort, h.opts.Windows.SlowLong,
	}
	out := make([]SLOStatus, 0, len(h.opts.SLOs))
	for _, spec := range h.opts.SLOs {
		st := SLOStatus{SLOSpec: spec, Windows: make([]WindowBurn, 0, len(windows))}
		for _, w := range windows {
			wb := WindowBurn{WindowMS: w.Milliseconds()}
			if old, ok := h.older(now, w); ok {
				wb.SpanMS = newest.at.Sub(old.at).Milliseconds()
				wb.Good, wb.Total = sloEvents(spec, old.m, newest.m)
				wb.Burn = burnRate(spec, wb.Good, wb.Total)
				wb.Eligible = wb.alertEligible()
			}
			st.Windows = append(st.Windows, wb)
		}
		st.State = sloState(st.Windows)
		out = append(out, st)
	}
	return out
}

// HistoryPoint is one retained sample in a Dump: gauges as observed plus
// counter deltas against the previous retained point, so a consumer reads
// rates without re-deriving them. The oldest point in a dump has
// IntervalMS 0 and zero deltas (nothing precedes it).
type HistoryPoint struct {
	UnixMS     int64 `json:"unix_ms"`
	IntervalMS int64 `json:"interval_ms"`

	QueueDepth   int64 `json:"queue_depth"`
	JobsInFlight int64 `json:"jobs_in_flight"`

	Admitted   uint64 `json:"admitted"`
	Shed       uint64 `json:"shed"`
	JobsRun    uint64 `json:"jobs_run"`
	JobsFailed uint64 `json:"jobs_failed"`
	Coalesced  uint64 `json:"coalesced"`
	Traps      uint64 `json:"traps"`

	// P50MS/P99MS are quantiles of the end-to-end latency observed during
	// this point's interval (delta histogram), 0 when nothing completed.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
}

// HistorySummary aggregates one dump window: counter deltas from the
// window's oldest to newest snapshot plus the window's end-to-end latency
// distribution (with exemplars, so a dashboard can link a quantile to a
// representative trace).
type HistorySummary struct {
	Admitted     uint64            `json:"admitted"`
	Shed         uint64            `json:"shed"`
	ShedByReason map[string]uint64 `json:"shed_by_reason,omitempty"`
	JobsRun      uint64            `json:"jobs_run"`
	JobsFailed   uint64            `json:"jobs_failed"`
	Coalesced    uint64            `json:"coalesced"`
	Traps        uint64            `json:"traps"`
	TrapsByKind  map[string]uint64 `json:"traps_by_kind,omitempty"`

	E2E   Histogram `json:"e2e"`
	P50MS float64   `json:"p50_ms"`
	P90MS float64   `json:"p90_ms"`
	P99MS float64   `json:"p99_ms"`
}

// HistoryDump is the GET /metrics/history payload.
type HistoryDump struct {
	IntervalMS  int64           `json:"interval_ms"`
	RetentionMS int64           `json:"retention_ms"`
	WindowMS    int64           `json:"window_ms"`
	Points      []HistoryPoint  `json:"points"`
	Summary     *HistorySummary `json:"summary,omitempty"`
	SLOs        []SLOStatus     `json:"slos,omitempty"`
}

// Dump renders the retained points no older than window (0 or anything
// beyond retention = the whole ring) with per-point deltas, a window
// summary, and the current SLO statuses.
func (h *History) Dump(window time.Duration) HistoryDump {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistoryDump{
		IntervalMS:  h.opts.Interval.Milliseconds(),
		RetentionMS: h.opts.Retention.Milliseconds(),
		WindowMS:    window.Milliseconds(),
		SLOs:        append([]SLOStatus(nil), h.statuses...),
	}
	if h.n == 0 {
		return out
	}
	newest := h.at(h.n - 1)
	start := 0
	if window > 0 {
		cut := newest.at.Add(-window)
		for start < h.n-1 && h.at(start).at.Before(cut) {
			start++
		}
	}
	var prev *histPoint
	for i := start; i < h.n; i++ {
		p := h.at(i)
		hp := HistoryPoint{
			UnixMS:       p.m.SnapshotUnixMS,
			QueueDepth:   p.m.QueueDepthNow,
			JobsInFlight: p.m.JobsInFlight,
		}
		if hp.UnixMS == 0 {
			hp.UnixMS = p.at.UnixMilli()
		}
		if prev != nil {
			hp.IntervalMS = p.at.Sub(prev.at).Milliseconds()
			hp.Admitted = counterDelta(p.m.Admitted, prev.m.Admitted)
			hp.Shed = counterDelta(p.m.Shed, prev.m.Shed)
			hp.JobsRun = counterDelta(p.m.JobsRun, prev.m.JobsRun)
			hp.JobsFailed = counterDelta(p.m.JobsFailed, prev.m.JobsFailed)
			hp.Coalesced = counterDelta(p.m.Coalesced, prev.m.Coalesced)
			hp.Traps = counterDelta(p.m.Traps, prev.m.Traps)
			d := p.m.E2EWall.Delta(prev.m.E2EWall)
			// Skip the quantiles when Delta detected inconsistent snapshots
			// (it returns p unchanged although prev was non-empty).
			if d.Count > 0 && (prev.m.E2EWall.Count == 0 || d.Count < p.m.E2EWall.Count) {
				hp.P50MS = d.Quantile(0.50)
				hp.P99MS = d.Quantile(0.99)
			}
		}
		pp := p
		prev = &pp
		out.Points = append(out.Points, hp)
	}
	if len(out.Points) >= 2 {
		oldest := h.at(start)
		s := &HistorySummary{
			Admitted:     counterDelta(newest.m.Admitted, oldest.m.Admitted),
			Shed:         counterDelta(newest.m.Shed, oldest.m.Shed),
			ShedByReason: mapDelta(newest.m.ShedByReason, oldest.m.ShedByReason),
			JobsRun:      counterDelta(newest.m.JobsRun, oldest.m.JobsRun),
			JobsFailed:   counterDelta(newest.m.JobsFailed, oldest.m.JobsFailed),
			Coalesced:    counterDelta(newest.m.Coalesced, oldest.m.Coalesced),
			Traps:        counterDelta(newest.m.Traps, oldest.m.Traps),
			TrapsByKind:  mapDelta(newest.m.TrapsByKind, oldest.m.TrapsByKind),
		}
		s.E2E = newest.m.E2EWall.Delta(oldest.m.E2EWall)
		if s.E2E.Count > 0 {
			s.P50MS = s.E2E.Quantile(0.50)
			s.P90MS = s.E2E.Quantile(0.90)
			s.P99MS = s.E2E.Quantile(0.99)
		}
		out.Summary = s
	}
	return out
}

// counterDelta subtracts cumulative counters, clamping at zero so a
// restart between snapshots yields 0 rather than a wrapped giant.
func counterDelta(cur, old uint64) uint64 {
	if cur < old {
		return 0
	}
	return cur - old
}

// mapDelta subtracts per-key cumulative counters, keeping positive deltas.
func mapDelta(cur, old map[string]uint64) map[string]uint64 {
	if len(cur) == 0 {
		return nil
	}
	out := make(map[string]uint64)
	for k, v := range cur {
		if d := counterDelta(v, old[k]); d > 0 {
			out[k] = d
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
