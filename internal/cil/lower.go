package cil

import (
	"gocured/internal/cparse"
	"gocured/internal/ctypes"
	"gocured/internal/diag"
	"gocured/internal/sema"
)

// Lower converts a checked translation unit to the CIL-like IR.
func Lower(unit *sema.Unit, diags *diag.List) *Program {
	lw := &lowerer{
		unit:  unit,
		diags: diags,
		prog:  &Program{FuncMap: make(map[string]*Func)},
		varOf: make(map[*cparse.Symbol]*Var),
	}
	lw.prog.Structs = unit.File.Structs
	for _, w := range unit.File.Wrappers {
		lw.prog.Wrappers = append(lw.prog.Wrappers, &Wrapper{Wrapper: w.Wrapper, Wrapped: w.Wrapped})
	}
	for _, g := range unit.Globals {
		v := lw.varFor(g)
		gl := &Global{Var: v}
		if g.VDecl != nil && g.VDecl.Init != nil {
			gl.Init = lw.staticInit(g.VDecl.Init, g.Type)
		}
		lw.prog.Globals = append(lw.prog.Globals, gl)
	}
	for _, ext := range unit.Externs {
		lw.prog.Externs = append(lw.prog.Externs, lw.varFor(ext))
	}
	for _, fs := range unit.Funcs {
		lw.lowerFunc(fs)
	}
	return lw.prog
}

type lowerer struct {
	unit  *sema.Unit
	diags *diag.List
	prog  *Program
	varOf map[*cparse.Symbol]*Var

	fn  *Func
	cur *[]Stmt // current statement sink
}

func (lw *lowerer) varFor(sym *cparse.Symbol) *Var {
	if v, ok := lw.varOf[sym]; ok {
		return v
	}
	v := &Var{
		Name:      sym.Name,
		Type:      sym.Type,
		Global:    sym.Global || sym.Kind == cparse.SymFunc,
		Param:     sym.Param,
		AddrType:  sym.AddrType,
		AddrTaken: sym.AddrTaken,
		ID:        len(lw.varOf),
	}
	lw.varOf[sym] = v
	return v
}

func (lw *lowerer) emit(i Instr)    { *lw.cur = append(*lw.cur, &SInstr{Ins: i}) }
func (lw *lowerer) emitStmt(s Stmt) { *lw.cur = append(*lw.cur, s) }

// inBlock runs f with a fresh block as the statement sink.
func (lw *lowerer) inBlock(f func()) *Block {
	b := &Block{}
	old := lw.cur
	lw.cur = &b.Stmts
	f()
	lw.cur = old
	return b
}

// ---- Functions ----

func (lw *lowerer) lowerFunc(fs *sema.FuncSema) {
	fn := &Func{
		Name: fs.Def.Name,
		Type: fs.Def.Type,
		Pos:  fs.Def.P,
	}
	lw.fn = fn
	for _, p := range fs.Params {
		fn.Params = append(fn.Params, lw.varFor(p))
	}
	for _, l := range fs.Locals {
		fn.Locals = append(fn.Locals, lw.varFor(l))
	}
	fn.Body = lw.inBlock(func() {
		lw.lowerStmt(fs.Def.Body)
		// Implicit return for functions that fall off the end.
		ret := fn.Type.Fn.Ret
		if ret.IsVoid() {
			lw.emitStmt(&Return{})
		} else {
			lw.emitStmt(&Return{X: zeroValue(ret)})
		}
	})
	lw.prog.Funcs = append(lw.prog.Funcs, fn)
	lw.prog.FuncMap[fn.Name] = fn
	lw.fn = nil
}

// zeroValue builds a zero constant of type t (for implicit returns).
func zeroValue(t *ctypes.Type) Expr {
	switch t.Kind {
	case ctypes.Float:
		return &FConst{F: 0, Ty: t}
	case ctypes.Ptr:
		return &Cast{To: t, X: &Const{I: 0, Ty: ctypes.IntT()}, Implicit: true}
	default:
		return &Const{I: 0, Ty: t}
	}
}

// ---- Statements ----

func (lw *lowerer) lowerStmt(s cparse.Stmt) {
	switch st := s.(type) {
	case *cparse.Block:
		for _, s2 := range st.Stmts {
			lw.lowerStmt(s2)
		}
	case *cparse.Empty:
	case *cparse.ExprStmt:
		lw.lowerExprForEffect(st.X)
	case *cparse.DeclStmt:
		for _, d := range st.Decls {
			if d.Init == nil {
				continue
			}
			v := lw.varOf[d.Sym]
			lw.lowerLocalInit(VarLV(v), d.Init, d.Type, d.P)
		}
	case *cparse.If:
		cond := lw.lowerExpr(st.Cond)
		thenB := lw.inBlock(func() { lw.lowerStmt(st.Then) })
		var elseB *Block
		if st.Else != nil {
			elseB = lw.inBlock(func() { lw.lowerStmt(st.Else) })
		}
		lw.emitStmt(&If{Cond: cond, Then: thenB, Else: elseB})
	case *cparse.While:
		body := lw.inBlock(func() {
			cond := lw.lowerExpr(st.Cond)
			lw.emitStmt(&If{Cond: notExpr(cond), Then: &Block{Stmts: []Stmt{&Break{}}}})
			lw.lowerStmt(st.Body)
		})
		lw.emitStmt(&Loop{Body: body})
	case *cparse.DoWhile:
		body := lw.inBlock(func() { lw.lowerStmt(st.Body) })
		post := lw.inBlock(func() {
			cond := lw.lowerExpr(st.Cond)
			lw.emitStmt(&If{Cond: notExpr(cond), Then: &Block{Stmts: []Stmt{&Break{}}}})
		})
		lw.emitStmt(&Loop{Body: body, Post: post})
	case *cparse.For:
		if st.Init != nil {
			lw.lowerStmt(st.Init)
		}
		body := lw.inBlock(func() {
			if st.Cond != nil {
				cond := lw.lowerExpr(st.Cond)
				lw.emitStmt(&If{Cond: notExpr(cond), Then: &Block{Stmts: []Stmt{&Break{}}}})
			}
			lw.lowerStmt(st.Body)
		})
		var post *Block
		if st.Post != nil {
			post = lw.inBlock(func() { lw.lowerExprForEffect(st.Post) })
		}
		lw.emitStmt(&Loop{Body: body, Post: post})
	case *cparse.Return:
		r := &Return{Pos: st.Pos()}
		if st.X != nil {
			r.X = lw.lowerExpr(st.X)
		}
		lw.emitStmt(r)
	case *cparse.Break:
		lw.emitStmt(&Break{})
	case *cparse.Continue:
		lw.emitStmt(&Continue{})
	case *cparse.Switch:
		x := lw.lowerExpr(st.X)
		sw := &Switch{X: x}
		for _, cs := range st.Cases {
			body := lw.inBlock(func() {
				for _, s2 := range cs.Stmts {
					lw.lowerStmt(s2)
				}
			})
			sw.Cases = append(sw.Cases, &SwitchCase{Val: cs.Val, IsDefault: cs.IsDefault, Body: body.Stmts})
		}
		lw.emitStmt(sw)
	default:
		lw.diags.Errorf(s.Pos(), "cannot lower statement %T", s)
	}
}

// notExpr builds !e.
func notExpr(e Expr) Expr { return &UnOp{Op: OpNot, X: e, Ty: ctypes.IntT()} }

// lowerLocalInit emits assignments realizing a local initializer. Brace
// lists initialize element-wise; our simulated stack frames are zeroed on
// entry, so omitted elements read as zero (a benign strengthening of C).
func (lw *lowerer) lowerLocalInit(lv *Lvalue, in *cparse.Initializer, ty *ctypes.Type, pos diag.Pos) {
	if !in.IsList {
		if s, ok := in.Expr.(*cparse.StrLit); ok && ty.Kind == ctypes.Array {
			// char a[n] = "str": copy bytes element-wise.
			for i := 0; i <= len(s.Val); i++ {
				var ch int64
				if i < len(s.Val) {
					ch = int64(s.Val[i])
				}
				elt := lv.WithIndex(&Const{I: int64(i), Ty: ctypes.IntT()})
				lw.emit(&Set{instrBase: instrBase{Pos: pos}, LV: elt, RHS: &Const{I: ch, Ty: ctypes.CharType()}})
			}
			return
		}
		rhs := lw.lowerExpr(in.Expr)
		lw.emit(&Set{instrBase: instrBase{Pos: pos}, LV: lv, RHS: rhs})
		return
	}
	switch ty.Kind {
	case ctypes.Array:
		for i, e := range in.List {
			elt := lv.WithIndex(&Const{I: int64(i), Ty: ctypes.IntT()})
			lw.lowerLocalInit(elt, e, ty.Elem, pos)
		}
	case ctypes.Struct:
		for i, e := range in.List {
			if i >= len(ty.SU.Fields) {
				break
			}
			f := ty.SU.Fields[i]
			lw.lowerLocalInit(lv.WithField(f), e, f.Type, pos)
		}
	default:
		if len(in.List) >= 1 {
			lw.lowerLocalInit(lv, in.List[0], ty, pos)
		}
	}
}

// ---- Expressions ----

// lowerExprForEffect lowers an expression evaluated only for side effects.
func (lw *lowerer) lowerExprForEffect(e cparse.Expr) {
	switch x := e.(type) {
	case *cparse.Call:
		fn, args := lw.lowerCallParts(x)
		var res *Lvalue
		// Discard non-void results.
		lw.emit(&Call{instrBase: instrBase{Pos: x.Pos()}, Result: res, Fn: fn, Args: args})
		return
	case *cparse.Assign:
		lw.lowerAssign(x)
		return
	case *cparse.Unary:
		switch x.Op {
		case cparse.PreInc, cparse.PreDec, cparse.PostInc, cparse.PostDec:
			lw.lowerIncDec(x)
			return
		}
	case *cparse.Comma:
		lw.lowerExprForEffect(x.X)
		lw.lowerExprForEffect(x.Y)
		return
	case *cparse.Cast:
		if x.To.IsVoid() {
			lw.lowerExprForEffect(x.X)
			return
		}
	}
	// Default: evaluate and discard (still emits contained calls).
	_ = lw.lowerExpr(e)
}

// lowerExpr lowers an expression to a pure IR expression, emitting
// instructions for any side effects.
func (lw *lowerer) lowerExpr(e cparse.Expr) Expr {
	switch x := e.(type) {
	case *cparse.IntLit:
		ty := x.Type()
		if ty == nil {
			ty = ctypes.IntT()
		}
		return &Const{I: x.Val, Ty: ty}
	case *cparse.FloatLit:
		return &FConst{F: x.Val, Ty: x.Type()}
	case *cparse.StrLit:
		return &StrConst{S: x.Val, Ty: x.Type()}
	case *cparse.Ident:
		if x.Sym != nil && x.Sym.Kind == cparse.SymFunc {
			return lw.fnConst(x.Sym)
		}
		lv := VarLV(lw.varFor(x.Sym))
		if lv.Ty.Kind == ctypes.Array {
			return lw.decayLval(lv)
		}
		return &Lval{LV: lv}
	case *cparse.Unary:
		return lw.lowerUnary(x)
	case *cparse.Binary:
		return lw.lowerBinary(x)
	case *cparse.Assign:
		lv := lw.lowerAssign(x)
		return &Lval{LV: lv}
	case *cparse.Cond:
		return lw.lowerCond(x)
	case *cparse.Cast:
		inner := lw.lowerExpr(x.X)
		return &Cast{To: x.To, X: inner, Implicit: x.Implicit, Trusted: x.Trusted, Pos: x.Pos()}
	case *cparse.Call:
		fn, args := lw.lowerCallParts(x)
		ret := x.Type()
		if ret.IsVoid() {
			lw.emit(&Call{instrBase: instrBase{Pos: x.Pos()}, Fn: fn, Args: args})
			return &Const{I: 0, Ty: ctypes.IntT()}
		}
		tmp := lw.fn.NewTemp(ret)
		lw.emit(&Call{instrBase: instrBase{Pos: x.Pos()}, Result: VarLV(tmp), Fn: fn, Args: args})
		return &Lval{LV: VarLV(tmp)}
	case *cparse.Index, *cparse.Member:
		lv := lw.lowerLval(e)
		if lv.Ty.Kind == ctypes.Array {
			// Array lvalue used as a value: decay to pointer to first elem.
			return lw.decayLval(lv)
		}
		return &Lval{LV: lv}
	case *cparse.SizeofExpr:
		of := x.OfType
		if of == nil {
			of = x.X.Type()
		}
		return &SizeOf{Of: of, Ty: x.Type()}
	case *cparse.Comma:
		lw.lowerExprForEffect(x.X)
		return lw.lowerExpr(x.Y)
	}
	lw.diags.Errorf(e.Pos(), "cannot lower expression %T", e)
	return &Const{I: 0, Ty: ctypes.IntT()}
}

// fnConst builds the function-address constant for a function symbol,
// sharing one pointer occurrence per function.
func (lw *lowerer) fnConst(sym *cparse.Symbol) Expr {
	if sym.AddrType == nil {
		sym.AddrType = ctypes.PointerTo(sym.Type)
	}
	return &FnConst{Name: sym.Name, Ty: sym.AddrType}
}

// decayLval converts an array-typed lvalue to a pointer to its first
// element; the pointer type shares the array occurrence's qualifier node.
func (lw *lowerer) decayLval(lv *Lvalue) Expr {
	pt := lv.Ty.Decay()
	first := lv.WithIndex(&Const{I: 0, Ty: ctypes.IntT()})
	return &AddrOf{LV: first, Ty: pt}
}

func (lw *lowerer) lowerUnary(x *cparse.Unary) Expr {
	switch x.Op {
	case cparse.Neg:
		return &UnOp{Op: OpNeg, X: lw.lowerExpr(x.X), Ty: x.Type()}
	case cparse.Not:
		return &UnOp{Op: OpNot, X: lw.lowerExpr(x.X), Ty: x.Type()}
	case cparse.BitNot:
		return &UnOp{Op: OpBitNot, X: lw.lowerExpr(x.X), Ty: x.Type()}
	case cparse.Deref:
		p := lw.lowerExpr(x.X)
		lv := MemLV(p)
		if lv.Ty.Kind == ctypes.Array {
			return lw.decayLval(lv)
		}
		return &Lval{LV: lv}
	case cparse.AddrOf:
		lv := lw.lowerLval(x.X)
		return &AddrOf{LV: lv, Ty: x.Type()}
	case cparse.PreInc, cparse.PreDec, cparse.PostInc, cparse.PostDec:
		return lw.lowerIncDec(x)
	}
	lw.diags.Errorf(x.Pos(), "cannot lower unary %s", x.Op)
	return &Const{I: 0, Ty: ctypes.IntT()}
}

// lowerIncDec expands ++/-- into a read, an add, and a write; returns the
// value per C semantics (old value for postfix).
func (lw *lowerer) lowerIncDec(x *cparse.Unary) Expr {
	lv := lw.lowerStableLval(x.X)
	ty := lv.Ty
	old := lw.fn.NewTemp(ty)
	lw.emit(&Set{instrBase: instrBase{Pos: x.Pos()}, LV: VarLV(old), RHS: &Lval{LV: lv}})
	one := Expr(&Const{I: 1, Ty: ctypes.IntT()})
	var op Op
	switch {
	case ty.IsPointer() && (x.Op == cparse.PreInc || x.Op == cparse.PostInc):
		op = OpAddPI
	case ty.IsPointer():
		op = OpSubPI
	case x.Op == cparse.PreInc || x.Op == cparse.PostInc:
		op = OpAdd
	default:
		op = OpSub
	}
	if !ty.IsPointer() && ty.Kind == ctypes.Float {
		one = &FConst{F: 1, Ty: ty}
	}
	lw.emit(&Set{instrBase: instrBase{Pos: x.Pos()}, LV: lv,
		RHS: &BinOp{Op: op, A: &Lval{LV: VarLV(old)}, B: one, Ty: ty}})
	if x.Op == cparse.PostInc || x.Op == cparse.PostDec {
		return &Lval{LV: VarLV(old)}
	}
	return &Lval{LV: lv}
}

func (lw *lowerer) lowerBinary(x *cparse.Binary) Expr {
	switch x.Op {
	case cparse.LogAnd, cparse.LogOr:
		// Short-circuit: tmp = (a != 0); if (tmp ==/!= 0) tmp = (b != 0).
		tmp := lw.fn.NewTemp(ctypes.IntT())
		a := lw.lowerExpr(x.X)
		lw.emit(&Set{LV: VarLV(tmp), RHS: boolize(a)})
		var cond Expr = &Lval{LV: VarLV(tmp)}
		if x.Op == cparse.LogOr {
			cond = notExpr(cond)
		}
		inner := lw.inBlock(func() {
			b := lw.lowerExpr(x.Y)
			lw.emit(&Set{LV: VarLV(tmp), RHS: boolize(b)})
		})
		lw.emitStmt(&If{Cond: cond, Then: inner})
		return &Lval{LV: VarLV(tmp)}
	}

	a := lw.lowerExpr(x.X)
	b := lw.lowerExpr(x.Y)
	lt, rt := a.Type(), b.Type()
	op := opOf(x.Op)
	switch x.Op {
	case cparse.Add:
		if lt.IsPointer() {
			op = OpAddPI
		}
	case cparse.Sub:
		if lt.IsPointer() && rt.IsPointer() {
			op = OpSubPP
		} else if lt.IsPointer() {
			op = OpSubPI
		}
	}
	return &BinOp{Op: op, A: a, B: b, Ty: x.Type()}
}

// boolize normalizes a scalar to 0/1.
func boolize(e Expr) Expr {
	t := e.Type()
	var zero Expr
	switch {
	case t.Kind == ctypes.Float:
		zero = &FConst{F: 0, Ty: t}
	case t.IsPointer():
		zero = &Cast{To: t, X: &Const{I: 0, Ty: ctypes.IntT()}, Implicit: true}
	default:
		zero = &Const{I: 0, Ty: t}
	}
	return &BinOp{Op: OpNe, A: e, B: zero, Ty: ctypes.IntT()}
}

var astToOp = map[cparse.BinaryOp]Op{
	cparse.Add: OpAdd, cparse.Sub: OpSub, cparse.Mul: OpMul, cparse.Div: OpDiv,
	cparse.Rem: OpRem, cparse.Shl: OpShl, cparse.Shr: OpShr,
	cparse.Lt: OpLt, cparse.Gt: OpGt, cparse.Le: OpLe, cparse.Ge: OpGe,
	cparse.Eq: OpEq, cparse.Ne: OpNe,
	cparse.BitAnd: OpBitAnd, cparse.BitOr: OpBitOr, cparse.BitXor: OpBitXor,
}

func opOf(op cparse.BinaryOp) Op { return astToOp[op] }

func (lw *lowerer) lowerCond(x *cparse.Cond) Expr {
	tmp := lw.fn.NewTemp(x.Type())
	c := lw.lowerExpr(x.C)
	thenB := lw.inBlock(func() {
		lw.emit(&Set{LV: VarLV(tmp), RHS: lw.lowerExpr(x.T)})
	})
	elseB := lw.inBlock(func() {
		lw.emit(&Set{LV: VarLV(tmp), RHS: lw.lowerExpr(x.F)})
	})
	lw.emitStmt(&If{Cond: c, Then: thenB, Else: elseB})
	return &Lval{LV: VarLV(tmp)}
}

// lowerAssign emits the store(s) for an assignment and returns the target.
func (lw *lowerer) lowerAssign(x *cparse.Assign) *Lvalue {
	lv := lw.lowerStableLval(x.L)
	if x.Op < 0 {
		rhs := lw.lowerExpr(x.R)
		lw.emit(&Set{instrBase: instrBase{Pos: x.Pos()}, LV: lv, RHS: rhs})
		return lv
	}
	// Compound assignment: l = (lt)((common)l op r).
	rhs := lw.lowerExpr(x.R)
	lt := lv.Ty
	cur := Expr(&Lval{LV: lv})
	var result Expr
	if lt.IsPointer() {
		op := OpAddPI
		if x.Op == cparse.Sub {
			op = OpSubPI
		}
		result = &BinOp{Op: op, A: cur, B: rhs, Ty: lt}
	} else {
		common := rhs.Type()
		if !ctypes.Equal(lt, common) {
			cur = &Cast{To: common, X: cur, Implicit: true}
		}
		v := Expr(&BinOp{Op: opOf(x.Op), A: cur, B: rhs, Ty: common})
		if !ctypes.Equal(lt, common) {
			v = &Cast{To: lt, X: v, Implicit: true}
		}
		result = v
	}
	lw.emit(&Set{instrBase: instrBase{Pos: x.Pos()}, LV: lv, RHS: result})
	return lv
}

// lowerStableLval lowers an lvalue whose address must be computed exactly
// once (assignment targets, ++/--). Index expressions with side effects
// are hoisted into temporaries.
func (lw *lowerer) lowerStableLval(e cparse.Expr) *Lvalue {
	return lw.lowerLval(e)
}

// lowerLval lowers an lvalue expression.
func (lw *lowerer) lowerLval(e cparse.Expr) *Lvalue {
	switch x := e.(type) {
	case *cparse.Ident:
		return VarLV(lw.varFor(x.Sym))
	case *cparse.Unary:
		if x.Op == cparse.Deref {
			// MemLV types the lvalue from the pointer's pointee; the AST
			// node's own type may have been decayed in place by sema when
			// the lvalue was used in a value context.
			p := lw.lowerExpr(x.X)
			return MemLV(p)
		}
	case *cparse.Index:
		base := x.X
		// a[i] where a is an array lvalue extends the offset chain; where a
		// is a pointer it is *(a + i).
		if bt := base.Type(); bt.Kind == ctypes.Array {
			lv := lw.lowerLval(base)
			return lv.WithIndex(lw.lowerExpr(x.I))
		}
		p := lw.lowerExpr(base)
		i := lw.lowerExpr(x.I)
		sum := &BinOp{Op: OpAddPI, A: p, B: i, Ty: p.Type()}
		return MemLV(sum)
	case *cparse.Member:
		if x.Arrow {
			p := lw.lowerExpr(x.X)
			lv := MemLV(p)
			lv.Ty = p.Type().Elem
			return lv.WithField(x.Field)
		}
		lv := lw.lowerLval(x.X)
		return lv.WithField(x.Field)
	case *cparse.Cast:
		// Lvalue casts appear via decay bookkeeping only; lower the inner.
		return lw.lowerLval(x.X)
	}
	lw.diags.Errorf(e.Pos(), "expression %T is not an lvalue", e)
	v := lw.fn.NewTemp(e.Type())
	return VarLV(v)
}

// lowerCallParts lowers the callee and arguments of a call.
func (lw *lowerer) lowerCallParts(x *cparse.Call) (Expr, []Expr) {
	var fn Expr
	if id, ok := x.Fn.(*cparse.Ident); ok && id.Sym != nil && id.Sym.Kind == cparse.SymFunc {
		fn = lw.fnConst(id.Sym)
	} else {
		fn = lw.lowerExpr(x.Fn)
	}
	args := make([]Expr, len(x.Args))
	for i, a := range x.Args {
		args[i] = lw.lowerExpr(a)
	}
	return fn, args
}

// ---- Static initializers ----

// staticInit lowers a global initializer; initializer expressions must be
// compile-time constants (arithmetic constants, string literals, function
// names, and addresses of globals).
func (lw *lowerer) staticInit(in *cparse.Initializer, ty *ctypes.Type) *Init {
	if in.IsList {
		out := &Init{IsList: true}
		switch ty.Kind {
		case ctypes.Array:
			for _, e := range in.List {
				out.List = append(out.List, lw.staticInit(e, ty.Elem))
			}
		case ctypes.Struct:
			for i, e := range in.List {
				if i >= len(ty.SU.Fields) {
					break
				}
				out.List = append(out.List, lw.staticInit(e, ty.SU.Fields[i].Type))
			}
		default:
			if len(in.List) >= 1 {
				return lw.staticInit(in.List[0], ty)
			}
		}
		return out
	}
	e := lw.staticExpr(in.Expr, ty)
	if e == nil {
		lw.diags.Errorf(in.P, "initializer is not a compile-time constant")
		return &Init{Zero: true}
	}
	return &Init{Expr: e}
}

// staticExpr lowers a constant initializer expression, or returns nil.
func (lw *lowerer) staticExpr(e cparse.Expr, want *ctypes.Type) Expr {
	switch x := e.(type) {
	case *cparse.IntLit:
		return &Const{I: x.Val, Ty: x.Type()}
	case *cparse.FloatLit:
		return &FConst{F: x.Val, Ty: x.Type()}
	case *cparse.StrLit:
		return &StrConst{S: x.Val, Ty: x.Type()}
	case *cparse.Ident:
		if x.Sym != nil && x.Sym.Kind == cparse.SymFunc {
			return lw.fnConst(x.Sym)
		}
		return nil
	case *cparse.Cast:
		inner := lw.staticExpr(x.X, x.To)
		if inner == nil {
			return nil
		}
		return &Cast{To: x.To, X: inner, Implicit: x.Implicit, Trusted: x.Trusted, Pos: x.Pos()}
	case *cparse.Unary:
		switch x.Op {
		case cparse.AddrOf:
			if id, ok := x.X.(*cparse.Ident); ok && id.Sym != nil && id.Sym.Global {
				return &AddrOf{LV: VarLV(lw.varFor(id.Sym)), Ty: x.Type()}
			}
			return nil
		case cparse.Neg:
			inner := lw.staticExpr(x.X, want)
			if c, ok := inner.(*Const); ok {
				return &Const{I: -c.I, Ty: c.Ty}
			}
			if c, ok := inner.(*FConst); ok {
				return &FConst{F: -c.F, Ty: c.Ty}
			}
			return nil
		}
		return nil
	}
	return nil
}
