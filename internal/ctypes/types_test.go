package ctypes

import (
	"testing"
	"testing/quick"
)

func TestBasicSizes(t *testing.T) {
	cases := []struct {
		ty   *Type
		size int
		al   int
	}{
		{VoidType(), 0, 1},
		{CharType(), 1, 1},
		{IntType(2, true), 2, 2},
		{IntT(), 4, 4},
		{UIntT(), 4, 4},
		{FloatType(4), 4, 4},
		{FloatType(8), 8, 8},
		{PointerTo(IntT()), 4, 4},
		{ArrayOf(IntT(), 10), 40, 4},
		{ArrayOf(CharType(), 7), 7, 1},
	}
	for _, c := range cases {
		if got := Sizeof(c.ty); got != c.size {
			t.Errorf("Sizeof(%s) = %d, want %d", c.ty, got, c.size)
		}
		if got := Alignof(c.ty); got != c.al {
			t.Errorf("Alignof(%s) = %d, want %d", c.ty, got, c.al)
		}
	}
}

func TestStructLayoutPadding(t *testing.T) {
	// struct { char c; int i; short s; } => c@0, i@4, s@8, size 12
	su := NewStruct("s", false)
	su.Define([]*Field{
		{Name: "c", Type: CharType()},
		{Name: "i", Type: IntT()},
		{Name: "s", Type: IntType(2, true)},
	})
	ty := StructType(su)
	if got := Sizeof(ty); got != 12 {
		t.Errorf("size = %d, want 12", got)
	}
	wantOff := []int{0, 4, 8}
	for i, f := range su.Fields {
		if f.Offset != wantOff[i] {
			t.Errorf("field %s offset = %d, want %d", f.Name, f.Offset, wantOff[i])
		}
	}
	if got := Alignof(ty); got != 4 {
		t.Errorf("align = %d, want 4", got)
	}
}

func TestUnionLayout(t *testing.T) {
	su := NewStruct("u", true)
	su.Define([]*Field{
		{Name: "d", Type: FloatType(8)},
		{Name: "c", Type: CharType()},
	})
	ty := StructType(su)
	if got := Sizeof(ty); got != 8 {
		t.Errorf("union size = %d, want 8", got)
	}
	for _, f := range su.Fields {
		if f.Offset != 0 {
			t.Errorf("union field %s offset = %d, want 0", f.Name, f.Offset)
		}
	}
}

// figureCircle builds the paper's Figure/Circle example:
//
//	struct Figure { double (*area)(struct Figure*); };
//	struct Circle { double (*area)(struct Figure*); int radius; };
func figureCircle() (fig, cir *Type) {
	figSU := NewStruct("Figure", false)
	fig = StructType(figSU)
	areaTy := FuncType(FloatType(8), []*Type{PointerTo(StructType(figSU))}, nil, false)
	figSU.Define([]*Field{{Name: "area", Type: PointerTo(areaTy)}})

	cirSU := NewStruct("Circle", false)
	areaTy2 := FuncType(FloatType(8), []*Type{PointerTo(StructType(figSU))}, nil, false)
	cirSU.Define([]*Field{
		{Name: "area", Type: PointerTo(areaTy2)},
		{Name: "radius", Type: IntT()},
	})
	cir = StructType(cirSU)
	return fig, cir
}

func TestPhysicalSubtypingUpcast(t *testing.T) {
	fig, cir := figureCircle()
	if ok, pairs := Prefix(cir, fig); !ok {
		t.Fatal("Circle should be a physical subtype of Figure")
	} else if len(pairs) == 0 {
		t.Error("expected matched function-pointer pair")
	}
	if ok, _ := Prefix(fig, cir); ok {
		t.Error("Figure must NOT be a physical subtype of Circle")
	}
}

func TestVoidIsTopOfHierarchy(t *testing.T) {
	fig, cir := figureCircle()
	for _, ty := range []*Type{fig, cir, IntT(), PointerTo(CharType()), FloatType(8)} {
		if ok, _ := Prefix(ty, VoidType()); !ok {
			t.Errorf("%s should be a physical subtype of void", ty)
		}
	}
	if ok, _ := Prefix(VoidType(), IntT()); ok {
		t.Error("void must not be a physical subtype of int")
	}
}

func TestPhysEqualArrayUnrolling(t *testing.T) {
	// int[6] ~ struct { int[2]; int[4]; }
	su := NewStruct("", false)
	su.Define([]*Field{
		{Name: "a", Type: ArrayOf(IntT(), 2)},
		{Name: "b", Type: ArrayOf(IntT(), 4)},
	})
	if ok, _ := PhysEqual(ArrayOf(IntT(), 6), StructType(su)); !ok {
		t.Error("int[6] should be physically equal to struct{int[2]; int[4];}")
	}
	// t ~ t[1]
	if ok, _ := PhysEqual(IntT(), ArrayOf(IntT(), 1)); !ok {
		t.Error("int should be physically equal to int[1]")
	}
}

func TestStructAssociativity(t *testing.T) {
	// struct { t1; struct { t2; t3; }; } ~ struct { struct { t1; t2; }; t3; }
	mk := func(inner, outer []string) *Type {
		tyOf := func(s string) *Type {
			if s == "p" {
				return PointerTo(CharType())
			}
			return IntT()
		}
		in := NewStruct("", false)
		var inf []*Field
		for i, s := range inner {
			inf = append(inf, &Field{Name: string(rune('a' + i)), Type: tyOf(s)})
		}
		in.Define(inf)
		out := NewStruct("", false)
		var outf []*Field
		for i, s := range outer {
			outf = append(outf, &Field{Name: string(rune('x' + i)), Type: tyOf(s)})
		}
		outf = append(outf, &Field{Name: "nested", Type: StructType(in)})
		out.Define(outf)
		return StructType(out)
	}
	a := mk([]string{"i", "p"}, []string{"i"}) // struct{int; struct{int; char*}}
	b := mk([]string{"p"}, []string{"i", "i"}) // struct{int; int; struct{char*}}
	if ok, _ := PhysEqual(a, b); !ok {
		t.Errorf("associativity: %s should be physically equal to %s", a, b)
	}
}

func TestNoDoubleOverFuncPtr(t *testing.T) {
	// The paper's soundness example: Circle[] viewed as Figure[] would put
	// a double where a function pointer lives. Tile must reject it.
	fig, cir := figureCircle()
	if ok, _ := Tile(cir, fig); ok {
		t.Error("Tile(Circle, Figure) must fail: strides misalign")
	}
	// But reshaping arrays of the same scalar tiles fine: int[2] vs int.
	if ok, _ := Tile(ArrayOf(IntT(), 2), IntT()); !ok {
		t.Error("Tile(int[2], int) should succeed")
	}
	// And a struct of two ints tiles against int.
	su := NewStruct("", false)
	su.Define([]*Field{{Name: "x", Type: IntT()}, {Name: "y", Type: IntT()}})
	if ok, _ := Tile(StructType(su), IntT()); !ok {
		t.Error("Tile(struct{int;int}, int) should succeed")
	}
	// double does not tile against int (atom kinds differ).
	if ok, _ := Tile(FloatType(8), IntT()); ok {
		t.Error("Tile(double, int) must fail")
	}
}

func TestRecursiveStructPhysEq(t *testing.T) {
	// Two structurally identical list types must be physically equal
	// (coinductive comparison must terminate).
	mkList := func(name string) *Type {
		su := NewStruct(name, false)
		su.Define([]*Field{
			{Name: "val", Type: IntT()},
			{Name: "next", Type: PointerTo(StructType(su))},
		})
		return StructType(su)
	}
	a, b := mkList("A"), mkList("B")
	if ok, _ := PhysEqual(a, b); !ok {
		t.Error("isomorphic recursive lists should be physically equal")
	}
	// And a list with a float payload is not equal.
	su := NewStruct("C", false)
	su.Define([]*Field{
		{Name: "val", Type: FloatType(4)},
		{Name: "next", Type: PointerTo(StructType(su))},
	})
	if ok, _ := PhysEqual(a, StructType(su)); ok {
		t.Error("lists with different payload kinds must differ")
	}
}

func TestUnionOpaque(t *testing.T) {
	u1 := NewStruct("u1", true)
	u1.Define([]*Field{{Name: "i", Type: IntT()}, {Name: "f", Type: FloatType(4)}})
	u2 := NewStruct("u2", true)
	u2.Define([]*Field{{Name: "i", Type: IntT()}, {Name: "f", Type: FloatType(4)}})
	if ok, _ := PhysEqual(StructType(u1), StructType(u2)); ok {
		t.Error("distinct unions must be opaque to physical equality")
	}
	if ok, _ := PhysEqual(StructType(u1), StructType(u1)); !ok {
		t.Error("a union must be physically equal to itself")
	}
}

func TestEqualStructural(t *testing.T) {
	if !Equal(PointerTo(IntT()), PointerTo(IntT())) {
		t.Error("int* == int*")
	}
	if Equal(PointerTo(IntT()), PointerTo(UIntT())) {
		t.Error("int* != unsigned int*")
	}
	if !Equal(ArrayOf(CharType(), 3), ArrayOf(CharType(), 3)) {
		t.Error("char[3] == char[3]")
	}
	if Equal(ArrayOf(CharType(), 3), ArrayOf(CharType(), 4)) {
		t.Error("char[3] != char[4]")
	}
}

func TestDecaySharesNode(t *testing.T) {
	arr := ArrayOf(IntT(), 8)
	arr.Node = 42
	d := arr.Decay()
	if d.Kind != Ptr || d.Node != 42 {
		t.Errorf("decayed type = %s node %d, want int* node 42", d, d.Node)
	}
}

// Property: Prefix is reflexive for pointer-free types, and Prefix(a, b)
// implies Sizeof(a) >= Sizeof(b) for complete types.
func TestPrefixProperties(t *testing.T) {
	gens := []func(int) *Type{
		func(n int) *Type { return IntType([]int{1, 2, 4}[n%3], n%2 == 0) },
		func(n int) *Type { return FloatType([]int{4, 8}[n%2]) },
		func(n int) *Type { return ArrayOf(IntT(), n%5+1) },
		func(n int) *Type {
			su := NewStruct("", false)
			su.Define([]*Field{
				{Name: "a", Type: IntType([]int{1, 2, 4}[n%3], true)},
				{Name: "b", Type: FloatType(8)},
			})
			return StructType(su)
		},
	}
	f := func(sel uint8, n uint8) bool {
		ty := gens[int(sel)%len(gens)](int(n))
		ok, _ := Prefix(ty, ty)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(sel1, sel2, n1, n2 uint8) bool {
		a := gens[int(sel1)%len(gens)](int(n1))
		b := gens[int(sel2)%len(gens)](int(n2))
		ok, _ := Prefix(a, b)
		if !ok {
			return true
		}
		return Sizeof(a) >= Sizeof(b)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

// Property: PhysEqual is symmetric.
func TestPhysEqualSymmetric(t *testing.T) {
	fig, cir := figureCircle()
	types := []*Type{IntT(), CharType(), FloatType(8), PointerTo(IntT()),
		ArrayOf(IntT(), 3), fig, cir, VoidType()}
	for _, a := range types {
		for _, b := range types {
			ab, _ := PhysEqual(a, b)
			ba, _ := PhysEqual(b, a)
			if ab != ba {
				t.Errorf("PhysEqual(%s,%s)=%v but PhysEqual(%s,%s)=%v", a, b, ab, b, a, ba)
			}
		}
	}
}
