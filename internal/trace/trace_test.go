package trace

import (
	"strings"
	"testing"
	"time"

	"gocured/internal/diag"
)

func pos(line, col int) diag.Pos {
	return diag.Pos{File: "t.c", Line: line, Col: col}
}

// graph builds: 1 --assign flow--> 2 == 3 (unify), with a bad-cast seed on
// node 3 and an arith seed on node 1.
func testProv() *Prov {
	p := NewProv()
	p.Describe(1, "int*")
	p.Describe(2, "int*")
	p.Describe(3, "char*")
	p.AddEdge(1, 2, CatFlow, "assign", pos(4, 2))
	p.AddEdge(2, 3, CatUnify, "cast-identity", pos(9, 5))
	p.AddSeed(3, "bad-cast", pos(9, 10), "char* incompatible with int*")
	p.AddSeed(1, "arith", pos(6, 3), "pointer arithmetic")
	return p
}

func chainNodes(c *Chain) []int {
	nodes := []int{c.Target}
	cur := c.Target
	for _, s := range c.Steps {
		if s.Reversed {
			cur = s.Edge.From
		} else {
			cur = s.Edge.To
		}
		nodes = append(nodes, cur)
	}
	return nodes
}

func TestExplainWildWalksForwardFlow(t *testing.T) {
	p := testProv()
	c := p.Explain(1, GoalWild)
	if c == nil {
		t.Fatal("no chain found")
	}
	if got := chainNodes(c); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("chain nodes = %v, want [1 2 3]", got)
	}
	if c.Seed == nil || c.Seed.Fact != "bad-cast" || c.Seed.Node != 3 {
		t.Errorf("seed = %+v, want bad-cast on n3", c.Seed)
	}
}

func TestExplainWildWalksBackwardFlow(t *testing.T) {
	// WILD spreads against data flow too: node 3's chain must cross the
	// assign edge in reverse to reach... nothing here, so build the inverse:
	// seed upstream, target downstream.
	p := NewProv()
	p.AddEdge(1, 2, CatFlow, "assign", pos(4, 2))
	p.AddSeed(1, "bad-cast", pos(2, 1), "")
	c := p.Explain(2, GoalWild)
	if c == nil {
		t.Fatal("no WILD chain against the flow direction")
	}
	if len(c.Steps) != 1 || !c.Steps[0].Reversed {
		t.Errorf("steps = %+v, want one reversed flow edge", c.Steps)
	}
}

func TestExplainSeqIgnoresBackwardFlowAndWildSeeds(t *testing.T) {
	p := NewProv()
	p.AddEdge(1, 2, CatFlow, "assign", pos(4, 2))
	p.AddSeed(1, "bad-cast", pos(2, 1), "")
	// SEQ only travels with the flow (1 -> 2), and bad-cast does not seed
	// SEQ, so node 2 has no SEQ explanation.
	if c := p.Explain(2, GoalSeq); c != nil {
		t.Errorf("SEQ chain crossed a backward flow edge to a WILD seed: %+v", c)
	}
	// With an arith seed downstream it resolves.
	p2 := NewProv()
	p2.AddEdge(1, 2, CatFlow, "assign", pos(4, 2))
	p2.AddSeed(2, "arith", pos(6, 3), "")
	c := p2.Explain(1, GoalSeq)
	if c == nil || c.Seed.Fact != "arith" {
		t.Fatalf("SEQ chain = %+v, want arith seed via forward flow", c)
	}
}

func TestExplainBaseEdgeOnlyExplainsWild(t *testing.T) {
	// Base edge: container 1 contains pointer 2. 2's wildness comes from 1.
	p := NewProv()
	p.AddEdge(1, 2, CatBase, "contains", diag.Pos{})
	p.AddSeed(1, "bad-cast", pos(2, 1), "")
	if c := p.Explain(2, GoalWild); c == nil {
		t.Error("WILD must propagate down a base edge (container to member)")
	}
	if c := p.Explain(2, GoalSeq); c != nil {
		t.Errorf("SEQ crossed a base edge: %+v", c)
	}
	// The container is never explained by its member.
	p2 := NewProv()
	p2.AddEdge(1, 2, CatBase, "contains", diag.Pos{})
	p2.AddSeed(2, "bad-cast", pos(2, 1), "")
	if c := p2.Explain(1, GoalWild); c != nil {
		t.Errorf("member wildness leaked up to the container: %+v", c)
	}
}

func TestExplainUnifyBothWays(t *testing.T) {
	for _, tc := range []struct{ target, seed int }{{1, 2}, {2, 1}} {
		p := NewProv()
		p.AddEdge(1, 2, CatUnify, "decay", diag.Pos{})
		p.AddSeed(tc.seed, "rtti-need", pos(3, 3), "")
		if c := p.Explain(tc.target, GoalRtti); c == nil {
			t.Errorf("unify edge not crossed from %d to seed on %d", tc.target, tc.seed)
		}
	}
}

func TestExplainShortestPathWins(t *testing.T) {
	// Two routes from 1 to a seed: direct unify to 4 (seeded), and a
	// two-hop detour 1->2->4. BFS must pick the single-step route.
	p := NewProv()
	p.AddEdge(1, 2, CatFlow, "assign", diag.Pos{})
	p.AddEdge(2, 4, CatFlow, "assign", diag.Pos{})
	p.AddEdge(1, 4, CatUnify, "decay", diag.Pos{})
	p.AddSeed(4, "bad-cast", pos(1, 1), "")
	c := p.Explain(1, GoalWild)
	if c == nil || len(c.Steps) != 1 {
		t.Fatalf("chain = %+v, want the one-step unify route", c)
	}
}

func TestExplainSeedOnTarget(t *testing.T) {
	p := testProv()
	c := p.Explain(3, GoalWild)
	if c == nil || len(c.Steps) != 0 || c.Seed == nil || c.Seed.Node != 3 {
		t.Fatalf("chain = %+v, want zero-step chain seeded at the target", c)
	}
}

func TestExplainNilAndMissing(t *testing.T) {
	var p *Prov
	if c := p.Explain(1, GoalWild); c != nil {
		t.Error("nil Prov must explain nothing")
	}
	p2 := NewProv()
	if c := p2.Explain(7, GoalWild); c != nil {
		t.Error("unknown node must explain nothing")
	}
	if c := testProv().Explain(0, GoalWild); c != nil {
		t.Error("node 0 is the nil sentinel, must explain nothing")
	}
}

func TestRenderFormat(t *testing.T) {
	p := testProv()
	got := p.Explain(1, GoalWild).Render()
	want := "n1 (int*) is WILD:\n" +
		"  n1 -> n2 (int*) [flow: assign] at t.c:4:2\n" +
		"  n2 == n3 (char*) [unify: cast-identity] at t.c:9:5\n" +
		"  n3: bad-cast at t.c:9:10 (char* incompatible with int*)\n"
	if got != want {
		t.Errorf("Render:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderReversedFlowArrow(t *testing.T) {
	p := NewProv()
	p.AddEdge(1, 2, CatFlow, "assign", pos(4, 2))
	p.AddSeed(1, "bad-cast", pos(2, 1), "")
	got := p.Explain(2, GoalWild).Render()
	if !strings.Contains(got, "n2 <- n1") {
		t.Errorf("reversed flow must render a <- arrow:\n%s", got)
	}
}

func TestLines(t *testing.T) {
	p := testProv()
	lines := p.Explain(1, GoalWild).Lines()
	if len(lines) != 4 {
		t.Fatalf("Lines = %d entries, want 4: %q", len(lines), lines)
	}
	for _, l := range lines {
		if strings.HasSuffix(l, "\n") {
			t.Errorf("line retains newline: %q", l)
		}
	}
	var nilChain *Chain
	if nilChain.Lines() != nil || nilChain.Render() != "" {
		t.Error("nil chain must render empty")
	}
}

func TestSpanSet(t *testing.T) {
	var ss SpanSet
	ss.Do("parse", func() {})
	ss.Add("sema", 1500*time.Microsecond)
	if len(ss.Spans) != 2 || ss.Spans[0].Name != "parse" || ss.Spans[1].DurMS != 1.5 {
		t.Errorf("spans = %+v", ss.Spans)
	}
	var nilSet *SpanSet
	ran := false
	nilSet.Do("x", func() { ran = true }) // must still run the body
	nilSet.Add("y", time.Millisecond)
	if !ran {
		t.Error("nil SpanSet.Do skipped the body")
	}
}

func TestSpanNesting(t *testing.T) {
	var ss SpanSet
	outer := ss.Begin("outer")
	inner := ss.Begin("inner")
	if ss.Open() != 2 {
		t.Fatalf("open = %d, want 2", ss.Open())
	}
	ss.End(inner)
	ss.End(outer)
	if ss.Open() != 0 {
		t.Fatalf("open = %d after ending all, want 0", ss.Open())
	}
	if ss.Spans[0].Depth != 0 || ss.Spans[1].Depth != 1 {
		t.Errorf("depths = %d,%d, want 0,1", ss.Spans[0].Depth, ss.Spans[1].Depth)
	}
	// The inner span must nest inside the outer one's interval.
	in, out := ss.Spans[1], ss.Spans[0]
	if in.StartMS < out.StartMS || in.EndMS() > out.EndMS() {
		t.Errorf("inner [%v,%v] escapes outer [%v,%v]",
			in.StartMS, in.EndMS(), out.StartMS, out.EndMS())
	}
}

func TestSpanZeroDuration(t *testing.T) {
	var ss SpanSet
	h := ss.Begin("instant")
	ss.End(h)
	if len(ss.Spans) != 1 {
		t.Fatalf("spans = %d, want 1 (zero-duration spans are kept)", len(ss.Spans))
	}
	if ss.Spans[0].DurMS < 0 {
		t.Errorf("DurMS = %v, want >= 0", ss.Spans[0].DurMS)
	}
}

func TestSpanOutOfOrderEnd(t *testing.T) {
	var ss SpanSet
	outer := ss.Begin("outer")
	inner := ss.Begin("inner")
	// Ending the outer span first must close the still-open child too, at
	// the same instant, and leave nothing open.
	ss.End(outer)
	if ss.Open() != 0 {
		t.Fatalf("open = %d after out-of-order End, want 0", ss.Open())
	}
	if ss.Spans[1].DurMS < 0 {
		t.Errorf("child DurMS = %v, want closed (>= 0)", ss.Spans[1].DurMS)
	}
	if ss.Spans[1].EndMS() > ss.Spans[0].EndMS() {
		t.Errorf("child ends (%v) after parent (%v)", ss.Spans[1].EndMS(), ss.Spans[0].EndMS())
	}
	// A second End of either handle is a no-op.
	before := ss.Spans[1].DurMS
	ss.End(inner)
	ss.End(outer)
	if ss.Spans[1].DurMS != before || ss.Open() != 0 {
		t.Error("repeated End mutated a closed span")
	}
	// Out-of-range handles are ignored.
	ss.End(SpanHandle(-1))
	ss.End(SpanHandle(99))
}
