package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"gocured"
	"gocured/internal/corpus"
)

// E10: check-optimizer overhead. Every corpus program is cured twice — at
// -O0 (every inserted check stays) and at -O (the CFG optimizer runs) —
// and executed in cured mode under both. The rows report the static
// optimizer effect (checks eliminated / coalesced / hoisted / widened) and
// the dynamic one (executed checks and simulated cycles). The two builds
// must agree exactly on observable behaviour — stdout, exit code, trap —
// so this experiment doubles as a corpus-wide differential run for the
// optimizer; any divergence panics.

// OptBenchRow is one program's -O0 vs -O measurement.
type OptBenchRow struct {
	Name string `json:"name"`

	// Static counts.
	Inserted   int `json:"checks_inserted"`
	Eliminated int `json:"checks_eliminated"`
	Coalesced  int `json:"checks_coalesced"`
	Hoisted    int `json:"checks_hoisted"`
	Widened    int `json:"checks_widened"`

	// Dynamic counts in cured mode.
	ChecksO0 uint64 `json:"dyn_checks_o0"`
	ChecksO  uint64 `json:"dyn_checks_o"`
	CyclesO0 uint64 `json:"sim_cycles_o0"`
	CyclesO  uint64 `json:"sim_cycles_o"`

	// Wall-clock times (milliseconds; indicative, unlike the cycle counts).
	CompileO0MS float64 `json:"compile_o0_ms"`
	CompileOMS  float64 `json:"compile_o_ms"`
	RunO0MS     float64 `json:"run_o0_ms"`
	RunOMS      float64 `json:"run_o_ms"`

	// Trapped programs (the exploit demos) are still measured: both builds
	// must trap identically.
	Trapped bool `json:"trapped,omitempty"`

	// DynReductionPct is the per-program dynamic check reduction.
	DynReductionPct float64 `json:"dyn_reduction_pct"`
}

// OptBench is the full -O0 vs -O comparison, serialized to BENCH_opt.json.
type OptBench struct {
	Scale           int           `json:"scale"`
	Rows            []OptBenchRow `json:"rows"`
	TotalChecksO0   uint64        `json:"total_dyn_checks_o0"`
	TotalChecksO    uint64        `json:"total_dyn_checks_o"`
	DynReductionPct float64       `json:"dyn_reduction_pct"`
}

func pct(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * (1 - float64(part)/float64(whole))
}

// MeasureOpt builds and runs every corpus program at -O0 and -O. It
// bypasses the pipeline Runner: wall times of cached artifacts would be
// meaningless, and the point is to execute both builds fresh.
func MeasureOpt(cfg Config) *OptBench {
	progs := corpus.All()
	bench := &OptBench{Scale: cfg.Scale, Rows: make([]OptBenchRow, len(progs))}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, p := range progs {
		wg.Add(1)
		go func(i int, p *corpus.Program) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			bench.Rows[i] = measureOne(p, cfg.Scale)
		}(i, p)
	}
	wg.Wait()
	for _, r := range bench.Rows {
		bench.TotalChecksO0 += r.ChecksO0
		bench.TotalChecksO += r.ChecksO
	}
	bench.DynReductionPct = pct(bench.TotalChecksO, bench.TotalChecksO0)
	return bench
}

func measureOne(p *corpus.Program, scale int) OptBenchRow {
	src := p.Source
	if scale > 0 {
		src = corpus.WithScale(p, scale)
	}
	build := func(noOpt bool) (*gocured.Program, gocured.Stats, *gocured.Result, float64, float64) {
		opts := gocured.Options{TrustBadCasts: p.TrustBadCasts, NoOptimize: noOpt}
		t0 := time.Now()
		prog, err := gocured.Compile(p.Name+".c", src, opts)
		compileMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			panic(fmt.Sprintf("optbench: build %s: %v", p.Name, err))
		}
		t0 = time.Now()
		out, err := prog.Run(gocured.ModeCured, gocured.RunOptions{})
		runMS := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			panic(fmt.Sprintf("optbench: run %s: %v", p.Name, err))
		}
		return prog, prog.Stats(), out, compileMS, runMS
	}
	_, _, o0, c0ms, r0ms := build(true)
	_, st, o1, c1ms, r1ms := build(false)
	// The optimizer must be observably invisible.
	if o0.Stdout != o1.Stdout || o0.ExitCode != o1.ExitCode ||
		o0.Trapped != o1.Trapped || o0.TrapKind != o1.TrapKind {
		panic(fmt.Sprintf("optbench: %s diverges between -O0 and -O: trapped %v/%v kind %q/%q",
			p.Name, o0.Trapped, o1.Trapped, o0.TrapKind, o1.TrapKind))
	}
	return OptBenchRow{
		Name:       p.Name,
		Inserted:   st.ChecksInserted,
		Eliminated: st.ChecksEliminated,
		Coalesced:  st.ChecksCoalesced,
		Hoisted:    st.ChecksHoisted,
		Widened:    st.ChecksWidened,
		ChecksO0:   o0.Checks, ChecksO: o1.Checks,
		CyclesO0: o0.SimCycles, CyclesO: o1.SimCycles,
		CompileO0MS: c0ms, CompileOMS: c1ms,
		RunO0MS: r0ms, RunOMS: r1ms,
		Trapped:         o1.Trapped,
		DynReductionPct: pct(o1.Checks, o0.Checks),
	}
}

// OptOverhead renders E10 as a table.
func OptOverhead(cfg Config) *Table {
	b := MeasureOpt(cfg)
	t := &Table{
		ID:    "E10",
		Title: "check optimizer: -O0 vs -O (static and dynamic checks)",
		Note: "elim/coal are static deletions, hoist/widen moves out of loops;\n" +
			"dyn checks and cycles are cured-mode executions of the same program",
		Header: []string{"program", "inserted", "elim", "coal", "hoist", "widen",
			"dyn checks -O0", "dyn checks -O", "dyn -%", "cycles -O0", "cycles -O"},
	}
	for _, r := range b.Rows {
		name := r.Name
		if r.Trapped {
			name += "*"
		}
		t.Rows = append(t.Rows, []string{
			name,
			fmt.Sprint(r.Inserted), fmt.Sprint(r.Eliminated), fmt.Sprint(r.Coalesced),
			fmt.Sprint(r.Hoisted), fmt.Sprint(r.Widened),
			fmt.Sprint(r.ChecksO0), fmt.Sprint(r.ChecksO),
			fmt.Sprintf("%.1f", r.DynReductionPct),
			fmt.Sprint(r.CyclesO0), fmt.Sprint(r.CyclesO),
		})
	}
	t.Rows = append(t.Rows, []string{
		"TOTAL", "", "", "", "", "",
		fmt.Sprint(b.TotalChecksO0), fmt.Sprint(b.TotalChecksO),
		fmt.Sprintf("%.1f", b.DynReductionPct), "", "",
	})
	return t
}

// WriteOptBench runs MeasureOpt and writes the result as indented JSON —
// the BENCH_opt.json artifact tracked in the repository and uploaded by CI.
func WriteOptBench(cfg Config, path string) (*OptBench, error) {
	b := MeasureOpt(cfg)
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return b, os.WriteFile(path, append(data, '\n'), 0o644)
}
