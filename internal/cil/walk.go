package cil

// Walkers over the IR, shared by inference, instrumentation, and the
// experiment harness.

// WalkStmts calls f on every statement in stmts, recursively.
func WalkStmts(stmts []Stmt, f func(Stmt)) {
	for _, s := range stmts {
		f(s)
		switch st := s.(type) {
		case *Block:
			WalkStmts(st.Stmts, f)
		case *If:
			WalkStmts(st.Then.Stmts, f)
			if st.Else != nil {
				WalkStmts(st.Else.Stmts, f)
			}
		case *Loop:
			WalkStmts(st.Body.Stmts, f)
			if st.Post != nil {
				WalkStmts(st.Post.Stmts, f)
			}
		case *Switch:
			for _, c := range st.Cases {
				WalkStmts(c.Body, f)
			}
		}
	}
}

// WalkInstrs calls f on every instruction under stmts.
func WalkInstrs(stmts []Stmt, f func(Instr)) {
	WalkStmts(stmts, func(s Stmt) {
		if si, ok := s.(*SInstr); ok {
			f(si.Ins)
		}
	})
}

// WalkExpr calls f on every subexpression of e and then on e itself
// (post-order: children before parents, so instrumentation emitted in
// visit order checks inner accesses before the outer ones that evaluate
// them).
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *Lval:
		WalkLvalue(x.LV, f)
	case *AddrOf:
		WalkLvalue(x.LV, f)
	case *BinOp:
		WalkExpr(x.A, f)
		WalkExpr(x.B, f)
	case *UnOp:
		WalkExpr(x.X, f)
	case *Cast:
		WalkExpr(x.X, f)
	}
	f(e)
}

// WalkLvalue calls f on every expression inside lv.
func WalkLvalue(lv *Lvalue, f func(Expr)) {
	if lv.Mem != nil {
		WalkExpr(lv.Mem, f)
	}
	for _, o := range lv.Offset {
		if o.Index != nil {
			WalkExpr(o.Index, f)
		}
	}
}

// WalkFuncExprs calls f on every top-level expression in fn's body: Set
// right-hand sides, call components, condition/return/switch expressions,
// and lvalues (as contained expressions).
func WalkFuncExprs(fn *Func, f func(Expr)) {
	WalkStmts(fn.Body.Stmts, func(s Stmt) {
		switch st := s.(type) {
		case *SInstr:
			switch in := st.Ins.(type) {
			case *Set:
				WalkLvalue(in.LV, f)
				WalkExpr(in.RHS, f)
			case *Call:
				if in.Result != nil {
					WalkLvalue(in.Result, f)
				}
				WalkExpr(in.Fn, f)
				for _, a := range in.Args {
					WalkExpr(a, f)
				}
			case *Check:
				WalkExpr(in.Ptr, f)
			}
		case *If:
			WalkExpr(st.Cond, f)
		case *Return:
			if st.X != nil {
				WalkExpr(st.X, f)
			}
		case *Switch:
			WalkExpr(st.X, f)
		}
	})
}
