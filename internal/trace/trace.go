// Package trace records the provenance of gocured's inference decisions and
// reconstructs blame chains from them. Every constraint edge the inference
// generates (data flow, unification, base containment) is recorded with the
// rule that produced it and its source location; every fact that seeds a
// kind (a bad cast, pointer arithmetic, a disguised integer, a checked
// downcast, a user annotation) is recorded as a seed. A blame chain is the
// shortest path — along the directions the corresponding kind actually
// propagates — from a pointer node back to a seed: the answer to "which
// cast made this pointer WILD?".
//
// A Prov is populated single-threaded during inference and read-only
// afterwards; Explain may be called from many goroutines concurrently (the
// adjacency index is built once, lazily).
package trace

import (
	"fmt"
	"strings"
	"sync"

	"gocured/internal/diag"
)

// Cat classifies a constraint edge by how kinds propagate across it.
type Cat int

// Edge categories.
const (
	// CatFlow is directed data flow (assignment src -> dst). WILD spreads
	// both ways; SEQ and RTTI demands travel dst -> src (recorded From->To,
	// explained by walking From->To from the pointer toward the seed).
	CatFlow Cat = iota
	// CatUnify merges two nodes into one equivalence class (physical
	// equality, array decay); every kind crosses it in both directions.
	CatUnify
	// CatBase records containment: From's pointee representation contains
	// the pointer To. WILD spreads From -> To only.
	CatBase
)

var catNames = [...]string{"flow", "unify", "base"}

func (c Cat) String() string { return catNames[c] }

// Edge is one recorded constraint edge between qualifier nodes (by ID).
type Edge struct {
	From, To int
	Cat      Cat
	// Rule names the inference rule that generated the edge ("assign",
	// "upcast", "cast-identity", "decay", "contains", ...).
	Rule string
	Pos  diag.Pos
}

// Seed is one recorded kind-forcing fact on a node.
type Seed struct {
	Node int
	// Fact names the forcing fact: "bad-cast", "arith", "int-cast",
	// "int-cast-flow", "rtti-need", "forced-SAFE/SEQ/WILD/RTTI", "demoted".
	Fact string
	Pos  diag.Pos
	Why  string
}

// Goal selects which kind's propagation rules a blame search follows.
type Goal int

// Goals.
const (
	GoalWild Goal = iota
	GoalSeq
	GoalRtti
)

var goalNames = [...]string{"WILD", "SEQ", "RTTI"}

func (g Goal) String() string { return goalNames[g] }

// seedFacts lists which seed facts can originate each goal kind.
var seedFacts = map[Goal]map[string]bool{
	GoalWild: {"bad-cast": true, "forced-WILD": true, "demoted": true},
	GoalSeq:  {"arith": true, "int-cast": true, "int-cast-flow": true, "forced-SEQ": true},
	GoalRtti: {"rtti-need": true, "forced-RTTI": true},
}

// Prov accumulates provenance during inference.
type Prov struct {
	Edges []Edge
	Seeds []Seed

	desc map[int]string // node ID -> human description (type string)

	once  sync.Once
	out   map[int][]int // node -> indices into Edges where node == From
	in    map[int][]int // node -> indices into Edges where node == To
	seedN map[int][]int // node -> indices into Seeds
}

// NewProv returns an empty recorder.
func NewProv() *Prov {
	return &Prov{desc: make(map[int]string)}
}

// AddEdge records one constraint edge.
func (p *Prov) AddEdge(from, to int, cat Cat, rule string, pos diag.Pos) {
	if p == nil || from == 0 || to == 0 {
		return
	}
	p.Edges = append(p.Edges, Edge{From: from, To: to, Cat: cat, Rule: rule, Pos: pos})
}

// AddSeed records one kind-forcing fact.
func (p *Prov) AddSeed(node int, fact string, pos diag.Pos, why string) {
	if p == nil || node == 0 {
		return
	}
	p.Seeds = append(p.Seeds, Seed{Node: node, Fact: fact, Pos: pos, Why: why})
}

// Describe attaches a human description (the type string) to a node.
func (p *Prov) Describe(node int, desc string) {
	if p == nil || node == 0 {
		return
	}
	if _, ok := p.desc[node]; !ok {
		p.desc[node] = desc
	}
}

// Desc returns the recorded description of a node.
func (p *Prov) Desc(node int) string {
	if d, ok := p.desc[node]; ok {
		return d
	}
	return "?"
}

func (p *Prov) index() {
	p.once.Do(func() {
		p.out = make(map[int][]int)
		p.in = make(map[int][]int)
		p.seedN = make(map[int][]int)
		for i, e := range p.Edges {
			p.out[e.From] = append(p.out[e.From], i)
			p.in[e.To] = append(p.in[e.To], i)
		}
		for i, s := range p.Seeds {
			p.seedN[s.Node] = append(p.seedN[s.Node], i)
		}
	})
}

// Step is one traversed edge of a blame chain. Reversed reports that the
// chain walks the edge against its recorded direction (To -> From).
type Step struct {
	Edge     Edge
	Reversed bool
}

// Chain is a reconstructed blame chain: the shortest constraint path from
// Target to a seed that forces the goal kind.
type Chain struct {
	Goal   Goal
	Target int
	Steps  []Step
	// Seed is the forcing fact the chain ends at; nil when the target kind
	// needs no blame (SAFE) or no chain was found.
	Seed *Seed

	prov *Prov
}

// Explain returns the shortest blame chain for the goal kind ending at a
// seed, or nil if no seed is reachable (which indicates the node does not
// actually have the goal kind).
func (p *Prov) Explain(target int, goal Goal) *Chain {
	if p == nil || target == 0 {
		return nil
	}
	p.index()
	facts := seedFacts[goal]
	seedAt := func(n int) *Seed {
		for _, i := range p.seedN[n] {
			if facts[p.Seeds[i].Fact] {
				return &p.Seeds[i]
			}
		}
		return nil
	}

	// BFS over the moves the goal kind's propagation allows.
	type visit struct {
		node int
		prev int  // index into order, -1 for the root
		edge int  // Edges index taken to reach node
		rev  bool // edge walked To -> From
	}
	order := []visit{{node: target, prev: -1, edge: -1}}
	seen := map[int]bool{target: true}
	finish := -1
	for qi := 0; qi < len(order) && finish < 0; qi++ {
		cur := order[qi]
		if seedAt(cur.node) != nil {
			finish = qi
			break
		}
		expand := func(edgeIdx int, next int, rev bool) {
			if !seen[next] {
				seen[next] = true
				order = append(order, visit{node: next, prev: qi, edge: edgeIdx, rev: rev})
			}
		}
		for _, ei := range p.out[cur.node] {
			e := p.Edges[ei]
			switch e.Cat {
			case CatUnify:
				expand(ei, e.To, false)
			case CatFlow:
				// WILD spreads both ways; SEQ/RTTI demands are explained by
				// walking with the data flow toward the consumer that
				// required them.
				expand(ei, e.To, false)
			case CatBase:
				// From's wildness spreads into To, never back: walking
				// From -> To cannot explain From.
			}
		}
		for _, ei := range p.in[cur.node] {
			e := p.Edges[ei]
			switch e.Cat {
			case CatUnify:
				expand(ei, e.From, true)
			case CatFlow:
				if goal == GoalWild {
					expand(ei, e.From, true)
				}
			case CatBase:
				if goal == GoalWild {
					// target is contained in From's pointee: its wildness
					// came down from the container.
					expand(ei, e.From, true)
				}
			}
		}
	}
	if finish < 0 {
		return nil
	}
	ch := &Chain{Goal: goal, Target: target, Seed: seedAt(order[finish].node), prov: p}
	// Walk back to the root, collecting steps target-first.
	var rev []Step
	for qi := finish; order[qi].prev >= 0; qi = order[qi].prev {
		rev = append(rev, Step{Edge: p.Edges[order[qi].edge], Reversed: order[qi].rev})
	}
	for i := len(rev) - 1; i >= 0; i-- {
		ch.Steps = append(ch.Steps, rev[i])
	}
	return ch
}

// Render formats the chain as an indented, annotated block:
//
//	n12 (int *) went WILD:
//	  n12 = n8 [unify: cast-identity] at t.c:9:5
//	  n8 <- flow -> n3 [assign] at t.c:4:2
//	  n3: bad cast at t.c:9:10 (struct A * incompatible with int *)
func (c *Chain) Render() string {
	if c == nil {
		return ""
	}
	p := c.prov
	var b strings.Builder
	fmt.Fprintf(&b, "n%d (%s) is %s:\n", c.Target, p.Desc(c.Target), c.Goal)
	cur := c.Target
	for _, s := range c.Steps {
		next := s.Edge.To
		if s.Reversed {
			next = s.Edge.From
		}
		arrow := "->"
		if s.Reversed && s.Edge.Cat != CatUnify {
			arrow = "<-"
		}
		if s.Edge.Cat == CatUnify {
			arrow = "=="
		}
		fmt.Fprintf(&b, "  n%d %s n%d (%s) [%s: %s]", cur, arrow, next, p.Desc(next), s.Edge.Cat, s.Edge.Rule)
		if s.Edge.Pos.IsValid() {
			fmt.Fprintf(&b, " at %s", s.Edge.Pos)
		}
		b.WriteByte('\n')
		cur = next
	}
	if c.Seed != nil {
		fmt.Fprintf(&b, "  n%d: %s", c.Seed.Node, c.Seed.Fact)
		if c.Seed.Pos.IsValid() {
			fmt.Fprintf(&b, " at %s", c.Seed.Pos)
		}
		if c.Seed.Why != "" {
			fmt.Fprintf(&b, " (%s)", c.Seed.Why)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Lines returns the rendered chain split into lines (for JSON transport).
func (c *Chain) Lines() []string {
	s := strings.TrimRight(c.Render(), "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
