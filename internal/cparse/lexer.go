package cparse

import (
	"fmt"
	"strconv"
	"strings"

	"gocured/internal/diag"
)

// Lexer tokenizes C source. It handles //- and /**/-comments, all C89
// operators, numeric/char/string literals, and #pragma lines (other
// preprocessor lines are skipped with a warning; corpus sources are written
// preprocessor-free).
type Lexer struct {
	file  string
	src   string
	pos   int
	line  int
	col   int
	diags *diag.List
}

// NewLexer returns a lexer over src; file is used for positions.
func NewLexer(file, src string, diags *diag.List) *Lexer {
	return &Lexer{file: file, src: src, pos: 0, line: 1, col: 1, diags: diags}
}

func (lx *Lexer) at() diag.Pos { return diag.Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	if lx.pos >= len(lx.src) {
		// Truncated input (e.g. a character literal at EOF): stay put and
		// hand back NUL; the caller reports the malformed token.
		return 0
	}
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// skipSpace consumes whitespace and comments.
func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.at()
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.diags.Errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpace()
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = EOF
		return tok
	}
	c := lx.peekByte()

	switch {
	case c == '#':
		return lx.lexDirective()
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
			lx.advance()
		}
		word := lx.src[start:lx.pos]
		if kw, ok := keywords[word]; ok {
			tok.Kind = kw
			tok.Text = word
		} else {
			tok.Kind = IDENT
			tok.Text = word
		}
		return tok
	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.lexNumber(tok)
	case c == '\'':
		return lx.lexChar(tok)
	case c == '"':
		return lx.lexString(tok)
	}
	return lx.lexOperator(tok)
}

// lexDirective handles a '#...' line: #pragma becomes a PRAGMA token;
// anything else is skipped with a warning.
func (lx *Lexer) lexDirective() Token {
	pos := lx.at()
	start := lx.pos
	for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
		lx.advance()
	}
	lineText := strings.TrimSpace(lx.src[start:lx.pos])
	if rest, ok := strings.CutPrefix(lineText, "#pragma"); ok {
		return Token{Kind: PRAGMA, Text: strings.TrimSpace(rest), Line: pos.Line, Col: pos.Col}
	}
	lx.diags.Warnf(pos, "ignoring preprocessor line %q (gocured sources are preprocessor-free)", lineText)
	return lx.Next()
}

func (lx *Lexer) lexNumber(tok Token) Token {
	start := lx.pos
	isFloat := false
	if lx.peekByte() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && isHex(lx.peekByte()) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.peekByte() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
		if b := lx.peekByte(); b == 'e' || b == 'E' {
			isFloat = true
			lx.advance()
			if b := lx.peekByte(); b == '+' || b == '-' {
				lx.advance()
			}
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
	}
	text := lx.src[start:lx.pos]
	// Consume and ignore integer/float suffixes (U, L, f).
	for {
		b := lx.peekByte()
		if b == 'u' || b == 'U' || b == 'l' || b == 'L' || b == 'f' || b == 'F' {
			lx.advance()
			continue
		}
		break
	}
	tok.Text = text
	if isFloat {
		tok.Kind = FLOATLIT
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			lx.diags.Errorf(diag.Pos{File: lx.file, Line: tok.Line, Col: tok.Col}, "bad float literal %q", text)
		}
		tok.F = v
		return tok
	}
	tok.Kind = INTLIT
	v, err := strconv.ParseUint(text, 0, 64)
	if err != nil {
		lx.diags.Errorf(diag.Pos{File: lx.file, Line: tok.Line, Col: tok.Col}, "bad integer literal %q", text)
	}
	tok.Int = int64(v)
	return tok
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (lx *Lexer) lexEscape() byte {
	c := lx.advance() // backslash already consumed by caller? no: caller consumed '\\'
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case '0':
		return 0
	case '\\':
		return '\\'
	case '\'':
		return '\''
	case '"':
		return '"'
	case 'a':
		return 7
	case 'b':
		return 8
	case 'f':
		return 12
	case 'v':
		return 11
	case 'x':
		v := 0
		for isHex(lx.peekByte()) {
			d := lx.advance()
			v = v*16 + hexVal(d)
		}
		return byte(v)
	default:
		lx.diags.Warnf(lx.at(), "unknown escape \\%c", c)
		return c
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

func (lx *Lexer) lexChar(tok Token) Token {
	lx.advance() // '
	var v byte
	if lx.peekByte() == '\\' {
		lx.advance()
		v = lx.lexEscape()
	} else {
		v = lx.advance()
	}
	if lx.peekByte() == '\'' {
		lx.advance()
	} else {
		lx.diags.Errorf(lx.at(), "unterminated character literal")
	}
	tok.Kind = CHARLIT
	tok.Int = int64(v)
	return tok
}

func (lx *Lexer) lexString(tok Token) Token {
	var b strings.Builder
	for {
		lx.advance() // opening quote
		for lx.pos < len(lx.src) && lx.peekByte() != '"' {
			c := lx.advance()
			if c == '\\' {
				b.WriteByte(lx.lexEscape())
			} else {
				b.WriteByte(c)
			}
			if c == '\n' {
				lx.diags.Errorf(lx.at(), "newline in string literal")
			}
		}
		if lx.pos < len(lx.src) {
			lx.advance() // closing quote
		} else {
			lx.diags.Errorf(lx.at(), "unterminated string literal")
			break
		}
		// Adjacent string literal concatenation.
		save := *lx
		lx.skipSpace()
		if lx.peekByte() != '"' {
			*lx = save
			break
		}
	}
	tok.Kind = STRLIT
	tok.Text = b.String()
	return tok
}

func (lx *Lexer) lexOperator(tok Token) Token {
	c := lx.advance()
	two := func(next byte, with, without TokKind) TokKind {
		if lx.peekByte() == next {
			lx.advance()
			return with
		}
		return without
	}
	switch c {
	case '(':
		tok.Kind = LPAREN
	case ')':
		tok.Kind = RPAREN
	case '{':
		tok.Kind = LBRACE
	case '}':
		tok.Kind = RBRACE
	case '[':
		tok.Kind = LBRACK
	case ']':
		tok.Kind = RBRACK
	case ';':
		tok.Kind = SEMI
	case ',':
		tok.Kind = COMMA
	case '?':
		tok.Kind = QUESTION
	case ':':
		tok.Kind = COLON
	case '~':
		tok.Kind = TILDE
	case '.':
		if lx.peekByte() == '.' && lx.peek2() == '.' {
			lx.advance()
			lx.advance()
			tok.Kind = ELLIPSIS
		} else {
			tok.Kind = DOT
		}
	case '+':
		switch lx.peekByte() {
		case '+':
			lx.advance()
			tok.Kind = INC
		case '=':
			lx.advance()
			tok.Kind = PLUSASSIGN
		default:
			tok.Kind = PLUS
		}
	case '-':
		switch lx.peekByte() {
		case '-':
			lx.advance()
			tok.Kind = DEC
		case '=':
			lx.advance()
			tok.Kind = MINUSASSIGN
		case '>':
			lx.advance()
			tok.Kind = ARROW
		default:
			tok.Kind = MINUS
		}
	case '*':
		tok.Kind = two('=', STARASSIGN, STAR)
	case '/':
		tok.Kind = two('=', SLASHASSIGN, SLASH)
	case '%':
		tok.Kind = two('=', PERCENTASSIGN, PERCENT)
	case '^':
		tok.Kind = two('=', CARETASSIGN, CARET)
	case '!':
		tok.Kind = two('=', NEQ, BANG)
	case '=':
		tok.Kind = two('=', EQEQ, ASSIGN)
	case '&':
		switch lx.peekByte() {
		case '&':
			lx.advance()
			tok.Kind = ANDAND
		case '=':
			lx.advance()
			tok.Kind = AMPASSIGN
		default:
			tok.Kind = AMP
		}
	case '|':
		switch lx.peekByte() {
		case '|':
			lx.advance()
			tok.Kind = OROR
		case '=':
			lx.advance()
			tok.Kind = PIPEASSIGN
		default:
			tok.Kind = PIPE
		}
	case '<':
		switch lx.peekByte() {
		case '<':
			lx.advance()
			tok.Kind = two('=', LSHIFTASSIGN, LSHIFT)
		case '=':
			lx.advance()
			tok.Kind = LE
		default:
			tok.Kind = LT
		}
	case '>':
		switch lx.peekByte() {
		case '>':
			lx.advance()
			tok.Kind = two('=', RSHIFTASSIGN, RSHIFT)
		case '=':
			lx.advance()
			tok.Kind = GE
		default:
			tok.Kind = GT
		}
	default:
		lx.diags.Errorf(diag.Pos{File: lx.file, Line: tok.Line, Col: tok.Col},
			"unexpected character %q", c)
		return lx.Next()
	}
	tok.Text = fmt.Sprintf("%s", tok.Kind)
	return tok
}

// LexAll tokenizes the whole input (testing helper).
func LexAll(file, src string, diags *diag.List) []Token {
	lx := NewLexer(file, src, diags)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == EOF {
			return out
		}
	}
}
