package trace

import (
	"strings"
	"testing"
)

func TestNewW3CTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewW3CTraceID()
		if len(id) != 32 || !isLowerHex(id) {
			t.Fatalf("NewW3CTraceID() = %q, want 32 lowercase hex", id)
		}
		if id == zeroTraceID {
			t.Fatal("minted the forbidden all-zero trace-id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		if !ValidID(id) {
			t.Fatalf("ValidID rejects a minted W3C trace ID %q", id)
		}
	}
}

func TestValidIDLengths(t *testing.T) {
	for _, tc := range []struct {
		id   string
		want bool
	}{
		{"0123456789abcdef", true},
		{"0123456789abcdef0123456789abcdef", true},
		{"0123456789ABCDEF", false},                // uppercase
		{"0123456789abcde", false},                 // 15
		{"0123456789abcdef0", false},               // 17
		{"0123456789abcdef0123456789abcde", false}, // 31
		{"ghijklmnopqrstuv", false},                // non-hex
		{"", false},
	} {
		if got := ValidID(tc.id); got != tc.want {
			t.Errorf("ValidID(%q) = %v, want %v", tc.id, got, tc.want)
		}
	}
}

func TestParseTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	for _, tc := range []struct {
		name, header string
		want         string
		ok           bool
	}{
		{"canonical", "00-" + tid + "-00f067aa0ba902b7-01", tid, true},
		{"not sampled", "00-" + tid + "-00f067aa0ba902b7-00", tid, true},
		{"future version", "cc-" + tid + "-00f067aa0ba902b7-01-extra", tid, true},
		{"version ff", "ff-" + tid + "-00f067aa0ba902b7-01", "", false},
		{"v00 extra field", "00-" + tid + "-00f067aa0ba902b7-01-extra", "", false},
		{"zero trace-id", "00-" + zeroTraceID + "-00f067aa0ba902b7-01", "", false},
		{"zero parent-id", "00-" + tid + "-" + zeroParentID + "-01", "", false},
		{"uppercase trace-id", "00-" + strings.ToUpper(tid) + "-00f067aa0ba902b7-01", "", false},
		{"short trace-id", "00-" + tid[:31] + "-00f067aa0ba902b7-01", "", false},
		{"short parent-id", "00-" + tid + "-00f067aa0ba902-01", "", false},
		{"bad flags", "00-" + tid + "-00f067aa0ba902b7-0g", "", false},
		{"too few fields", "00-" + tid, "", false},
		{"garbage", "hello world", "", false},
		{"empty", "", "", false},
	} {
		got, ok := ParseTraceparent(tc.header)
		if ok != tc.ok || got != tc.want {
			t.Errorf("%s: ParseTraceparent(%q) = (%q, %v), want (%q, %v)",
				tc.name, tc.header, got, ok, tc.want, tc.ok)
		}
	}
}

// TestTraceparentRoundTrip pins the echo contract: the rendered header
// parses, and the trace-id survives — verbatim for 32-hex IDs, zero-padded
// for the internal 16-hex shape.
func TestTraceparentRoundTrip(t *testing.T) {
	w3c := NewW3CTraceID()
	h := Traceparent(w3c)
	got, ok := ParseTraceparent(h)
	if !ok || got != w3c {
		t.Fatalf("Traceparent(%q) = %q, parsed back (%q, %v)", w3c, h, got, ok)
	}

	short := NewID()
	h = Traceparent(short)
	got, ok = ParseTraceparent(h)
	if !ok || got != zeroParentID+short {
		t.Fatalf("Traceparent(%q) = %q, parsed back (%q, %v), want zero-padded", short, h, got, ok)
	}

	// Junk input degrades to a fresh valid header rather than an invalid echo.
	if _, ok := ParseTraceparent(Traceparent("not-an-id")); !ok {
		t.Fatal("Traceparent of junk produced an unparseable header")
	}
}
